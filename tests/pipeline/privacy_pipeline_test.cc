// Shard-streaming pipeline equivalence: for every mechanism and every
// (shard count, thread count), the pipeline's perturbed database,
// reconstructed supports, and mined itemsets must equal the single-shard,
// single-thread pass BIT FOR BIT — sharding is a pure parallelism/memory
// transform, never an accuracy one. Since PR 3 this holds for ALL five
// mechanisms (DET-GD, RAN-GD, MASK, C&P, IND-GD); the monolithic fallback
// no longer exists.

#include "frapp/pipeline/privacy_pipeline.h"

#include <gtest/gtest.h>

#include <memory>

#include "frapp/core/mechanism.h"
#include "frapp/data/census.h"
#include "frapp/data/sharded_table.h"
#include "frapp/eval/experiment.h"
#include "frapp/mining/apriori.h"

namespace frapp {
namespace pipeline {
namespace {

constexpr double kGamma = 19.0;
constexpr uint64_t kSeed = 17;

// Exact (bitwise) equality of two mining results, supports included.
void ExpectSameMiningResult(const mining::AprioriResult& a,
                            const mining::AprioriResult& b) {
  ASSERT_EQ(a.by_length.size(), b.by_length.size());
  EXPECT_EQ(a.candidates_per_pass, b.candidates_per_pass);
  for (size_t k = 0; k < a.by_length.size(); ++k) {
    ASSERT_EQ(a.by_length[k].size(), b.by_length[k].size())
        << "length " << k + 1;
    for (size_t i = 0; i < a.by_length[k].size(); ++i) {
      EXPECT_EQ(a.by_length[k][i].itemset, b.by_length[k][i].itemset);
      // Bit-identical reconstructed supports, not just approximately equal.
      EXPECT_EQ(a.by_length[k][i].support, b.by_length[k][i].support);
    }
  }
}

class PrivacyPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new data::CategoricalTable(
        *data::census::MakeDataset(50000, 321));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  static PipelineOptions Options(size_t num_shards, size_t num_threads) {
    PipelineOptions options;
    options.num_shards = num_shards;
    options.num_threads = num_threads;
    options.perturb_seed = kSeed;
    options.mining.min_support = 0.02;
    return options;
  }

  using MechanismFactory = std::unique_ptr<core::Mechanism> (*)();

  // Runs `make()`'s mechanism over the shard x thread grid and expects every
  // grid point to mine bit-identically to the (1 shard, 1 thread) reference.
  static void ExpectGridBitIdentical(MechanismFactory make) {
    auto baseline_mechanism = make();
    const StatusOr<PipelineResult> reference =
        PrivacyPipeline(Options(1, 1)).Run(*baseline_mechanism, *table_);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ASSERT_GT(reference->mined.TotalFrequent(), 0u);
    for (size_t num_shards : {3ul, 7ul}) {
      for (size_t num_threads : {1ul, 4ul}) {
        SCOPED_TRACE(testing::Message() << "shards=" << num_shards
                                        << " threads=" << num_threads);
        auto mechanism = make();
        const StatusOr<PipelineResult> run =
            PrivacyPipeline(Options(num_shards, num_threads))
                .Run(*mechanism, *table_);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        EXPECT_EQ(run->stats.num_shards, num_shards);
        EXPECT_EQ(run->stats.total_rows, table_->num_rows());
        ExpectSameMiningResult(reference->mined, run->mined);
      }
    }
  }

  static data::CategoricalTable* table_;
};

data::CategoricalTable* PrivacyPipelineTest::table_ = nullptr;

TEST_F(PrivacyPipelineTest, ShardedPerturbationConcatenatesToMonolithic) {
  const auto perturber =
      *core::GammaDiagonalPerturber::Create(table_->schema(), kGamma);
  const data::CategoricalTable whole =
      *perturber.PerturbSeeded(*table_, kSeed, /*num_threads=*/2);
  for (size_t num_shards : {3ul, 7ul}) {
    SCOPED_TRACE(testing::Message() << "shards=" << num_shards);
    size_t row = 0;
    for (const data::RowRange& range :
         data::ShardedTable::Plan(table_->num_rows(), num_shards)) {
      const data::CategoricalTable shard =
          *perturber.PerturbShardSeeded(*table_, range, kSeed);
      ASSERT_EQ(shard.num_rows(), range.size());
      for (size_t i = 0; i < shard.num_rows(); ++i, ++row) {
        for (size_t j = 0; j < table_->num_attributes(); ++j) {
          ASSERT_EQ(shard.Value(i, j), whole.Value(row, j))
              << "row " << row << " attr " << j;
        }
      }
    }
    EXPECT_EQ(row, table_->num_rows());
  }
}

TEST_F(PrivacyPipelineTest, ShardMisalignmentIsRejected) {
  const auto perturber =
      *core::GammaDiagonalPerturber::Create(table_->schema(), kGamma);
  EXPECT_FALSE(
      perturber.PerturbShardSeeded(*table_, data::RowRange{100, 9000}, kSeed)
          .ok());
  EXPECT_FALSE(
      perturber
          .PerturbShardSeeded(*table_, data::RowRange{0, table_->num_rows() + 1},
                              kSeed)
          .ok());
}

TEST_F(PrivacyPipelineTest, DetGdBitIdenticalAcrossShardsAndThreads) {
  ExpectGridBitIdentical([]() -> std::unique_ptr<core::Mechanism> {
    return *core::DetGdMechanism::Create(table_->schema(), kGamma);
  });
}

TEST_F(PrivacyPipelineTest, RanGdBitIdenticalAcrossShardsAndThreads) {
  ExpectGridBitIdentical([]() -> std::unique_ptr<core::Mechanism> {
    const double x = 1.0 / (kGamma +
                            static_cast<double>(table_->schema().DomainSize()) -
                            1.0);
    return *core::RanGdMechanism::Create(table_->schema(), kGamma,
                                         kGamma * x / 2.0);
  });
}

TEST_F(PrivacyPipelineTest, MaskBitIdenticalAcrossShardsAndThreads) {
  ExpectGridBitIdentical([]() -> std::unique_ptr<core::Mechanism> {
    return *core::MaskMechanism::Create(table_->schema(), kGamma);
  });
}

TEST_F(PrivacyPipelineTest, CutPasteBitIdenticalAcrossShardsAndThreads) {
  ExpectGridBitIdentical([]() -> std::unique_ptr<core::Mechanism> {
    return *core::CutPasteMechanism::Create(table_->schema(), 3, 0.494);
  });
}

TEST_F(PrivacyPipelineTest, IndependentColumnBitIdenticalAcrossShardsAndThreads) {
  ExpectGridBitIdentical([]() -> std::unique_ptr<core::Mechanism> {
    return *core::IndependentColumnMechanism::Create(table_->schema(), kGamma);
  });
}

TEST_F(PrivacyPipelineTest, EveryMechanismReportsShardStreaming) {
  const double x =
      1.0 / (kGamma + static_cast<double>(table_->schema().DomainSize()) - 1.0);
  std::vector<std::unique_ptr<core::Mechanism>> mechanisms;
  mechanisms.push_back(*core::DetGdMechanism::Create(table_->schema(), kGamma));
  mechanisms.push_back(
      *core::RanGdMechanism::Create(table_->schema(), kGamma, kGamma * x / 2.0));
  mechanisms.push_back(*core::MaskMechanism::Create(table_->schema(), kGamma));
  mechanisms.push_back(*core::CutPasteMechanism::Create(table_->schema(), 3, 0.494));
  mechanisms.push_back(
      *core::IndependentColumnMechanism::Create(table_->schema(), kGamma));
  for (const auto& mechanism : mechanisms) {
    EXPECT_TRUE(mechanism->SupportsShardStreaming()) << mechanism->name();
  }
}

TEST_F(PrivacyPipelineTest, StreamingBoundsPeakMemoryToOneShardPerWorker) {
  const size_t bytes_per_row = table_->num_attributes();
  auto mechanism = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  const PipelineResult serial =
      *PrivacyPipeline(Options(7, 1)).Run(*mechanism, *table_);
  EXPECT_EQ(serial.stats.num_shards, 7u);
  // One worker -> exactly one shard of perturbed rows alive at a time.
  EXPECT_EQ(serial.stats.peak_inflight_perturbed_bytes,
            serial.stats.max_shard_rows * bytes_per_row);
  EXPECT_LT(serial.stats.peak_inflight_perturbed_bytes,
            table_->num_rows() * bytes_per_row);

  auto parallel_mechanism = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  const PipelineResult parallel =
      *PrivacyPipeline(Options(7, 4)).Run(*parallel_mechanism, *table_);
  // Four workers -> at most four shards in flight.
  EXPECT_LE(parallel.stats.peak_inflight_perturbed_bytes,
            4 * parallel.stats.max_shard_rows * bytes_per_row);
}

TEST_F(PrivacyPipelineTest, BooleanStreamingBoundsPeakMemoryToOneShardPerWorker) {
  auto mechanism = *core::MaskMechanism::Create(table_->schema(), kGamma);
  const PipelineResult serial =
      *PrivacyPipeline(Options(7, 1)).Run(*mechanism, *table_);
  EXPECT_EQ(serial.stats.num_shards, 7u);
  // One worker -> one shard of perturbed one-hot rows (8 bytes each) alive.
  EXPECT_EQ(serial.stats.peak_inflight_perturbed_bytes,
            serial.stats.max_shard_rows * sizeof(uint64_t));
  EXPECT_LT(serial.stats.peak_inflight_perturbed_bytes,
            table_->num_rows() * sizeof(uint64_t));
}

TEST_F(PrivacyPipelineTest, RunMechanismMatchesPipelineAtAnyShardCount) {
  mining::AprioriOptions options;
  options.min_support = 0.02;
  const mining::AprioriResult truth = *mining::MineExact(*table_, options);

  eval::ExperimentConfig monolithic;
  monolithic.perturb_seed = kSeed;
  auto m1 = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  const eval::MechanismRun reference =
      *eval::RunMechanism(*m1, *table_, truth, monolithic);

  eval::ExperimentConfig sharded = monolithic;
  sharded.num_shards = 7;
  sharded.num_threads = 4;
  auto m2 = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  const eval::MechanismRun run = *eval::RunMechanism(*m2, *table_, truth, sharded);

  ExpectSameMiningResult(reference.mined, run.mined);
  ASSERT_EQ(reference.accuracy.size(), run.accuracy.size());
  for (size_t i = 0; i < run.accuracy.size(); ++i) {
    EXPECT_EQ(reference.accuracy[i].correct, run.accuracy[i].correct);
    EXPECT_EQ(reference.accuracy[i].found_frequent,
              run.accuracy[i].found_frequent);
  }
  EXPECT_EQ(run.pipeline_stats.num_shards, 7u);
}

TEST_F(PrivacyPipelineTest, ExactMiningBitIdenticalAcrossCountShards) {
  mining::AprioriOptions monolithic;
  monolithic.min_support = 0.02;
  const mining::AprioriResult reference = *mining::MineExact(*table_, monolithic);
  for (size_t num_shards : {3ul, 7ul}) {
    for (size_t num_threads : {1ul, 4ul}) {
      SCOPED_TRACE(testing::Message() << "shards=" << num_shards
                                      << " threads=" << num_threads);
      mining::AprioriOptions options = monolithic;
      options.count_shards = num_shards;
      options.num_threads = num_threads;
      const StatusOr<mining::AprioriResult> run =
          mining::MineExact(*table_, options);
      ASSERT_TRUE(run.ok());
      ExpectSameMiningResult(reference, *run);
    }
  }
}

TEST_F(PrivacyPipelineTest, EmptyTableYieldsEmptyResult) {
  const data::CategoricalTable empty =
      *data::CategoricalTable::Create(table_->schema());
  auto mechanism = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  const StatusOr<PipelineResult> run =
      PrivacyPipeline(Options(4, 2)).Run(*mechanism, empty);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->mined.TotalFrequent(), 0u);
  EXPECT_EQ(run->stats.num_shards, 0u);
}

TEST_F(PrivacyPipelineTest, EmptyTableYieldsEmptyResultForBooleanMechanisms) {
  const data::CategoricalTable empty =
      *data::CategoricalTable::Create(table_->schema());
  auto mechanism = *core::MaskMechanism::Create(table_->schema(), kGamma);
  const StatusOr<PipelineResult> run =
      PrivacyPipeline(Options(4, 2)).Run(*mechanism, empty);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->mined.TotalFrequent(), 0u);
  EXPECT_EQ(run->stats.num_shards, 0u);
}

}  // namespace
}  // namespace pipeline
}  // namespace frapp
