// TableSource equivalence: the pipeline must mine BIT-IDENTICAL results
// whether its rows arrive from an in-memory table, a chunked CSV stream, or
// a shard-by-shard synthetic generator — the ingest path is a pure memory
// transform, never an accuracy one.

#include "frapp/pipeline/table_source.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "frapp/core/mechanism.h"
#include "frapp/data/census.h"
#include "frapp/data/csv.h"
#include "frapp/pipeline/privacy_pipeline.h"

namespace frapp {
namespace pipeline {
namespace {

constexpr double kGamma = 19.0;
constexpr size_t kRows = 20000;  // three seeded chunks, last one partial

void ExpectSameMiningResult(const mining::AprioriResult& a,
                            const mining::AprioriResult& b) {
  ASSERT_EQ(a.by_length.size(), b.by_length.size());
  for (size_t k = 0; k < a.by_length.size(); ++k) {
    ASSERT_EQ(a.by_length[k].size(), b.by_length[k].size()) << "length " << k + 1;
    for (size_t i = 0; i < a.by_length[k].size(); ++i) {
      EXPECT_EQ(a.by_length[k][i].itemset, b.by_length[k][i].itemset);
      EXPECT_EQ(a.by_length[k][i].support, b.by_length[k][i].support);
    }
  }
}

class TableSourceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new data::CategoricalTable(*data::census::MakeDataset(kRows, 77));
    // Per-process name: ctest runs each test in its own process, possibly in
    // parallel, and they must not clobber each other's fixture file.
    csv_path_ = new std::string(::testing::TempDir() + "/frapp_source_test_" +
                                std::to_string(::getpid()) + ".csv");
    ASSERT_TRUE(data::WriteCsv(*table_, *csv_path_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(csv_path_->c_str());
    delete csv_path_;
    delete table_;
  }

  static PipelineOptions Options(size_t num_shards, size_t num_threads) {
    PipelineOptions options;
    options.num_shards = num_shards;
    options.num_threads = num_threads;
    options.perturb_seed = 29;
    options.mining.min_support = 0.02;
    return options;
  }

  static data::CategoricalTable* table_;
  static std::string* csv_path_;
};

data::CategoricalTable* TableSourceTest::table_ = nullptr;
std::string* TableSourceTest::csv_path_ = nullptr;

TEST_F(TableSourceTest, CsvStreamMatchesInMemoryForCategoricalMechanism) {
  auto reference_mechanism = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  const PipelineResult reference =
      *PrivacyPipeline(Options(0, 1)).Run(*reference_mechanism, *table_);

  auto mechanism = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  CsvTableSource source = *CsvTableSource::Open(*csv_path_, table_->schema());
  const StatusOr<PipelineResult> run =
      PrivacyPipeline(Options(0, 2)).Run(*mechanism, source);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->stats.total_rows, kRows);
  // One shard per chunk quantum from both sources.
  EXPECT_EQ(run->stats.num_shards, reference.stats.num_shards);
  ExpectSameMiningResult(reference.mined, run->mined);
}

TEST_F(TableSourceTest, CsvStreamMatchesInMemoryForBooleanMechanism) {
  auto reference_mechanism = *core::MaskMechanism::Create(table_->schema(), kGamma);
  const PipelineResult reference =
      *PrivacyPipeline(Options(0, 1)).Run(*reference_mechanism, *table_);

  auto mechanism = *core::MaskMechanism::Create(table_->schema(), kGamma);
  CsvTableSource source = *CsvTableSource::Open(*csv_path_, table_->schema());
  const StatusOr<PipelineResult> run =
      PrivacyPipeline(Options(0, 2)).Run(*mechanism, source);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectSameMiningResult(reference.mined, run->mined);
}

TEST_F(TableSourceTest, WiderCsvShardsStillMatch) {
  auto reference_mechanism = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  const PipelineResult reference =
      *PrivacyPipeline(Options(1, 1)).Run(*reference_mechanism, *table_);

  auto mechanism = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  CsvTableSource source = *CsvTableSource::Open(
      *csv_path_, table_->schema(),
      /*rows_per_shard=*/2 * data::kShardAlignmentRows);
  const StatusOr<PipelineResult> run =
      PrivacyPipeline(Options(1, 1)).Run(*mechanism, source);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.num_shards, 2u);  // 16384 + 3616 rows
  ExpectSameMiningResult(reference.mined, run->mined);
}

TEST_F(TableSourceTest, CsvShardSizeMustBeChunkAligned) {
  EXPECT_FALSE(CsvTableSource::Open(*csv_path_, table_->schema(), 1000).ok());
  EXPECT_FALSE(CsvTableSource::Open(*csv_path_, table_->schema(), 0).ok());
}

TEST_F(TableSourceTest, SyntheticSourceMatchesMaterializedGenerate) {
  const data::ChainGenerator generator = *data::census::Generator();
  auto reference_mechanism = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  const PipelineResult reference =
      *PrivacyPipeline(Options(0, 1)).Run(*reference_mechanism, *table_);

  // census::MakeDataset(kRows, 77) is Generate(kRows, 77); streaming the same
  // generator shard by shard must reproduce it bit for bit.
  auto mechanism = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  SyntheticTableSource source =
      *SyntheticTableSource::Create(generator, kRows, 77);
  const StatusOr<PipelineResult> run =
      PrivacyPipeline(Options(0, 2)).Run(*mechanism, source);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.total_rows, kRows);
  ExpectSameMiningResult(reference.mined, run->mined);
}

TEST_F(TableSourceTest, SourcesReportSchemaAndTotals) {
  InMemoryTableSource in_memory(*table_, 3);
  EXPECT_EQ(in_memory.TotalRows(), kRows);
  EXPECT_EQ(&in_memory.schema(), &table_->schema());

  CsvTableSource csv = *CsvTableSource::Open(*csv_path_, table_->schema());
  EXPECT_FALSE(csv.TotalRows().has_value());

  SyntheticTableSource synthetic =
      *SyntheticTableSource::Create(*data::census::Generator(), 123, 1);
  EXPECT_EQ(synthetic.TotalRows(), 123u);
}

TEST_F(TableSourceTest, InMemorySourceYieldsPlannedShards) {
  InMemoryTableSource source(*table_, 3);
  size_t rows = 0;
  size_t shards = 0;
  PulledShard shard;
  while (*source.NextShard(&shard)) {
    EXPECT_EQ(shard.view.global_begin, rows);
    EXPECT_EQ(shard.view.global_begin % data::kShardAlignmentRows, 0u);
    EXPECT_EQ(shard.owned, nullptr);  // zero-copy
    rows += shard.view.size();
    ++shards;
  }
  EXPECT_EQ(rows, kRows);
  EXPECT_EQ(shards, 3u);
}

TEST_F(TableSourceTest, SkipToRowFastForwardsSeekableSources) {
  // In-memory: whole leading shards are dropped; the next shard starts at
  // or before the requested row, never after it.
  InMemoryTableSource in_memory(*table_, /*num_shards=*/0);
  ASSERT_TRUE(in_memory.SkipToRow(data::kShardAlignmentRows).ok());
  PulledShard shard;
  ASSERT_TRUE(*in_memory.NextShard(&shard));
  EXPECT_EQ(shard.view.global_begin, data::kShardAlignmentRows);

  // Binary: one file seek; the pulled shard begins exactly at the target
  // row and carries its global position.
  const std::string bin_path = ::testing::TempDir() + "/frapp_source_skip_" +
                               std::to_string(::getpid()) + ".bin";
  ASSERT_TRUE(data::WriteBinaryTable(*table_, bin_path).ok());
  BinaryTableSource binary =
      *BinaryTableSource::Open(bin_path, table_->schema());
  ASSERT_TRUE(binary.SkipToRow(data::kShardAlignmentRows).ok());
  ASSERT_TRUE(*binary.NextShard(&shard));
  EXPECT_EQ(shard.view.global_begin, data::kShardAlignmentRows);
  ASSERT_GT(shard.view.size(), 0u);
  EXPECT_EQ(shard.view.rows->Value(shard.view.local.begin, 0),
            table_->Value(data::kShardAlignmentRows, 0));

  // Misaligned targets are rejected (they would desync the chunk grid);
  // skipping past the end just exhausts the stream.
  EXPECT_FALSE(binary.SkipToRow(5).ok());
  ASSERT_TRUE(binary.SkipToRow(8 * data::kShardAlignmentRows).ok());
  EXPECT_FALSE(*binary.NextShard(&shard));
  std::remove(bin_path.c_str());

  // Non-seekable sources ignore the hint and still yield from the start —
  // the caller's drop-leading-rows loop stays correct, just unaccelerated.
  CsvTableSource csv = *CsvTableSource::Open(*csv_path_, table_->schema());
  ASSERT_TRUE(csv.SkipToRow(data::kShardAlignmentRows).ok());
  ASSERT_TRUE(*csv.NextShard(&shard));
  EXPECT_EQ(shard.view.global_begin, 0u);
}

}  // namespace
}  // namespace pipeline
}  // namespace frapp
