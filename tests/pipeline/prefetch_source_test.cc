// The pipelined-ingest invariants:
//
//  1. GRID BIT-IDENTITY (the PR-3 invariant, extended): mined itemsets and
//     reconstructed supports are identical across prefetch {on, off} x
//     source {in-memory, csv, binary} x shards {1, 3, 7} x threads {1, 4}
//     on CENSUS 50k. Prefetching and the ingest format move WHEN and WHERE
//     parse work happens — never what is mined.
//  2. ERROR PROPAGATION: a malformed CSV cell mid-stream must surface the
//     line-numbered Status through the producer thread (after the shards
//     before it), and the run must terminate — no hang, no truncated-but-
//     "successful" result.
//  3. SHUTDOWN SAFETY: abandoning a prefetching source mid-stream (consumer
//     never drains it) must stop and join the producer cleanly.
//  4. MULTI-PARSER (PR-7): with several parser threads decoding raw CSV
//     shards concurrently, delivery order, error sequencing, and the mined
//     result are all unchanged — parallel decode moves parse work off the
//     critical path, never reorders it.

#include "frapp/pipeline/prefetching_table_source.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "frapp/common/parallel.h"
#include "frapp/core/mechanism.h"
#include "frapp/data/census.h"
#include "frapp/data/csv.h"
#include "frapp/data/shard_io.h"
#include "frapp/pipeline/privacy_pipeline.h"

namespace frapp {
namespace pipeline {
namespace {

constexpr double kGamma = 19.0;
constexpr size_t kRows = 50000;  // seven seeded chunks, last one partial

void ExpectSameMiningResult(const mining::AprioriResult& a,
                            const mining::AprioriResult& b,
                            const std::string& what) {
  ASSERT_EQ(a.by_length.size(), b.by_length.size()) << what;
  for (size_t k = 0; k < a.by_length.size(); ++k) {
    ASSERT_EQ(a.by_length[k].size(), b.by_length[k].size())
        << what << " length " << k + 1;
    for (size_t i = 0; i < a.by_length[k].size(); ++i) {
      ASSERT_TRUE(a.by_length[k][i].itemset == b.by_length[k][i].itemset)
          << what;
      ASSERT_EQ(a.by_length[k][i].support, b.by_length[k][i].support) << what;
    }
  }
}

class PrefetchSourceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new data::CategoricalTable(*data::census::MakeDataset(kRows, 77));
    const std::string stem = ::testing::TempDir() + "/frapp_prefetch_test_" +
                             std::to_string(::getpid());
    csv_path_ = new std::string(stem + ".csv");
    bin_path_ = new std::string(stem + ".bin");
    ASSERT_TRUE(data::WriteCsv(*table_, *csv_path_).ok());
    ASSERT_TRUE(data::WriteBinaryTable(*table_, *bin_path_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(csv_path_->c_str());
    std::remove(bin_path_->c_str());
    delete csv_path_;
    delete bin_path_;
    delete table_;
  }

  static PipelineOptions Options(size_t num_shards, size_t num_threads,
                                 bool prefetch) {
    PipelineOptions options;
    options.num_shards = num_shards;
    options.num_threads = num_threads;
    options.prefetch_source = prefetch;
    options.perturb_seed = 29;
    options.mining.min_support = 0.02;
    return options;
  }

  static data::CategoricalTable* table_;
  static std::string* csv_path_;
  static std::string* bin_path_;
};

data::CategoricalTable* PrefetchSourceTest::table_ = nullptr;
std::string* PrefetchSourceTest::csv_path_ = nullptr;
std::string* PrefetchSourceTest::bin_path_ = nullptr;

TEST_F(PrefetchSourceTest, GridBitIdentityAcrossPrefetchSourceShardsThreads) {
  auto reference_mechanism =
      *core::DetGdMechanism::Create(table_->schema(), kGamma);
  const PipelineResult reference =
      *PrivacyPipeline(Options(1, 1, false)).Run(*reference_mechanism, *table_);

  // 50000 rows = 7 alignment quanta; rows_per_shard of {7, 3, 1} quanta
  // yields {1, 3, 7} shards from the streaming sources, mirroring the
  // in-memory num_shards plan.
  const size_t shard_grid[] = {1, 3, 7};
  const size_t thread_grid[] = {1, 4};
  const char* source_grid[] = {"in-memory", "csv", "binary"};
  for (size_t shards : shard_grid) {
    const size_t rows_per_shard =
        ((7 + shards - 1) / shards) * data::kShardAlignmentRows;
    for (size_t threads : thread_grid) {
      for (bool prefetch : {false, true}) {
        for (const char* source_kind : source_grid) {
          const std::string what =
              std::string(source_kind) + " x " + std::to_string(shards) +
              " shards x " + std::to_string(threads) + " threads x prefetch " +
              (prefetch ? "on" : "off");
          SCOPED_TRACE(what);
          auto mechanism =
              *core::DetGdMechanism::Create(table_->schema(), kGamma);
          const PipelineOptions options = Options(shards, threads, prefetch);
          StatusOr<PipelineResult> run = [&]() -> StatusOr<PipelineResult> {
            if (std::string(source_kind) == "in-memory") {
              return PrivacyPipeline(options).Run(*mechanism, *table_);
            }
            if (std::string(source_kind) == "csv") {
              FRAPP_ASSIGN_OR_RETURN(
                  CsvTableSource source,
                  CsvTableSource::Open(*csv_path_, table_->schema(),
                                       rows_per_shard));
              return PrivacyPipeline(options).Run(*mechanism, source);
            }
            FRAPP_ASSIGN_OR_RETURN(
                BinaryTableSource source,
                BinaryTableSource::Open(*bin_path_, table_->schema(),
                                        rows_per_shard));
            return PrivacyPipeline(options).Run(*mechanism, source);
          }();
          ASSERT_TRUE(run.ok()) << what << ": " << run.status().ToString();
          EXPECT_EQ(run->stats.total_rows, kRows);
          ExpectSameMiningResult(reference.mined, run->mined, what);
          if (prefetch) {
            // The producer really ran: all parse work is accounted for.
            EXPECT_GT(run->stats.producer_parse_nanos, 0u) << what;
          } else {
            EXPECT_EQ(run->stats.producer_parse_nanos, 0u) << what;
          }
        }
      }
    }
  }
}

TEST_F(PrefetchSourceTest, BooleanMechanismStreamsPrefetchedBitIdentically) {
  auto reference_mechanism =
      *core::MaskMechanism::Create(table_->schema(), kGamma);
  const PipelineResult reference =
      *PrivacyPipeline(Options(0, 1, false)).Run(*reference_mechanism, *table_);

  auto mechanism = *core::MaskMechanism::Create(table_->schema(), kGamma);
  BinaryTableSource source =
      *BinaryTableSource::Open(*bin_path_, table_->schema());
  const StatusOr<PipelineResult> run =
      PrivacyPipeline(Options(0, 2, true)).Run(*mechanism, source);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectSameMiningResult(reference.mined, run->mined, "MASK binary prefetch");
}

TEST_F(PrefetchSourceTest, ProducerErrorSurfacesLineNumberedStatus) {
  // A malformed cell AFTER the first shard boundary: the producer yields
  // shard 1 cleanly, then hits the error while the consumer computes.
  const std::string bad_path = ::testing::TempDir() + "/frapp_prefetch_bad_" +
                               std::to_string(::getpid()) + ".csv";
  {
    const data::CategoricalTable head = *data::census::MakeDataset(10000, 3);
    ASSERT_TRUE(data::WriteCsv(head, bad_path).ok());
    std::ofstream out(bad_path, std::ios::app);
    out << "not-an-age,small,low,White,Male,United-States\n";
  }
  auto mechanism = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  CsvTableSource source = *CsvTableSource::Open(bad_path, table_->schema());
  const StatusOr<PipelineResult> run =
      PrivacyPipeline(Options(0, 2, true)).Run(*mechanism, source);
  ASSERT_FALSE(run.ok());
  // 10000 data rows + 1 header line: the bad row is line 10002.
  EXPECT_NE(run.status().message().find("line 10002"), std::string::npos)
      << run.status().ToString();
  EXPECT_NE(run.status().message().find("not-an-age"), std::string::npos);
  std::remove(bad_path.c_str());
}

TEST_F(PrefetchSourceTest, ErrorAfterQueuedShardsStillDrainsThem) {
  // Pull directly (no pipeline): the wrapper must yield every pre-error
  // shard, then the sticky error.
  const std::string bad_path = ::testing::TempDir() + "/frapp_prefetch_bad2_" +
                               std::to_string(::getpid()) + ".csv";
  {
    const data::CategoricalTable head =
        *data::census::MakeDataset(2 * data::kShardAlignmentRows, 3);
    ASSERT_TRUE(data::WriteCsv(head, bad_path).ok());
    std::ofstream out(bad_path, std::ios::app);
    out << "BAD,small,low,White,Male,United-States\n";
  }
  CsvTableSource inner = *CsvTableSource::Open(bad_path, table_->schema());
  PrefetchingTableSource source(inner, /*max_queued_shards=*/4);
  PulledShard shard;
  size_t rows = 0;
  size_t shards = 0;
  StatusOr<bool> more = source.NextShard(&shard);
  while (more.ok() && *more) {
    EXPECT_EQ(shard.view.global_begin, rows);
    rows += shard.view.size();
    ++shards;
    more = source.NextShard(&shard);
  }
  EXPECT_EQ(shards, 2u);
  EXPECT_EQ(rows, 2 * data::kShardAlignmentRows);
  ASSERT_FALSE(more.ok());
  EXPECT_NE(more.status().message().find("BAD"), std::string::npos);
  // Sticky: asking again reproduces the same error, no hang.
  const StatusOr<bool> again = source.NextShard(&shard);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().message(), more.status().message());
  // Producer stats are valid once the stream has terminated: both clean
  // shards were produced (and timed) before the error stopped production.
  const PrefetchingTableSource::ProducerStats stats = source.producer_stats();
  EXPECT_EQ(stats.shards_produced, 2u);
  EXPECT_GT(stats.parse_nanos, 0u);
  std::remove(bad_path.c_str());
}

TEST_F(PrefetchSourceTest, AbandoningTheStreamJoinsTheProducer) {
  for (size_t pulls : {size_t{0}, size_t{1}, size_t{3}}) {
    CsvTableSource inner = *CsvTableSource::Open(*csv_path_, table_->schema());
    auto source =
        std::make_unique<PrefetchingTableSource>(inner, /*max_queued_shards=*/2);
    PulledShard shard;
    for (size_t i = 0; i < pulls; ++i) {
      ASSERT_TRUE(*source->NextShard(&shard));
    }
    // Destroy with the queue in an arbitrary state (full, mid-parse, ...):
    // must stop and join without hanging. The test would time out otherwise.
    source.reset();
  }
}

TEST_F(PrefetchSourceTest, MultiParserCsvMinesBitIdentically) {
  auto reference_mechanism =
      *core::DetGdMechanism::Create(table_->schema(), kGamma);
  const PipelineResult reference =
      *PrivacyPipeline(Options(1, 1, false)).Run(*reference_mechanism, *table_);

  // parsers = 2 (explicit) and 0 (one per physical core, >= 1).
  for (size_t parsers : {size_t{2}, size_t{0}}) {
    for (size_t shards : {size_t{3}, size_t{7}}) {
      const std::string what = std::to_string(parsers) + " parsers x " +
                               std::to_string(shards) + " shards";
      SCOPED_TRACE(what);
      const size_t rows_per_shard =
          ((7 + shards - 1) / shards) * data::kShardAlignmentRows;
      auto mechanism = *core::DetGdMechanism::Create(table_->schema(), kGamma);
      CsvTableSource source =
          *CsvTableSource::Open(*csv_path_, table_->schema(), rows_per_shard);
      PipelineOptions options = Options(0, 2, true);
      options.prefetch_parsers = parsers;
      const StatusOr<PipelineResult> run =
          PrivacyPipeline(options).Run(*mechanism, source);
      ASSERT_TRUE(run.ok()) << what << ": " << run.status().ToString();
      EXPECT_EQ(run->stats.total_rows, kRows);
      ExpectSameMiningResult(reference.mined, run->mined, what);
    }
  }
}

TEST_F(PrefetchSourceTest, MultiParserDeliversInOrderWithCorrectOffsets) {
  CsvTableSource inner = *CsvTableSource::Open(*csv_path_, table_->schema());
  PrefetchingTableSource source(inner, /*max_queued_shards=*/2,
                                /*num_parsers=*/3);
  PulledShard shard;
  size_t rows = 0;
  StatusOr<bool> more = source.NextShard(&shard);
  while (more.ok() && *more) {
    EXPECT_EQ(shard.view.global_begin, rows);
    rows += shard.view.size();
    more = source.NextShard(&shard);
  }
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  EXPECT_EQ(rows, kRows);
  const PrefetchingTableSource::ProducerStats stats = source.producer_stats();
  EXPECT_EQ(stats.num_parsers, 3u);
  EXPECT_GT(stats.parse_nanos, 0u);
}

TEST_F(PrefetchSourceTest, MultiParserErrorStaysAtItsSequencePosition) {
  // Two clean aligned shards, then a malformed row: even with parsers
  // racing, both clean shards must arrive (in order) before the sticky
  // line-numbered error.
  const std::string bad_path = ::testing::TempDir() + "/frapp_prefetch_bad3_" +
                               std::to_string(::getpid()) + ".csv";
  {
    const data::CategoricalTable head =
        *data::census::MakeDataset(2 * data::kShardAlignmentRows, 3);
    ASSERT_TRUE(data::WriteCsv(head, bad_path).ok());
    std::ofstream out(bad_path, std::ios::app);
    out << "BAD,small,low,White,Male,United-States\n";
  }
  CsvTableSource inner = *CsvTableSource::Open(bad_path, table_->schema());
  PrefetchingTableSource source(inner, /*max_queued_shards=*/4,
                                /*num_parsers=*/4);
  PulledShard shard;
  size_t rows = 0;
  size_t shards = 0;
  StatusOr<bool> more = source.NextShard(&shard);
  while (more.ok() && *more) {
    EXPECT_EQ(shard.view.global_begin, rows);
    rows += shard.view.size();
    ++shards;
    more = source.NextShard(&shard);
  }
  EXPECT_EQ(shards, 2u);
  EXPECT_EQ(rows, 2 * data::kShardAlignmentRows);
  ASSERT_FALSE(more.ok());
  EXPECT_NE(more.status().message().find("BAD"), std::string::npos);
  const StatusOr<bool> again = source.NextShard(&shard);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().message(), more.status().message());
  std::remove(bad_path.c_str());
}

TEST_F(PrefetchSourceTest, MultiParserAbandonJoinsAllParsers) {
  for (size_t pulls : {size_t{0}, size_t{1}, size_t{3}}) {
    CsvTableSource inner = *CsvTableSource::Open(*csv_path_, table_->schema());
    auto source = std::make_unique<PrefetchingTableSource>(
        inner, /*max_queued_shards=*/2, /*num_parsers=*/4);
    PulledShard shard;
    for (size_t i = 0; i < pulls; ++i) {
      ASSERT_TRUE(*source->NextShard(&shard));
    }
    source.reset();  // must join all four parser threads, not hang
  }
}

TEST_F(PrefetchSourceTest, SerialOnlySourcesClampToOneParser) {
  // Binary and in-memory sources do not implement the raw/decode split, so
  // asking for many parsers degrades to the single-producer path.
  BinaryTableSource bin_inner =
      *BinaryTableSource::Open(*bin_path_, table_->schema());
  PrefetchingTableSource bin_source(bin_inner, /*max_queued_shards=*/2,
                                    /*num_parsers=*/8);
  EXPECT_EQ(bin_source.producer_stats().num_parsers, 1u);
  PulledShard shard;
  size_t rows = 0;
  StatusOr<bool> more = bin_source.NextShard(&shard);
  while (more.ok() && *more) {
    rows += shard.view.size();
    more = bin_source.NextShard(&shard);
  }
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  EXPECT_EQ(rows, kRows);

  CsvTableSource csv_inner = *CsvTableSource::Open(*csv_path_, table_->schema());
  PrefetchingTableSource csv_source(csv_inner, /*max_queued_shards=*/2,
                                    /*num_parsers=*/3);
  EXPECT_EQ(csv_source.producer_stats().num_parsers, 3u);
}

TEST_F(PrefetchSourceTest, PinnedThreadsMineBitIdentically) {
  // Core pinning is a scheduling hint only: the mined result must not move.
  auto reference_mechanism =
      *core::DetGdMechanism::Create(table_->schema(), kGamma);
  const PipelineResult reference =
      *PrivacyPipeline(Options(3, 4, false)).Run(*reference_mechanism, *table_);

  auto mechanism = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  PipelineOptions options = Options(3, 4, true);
  options.pin_threads = true;
  const StatusOr<PipelineResult> run =
      PrivacyPipeline(options).Run(*mechanism, *table_);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectSameMiningResult(reference.mined, run->mined, "pinned threads");
  // Unpin so later tests sharing this process see default scheduling.
  common::ThreadPool::Shared().SetPinPhysicalCores(false);
}

TEST_F(PrefetchSourceTest, PassesThroughSchemaAndTotals) {
  InMemoryTableSource inner(*table_, 3);
  PrefetchingTableSource source(inner);
  EXPECT_EQ(&source.schema(), &table_->schema());
  EXPECT_EQ(source.TotalRows(), kRows);

  CsvTableSource csv_inner = *CsvTableSource::Open(*csv_path_, table_->schema());
  PrefetchingTableSource csv_source(csv_inner);
  EXPECT_FALSE(csv_source.TotalRows().has_value());

  BinaryTableSource bin_inner =
      *BinaryTableSource::Open(*bin_path_, table_->schema());
  PrefetchingTableSource bin_source(bin_inner);
  EXPECT_EQ(bin_source.TotalRows(), kRows);  // binary headers carry the count
}

}  // namespace
}  // namespace pipeline
}  // namespace frapp
