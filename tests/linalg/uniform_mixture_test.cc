#include "frapp/linalg/uniform_mixture.h"

#include <gtest/gtest.h>

#include "frapp/linalg/jacobi_eigen.h"
#include "frapp/linalg/lu.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace linalg {
namespace {

// The paper's gamma-diagonal family in (diagonal, off-diagonal) form.
UniformMixtureMatrix GammaForm(size_t n, double gamma) {
  const double x = 1.0 / (gamma + static_cast<double>(n) - 1.0);
  return UniformMixtureMatrix::FromDiagonalOffDiagonal(n, gamma * x, x);
}

TEST(UniformMixtureTest, AccessorsAndDenseAgree) {
  UniformMixtureMatrix m(3, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(m.DiagonalValue(), 2.5);
  EXPECT_DOUBLE_EQ(m.OffDiagonalValue(), 0.5);
  Matrix dense = m.ToDense();
  EXPECT_DOUBLE_EQ(dense(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(dense(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(dense(2, 2), 2.5);
}

TEST(UniformMixtureTest, EigenvaluesMatchJacobi) {
  UniformMixtureMatrix m(5, 0.7, 0.06);
  StatusOr<SymmetricEigenResult> eig = SymmetricEigen(m.ToDense());
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], m.BulkEigenvalue(), 1e-12);
  EXPECT_NEAR(eig->eigenvalues[4], m.OnesEigenvalue(), 1e-12);
}

TEST(UniformMixtureTest, GammaFormIsStochasticWithUnitOnesEigenvalue) {
  UniformMixtureMatrix m = GammaForm(10, 19.0);
  EXPECT_TRUE(m.IsColumnStochastic());
  EXPECT_NEAR(m.OnesEigenvalue(), 1.0, 1e-12);
  StatusOr<double> cond = m.ConditionNumber();
  ASSERT_TRUE(cond.ok());
  EXPECT_NEAR(*cond, (19.0 + 9.0) / 18.0, 1e-12);
}

TEST(UniformMixtureTest, AmplificationRatioIsGamma) {
  UniformMixtureMatrix m = GammaForm(7, 19.0);
  StatusOr<double> amp = m.AmplificationRatio();
  ASSERT_TRUE(amp.ok());
  EXPECT_NEAR(*amp, 19.0, 1e-12);
}

TEST(UniformMixtureTest, AmplificationSingletonIsOne) {
  UniformMixtureMatrix m(1, 0.0, 1.0);
  StatusOr<double> amp = m.AmplificationRatio();
  ASSERT_TRUE(amp.ok());
  EXPECT_DOUBLE_EQ(*amp, 1.0);
}

TEST(UniformMixtureTest, AmplificationUndefinedWithZeroEntry) {
  UniformMixtureMatrix m(3, 1.0, 0.0);  // off-diagonal zero
  EXPECT_FALSE(m.AmplificationRatio().ok());
}

TEST(UniformMixtureTest, MatVecMatchesDense) {
  UniformMixtureMatrix m(6, -0.3, 0.2);
  random::Pcg64 rng(5);
  Vector x(6);
  for (size_t i = 0; i < 6; ++i) x[i] = rng.NextDouble(-2.0, 2.0);
  Vector fast = m.MatVec(x);
  Vector dense = m.ToDense().MatVec(x);
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(fast[i], dense[i], 1e-12);
}

class UniformMixtureSolveTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(UniformMixtureSolveTest, SolveMatchesDenseLu) {
  const auto [n, gamma] = GetParam();
  UniformMixtureMatrix m = GammaForm(n, gamma);
  random::Pcg64 rng(42 + n);
  Vector y(n);
  for (size_t i = 0; i < n; ++i) y[i] = rng.NextDouble(0.0, 100.0);

  StatusOr<Vector> fast = m.Solve(y);
  ASSERT_TRUE(fast.ok());
  StatusOr<Vector> dense = SolveLinearSystem(m.ToDense(), y);
  ASSERT_TRUE(dense.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*fast)[i], (*dense)[i], 1e-8);
}

TEST_P(UniformMixtureSolveTest, InverseIsUniformMixtureToo) {
  const auto [n, gamma] = GetParam();
  UniformMixtureMatrix m = GammaForm(n, gamma);
  StatusOr<UniformMixtureMatrix> inv = m.Inverse();
  ASSERT_TRUE(inv.ok());
  Matrix product = m.ToDense().MatMul(inv->ToDense());
  EXPECT_TRUE(product.ApproxEquals(Matrix::Identity(n), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UniformMixtureSolveTest,
    ::testing::Combine(::testing::Values<size_t>(2, 3, 8, 50),
                       ::testing::Values(1.5, 19.0, 100.0)));

TEST(UniformMixtureTest, SingularMatrixSolveFails) {
  UniformMixtureMatrix zero_a(4, 0.0, 0.25);
  EXPECT_FALSE(zero_a.Solve(Vector(4, 1.0)).ok());
  EXPECT_FALSE(zero_a.Inverse().ok());
  // a + n b = 0 is the other singular direction.
  UniformMixtureMatrix zero_ones(4, 1.0, -0.25);
  EXPECT_FALSE(zero_ones.Solve(Vector(4, 1.0)).ok());
}

TEST(UniformMixtureTest, SolveRejectsWrongDimension) {
  UniformMixtureMatrix m(3, 1.0, 0.1);
  EXPECT_FALSE(m.Solve(Vector(4, 1.0)).ok());
}

TEST(UniformMixtureTest, NotPositiveDefiniteConditionFails) {
  UniformMixtureMatrix m(3, -1.0, 0.1);
  EXPECT_FALSE(m.ConditionNumber().ok());
}

}  // namespace
}  // namespace linalg
}  // namespace frapp
