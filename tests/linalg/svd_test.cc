#include "frapp/linalg/svd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "frapp/linalg/jacobi_eigen.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace linalg {
namespace {

TEST(SvdTest, DiagonalMatrix) {
  Matrix a = Matrix::Diagonal(Vector{3.0, 1.0, 2.0});
  StatusOr<Vector> sigma = SingularValues(a);
  ASSERT_TRUE(sigma.ok());
  EXPECT_NEAR((*sigma)[0], 3.0, 1e-10);
  EXPECT_NEAR((*sigma)[1], 2.0, 1e-10);
  EXPECT_NEAR((*sigma)[2], 1.0, 1e-10);
}

TEST(SvdTest, NegativeEigenvaluesBecomePositiveSingularValues) {
  Matrix a = Matrix::Diagonal(Vector{-5.0, 1.0});
  StatusOr<Vector> sigma = SingularValues(a);
  ASSERT_TRUE(sigma.ok());
  EXPECT_NEAR((*sigma)[0], 5.0, 1e-10);
}

TEST(SvdTest, WideMatrixHandledByTransposition) {
  Matrix a = Matrix::FromRows({{1.0, 0.0, 0.0}, {0.0, 2.0, 0.0}});
  StatusOr<Vector> sigma = SingularValues(a);
  ASSERT_TRUE(sigma.ok());
  EXPECT_NEAR((*sigma)[0], 2.0, 1e-10);
  EXPECT_NEAR((*sigma)[1], 1.0, 1e-10);
}

TEST(SvdTest, RejectsEmpty) {
  EXPECT_FALSE(SingularValues(Matrix()).ok());
}

class SvdPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SvdPropertyTest, MatchesEigenvaluesOfGram) {
  // Singular values of A are sqrt of eigenvalues of A^T A.
  const size_t n = GetParam();
  random::Pcg64 rng(321 + n);
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.NextDouble(-1.0, 1.0);
  }
  StatusOr<Vector> sigma = SingularValues(a);
  ASSERT_TRUE(sigma.ok());

  Matrix gram = a.Transposed().MatMul(a);
  StatusOr<SymmetricEigenResult> eig = SymmetricEigen(gram);
  ASSERT_TRUE(eig.ok());
  for (size_t i = 0; i < n; ++i) {
    const double expected =
        std::sqrt(std::max(0.0, eig->eigenvalues[n - 1 - i]));
    EXPECT_NEAR((*sigma)[i], expected, 1e-8) << "i=" << i;
  }
}

TEST_P(SvdPropertyTest, FrobeniusNormIsRootSumOfSquares) {
  const size_t n = GetParam();
  random::Pcg64 rng(77 + n);
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.NextDouble(-3.0, 3.0);
  }
  StatusOr<Vector> sigma = SingularValues(a);
  ASSERT_TRUE(sigma.ok());
  double sum = 0.0;
  for (size_t i = 0; i < sigma->size(); ++i) sum += (*sigma)[i] * (*sigma)[i];
  EXPECT_NEAR(std::sqrt(sum), a.FrobeniusNorm(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SvdPropertyTest,
                         ::testing::Values<size_t>(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace linalg
}  // namespace frapp
