#include "frapp/linalg/kronecker.h"

#include <gtest/gtest.h>

#include "frapp/linalg/lu.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace linalg {
namespace {

Matrix RandomSquare(size_t n, uint64_t seed) {
  random::Pcg64 rng(seed);
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) m(i, j) = rng.NextDouble(0.1, 1.0);
    m(i, i) += static_cast<double>(n);
  }
  return m;
}

TEST(KroneckerTest, TwoByTwoTimesIdentity) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix k = KroneckerProduct(a, Matrix::Identity(2));
  EXPECT_EQ(k.rows(), 4u);
  EXPECT_DOUBLE_EQ(k(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(k(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(k(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(k(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(k(3, 3), 4.0);
  EXPECT_DOUBLE_EQ(k(0, 1), 0.0);
}

TEST(KroneckerTest, ProductOfList) {
  Matrix a = Matrix::Identity(2);
  Matrix b = Matrix::FromRows({{2.0}});
  Matrix k = KroneckerProduct({a, b, a});
  EXPECT_EQ(k.rows(), 4u);
  EXPECT_DOUBLE_EQ(k(0, 0), 2.0);
}

TEST(KroneckerTest, MixedRadixOrderingFirstFactorSlowest) {
  // (A (x) B) applied to e_{(i,j)} must place A's index as the slow digit.
  Matrix a = Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});  // swap
  Matrix b = Matrix::Identity(3);
  Vector x(6);
  x[0 * 3 + 1] = 1.0;  // (i=0, j=1)
  StatusOr<Vector> y = KroneckerMatVec({a, b}, x);
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ((*y)[1 * 3 + 1], 1.0);  // swapped to (i=1, j=1)
  EXPECT_DOUBLE_EQ(y->Norm1(), 1.0);
}

class KroneckerPropertyTest
    : public ::testing::TestWithParam<std::vector<size_t>> {};

TEST_P(KroneckerPropertyTest, MatVecMatchesDenseProduct) {
  const std::vector<size_t>& dims = GetParam();
  std::vector<Matrix> factors;
  size_t total = 1;
  for (size_t i = 0; i < dims.size(); ++i) {
    factors.push_back(RandomSquare(dims[i], 1000 + i));
    total *= dims[i];
  }
  random::Pcg64 rng(9);
  Vector x(total);
  for (size_t i = 0; i < total; ++i) x[i] = rng.NextDouble(-1.0, 1.0);

  StatusOr<Vector> fast = KroneckerMatVec(factors, x);
  ASSERT_TRUE(fast.ok());
  Vector dense = KroneckerProduct(factors).MatVec(x);
  for (size_t i = 0; i < total; ++i) EXPECT_NEAR((*fast)[i], dense[i], 1e-9);
}

TEST_P(KroneckerPropertyTest, SolveInvertsMatVec) {
  const std::vector<size_t>& dims = GetParam();
  std::vector<Matrix> factors;
  size_t total = 1;
  for (size_t i = 0; i < dims.size(); ++i) {
    factors.push_back(RandomSquare(dims[i], 2000 + i));
    total *= dims[i];
  }
  random::Pcg64 rng(10);
  Vector x(total);
  for (size_t i = 0; i < total; ++i) x[i] = rng.NextDouble(-1.0, 1.0);

  StatusOr<Vector> y = KroneckerMatVec(factors, x);
  ASSERT_TRUE(y.ok());
  StatusOr<Vector> back = KroneckerSolve(factors, *y);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < total; ++i) EXPECT_NEAR((*back)[i], x[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KroneckerPropertyTest,
    ::testing::Values(std::vector<size_t>{2}, std::vector<size_t>{2, 3},
                      std::vector<size_t>{3, 2, 4}, std::vector<size_t>{2, 2, 2, 2}));

TEST(KroneckerTest, DimensionMismatchRejected) {
  EXPECT_FALSE(KroneckerMatVec({Matrix::Identity(2)}, Vector(3)).ok());
  EXPECT_FALSE(KroneckerMatVec({}, Vector(1)).ok());
}

TEST(KroneckerTest, SingularFactorFailsSolve) {
  Matrix singular(2, 2, 1.0);
  EXPECT_FALSE(KroneckerSolve({singular}, Vector(2, 1.0)).ok());
}

}  // namespace
}  // namespace linalg
}  // namespace frapp
