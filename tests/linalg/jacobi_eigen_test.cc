#include "frapp/linalg/jacobi_eigen.h"

#include <gtest/gtest.h>

#include "frapp/random/rng.h"

namespace frapp {
namespace linalg {
namespace {

TEST(JacobiEigenTest, DiagonalMatrixEigenvaluesSorted) {
  Matrix a = Matrix::Diagonal(Vector{3.0, -1.0, 2.0});
  StatusOr<SymmetricEigenResult> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(r->eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(r->eigenvalues[2], 3.0, 1e-12);
}

TEST(JacobiEigenTest, TwoByTwoKnown) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Matrix a = Matrix::FromRows({{2.0, 1.0}, {1.0, 2.0}});
  StatusOr<SymmetricEigenResult> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(r->eigenvalues[1], 3.0, 1e-12);
}

TEST(JacobiEigenTest, GammaDiagonalEigenvalues) {
  // Gamma-diagonal dense matrix: eigenvalues 1 (ones direction) and
  // (gamma-1)x with multiplicity n-1 (paper Section 3).
  const double gamma = 19.0;
  const size_t n = 8;
  const double x = 1.0 / (gamma + n - 1.0);
  Matrix a(n, n, x);
  for (size_t i = 0; i < n; ++i) a(i, i) = gamma * x;
  StatusOr<SymmetricEigenResult> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i + 1 < n; ++i) {
    EXPECT_NEAR(r->eigenvalues[i], (gamma - 1.0) * x, 1e-12);
  }
  EXPECT_NEAR(r->eigenvalues[n - 1], 1.0, 1e-12);
}

TEST(JacobiEigenTest, RejectsAsymmetric) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {0.0, 1.0}});
  EXPECT_EQ(SymmetricEigen(a).status().code(), StatusCode::kInvalidArgument);
}

TEST(JacobiEigenTest, RejectsNonSquare) {
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
}

class JacobiPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(JacobiPropertyTest, ReconstructsMatrixFromDecomposition) {
  const size_t n = GetParam();
  random::Pcg64 rng(7 + n);
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a(i, j) = rng.NextDouble(-1.0, 1.0);
      a(j, i) = a(i, j);
    }
  }
  StatusOr<SymmetricEigenResult> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());

  // V Lambda V^T == A.
  Matrix lambda = Matrix::Diagonal(r->eigenvalues);
  Matrix reconstructed =
      r->eigenvectors.MatMul(lambda).MatMul(r->eigenvectors.Transposed());
  EXPECT_TRUE(reconstructed.ApproxEquals(a, 1e-9));
}

TEST_P(JacobiPropertyTest, EigenvectorsAreOrthonormal) {
  const size_t n = GetParam();
  random::Pcg64 rng(100 + n);
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a(i, j) = rng.NextDouble(0.0, 1.0);
      a(j, i) = a(i, j);
    }
  }
  StatusOr<SymmetricEigenResult> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  Matrix vtv = r->eigenvectors.Transposed().MatMul(r->eigenvectors);
  EXPECT_TRUE(vtv.ApproxEquals(Matrix::Identity(n), 1e-9));
}

TEST_P(JacobiPropertyTest, TraceEqualsEigenvalueSum) {
  const size_t n = GetParam();
  random::Pcg64 rng(55 + n);
  Matrix a(n, n);
  double trace = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a(i, j) = rng.NextDouble(-2.0, 2.0);
      a(j, i) = a(i, j);
    }
    trace += a(i, i);
  }
  StatusOr<SymmetricEigenResult> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->eigenvalues.Sum(), trace, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiPropertyTest,
                         ::testing::Values<size_t>(1, 2, 3, 4, 6, 10, 20));

}  // namespace
}  // namespace linalg
}  // namespace frapp
