#include "frapp/linalg/vector.h"

#include <gtest/gtest.h>

namespace frapp {
namespace linalg {
namespace {

TEST(VectorTest, ConstructionVariants) {
  EXPECT_EQ(Vector().size(), 0u);
  EXPECT_TRUE(Vector().empty());
  Vector zeros(3);
  EXPECT_EQ(zeros.size(), 3u);
  EXPECT_DOUBLE_EQ(zeros[2], 0.0);
  Vector filled(2, 1.5);
  EXPECT_DOUBLE_EQ(filled[0], 1.5);
  Vector list = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(list[1], 2.0);
  Vector adopted(std::vector<double>{4.0, 5.0});
  EXPECT_DOUBLE_EQ(adopted[1], 5.0);
}

TEST(VectorTest, SumAndNorms) {
  Vector v = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.Sum(), -1.0);
  EXPECT_DOUBLE_EQ(v.Norm2(), 5.0);
  EXPECT_DOUBLE_EQ(v.Norm1(), 7.0);
  EXPECT_DOUBLE_EQ(v.NormInf(), 4.0);
}

TEST(VectorTest, EmptyNorms) {
  Vector v;
  EXPECT_DOUBLE_EQ(v.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(v.Norm2(), 0.0);
  EXPECT_DOUBLE_EQ(v.NormInf(), 0.0);
}

TEST(VectorTest, DotProduct) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 4.0 - 10.0 + 18.0);
}

TEST(VectorTest, ScaleAndAxpy) {
  Vector v = {1.0, 2.0};
  v.Scale(3.0);
  EXPECT_DOUBLE_EQ(v[1], 6.0);
  Vector w = {10.0, 20.0};
  v.Axpy(0.5, w);
  EXPECT_DOUBLE_EQ(v[0], 8.0);
  EXPECT_DOUBLE_EQ(v[1], 16.0);
}

TEST(VectorTest, Arithmetic) {
  Vector a = {1.0, 2.0};
  Vector b = {3.0, 5.0};
  Vector sum = a + b;
  Vector diff = b - a;
  Vector scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(sum[1], 7.0);
  EXPECT_DOUBLE_EQ(diff[0], 2.0);
  EXPECT_DOUBLE_EQ(scaled[1], 4.0);
}

TEST(VectorTest, ToStringRendersEntries) {
  EXPECT_EQ((Vector{1.0, 2.5}).ToString(), "[1, 2.5]");
  EXPECT_EQ(Vector().ToString(), "[]");
}

TEST(VectorDeathTest, AtChecksBounds) {
  Vector v = {1.0};
  EXPECT_DEATH((void)v.At(1), "FRAPP_CHECK");
}

TEST(VectorDeathTest, DotDimensionMismatch) {
  Vector a = {1.0};
  Vector b = {1.0, 2.0};
  EXPECT_DEATH((void)a.Dot(b), "FRAPP_CHECK");
}

}  // namespace
}  // namespace linalg
}  // namespace frapp
