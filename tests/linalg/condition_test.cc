#include "frapp/linalg/condition.h"

#include <gtest/gtest.h>

namespace frapp {
namespace linalg {
namespace {

TEST(ConditionTest, IdentityIsOne) {
  StatusOr<double> c = ConditionNumber(Matrix::Identity(5));
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(*c, 1.0, 1e-10);
}

TEST(ConditionTest, DiagonalRatio) {
  StatusOr<double> c = ConditionNumber(Matrix::Diagonal(Vector{1.0, 10.0}));
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(*c, 10.0, 1e-10);
}

TEST(ConditionTest, GammaDiagonalClosedForm) {
  // Paper Section 3: cond = (gamma + n - 1)/(gamma - 1).
  const double gamma = 19.0;
  const size_t n = 10;
  const double x = 1.0 / (gamma + n - 1.0);
  Matrix a(n, n, x);
  for (size_t i = 0; i < n; ++i) a(i, i) = gamma * x;
  StatusOr<double> c = SymmetricConditionNumber(a);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(*c, (gamma + n - 1.0) / (gamma - 1.0), 1e-9);
}

TEST(ConditionTest, HilbertMatrixIsIllConditioned) {
  // The paper quotes ~1e5 for the 5x5 Hilbert matrix (Section 2.3).
  const size_t n = 5;
  Matrix h(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      h(i, j) = 1.0 / static_cast<double>(i + j + 1);
    }
  }
  StatusOr<double> c = SymmetricConditionNumber(h);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, 1e5);
  EXPECT_LT(*c, 1e6);
}

TEST(ConditionTest, IndefiniteSymmetricFallsBackToSpectral) {
  // Symmetric but indefinite: symmetric path fails, spectral succeeds.
  Matrix a = Matrix::Diagonal(Vector{-2.0, 1.0});
  StatusOr<double> c = ConditionNumber(a);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(*c, 2.0, 1e-10);
}

TEST(ConditionTest, NonSymmetricUsesSingularValues) {
  Matrix a = Matrix::FromRows({{0.0, 2.0}, {1.0, 0.0}});
  StatusOr<double> c = ConditionNumber(a);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(*c, 2.0, 1e-10);
}

TEST(ConditionTest, SingularMatrixIsError) {
  Matrix a = Matrix::FromRows({{1.0, 1.0}, {1.0, 1.0}});
  EXPECT_EQ(SpectralConditionNumber(a).status().code(),
            StatusCode::kNumericalError);
}

TEST(ConditionTest, RejectsNonSquare) {
  EXPECT_EQ(ConditionNumber(Matrix(2, 3)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ConditionTest, NotPositiveDefiniteSymmetricError) {
  Matrix a = Matrix::Diagonal(Vector{0.0, 1.0});
  EXPECT_EQ(SymmetricConditionNumber(a).status().code(),
            StatusCode::kNumericalError);
}

}  // namespace
}  // namespace linalg
}  // namespace frapp
