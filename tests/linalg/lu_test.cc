#include "frapp/linalg/lu.h"

#include <gtest/gtest.h>

#include "frapp/random/rng.h"

namespace frapp {
namespace linalg {
namespace {

TEST(LuTest, SolvesKnownSystem) {
  Matrix a = Matrix::FromRows({{2.0, 1.0}, {1.0, 3.0}});
  StatusOr<Vector> x = SolveLinearSystem(a, Vector{3.0, 5.0});
  ASSERT_TRUE(x.ok());
  // 2x + y = 3, x + 3y = 5 -> x = 4/5, y = 7/5.
  EXPECT_NEAR((*x)[0], 0.8, 1e-12);
  EXPECT_NEAR((*x)[1], 1.4, 1e-12);
}

TEST(LuTest, SolveRequiresPivoting) {
  // Zero leading pivot forces a row swap.
  Matrix a = Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  StatusOr<Vector> x = SolveLinearSystem(a, Vector{2.0, 5.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 5.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LuTest, DetectsSingularMatrix) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {2.0, 4.0}});
  StatusOr<LuDecomposition> lu = LuDecomposition::Compute(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), StatusCode::kNumericalError);
}

TEST(LuTest, RejectsNonSquare) {
  EXPECT_EQ(LuDecomposition::Compute(Matrix(2, 3)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LuTest, RejectsEmpty) {
  EXPECT_FALSE(LuDecomposition::Compute(Matrix()).ok());
}

TEST(LuTest, RhsDimensionMismatch) {
  Matrix a = Matrix::Identity(2);
  StatusOr<LuDecomposition> lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_FALSE(lu->Solve(Vector{1.0}).ok());
}

TEST(LuTest, DeterminantKnownValues) {
  StatusOr<LuDecomposition> lu =
      LuDecomposition::Compute(Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}}));
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), -2.0, 1e-12);

  StatusOr<LuDecomposition> id = LuDecomposition::Compute(Matrix::Identity(4));
  ASSERT_TRUE(id.ok());
  EXPECT_NEAR(id->Determinant(), 1.0, 1e-12);
}

TEST(LuTest, DeterminantTracksRowSwaps) {
  // A permutation matrix with one swap has determinant -1.
  Matrix p = Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  StatusOr<LuDecomposition> lu = LuDecomposition::Compute(p);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), -1.0, 1e-12);
}

TEST(LuTest, InverseOfKnownMatrix) {
  Matrix a = Matrix::FromRows({{4.0, 7.0}, {2.0, 6.0}});
  StatusOr<Matrix> inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  Matrix expected = Matrix::FromRows({{0.6, -0.7}, {-0.2, 0.4}});
  EXPECT_TRUE(inv->ApproxEquals(expected, 1e-12));
}

class LuPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LuPropertyTest, InverseTimesMatrixIsIdentity) {
  const size_t n = GetParam();
  random::Pcg64 rng(1234 + n);
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.NextDouble(-1.0, 1.0);
    a(i, i) += static_cast<double>(n);  // diagonal dominance: well-conditioned
  }
  StatusOr<Matrix> inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(a.MatMul(*inv).ApproxEquals(Matrix::Identity(n), 1e-9));
  EXPECT_TRUE(inv->MatMul(a).ApproxEquals(Matrix::Identity(n), 1e-9));
}

TEST_P(LuPropertyTest, SolveResidualIsTiny) {
  const size_t n = GetParam();
  random::Pcg64 rng(99 + n);
  Matrix a(n, n);
  Vector b(n);
  for (size_t i = 0; i < n; ++i) {
    b[i] = rng.NextDouble(-10.0, 10.0);
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.NextDouble(-1.0, 1.0);
    a(i, i) += static_cast<double>(n);
  }
  StatusOr<Vector> x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  Vector residual = a.MatVec(*x) - b;
  EXPECT_LT(residual.NormInf(), 1e-9 * std::max(1.0, b.NormInf()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuPropertyTest,
                         ::testing::Values<size_t>(1, 2, 3, 5, 8, 16, 40));

}  // namespace
}  // namespace linalg
}  // namespace frapp
