#include "frapp/linalg/matrix.h"

#include <gtest/gtest.h>

namespace frapp {
namespace linalg {
namespace {

TEST(MatrixTest, FromRowsAndAccess) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3.0);
  EXPECT_TRUE(m.IsSquare());
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  Matrix d = Matrix::Diagonal(Vector{2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
}

TEST(MatrixTest, RowAndColExtraction) {
  Matrix m = Matrix::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  Vector r = m.Row(1);
  Vector c = m.Col(2);
  EXPECT_DOUBLE_EQ(r[0], 4.0);
  EXPECT_DOUBLE_EQ(c[0], 3.0);
  EXPECT_DOUBLE_EQ(c[1], 6.0);
}

TEST(MatrixTest, MatVec) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Vector y = m.MatVec(Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(MatrixTest, TransposedMatVecMatchesExplicitTranspose) {
  Matrix m = Matrix::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  Vector x = {1.0, -1.0};
  Vector lhs = m.TransposedMatVec(x);
  Vector rhs = m.Transposed().MatVec(x);
  for (size_t i = 0; i < lhs.size(); ++i) EXPECT_DOUBLE_EQ(lhs[i], rhs[i]);
}

TEST(MatrixTest, MatMul) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix b = Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(MatrixTest, MatMulIdentityIsNoop) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_TRUE(a.MatMul(Matrix::Identity(2)).ApproxEquals(a, 0.0));
  EXPECT_TRUE(Matrix::Identity(2).MatMul(a).ApproxEquals(a, 0.0));
}

TEST(MatrixTest, ArithmeticOperators) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix b = Matrix::Identity(2);
  EXPECT_DOUBLE_EQ((a + b)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((a - b)(1, 1), 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(1, 0), 6.0);
}

TEST(MatrixTest, NormsAndMaxAbs) {
  Matrix m = Matrix::FromRows({{3.0, 0.0}, {0.0, -4.0}});
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, ColumnStochasticDetection) {
  Matrix markov = Matrix::FromRows({{0.9, 0.2}, {0.1, 0.8}});
  EXPECT_TRUE(markov.IsColumnStochastic());
  Matrix bad_sum = Matrix::FromRows({{0.9, 0.2}, {0.2, 0.8}});
  EXPECT_FALSE(bad_sum.IsColumnStochastic());
  Matrix negative = Matrix::FromRows({{1.1, 0.0}, {-0.1, 1.0}});
  EXPECT_FALSE(negative.IsColumnStochastic());
}

TEST(MatrixTest, SymmetryDetection) {
  EXPECT_TRUE(Matrix::FromRows({{1.0, 2.0}, {2.0, 3.0}}).IsSymmetric());
  EXPECT_FALSE(Matrix::FromRows({{1.0, 2.0}, {2.1, 3.0}}).IsSymmetric());
  EXPECT_FALSE(Matrix(2, 3).IsSymmetric());  // non-square
}

TEST(MatrixTest, ApproxEquals) {
  Matrix a = Matrix::Identity(2);
  Matrix b = a;
  b(0, 0) += 1e-12;
  EXPECT_TRUE(a.ApproxEquals(b, 1e-9));
  EXPECT_FALSE(a.ApproxEquals(b, 1e-15));
  EXPECT_FALSE(a.ApproxEquals(Matrix(3, 3), 1.0));
}

TEST(MatrixDeathTest, RaggedInitializerRejected) {
  EXPECT_DEATH(Matrix::FromRows({{1.0, 2.0}, {3.0}}), "ragged");
}

TEST(MatrixDeathTest, MatVecDimensionMismatch) {
  Matrix m(2, 3);
  EXPECT_DEATH(m.MatVec(Vector{1.0, 2.0}), "FRAPP_CHECK");
}

}  // namespace
}  // namespace linalg
}  // namespace frapp
