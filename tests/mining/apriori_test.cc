#include "frapp/mining/apriori.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "frapp/data/census.h"
#include "frapp/mining/support_counter.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace mining {
namespace {

data::CategoricalSchema TinySchema() {
  StatusOr<data::CategoricalSchema> s = data::CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"0", "1"}}, {"c", {"0", "1", "2"}}});
  return *std::move(s);
}

data::CategoricalTable RandomTable(size_t n, uint64_t seed) {
  data::CategoricalSchema schema = TinySchema();
  StatusOr<data::CategoricalTable> t = data::CategoricalTable::Create(schema);
  random::Pcg64 rng(seed);
  std::vector<uint8_t> row(schema.num_attributes());
  for (size_t i = 0; i < n; ++i) {
    // Skewed distribution so some itemsets are frequent and others rare.
    row[0] = rng.NextBernoulli(0.8) ? 0 : 1;
    row[1] = rng.NextBernoulli(0.6) ? 0 : 1;
    row[2] = static_cast<uint8_t>(rng.NextBernoulli(0.7) ? 0 : 1 + rng.NextBounded(2));
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  return *std::move(t);
}

// Brute-force miner: enumerate every itemset and count directly.
std::vector<FrequentItemset> BruteForce(const data::CategoricalTable& table,
                                        double min_support) {
  const data::CategoricalSchema& schema = table.schema();
  std::vector<FrequentItemset> out;
  // Enumerate per-attribute choices: category id or "absent".
  std::vector<size_t> choice(schema.num_attributes(), 0);
  const auto total = [&]() {
    size_t t = 1;
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      t *= schema.Cardinality(j) + 1;
    }
    return t;
  }();
  for (size_t code = 0; code < total; ++code) {
    size_t rest = code;
    std::vector<Item> items;
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      const size_t options = schema.Cardinality(j) + 1;
      const size_t pick = rest % options;
      rest /= options;
      if (pick > 0) {
        items.push_back(Item{static_cast<uint16_t>(j),
                             static_cast<uint16_t>(pick - 1)});
      }
    }
    if (items.empty()) continue;
    Itemset itemset = *Itemset::Create(items);
    const double support = SupportFraction(table, itemset);
    if (support >= min_support) out.push_back({itemset, support});
  }
  return out;
}

TEST(AprioriTest, MatchesBruteForceOnRandomData) {
  data::CategoricalTable table = RandomTable(2000, 99);
  AprioriOptions options;
  options.min_support = 0.05;
  StatusOr<AprioriResult> result = MineExact(table, options);
  ASSERT_TRUE(result.ok());

  std::vector<FrequentItemset> expected = BruteForce(table, options.min_support);
  EXPECT_EQ(result->TotalFrequent(), expected.size());
  // Every brute-force itemset must be found with identical support.
  std::unordered_map<Itemset, double, Itemset::Hash> found;
  for (const auto& level : result->by_length) {
    for (const auto& f : level) found[f.itemset] = f.support;
  }
  for (const auto& e : expected) {
    auto it = found.find(e.itemset);
    ASSERT_NE(it, found.end()) << "missing itemset";
    EXPECT_DOUBLE_EQ(it->second, e.support);
  }
}

TEST(AprioriTest, ThresholdIsInclusive) {
  // 1 of 4 rows -> support 0.25 >= 0.25 must count as frequent.
  data::CategoricalSchema schema = TinySchema();
  StatusOr<data::CategoricalTable> t = data::CategoricalTable::Create(schema);
  ASSERT_TRUE(t->AppendRow({0, 0, 0}).ok());
  ASSERT_TRUE(t->AppendRow({0, 0, 1}).ok());
  ASSERT_TRUE(t->AppendRow({0, 1, 2}).ok());
  ASSERT_TRUE(t->AppendRow({1, 1, 2}).ok());
  AprioriOptions options;
  options.min_support = 0.25;
  StatusOr<AprioriResult> result = MineExact(*t, options);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const auto& f : result->OfLength(1)) {
    found |= f.itemset == *Itemset::Create({{0, 1}});
  }
  EXPECT_TRUE(found);
}

TEST(AprioriTest, MaxLengthCapsPasses) {
  data::CategoricalTable table = RandomTable(500, 7);
  AprioriOptions options;
  options.min_support = 0.01;
  options.max_length = 2;
  StatusOr<AprioriResult> result = MineExact(table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->MaxLength(), 2u);
  EXPECT_FALSE(result->OfLength(2).empty());
}

TEST(AprioriTest, RejectsBadThreshold) {
  data::CategoricalTable table = RandomTable(10, 3);
  ExactSupportEstimator estimator(table);
  AprioriOptions options;
  options.min_support = 0.0;
  EXPECT_FALSE(MineFrequentItemsets(table.schema(), estimator, options).ok());
  options.min_support = 1.5;
  EXPECT_FALSE(MineFrequentItemsets(table.schema(), estimator, options).ok());
}

TEST(AprioriTest, ResultAccessors) {
  data::CategoricalTable table = RandomTable(1000, 11);
  AprioriOptions options;
  options.min_support = 0.05;
  StatusOr<AprioriResult> result = MineExact(table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->OfLength(0).empty());
  EXPECT_TRUE(result->OfLength(99).empty());
  size_t sum = 0;
  for (size_t k = 1; k <= result->MaxLength(); ++k) sum += result->OfLength(k).size();
  EXPECT_EQ(sum, result->TotalFrequent());
  EXPECT_FALSE(result->candidates_per_pass.empty());
  // Pass 1 candidates = total categories.
  EXPECT_EQ(result->candidates_per_pass[0], 7u);
}

// An estimator that returns a fixed value for everything.
class ConstantEstimator : public SupportEstimator {
 public:
  explicit ConstantEstimator(double value) : value_(value) {}
  StatusOr<double> EstimateSupport(const Itemset&) override { return value_; }

 private:
  double value_;
};

TEST(AprioriTest, NegativeEstimatesMeanNothingIsFrequent) {
  ConstantEstimator estimator(-0.5);
  AprioriOptions options;
  options.min_support = 0.02;
  StatusOr<AprioriResult> result =
      MineFrequentItemsets(TinySchema(), estimator, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->TotalFrequent(), 0u);
  EXPECT_EQ(result->MaxLength(), 0u);
}

TEST(AprioriTest, AllFrequentEstimatorMinesEveryAttributeCombination) {
  ConstantEstimator estimator(0.9);
  AprioriOptions options;
  options.min_support = 0.02;
  StatusOr<AprioriResult> result =
      MineFrequentItemsets(TinySchema(), estimator, options);
  ASSERT_TRUE(result.ok());
  // Lengths 1..3 with all category combinations: 7, (2*2 + 2*3 + 2*3) = 16,
  // 2*2*3 = 12.
  EXPECT_EQ(result->OfLength(1).size(), 7u);
  EXPECT_EQ(result->OfLength(2).size(), 16u);
  EXPECT_EQ(result->OfLength(3).size(), 12u);
}

TEST(AprioriTest, CandidateGenerationPrunesInfrequentSubsets) {
  // On real data the candidate count never exceeds the join of frequent sets.
  StatusOr<data::CategoricalTable> census = data::census::MakeDataset(5000, 5);
  ASSERT_TRUE(census.ok());
  AprioriOptions options;
  options.min_support = 0.02;
  StatusOr<AprioriResult> result = MineExact(*census, options);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->candidates_per_pass.size(), 2u);
  // Every frequent k-itemset must have all its (k-1)-subsets frequent.
  for (size_t k = 2; k <= result->MaxLength(); ++k) {
    std::unordered_set<Itemset, Itemset::Hash> prev;
    for (const auto& f : result->OfLength(k - 1)) prev.insert(f.itemset);
    for (const auto& f : result->OfLength(k)) {
      const auto& items = f.itemset.items();
      for (size_t skip = 0; skip < items.size(); ++skip) {
        std::vector<Item> subset;
        for (size_t i = 0; i < items.size(); ++i) {
          if (i != skip) subset.push_back(items[i]);
        }
        EXPECT_TRUE(prev.count(*Itemset::Create(subset)) > 0);
      }
    }
  }
}

}  // namespace
}  // namespace mining
}  // namespace frapp
