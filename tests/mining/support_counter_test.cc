#include "frapp/mining/support_counter.h"

#include <gtest/gtest.h>

namespace frapp {
namespace mining {
namespace {

data::CategoricalTable MakeTable() {
  StatusOr<data::CategoricalSchema> s = data::CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}});
  StatusOr<data::CategoricalTable> t = data::CategoricalTable::Create(*s);
  // Rows: (0,0) x3, (0,1) x2, (1,2) x1.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(t->AppendRow({0, 0}).ok());
  for (int i = 0; i < 2; ++i) EXPECT_TRUE(t->AppendRow({0, 1}).ok());
  EXPECT_TRUE(t->AppendRow({1, 2}).ok());
  return *std::move(t);
}

TEST(SupportCounterTest, SingleItemCounts) {
  data::CategoricalTable t = MakeTable();
  EXPECT_EQ(CountSupport(t, *Itemset::Create({{0, 0}})), 5u);
  EXPECT_EQ(CountSupport(t, *Itemset::Create({{0, 1}})), 1u);
  EXPECT_EQ(CountSupport(t, *Itemset::Create({{1, 0}})), 3u);
  EXPECT_EQ(CountSupport(t, *Itemset::Create({{1, 2}})), 1u);
}

TEST(SupportCounterTest, PairCounts) {
  data::CategoricalTable t = MakeTable();
  EXPECT_EQ(CountSupport(t, *Itemset::Create({{0, 0}, {1, 0}})), 3u);
  EXPECT_EQ(CountSupport(t, *Itemset::Create({{0, 0}, {1, 2}})), 0u);
  EXPECT_EQ(CountSupport(t, *Itemset::Create({{0, 1}, {1, 2}})), 1u);
}

TEST(SupportCounterTest, EmptyItemsetMatchesAll) {
  data::CategoricalTable t = MakeTable();
  EXPECT_EQ(CountSupport(t, Itemset()), 6u);
}

TEST(SupportCounterTest, SupportFraction) {
  data::CategoricalTable t = MakeTable();
  EXPECT_DOUBLE_EQ(SupportFraction(t, *Itemset::Create({{1, 0}})), 0.5);
}

TEST(SupportCounterTest, EmptyTableFractionIsZero) {
  StatusOr<data::CategoricalSchema> s =
      data::CategoricalSchema::Create({{"a", {"0", "1"}}});
  StatusOr<data::CategoricalTable> t = data::CategoricalTable::Create(*s);
  EXPECT_DOUBLE_EQ(SupportFraction(*t, *Itemset::Create({{0, 0}})), 0.0);
}

TEST(SupportCounterTest, BatchMatchesIndividual) {
  data::CategoricalTable t = MakeTable();
  std::vector<Itemset> candidates = {
      *Itemset::Create({{0, 0}}),
      *Itemset::Create({{1, 1}}),
      *Itemset::Create({{0, 0}, {1, 1}}),
  };
  std::vector<size_t> batch = CountSupports(t, candidates);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(batch[i], CountSupport(t, candidates[i]));
  }
}

}  // namespace
}  // namespace mining
}  // namespace frapp
