#include "frapp/mining/vertical_index.h"

#include <gtest/gtest.h>

#include "frapp/mining/support_counter.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace mining {
namespace {

data::CategoricalSchema RandomSchema(random::Pcg64& rng, size_t max_attributes = 6,
                                     size_t max_cardinality = 7) {
  const size_t m = 1 + rng.NextBounded(max_attributes);
  std::vector<data::Attribute> attrs;
  for (size_t j = 0; j < m; ++j) {
    // Cardinality 1 included on purpose: such attributes never diverge and
    // have a single always-set bitmap.
    const size_t card = 1 + rng.NextBounded(max_cardinality);
    std::vector<std::string> categories;
    for (size_t c = 0; c < card; ++c) categories.push_back(std::to_string(c));
    attrs.push_back({"a" + std::to_string(j), std::move(categories)});
  }
  return *data::CategoricalSchema::Create(std::move(attrs));
}

data::CategoricalTable RandomTable(const data::CategoricalSchema& schema, size_t n,
                                   random::Pcg64& rng) {
  data::CategoricalTable table = *data::CategoricalTable::Create(schema);
  std::vector<uint8_t> row(schema.num_attributes());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < row.size(); ++j) {
      row[j] = static_cast<uint8_t>(rng.NextBounded(schema.Cardinality(j)));
    }
    EXPECT_TRUE(table.AppendRow(row).ok());
  }
  return table;
}

Itemset RandomItemset(const data::CategoricalSchema& schema, size_t k,
                      random::Pcg64& rng) {
  std::vector<Item> items;
  std::vector<size_t> attrs(schema.num_attributes());
  for (size_t j = 0; j < attrs.size(); ++j) attrs[j] = j;
  // Partial Fisher-Yates: k distinct attributes.
  for (size_t i = 0; i < k; ++i) {
    std::swap(attrs[i], attrs[i + rng.NextBounded(attrs.size() - i)]);
    const size_t j = attrs[i];
    items.push_back(Item{static_cast<uint16_t>(j),
                         static_cast<uint16_t>(rng.NextBounded(schema.Cardinality(j)))});
  }
  return *Itemset::Create(std::move(items));
}

TEST(VerticalIndexTest, MatchesScalarCountsOnRandomTables) {
  random::Pcg64 rng(7);
  // Row counts straddling the 64-bit word boundary and beyond.
  const size_t sizes[] = {0, 1, 63, 64, 65, 127, 128, 1000};
  for (size_t n : sizes) {
    for (int trial = 0; trial < 8; ++trial) {
      const data::CategoricalSchema schema = RandomSchema(rng);
      const data::CategoricalTable table = RandomTable(schema, n, rng);
      const VerticalIndex index = VerticalIndex::Build(table);
      ASSERT_EQ(index.num_rows(), n);
      for (size_t k = 0; k <= schema.num_attributes(); ++k) {
        const Itemset itemset = RandomItemset(schema, k, rng);
        EXPECT_EQ(index.CountSupport(itemset), CountSupport(table, itemset))
            << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(VerticalIndexTest, CountSupportsMatchesScalarBatch) {
  random::Pcg64 rng(8);
  const data::CategoricalSchema schema = RandomSchema(rng);
  const data::CategoricalTable table = RandomTable(schema, 700, rng);
  const VerticalIndex index = VerticalIndex::Build(table);

  std::vector<Itemset> candidates;
  for (int i = 0; i < 40; ++i) {
    candidates.push_back(
        RandomItemset(schema, 1 + rng.NextBounded(schema.num_attributes()), rng));
  }
  const std::vector<size_t> indexed = index.CountSupports(candidates);
  // CountSupports(table, ...) routes long lists through its own index; check
  // both against the scalar loop.
  const std::vector<size_t> routed = CountSupports(table, candidates);
  ASSERT_EQ(indexed.size(), candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    EXPECT_EQ(indexed[c], CountSupport(table, candidates[c]));
    EXPECT_EQ(routed[c], indexed[c]);
  }
}

TEST(VerticalIndexTest, EmptyItemsetCountsAllRows) {
  random::Pcg64 rng(9);
  const data::CategoricalSchema schema = RandomSchema(rng);
  const data::CategoricalTable table = RandomTable(schema, 321, rng);
  const VerticalIndex index = VerticalIndex::Build(table);
  EXPECT_EQ(index.CountSupport(Itemset()), 321u);
  EXPECT_DOUBLE_EQ(index.SupportFraction(Itemset()), 1.0);
}

TEST(VerticalIndexTest, TailBitsAreZero) {
  // 65 rows, all category 0 on a binary attribute: bitmap word 1 must carry
  // exactly one set bit, no tail garbage leaking into counts.
  data::CategoricalSchema schema =
      *data::CategoricalSchema::Create({{"a", {"0", "1"}}});
  data::CategoricalTable table = *data::CategoricalTable::Create(schema);
  for (int i = 0; i < 65; ++i) ASSERT_TRUE(table.AppendRow({0}).ok());
  const VerticalIndex index = VerticalIndex::Build(table);
  EXPECT_EQ(index.CountSupport(*Itemset::Create({{0, 0}})), 65u);
  EXPECT_EQ(index.CountSupport(*Itemset::Create({{0, 1}})), 0u);
  EXPECT_EQ(index.words_per_item(), 2u);
  EXPECT_EQ(index.Bitmap(0, 1)[0], 0u);
  EXPECT_EQ(index.Bitmap(0, 1)[1], 0u);
}

TEST(VerticalIndexTest, BuildIsIdenticalAcrossThreadCounts) {
  random::Pcg64 rng(10);
  const data::CategoricalSchema schema = RandomSchema(rng);
  const data::CategoricalTable table = RandomTable(schema, 999, rng);
  const VerticalIndex serial = VerticalIndex::Build(table, 1);
  for (size_t threads : {2u, 3u, 8u}) {
    const VerticalIndex parallel = VerticalIndex::Build(table, threads);
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      for (size_t c = 0; c < schema.Cardinality(j); ++c) {
        for (size_t w = 0; w < serial.words_per_item(); ++w) {
          ASSERT_EQ(parallel.Bitmap(j, c)[w], serial.Bitmap(j, c)[w])
              << "threads=" << threads << " attr=" << j << " cat=" << c;
        }
      }
    }
  }
}

}  // namespace
}  // namespace mining
}  // namespace frapp
