#include "frapp/mining/rules.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "frapp/data/census.h"
#include "frapp/dist/mechanism_spec.h"
#include "frapp/pipeline/privacy_pipeline.h"

namespace frapp {
namespace mining {
namespace {

AprioriResult MakeResult() {
  // Supports: {A}=0.5, {B}=0.4, {A,B}=0.3.
  AprioriResult r;
  r.by_length.resize(2);
  r.by_length[0].push_back({*Itemset::Create({{0, 0}}), 0.5});
  r.by_length[0].push_back({*Itemset::Create({{1, 0}}), 0.4});
  r.by_length[1].push_back({*Itemset::Create({{0, 0}, {1, 0}}), 0.3});
  return r;
}

TEST(RulesTest, ConfidenceComputation) {
  std::vector<AssociationRule> rules = GenerateRules(MakeResult(), 0.0);
  ASSERT_EQ(rules.size(), 2u);
  // B => A has confidence 0.3/0.4 = 0.75 (strongest first).
  EXPECT_EQ(rules[0].antecedent, *Itemset::Create({{1, 0}}));
  EXPECT_NEAR(rules[0].confidence, 0.75, 1e-12);
  EXPECT_NEAR(rules[0].support, 0.3, 1e-12);
  // A => B has confidence 0.3/0.5 = 0.6.
  EXPECT_NEAR(rules[1].confidence, 0.6, 1e-12);
}

TEST(RulesTest, MinConfidenceFilters) {
  EXPECT_EQ(GenerateRules(MakeResult(), 0.7).size(), 1u);
  EXPECT_EQ(GenerateRules(MakeResult(), 0.8).size(), 0u);
}

TEST(RulesTest, SingletonsYieldNoRules) {
  AprioriResult r;
  r.by_length.resize(1);
  r.by_length[0].push_back({*Itemset::Create({{0, 0}}), 0.5});
  EXPECT_TRUE(GenerateRules(r, 0.0).empty());
}

TEST(RulesTest, ThreeItemsetEnumeratesAllSplits) {
  AprioriResult r;
  r.by_length.resize(3);
  r.by_length[0].push_back({*Itemset::Create({{0, 0}}), 0.6});
  r.by_length[0].push_back({*Itemset::Create({{1, 0}}), 0.6});
  r.by_length[0].push_back({*Itemset::Create({{2, 0}}), 0.6});
  r.by_length[1].push_back({*Itemset::Create({{0, 0}, {1, 0}}), 0.4});
  r.by_length[1].push_back({*Itemset::Create({{0, 0}, {2, 0}}), 0.4});
  r.by_length[1].push_back({*Itemset::Create({{1, 0}, {2, 0}}), 0.4});
  r.by_length[2].push_back({*Itemset::Create({{0, 0}, {1, 0}, {2, 0}}), 0.3});
  // 3-itemset contributes 2^3 - 2 = 6 rules; each 2-itemset contributes 2.
  EXPECT_EQ(GenerateRules(r, 0.0).size(), 6u + 3u * 2u);
}

TEST(RulesTest, MissingAntecedentSupportSkipsRule) {
  // {A,B} frequent but {A} missing from the result: the A => B rule cannot
  // be scored and must be skipped (not crash).
  AprioriResult r;
  r.by_length.resize(2);
  r.by_length[0].push_back({*Itemset::Create({{1, 0}}), 0.4});
  r.by_length[1].push_back({*Itemset::Create({{0, 0}, {1, 0}}), 0.3});
  std::vector<AssociationRule> rules = GenerateRules(r, 0.0);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].antecedent, *Itemset::Create({{1, 0}}));
}

// ---------------------------------------------------------------- oracle --
//
// An independent brute-force re-derivation of the rule phase: recursive
// subset enumeration (the implementation iterates bitmasks), a std::map
// support lookup, and its own copy of the documented total order. Any
// divergence between the two is a real bug in one of them.

void OracleSplits(const std::vector<Item>& items, size_t index,
                  std::vector<Item>* lhs, std::vector<Item>* rhs,
                  const std::map<Itemset, double>& support, double sup_f,
                  const RuleOptions& options,
                  std::vector<AssociationRule>* out) {
  if (index == items.size()) {
    if (lhs->empty() || rhs->empty()) return;
    const Itemset antecedent = *Itemset::Create(*lhs);
    auto it = support.find(antecedent);
    if (it == support.end() || it->second <= 0.0) return;
    const double confidence = sup_f / it->second;
    if (confidence < options.min_confidence) return;
    out->push_back(AssociationRule{antecedent, *Itemset::Create(*rhs), sup_f,
                                   confidence});
    return;
  }
  lhs->push_back(items[index]);
  OracleSplits(items, index + 1, lhs, rhs, support, sup_f, options, out);
  lhs->pop_back();
  rhs->push_back(items[index]);
  OracleSplits(items, index + 1, lhs, rhs, support, sup_f, options, out);
  rhs->pop_back();
}

std::vector<AssociationRule> RuleOracle(const AprioriResult& result,
                                        const RuleOptions& options) {
  std::map<Itemset, double> support;
  for (const auto& level : result.by_length) {
    for (const FrequentItemset& f : level) support[f.itemset] = f.support;
  }
  std::vector<AssociationRule> out;
  for (const auto& level : result.by_length) {
    for (const FrequentItemset& f : level) {
      if (f.itemset.size() < 2 || f.support < options.min_support) continue;
      std::vector<Item> lhs, rhs;
      OracleSplits(f.itemset.items(), 0, &lhs, &rhs, support, f.support,
                   options, &out);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence)
                return a.confidence > b.confidence;
              if (a.support != b.support) return a.support > b.support;
              if (a.antecedent != b.antecedent)
                return a.antecedent < b.antecedent;
              return a.consequent < b.consequent;
            });
  return out;
}

void ExpectSameRules(const std::vector<AssociationRule>& got,
                     const std::vector<AssociationRule>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(got[i].antecedent == want[i].antecedent) << "rule " << i;
    EXPECT_TRUE(got[i].consequent == want[i].consequent) << "rule " << i;
    // Bitwise: both sides compute sup(F)/sup(A) from identical doubles.
    EXPECT_EQ(got[i].support, want[i].support) << "rule " << i;
    EXPECT_EQ(got[i].confidence, want[i].confidence) << "rule " << i;
  }
}

/// A dense 4-attribute lattice with every subset frequent: 4 singletons,
/// 6 pairs, 4 triples, 1 quad — 2^4 - 5 = 11 rule sources, 50 splits.
/// Supports decay with length but are intentionally "noisy" (non-monotone
/// within a level) the way reconstructed supports are.
AprioriResult MakeDenseResult() {
  AprioriResult r;
  r.by_length.resize(4);
  double wiggle = 0.0;
  for (uint16_t a = 0; a < 4; ++a) {
    r.by_length[0].push_back({*Itemset::Create({{a, 0}}), 0.5 + wiggle});
    wiggle += 0.07;
  }
  for (uint16_t a = 0; a < 4; ++a) {
    for (uint16_t b = static_cast<uint16_t>(a + 1); b < 4; ++b) {
      r.by_length[1].push_back(
          {*Itemset::Create({{a, 0}, {b, 0}}), 0.3 + 0.01 * (a + b)});
    }
  }
  for (uint16_t skip = 0; skip < 4; ++skip) {
    std::vector<Item> items;
    for (uint16_t a = 0; a < 4; ++a) {
      if (a != skip) items.push_back({a, 0});
    }
    r.by_length[2].push_back({*Itemset::Create(items), 0.1 + 0.02 * skip});
  }
  r.by_length[3].push_back(
      {*Itemset::Create({{0, 0}, {1, 0}, {2, 0}, {3, 0}}), 0.05});
  return r;
}

TEST(RulesTest, OracleAgreesOnExhaustiveDenseLattice) {
  const AprioriResult result = MakeDenseResult();
  for (double min_confidence : {0.0, 0.2, 0.5, 0.9}) {
    for (double min_support : {0.0, 0.09, 0.2}) {
      SCOPED_TRACE("conf " + std::to_string(min_confidence) + " sup " +
                   std::to_string(min_support));
      RuleOptions options;
      options.min_confidence = min_confidence;
      options.min_support = min_support;
      StatusOr<std::vector<AssociationRule>> got =
          GenerateAssociationRules(result, options);
      ASSERT_TRUE(got.ok());
      ExpectSameRules(*got, RuleOracle(result, options));
    }
  }
  // Unfiltered, the dense lattice emits every split of every rule source:
  // 6*2 + 4*6 + 1*14 = 50 (all antecedent supports present and positive).
  RuleOptions all;
  StatusOr<std::vector<AssociationRule>> rules =
      GenerateAssociationRules(result, all);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 50u);
}

TEST(RulesTest, OracleAgreesOnMissingAndNonPositiveAntecedents) {
  // Reconstruction can drop or zero an antecedent's support; both sides
  // must skip exactly the same splits.
  AprioriResult r = MakeDenseResult();
  r.by_length[0].erase(r.by_length[0].begin());  // {0} missing entirely
  r.by_length[0][0].support = 0.0;               // {1} present but zero
  RuleOptions options;
  StatusOr<std::vector<AssociationRule>> got =
      GenerateAssociationRules(r, options);
  ASSERT_TRUE(got.ok());
  ExpectSameRules(*got, RuleOracle(r, options));
  RuleGenStats stats;
  ASSERT_TRUE(GenerateAssociationRules(r, options, &stats).ok());
  EXPECT_GT(stats.missing_antecedents, 0u);
}

/// Spot check against REAL mined results: rules over reconstructed CENSUS
/// supports (DET-GD categorical, MASK boolean) equal the oracle's.
TEST(RulesTest, OracleAgreesOnMinedCensusResults) {
  StatusOr<data::CategoricalTable> table =
      data::census::MakeDataset(50000, data::census::kDefaultSeed);
  ASSERT_TRUE(table.ok());
  for (const dist::MechanismSpec::Kind kind :
       {dist::MechanismSpec::Kind::kDetGd, dist::MechanismSpec::Kind::kMask}) {
    SCOPED_TRACE(static_cast<int>(kind));
    dist::MechanismSpec spec;
    spec.kind = kind;
    StatusOr<std::unique_ptr<core::Mechanism>> mech =
        dist::MakeMechanism(spec, table->schema());
    ASSERT_TRUE(mech.ok());
    pipeline::PipelineOptions popts;
    popts.num_shards = 3;
    popts.num_threads = 2;
    popts.perturb_seed = 7;
    popts.mining.min_support = 0.02;
    StatusOr<pipeline::PipelineResult> run =
        pipeline::PrivacyPipeline(popts).Run(**mech, *table);
    ASSERT_TRUE(run.ok()) << run.status().ToString();

    for (double min_confidence : {0.0, 0.5}) {
      RuleOptions options;
      options.min_confidence = min_confidence;
      StatusOr<std::vector<AssociationRule>> got =
          GenerateAssociationRules(run->mined, options);
      ASSERT_TRUE(got.ok());
      ExpectSameRules(*got, RuleOracle(run->mined, options));
    }
  }
}

TEST(RulesTest, ToStringRendersRule) {
  StatusOr<data::CategoricalSchema> s = data::CategoricalSchema::Create(
      {{"disease", {"malaria", "tb"}}, {"sex", {"F", "M"}}});
  AssociationRule rule{*Itemset::Create({{1, 0}}), *Itemset::Create({{0, 1}}),
                       0.1, 0.8};
  EXPECT_EQ(rule.ToString(*s), "{sex=F} => {disease=tb}");
}

}  // namespace
}  // namespace mining
}  // namespace frapp
