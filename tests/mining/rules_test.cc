#include "frapp/mining/rules.h"

#include <gtest/gtest.h>

namespace frapp {
namespace mining {
namespace {

AprioriResult MakeResult() {
  // Supports: {A}=0.5, {B}=0.4, {A,B}=0.3.
  AprioriResult r;
  r.by_length.resize(2);
  r.by_length[0].push_back({*Itemset::Create({{0, 0}}), 0.5});
  r.by_length[0].push_back({*Itemset::Create({{1, 0}}), 0.4});
  r.by_length[1].push_back({*Itemset::Create({{0, 0}, {1, 0}}), 0.3});
  return r;
}

TEST(RulesTest, ConfidenceComputation) {
  std::vector<AssociationRule> rules = GenerateRules(MakeResult(), 0.0);
  ASSERT_EQ(rules.size(), 2u);
  // B => A has confidence 0.3/0.4 = 0.75 (strongest first).
  EXPECT_EQ(rules[0].antecedent, *Itemset::Create({{1, 0}}));
  EXPECT_NEAR(rules[0].confidence, 0.75, 1e-12);
  EXPECT_NEAR(rules[0].support, 0.3, 1e-12);
  // A => B has confidence 0.3/0.5 = 0.6.
  EXPECT_NEAR(rules[1].confidence, 0.6, 1e-12);
}

TEST(RulesTest, MinConfidenceFilters) {
  EXPECT_EQ(GenerateRules(MakeResult(), 0.7).size(), 1u);
  EXPECT_EQ(GenerateRules(MakeResult(), 0.8).size(), 0u);
}

TEST(RulesTest, SingletonsYieldNoRules) {
  AprioriResult r;
  r.by_length.resize(1);
  r.by_length[0].push_back({*Itemset::Create({{0, 0}}), 0.5});
  EXPECT_TRUE(GenerateRules(r, 0.0).empty());
}

TEST(RulesTest, ThreeItemsetEnumeratesAllSplits) {
  AprioriResult r;
  r.by_length.resize(3);
  r.by_length[0].push_back({*Itemset::Create({{0, 0}}), 0.6});
  r.by_length[0].push_back({*Itemset::Create({{1, 0}}), 0.6});
  r.by_length[0].push_back({*Itemset::Create({{2, 0}}), 0.6});
  r.by_length[1].push_back({*Itemset::Create({{0, 0}, {1, 0}}), 0.4});
  r.by_length[1].push_back({*Itemset::Create({{0, 0}, {2, 0}}), 0.4});
  r.by_length[1].push_back({*Itemset::Create({{1, 0}, {2, 0}}), 0.4});
  r.by_length[2].push_back({*Itemset::Create({{0, 0}, {1, 0}, {2, 0}}), 0.3});
  // 3-itemset contributes 2^3 - 2 = 6 rules; each 2-itemset contributes 2.
  EXPECT_EQ(GenerateRules(r, 0.0).size(), 6u + 3u * 2u);
}

TEST(RulesTest, MissingAntecedentSupportSkipsRule) {
  // {A,B} frequent but {A} missing from the result: the A => B rule cannot
  // be scored and must be skipped (not crash).
  AprioriResult r;
  r.by_length.resize(2);
  r.by_length[0].push_back({*Itemset::Create({{1, 0}}), 0.4});
  r.by_length[1].push_back({*Itemset::Create({{0, 0}, {1, 0}}), 0.3});
  std::vector<AssociationRule> rules = GenerateRules(r, 0.0);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].antecedent, *Itemset::Create({{1, 0}}));
}

TEST(RulesTest, ToStringRendersRule) {
  StatusOr<data::CategoricalSchema> s = data::CategoricalSchema::Create(
      {{"disease", {"malaria", "tb"}}, {"sex", {"F", "M"}}});
  AssociationRule rule{*Itemset::Create({{1, 0}}), *Itemset::Create({{0, 1}}),
                       0.1, 0.8};
  EXPECT_EQ(rule.ToString(*s), "{sex=F} => {disease=tb}");
}

}  // namespace
}  // namespace mining
}  // namespace frapp
