#include "frapp/mining/itemset.h"

#include <gtest/gtest.h>

namespace frapp {
namespace mining {
namespace {

data::CategoricalSchema TinySchema() {
  StatusOr<data::CategoricalSchema> s = data::CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"x", "y", "z"}}, {"c", {"p", "q"}}});
  return *std::move(s);
}

TEST(ItemsetTest, CreateSortsByAttribute) {
  StatusOr<Itemset> s = Itemset::Create({{2, 0}, {0, 1}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 2u);
  EXPECT_EQ(s->item(0).attribute, 0);
  EXPECT_EQ(s->item(1).attribute, 2);
}

TEST(ItemsetTest, RejectsDuplicateAttributes) {
  EXPECT_FALSE(Itemset::Create({{1, 0}, {1, 1}}).ok());
}

TEST(ItemsetTest, EmptyItemset) {
  StatusOr<Itemset> s = Itemset::Create({});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
}

TEST(ItemsetTest, AttributeMaskAndIndices) {
  StatusOr<Itemset> s = Itemset::Create({{0, 1}, {2, 0}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->AttributeMask(), 0b101u);
  EXPECT_EQ(s->AttributeIndices(), (std::vector<size_t>{0, 2}));
}

TEST(ItemsetTest, Contains) {
  Itemset big = *Itemset::Create({{0, 1}, {1, 2}, {2, 0}});
  Itemset sub = *Itemset::Create({{0, 1}, {2, 0}});
  Itemset wrong_value = *Itemset::Create({{0, 0}});
  Itemset wrong_attr = *Itemset::Create({{0, 1}, {1, 2}, {2, 1}});
  EXPECT_TRUE(big.Contains(sub));
  EXPECT_TRUE(big.Contains(big));
  EXPECT_TRUE(big.Contains(*Itemset::Create({})));
  EXPECT_FALSE(big.Contains(wrong_value));
  EXPECT_FALSE(big.Contains(wrong_attr));
  EXPECT_FALSE(sub.Contains(big));
}

TEST(ItemsetTest, OrderingAndEquality) {
  Itemset a = *Itemset::Create({{0, 1}});
  Itemset b = *Itemset::Create({{0, 1}});
  Itemset c = *Itemset::Create({{0, 2}});
  EXPECT_EQ(a, b);
  EXPECT_LT(a, c);
}

TEST(ItemsetTest, HashConsistentWithEquality) {
  Itemset a = *Itemset::Create({{0, 1}, {1, 2}});
  Itemset b = *Itemset::Create({{1, 2}, {0, 1}});  // same after sorting
  EXPECT_EQ(Itemset::Hash()(a), Itemset::Hash()(b));
}

TEST(ItemsetTest, ToStringUsesSchemaLabels) {
  Itemset s = *Itemset::Create({{0, 1}, {1, 2}});
  EXPECT_EQ(s.ToString(TinySchema()), "{a=1, b=z}");
}

}  // namespace
}  // namespace mining
}  // namespace frapp
