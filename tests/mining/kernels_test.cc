// The kernel-dispatch invariants:
//
//  1. LEVEL EQUIVALENCE: every supported kernel level returns exactly the
//     same counts as the scalar reference on randomized bitmaps — including
//     sub-vector tails (words % 4, words % 8), empty ranges, all-zero and
//     all-one maps, and intersection arities up to k = 32. Counts are
//     integers, so "equivalent" means equal, not close.
//  2. DISPATCH RESOLUTION: the once-resolved level honors a supported
//     FRAPP_FORCE_KERNEL override and falls back to the best supported
//     level otherwise; names round-trip through the parser.
//  3. E2E BIT-IDENTITY: a full CENSUS 50k exact mine produces identical
//     itemsets and supports under every supported kernel level.

#include "frapp/mining/kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "frapp/data/census.h"
#include "frapp/mining/apriori.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace mining {
namespace {

std::vector<KernelLevel> SupportedLevels() {
  std::vector<KernelLevel> levels;
  for (KernelLevel level :
       {KernelLevel::kScalar, KernelLevel::kHarleySeal, KernelLevel::kAvx2,
        KernelLevel::kAvx512}) {
    if (KernelLevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

/// k bitmaps of `words` words each, plus the row of pointers the kernels take.
struct BitmapSet {
  std::vector<std::vector<uint64_t>> storage;
  std::vector<const uint64_t*> maps;

  BitmapSet(size_t k, size_t words, random::Pcg64& rng) {
    storage.resize(k);
    for (auto& map : storage) {
      map.resize(words);
      for (auto& word : map) word = rng.Next();
      maps.push_back(map.data());
    }
  }
};

TEST(KernelsTest, ScalarAlwaysSupportedAndBestLevelRuns) {
  EXPECT_TRUE(KernelLevelSupported(KernelLevel::kScalar));
  EXPECT_TRUE(KernelLevelSupported(BestSupportedLevel()));
  // The active table is one of the named levels and its entries are wired.
  const KernelTable& active = ActiveKernels();
  ASSERT_NE(active.intersect_popcount, nullptr);
  ASSERT_NE(active.popcount_range, nullptr);
  EXPECT_TRUE(KernelLevelSupported(active.level));
}

TEST(KernelsTest, LevelNamesRoundTrip) {
  for (KernelLevel level :
       {KernelLevel::kScalar, KernelLevel::kHarleySeal, KernelLevel::kAvx2,
        KernelLevel::kAvx512}) {
    EXPECT_EQ(ParseKernelLevelName(KernelLevelName(level)), level);
  }
  EXPECT_FALSE(ParseKernelLevelName("").has_value());
  EXPECT_FALSE(ParseKernelLevelName("sse2").has_value());
  EXPECT_FALSE(ParseKernelLevelName("AVX2").has_value());  // case-sensitive
}

TEST(KernelsTest, ResolveKernelLevelHonorsSupportedForceAndFallsBack) {
  EXPECT_EQ(internal::ResolveKernelLevel(std::nullopt), BestSupportedLevel());
  EXPECT_EQ(internal::ResolveKernelLevel(KernelLevel::kScalar),
            KernelLevel::kScalar);
  // Harley-Seal is portable C++: forcible on every host.
  EXPECT_EQ(internal::ResolveKernelLevel(KernelLevel::kHarleySeal),
            KernelLevel::kHarleySeal);
  for (KernelLevel level : {KernelLevel::kAvx2, KernelLevel::kAvx512}) {
    EXPECT_EQ(internal::ResolveKernelLevel(level),
              KernelLevelSupported(level) ? level : BestSupportedLevel());
  }
}

TEST(KernelsTest, KernelsForLevelReportsItsLevel) {
  for (KernelLevel level : SupportedLevels()) {
    EXPECT_EQ(KernelsForLevel(level).level, level);
  }
}

TEST(KernelsTest, RandomizedEquivalenceAcrossLevelsTailsAndArities) {
  const std::vector<KernelLevel> levels = SupportedLevels();
  ASSERT_FALSE(levels.empty());
  const KernelTable& scalar = KernelsForLevel(KernelLevel::kScalar);

  random::Pcg64 rng(0xfeedface, 7);
  // Word counts straddle the AVX2 4-word and AVX-512 8-word strides so
  // every tail length in [0, 8) is exercised, plus longer mixed bodies.
  const size_t word_grid[] = {0, 1, 2, 3,  4,  5,  6,  7,  8,
                              9, 12, 15, 16, 17, 31, 33, 40, 129};
  const size_t k_grid[] = {1, 2, 3, 4, 5, 7, 8, 13, 32};
  for (size_t words : word_grid) {
    for (size_t k : k_grid) {
      SCOPED_TRACE("words=" + std::to_string(words) +
                   " k=" + std::to_string(k));
      const BitmapSet set(k, words, rng);
      const uint64_t want =
          scalar.intersect_popcount(set.maps.data(), k, words);
      const uint64_t want_range =
          words == 0 ? 0 : scalar.popcount_range(set.maps[0], words);
      for (KernelLevel level : levels) {
        SCOPED_TRACE(KernelLevelName(level));
        const KernelTable& table = KernelsForLevel(level);
        EXPECT_EQ(table.intersect_popcount(set.maps.data(), k, words), want);
        if (words != 0) {
          EXPECT_EQ(table.popcount_range(set.maps[0], words), want_range);
        }
      }
    }
  }
}

// The Harley-Seal fold works in 16-word blocks with a word-loop tail, so
// every residue class of the block size must agree with the plain scalar
// sum — exhaustively over word counts 0..129 (two full blocks plus every
// possible tail, including the 129 = 8*16+1 boundary).
TEST(KernelsTest, HarleySealMatchesScalarOnEveryTailLength) {
  const KernelTable& scalar = KernelsForLevel(KernelLevel::kScalar);
  const KernelTable& hs = KernelsForLevel(KernelLevel::kHarleySeal);
  random::Pcg64 rng(0xdecade, 3);
  for (size_t words = 0; words <= 129; ++words) {
    for (size_t k : {size_t{1}, size_t{2}, size_t{3}, size_t{6}}) {
      SCOPED_TRACE("words=" + std::to_string(words) +
                   " k=" + std::to_string(k));
      const BitmapSet set(k, words, rng);
      EXPECT_EQ(hs.intersect_popcount(set.maps.data(), k, words),
                scalar.intersect_popcount(set.maps.data(), k, words));
      if (words != 0) {
        EXPECT_EQ(hs.popcount_range(set.maps[0], words),
                  scalar.popcount_range(set.maps[0], words));
      }
    }
  }
}

TEST(KernelsTest, DegenerateMapsCountExactly) {
  for (KernelLevel level : SupportedLevels()) {
    SCOPED_TRACE(KernelLevelName(level));
    const KernelTable& table = KernelsForLevel(level);
    for (size_t words : {size_t{1}, size_t{5}, size_t{8}, size_t{11}}) {
      const std::vector<uint64_t> ones(words, ~uint64_t{0});
      const std::vector<uint64_t> zeros(words, 0);
      const uint64_t* all_ones[32];
      for (auto& map : all_ones) map = ones.data();
      // Intersecting any number of all-one maps counts every bit.
      for (size_t k : {size_t{1}, size_t{2}, size_t{32}}) {
        EXPECT_EQ(table.intersect_popcount(all_ones, k, words), 64 * words);
      }
      // One all-zero map annihilates the intersection.
      const uint64_t* mixed[3] = {ones.data(), zeros.data(), ones.data()};
      EXPECT_EQ(table.intersect_popcount(mixed, 3, words), 0u);
      EXPECT_EQ(table.popcount_range(zeros.data(), words), 0u);
      EXPECT_EQ(table.popcount_range(ones.data(), words), 64 * words);
    }
  }
}

TEST(KernelsTest, EndToEndCensusMineBitIdenticalAcrossLevels) {
  const auto table = data::census::MakeDataset(50000, 77);
  ASSERT_TRUE(table.ok());
  AprioriOptions options;
  options.min_support = 0.02;
  options.count_shards = 3;
  options.num_threads = 2;

  internal::SetActiveKernelsForTest(KernelLevel::kScalar);
  const StatusOr<AprioriResult> reference = MineExact(*table, options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (KernelLevel level : SupportedLevels()) {
    SCOPED_TRACE(KernelLevelName(level));
    internal::SetActiveKernelsForTest(level);
    const StatusOr<AprioriResult> run = MineExact(*table, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_EQ(run->by_length.size(), reference->by_length.size());
    for (size_t k = 0; k < run->by_length.size(); ++k) {
      ASSERT_EQ(run->by_length[k].size(), reference->by_length[k].size())
          << "length " << k + 1;
      for (size_t i = 0; i < run->by_length[k].size(); ++i) {
        ASSERT_TRUE(run->by_length[k][i].itemset ==
                    reference->by_length[k][i].itemset);
        ASSERT_EQ(run->by_length[k][i].support,
                  reference->by_length[k][i].support);
      }
    }
  }
  internal::ResetActiveKernelsForTest();
}

}  // namespace
}  // namespace mining
}  // namespace frapp
