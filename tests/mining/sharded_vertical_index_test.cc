// Shard-equivalence of the counting substrate: per-shard counts summed must
// equal the monolithic vertical-index counts EXACTLY — for every shard
// count, every thread count, and randomized tables/candidates.

#include "frapp/mining/sharded_vertical_index.h"

#include <gtest/gtest.h>

#include "frapp/data/schema.h"
#include "frapp/data/table.h"
#include "frapp/mining/itemset.h"
#include "frapp/mining/vertical_index.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace mining {
namespace {

data::CategoricalTable RandomTable(size_t n, uint64_t seed) {
  data::CategoricalSchema schema = *data::CategoricalSchema::Create({
      {"a", {"0", "1", "2", "3"}},
      {"b", {"0", "1", "2"}},
      {"c", {"0", "1"}},
      {"d", {"0", "1", "2", "3", "4"}},
  });
  data::CategoricalTable table = *data::CategoricalTable::Create(schema);
  random::Pcg64 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    (void)table.AppendRow({static_cast<uint8_t>(rng.NextBounded(4)),
                           static_cast<uint8_t>(rng.NextBounded(3)),
                           static_cast<uint8_t>(rng.NextBounded(2)),
                           static_cast<uint8_t>(rng.NextBounded(5))});
  }
  return table;
}

// Random itemsets of length 1..4 over distinct attributes.
std::vector<Itemset> RandomCandidates(const data::CategoricalSchema& schema,
                                      size_t count, uint64_t seed) {
  random::Pcg64 rng(seed);
  std::vector<Itemset> candidates;
  const size_t m = schema.num_attributes();
  while (candidates.size() < count) {
    const size_t length = 1 + rng.NextBounded(m);
    std::vector<Item> items;
    for (size_t j = 0; j < m && items.size() < length; ++j) {
      if (rng.NextBernoulli(0.6)) {
        items.push_back(Item{
            static_cast<uint16_t>(j),
            static_cast<uint16_t>(rng.NextBounded(schema.Cardinality(j)))});
      }
    }
    if (items.empty()) continue;
    candidates.push_back(Itemset::FromSortedUnchecked(std::move(items)));
  }
  return candidates;
}

TEST(ShardedVerticalIndexTest, CountsMatchMonolithicForAllShardAndThreadCounts) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const data::CategoricalTable table = RandomTable(5000 + 137 * seed, seed);
    const std::vector<Itemset> candidates =
        RandomCandidates(table.schema(), 200, seed + 100);
    const VerticalIndex monolithic = VerticalIndex::Build(table);
    const std::vector<size_t> expected = monolithic.CountSupports(candidates);

    for (size_t num_shards : {1ul, 3ul, 7ul}) {
      for (size_t num_threads : {1ul, 4ul}) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed << " shards="
                                        << num_shards << " threads="
                                        << num_threads);
        const ShardedVerticalIndex sharded =
            ShardedVerticalIndex::Build(table, num_shards, num_threads);
        EXPECT_EQ(sharded.num_rows(), table.num_rows());
        EXPECT_EQ(sharded.CountSupports(candidates, num_threads), expected);
      }
    }
  }
}

TEST(ShardedVerticalIndexTest, SingleCountAndFractionMatchMonolithic) {
  const data::CategoricalTable table = RandomTable(4000, 9);
  const VerticalIndex monolithic = VerticalIndex::Build(table);
  const ShardedVerticalIndex sharded = ShardedVerticalIndex::Build(table, 5);
  for (const Itemset& itemset : RandomCandidates(table.schema(), 50, 10)) {
    EXPECT_EQ(sharded.CountSupport(itemset), monolithic.CountSupport(itemset));
    EXPECT_EQ(sharded.SupportFraction(itemset),
              monolithic.SupportFraction(itemset));
  }
}

TEST(ShardedVerticalIndexTest, ZeroShardsMeansOnePerQuantum) {
  const data::CategoricalTable table =
      RandomTable(data::kShardAlignmentRows + 10, 5);
  const ShardedVerticalIndex sharded = ShardedVerticalIndex::Build(table, 0);
  EXPECT_EQ(sharded.num_shards(), 2u);
}

TEST(ShardedVerticalIndexTest, EmptyItemsetCountsAllRows) {
  const data::CategoricalTable table = RandomTable(1234, 4);
  const ShardedVerticalIndex sharded = ShardedVerticalIndex::Build(table, 3);
  EXPECT_EQ(sharded.CountSupport(Itemset()), table.num_rows());
}

TEST(ShardedVerticalIndexTest, FromShardsMatchesBuild) {
  const data::CategoricalTable table = RandomTable(3000, 11);
  const std::vector<data::RowRange> plan =
      data::ShardedTable::Plan(table.num_rows(), 4, /*alignment=*/1);
  std::vector<VerticalIndex> shards;
  for (const data::RowRange& range : plan) {
    shards.push_back(VerticalIndex::BuildRange(table, range));
  }
  const ShardedVerticalIndex assembled =
      ShardedVerticalIndex::FromShards(std::move(shards));
  EXPECT_EQ(assembled.num_rows(), table.num_rows());
  EXPECT_EQ(assembled.num_shards(), plan.size());
  const std::vector<Itemset> candidates =
      RandomCandidates(table.schema(), 64, 12);
  EXPECT_EQ(assembled.CountSupports(candidates),
            VerticalIndex::Build(table).CountSupports(candidates));
}

TEST(ShardedVerticalIndexTest, EmptyTableAndEmptyCandidateList) {
  const data::CategoricalTable table = RandomTable(0, 1);
  const ShardedVerticalIndex sharded = ShardedVerticalIndex::Build(table, 3);
  EXPECT_EQ(sharded.num_rows(), 0u);
  EXPECT_EQ(sharded.num_shards(), 0u);
  EXPECT_TRUE(sharded.CountSupports({}).empty());
  const Itemset single = Itemset::FromSortedUnchecked({Item{0, 0}});
  EXPECT_EQ(sharded.CountSupport(single), 0u);
  EXPECT_EQ(sharded.SupportFraction(single), 0.0);
  EXPECT_EQ(sharded.CountSupports({single, single}),
            (std::vector<size_t>{0, 0}));
}

TEST(VerticalIndexBuildRangeTest, RangeIndexMatchesSlice) {
  const data::CategoricalTable table = RandomTable(777, 21);
  const data::RowRange range{100, 400};
  const VerticalIndex index = VerticalIndex::BuildRange(table, range);
  EXPECT_EQ(index.num_rows(), range.size());
  for (const Itemset& itemset : RandomCandidates(table.schema(), 32, 22)) {
    size_t expected = 0;
    for (size_t i = range.begin; i < range.end; ++i) {
      bool supported = true;
      for (const Item& item : itemset.items()) {
        if (table.Value(i, item.attribute) != item.category) {
          supported = false;
          break;
        }
      }
      if (supported) ++expected;
    }
    EXPECT_EQ(index.CountSupport(itemset), expected);
  }
}

}  // namespace
}  // namespace mining
}  // namespace frapp
