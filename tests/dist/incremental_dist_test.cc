// Incremental growth in the distributed layer:
//
//  1. APPEND = ADD-ONLY. Coordinator::AppendRows assigns only the new rows
//     via the AssignRange machinery; nothing already ingested is touched,
//     and the subsequent mine is BIT-IDENTICAL to a fresh session (and to
//     the single-process pipeline) over the grown table — for both shard
//     kinds (DET-GD categorical, MASK boolean).
//  2. WINDOWED SESSIONS. CoordinatorOptions::begin_row mines only
//     [begin_row, total): bit-identical to the local incremental driver's
//     windowed mine of the same rows.
//  3. CONTRACTS. Growth only (no shrink), chunk-aligned previous total
//     (a perturbed partial tail chunk is immutable), chunk-aligned
//     begin_row; chunk accounting lands in DistStats.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "frapp/data/census.h"
#include "frapp/data/sharded_table.h"
#include "frapp/dist/coordinator.h"
#include "frapp/dist/worker.h"
#include "frapp/store/incremental_mine.h"

namespace frapp {
namespace dist {
namespace {

constexpr uint64_t kSeed = 17;
constexpr size_t kChunk = data::kShardAlignmentRows;

void ExpectSameMiningResult(const mining::AprioriResult& a,
                            const mining::AprioriResult& b) {
  ASSERT_EQ(a.by_length.size(), b.by_length.size());
  EXPECT_EQ(a.candidates_per_pass, b.candidates_per_pass);
  for (size_t k = 0; k < a.by_length.size(); ++k) {
    ASSERT_EQ(a.by_length[k].size(), b.by_length[k].size()) << "length " << k + 1;
    for (size_t i = 0; i < a.by_length[k].size(); ++i) {
      EXPECT_EQ(a.by_length[k][i].itemset, b.by_length[k][i].itemset);
      EXPECT_EQ(a.by_length[k][i].support, b.by_length[k][i].support);
    }
  }
}

class IncrementalDistTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new data::CategoricalTable(*data::census::MakeDataset(40000, 321));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  static WorkerOptions MakeWorkerOptions() {
    WorkerOptions options(table_->schema());
    options.num_threads = 2;
    options.source_factory =
        []() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
      return std::unique_ptr<pipeline::TableSource>(
          std::make_unique<pipeline::InMemoryTableSource>(*table_,
                                                          /*num_shards=*/0));
    };
    return options;
  }

  static mining::AprioriOptions MiningOptions() {
    mining::AprioriOptions options;
    options.min_support = 0.02;
    return options;
  }

  // A connected in-process session over [options.begin_row, total_rows).
  static StatusOr<std::unique_ptr<Coordinator>> ConnectSession(
      const MechanismSpec& spec, size_t num_workers, size_t total_rows,
      std::vector<std::unique_ptr<InProcessWorker>>* workers,
      uint64_t begin_row = 0) {
    std::vector<std::unique_ptr<Transport>> transports;
    for (size_t w = 0; w < num_workers; ++w) {
      workers->push_back(std::make_unique<InProcessWorker>(MakeWorkerOptions()));
      transports.push_back(workers->back()->TakeCoordinatorEndpoint());
    }
    CoordinatorOptions options;
    options.perturb_seed = kSeed;
    options.begin_row = begin_row;
    return Coordinator::Connect(std::move(transports), table_->schema(), spec,
                                total_rows, options);
  }

  static data::CategoricalTable* table_;
};

data::CategoricalTable* IncrementalDistTest::table_ = nullptr;

TEST_F(IncrementalDistTest, AppendRowsMatchesFreshSessionBitwise) {
  for (const MechanismSpec::Kind kind :
       {MechanismSpec::Kind::kDetGd, MechanismSpec::Kind::kMask}) {
    MechanismSpec spec;
    spec.kind = kind;
    const size_t base = 3 * kChunk;      // 24576: chunk-aligned
    const size_t grown = 33468;          // +2 chunks, partial tail

    std::vector<std::unique_ptr<InProcessWorker>> workers;
    auto session = ConnectSession(spec, 2, base, &workers);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    const auto r_base = (*session)->Mine(MiningOptions());
    ASSERT_TRUE(r_base.ok()) << r_base.status().ToString();

    // Growth is a pure delta: only [base, grown) crosses AssignRange.
    ASSERT_TRUE((*session)->AppendRows(grown).ok());
    const auto r_grown = (*session)->Mine(MiningOptions());
    ASSERT_TRUE(r_grown.ok()) << r_grown.status().ToString();

    const DistStats stats = (*session)->stats();
    EXPECT_EQ(stats.rows_appended, grown - base);
    EXPECT_GE(stats.ranges_appended, 1u);
    EXPECT_EQ(stats.ranges_reassigned, 0u);
    EXPECT_EQ(stats.total_rows, grown);
    EXPECT_EQ(stats.total_chunks, (grown + kChunk - 1) / kChunk);
    EXPECT_EQ(stats.appended_chunks, (grown - base + kChunk - 1) / kChunk);

    std::vector<std::unique_ptr<InProcessWorker>> fresh_workers;
    auto fresh = ConnectSession(spec, 2, grown, &fresh_workers);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    const auto r_fresh = (*fresh)->Mine(MiningOptions());
    ASSERT_TRUE(r_fresh.ok()) << r_fresh.status().ToString();
    ExpectSameMiningResult(*r_grown, *r_fresh);
  }
}

TEST_F(IncrementalDistTest, WindowedSessionMatchesLocalWindowedMine) {
  MechanismSpec spec;  // DET-GD
  const size_t window_begin = kChunk;
  const size_t total = 3 * kChunk + 1234;

  std::vector<std::unique_ptr<InProcessWorker>> workers;
  auto session = ConnectSession(spec, 2, total, &workers, window_begin);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const auto r_dist = (*session)->Mine(MiningOptions());
  ASSERT_TRUE(r_dist.ok()) << r_dist.status().ToString();
  EXPECT_EQ((*session)->stats().begin_row, window_begin);

  // The local incremental driver mining the same window from scratch is
  // bit-identical to a from-scratch windowed mine — so the dist session
  // must match it exactly.
  store::IncrementalOptions options;
  options.mining = MiningOptions();
  options.perturb_seed = kSeed;
  options.num_threads = 2;
  options.window_begin_row = window_begin;
  options.source_id = "incremental-dist-test";
  // AppendAndMine mines [window, end-of-stream), so the local source must
  // end exactly where the dist session's total does.
  StatusOr<data::CategoricalTable> prefix =
      data::CopyRowRange(*table_, {0, total});
  ASSERT_TRUE(prefix.ok());
  store::CountStore fresh_store(
      store::MakeStoreIdentity(spec, table_->schema(), options));
  const auto r_local = store::AppendAndMine(
      fresh_store, spec,
      [&prefix]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
        return std::unique_ptr<pipeline::TableSource>(
            std::make_unique<pipeline::InMemoryTableSource>(*prefix, 0));
      },
      options);
  ASSERT_TRUE(r_local.ok()) << r_local.status().ToString();
  ExpectSameMiningResult(*r_dist, r_local->mined);
}

TEST_F(IncrementalDistTest, AppendContractsAreEnforced) {
  MechanismSpec spec;
  std::vector<std::unique_ptr<InProcessWorker>> workers;
  auto session = ConnectSession(spec, 1, 2 * kChunk + 100, &workers);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // Shrinking is not growth.
  EXPECT_EQ((*session)->AppendRows(kChunk).code(),
            StatusCode::kInvalidArgument);
  // The held total ends mid-chunk: those perturbed rows are immutable, so
  // the append must refuse rather than re-perturb or extend them.
  EXPECT_EQ((*session)->AppendRows(3 * kChunk).code(),
            StatusCode::kFailedPrecondition);
  // Same total: a no-op, not an error.
  EXPECT_TRUE((*session)->AppendRows(2 * kChunk + 100).ok());

  // begin_row off the chunk grid can never be served.
  std::vector<std::unique_ptr<InProcessWorker>> more_workers;
  auto bad = ConnectSession(spec, 1, 2 * kChunk, &more_workers, 100);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dist
}  // namespace frapp
