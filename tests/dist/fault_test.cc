// Fault-injection tests: the spec grammar must parse (and reject) exactly
// as documented, and FaultInjectingTransport must fire each scripted
// failure at the scripted operation count — deterministically, because the
// recovery tests and the CLI drills both replay these schedules.

#include "frapp/dist/fault.h"

#include <gtest/gtest.h>

#include <utility>

namespace frapp {
namespace dist {
namespace {

Message Probe(uint8_t fill, size_t size) {
  return Message{MessageType::kCountResponse,
                 std::vector<uint8_t>(size, fill)};
}

TEST(ParseFaultSpecTest, EmptyStringMeansNoFaults) {
  const StatusOr<FaultSpec> spec = ParseFaultSpec("");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->empty());
}

TEST(ParseFaultSpecTest, ParsesMultiClauseMultiAction) {
  const StatusOr<FaultSpec> spec =
      ParseFaultSpec("2:close-send=1;0:timeout-recv=3,delay-recv-ms=50");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->by_endpoint.size(), 2u);

  const FaultActions& two = spec->by_endpoint.at(2);
  EXPECT_EQ(two.close_after_sends, 1u);
  EXPECT_EQ(two.close_after_receives, FaultActions::kNever);

  const FaultActions& zero = spec->by_endpoint.at(0);
  EXPECT_EQ(zero.timeout_receives_after, 3u);
  EXPECT_EQ(zero.delay_receive_ms, 50u);
  EXPECT_TRUE(zero.armed());
}

TEST(ParseFaultSpecTest, ParsesEveryKey) {
  const StatusOr<FaultSpec> spec = ParseFaultSpec(
      "1:close-send=1,close-recv=2,drop-send=3,timeout-recv=4,"
      "truncate-recv=5,delay-send-ms=6,delay-recv-ms=7");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const FaultActions& actions = spec->by_endpoint.at(1);
  EXPECT_EQ(actions.close_after_sends, 1u);
  EXPECT_EQ(actions.close_after_receives, 2u);
  EXPECT_EQ(actions.drop_sends_after, 3u);
  EXPECT_EQ(actions.timeout_receives_after, 4u);
  EXPECT_EQ(actions.truncate_receive_after, 5u);
  EXPECT_EQ(actions.delay_send_ms, 6u);
  EXPECT_EQ(actions.delay_receive_ms, 7u);
}

TEST(ParseFaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultSpec("close-send=1").ok());      // no endpoint
  EXPECT_FALSE(ParseFaultSpec("x:close-send=1").ok());    // bad index
  EXPECT_FALSE(ParseFaultSpec("0:explode=1").ok());       // unknown key
  EXPECT_FALSE(ParseFaultSpec("0:close-send").ok());      // no value
  EXPECT_FALSE(ParseFaultSpec("0:close-send=ten").ok());  // bad value
  EXPECT_FALSE(ParseFaultSpec("0:close-send=").ok());     // empty value
}

TEST(ParseFaultSpecTest, RejectsEmptyClauses) {
  // Only the fully empty string means "no faults". A stray ';' inside a
  // non-empty spec is a typo that would silently drop a clause — error.
  EXPECT_FALSE(ParseFaultSpec(";").ok());
  EXPECT_FALSE(ParseFaultSpec("0:close-send=1;").ok());   // trailing ';'
  EXPECT_FALSE(ParseFaultSpec(";0:close-send=1").ok());   // leading ';'
  EXPECT_FALSE(
      ParseFaultSpec("0:close-send=1;;1:close-recv=2").ok());  // doubled
}

TEST(ParseFaultSpecTest, RejectsDuplicateEndpointIndices) {
  // Duplicate clauses for one endpoint would make the later one silently
  // win (or worse, merge); the grammar demands one clause per endpoint.
  const StatusOr<FaultSpec> spec =
      ParseFaultSpec("0:close-send=1;0:close-recv=2");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(spec.status().message().find("duplicate endpoint index 0"),
            std::string::npos)
      << spec.status().ToString();
}

TEST(ParseFaultSpecTest, RejectsValuesThatOverflowUint64) {
  // 2^64 - 1 is representable...
  const StatusOr<FaultSpec> max =
      ParseFaultSpec("0:close-send=18446744073709551615");
  ASSERT_TRUE(max.ok()) << max.status().ToString();
  EXPECT_EQ(max->by_endpoint.at(0).close_after_sends, UINT64_MAX);
  // ...but 2^64 (and any longer digit string) must fail, not wrap into a
  // small count that arms the fault at the wrong operation.
  EXPECT_FALSE(ParseFaultSpec("0:close-send=18446744073709551616").ok());
  EXPECT_FALSE(ParseFaultSpec("0:close-send=99999999999999999999").ok());
  EXPECT_FALSE(ParseFaultSpec("99999999999999999999:close-send=1").ok());
}

TEST(ParseFaultSpecTest, ErrorsNameTheOffendingClause) {
  const StatusOr<FaultSpec> spec =
      ParseFaultSpec("0:close-send=1;1:close-recv=2;2:explode=3");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("clause 3"), std::string::npos)
      << spec.status().ToString();
}

TEST(FaultTransportTest, CloseAfterSendsFiresOnSchedule) {
  auto [a, b] = CreateInProcessTransportPair();
  FaultActions actions;
  actions.close_after_sends = 2;
  FaultInjectingTransport faulty(std::move(a), actions);

  EXPECT_TRUE(faulty.Send(Probe(1, 4)).ok());
  EXPECT_TRUE(faulty.Send(Probe(2, 4)).ok());
  const Status third = faulty.Send(Probe(3, 4));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kUnavailable);
  EXPECT_EQ(faulty.sends(), 3u);

  // The injected close reached the INNER transport: the peer drains the
  // two delivered messages, then sees the closed connection.
  EXPECT_TRUE(b->Receive().ok());
  EXPECT_TRUE(b->Receive().ok());
  EXPECT_FALSE(b->Receive().ok());
}

TEST(FaultTransportTest, DroppedSendsVanishSilently) {
  auto [a, b] = CreateInProcessTransportPair();
  FaultActions actions;
  actions.drop_sends_after = 1;
  FaultInjectingTransport faulty(std::move(a), actions);

  EXPECT_TRUE(faulty.Send(Probe(1, 4)).ok());  // delivered
  EXPECT_TRUE(faulty.Send(Probe(2, 4)).ok());  // eaten, but reports OK
  EXPECT_EQ(faulty.sends(), 2u);

  EXPECT_TRUE(b->Receive().ok());
  b->Close();
  // Only the first message ever arrived.
  EXPECT_FALSE(b->Receive().ok());
}

TEST(FaultTransportTest, TimeoutReceivesReportDeadlineExceeded) {
  auto [a, b] = CreateInProcessTransportPair();
  ASSERT_TRUE(b->Send(Probe(1, 4)).ok());
  ASSERT_TRUE(b->Send(Probe(2, 4)).ok());
  FaultActions actions;
  actions.timeout_receives_after = 1;
  FaultInjectingTransport faulty(std::move(a), actions);

  EXPECT_TRUE(faulty.Receive().ok());
  // From now on every receive reports a silent peer — instantly, without a
  // real timer, even though a message is sitting in the queue.
  for (int i = 0; i < 3; ++i) {
    const StatusOr<Message> received = faulty.Receive();
    ASSERT_FALSE(received.ok());
    EXPECT_EQ(received.status().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(faulty.receives(), 4u);
}

TEST(FaultTransportTest, TruncatedReceiveReportsCorruptFrameAndCloses) {
  auto [a, b] = CreateInProcessTransportPair();
  FaultActions actions;
  actions.truncate_receive_after = 0;
  FaultInjectingTransport faulty(std::move(a), actions);

  const StatusOr<Message> received = faulty.Receive();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kInvalidArgument);
  // A corrupt frame poisons the stream, so the connection must be closed:
  // the peer's next send fails.
  EXPECT_FALSE(b->Send(Probe(1, 4)).ok());
}

TEST(FaultTransportTest, CloseAfterReceivesFiresOnSchedule) {
  auto [a, b] = CreateInProcessTransportPair();
  ASSERT_TRUE(b->Send(Probe(1, 4)).ok());
  FaultActions actions;
  actions.close_after_receives = 1;
  FaultInjectingTransport faulty(std::move(a), actions);

  EXPECT_TRUE(faulty.Receive().ok());
  const StatusOr<Message> second = faulty.Receive();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(b->Send(Probe(2, 4)).ok());
}

TEST(MaybeInjectFaultsTest, PassesThroughWhenNoClauseMatches) {
  const FaultSpec spec = *ParseFaultSpec("1:close-send=0");
  auto [a, b] = CreateInProcessTransportPair();
  Transport* raw = a.get();
  // Endpoint 0 has no clause: the transport comes back untouched.
  std::unique_ptr<Transport> wrapped =
      MaybeInjectFaults(std::move(a), spec, /*index=*/0);
  EXPECT_EQ(wrapped.get(), raw);

  // Endpoint 1 matches: the wrapper enforces its schedule immediately.
  std::unique_ptr<Transport> faulty =
      MaybeInjectFaults(std::move(b), spec, /*index=*/1);
  EXPECT_NE(faulty.get(), nullptr);
  EXPECT_FALSE(faulty->Send(Probe(1, 4)).ok());
}

}  // namespace
}  // namespace dist
}  // namespace frapp
