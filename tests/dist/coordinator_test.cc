// Distributed-mining equivalence: on CENSUS 50k, mined frequent itemsets
// and reconstructed supports from the coordinator/worker path must equal
// the single-process pipeline::PrivacyPipeline output BIT FOR BIT at every
// point of the workers {1, 2, 4} x transport {in-process, tcp-loopback}
// grid — distribution is a placement transform, never an accuracy one.
// Also covered: the schema-fingerprint handshake failure, worker row-count
// verification, empty worker ranges, and the traffic invariant (per-pass
// coordinator traffic is exactly the candidate-count vectors; rows never
// cross the wire).

#include "frapp/dist/coordinator.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "frapp/data/census.h"
#include "frapp/data/health.h"
#include "frapp/dist/worker.h"
#include "frapp/pipeline/privacy_pipeline.h"

namespace frapp {
namespace dist {
namespace {

constexpr uint64_t kSeed = 17;
constexpr double kMinSupport = 0.02;

// Exact (bitwise) equality of two mining results, supports included.
void ExpectSameMiningResult(const mining::AprioriResult& a,
                            const mining::AprioriResult& b) {
  ASSERT_EQ(a.by_length.size(), b.by_length.size());
  EXPECT_EQ(a.candidates_per_pass, b.candidates_per_pass);
  for (size_t k = 0; k < a.by_length.size(); ++k) {
    ASSERT_EQ(a.by_length[k].size(), b.by_length[k].size()) << "length " << k + 1;
    for (size_t i = 0; i < a.by_length[k].size(); ++i) {
      EXPECT_EQ(a.by_length[k][i].itemset, b.by_length[k][i].itemset);
      EXPECT_EQ(a.by_length[k][i].support, b.by_length[k][i].support);
    }
  }
}

WorkerOptions MakeWorkerOptions(const data::CategoricalTable& table) {
  WorkerOptions options(table.schema());
  options.num_threads = 2;
  options.source_factory =
      [&table]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    return std::unique_ptr<pipeline::TableSource>(
        std::make_unique<pipeline::InMemoryTableSource>(table,
                                                        /*num_shards=*/0));
  };
  return options;
}

/// ServeWorker on an accepted TCP loopback connection, on its own thread.
class TcpWorkerHost {
 public:
  explicit TcpWorkerHost(WorkerOptions options) {
    StatusOr<TcpListener> listener = TcpListener::Bind("127.0.0.1", 0);
    FRAPP_CHECK(listener.ok()) << listener.status().ToString();
    listener_ = std::make_unique<TcpListener>(*std::move(listener));
    thread_ = std::thread([this, options = std::move(options)] {
      StatusOr<std::unique_ptr<Transport>> accepted = listener_->Accept();
      if (!accepted.ok()) {
        result_ = accepted.status();
        return;
      }
      result_ = ServeWorker(**accepted, options);
    });
  }

  ~TcpWorkerHost() { (void)Join(); }

  uint16_t port() const { return listener_->port(); }

  Status Join() {
    if (thread_.joinable()) {
      listener_->Close();
      thread_.join();
    }
    return result_;
  }

 private:
  std::unique_ptr<TcpListener> listener_;
  std::thread thread_;
  Status result_;
};

class CoordinatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new data::CategoricalTable(*data::census::MakeDataset(50000, 321));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  static mining::AprioriOptions MiningOptions() {
    mining::AprioriOptions options;
    options.min_support = kMinSupport;
    return options;
  }

  static CoordinatorOptions Options() {
    CoordinatorOptions options;
    options.perturb_seed = kSeed;
    return options;
  }

  // The single-process reference for `spec`, via the streaming pipeline.
  static mining::AprioriResult PipelineReference(const MechanismSpec& spec) {
    auto mechanism = *MakeMechanism(spec, table_->schema());
    pipeline::PipelineOptions options;
    options.num_shards = 3;
    options.num_threads = 2;
    options.perturb_seed = kSeed;
    options.mining = MiningOptions();
    const StatusOr<pipeline::PipelineResult> result =
        pipeline::PrivacyPipeline(options).Run(*mechanism, *table_);
    FRAPP_CHECK(result.ok()) << result.status().ToString();
    return result->mined;
  }

  // Distributed mine over `num_workers` in-process workers; returns the
  // result and optionally the coordinator's stats.
  static StatusOr<mining::AprioriResult> MineInProcess(
      const MechanismSpec& spec, size_t num_workers,
      DistStats* stats_out = nullptr) {
    std::vector<std::unique_ptr<InProcessWorker>> workers;
    std::vector<std::unique_ptr<Transport>> transports;
    for (size_t w = 0; w < num_workers; ++w) {
      workers.push_back(
          std::make_unique<InProcessWorker>(MakeWorkerOptions(*table_)));
      transports.push_back(workers.back()->TakeCoordinatorEndpoint());
    }
    FRAPP_ASSIGN_OR_RETURN(
        std::unique_ptr<Coordinator> coordinator,
        Coordinator::Connect(std::move(transports), table_->schema(), spec,
                             table_->num_rows(), Options()));
    FRAPP_ASSIGN_OR_RETURN(mining::AprioriResult result,
                           coordinator->Mine(MiningOptions()));
    if (stats_out != nullptr) *stats_out = coordinator->stats();
    coordinator->Shutdown();
    for (auto& worker : workers) {
      FRAPP_RETURN_IF_ERROR(worker->Join());
    }
    return result;
  }

  static StatusOr<mining::AprioriResult> MineTcp(const MechanismSpec& spec,
                                                 size_t num_workers) {
    std::vector<std::unique_ptr<TcpWorkerHost>> workers;
    std::vector<std::unique_ptr<Transport>> transports;
    for (size_t w = 0; w < num_workers; ++w) {
      workers.push_back(
          std::make_unique<TcpWorkerHost>(MakeWorkerOptions(*table_)));
      FRAPP_ASSIGN_OR_RETURN(std::unique_ptr<Transport> transport,
                             TcpConnect("127.0.0.1", workers.back()->port()));
      transports.push_back(std::move(transport));
    }
    FRAPP_ASSIGN_OR_RETURN(
        std::unique_ptr<Coordinator> coordinator,
        Coordinator::Connect(std::move(transports), table_->schema(), spec,
                             table_->num_rows(), Options()));
    FRAPP_ASSIGN_OR_RETURN(mining::AprioriResult result,
                           coordinator->Mine(MiningOptions()));
    coordinator->Shutdown();
    for (auto& worker : workers) {
      FRAPP_RETURN_IF_ERROR(worker->Join());
    }
    return result;
  }

  // The acceptance grid for one mechanism: workers {1, 2, 4} x transports
  // {in-process, tcp-loopback}, every point bit-identical to the pipeline.
  static void ExpectGridBitIdentical(const MechanismSpec& spec) {
    const mining::AprioriResult reference = PipelineReference(spec);
    ASSERT_GT(reference.TotalFrequent(), 0u);
    for (size_t num_workers : {1ul, 2ul, 4ul}) {
      {
        SCOPED_TRACE(testing::Message()
                     << "workers=" << num_workers << " transport=in-process");
        const StatusOr<mining::AprioriResult> mined =
            MineInProcess(spec, num_workers);
        ASSERT_TRUE(mined.ok()) << mined.status().ToString();
        ExpectSameMiningResult(reference, *mined);
      }
      {
        SCOPED_TRACE(testing::Message()
                     << "workers=" << num_workers << " transport=tcp");
        const StatusOr<mining::AprioriResult> mined = MineTcp(spec, num_workers);
        ASSERT_TRUE(mined.ok()) << mined.status().ToString();
        ExpectSameMiningResult(reference, *mined);
      }
    }
  }

  static data::CategoricalTable* table_;
};

data::CategoricalTable* CoordinatorTest::table_ = nullptr;

TEST_F(CoordinatorTest, DetGdGridBitIdentical) {
  MechanismSpec spec;
  spec.kind = MechanismSpec::Kind::kDetGd;
  ExpectGridBitIdentical(spec);
}

TEST_F(CoordinatorTest, MaskGridBitIdentical) {
  MechanismSpec spec;
  spec.kind = MechanismSpec::Kind::kMask;
  ExpectGridBitIdentical(spec);
}

// The remaining mechanisms ride the same seam; two in-process workers prove
// each one's distributed reconstruction bit-matches the pipeline.
TEST_F(CoordinatorTest, EveryMechanismBitIdenticalAtTwoWorkers) {
  for (const MechanismSpec::Kind kind :
       {MechanismSpec::Kind::kRanGd, MechanismSpec::Kind::kCutPaste,
        MechanismSpec::Kind::kIndGd}) {
    MechanismSpec spec;
    spec.kind = kind;
    spec.alpha = 0.005;  // RAN-GD only: must lie in [0, gamma*x] ~ 0.0094
    SCOPED_TRACE(MechanismSpecName(spec));
    const mining::AprioriResult reference = PipelineReference(spec);
    const StatusOr<mining::AprioriResult> mined = MineInProcess(spec, 2);
    ASSERT_TRUE(mined.ok()) << mined.status().ToString();
    ExpectSameMiningResult(reference, *mined);
  }
}

TEST_F(CoordinatorTest, MoreWorkersThanChunksLeavesExtrasEmpty) {
  // 50000 rows = 7 chunk quanta; 9 workers leave two with empty ranges,
  // which must count zeros and not disturb the totals.
  MechanismSpec spec;
  const mining::AprioriResult reference = PipelineReference(spec);
  const StatusOr<mining::AprioriResult> mined = MineInProcess(spec, 9);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ExpectSameMiningResult(reference, *mined);
}

TEST_F(CoordinatorTest, TrafficIsExactlyCountVectors) {
  // The coordinator's inbound traffic must be fully explained by the
  // protocol's count vectors: per worker, one HelloAck plus one
  // CountResponse of 8 bytes per candidate per pass — nothing else, and in
  // particular never a row. Computed from the actual pass sizes, so this
  // asserts proportionality exactly.
  MechanismSpec spec;
  constexpr size_t kWorkers = 2;
  DistStats stats;
  const StatusOr<mining::AprioriResult> mined =
      MineInProcess(spec, kWorkers, &stats);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();

  uint64_t expected_received = 0;
  {
    HelloAck ack;
    expected_received += kWorkers * EncodeHelloAck(ack).WireSize();
  }
  for (const size_t candidates : mined->candidates_per_pass) {
    CountResponse response;
    response.counts.assign(candidates, 0);
    expected_received += kWorkers * EncodeCountResponse(response).WireSize();
  }
  EXPECT_EQ(stats.bytes_received, expected_received);

  // Scale check: the table is 50000 x 6 = 300000 cells, yet the whole mine
  // moved only count vectors.
  EXPECT_LT(stats.bytes_received,
            table_->num_rows() * table_->num_attributes() / 10);
  EXPECT_EQ(stats.num_workers, kWorkers);
  EXPECT_EQ(stats.total_rows, table_->num_rows());
  EXPECT_EQ(stats.responses_received, stats.requests_sent);
}

TEST_F(CoordinatorTest, SchemaFingerprintMismatchFailsHandshake) {
  // Worker holds CENSUS data; the coordinator asks for a HEALTH job. The
  // handshake must fail with the worker's fingerprint complaint, shipped
  // back as a remote Status.
  InProcessWorker worker(MakeWorkerOptions(*table_));
  std::vector<std::unique_ptr<Transport>> transports;
  transports.push_back(worker.TakeCoordinatorEndpoint());
  const StatusOr<std::unique_ptr<Coordinator>> coordinator =
      Coordinator::Connect(std::move(transports), data::health::Schema(),
                           MechanismSpec{}, table_->num_rows(), Options());
  ASSERT_FALSE(coordinator.ok());
  EXPECT_EQ(coordinator.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(coordinator.status().message().find("fingerprint"),
            std::string::npos);
}

TEST_F(CoordinatorTest, RowCountMismatchFailsConnect) {
  // The coordinator believes there are more rows than the workers hold: a
  // silent undercount would skew every support, so Connect must refuse.
  InProcessWorker worker(MakeWorkerOptions(*table_));
  std::vector<std::unique_ptr<Transport>> transports;
  transports.push_back(worker.TakeCoordinatorEndpoint());
  const StatusOr<std::unique_ptr<Coordinator>> coordinator =
      Coordinator::Connect(std::move(transports), table_->schema(),
                           MechanismSpec{}, table_->num_rows() + 8192,
                           Options());
  ASSERT_FALSE(coordinator.ok());
  EXPECT_EQ(coordinator.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CoordinatorTest, EstimatorSlotsIntoApriori) {
  // The DistributedSupportEstimator is a plain mining::SupportEstimator:
  // drive MineFrequentItemsets with it directly (the seam the pipeline
  // uses) rather than through Coordinator::Mine.
  MechanismSpec spec;
  InProcessWorker worker(MakeWorkerOptions(*table_));
  std::vector<std::unique_ptr<Transport>> transports;
  transports.push_back(worker.TakeCoordinatorEndpoint());
  auto coordinator = *Coordinator::Connect(std::move(transports),
                                           table_->schema(), spec,
                                           table_->num_rows(), Options());
  auto estimator = *coordinator->MakeEstimator();
  const StatusOr<mining::AprioriResult> mined = mining::MineFrequentItemsets(
      table_->schema(), *estimator, MiningOptions());
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ExpectSameMiningResult(PipelineReference(spec), *mined);
}

}  // namespace
}  // namespace dist
}  // namespace frapp
