// Fault-tolerance tests: the coordinator must survive workers that die,
// hang, or drop requests — at handshake and mid-mine — by declaring them
// dead and re-assigning their chunk-aligned ranges to survivors, and every
// recovered run must stay BIT-IDENTICAL to the single-process pipeline
// (re-assigned ranges perturb on the same global seeded-chunk streams, and
// counts are additive over any row partition). Also covered: the
// all-workers-dead terminal state, worker-reported errors staying fatal,
// CheckHealth liveness probes, a worker outliving a crashed coordinator,
// and the per-range index cache that makes the rerun cheap.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "frapp/data/boolean_view.h"
#include "frapp/data/census.h"
#include "frapp/data/health.h"
#include "frapp/dist/coordinator.h"
#include "frapp/dist/fault.h"
#include "frapp/dist/index_cache.h"
#include "frapp/dist/worker.h"
#include "frapp/pipeline/privacy_pipeline.h"

namespace frapp {
namespace dist {
namespace {

constexpr uint64_t kSeed = 17;
constexpr double kMinSupport = 0.02;

void ExpectSameMiningResult(const mining::AprioriResult& a,
                            const mining::AprioriResult& b) {
  ASSERT_EQ(a.by_length.size(), b.by_length.size());
  for (size_t k = 0; k < a.by_length.size(); ++k) {
    ASSERT_EQ(a.by_length[k].size(), b.by_length[k].size()) << "length " << k + 1;
    for (size_t i = 0; i < a.by_length[k].size(); ++i) {
      EXPECT_EQ(a.by_length[k][i].itemset, b.by_length[k][i].itemset);
      EXPECT_EQ(a.by_length[k][i].support, b.by_length[k][i].support);
    }
  }
}

WorkerOptions MakeWorkerOptions(const data::CategoricalTable& table) {
  WorkerOptions options(table.schema());
  options.num_threads = 2;
  options.source_factory =
      [&table]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    return std::unique_ptr<pipeline::TableSource>(
        std::make_unique<pipeline::InMemoryTableSource>(table,
                                                        /*num_shards=*/0));
  };
  return options;
}

class RecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new data::CategoricalTable(*data::census::MakeDataset(50000, 321));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  static mining::AprioriOptions MiningOptions() {
    mining::AprioriOptions options;
    options.min_support = kMinSupport;
    return options;
  }

  static mining::AprioriResult PipelineReference(const MechanismSpec& spec) {
    auto mechanism = *MakeMechanism(spec, table_->schema());
    pipeline::PipelineOptions options;
    options.num_shards = 3;
    options.num_threads = 2;
    options.perturb_seed = kSeed;
    options.mining = MiningOptions();
    const StatusOr<pipeline::PipelineResult> result =
        pipeline::PrivacyPipeline(options).Run(*mechanism, *table_);
    FRAPP_CHECK(result.ok()) << result.status().ToString();
    return result->mined;
  }

  // In-process fleet with `fault_spec` injected into the coordinator's
  // endpoints; runs CheckHealth first if asked, then a full mine.
  static StatusOr<mining::AprioriResult> MineWithFaults(
      const MechanismSpec& spec, size_t num_workers,
      const std::string& fault_spec, const CoordinatorOptions& options,
      DistStats* stats_out = nullptr, bool check_health_first = false) {
    const FaultSpec faults = *ParseFaultSpec(fault_spec);
    std::vector<std::unique_ptr<InProcessWorker>> workers;
    std::vector<std::unique_ptr<Transport>> transports;
    for (size_t w = 0; w < num_workers; ++w) {
      workers.push_back(
          std::make_unique<InProcessWorker>(MakeWorkerOptions(*table_)));
      transports.push_back(
          MaybeInjectFaults(workers[w]->TakeCoordinatorEndpoint(), faults, w));
    }
    FRAPP_ASSIGN_OR_RETURN(
        std::unique_ptr<Coordinator> coordinator,
        Coordinator::Connect(std::move(transports), table_->schema(), spec,
                             table_->num_rows(), options));
    if (check_health_first) {
      FRAPP_RETURN_IF_ERROR(coordinator->CheckHealth());
    }
    FRAPP_ASSIGN_OR_RETURN(mining::AprioriResult result,
                           coordinator->Mine(MiningOptions()));
    if (stats_out != nullptr) *stats_out = coordinator->stats();
    coordinator->Shutdown();
    for (auto& worker : workers) {
      // Dead workers see their connection closed, which is a CLEAN session
      // end for them — every worker must join OK even after a drill.
      FRAPP_RETURN_IF_ERROR(worker->Join());
    }
    return result;
  }

  static CoordinatorOptions Options() {
    CoordinatorOptions options;
    options.perturb_seed = kSeed;
    return options;
  }

  static data::CategoricalTable* table_;
};

data::CategoricalTable* RecoveryTest::table_ = nullptr;

TEST_F(RecoveryTest, WorkerDeadMidMineIsReassignedBitIdentical) {
  // Worker 1's connection closes on the coordinator's second receive from
  // it: its HelloAck lands, the first counting round's response does not.
  // The round must be discarded, worker 1's range re-assigned, the round
  // restarted — and the result must still match the pipeline bit for bit.
  MechanismSpec spec;
  DistStats stats;
  const StatusOr<mining::AprioriResult> mined =
      MineWithFaults(spec, 3, "1:close-recv=1", Options(), &stats);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ExpectSameMiningResult(PipelineReference(spec), *mined);
  EXPECT_EQ(stats.workers_failed, 1u);
  EXPECT_EQ(stats.workers_alive, 2u);
  EXPECT_GE(stats.ranges_reassigned, 1u);
  EXPECT_GE(stats.rounds_restarted, 1u);
}

TEST_F(RecoveryTest, WorkerSilentAtHandshakeTripsDeadlineAndIsReassigned) {
  // Worker 2 never answers anything (every receive reports an expired
  // deadline): the handshake must retry, declare it dead, and hand its
  // planned range to the survivors before mining even starts.
  MechanismSpec spec;
  DistStats stats;
  const StatusOr<mining::AprioriResult> mined =
      MineWithFaults(spec, 3, "2:timeout-recv=0", Options(), &stats);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ExpectSameMiningResult(PipelineReference(spec), *mined);
  EXPECT_EQ(stats.workers_failed, 1u);
  EXPECT_GE(stats.deadline_retries, 1u);
  EXPECT_GE(stats.ranges_reassigned, 1u);
}

TEST_F(RecoveryTest, DroppedRequestIsUnmaskedByRealDeadline) {
  // Worker 1's requests after the Hello are silently eaten — the classic
  // partition where the peer never hears you. No injected timeout this
  // time: the REAL receive deadline (in-process cv wait) must fire, retry,
  // and declare the worker dead.
  MechanismSpec spec;
  CoordinatorOptions options = Options();
  options.retry.request_deadline_ms = 1000;
  options.retry.max_attempts = 2;
  DistStats stats;
  const StatusOr<mining::AprioriResult> mined =
      MineWithFaults(spec, 3, "1:drop-send=1", options, &stats);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ExpectSameMiningResult(PipelineReference(spec), *mined);
  EXPECT_EQ(stats.workers_failed, 1u);
  EXPECT_GE(stats.deadline_retries, 1u);
}

TEST_F(RecoveryTest, AllWorkersDeadYieldsUnavailable) {
  // Nobody left to re-assign to: the one worker is silent, so Connect must
  // fail with kUnavailable — the only terminal failure recovery allows.
  const StatusOr<mining::AprioriResult> mined =
      MineWithFaults(MechanismSpec{}, 1, "0:timeout-recv=0", Options());
  ASSERT_FALSE(mined.ok());
  EXPECT_EQ(mined.status().code(), StatusCode::kUnavailable);
}

TEST_F(RecoveryTest, WorkerReportedErrorStaysFatal) {
  // A worker that REFUSES the job (here: schema fingerprint mismatch)
  // reports an app-level error; re-assignment would just be refused again
  // everywhere, so this must stay fatal even with a healthy second worker.
  std::vector<std::unique_ptr<InProcessWorker>> workers;
  std::vector<std::unique_ptr<Transport>> transports;
  for (size_t w = 0; w < 2; ++w) {
    workers.push_back(
        std::make_unique<InProcessWorker>(MakeWorkerOptions(*table_)));
    transports.push_back(workers[w]->TakeCoordinatorEndpoint());
  }
  const StatusOr<std::unique_ptr<Coordinator>> coordinator =
      Coordinator::Connect(std::move(transports), data::health::Schema(),
                           MechanismSpec{}, table_->num_rows(), Options());
  ASSERT_FALSE(coordinator.ok());
  EXPECT_EQ(coordinator.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(coordinator.status().message().find("fingerprint"),
            std::string::npos);
}

// A fake worker endpoint: acks the handshake (claiming its assigned range)
// and answers pings, but refuses every AssignRange with an app-level Error
// frame — the one failure shape re-assignment must treat as the JOB's
// fault, not the worker's.
class RefusingWorkerTransport : public Transport {
 public:
  explicit RefusingWorkerTransport(uint8_t shard_kind)
      : shard_kind_(shard_kind) {}

  Status Send(const Message& message) override {
    std::lock_guard<std::mutex> lock(mu_);
    switch (message.type) {
      case MessageType::kHello: {
        const StatusOr<HelloRequest> hello = DecodeHello(message);
        FRAPP_CHECK(hello.ok()) << hello.status().ToString();
        HelloAck ack;
        ack.num_rows = hello->range_end - hello->range_begin;
        ack.shard_kind = shard_kind_;
        replies_.push_back(EncodeHelloAck(ack));
        break;
      }
      case MessageType::kPing:
        replies_.push_back(EncodePong());
        break;
      case MessageType::kAssignRange:
        replies_.push_back(EncodeError(
            Status::InvalidArgument("scripted refusal of re-assignment")));
        break;
      case MessageType::kShutdown:
        break;
      default:
        replies_.push_back(
            EncodeError(Status::Internal("unexpected message type")));
        break;
    }
    return Status::OK();
  }

  StatusOr<Message> Receive() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (replies_.empty()) return Status::Unavailable("no scripted reply");
    Message reply = std::move(replies_.front());
    replies_.erase(replies_.begin());
    return reply;
  }

  void Close() override {}

 private:
  std::mutex mu_;
  const uint8_t shard_kind_;
  std::vector<Message> replies_;
};

TEST_F(RecoveryTest, AssignRangeRefusalStaysFatalInsteadOfCascading) {
  // Worker 2 dies at handshake; its 2-chunk orphan splits across BOTH
  // survivors, so scripted worker 1 is guaranteed an AssignRange — which
  // it refuses with an app-level Error. Treating that as worker death
  // would cascade (requeue to worker 0, coverage mismatch, kUnavailable);
  // the refusal's own status must surface instead, naming the worker.
  MechanismSpec spec;
  auto mechanism = *MakeMechanism(spec, table_->schema());
  const uint8_t shard_kind =
      mechanism->shard_kind() == core::Mechanism::ShardKind::kBoolean ? 1 : 0;

  std::vector<std::unique_ptr<InProcessWorker>> workers;
  std::vector<std::unique_ptr<Transport>> transports;
  workers.push_back(
      std::make_unique<InProcessWorker>(MakeWorkerOptions(*table_)));
  transports.push_back(workers[0]->TakeCoordinatorEndpoint());
  transports.push_back(std::make_unique<RefusingWorkerTransport>(shard_kind));
  workers.push_back(
      std::make_unique<InProcessWorker>(MakeWorkerOptions(*table_)));
  transports.push_back(
      MaybeInjectFaults(workers[1]->TakeCoordinatorEndpoint(),
                        *ParseFaultSpec("2:timeout-recv=0"), 2));

  const StatusOr<std::unique_ptr<Coordinator>> coordinator =
      Coordinator::Connect(std::move(transports), table_->schema(), spec,
                           table_->num_rows(), Options());
  ASSERT_FALSE(coordinator.ok());
  EXPECT_EQ(coordinator.status().code(), StatusCode::kInvalidArgument)
      << coordinator.status().ToString();
  EXPECT_NE(coordinator.status().message().find("worker 1"),
            std::string::npos)
      << coordinator.status().ToString();
  EXPECT_NE(coordinator.status().message().find("scripted refusal"),
            std::string::npos)
      << coordinator.status().ToString();
}

TEST_F(RecoveryTest, CheckHealthPingsEveryWorker) {
  MechanismSpec spec;
  DistStats stats;
  const StatusOr<mining::AprioriResult> mined =
      MineWithFaults(spec, 2, "", Options(), &stats,
                     /*check_health_first=*/true);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ExpectSameMiningResult(PipelineReference(spec), *mined);
  EXPECT_EQ(stats.pings_sent, 2u);
  EXPECT_EQ(stats.workers_failed, 0u);
  EXPECT_EQ(stats.workers_alive, 2u);
}

TEST_F(RecoveryTest, CheckHealthUnmasksHungWorkerBeforeMining) {
  // Worker 0 answers its HelloAck, then goes silent. CheckHealth must trip
  // on the missing Pong, re-assign its range, and the subsequent mine must
  // run entirely on the survivors — bit-identical.
  MechanismSpec spec;
  DistStats stats;
  const StatusOr<mining::AprioriResult> mined =
      MineWithFaults(spec, 3, "0:timeout-recv=1", Options(), &stats,
                     /*check_health_first=*/true);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ExpectSameMiningResult(PipelineReference(spec), *mined);
  EXPECT_EQ(stats.pings_sent, 3u);
  EXPECT_EQ(stats.workers_failed, 1u);
  EXPECT_EQ(stats.workers_alive, 2u);
  EXPECT_GE(stats.ranges_reassigned, 1u);
}

// ServeWorker sessions in an accept loop, like `frapp worker` runs them:
// the substrate for coordinator-outlived-by-worker tests.
class MultiSessionTcpWorkerHost {
 public:
  explicit MultiSessionTcpWorkerHost(WorkerOptions options) {
    StatusOr<TcpListener> listener = TcpListener::Bind("127.0.0.1", 0);
    FRAPP_CHECK(listener.ok()) << listener.status().ToString();
    listener_ = std::make_unique<TcpListener>(*std::move(listener));
    thread_ = std::thread([this, options = std::move(options)] {
      while (true) {
        StatusOr<std::unique_ptr<Transport>> accepted = listener_->Accept();
        if (!accepted.ok()) return;  // listener closed: host shut down
        session_results_.push_back(ServeWorker(**accepted, options));
      }
    });
  }

  ~MultiSessionTcpWorkerHost() { Stop(); }

  uint16_t port() const { return listener_->port(); }

  const std::vector<Status>& Stop() {
    if (thread_.joinable()) {
      listener_->Close();
      thread_.join();
    }
    return session_results_;
  }

 private:
  std::unique_ptr<TcpListener> listener_;
  std::thread thread_;
  std::vector<Status> session_results_;
};

TEST_F(RecoveryTest, WorkerOutlivesCrashedCoordinatorAndServesRerun) {
  MechanismSpec spec;
  IndexCache cache;
  WorkerOptions options = MakeWorkerOptions(*table_);
  options.index_cache = &cache;
  options.source_id = "census-test-table";
  MultiSessionTcpWorkerHost host(std::move(options));

  // Session 1: a "coordinator" that dies right after connecting, without
  // so much as a Hello. The worker must shrug it off and keep accepting.
  {
    StatusOr<std::unique_ptr<Transport>> doomed =
        TcpConnect("127.0.0.1", host.port());
    ASSERT_TRUE(doomed.ok()) << doomed.status().ToString();
    (*doomed)->Close();
  }

  // Sessions 2 and 3: two full coordinator runs against the same worker
  // process. Both must succeed and match; the second one's ingest must be
  // served from the index cache.
  mining::AprioriResult results[2];
  for (int run = 0; run < 2; ++run) {
    StatusOr<std::unique_ptr<Transport>> transport =
        TcpConnect("127.0.0.1", host.port());
    ASSERT_TRUE(transport.ok()) << transport.status().ToString();
    std::vector<std::unique_ptr<Transport>> transports;
    transports.push_back(*std::move(transport));
    StatusOr<std::unique_ptr<Coordinator>> coordinator =
        Coordinator::Connect(std::move(transports), table_->schema(), spec,
                             table_->num_rows(), Options());
    ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
    StatusOr<mining::AprioriResult> mined =
        (*coordinator)->Mine(MiningOptions());
    ASSERT_TRUE(mined.ok()) << mined.status().ToString();
    results[run] = *std::move(mined);
    (*coordinator)->Shutdown();
  }
  ExpectSameMiningResult(results[0], results[1]);
  ExpectSameMiningResult(PipelineReference(spec), results[0]);

  const IndexCache::Stats cache_stats = cache.stats();
  EXPECT_GE(cache_stats.hits, 1u) << "rerun did not hit the index cache";
  EXPECT_GE(cache_stats.entries, 1u);

  for (const Status& session : host.Stop()) {
    EXPECT_TRUE(session.ok()) << session.ToString();
  }
}

TEST_F(RecoveryTest, IndexCacheKeyCoversEveryDeterminismInput) {
  MechanismSpec spec;
  const std::string base =
      MakeIndexCacheKey("src", 1, CanonicalSpecKey(spec), 7, 0, 8192);
  EXPECT_NE(base,
            MakeIndexCacheKey("other", 1, CanonicalSpecKey(spec), 7, 0, 8192));
  EXPECT_NE(base,
            MakeIndexCacheKey("src", 2, CanonicalSpecKey(spec), 7, 0, 8192));
  EXPECT_NE(base,
            MakeIndexCacheKey("src", 1, CanonicalSpecKey(spec), 8, 0, 8192));
  EXPECT_NE(base,
            MakeIndexCacheKey("src", 1, CanonicalSpecKey(spec), 7, 0, 16384));
  EXPECT_NE(base, MakeIndexCacheKey("src", 1, CanonicalSpecKey(spec), 7, 8192,
                                    16384));

  // The spec key must see FLOAT BIT PATTERNS, not formatted decimals: two
  // gammas that print identically at low precision still key differently.
  MechanismSpec a = spec;
  MechanismSpec b = spec;
  a.gamma = 19.0;
  b.gamma = 19.0 + 1e-12;
  EXPECT_NE(CanonicalSpecKey(a), CanonicalSpecKey(b));
  EXPECT_NE(base,
            MakeIndexCacheKey("src", 1, CanonicalSpecKey(b), 7, 0, 8192));
}

// A bounded cache evicts least-recently-used entries instead of growing
// forever — and recency is refreshed by Lookup, not insertion order.
TEST_F(RecoveryTest, IndexCacheEvictsLeastRecentlyUsedUnderByteBudget) {
  // Each entry's boolean shard holds 1024 words = 8 KiB; budget two and a
  // bit entries so the third insert must evict exactly one.
  StatusOr<data::BooleanTable> table = data::BooleanTable::CreateEmpty(64);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  for (size_t row = 0; row < 64 * 1024; ++row) table->AppendRow(0);
  CachedRangeIndex entry;
  entry.boolean_shards.emplace_back(*table);
  const size_t entry_bytes = entry.MemoryBytes();
  ASSERT_GT(entry_bytes, 0u);

  IndexCache cache(entry_bytes * 2 + entry_bytes / 2);
  cache.Insert("a", entry);
  cache.Insert("b", entry);
  CachedRangeIndex out;
  EXPECT_TRUE(cache.Lookup("a", &out));  // refresh: "b" is now the LRU
  cache.Insert("c", entry);

  EXPECT_TRUE(cache.Lookup("a", &out));
  EXPECT_FALSE(cache.Lookup("b", &out)) << "LRU entry was not the victim";
  EXPECT_TRUE(cache.Lookup("c", &out));
  const IndexCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, entry_bytes * 2 + entry_bytes / 2);

  // An unbounded cache (0) never evicts; a tiny budget still retains the
  // newest entry rather than thrashing to empty.
  IndexCache unbounded(0);
  unbounded.Insert("a", entry);
  unbounded.Insert("b", entry);
  EXPECT_EQ(unbounded.stats().evictions, 0u);
  IndexCache tiny(1);
  tiny.Insert("a", entry);
  EXPECT_TRUE(tiny.Lookup("a", &out));
  tiny.Insert("b", entry);
  EXPECT_TRUE(tiny.Lookup("b", &out));
  EXPECT_EQ(tiny.stats().entries, 1u);
}

}  // namespace
}  // namespace dist
}  // namespace frapp
