// Wire-protocol unit tests: every message type must survive an
// encode -> frame -> decode round trip unchanged, and every malformed frame
// — truncated, oversized, unknown-typed, or carrying trailing garbage —
// must be rejected with a Status, never a partial decode.

#include "frapp/dist/wire.h"

#include <gtest/gtest.h>

#include "frapp/data/boolean_vertical_index.h"

namespace frapp {
namespace dist {
namespace {

mining::Itemset MakeItemset(std::vector<mining::Item> items) {
  return *mining::Itemset::Create(std::move(items));
}

TEST(WireFrameTest, RoundTripsHeaderAndPayload) {
  Message message{MessageType::kCountResponse, {1, 2, 3, 4, 5}};
  const std::vector<uint8_t> frame = EncodeFrame(message);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 5);
  EXPECT_EQ(message.WireSize(), frame.size());

  size_t consumed = 0;
  const StatusOr<Message> decoded =
      DecodeFrame(frame.data(), frame.size(), &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded->type, MessageType::kCountResponse);
  EXPECT_EQ(decoded->payload, message.payload);
}

TEST(WireFrameTest, RejectsTruncatedHeader) {
  const std::vector<uint8_t> frame = EncodeFrame(EncodeShutdown());
  size_t consumed = 0;
  for (size_t keep = 0; keep < kFrameHeaderBytes; ++keep) {
    const StatusOr<Message> decoded =
        DecodeFrame(frame.data(), keep, &consumed);
    EXPECT_FALSE(decoded.ok()) << "header bytes kept: " << keep;
  }
}

TEST(WireFrameTest, RejectsTruncatedPayload) {
  Message message{MessageType::kCountResponse, std::vector<uint8_t>(64, 7)};
  const std::vector<uint8_t> frame = EncodeFrame(message);
  size_t consumed = 0;
  for (size_t missing = 1; missing <= 64; missing += 13) {
    const StatusOr<Message> decoded =
        DecodeFrame(frame.data(), frame.size() - missing, &consumed);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireFrameTest, RejectsUnknownMessageType) {
  std::vector<uint8_t> frame = EncodeFrame(EncodeShutdown());
  frame[4] = 0x77;  // type byte
  size_t consumed = 0;
  const StatusOr<Message> decoded =
      DecodeFrame(frame.data(), frame.size(), &consumed);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("unknown message type"),
            std::string::npos);
}

TEST(WireFrameTest, RejectsOversizedLengthPrefix) {
  std::vector<uint8_t> frame = EncodeFrame(EncodeShutdown());
  frame[0] = 0xff;  // low byte of a huge little-endian length
  frame[1] = 0xff;
  frame[2] = 0xff;
  frame[3] = 0x7f;
  size_t consumed = 0;
  const StatusOr<Message> decoded =
      DecodeFrame(frame.data(), frame.size(), &consumed);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("cap"), std::string::npos);
}

TEST(WireHelloTest, RoundTrips) {
  HelloRequest hello;
  hello.schema_fingerprint = 0x1234567890abcdefULL;
  hello.perturb_seed = 17;
  hello.range_begin = 8192;
  hello.range_end = 40960;
  hello.spec.kind = MechanismSpec::Kind::kRanGd;
  hello.spec.gamma = 19.0;
  hello.spec.alpha = 0.56;
  hello.spec.randomization = random::RandomizationKind::kTwoPoint;
  hello.spec.cutoff_k = 5;
  hello.spec.rho = 0.25;

  const StatusOr<HelloRequest> decoded = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->protocol_version, kProtocolVersion);
  EXPECT_EQ(decoded->schema_fingerprint, hello.schema_fingerprint);
  EXPECT_EQ(decoded->perturb_seed, hello.perturb_seed);
  EXPECT_EQ(decoded->range_begin, hello.range_begin);
  EXPECT_EQ(decoded->range_end, hello.range_end);
  EXPECT_EQ(decoded->spec.kind, hello.spec.kind);
  EXPECT_EQ(decoded->spec.gamma, hello.spec.gamma);
  EXPECT_EQ(decoded->spec.alpha, hello.spec.alpha);
  EXPECT_EQ(decoded->spec.randomization, hello.spec.randomization);
  EXPECT_EQ(decoded->spec.cutoff_k, hello.spec.cutoff_k);
  EXPECT_EQ(decoded->spec.rho, hello.spec.rho);
}

TEST(WireHelloTest, RejectsInvertedRange) {
  HelloRequest hello;
  hello.range_begin = 100;
  hello.range_end = 50;
  EXPECT_FALSE(DecodeHello(EncodeHello(hello)).ok());
}

TEST(WireHelloTest, RejectsTruncatedPayload) {
  Message message = EncodeHello(HelloRequest{});
  message.payload.pop_back();
  const StatusOr<HelloRequest> decoded = DecodeHello(message);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("truncated"), std::string::npos);
}

TEST(WireHelloTest, RejectsTrailingGarbage) {
  Message message = EncodeHello(HelloRequest{});
  message.payload.push_back(0);
  const StatusOr<HelloRequest> decoded = DecodeHello(message);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
}

TEST(WireHelloAckTest, RoundTrips) {
  HelloAck ack;
  ack.num_rows = 123456;
  ack.shard_kind = 1;
  ack.num_bits = 23;
  const StatusOr<HelloAck> decoded = DecodeHelloAck(EncodeHelloAck(ack));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_rows, ack.num_rows);
  EXPECT_EQ(decoded->shard_kind, ack.shard_kind);
  EXPECT_EQ(decoded->num_bits, ack.num_bits);
}

TEST(WireCountTest, RequestRoundTrips) {
  CountRequest request;
  request.itemsets.push_back(MakeItemset({{0, 3}}));
  request.itemsets.push_back(MakeItemset({{1, 0}, {4, 2}}));
  request.itemsets.push_back(MakeItemset({{0, 1}, {2, 2}, {5, 1}}));

  const StatusOr<CountRequest> decoded =
      DecodeCountRequest(EncodeCountRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->itemsets.size(), request.itemsets.size());
  for (size_t c = 0; c < request.itemsets.size(); ++c) {
    EXPECT_EQ(decoded->itemsets[c], request.itemsets[c]);
  }
}

TEST(WireCountTest, RequestRejectsDuplicateAttributes) {
  // Bypass Itemset validation by crafting the payload directly: a 2-item
  // itemset using attribute 3 twice.
  Message message = EncodeCountRequest(CountRequest{});
  message.payload.clear();
  const uint8_t raw[] = {1, 0, 0, 0,        // 1 itemset
                         2, 0,              // k = 2
                         3, 0, 1, 0,        // (3, 1)
                         3, 0, 2, 0};       // (3, 2) -- same attribute
  message.payload.assign(raw, raw + sizeof(raw));
  EXPECT_FALSE(DecodeCountRequest(message).ok());
}

TEST(WireCountTest, RequestRejectsEmptyItemset) {
  Message message{MessageType::kCountRequest, {1, 0, 0, 0, 0, 0}};
  EXPECT_FALSE(DecodeCountRequest(message).ok());
}

TEST(WireCountTest, ResponseRoundTrips) {
  CountResponse response;
  response.counts = {0, 1, 42, 50000, 0xffffffffffffULL};
  const StatusOr<CountResponse> decoded =
      DecodeCountResponse(EncodeCountResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->counts, response.counts);
}

TEST(WireCountTest, ResponseRejectsCountMismatch) {
  Message message = EncodeCountResponse(CountResponse{{1, 2, 3}});
  message.payload.resize(message.payload.size() - 8);  // drop one count
  EXPECT_FALSE(DecodeCountResponse(message).ok());
}

TEST(WirePatternTest, RequestRoundTripsCandidateBlocks) {
  PatternRequest request;
  request.candidates = {{0, 7, 22}, {3}, {1, 2, 4, 5}};
  const StatusOr<PatternRequest> decoded =
      DecodePatternRequest(EncodePatternRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->candidates, request.candidates);
}

TEST(WirePatternTest, RequestRejectsCandidateAboveCap) {
  PatternRequest request;
  request.candidates.push_back(std::vector<uint32_t>(
      data::BooleanVerticalIndex::kMaxPatternLength + 1, 0));
  EXPECT_FALSE(DecodePatternRequest(EncodePatternRequest(request)).ok());
}

TEST(WirePatternTest, RequestRejectsBatchAbovePatternBudget) {
  // Each k=20 candidate costs 2^20 patterns; three of them blow the 2^21
  // batch budget even though each is individually legal.
  PatternRequest request;
  for (int c = 0; c < 3; ++c) {
    request.candidates.push_back(std::vector<uint32_t>(
        data::BooleanVerticalIndex::kMaxPatternLength, 0));
  }
  const StatusOr<PatternRequest> decoded =
      DecodePatternRequest(EncodePatternRequest(request));
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("budget"), std::string::npos);
}

TEST(WirePatternTest, ResponseRoundTripsNegativeCounts) {
  // Superset counts are never negative in practice, but i64 is the wire
  // type (Mobius intermediates are signed); the codec must not mangle sign.
  PatternResponse response;
  response.superset_counts = {{5, -3, 0, 123456789}, {42, -1}};
  const StatusOr<PatternResponse> decoded =
      DecodePatternResponse(EncodePatternResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->superset_counts, response.superset_counts);
}

TEST(WirePatternTest, ResponseRejectsTruncatedCounts) {
  Message message = EncodePatternResponse(PatternResponse{{{1, 2, 3, 4}}});
  message.payload.resize(message.payload.size() - 8);  // drop one count
  EXPECT_FALSE(DecodePatternResponse(message).ok());
}

TEST(WireDecodeTest, HugeElementCountFailsAsTruncationNotAllocation) {
  // A 4-byte payload announcing 2^32-1 elements must come back as a
  // truncated-payload Status — never as a multi-gigabyte reserve() that
  // kills the process before the decoder can answer.
  Message message{MessageType::kCountRequest, {0xff, 0xff, 0xff, 0xff}};
  EXPECT_FALSE(DecodeCountRequest(message).ok());
  message.type = MessageType::kCountResponse;
  EXPECT_FALSE(DecodeCountResponse(message).ok());
  message.type = MessageType::kPatternRequest;
  EXPECT_FALSE(DecodePatternRequest(message).ok());
  message.type = MessageType::kPatternResponse;
  EXPECT_FALSE(DecodePatternResponse(message).ok());
}

TEST(WireErrorTest, StatusRoundTrips) {
  const Status original =
      Status::FailedPrecondition("schema fingerprint mismatch");
  const Status decoded = DecodeError(EncodeError(original));
  EXPECT_EQ(decoded.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(decoded.message().find("schema fingerprint mismatch"),
            std::string::npos);
  EXPECT_NE(decoded.message().find("remote"), std::string::npos);
}

TEST(WireErrorTest, DecodersSurfaceErrorFramesAsStatus) {
  // A decoder handed an Error frame (the worker failed) must yield that
  // remote Status, not "unexpected message type".
  const Message error = EncodeError(Status::OutOfRange("bit position 99"));
  const StatusOr<CountResponse> decoded = DecodeCountResponse(error);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(decoded.status().message().find("bit position 99"),
            std::string::npos);
}

TEST(WireShutdownTest, HasEmptyPayload) {
  const Message message = EncodeShutdown();
  EXPECT_EQ(message.type, MessageType::kShutdown);
  EXPECT_TRUE(message.payload.empty());
}

TEST(WireLivenessTest, PingPongArePayloadFree) {
  const Message ping = EncodePing();
  EXPECT_EQ(ping.type, MessageType::kPing);
  EXPECT_TRUE(ping.payload.empty());
  const Message pong = EncodePong();
  EXPECT_EQ(pong.type, MessageType::kPong);
  EXPECT_TRUE(pong.payload.empty());
}

TEST(WireAssignRangeTest, RoundTrips) {
  AssignRange assign;
  assign.range_begin = 8192;
  assign.range_end = 40960;
  const StatusOr<AssignRange> decoded =
      DecodeAssignRange(EncodeAssignRange(assign));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->range_begin, assign.range_begin);
  EXPECT_EQ(decoded->range_end, assign.range_end);
}

TEST(WireAssignRangeTest, RejectsInvertedRange) {
  AssignRange assign;
  assign.range_begin = 100;
  assign.range_end = 50;
  EXPECT_FALSE(DecodeAssignRange(EncodeAssignRange(assign)).ok());
}

TEST(WireAssignRangeTest, RejectsTruncatedPayload) {
  Message message = EncodeAssignRange(AssignRange{});
  message.payload.pop_back();
  EXPECT_FALSE(DecodeAssignRange(message).ok());
}

TEST(WireRangeAckTest, RoundTrips) {
  RangeAck ack;
  ack.num_rows = 32768;
  ack.num_bits = 23;
  const StatusOr<RangeAck> decoded = DecodeRangeAck(EncodeRangeAck(ack));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_rows, ack.num_rows);
  EXPECT_EQ(decoded->num_bits, ack.num_bits);
}

TEST(WireRangeAckTest, ErrorFrameSurfacesAsRemoteStatus) {
  const Message error = EncodeError(Status::InvalidArgument("bad range"));
  const StatusOr<RangeAck> decoded = DecodeRangeAck(error);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("bad range"), std::string::npos);
}

}  // namespace
}  // namespace dist
}  // namespace frapp
