// Transport tests: the in-process pair and the TCP loopback transport must
// deliver framed messages in order, surface peer closes as clean
// ClosedError-style statuses, and move large frames intact.

#include "frapp/dist/transport.h"

#include <gtest/gtest.h>

#include <thread>

namespace frapp {
namespace dist {
namespace {

Message Ping(uint8_t fill, size_t size) {
  return Message{MessageType::kCountResponse,
                 std::vector<uint8_t>(size, fill)};
}

TEST(InProcessTransportTest, DeliversInOrder) {
  auto [a, b] = CreateInProcessTransportPair();
  ASSERT_TRUE(a->Send(Ping(1, 4)).ok());
  ASSERT_TRUE(a->Send(Ping(2, 8)).ok());

  StatusOr<Message> first = b->Receive();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->payload, std::vector<uint8_t>(4, 1));
  StatusOr<Message> second = b->Receive();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->payload, std::vector<uint8_t>(8, 2));
}

TEST(InProcessTransportTest, IsBidirectional) {
  auto [a, b] = CreateInProcessTransportPair();
  ASSERT_TRUE(a->Send(Ping(1, 1)).ok());
  ASSERT_TRUE(b->Send(Ping(2, 2)).ok());
  EXPECT_TRUE(b->Receive().ok());
  EXPECT_TRUE(a->Receive().ok());
}

TEST(InProcessTransportTest, CloseUnblocksReceiver) {
  auto [a, b] = CreateInProcessTransportPair();
  std::thread closer([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a->Close();
  });
  const StatusOr<Message> received = b->Receive();
  closer.join();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kFailedPrecondition);
}

TEST(InProcessTransportTest, DrainsQueuedMessagesAfterClose) {
  auto [a, b] = CreateInProcessTransportPair();
  ASSERT_TRUE(a->Send(Ping(9, 3)).ok());
  a->Close();
  // The message sent before the close must still arrive (TCP delivers
  // buffered bytes before EOF; the in-process pair matches).
  StatusOr<Message> received = b->Receive();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received->payload, std::vector<uint8_t>(3, 9));
  EXPECT_FALSE(b->Receive().ok());
}

TEST(InProcessTransportTest, SendAfterCloseFails) {
  auto [a, b] = CreateInProcessTransportPair();
  b->Close();
  EXPECT_FALSE(a->Send(Ping(1, 1)).ok());
}

class TcpTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<TcpListener> listener = TcpListener::Bind("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = std::make_unique<TcpListener>(*std::move(listener));

    std::thread accepter([this] {
      StatusOr<std::unique_ptr<Transport>> accepted = listener_->Accept();
      if (accepted.ok()) server_ = *std::move(accepted);
    });
    StatusOr<std::unique_ptr<Transport>> connected =
        TcpConnect("127.0.0.1", listener_->port());
    accepter.join();
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    client_ = *std::move(connected);
    ASSERT_NE(server_, nullptr);
  }

  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<Transport> client_;
  std::unique_ptr<Transport> server_;
};

TEST_F(TcpTransportTest, RoundTripsOverLoopback) {
  ASSERT_TRUE(client_->Send(Ping(5, 100)).ok());
  StatusOr<Message> received = server_->Receive();
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received->type, MessageType::kCountResponse);
  EXPECT_EQ(received->payload, std::vector<uint8_t>(100, 5));

  ASSERT_TRUE(server_->Send(Ping(6, 10)).ok());
  received = client_->Receive();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received->payload, std::vector<uint8_t>(10, 6));
}

TEST_F(TcpTransportTest, MovesMultiMegabyteFramesIntact) {
  // Bigger than any socket buffer: exercises the partial-write/read loops.
  std::vector<uint8_t> payload(8 << 20);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  }
  std::thread sender([this, &payload] {
    (void)client_->Send(Message{MessageType::kPatternResponse, payload});
  });
  StatusOr<Message> received = server_->Receive();
  sender.join();
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received->payload, payload);
}

TEST_F(TcpTransportTest, PeerCloseReadsAsClosedConnection) {
  client_->Close();
  const StatusOr<Message> received = server_->Receive();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TcpListenerTest, EphemeralPortIsReported) {
  StatusOr<TcpListener> listener = TcpListener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  EXPECT_GT(listener->port(), 0);
}

TEST(TcpConnectTest, RefusedConnectionFails) {
  // Bind-then-close leaves a port that refuses connections.
  StatusOr<TcpListener> listener = TcpListener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();
  listener->Close();
  EXPECT_FALSE(TcpConnect("127.0.0.1", port).ok());
}

TEST(InProcessTransportTest, ReceiveDeadlineTripsAndThenResumes) {
  auto [a, b] = CreateInProcessTransportPair();
  b->SetReceiveTimeoutMillis(30);
  const StatusOr<Message> timed_out = b->Receive();
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);

  // A deadline is NOT a failure of the connection: the next receive on the
  // same transport must deliver normally.
  ASSERT_TRUE(a->Send(Ping(3, 5)).ok());
  const StatusOr<Message> received = b->Receive();
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received->payload, std::vector<uint8_t>(5, 3));
}

TEST_F(TcpTransportTest, ReceiveDeadlineTripsAndThenResumes) {
  server_->SetReceiveTimeoutMillis(30);
  const StatusOr<Message> timed_out = server_->Receive();
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);

  ASSERT_TRUE(client_->Send(Ping(4, 16)).ok());
  StatusOr<Message> received = server_->Receive();
  // The frame may land after one more expired wait on a slow machine;
  // deadline-retrying on the SAME connection must eventually deliver it
  // intact — that is the resumable-receive contract the coordinator's
  // retry loop relies on.
  for (int spins = 0; !received.ok() &&
       received.status().code() == StatusCode::kDeadlineExceeded &&
       spins < 100; ++spins) {
    received = server_->Receive();
  }
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received->payload, std::vector<uint8_t>(16, 4));
}

TEST_F(TcpTransportTest, DeadlineMidFrameNeverDesyncsTheStream) {
  // A multi-megabyte frame against a 1 ms receive deadline: the receiver
  // trips mid-frame (partial bytes buffered), and every retried receive
  // must RESUME the same frame, never re-parse from the middle. The frame
  // must arrive bit-intact, followed in order by a second frame.
  std::vector<uint8_t> payload(8 << 20);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  }
  std::thread sender([this, &payload] {
    (void)client_->Send(Message{MessageType::kPatternResponse, payload});
    (void)client_->Send(Ping(9, 3));
  });

  server_->SetReceiveTimeoutMillis(1);
  StatusOr<Message> received = server_->Receive();
  size_t deadline_trips = 0;
  while (!received.ok() &&
         received.status().code() == StatusCode::kDeadlineExceeded) {
    ++deadline_trips;
    ASSERT_LT(deadline_trips, 100000u);
    received = server_->Receive();
  }
  sender.join();
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received->payload, payload);

  server_->SetReceiveTimeoutMillis(0);
  const StatusOr<Message> second = server_->Receive();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->payload, std::vector<uint8_t>(3, 9));
}

TEST(TcpDialTest, DialsLiveListener) {
  StatusOr<TcpListener> listener = TcpListener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  std::thread accepter([&listener] { (void)listener->Accept(); });
  DialOptions options;
  options.retry.max_attempts = 2;
  const StatusOr<std::unique_ptr<Transport>> dialed =
      TcpDial("127.0.0.1", listener->port(), options);
  EXPECT_TRUE(dialed.ok()) << dialed.status().ToString();
  listener->Close();
  accepter.join();
}

TEST(TcpDialTest, RefusedDialRetriesThenFailsUnavailable) {
  StatusOr<TcpListener> listener = TcpListener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();
  listener->Close();

  DialOptions options;
  options.retry.max_attempts = 3;
  options.retry.base_backoff_ms = 1;
  options.retry.max_backoff_ms = 2;
  const StatusOr<std::unique_ptr<Transport>> dialed =
      TcpDial("127.0.0.1", port, options);
  ASSERT_FALSE(dialed.ok());
  EXPECT_EQ(dialed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(dialed.status().message().find("3 attempt"), std::string::npos);
}

}  // namespace
}  // namespace dist
}  // namespace frapp
