#include "frapp/random/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace frapp {
namespace random {
namespace {

TEST(Pcg64Test, DeterministicForSameSeed) {
  Pcg64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Pcg64Test, DifferentSeedsDiffer) {
  Pcg64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Pcg64Test, DifferentStreamsDiffer) {
  Pcg64 a(1, 1), b(1, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Pcg64Test, NextDoubleInUnitInterval) {
  Pcg64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Pcg64Test, NextDoubleMeanAndVariance) {
  Pcg64 rng(8);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextDouble();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Pcg64Test, NextDoubleRangeRespectsBounds) {
  Pcg64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Pcg64Test, NextBoundedIsUniformish) {
  Pcg64 rng(10);
  const uint64_t bound = 10;
  const int n = 100000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  // Chi-square against uniform: 9 dof, reject far above 27.9 (p=0.001).
  double chi2 = 0.0;
  const double expected = static_cast<double>(n) / bound;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 35.0);
}

TEST(Pcg64Test, NextBoundedCoversSmallRanges) {
  Pcg64 rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.NextBounded(3));
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Pcg64Test, BernoulliRates) {
  Pcg64 rng(12);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(Pcg64Test, SplitProducesIndependentStream) {
  Pcg64 parent(13);
  Pcg64 child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.Next() == child.Next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Pcg64Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(Pcg64::min() == 0);
  static_assert(Pcg64::max() == ~0ull);
  Pcg64 rng(14);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace random
}  // namespace frapp
