#include "frapp/random/alias_sampler.h"

#include <gtest/gtest.h>

namespace frapp {
namespace random {
namespace {

TEST(AliasSamplerTest, RejectsBadWeights) {
  EXPECT_FALSE(AliasSampler::Create({}).ok());
  EXPECT_FALSE(AliasSampler::Create({0.0, 0.0}).ok());
  EXPECT_FALSE(AliasSampler::Create({1.0, -0.1}).ok());
  EXPECT_FALSE(
      AliasSampler::Create({1.0, std::numeric_limits<double>::infinity()}).ok());
}

TEST(AliasSamplerTest, NormalizesProbabilities) {
  StatusOr<AliasSampler> s = AliasSampler::Create({2.0, 6.0});
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->Probability(0), 0.25, 1e-12);
  EXPECT_NEAR(s->Probability(1), 0.75, 1e-12);
}

TEST(AliasSamplerTest, SingleOutcome) {
  StatusOr<AliasSampler> s = AliasSampler::Create({3.0});
  ASSERT_TRUE(s.ok());
  Pcg64 rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s->Sample(rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightOutcomeNeverSampled) {
  StatusOr<AliasSampler> s = AliasSampler::Create({1.0, 0.0, 1.0});
  ASSERT_TRUE(s.ok());
  Pcg64 rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(s->Sample(rng), 1u);
}

class AliasSamplerDistributionTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(AliasSamplerDistributionTest, EmpiricalMatchesTarget) {
  const std::vector<double>& weights = GetParam();
  StatusOr<AliasSampler> s = AliasSampler::Create(weights);
  ASSERT_TRUE(s.ok());

  Pcg64 rng(42);
  const int n = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) ++counts[s->Sample(rng)];

  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  double chi2 = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = n * weights[i] / total_weight;
    if (expected == 0.0) {
      EXPECT_EQ(counts[i], 0);
      continue;
    }
    const double d = counts[i] - expected;
    chi2 += d * d / expected;
  }
  // Loose chi-square bound (dof <= 9): fails only on real bugs.
  EXPECT_LT(chi2, 40.0) << "weights size " << weights.size();
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, AliasSamplerDistributionTest,
    ::testing::Values(std::vector<double>{1.0, 1.0},
                      std::vector<double>{0.9, 0.1},
                      std::vector<double>{0.854, 0.032, 0.010, 0.008, 0.096},
                      std::vector<double>{5.0, 1.0, 1.0, 1.0, 1.0, 1.0},
                      std::vector<double>{0.001, 0.999}));

}  // namespace
}  // namespace random
}  // namespace frapp
