#include "frapp/random/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace frapp {
namespace random {
namespace {

TEST(SampleDiscreteLinearTest, MatchesWeights) {
  Pcg64 rng(1);
  const std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += SampleDiscreteLinear(weights, rng) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(SampleDiscreteLinearTest, ZeroWeightSkipped) {
  Pcg64 rng(2);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(SampleDiscreteLinear(weights, rng), 1u);
  }
}

TEST(SampleSubsetTest, SizeAndRangeAndSorted) {
  Pcg64 rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<size_t> subset = SampleSubset(10, 4, rng);
    ASSERT_EQ(subset.size(), 4u);
    for (size_t i = 0; i < subset.size(); ++i) {
      EXPECT_LT(subset[i], 10u);
      if (i > 0) {
        EXPECT_LT(subset[i - 1], subset[i]);
      }
    }
  }
}

TEST(SampleSubsetTest, FullAndEmptySubsets) {
  Pcg64 rng(4);
  EXPECT_TRUE(SampleSubset(5, 0, rng).empty());
  std::vector<size_t> all = SampleSubset(5, 5, rng);
  EXPECT_EQ(all, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(SampleSubsetTest, ElementsUniform) {
  // Each element of {0..4} should appear in a 2-subset with prob 2/5.
  Pcg64 rng(5);
  const int n = 50000;
  std::vector<int> counts(5, 0);
  for (int i = 0; i < n; ++i) {
    for (size_t e : SampleSubset(5, 2, rng)) ++counts[e];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.4, 0.01);
  }
}

TEST(SampleBinomialTest, EdgeCases) {
  Pcg64 rng(6);
  EXPECT_EQ(SampleBinomial(10, 0.0, rng), 0u);
  EXPECT_EQ(SampleBinomial(10, 1.0, rng), 10u);
  EXPECT_EQ(SampleBinomial(0, 0.5, rng), 0u);
}

TEST(SampleBinomialTest, MeanMatches) {
  Pcg64 rng(7);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(SampleBinomial(20, 0.3, rng));
  EXPECT_NEAR(sum / n, 6.0, 0.1);
}

class RandomizationParameterTest
    : public ::testing::TestWithParam<RandomizationKind> {};

TEST_P(RandomizationParameterTest, WithinBoundsAndZeroMean) {
  const RandomizationKind kind = GetParam();
  Pcg64 rng(8);
  const double alpha = 0.25;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double r = SampleRandomizationParameter(kind, alpha, rng);
    ASSERT_GE(r, -alpha);
    ASSERT_LE(r, alpha);
    sum += r;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01 * alpha * 10);
}

TEST_P(RandomizationParameterTest, ZeroAlphaIsDeterministic) {
  Pcg64 rng(9);
  EXPECT_DOUBLE_EQ(SampleRandomizationParameter(GetParam(), 0.0, rng), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, RandomizationParameterTest,
                         ::testing::Values(RandomizationKind::kUniform,
                                           RandomizationKind::kTwoPoint,
                                           RandomizationKind::kTruncatedGaussian));

TEST(RandomizationParameterTest, TwoPointTakesOnlyExtremes) {
  Pcg64 rng(10);
  for (int i = 0; i < 100; ++i) {
    const double r =
        SampleRandomizationParameter(RandomizationKind::kTwoPoint, 0.5, rng);
    EXPECT_TRUE(r == 0.5 || r == -0.5);
  }
}

TEST(RandomizationParameterTest, UniformSpreadsOverRange) {
  Pcg64 rng(11);
  double max_seen = -1.0, min_seen = 1.0;
  for (int i = 0; i < 10000; ++i) {
    const double r =
        SampleRandomizationParameter(RandomizationKind::kUniform, 1.0, rng);
    max_seen = std::max(max_seen, r);
    min_seen = std::min(min_seen, r);
  }
  EXPECT_GT(max_seen, 0.99);
  EXPECT_LT(min_seen, -0.99);
}

TEST(RandomizationKindNameTest, Names) {
  EXPECT_STREQ(RandomizationKindName(RandomizationKind::kUniform), "uniform");
  EXPECT_STREQ(RandomizationKindName(RandomizationKind::kTwoPoint), "two-point");
  EXPECT_STREQ(RandomizationKindName(RandomizationKind::kTruncatedGaussian),
               "trunc-gaussian");
}

}  // namespace
}  // namespace random
}  // namespace frapp
