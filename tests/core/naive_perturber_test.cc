#include "frapp/core/naive_perturber.h"

#include <gtest/gtest.h>

#include <cmath>

#include "frapp/core/gamma_diagonal.h"

namespace frapp {
namespace core {
namespace {

data::CategoricalSchema TinySchema() {
  StatusOr<data::CategoricalSchema> s = data::CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}});
  return *std::move(s);  // domain size 6
}

TEST(NaivePerturberTest, RejectsDomainMismatch) {
  data::CategoricalSchema schema = TinySchema();
  auto wrong = *GammaDiagonalMatrix::Create(19.0, 7);
  EXPECT_FALSE(NaivePerturber::Create(schema, wrong).ok());
}

TEST(NaivePerturberTest, RejectsHugeDomains) {
  data::CategoricalSchema schema = TinySchema();
  auto matrix = *GammaDiagonalMatrix::Create(19.0, 6);
  EXPECT_FALSE(NaivePerturber::Create(schema, matrix, /*max_domain=*/5).ok());
}

TEST(NaivePerturberTest, PerturbsWithMatrixColumnDistribution) {
  data::CategoricalSchema schema = TinySchema();
  auto matrix = *GammaDiagonalMatrix::Create(7.0, 6);
  auto perturber = *NaivePerturber::Create(schema, matrix);

  auto table = *data::CategoricalTable::Create(schema);
  for (int i = 0; i < 120000; ++i) (void)table.AppendRow({1, 2});

  random::Pcg64 rng(3);
  auto out = *perturber.Perturb(table, rng);
  ASSERT_EQ(out.num_rows(), table.num_rows());

  const data::DomainIndexer indexer = data::DomainIndexer::OverAllAttributes(schema);
  linalg::Vector hist = out.JointHistogram(indexer);
  hist.Scale(1.0 / static_cast<double>(out.num_rows()));
  const uint64_t u = indexer.Encode({1, 2});
  for (uint64_t v = 0; v < 6; ++v) {
    const double expected =
        (v == u) ? matrix.DiagonalValue() : matrix.OffDiagonalValue();
    EXPECT_NEAR(hist[static_cast<size_t>(v)], expected, 0.005) << "v=" << v;
  }
}

// A deterministic "always map to value 0" matrix exercises the generic
// dense-matrix path (the naive perturber works for ANY FRAPP matrix, not
// just gamma-diagonal ones).
TEST(NaivePerturberTest, WorksWithArbitraryDenseMatrix) {
  data::CategoricalSchema schema = TinySchema();
  linalg::Matrix a(6, 6);
  for (size_t u = 0; u < 6; ++u) a(0, u) = 1.0;  // everything maps to index 0
  auto dense = *DensePerturbationMatrix::Create(std::move(a), "to-zero");
  auto perturber = *NaivePerturber::Create(schema, dense);

  auto table = *data::CategoricalTable::Create(schema);
  (void)table.AppendRow({1, 2});
  (void)table.AppendRow({0, 1});
  random::Pcg64 rng(4);
  auto out = *perturber.Perturb(table, rng);
  for (size_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_EQ(out.Row(i), (std::vector<uint8_t>{0, 0}));
  }
}

TEST(DensePerturbationMatrixTest, ValidatesMarkovProperty) {
  linalg::Matrix not_stochastic(3, 3, 0.5);
  EXPECT_FALSE(DensePerturbationMatrix::Create(not_stochastic).ok());
  EXPECT_FALSE(DensePerturbationMatrix::Create(linalg::Matrix(2, 3)).ok());
  EXPECT_TRUE(DensePerturbationMatrix::Create(linalg::Matrix::Identity(3)).ok());
}

TEST(DensePerturbationMatrixTest, ConditionAndAmplification) {
  auto identity = *DensePerturbationMatrix::Create(linalg::Matrix::Identity(3));
  StatusOr<double> cond = identity.ConditionNumber();
  ASSERT_TRUE(cond.ok());
  EXPECT_NEAR(*cond, 1.0, 1e-9);
  EXPECT_TRUE(std::isinf(identity.Amplification()));  // zero off-diagonals
}

}  // namespace
}  // namespace core
}  // namespace frapp
