#include "frapp/core/subset_reconstruction.h"

#include <gtest/gtest.h>

#include "frapp/random/rng.h"

namespace frapp {
namespace core {
namespace {

TEST(GammaSubsetReconstructorTest, Validation) {
  EXPECT_FALSE(GammaSubsetReconstructor::Create(1.0, 100).ok());
  EXPECT_FALSE(GammaSubsetReconstructor::Create(19.0, 1).ok());
  EXPECT_TRUE(GammaSubsetReconstructor::Create(19.0, 2000).ok());
}

TEST(GammaSubsetReconstructorTest, SubsetMatrixMatchesPaperEq28) {
  // n_C = 2000 (CENSUS), subset of size 20: diagonal gamma x + (100-1) x,
  // off-diagonal 100 x.
  StatusOr<GammaSubsetReconstructor> r = GammaSubsetReconstructor::Create(19.0, 2000);
  ASSERT_TRUE(r.ok());
  StatusOr<linalg::UniformMixtureMatrix> m = r->SubsetMatrix(20);
  ASSERT_TRUE(m.ok());
  const double x = 1.0 / (19.0 + 1999.0);
  EXPECT_NEAR(m->DiagonalValue(), 19.0 * x + 99.0 * x, 1e-15);
  EXPECT_NEAR(m->OffDiagonalValue(), 100.0 * x, 1e-15);
  // Columns must sum to 1: the subset matrix is itself a Markov matrix.
  EXPECT_TRUE(m->IsColumnStochastic(1e-12));
}

TEST(GammaSubsetReconstructorTest, FullDomainSubsetRecoversOriginalMatrix) {
  StatusOr<GammaSubsetReconstructor> r = GammaSubsetReconstructor::Create(19.0, 64);
  ASSERT_TRUE(r.ok());
  StatusOr<linalg::UniformMixtureMatrix> m = r->SubsetMatrix(64);
  ASSERT_TRUE(m.ok());
  const double x = 1.0 / (19.0 + 63.0);
  EXPECT_NEAR(m->DiagonalValue(), 19.0 * x, 1e-15);
  EXPECT_NEAR(m->OffDiagonalValue(), x, 1e-15);
}

TEST(GammaSubsetReconstructorTest, ConditionNumberIsSubsetIndependent) {
  // The paper's key Figure 4 property: every subset matrix has condition
  // number (gamma + n_C - 1)/(gamma - 1).
  StatusOr<GammaSubsetReconstructor> r = GammaSubsetReconstructor::Create(19.0, 2000);
  ASSERT_TRUE(r.ok());
  const double expected = (19.0 + 1999.0) / 18.0;  // ~112.2 for CENSUS
  EXPECT_NEAR(r->ConditionNumber(), expected, 1e-9);
  for (uint64_t n_cs : {2ull, 4ull, 20ull, 100ull, 500ull, 2000ull}) {
    StatusOr<linalg::UniformMixtureMatrix> m = r->SubsetMatrix(n_cs);
    ASSERT_TRUE(m.ok());
    StatusOr<double> cond = m->ConditionNumber();
    ASSERT_TRUE(cond.ok());
    EXPECT_NEAR(*cond, expected, 1e-9) << "n_cs=" << n_cs;
  }
}

TEST(GammaSubsetReconstructorTest, HealthConditionNumber) {
  StatusOr<GammaSubsetReconstructor> r = GammaSubsetReconstructor::Create(19.0, 7500);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->ConditionNumber(), (19.0 + 7499.0) / 18.0, 1e-9);  // ~417.7
}

TEST(GammaSubsetReconstructorTest, ReconstructInvertsForwardMap) {
  // If perturbed support = d * s + o * (1 - s) aggregated per Eq. 28, the
  // O(1) reconstruction must return exactly s.
  StatusOr<GammaSubsetReconstructor> r = GammaSubsetReconstructor::Create(19.0, 2000);
  ASSERT_TRUE(r.ok());
  const uint64_t n_cs = 40;
  StatusOr<linalg::UniformMixtureMatrix> m = r->SubsetMatrix(n_cs);
  ASSERT_TRUE(m.ok());
  for (double s : {0.0, 0.02, 0.2, 0.5, 1.0}) {
    // Forward: sup_V = (d - o) s + o (because subset supports sum to one).
    const double sup_v =
        (m->DiagonalValue() - m->OffDiagonalValue()) * s + m->OffDiagonalValue();
    StatusOr<double> back = r->ReconstructSupport(sup_v, n_cs);
    ASSERT_TRUE(back.ok());
    EXPECT_NEAR(*back, s, 1e-12) << "s=" << s;
  }
}

TEST(GammaSubsetReconstructorTest, ReconstructMatchesFullMatrixSolve) {
  // Solving the full n_Cs x n_Cs system of Eq. 28 must give the same values
  // as the per-itemset O(1) formula.
  StatusOr<GammaSubsetReconstructor> r = GammaSubsetReconstructor::Create(19.0, 720);
  ASSERT_TRUE(r.ok());
  const uint64_t n_cs = 12;
  StatusOr<linalg::UniformMixtureMatrix> m = r->SubsetMatrix(n_cs);
  ASSERT_TRUE(m.ok());

  // A random support vector over the subset domain (sums to 1).
  random::Pcg64 rng(8);
  linalg::Vector s(n_cs);
  double total = 0.0;
  for (size_t i = 0; i < n_cs; ++i) {
    s[i] = rng.NextDouble(0.0, 1.0);
    total += s[i];
  }
  s.Scale(1.0 / total);

  linalg::Vector sup_v = m->MatVec(s);
  StatusOr<linalg::Vector> solved = m->Solve(sup_v);
  ASSERT_TRUE(solved.ok());
  for (size_t i = 0; i < n_cs; ++i) {
    StatusOr<double> direct = r->ReconstructSupport(sup_v[i], n_cs);
    ASSERT_TRUE(direct.ok());
    EXPECT_NEAR(*direct, (*solved)[i], 1e-10);
    EXPECT_NEAR(*direct, s[i], 1e-10);
  }
}

TEST(GammaSubsetReconstructorTest, RangeValidation) {
  StatusOr<GammaSubsetReconstructor> r = GammaSubsetReconstructor::Create(19.0, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->SubsetMatrix(0).ok());
  EXPECT_FALSE(r->SubsetMatrix(101).ok());
  EXPECT_FALSE(r->ReconstructSupport(0.5, 0).ok());
  EXPECT_FALSE(r->ReconstructSupport(0.5, 101).ok());
}

}  // namespace
}  // namespace core
}  // namespace frapp
