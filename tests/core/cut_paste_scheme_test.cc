#include "frapp/core/cut_paste_scheme.h"

#include <gtest/gtest.h>

#include <cmath>

#include "frapp/data/census.h"

namespace frapp {
namespace core {
namespace {

// Paper Section 7 C&P parameters for gamma = 19.
constexpr size_t kPaperK = 3;
constexpr double kPaperRho = 0.494;

CutPasteScheme CensusScheme() {
  StatusOr<CutPasteScheme> s = CutPasteScheme::Create(kPaperK, kPaperRho, 6, 23);
  return *std::move(s);
}

TEST(CutPasteSchemeTest, Validation) {
  EXPECT_FALSE(CutPasteScheme::Create(3, 0.0, 6, 23).ok());
  EXPECT_FALSE(CutPasteScheme::Create(3, 1.0, 6, 23).ok());
  EXPECT_FALSE(CutPasteScheme::Create(3, 0.5, 0, 23).ok());
  EXPECT_FALSE(CutPasteScheme::Create(3, 0.5, 24, 23).ok());
  EXPECT_FALSE(CutPasteScheme::Create(3, 0.5, 6, 65).ok());
}

TEST(CutPasteSchemeTest, CutSizeDistributionSumsToOne) {
  CutPasteScheme s = CensusScheme();
  double total = 0.0;
  for (size_t z = 0; z <= 6; ++z) total += s.CutSizeProbability(z);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // K = 3 < m = 6: uniform over 0..3.
  for (size_t z = 0; z <= 3; ++z) {
    EXPECT_NEAR(s.CutSizeProbability(z), 0.25, 1e-12);
  }
  EXPECT_DOUBLE_EQ(s.CutSizeProbability(4), 0.0);
}

TEST(CutPasteSchemeTest, CutSizeClampsWhenCutoffExceedsRecordSize) {
  // K = 5 > m = 3: draws 3, 4, 5 all clamp to z = 3.
  StatusOr<CutPasteScheme> s = CutPasteScheme::Create(5, 0.4, 3, 10);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->CutSizeProbability(0), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(s->CutSizeProbability(3), 3.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(s->CutSizeProbability(4), 0.0);
  double total = 0.0;
  for (size_t z = 0; z <= 3; ++z) total += s->CutSizeProbability(z);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(CutPasteSchemeTest, PartialSupportMatrixColumnsSumToOne) {
  CutPasteScheme s = CensusScheme();
  for (size_t k = 1; k <= 6; ++k) {
    StatusOr<linalg::Matrix> q = s.PartialSupportMatrix(k);
    ASSERT_TRUE(q.ok());
    EXPECT_TRUE(q->IsColumnStochastic(1e-9)) << "k=" << k;
  }
}

TEST(CutPasteSchemeTest, PartialSupportMatrixMatchesSimulation) {
  // Empirical transition frequencies of the operator must match Q.
  CutPasteScheme s = CensusScheme();
  const size_t k = 3;
  StatusOr<linalg::Matrix> q = s.PartialSupportMatrix(k);
  ASSERT_TRUE(q.ok());

  // Build one record with q0 itemset items among its 6 ones; itemset bits
  // are 0, 1, 2.
  const uint64_t itemset_mask = 0b111;
  for (size_t q0 = 0; q0 <= k; ++q0) {
    // Record: q0 bits from {0,1,2} plus (6 - q0) bits from {10, ...}.
    uint64_t record = 0;
    for (size_t b = 0; b < q0; ++b) record |= 1ull << b;
    for (size_t b = 0; b < 6 - q0; ++b) record |= 1ull << (10 + b);

    StatusOr<data::BooleanTable> t = data::BooleanTable::CreateEmpty(23);
    ASSERT_TRUE(t.ok());
    const size_t rows = 60000;
    for (size_t i = 0; i < rows; ++i) t->AppendRow(record);
    random::Pcg64 rng(29 + q0);
    StatusOr<data::BooleanTable> out = s.Perturb(*t, rng);
    ASSERT_TRUE(out.ok());

    std::vector<double> freq(k + 1, 0.0);
    for (size_t i = 0; i < rows; ++i) {
      freq[static_cast<size_t>(__builtin_popcountll(out->RowBits(i) & itemset_mask))] +=
          1.0 / rows;
    }
    for (size_t qp = 0; qp <= k; ++qp) {
      EXPECT_NEAR(freq[qp], (*q)(qp, q0), 0.01) << "q0=" << q0 << " q'=" << qp;
    }
  }
}

TEST(CutPasteSchemeTest, PerturbedRecordsStayInUniverse) {
  CutPasteScheme s = CensusScheme();
  StatusOr<data::BooleanTable> t = data::BooleanTable::CreateEmpty(23);
  ASSERT_TRUE(t.ok());
  random::Pcg64 data_rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t bits = 0;
    while (__builtin_popcountll(bits) < 6) {
      bits |= 1ull << data_rng.NextBounded(23);
    }
    t->AppendRow(bits);
  }
  random::Pcg64 rng(2);
  StatusOr<data::BooleanTable> out = s.Perturb(*t, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 1000u);
  for (size_t i = 0; i < out->num_rows(); ++i) {
    EXPECT_EQ(out->RowBits(i) & ~t->ValidMask(), 0ull);
  }
}

TEST(CutPasteSchemeTest, PaperParametersSatisfyGamma19) {
  // The paper reports K = 3, rho = 0.494 as privacy-feasible for gamma = 19
  // on both datasets.
  CutPasteScheme census = CensusScheme();
  EXPECT_LE(census.RecordAmplification(), 19.0);

  StatusOr<CutPasteScheme> health = CutPasteScheme::Create(kPaperK, kPaperRho, 7, 27);
  ASSERT_TRUE(health.ok());
  EXPECT_LE(health->RecordAmplification(), 19.0);
}

TEST(CutPasteSchemeTest, AmplificationClosedFormForFullOverlapRange) {
  // When the overlap q spans 0..m (possible whenever m <= l_v <= M_b - m),
  // the worst row ratio is h(m)/h(0) = [sum_z P_z rho^{-z}] / P_0, which for
  // the uniform cut-size distribution is sum_{z<=K} rho^{-z}.
  CutPasteScheme s = CensusScheme();
  double expected = 0.0;
  for (size_t z = 0; z <= kPaperK; ++z) {
    expected += std::pow(1.0 / kPaperRho, static_cast<double>(z));
  }
  EXPECT_NEAR(s.RecordAmplification(), expected, 1e-9);
  EXPECT_NEAR(expected, 15.4, 0.1);  // comfortably within gamma = 19
}

TEST(CutPasteSchemeTest, CalibrateRhoFindsFeasibleBoundary) {
  StatusOr<double> rho = CutPasteScheme::CalibrateRho(3, 6, 23, 19.0);
  ASSERT_TRUE(rho.ok());
  // Boundary condition: sum_{z=0}^{3} (1/rho)^z = 19 -> rho ~ 0.4514.
  EXPECT_NEAR(*rho, 0.4514, 0.001);
  StatusOr<CutPasteScheme> at = CutPasteScheme::Create(3, *rho, 6, 23);
  ASSERT_TRUE(at.ok());
  EXPECT_LE(at->RecordAmplification(), 19.0 * (1.0 + 1e-6));
  // Slightly smaller rho must be infeasible (it is the boundary).
  StatusOr<CutPasteScheme> below = CutPasteScheme::Create(3, *rho - 1e-3, 6, 23);
  ASSERT_TRUE(below.ok());
  EXPECT_GT(below->RecordAmplification(), 19.0);
  // The paper's 0.494 sits inside the feasible region found here.
  EXPECT_LT(*rho, kPaperRho);
}

TEST(CutPasteSchemeTest, ConditionNumberExplodesWithLength) {
  // Figure 4's C&P pathology: condition number grows rapidly with k and
  // dwarfs the gamma-diagonal's constant ~112 (CENSUS).
  CutPasteScheme s = CensusScheme();
  StatusOr<double> c2 = s.ConditionNumberForLength(2);
  StatusOr<double> c4 = s.ConditionNumberForLength(4);
  StatusOr<double> c6 = s.ConditionNumberForLength(6);
  ASSERT_TRUE(c2.ok() && c4.ok() && c6.ok());
  EXPECT_GT(*c4, *c2 * 10.0);
  EXPECT_GT(*c6, *c4 * 10.0);
  EXPECT_GT(*c6, 1e5);
}

TEST(CutPasteSchemeTest, EstimateExactOnNoiselessPartialSupports) {
  // Hand the estimator a perturbed table whose partial-support counts equal
  // Q times a known original distribution; it must recover x[k] exactly.
  StatusOr<CutPasteScheme> s = CutPasteScheme::Create(2, 0.5, 3, 8);
  ASSERT_TRUE(s.ok());
  const size_t k = 2;
  StatusOr<linalg::Matrix> q = s->PartialSupportMatrix(k);
  ASSERT_TRUE(q.ok());

  // Original counts per overlap level: 500 with q=0, 300 with q=1, 200 q=2.
  linalg::Vector x{500.0, 300.0, 200.0};
  linalg::Vector y = q->MatVec(x);
  // y is not integral; scale to a large integer table approximately — use a
  // synthetic "perturbed" table with counts round(y * 100).
  StatusOr<data::BooleanTable> t = data::BooleanTable::CreateEmpty(8);
  ASSERT_TRUE(t.ok());
  const uint64_t mask = 0b11;
  const uint64_t rows_with[3] = {0b100, 0b101, 0b011};  // 0, 1, 2 mask bits
  double total = 0.0;
  for (size_t level = 0; level <= k; ++level) {
    const size_t copies = static_cast<size_t>(std::llround(y[level] * 100.0));
    total += static_cast<double>(copies);
    for (size_t i = 0; i < copies; ++i) t->AppendRow(rows_with[level]);
  }
  StatusOr<double> est = s->EstimateItemsetSupport(*t, mask, k);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 200.0 * 100.0 / total, 1e-3);
}

TEST(CutPasteSchemeTest, EstimateValidation) {
  CutPasteScheme s = CensusScheme();
  StatusOr<data::BooleanTable> t = data::BooleanTable::CreateEmpty(23);
  ASSERT_TRUE(t.ok());
  t->AppendRow(0b111);
  EXPECT_FALSE(s.EstimateItemsetSupport(*t, 0b111, 2).ok());  // popcount != k
  EXPECT_FALSE(s.PartialSupportMatrix(0).ok());
  EXPECT_FALSE(s.PartialSupportMatrix(7).ok());  // longer than record items
}

TEST(CutPasteSchemeTest, ShardSeededConcatenatesToMonolithic) {
  const CutPasteScheme s = CensusScheme();
  StatusOr<data::CategoricalTable> table = data::census::MakeDataset(20000, 13);
  ASSERT_TRUE(table.ok());
  StatusOr<data::BooleanTable> onehot = data::BooleanTable::FromCategorical(*table);
  ASSERT_TRUE(onehot.ok());

  const data::BooleanTable whole = *s.PerturbSeeded(*onehot, 23, /*num_threads=*/2);
  size_t row = 0;
  for (const data::RowRange& range :
       data::ShardedTable::Plan(onehot->num_rows(), 3)) {
    StatusOr<data::BooleanTable> shard_input =
        data::BooleanTable::FromCategoricalRange(*table, range);
    ASSERT_TRUE(shard_input.ok());
    const data::BooleanTable shard =
        *s.PerturbShardSeeded(*shard_input, range.begin, 23);
    for (size_t i = 0; i < shard.num_rows(); ++i, ++row) {
      ASSERT_EQ(shard.RowBits(i), whole.RowBits(row)) << "row " << row;
    }
  }
  EXPECT_EQ(row, onehot->num_rows());
}

TEST(CutPasteSupportEstimatorTest, SingletonEstimateOnCensusData) {
  data::CategoricalSchema schema = data::census::Schema();
  StatusOr<data::CategoricalTable> table = data::census::MakeDataset(30000, 6);
  ASSERT_TRUE(table.ok());
  StatusOr<data::BooleanTable> onehot = data::BooleanTable::FromCategorical(*table);
  ASSERT_TRUE(onehot.ok());

  CutPasteScheme s = CensusScheme();
  random::Pcg64 rng(31);
  StatusOr<data::BooleanTable> perturbed = s.Perturb(*onehot, rng);
  ASSERT_TRUE(perturbed.ok());

  CutPasteSupportEstimator estimator(s, data::BooleanLayout(schema), *perturbed);
  // native-country = United-States, true support ~0.894.
  StatusOr<double> est =
      estimator.EstimateSupport(*mining::Itemset::Create({{5, 0}}));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 0.894, 0.1);
}

}  // namespace
}  // namespace core
}  // namespace frapp
