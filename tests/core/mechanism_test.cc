#include "frapp/core/mechanism.h"

#include <gtest/gtest.h>

#include <cmath>

#include "frapp/data/census.h"
#include "frapp/mining/support_counter.h"

namespace frapp {
namespace core {
namespace {

constexpr double kGamma = 19.0;

class MechanismFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<data::CategoricalTable> t = data::census::MakeDataset(30000, 41);
    ASSERT_TRUE(t.ok());
    table_.emplace(*std::move(t));
  }

  // Estimate minus truth for a given itemset under a prepared mechanism.
  double EstimateError(Mechanism& mechanism, const mining::Itemset& itemset) {
    StatusOr<double> est = mechanism.estimator().EstimateSupport(itemset);
    EXPECT_TRUE(est.ok()) << est.status().ToString();
    const double truth = mining::SupportFraction(*table_, itemset);
    return est.ok() ? *est - truth : 1e9;
  }

  std::optional<data::CategoricalTable> table_;
};

TEST_F(MechanismFixture, DetGdLongItemsetEstimateIsPrecise) {
  // Full-length itemsets are DET-GD's LOW-variance regime (the off-diagonal
  // mass (n_C/n_Cs) x shrinks as the subset grows): sigma ~ 0.02 here.
  StatusOr<std::unique_ptr<DetGdMechanism>> m =
      DetGdMechanism::Create(table_->schema(), kGamma);
  ASSERT_TRUE(m.ok());
  random::Pcg64 rng(1);
  ASSERT_TRUE((*m)->Prepare(*table_, rng).ok());

  // The modal record: age (15-35], fnlwgt (1e5-2e5], hours (20-40], White,
  // Male, United-States (true support ~6%).
  const mining::Itemset modal = *mining::Itemset::Create(
      {{0, 0}, {1, 1}, {2, 1}, {3, 0}, {4, 1}, {5, 0}});
  EXPECT_LT(std::fabs(EstimateError(**m, modal)), 0.08);
}

TEST_F(MechanismFixture, DetGdSingletonEstimateUnbiasedAcrossRuns) {
  // Singletons over 2-category attributes are the HIGH-variance regime
  // (sigma ~ 0.3 per run at this scale); the estimator must still be
  // unbiased, so the average over independent perturbations converges.
  StatusOr<std::unique_ptr<DetGdMechanism>> m =
      DetGdMechanism::Create(table_->schema(), kGamma);
  ASSERT_TRUE(m.ok());
  const mining::Itemset male = *mining::Itemset::Create({{4, 1}});
  double total_error = 0.0;
  const int runs = 12;
  for (int r = 0; r < runs; ++r) {
    random::Pcg64 rng(100 + r);
    ASSERT_TRUE((*m)->Prepare(*table_, rng).ok());
    const double err = EstimateError(**m, male);
    EXPECT_LT(std::fabs(err), 1.2);  // catches wiring bugs (~28 shift)
    total_error += err;
  }
  EXPECT_LT(std::fabs(total_error / runs), 0.35);  // ~3.5 sigma of the mean
}

TEST_F(MechanismFixture, RanGdEstimatesTrackDetGd) {
  const double x = 1.0 / (kGamma + 2000.0 - 1.0);
  StatusOr<std::unique_ptr<RanGdMechanism>> m =
      RanGdMechanism::Create(table_->schema(), kGamma, kGamma * x / 2.0);
  ASSERT_TRUE(m.ok());
  random::Pcg64 rng(2);
  ASSERT_TRUE((*m)->Prepare(*table_, rng).ok());
  const mining::Itemset modal = *mining::Itemset::Create(
      {{0, 0}, {1, 1}, {2, 1}, {3, 0}, {4, 1}, {5, 0}});
  EXPECT_LT(std::fabs(EstimateError(**m, modal)), 0.10);
}

TEST_F(MechanismFixture, MaskSingletonEstimateIsClose) {
  StatusOr<std::unique_ptr<MaskMechanism>> m =
      MaskMechanism::Create(table_->schema(), kGamma);
  ASSERT_TRUE(m.ok());
  random::Pcg64 rng(3);
  ASSERT_TRUE((*m)->Prepare(*table_, rng).ok());
  EXPECT_LT(std::fabs(EstimateError(**m, *mining::Itemset::Create({{4, 1}}))), 0.05);
}

TEST_F(MechanismFixture, CutPasteSingletonEstimateIsClose) {
  StatusOr<std::unique_ptr<CutPasteMechanism>> m =
      CutPasteMechanism::Create(table_->schema(), 3, 0.494);
  ASSERT_TRUE(m.ok());
  random::Pcg64 rng(4);
  ASSERT_TRUE((*m)->Prepare(*table_, rng).ok());
  EXPECT_LT(std::fabs(EstimateError(**m, *mining::Itemset::Create({{4, 1}}))), 0.08);
}

TEST_F(MechanismFixture, IndependentColumnSingletonEstimateIsClose) {
  StatusOr<std::unique_ptr<IndependentColumnMechanism>> m =
      IndependentColumnMechanism::Create(table_->schema(), kGamma);
  ASSERT_TRUE(m.ok());
  random::Pcg64 rng(5);
  ASSERT_TRUE((*m)->Prepare(*table_, rng).ok());
  EXPECT_LT(std::fabs(EstimateError(**m, *mining::Itemset::Create({{4, 1}}))), 0.05);
}

TEST(MechanismTest, ConditionNumberOrderingAtLength4) {
  // Figure 4's headline: DET-GD/RAN-GD constant and small; MASK and C&P
  // exponential. At length 4 on CENSUS the ordering must be strict.
  data::CategoricalSchema schema = data::census::Schema();
  StatusOr<std::unique_ptr<DetGdMechanism>> det =
      DetGdMechanism::Create(schema, kGamma);
  StatusOr<std::unique_ptr<MaskMechanism>> mask =
      MaskMechanism::Create(schema, kGamma);
  StatusOr<std::unique_ptr<CutPasteMechanism>> cp =
      CutPasteMechanism::Create(schema, 3, 0.494);
  ASSERT_TRUE(det.ok() && mask.ok() && cp.ok());

  StatusOr<double> det4 = (*det)->ConditionNumberForLength(4);
  StatusOr<double> mask4 = (*mask)->ConditionNumberForLength(4);
  StatusOr<double> cp4 = (*cp)->ConditionNumberForLength(4);
  ASSERT_TRUE(det4.ok() && mask4.ok() && cp4.ok());
  EXPECT_NEAR(*det4, (kGamma + 1999.0) / 18.0, 1e-9);
  EXPECT_GT(*mask4, *det4);
  EXPECT_GT(*cp4, *det4);

  // DET-GD is constant across lengths.
  StatusOr<double> det1 = (*det)->ConditionNumberForLength(1);
  StatusOr<double> det6 = (*det)->ConditionNumberForLength(6);
  ASSERT_TRUE(det1.ok() && det6.ok());
  EXPECT_DOUBLE_EQ(*det1, *det6);

  // MASK grows exponentially.
  StatusOr<double> mask2 = (*mask)->ConditionNumberForLength(2);
  StatusOr<double> mask6 = (*mask)->ConditionNumberForLength(6);
  ASSERT_TRUE(mask2.ok() && mask6.ok());
  EXPECT_GT(*mask6, 1e4 * *mask2 / 100.0);
}

TEST(MechanismTest, AmplificationsRespectGamma) {
  data::CategoricalSchema schema = data::census::Schema();
  StatusOr<std::unique_ptr<DetGdMechanism>> det =
      DetGdMechanism::Create(schema, kGamma);
  StatusOr<std::unique_ptr<MaskMechanism>> mask =
      MaskMechanism::Create(schema, kGamma);
  StatusOr<std::unique_ptr<CutPasteMechanism>> cp =
      CutPasteMechanism::Create(schema, 3, 0.494);
  StatusOr<std::unique_ptr<IndependentColumnMechanism>> ind =
      IndependentColumnMechanism::Create(schema, kGamma);
  ASSERT_TRUE(det.ok() && mask.ok() && cp.ok() && ind.ok());
  EXPECT_LE((*det)->Amplification(), kGamma + 1e-9);
  EXPECT_LE((*mask)->Amplification(), kGamma + 1e-9);
  EXPECT_LE((*cp)->Amplification(), kGamma + 1e-9);
  EXPECT_LE((*ind)->Amplification(), kGamma + 1e-9);
}

TEST(MechanismTest, RanGdAmplificationGrowsWithAlpha) {
  data::CategoricalSchema schema = data::census::Schema();
  const double x = 1.0 / (kGamma + 1999.0);
  StatusOr<std::unique_ptr<RanGdMechanism>> small =
      RanGdMechanism::Create(schema, kGamma, 0.1 * kGamma * x);
  StatusOr<std::unique_ptr<RanGdMechanism>> large =
      RanGdMechanism::Create(schema, kGamma, 0.9 * kGamma * x);
  ASSERT_TRUE(small.ok() && large.ok());
  // Worst-case realization amplification exceeds gamma (the price of the
  // randomization; what the miner can DETERMINE is weaker, per Section 4.1).
  EXPECT_GT((*small)->Amplification(), kGamma);
  EXPECT_GT((*large)->Amplification(), (*small)->Amplification());
}

TEST(MechanismTest, NamesAreStable) {
  data::CategoricalSchema schema = data::census::Schema();
  EXPECT_EQ((*DetGdMechanism::Create(schema, kGamma))->name(), "DET-GD");
  EXPECT_EQ((*MaskMechanism::Create(schema, kGamma))->name(), "MASK");
  EXPECT_EQ((*CutPasteMechanism::Create(schema, 3, 0.494))->name(), "C&P");
  EXPECT_EQ((*IndependentColumnMechanism::Create(schema, kGamma))->name(),
            "IND-GD");
}

}  // namespace
}  // namespace core
}  // namespace frapp
