// Distributional and determinism tests for the divergence-column
// perturbation kernel (GammaPerturbPlan + the alias-based perturbers)
// against the sequential per-column Bernoulli oracle
// PerturbRecordDiagonalForm and the closed-form gamma-diagonal matrix.

#include <gtest/gtest.h>

#include <vector>

#include "frapp/core/gamma_diagonal.h"
#include "frapp/core/randomized_gamma.h"
#include "frapp/data/domain_index.h"

namespace frapp {
namespace core {
namespace {

// Domain 2 x 3 x 2 = 12.
data::CategoricalSchema TinySchema() {
  return *data::CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}, {"c", {"0", "1"}}});
}

// Encodes a record of TinySchema into [0, 12) (attribute-major).
size_t Encode(const std::vector<uint8_t>& r) {
  return (static_cast<size_t>(r[0]) * 3 + r[1]) * 2 + r[2];
}

data::CategoricalTable RepeatedRecordTable(const data::CategoricalSchema& schema,
                                           const std::vector<uint8_t>& record,
                                           size_t n) {
  data::CategoricalTable table = *data::CategoricalTable::Create(schema);
  table.Reserve(n);
  for (size_t i = 0; i < n; ++i) EXPECT_TRUE(table.AppendRow(record).ok());
  return table;
}

std::vector<size_t> OutputHistogram(const data::CategoricalTable& table) {
  std::vector<size_t> counts(12, 0);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    ++counts[Encode(table.Row(i))];
  }
  return counts;
}

TEST(GammaPerturbPlanTest, DivergenceWeightsMatchSequentialChain) {
  const double gamma = 7.0;
  const GammaDiagonalMatrix matrix = *GammaDiagonalMatrix::Create(gamma, 12);
  const GammaPerturbPlan plan = *GammaPerturbPlan::Create({2, 3, 2}, 12);
  const std::vector<double> weights =
      plan.DivergenceWeights(matrix.DiagonalValue(), matrix.OffDiagonalValue());
  ASSERT_EQ(weights.size(), 4u);

  // Reference: walk the per-column chain explicitly. q_j = d + (n/n_j - 1) o.
  const double d = matrix.DiagonalValue();
  const double o = matrix.OffDiagonalValue();
  const double q0 = d + (6 - 1) * o;
  const double q1 = d + (2 - 1) * o;
  const double q2 = d;
  EXPECT_NEAR(weights[0], 1.0 - q0, 1e-12);
  EXPECT_NEAR(weights[1], q0 - q1, 1e-12);
  EXPECT_NEAR(weights[2], q1 - q2, 1e-12);
  EXPECT_NEAR(weights[3], d, 1e-12);

  double sum = 0.0;
  for (double w : weights) {
    EXPECT_GE(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(GammaPerturbPlanTest, CardinalityOneColumnNeverDiverges) {
  const GammaPerturbPlan plan = *GammaPerturbPlan::Create({1, 4, 1, 3}, 12);
  const GammaDiagonalMatrix matrix = *GammaDiagonalMatrix::Create(5.0, 12);
  const std::vector<double> weights =
      plan.DivergenceWeights(matrix.DiagonalValue(), matrix.OffDiagonalValue());
  EXPECT_DOUBLE_EQ(weights[0], 0.0);
  EXPECT_DOUBLE_EQ(weights[2], 0.0);

  random::Pcg64 rng(3);
  for (int i = 0; i < 2000; ++i) {
    const size_t j = plan.SampleDivergenceColumn(matrix.DiagonalValue(),
                                                 matrix.OffDiagonalValue(), rng);
    EXPECT_NE(j, 0u);
    EXPECT_NE(j, 2u);
  }
}

// Pearson chi-squared statistic of observed counts against expected
// probabilities (expected scaled to the observed total).
double ChiSquaredGof(const std::vector<size_t>& observed,
                     const std::vector<double>& probabilities) {
  double n = 0.0;
  for (size_t c : observed) n += static_cast<double>(c);
  double stat = 0.0;
  for (size_t v = 0; v < observed.size(); ++v) {
    const double expected = n * probabilities[v];
    const double diff = static_cast<double>(observed[v]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

// Two-sample chi-squared homogeneity statistic for equal-intent samples.
double ChiSquaredTwoSample(const std::vector<size_t>& a,
                           const std::vector<size_t>& b) {
  double stat = 0.0;
  for (size_t v = 0; v < a.size(); ++v) {
    const double total = static_cast<double>(a[v] + b[v]);
    if (total == 0.0) continue;
    const double diff = static_cast<double>(a[v]) - static_cast<double>(b[v]);
    stat += diff * diff / total;
  }
  return stat;
}

// 0.999 chi-squared quantile at 11 dof is 31.26; use a little headroom so a
// correct implementation fails ~1 run in 1e4 at worst.
constexpr double kChi11Critical = 35.0;

TEST(AliasPerturberDistributionTest, MatchesClosedFormGammaDiagonalColumn) {
  const data::CategoricalSchema schema = TinySchema();
  const double gamma = 7.0;
  const GammaDiagonalPerturber perturber =
      *GammaDiagonalPerturber::Create(schema, gamma);
  const std::vector<uint8_t> record = {1, 2, 0};
  const size_t n = 60000;
  const data::CategoricalTable table = RepeatedRecordTable(schema, record, n);

  random::Pcg64 rng(17);
  const data::CategoricalTable perturbed = *perturber.Perturb(table, rng);
  const std::vector<size_t> observed = OutputHistogram(perturbed);

  // Column `record` of the gamma-diagonal matrix: d on the record, o
  // everywhere else.
  std::vector<double> probabilities(12, perturber.matrix().OffDiagonalValue());
  probabilities[Encode(record)] = perturber.matrix().DiagonalValue();
  EXPECT_LT(ChiSquaredGof(observed, probabilities), kChi11Critical);
}

TEST(AliasPerturberDistributionTest, MatchesSequentialBernoulliOracle) {
  const data::CategoricalSchema schema = TinySchema();
  const double gamma = 4.0;
  const GammaDiagonalPerturber perturber =
      *GammaDiagonalPerturber::Create(schema, gamma);
  const std::vector<uint8_t> record = {0, 1, 1};
  const size_t n = 60000;
  const data::CategoricalTable table = RepeatedRecordTable(schema, record, n);

  random::Pcg64 rng_alias(23);
  const std::vector<size_t> alias_counts =
      OutputHistogram(*perturber.Perturb(table, rng_alias));

  // Same number of draws through the sequential per-column oracle.
  const std::vector<size_t> cardinalities = {2, 3, 2};
  const double d = perturber.matrix().DiagonalValue();
  const double o = perturber.matrix().OffDiagonalValue();
  random::Pcg64 rng_oracle(29);
  std::vector<size_t> oracle_counts(12, 0);
  std::vector<uint8_t> out;
  for (size_t i = 0; i < n; ++i) {
    PerturbRecordDiagonalForm(record, cardinalities, 12, d, o, rng_oracle, &out);
    ++oracle_counts[Encode(out)];
  }
  EXPECT_LT(ChiSquaredTwoSample(alias_counts, oracle_counts), kChi11Critical);
}

TEST(AliasPerturberDistributionTest, RandomizedPerturberMatchesExpectedMatrix) {
  // Marginally over the per-client realizations, RAN-GD's output column is
  // the EXPECTED matrix's column = the deterministic gamma-diagonal column.
  const data::CategoricalSchema schema = TinySchema();
  const double gamma = 7.0;
  const double x = 1.0 / (gamma + 12 - 1);
  const RandomizedGammaPerturber perturber =
      *RandomizedGammaPerturber::Create(schema, gamma, gamma * x / 2.0);
  const std::vector<uint8_t> record = {1, 0, 1};
  const size_t n = 60000;
  const data::CategoricalTable table = RepeatedRecordTable(schema, record, n);

  random::Pcg64 rng(31);
  const std::vector<size_t> observed =
      OutputHistogram(*perturber.Perturb(table, rng));
  std::vector<double> probabilities(
      12, perturber.expected_matrix().OffDiagonalValue());
  probabilities[Encode(record)] = perturber.expected_matrix().DiagonalValue();
  EXPECT_LT(ChiSquaredGof(observed, probabilities), kChi11Critical);
}

TEST(SeededPerturbDeterminismTest, IdenticalAcrossThreadCounts) {
  const data::CategoricalSchema schema = TinySchema();
  const GammaDiagonalPerturber perturber =
      *GammaDiagonalPerturber::Create(schema, 19.0);
  // > 2 chunks of 8192 so several per-chunk streams are actually exercised.
  random::Pcg64 data_rng(37);
  data::CategoricalTable table = *data::CategoricalTable::Create(schema);
  std::vector<uint8_t> row(3);
  for (size_t i = 0; i < 20000; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      row[j] = static_cast<uint8_t>(data_rng.NextBounded(schema.Cardinality(j)));
    }
    ASSERT_TRUE(table.AppendRow(row).ok());
  }

  const data::CategoricalTable reference = *perturber.PerturbSeeded(table, 42, 1);
  for (size_t threads : {2u, 3u, 8u, 0u}) {
    const data::CategoricalTable parallel =
        *perturber.PerturbSeeded(table, 42, threads);
    ASSERT_EQ(parallel.num_rows(), reference.num_rows());
    for (size_t j = 0; j < 3; ++j) {
      ASSERT_EQ(parallel.Column(j), reference.Column(j)) << "threads=" << threads;
    }
  }
  // A different seed must give a different table.
  const data::CategoricalTable other = *perturber.PerturbSeeded(table, 43, 2);
  bool any_difference = false;
  for (size_t j = 0; j < 3 && !any_difference; ++j) {
    any_difference = other.Column(j) != reference.Column(j);
  }
  EXPECT_TRUE(any_difference);
}

TEST(SeededPerturbDeterminismTest, RandomizedPerturberIdenticalAcrossThreadCounts) {
  const data::CategoricalSchema schema = TinySchema();
  const double gamma = 19.0;
  const double x = 1.0 / (gamma + 12 - 1);
  const RandomizedGammaPerturber perturber =
      *RandomizedGammaPerturber::Create(schema, gamma, gamma * x / 2.0);
  random::Pcg64 data_rng(41);
  data::CategoricalTable table = *data::CategoricalTable::Create(schema);
  std::vector<uint8_t> row(3);
  for (size_t i = 0; i < 10000; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      row[j] = static_cast<uint8_t>(data_rng.NextBounded(schema.Cardinality(j)));
    }
    ASSERT_TRUE(table.AppendRow(row).ok());
  }
  const data::CategoricalTable reference = *perturber.PerturbSeeded(table, 7, 1);
  for (size_t threads : {2u, 4u}) {
    const data::CategoricalTable parallel =
        *perturber.PerturbSeeded(table, 7, threads);
    for (size_t j = 0; j < 3; ++j) {
      ASSERT_EQ(parallel.Column(j), reference.Column(j)) << "threads=" << threads;
    }
  }
}

TEST(SeededPerturbDeterminismTest, SeededPathMatchesClosedFormDistribution) {
  const data::CategoricalSchema schema = TinySchema();
  const double gamma = 7.0;
  const GammaDiagonalPerturber perturber =
      *GammaDiagonalPerturber::Create(schema, gamma);
  const std::vector<uint8_t> record = {0, 2, 1};
  const data::CategoricalTable table = RepeatedRecordTable(schema, record, 60000);
  const std::vector<size_t> observed =
      OutputHistogram(*perturber.PerturbSeeded(table, 1234, 3));
  std::vector<double> probabilities(12, perturber.matrix().OffDiagonalValue());
  probabilities[Encode(record)] = perturber.matrix().DiagonalValue();
  EXPECT_LT(ChiSquaredGof(observed, probabilities), kChi11Critical);
}

}  // namespace
}  // namespace core
}  // namespace frapp
