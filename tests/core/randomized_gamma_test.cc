#include "frapp/core/randomized_gamma.h"

#include <gtest/gtest.h>

namespace frapp {
namespace core {
namespace {

data::CategoricalSchema TinySchema() {
  StatusOr<data::CategoricalSchema> s = data::CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}});
  return *std::move(s);  // domain size 6
}

// For gamma = 19 the tiny 6-value domain cannot absorb alpha up to gamma*x
// (off-diagonals would go negative: gamma > n - 1), so the statistical tests
// use a domain with n = 24 > gamma + 1.
data::CategoricalSchema MediumSchema() {
  StatusOr<data::CategoricalSchema> s = data::CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}, {"c", {"0", "1", "2", "3"}}});
  return *std::move(s);  // domain size 24
}

TEST(RandomizedGammaTest, CreateValidatesAlpha) {
  data::CategoricalSchema schema = TinySchema();
  const double gamma = 3.0;
  const double x = 1.0 / (gamma + 5.0);
  EXPECT_TRUE(RandomizedGammaPerturber::Create(schema, gamma, 0.0).ok());
  EXPECT_TRUE(RandomizedGammaPerturber::Create(schema, gamma, gamma * x).ok());
  EXPECT_FALSE(RandomizedGammaPerturber::Create(schema, gamma, gamma * x * 1.1).ok());
  EXPECT_FALSE(RandomizedGammaPerturber::Create(schema, gamma, -0.01).ok());
}

TEST(RandomizedGammaTest, ZeroAlphaMatchesDeterministicDistribution) {
  data::CategoricalSchema schema = MediumSchema();
  StatusOr<RandomizedGammaPerturber> p =
      RandomizedGammaPerturber::Create(schema, 19.0, 0.0);
  ASSERT_TRUE(p.ok());

  StatusOr<data::CategoricalTable> t = data::CategoricalTable::Create(schema);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 200000; ++i) ASSERT_TRUE(t->AppendRow({1, 2, 3}).ok());
  random::Pcg64 rng(11);
  StatusOr<data::CategoricalTable> out = p->Perturb(*t, rng);
  ASSERT_TRUE(out.ok());

  const data::DomainIndexer indexer = data::DomainIndexer::OverAllAttributes(schema);
  linalg::Vector hist = out->JointHistogram(indexer);
  hist.Scale(1.0 / static_cast<double>(out->num_rows()));
  const GammaDiagonalMatrix& a = p->expected_matrix();
  const uint64_t u = indexer.Encode({1, 2, 3});
  for (uint64_t v = 0; v < indexer.domain_size(); ++v) {
    const double expected = (v == u) ? a.DiagonalValue() : a.OffDiagonalValue();
    EXPECT_NEAR(hist[static_cast<size_t>(v)], expected, 0.005);
  }
}

class RandomizedGammaKindTest
    : public ::testing::TestWithParam<random::RandomizationKind> {};

TEST_P(RandomizedGammaKindTest, AverageDistributionMatchesExpectedMatrix) {
  // The realized matrices vary per record, but marginally over clients the
  // channel is the EXPECTED matrix (paper Eq. 21): perturbing many copies of
  // record u must reproduce column u of the deterministic gamma-diagonal.
  data::CategoricalSchema schema = MediumSchema();
  const double gamma = 19.0;
  StatusOr<RandomizedGammaPerturber> tmp =
      RandomizedGammaPerturber::Create(schema, gamma, 0.0);
  ASSERT_TRUE(tmp.ok());
  const double alpha = tmp->expected_matrix().DiagonalValue() / 2.0;

  StatusOr<RandomizedGammaPerturber> p =
      RandomizedGammaPerturber::Create(schema, gamma, alpha, GetParam());
  ASSERT_TRUE(p.ok());

  StatusOr<data::CategoricalTable> t = data::CategoricalTable::Create(schema);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 300000; ++i) ASSERT_TRUE(t->AppendRow({0, 1, 2}).ok());
  random::Pcg64 rng(13);
  StatusOr<data::CategoricalTable> out = p->Perturb(*t, rng);
  ASSERT_TRUE(out.ok());

  const data::DomainIndexer indexer = data::DomainIndexer::OverAllAttributes(schema);
  linalg::Vector hist = out->JointHistogram(indexer);
  hist.Scale(1.0 / static_cast<double>(out->num_rows()));
  const GammaDiagonalMatrix& a = p->expected_matrix();
  const uint64_t u = indexer.Encode({0, 1, 2});
  for (uint64_t v = 0; v < indexer.domain_size(); ++v) {
    const double expected = (v == u) ? a.DiagonalValue() : a.OffDiagonalValue();
    EXPECT_NEAR(hist[static_cast<size_t>(v)], expected, 0.005)
        << "kind=" << random::RandomizationKindName(GetParam()) << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, RandomizedGammaKindTest,
    ::testing::Values(random::RandomizationKind::kUniform,
                      random::RandomizationKind::kTwoPoint,
                      random::RandomizationKind::kTruncatedGaussian));

TEST(RandomizedGammaTest, PosteriorWindowMatchesPrivacyModule) {
  data::CategoricalSchema schema = MediumSchema();
  const double gamma = 19.0;
  StatusOr<RandomizedGammaPerturber> p0 =
      RandomizedGammaPerturber::Create(schema, gamma, 0.0);
  ASSERT_TRUE(p0.ok());
  const double alpha = p0->expected_matrix().DiagonalValue() / 2.0;
  StatusOr<RandomizedGammaPerturber> p =
      RandomizedGammaPerturber::Create(schema, gamma, alpha);
  ASSERT_TRUE(p.ok());

  StatusOr<PosteriorRange> window = p->PosteriorWindow(0.05);
  ASSERT_TRUE(window.ok());
  StatusOr<PosteriorRange> direct =
      RandomizedPosteriorRange(0.05, gamma, schema.DomainSize(), alpha);
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(window->lower, direct->lower);
  EXPECT_DOUBLE_EQ(window->upper, direct->upper);
}

TEST(RandomizedGammaTest, SchemaMismatchRejected) {
  data::CategoricalSchema schema = TinySchema();
  StatusOr<RandomizedGammaPerturber> p =
      RandomizedGammaPerturber::Create(schema, 19.0, 0.0);
  ASSERT_TRUE(p.ok());
  StatusOr<data::CategoricalSchema> other =
      data::CategoricalSchema::Create({{"z", {"0", "1"}}});
  StatusOr<data::CategoricalTable> t = data::CategoricalTable::Create(*other);
  ASSERT_TRUE(t.ok());
  random::Pcg64 rng(1);
  EXPECT_FALSE(p->Perturb(*t, rng).ok());
}

}  // namespace
}  // namespace core
}  // namespace frapp
