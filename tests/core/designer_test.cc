#include "frapp/core/designer.h"

#include <gtest/gtest.h>

#include "frapp/data/census.h"

namespace frapp {
namespace core {
namespace {

TEST(DesignerTest, DeterministicDesignForPaperRequirement) {
  const data::CategoricalSchema schema = data::census::Schema();
  DesignOptions options;  // defaults: (5%, 50%), no randomization
  StatusOr<FrappDesign> design = DesignMechanism(schema, options);
  ASSERT_TRUE(design.ok());
  EXPECT_NEAR(design->gamma, 19.0, 1e-12);
  EXPECT_NEAR(design->x, 1.0 / 2018.0, 1e-15);
  EXPECT_DOUBLE_EQ(design->alpha, 0.0);
  EXPECT_NEAR(design->condition_number, 2018.0 / 18.0, 1e-9);
  EXPECT_EQ(design->mechanism->name(), "DET-GD");
  // Deterministic: the posterior window collapses onto rho2.
  EXPECT_NEAR(design->posterior.center, 0.50, 1e-9);
  EXPECT_DOUBLE_EQ(design->posterior.lower, design->posterior.upper);
}

TEST(DesignerTest, RandomizedDesignSelectsRanGd) {
  const data::CategoricalSchema schema = data::census::Schema();
  DesignOptions options;
  options.randomization_fraction = 0.5;
  StatusOr<FrappDesign> design = DesignMechanism(schema, options);
  ASSERT_TRUE(design.ok());
  EXPECT_EQ(design->mechanism->name(), "RAN-GD");
  EXPECT_NEAR(design->alpha, 0.5 * 19.0 / 2018.0, 1e-12);
  // The paper's example window at alpha = gamma x / 2: ~[33%, 60%].
  EXPECT_NEAR(design->posterior.lower, 0.33, 0.01);
  EXPECT_NEAR(design->posterior.upper, 0.60, 0.01);
}

TEST(DesignerTest, StricterRequirementsLowerGammaAndRaiseCondition) {
  const data::CategoricalSchema schema = data::census::Schema();
  DesignOptions loose;
  DesignOptions strict;
  strict.requirement = {0.05, 0.30};
  StatusOr<FrappDesign> d_loose = DesignMechanism(schema, loose);
  StatusOr<FrappDesign> d_strict = DesignMechanism(schema, strict);
  ASSERT_TRUE(d_loose.ok() && d_strict.ok());
  EXPECT_LT(d_strict->gamma, d_loose->gamma);
  // The privacy/accuracy tradeoff: stricter privacy -> worse conditioning.
  EXPECT_GT(d_strict->condition_number, d_loose->condition_number);
}

TEST(DesignerTest, DesignedMechanismIsUsable) {
  const data::CategoricalSchema schema = data::census::Schema();
  StatusOr<data::CategoricalTable> table = data::census::MakeDataset(2000, 3);
  ASSERT_TRUE(table.ok());
  DesignOptions options;
  options.randomization_fraction = 0.25;
  StatusOr<FrappDesign> design = DesignMechanism(schema, options);
  ASSERT_TRUE(design.ok());
  random::Pcg64 rng(4);
  ASSERT_TRUE(design->mechanism->Prepare(*table, rng).ok());
  StatusOr<double> est = design->mechanism->estimator().EstimateSupport(
      *mining::Itemset::Create({{4, 1}}));
  EXPECT_TRUE(est.ok());
}

TEST(DesignerTest, SummaryMentionsKeyNumbers) {
  const data::CategoricalSchema schema = data::census::Schema();
  StatusOr<FrappDesign> design = DesignMechanism(schema, DesignOptions{});
  ASSERT_TRUE(design.ok());
  const std::string summary = design->Summary();
  EXPECT_NE(summary.find("gamma"), std::string::npos);
  EXPECT_NE(summary.find("19"), std::string::npos);
  EXPECT_NE(summary.find("DET-GD"), std::string::npos);
}

TEST(DesignerTest, Validation) {
  const data::CategoricalSchema schema = data::census::Schema();
  DesignOptions bad_fraction;
  bad_fraction.randomization_fraction = 1.5;
  EXPECT_FALSE(DesignMechanism(schema, bad_fraction).ok());
  DesignOptions bad_requirement;
  bad_requirement.requirement = {0.5, 0.2};
  EXPECT_FALSE(DesignMechanism(schema, bad_requirement).ok());
}

}  // namespace
}  // namespace core
}  // namespace frapp
