#include "frapp/core/reconstructor.h"

#include <gtest/gtest.h>

#include "frapp/random/rng.h"

namespace frapp {
namespace core {
namespace {

TEST(ReconstructorTest, ClosedFormMatchesDenseLu) {
  const uint64_t n = 20;
  StatusOr<GammaDiagonalMatrix> a = GammaDiagonalMatrix::Create(19.0, n);
  ASSERT_TRUE(a.ok());
  random::Pcg64 rng(3);
  linalg::Vector y(n);
  for (size_t i = 0; i < n; ++i) y[i] = rng.NextDouble(0.0, 500.0);

  StatusOr<linalg::Vector> closed = ReconstructDistributionGamma(*a, y);
  ASSERT_TRUE(closed.ok());
  StatusOr<linalg::Vector> dense = ReconstructDistribution(a->ToDense(), y);
  ASSERT_TRUE(dense.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*closed)[i], (*dense)[i], 1e-8);
}

TEST(ReconstructorTest, PerfectRecoveryOnExpectedHistogram) {
  // Y = A X exactly -> X_hat = X exactly (no sampling noise).
  const uint64_t n = 10;
  StatusOr<GammaDiagonalMatrix> a = GammaDiagonalMatrix::Create(5.0, n);
  ASSERT_TRUE(a.ok());
  random::Pcg64 rng(4);
  linalg::Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = rng.NextDouble(0.0, 100.0);
  linalg::Vector y = a->ToUniformMixture().MatVec(x);
  StatusOr<linalg::Vector> x_hat = ReconstructDistributionGamma(*a, y);
  ASSERT_TRUE(x_hat.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*x_hat)[i], x[i], 1e-9);
}

TEST(ReconstructorTest, DimensionMismatchRejected) {
  StatusOr<GammaDiagonalMatrix> a = GammaDiagonalMatrix::Create(5.0, 10);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(ReconstructDistributionGamma(*a, linalg::Vector(9)).ok());
}

TEST(ReconstructorTest, EndToEndUnbiasedOnPerturbedData) {
  // Perturb a skewed database and reconstruct its full joint histogram
  // (paper Eq. 8). The estimate must be close to the original counts.
  StatusOr<data::CategoricalSchema> schema = data::CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}});
  ASSERT_TRUE(schema.ok());
  StatusOr<data::CategoricalTable> original =
      data::CategoricalTable::Create(*schema);
  ASSERT_TRUE(original.ok());
  random::Pcg64 data_rng(5);
  const size_t n_records = 100000;
  for (size_t i = 0; i < n_records; ++i) {
    const uint8_t a = data_rng.NextBernoulli(0.7) ? 0 : 1;
    const uint8_t b =
        data_rng.NextBernoulli(0.5) ? 0 : (data_rng.NextBernoulli(0.6) ? 1 : 2);
    ASSERT_TRUE(original->AppendRow({a, b}).ok());
  }

  const double gamma = 19.0;
  StatusOr<GammaDiagonalPerturber> perturber =
      GammaDiagonalPerturber::Create(*schema, gamma);
  ASSERT_TRUE(perturber.ok());
  random::Pcg64 rng(6);
  StatusOr<data::CategoricalTable> perturbed = perturber->Perturb(*original, rng);
  ASSERT_TRUE(perturbed.ok());

  StatusOr<linalg::Vector> x_hat =
      ReconstructFullDistribution(*perturbed, perturber->matrix());
  ASSERT_TRUE(x_hat.ok());

  const data::DomainIndexer indexer =
      data::DomainIndexer::OverAllAttributes(*schema);
  linalg::Vector x = original->JointHistogram(indexer);
  // Tolerance ~ cond * sqrt(N): generous 3% of N absolute.
  for (size_t v = 0; v < x.size(); ++v) {
    EXPECT_NEAR((*x_hat)[v] / n_records, x[v] / n_records, 0.03) << "v=" << v;
  }
  // Total mass is preserved exactly (column-stochasticity).
  EXPECT_NEAR(x_hat->Sum(), static_cast<double>(n_records), 1e-6 * n_records);
}

TEST(ReconstructorTest, SingularDenseMatrixRejected) {
  linalg::Matrix singular(3, 3, 1.0 / 3.0);
  EXPECT_FALSE(ReconstructDistribution(singular, linalg::Vector(3, 1.0)).ok());
}

}  // namespace
}  // namespace core
}  // namespace frapp
