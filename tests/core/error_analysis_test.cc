#include "frapp/core/error_analysis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "frapp/data/domain_index.h"
#include "frapp/data/schema.h"
#include "frapp/data/table.h"
#include "frapp/mining/support_counter.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {
namespace {

TEST(PoissonBinomialVarianceTest, MatchesBernoulliAndBinomial) {
  EXPECT_DOUBLE_EQ(PoissonBinomialVariance({0.5}), 0.25);
  // Identical trials reduce to binomial variance n p (1-p).
  EXPECT_DOUBLE_EQ(PoissonBinomialVariance(std::vector<double>(10, 0.3)),
                   10 * 0.3 * 0.7);
  EXPECT_DOUBLE_EQ(PoissonBinomialVariance({0.0, 1.0}), 0.0);
}

TEST(PoissonBinomialVarianceTest, VariabilityOfProbabilitiesReducesVariance) {
  // The paper's Section 4.2 argument: for a fixed mean success probability,
  // spreading the p_i reduces the Poisson-binomial variance.
  const double uniform = PoissonBinomialVariance(std::vector<double>(10, 0.5));
  std::vector<double> spread;
  for (int i = 0; i < 5; ++i) {
    spread.push_back(0.3);
    spread.push_back(0.7);
  }
  EXPECT_LT(PoissonBinomialVariance(spread), uniform);
}

TEST(GammaPerturbedCountVarianceTest, MatchesDirectSum) {
  auto matrix = *GammaDiagonalMatrix::Create(19.0, 24);
  const double n = 100.0, x_v = 30.0;
  std::vector<double> probabilities;
  for (int i = 0; i < 30; ++i) probabilities.push_back(matrix.DiagonalValue());
  for (int i = 0; i < 70; ++i) probabilities.push_back(matrix.OffDiagonalValue());
  EXPECT_NEAR(GammaPerturbedCountVariance(matrix, x_v, n),
              PoissonBinomialVariance(probabilities), 1e-12);
}

TEST(ReconstructedSupportStddevTest, ValidatesInputs) {
  auto rec = *GammaSubsetReconstructor::Create(19.0, 2000);
  EXPECT_FALSE(ReconstructedSupportStddev(rec, -0.1, 10, 100).ok());
  EXPECT_FALSE(ReconstructedSupportStddev(rec, 1.1, 10, 100).ok());
  EXPECT_FALSE(ReconstructedSupportStddev(rec, 0.5, 10, 0).ok());
  EXPECT_FALSE(ReconstructedSupportStddev(rec, 0.5, 0, 100).ok());
}

TEST(ReconstructedSupportStddevTest, ShrinksWithSampleSizeAndLength) {
  auto rec = *GammaSubsetReconstructor::Create(19.0, 2000);
  const double s_small_n = *ReconstructedSupportStddev(rec, 0.02, 20, 10000);
  const double s_large_n = *ReconstructedSupportStddev(rec, 0.02, 20, 40000);
  EXPECT_NEAR(s_small_n / s_large_n, 2.0, 1e-9);  // 1/sqrt(N) scaling

  // Larger subsets (longer itemsets) have less off-diagonal mass -> less
  // noise: the DET-GD error DROPS with itemset length, as in Figure 1(a).
  const double s_len2 = *ReconstructedSupportStddev(rec, 0.02, 20, 50000);
  const double s_len6 = *ReconstructedSupportStddev(rec, 0.02, 2000, 50000);
  EXPECT_GT(s_len2, 3.0 * s_len6);
}

TEST(ReconstructedSupportStddevTest, PredictsEmpiricalSpread) {
  // Monte-Carlo check of the closed form: perturb a fixed dataset many
  // times, reconstruct one itemset's support, compare the spread.
  auto schema = *data::CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}, {"c", {"0", "1", "2", "3"}}});
  auto table = *data::CategoricalTable::Create(schema);
  random::Pcg64 data_rng(5);
  const size_t n = 20000;
  for (size_t i = 0; i < n; ++i) {
    (void)table.AppendRow({static_cast<uint8_t>(data_rng.NextBernoulli(0.7) ? 0 : 1),
                           static_cast<uint8_t>(data_rng.NextBounded(3)),
                           static_cast<uint8_t>(data_rng.NextBounded(4))});
  }
  const mining::Itemset target = *mining::Itemset::Create({{0, 0}, {1, 1}});
  const double true_support = mining::SupportFraction(table, target);

  const double gamma = 19.0;
  auto perturber = *GammaDiagonalPerturber::Create(schema, gamma);
  auto rec = *GammaSubsetReconstructor::Create(gamma, schema.DomainSize());

  std::vector<double> estimates;
  random::Pcg64 rng(77);
  for (int run = 0; run < 60; ++run) {
    auto perturbed = *perturber.Perturb(table, rng);
    const double sup_v = mining::SupportFraction(perturbed, target);
    estimates.push_back(*rec.ReconstructSupport(sup_v, 6));
  }
  double mean = 0.0;
  for (double e : estimates) mean += e;
  mean /= estimates.size();
  double var = 0.0;
  for (double e : estimates) var += (e - mean) * (e - mean);
  var /= (estimates.size() - 1);

  const double predicted = *ReconstructedSupportStddev(rec, true_support, 6, n);
  // Unbiased and with the predicted spread (loose bands: 60 samples).
  EXPECT_NEAR(mean, true_support, 4.0 * predicted / std::sqrt(60.0));
  EXPECT_GT(std::sqrt(var), 0.6 * predicted);
  EXPECT_LT(std::sqrt(var), 1.5 * predicted);
}

TEST(PredictedRelativeReconstructionErrorTest, BoundsEmpiricalError) {
  auto schema = *data::CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}});
  auto table = *data::CategoricalTable::Create(schema);
  random::Pcg64 data_rng(6);
  const size_t n = 50000;
  for (size_t i = 0; i < n; ++i) {
    (void)table.AppendRow({static_cast<uint8_t>(data_rng.NextBernoulli(0.6) ? 0 : 1),
                           static_cast<uint8_t>(data_rng.NextBounded(3))});
  }
  auto matrix = *GammaDiagonalMatrix::Create(19.0, schema.DomainSize());
  const data::DomainIndexer indexer = data::DomainIndexer::OverAllAttributes(schema);
  const linalg::Vector x = table.JointHistogram(indexer);

  const double predicted = *PredictedRelativeReconstructionError(matrix, x);
  EXPECT_GT(predicted, 0.0);

  // Empirical relative error over a few runs stays within a small multiple
  // of the prediction (the prediction is an RMS-based Theorem-1 bound).
  auto perturber = *GammaDiagonalPerturber::Create(schema, 19.0);
  random::Pcg64 rng(9);
  for (int run = 0; run < 5; ++run) {
    auto perturbed = *perturber.Perturb(table, rng);
    const linalg::Vector y = perturbed.JointHistogram(indexer);
    const linalg::Vector x_hat = *matrix.ToUniformMixture().Solve(y);
    const double relative = (x_hat - x).Norm2() / x.Norm2();
    EXPECT_LT(relative, 3.0 * predicted) << "run " << run;
  }
}

TEST(PredictedRelativeReconstructionErrorTest, Validation) {
  auto matrix = *GammaDiagonalMatrix::Create(19.0, 6);
  EXPECT_FALSE(PredictedRelativeReconstructionError(matrix, linalg::Vector(5)).ok());
  EXPECT_FALSE(
      PredictedRelativeReconstructionError(matrix, linalg::Vector(6, 0.0)).ok());
}

TEST(RequiredRecordsForSeparationTest, InvertsTheStddev) {
  auto rec = *GammaSubsetReconstructor::Create(19.0, 2000);
  const double required =
      *RequiredRecordsForSeparation(rec, 0.04, 0.02, 20, 2.0);
  // At the required N, the 2-sigma band just touches the threshold.
  const double sigma = *ReconstructedSupportStddev(
      rec, 0.04, 20, static_cast<size_t>(required) + 1);
  EXPECT_NEAR(2.0 * sigma, 0.02, 0.0005);
}

TEST(RequiredRecordsForSeparationTest, HarderSeparationsNeedMoreData) {
  auto rec = *GammaSubsetReconstructor::Create(19.0, 2000);
  const double easy = *RequiredRecordsForSeparation(rec, 0.10, 0.02, 20, 2.0);
  const double hard = *RequiredRecordsForSeparation(rec, 0.025, 0.02, 20, 2.0);
  EXPECT_GT(hard, 10.0 * easy);
  EXPECT_FALSE(RequiredRecordsForSeparation(rec, 0.02, 0.02, 20, 2.0).ok());
  EXPECT_FALSE(RequiredRecordsForSeparation(rec, 0.04, 0.02, 20, 0.0).ok());
}

}  // namespace
}  // namespace core
}  // namespace frapp
