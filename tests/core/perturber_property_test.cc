// Property tests of the dependent-column perturbation algorithm across
// schema shapes: for EVERY shape, perturbing a fixed record many times must
// reproduce [d on the record, o elsewhere] over the joint domain, including
// degenerate shapes (single attribute, cardinality-1 attributes, many tiny
// attributes) and the randomized d < o regime.

#include <gtest/gtest.h>

#include <cmath>

#include "frapp/core/gamma_diagonal.h"
#include "frapp/data/domain_index.h"

namespace frapp {
namespace core {
namespace {

struct ShapeCase {
  std::vector<size_t> cardinalities;
  const char* name;
};

class PerturberShapeTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(PerturberShapeTest, EmpiricalDistributionMatchesMatrixColumn) {
  const std::vector<size_t>& cards = GetParam().cardinalities;
  uint64_t n = 1;
  for (size_t c : cards) n *= c;
  ASSERT_GE(n, 2u);

  const double gamma = 5.0;
  const double x = 1.0 / (gamma + static_cast<double>(n) - 1.0);

  // A fixed non-trivial record: last category of each attribute.
  std::vector<uint8_t> record(cards.size());
  for (size_t j = 0; j < cards.size(); ++j) {
    record[j] = static_cast<uint8_t>(cards[j] - 1);
  }

  // Joint index of the record and the mixed-radix encoding of outputs.
  const auto encode = [&](const std::vector<uint8_t>& values) {
    uint64_t index = 0;
    for (size_t j = 0; j < cards.size(); ++j) {
      index = index * cards[j] + values[j];
    }
    return index;
  };
  const uint64_t u = encode(record);

  random::Pcg64 rng(1000 + n);
  const int trials = 120000;
  std::vector<int> counts(n, 0);
  std::vector<uint8_t> out;
  for (int t = 0; t < trials; ++t) {
    PerturbRecordDiagonalForm(record, cards, n, gamma * x, x, rng, &out);
    ++counts[encode(out)];
  }
  for (uint64_t v = 0; v < n; ++v) {
    const double expected = (v == u) ? gamma * x : x;
    EXPECT_NEAR(static_cast<double>(counts[v]) / trials, expected, 0.006)
        << GetParam().name << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PerturberShapeTest,
    ::testing::Values(ShapeCase{{8}, "single-attribute"},
                      ShapeCase{{2, 2, 2}, "boolean-triple"},
                      ShapeCase{{1, 5, 1, 2}, "with-cardinality-one"},
                      ShapeCase{{2, 3, 4}, "mixed"},
                      ShapeCase{{2, 2, 2, 2, 2}, "many-tiny"}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PerturberInvertedRegimeTest, DiagonalBelowOffDiagonalStillCorrect) {
  // RAN-GD realizations can have d < o (the record is LESS likely to stay
  // than to move to any particular other value). The column sampler must
  // still match the matrix.
  const std::vector<size_t> cards = {2, 3};
  const uint64_t n = 6;
  const double o = 0.18;               // 5 off-diagonal entries
  const double d = 1.0 - 5.0 * o;      // 0.1 < o
  ASSERT_LT(d, o);
  const std::vector<uint8_t> record = {1, 1};

  random::Pcg64 rng(77);
  const int trials = 200000;
  std::vector<int> counts(n, 0);
  std::vector<uint8_t> out;
  for (int t = 0; t < trials; ++t) {
    PerturbRecordDiagonalForm(record, cards, n, d, o, rng, &out);
    ++counts[out[0] * 3 + out[1]];
  }
  for (uint64_t v = 0; v < n; ++v) {
    const double expected = (v == 1 * 3 + 1) ? d : o;
    EXPECT_NEAR(static_cast<double>(counts[v]) / trials, expected, 0.005);
  }
}

TEST(PerturberBoundaryTest, ZeroDiagonalNeverKeepsTheRecord) {
  // alpha = gamma x boundary of RAN-GD: d = 0 exactly.
  const std::vector<size_t> cards = {2, 2};
  const uint64_t n = 4;
  const double o = 1.0 / 3.0;
  const std::vector<uint8_t> record = {0, 1};
  random::Pcg64 rng(5);
  std::vector<uint8_t> out;
  for (int t = 0; t < 20000; ++t) {
    PerturbRecordDiagonalForm(record, cards, n, 0.0, o, rng, &out);
    EXPECT_FALSE(out == record);
  }
}

}  // namespace
}  // namespace core
}  // namespace frapp
