#include "frapp/core/independent_column_scheme.h"

#include <gtest/gtest.h>

#include <cmath>

#include "frapp/core/privacy.h"
#include "frapp/data/census.h"
#include "frapp/linalg/condition.h"
#include "frapp/linalg/kronecker.h"

namespace frapp {
namespace core {
namespace {

data::CategoricalSchema TinySchema() {
  StatusOr<data::CategoricalSchema> s = data::CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}});
  return *std::move(s);
}

TEST(IndependentColumnTest, PerAttributeGammaSplitsBudget) {
  StatusOr<IndependentColumnScheme> s =
      IndependentColumnScheme::Create(TinySchema(), 19.0);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->per_attribute_gamma(), std::sqrt(19.0), 1e-12);
}

TEST(IndependentColumnTest, AttributeMatricesAreStochasticWithGammaRatio) {
  StatusOr<IndependentColumnScheme> s =
      IndependentColumnScheme::Create(TinySchema(), 19.0);
  ASSERT_TRUE(s.ok());
  for (size_t j = 0; j < 2; ++j) {
    linalg::Matrix a = s->AttributeMatrix(j);
    EXPECT_TRUE(a.IsColumnStochastic(1e-12));
    EXPECT_NEAR(MatrixAmplification(a), s->per_attribute_gamma(), 1e-12);
  }
}

TEST(IndependentColumnTest, RecordLevelAmplificationIsGamma) {
  // The Kronecker product of the per-attribute matrices is the record-level
  // transition matrix; its amplification is the product of per-attribute
  // gammas = gamma.
  StatusOr<IndependentColumnScheme> s =
      IndependentColumnScheme::Create(TinySchema(), 19.0);
  ASSERT_TRUE(s.ok());
  linalg::Matrix record =
      linalg::KroneckerProduct({s->AttributeMatrix(0), s->AttributeMatrix(1)});
  EXPECT_TRUE(record.IsColumnStochastic(1e-9));
  EXPECT_NEAR(MatrixAmplification(record), 19.0, 1e-9);
}

TEST(IndependentColumnTest, ConditionNumberProductFormulaMatchesDense) {
  StatusOr<IndependentColumnScheme> s =
      IndependentColumnScheme::Create(TinySchema(), 19.0);
  ASSERT_TRUE(s.ok());
  linalg::Matrix record =
      linalg::KroneckerProduct({s->AttributeMatrix(0), s->AttributeMatrix(1)});
  StatusOr<double> dense = linalg::SymmetricConditionNumber(record);
  ASSERT_TRUE(dense.ok());
  EXPECT_NEAR(s->ConditionNumberForAttributes({0, 1}), *dense, 1e-8);
}

TEST(IndependentColumnTest, ConditionNumberWorseThanJointGammaDiagonal) {
  // The motivating comparison: splitting the gamma budget across columns is
  // much worse conditioned than the joint gamma-diagonal matrix for longer
  // itemsets (CENSUS-scale check).
  StatusOr<data::CategoricalSchema> census = data::CategoricalSchema::Create(
      {{"a", {"0", "1", "2", "3"}},
       {"b", {"0", "1", "2", "3", "4"}},
       {"c", {"0", "1", "2", "3", "4"}},
       {"d", {"0", "1", "2", "3", "4"}},
       {"e", {"0", "1"}},
       {"f", {"0", "1"}}});
  ASSERT_TRUE(census.ok());
  StatusOr<IndependentColumnScheme> s =
      IndependentColumnScheme::Create(*census, 19.0);
  ASSERT_TRUE(s.ok());
  const double joint = (19.0 + 2000.0 - 1.0) / 18.0;  // ~112
  EXPECT_GT(s->ConditionNumberForAttributes({0, 1, 2, 3}), joint);
  EXPECT_GT(s->ConditionNumberForAttributes({0, 1, 2, 3, 4, 5}), 10.0 * joint);
}

TEST(IndependentColumnTest, PerturbMarginalMatchesMatrix) {
  data::CategoricalSchema schema = TinySchema();
  StatusOr<IndependentColumnScheme> s =
      IndependentColumnScheme::Create(schema, 19.0);
  ASSERT_TRUE(s.ok());
  StatusOr<data::CategoricalTable> t = data::CategoricalTable::Create(schema);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 100000; ++i) ASSERT_TRUE(t->AppendRow({1, 2}).ok());
  random::Pcg64 rng(37);
  StatusOr<data::CategoricalTable> out = s->Perturb(*t, rng);
  ASSERT_TRUE(out.ok());

  // Column 1 (cardinality 3): P(keep) = gamma_j x_j.
  const double gj = s->per_attribute_gamma();
  const double xj = 1.0 / (gj + 2.0);
  linalg::Vector m = out->Marginal(1);
  EXPECT_NEAR(m[2], gj * xj, 0.01);
  EXPECT_NEAR(m[0], xj, 0.01);
  EXPECT_NEAR(m[1], xj, 0.01);
}

TEST(IndependentColumnEstimatorTest, ExactOnNoiselessSubsetHistogram) {
  // Estimator solves the Kronecker system; on unperturbed data whose
  // histogram is exactly A (x) A times x, it must recover x.
  data::CategoricalSchema schema = TinySchema();
  StatusOr<IndependentColumnScheme> s =
      IndependentColumnScheme::Create(schema, 19.0);
  ASSERT_TRUE(s.ok());

  StatusOr<data::CategoricalTable> t = data::CategoricalTable::Create(schema);
  ASSERT_TRUE(t.ok());
  random::Pcg64 data_rng(38);
  const size_t n = 200000;
  size_t count_12 = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t a = data_rng.NextBernoulli(0.6) ? 1 : 0;
    const uint8_t b = static_cast<uint8_t>(data_rng.NextBounded(3));
    count_12 += (a == 1 && b == 2) ? 1 : 0;
    ASSERT_TRUE(t->AppendRow({a, b}).ok());
  }
  random::Pcg64 rng(39);
  StatusOr<data::CategoricalTable> perturbed = s->Perturb(*t, rng);
  ASSERT_TRUE(perturbed.ok());

  IndependentColumnSupportEstimator estimator(*s, *perturbed);
  StatusOr<double> est =
      estimator.EstimateSupport(*mining::Itemset::Create({{0, 1}, {1, 2}}));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, static_cast<double>(count_12) / n, 0.03);
}

TEST(IndependentColumnTest, Validation) {
  EXPECT_FALSE(IndependentColumnScheme::Create(TinySchema(), 1.0).ok());
}

TEST(IndependentColumnTest, ShardSeededConcatenatesToMonolithic) {
  StatusOr<data::CategoricalTable> table = data::census::MakeDataset(20000, 19);
  ASSERT_TRUE(table.ok());
  StatusOr<IndependentColumnScheme> s =
      IndependentColumnScheme::Create(table->schema(), 19.0);
  ASSERT_TRUE(s.ok());

  const data::CategoricalTable whole =
      *s->PerturbSeeded(*table, 31, /*num_threads=*/2);
  for (size_t num_shards : {3ul, 7ul}) {
    SCOPED_TRACE(testing::Message() << "shards=" << num_shards);
    size_t row = 0;
    for (const data::RowRange& range :
         data::ShardedTable::Plan(table->num_rows(), num_shards)) {
      const data::CategoricalTable shard = *s->PerturbShardSeeded(
          data::ShardView{&*table, range, range.begin}, 31);
      ASSERT_EQ(shard.num_rows(), range.size());
      for (size_t i = 0; i < shard.num_rows(); ++i, ++row) {
        for (size_t j = 0; j < table->num_attributes(); ++j) {
          ASSERT_EQ(shard.Value(i, j), whole.Value(row, j))
              << "row " << row << " attr " << j;
        }
      }
    }
    EXPECT_EQ(row, table->num_rows());
  }

  // Misaligned global positions are rejected.
  EXPECT_FALSE(
      s->PerturbShardSeeded(
           data::ShardView{&*table, data::RowRange{0, 100}, /*global_begin=*/100},
           31)
          .ok());
}

}  // namespace
}  // namespace core
}  // namespace frapp
