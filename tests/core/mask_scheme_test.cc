#include "frapp/core/mask_scheme.h"

#include <gtest/gtest.h>

#include <cmath>

#include "frapp/data/census.h"
#include "frapp/linalg/condition.h"
#include "frapp/linalg/kronecker.h"

namespace frapp {
namespace core {
namespace {

TEST(MaskSchemeTest, PaperCalibrationValues) {
  // Section 7: p = 0.5610 for CENSUS (M = 6) and 0.5524 for HEALTH (M = 7)
  // at gamma = 19.
  StatusOr<MaskScheme> census = MaskScheme::CalibrateForGamma(19.0, 6);
  ASSERT_TRUE(census.ok());
  EXPECT_NEAR(census->keep_probability(), 0.5610, 5e-4);

  StatusOr<MaskScheme> health = MaskScheme::CalibrateForGamma(19.0, 7);
  ASSERT_TRUE(health.ok());
  EXPECT_NEAR(health->keep_probability(), 0.5524, 5e-4);
}

TEST(MaskSchemeTest, CalibrationSaturatesGamma) {
  StatusOr<MaskScheme> s = MaskScheme::CalibrateForGamma(19.0, 6);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->RecordAmplification(6), 19.0, 1e-9);
}

TEST(MaskSchemeTest, Validation) {
  EXPECT_FALSE(MaskScheme::Create(0.5).ok());
  EXPECT_FALSE(MaskScheme::Create(1.0).ok());
  EXPECT_FALSE(MaskScheme::Create(0.3).ok());
  EXPECT_TRUE(MaskScheme::Create(0.9).ok());
  EXPECT_FALSE(MaskScheme::CalibrateForGamma(0.9, 5).ok());
  EXPECT_FALSE(MaskScheme::CalibrateForGamma(19.0, 0).ok());
}

TEST(MaskSchemeTest, ConditionNumberGrowsExponentially) {
  StatusOr<MaskScheme> s = MaskScheme::Create(0.561);
  ASSERT_TRUE(s.ok());
  const double base = 1.0 / (2.0 * 0.561 - 1.0);  // ~8.2
  EXPECT_NEAR(s->ConditionNumberForLength(1), base, 1e-9);
  EXPECT_NEAR(s->ConditionNumberForLength(4), std::pow(base, 4.0), 1e-6);
  // The paper observes MASK condition numbers of order 1e5 at high lengths.
  EXPECT_GT(s->ConditionNumberForLength(6), 1e5);
}

TEST(MaskSchemeTest, ConditionNumberMatchesDenseTensorMatrix) {
  const double p = 0.7;
  StatusOr<MaskScheme> s = MaskScheme::Create(p);
  ASSERT_TRUE(s.ok());
  linalg::Matrix flip =
      linalg::Matrix::FromRows({{p, 1.0 - p}, {1.0 - p, p}});
  for (size_t k = 1; k <= 3; ++k) {
    std::vector<linalg::Matrix> factors(k, flip);
    StatusOr<double> dense =
        linalg::SymmetricConditionNumber(linalg::KroneckerProduct(factors));
    ASSERT_TRUE(dense.ok());
    EXPECT_NEAR(s->ConditionNumberForLength(k), *dense, 1e-6) << "k=" << k;
  }
}

TEST(MaskSchemeTest, PerturbFlipsAtExpectedRate) {
  StatusOr<MaskScheme> s = MaskScheme::Create(0.561);
  ASSERT_TRUE(s.ok());
  StatusOr<data::BooleanTable> t = data::BooleanTable::CreateEmpty(23);
  ASSERT_TRUE(t.ok());
  const uint64_t pattern = 0b10110100101101001011010ull & t->ValidMask();
  const size_t rows = 20000;
  for (size_t i = 0; i < rows; ++i) t->AppendRow(pattern);

  random::Pcg64 rng(17);
  StatusOr<data::BooleanTable> out = s->Perturb(*t, rng);
  ASSERT_TRUE(out.ok());
  size_t flipped_bits = 0;
  for (size_t i = 0; i < rows; ++i) {
    flipped_bits +=
        static_cast<size_t>(__builtin_popcountll(out->RowBits(i) ^ pattern));
  }
  const double flip_rate =
      static_cast<double>(flipped_bits) / (static_cast<double>(rows) * 23.0);
  EXPECT_NEAR(flip_rate, 1.0 - 0.561, 0.005);
}

TEST(MaskSchemeTest, EstimateExactOnNoiselessCounts) {
  // Feed the estimator a database whose pattern counts are EXACTLY
  // M^{tensor k} x for a known x; the inverse transform must return x.
  const double p = 0.75;
  StatusOr<MaskScheme> s = MaskScheme::Create(p);
  ASSERT_TRUE(s.ok());

  // Original: 600 records with both bits set, 200 with bit0 only, 200 none.
  // Expected perturbed pattern counts computed with the 2-bit flip channel;
  // we synthesize a table achieving those counts exactly is awkward, so
  // instead test the identity channel limit: p close to 1 keeps patterns.
  StatusOr<data::BooleanTable> t = data::BooleanTable::CreateEmpty(2);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 600; ++i) t->AppendRow(0b11);
  for (int i = 0; i < 200; ++i) t->AppendRow(0b01);
  for (int i = 0; i < 200; ++i) t->AppendRow(0b00);

  // Without perturbation (identity data), reconstruction with the channel
  // inverse is exact only for p -> 1; here we instead verify consistency:
  // estimate on UNPERTURBED data equals applying the inverse to the true
  // pattern distribution.
  StatusOr<double> est = s->EstimateItemsetSupport(*t, {0, 1});
  ASSERT_TRUE(est.ok());
  // Inverse of the tensor channel applied to y = [0.2, 0.2, 0, 0.6]:
  // with q = 1-p, det = (2p-1) per axis.
  const double q = 1.0 - p;
  const double inv = 1.0 / (2.0 * p - 1.0);
  // axis 0 (bit 0): pairs (00,01), (10,11).
  double c00 = inv * (p * 0.2 - q * 0.2);
  double c01 = inv * (-q * 0.2 + p * 0.2);
  double c10 = inv * (p * 0.0 - q * 0.6);
  double c11 = inv * (-q * 0.0 + p * 0.6);
  // axis 1 (bit 1): pairs (00,10), (01,11).
  double expected_all_ones = inv * (-q * c01 + p * c11);
  (void)c00;
  (void)c10;
  EXPECT_NEAR(*est, expected_all_ones, 1e-12);
}

TEST(MaskSchemeTest, EndToEndSingletonEstimateIsAccurate) {
  // Perturb a large one-hot-ish boolean DB and reconstruct a singleton
  // support: short itemsets are where MASK is decent.
  StatusOr<MaskScheme> s = MaskScheme::Create(0.561);
  ASSERT_TRUE(s.ok());
  StatusOr<data::BooleanTable> t = data::BooleanTable::CreateEmpty(10);
  ASSERT_TRUE(t.ok());
  random::Pcg64 data_rng(3);
  const size_t rows = 200000;
  size_t true_count = 0;
  for (size_t i = 0; i < rows; ++i) {
    const bool set = data_rng.NextBernoulli(0.3);
    true_count += set ? 1 : 0;
    t->AppendRow(set ? 1ull : 0ull);
  }
  random::Pcg64 rng(19);
  StatusOr<data::BooleanTable> perturbed = s->Perturb(*t, rng);
  ASSERT_TRUE(perturbed.ok());
  StatusOr<double> est = s->EstimateItemsetSupport(*perturbed, {0});
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, static_cast<double>(true_count) / rows, 0.02);
}

TEST(MaskSchemeTest, EstimateValidation) {
  StatusOr<MaskScheme> s = MaskScheme::Create(0.561);
  ASSERT_TRUE(s.ok());
  StatusOr<data::BooleanTable> t = data::BooleanTable::CreateEmpty(4);
  ASSERT_TRUE(t.ok());
  t->AppendRow(0b1111);
  EXPECT_FALSE(s->EstimateItemsetSupport(*t, {}).ok());
  EXPECT_FALSE(s->EstimateItemsetSupport(*t, {5}).ok());
}

TEST(MaskSchemeTest, ShardSeededConcatenatesToMonolithic) {
  StatusOr<MaskScheme> s = MaskScheme::CalibrateForGamma(19.0, 6);
  ASSERT_TRUE(s.ok());
  StatusOr<data::BooleanTable> table = data::BooleanTable::CreateEmpty(23);
  ASSERT_TRUE(table.ok());
  random::Pcg64 rng(5);
  const size_t rows = 20000;  // three seeded chunks, last one partial
  for (size_t i = 0; i < rows; ++i) table->AppendRow(rng.Next());

  const data::BooleanTable whole = *s->PerturbSeeded(*table, 17, /*num_threads=*/2);
  ASSERT_EQ(whole.num_rows(), rows);
  size_t row = 0;
  for (const data::RowRange& range : data::ShardedTable::Plan(rows, 3)) {
    StatusOr<data::BooleanTable> shard_input = data::BooleanTable::CreateEmpty(23);
    ASSERT_TRUE(shard_input.ok());
    for (size_t i = range.begin; i < range.end; ++i) {
      shard_input->AppendRow(table->RowBits(i));
    }
    const data::BooleanTable shard =
        *s->PerturbShardSeeded(*shard_input, range.begin, 17);
    ASSERT_EQ(shard.num_rows(), range.size());
    for (size_t i = 0; i < shard.num_rows(); ++i, ++row) {
      ASSERT_EQ(shard.RowBits(i), whole.RowBits(row)) << "row " << row;
    }
  }
  EXPECT_EQ(row, rows);

  // Misaligned shards are rejected.
  EXPECT_FALSE(s->PerturbShardSeeded(*table, /*global_begin=*/100, 17).ok());
}

TEST(MaskSupportEstimatorTest, ResolvesItemsetBits) {
  data::CategoricalSchema schema = data::census::Schema();
  StatusOr<data::CategoricalTable> table = data::census::MakeDataset(20000, 4);
  ASSERT_TRUE(table.ok());
  StatusOr<data::BooleanTable> onehot = data::BooleanTable::FromCategorical(*table);
  ASSERT_TRUE(onehot.ok());

  StatusOr<MaskScheme> s = MaskScheme::CalibrateForGamma(19.0, 6);
  ASSERT_TRUE(s.ok());
  random::Pcg64 rng(23);
  StatusOr<data::BooleanTable> perturbed = s->Perturb(*onehot, rng);
  ASSERT_TRUE(perturbed.ok());

  MaskSupportEstimator estimator(*s, data::BooleanLayout(schema), *perturbed);
  // sex = Male has true support ~0.67; a singleton estimate should be close.
  StatusOr<double> est =
      estimator.EstimateSupport(*mining::Itemset::Create({{4, 1}}));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 0.67, 0.08);
}

}  // namespace
}  // namespace core
}  // namespace frapp
