#include "frapp/core/privacy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace frapp {
namespace core {
namespace {

TEST(GammaFromRequirementTest, PaperExampleGives19) {
  // The paper's running privacy setting: (rho1, rho2) = (5%, 50%) -> gamma = 19.
  StatusOr<double> gamma = GammaFromRequirement({0.05, 0.50});
  ASSERT_TRUE(gamma.ok());
  EXPECT_NEAR(*gamma, 19.0, 1e-12);
}

TEST(GammaFromRequirementTest, TighterPrivacyMeansSmallerGamma) {
  StatusOr<double> strict = GammaFromRequirement({0.05, 0.30});
  StatusOr<double> loose = GammaFromRequirement({0.05, 0.70});
  ASSERT_TRUE(strict.ok() && loose.ok());
  EXPECT_LT(*strict, *loose);
}

TEST(GammaFromRequirementTest, Validation) {
  EXPECT_FALSE(GammaFromRequirement({0.0, 0.5}).ok());
  EXPECT_FALSE(GammaFromRequirement({0.05, 1.0}).ok());
  EXPECT_FALSE(GammaFromRequirement({0.5, 0.5}).ok());
  EXPECT_FALSE(GammaFromRequirement({0.6, 0.5}).ok());
}

TEST(MatrixAmplificationTest, UniformMatrixIsOne) {
  linalg::Matrix a(3, 3, 1.0 / 3.0);
  EXPECT_NEAR(MatrixAmplification(a), 1.0, 1e-12);
}

TEST(MatrixAmplificationTest, GammaDiagonalFormIsGamma) {
  const double gamma = 19.0;
  const size_t n = 6;
  const double x = 1.0 / (gamma + n - 1.0);
  linalg::Matrix a(n, n, x);
  for (size_t i = 0; i < n; ++i) a(i, i) = gamma * x;
  EXPECT_NEAR(MatrixAmplification(a), gamma, 1e-12);
  EXPECT_TRUE(SatisfiesAmplification(a, gamma));
  EXPECT_FALSE(SatisfiesAmplification(a, gamma - 0.5));
}

TEST(MatrixAmplificationTest, ZeroEntryInMixedRowIsInfinite) {
  linalg::Matrix a = linalg::Matrix::FromRows({{1.0, 0.5}, {0.0, 0.5}});
  EXPECT_TRUE(std::isinf(MatrixAmplification(a)));
  EXPECT_FALSE(SatisfiesAmplification(a, 1e12));
}

TEST(MatrixAmplificationTest, AllZeroRowIsIgnored) {
  // A row with no mass constrains nothing (it is never observed).
  linalg::Matrix a = linalg::Matrix::FromRows({{1.0, 1.0}, {0.0, 0.0}});
  EXPECT_NEAR(MatrixAmplification(a), 1.0, 1e-12);
}

TEST(PosteriorFromRatioTest, PaperWorstCaseExample) {
  // Section 4.1: P(Q) = 5%, gamma = 19 -> posterior 50% under DET-GD.
  EXPECT_NEAR(PosteriorFromRatio(0.05, 19.0), 0.50, 1e-12);
}

TEST(PosteriorFromRatioTest, RatioOneKeepsPrior) {
  EXPECT_NEAR(PosteriorFromRatio(0.3, 1.0), 0.3, 1e-12);
}

TEST(PosteriorFromRatioTest, MonotoneInRatio) {
  EXPECT_LT(PosteriorFromRatio(0.05, 5.0), PosteriorFromRatio(0.05, 10.0));
}

TEST(RandomizedPosteriorRangeTest, PaperExampleRange) {
  // Section 4.1: P(Q) = 5%, gamma = 19, alpha = gamma*x/2 gives a posterior
  // range of roughly [33%, 60%] (quoted for the CENSUS-scale domain).
  const double gamma = 19.0;
  const uint64_t n = 2000;
  const double x = 1.0 / (gamma + static_cast<double>(n) - 1.0);
  StatusOr<PosteriorRange> range =
      RandomizedPosteriorRange(0.05, gamma, n, gamma * x / 2.0);
  ASSERT_TRUE(range.ok());
  EXPECT_NEAR(range->lower, 0.33, 0.01);
  EXPECT_NEAR(range->center, 0.50, 1e-9);
  EXPECT_NEAR(range->upper, 0.60, 0.01);
}

TEST(RandomizedPosteriorRangeTest, ZeroAlphaCollapsesToCenter) {
  StatusOr<PosteriorRange> range = RandomizedPosteriorRange(0.05, 19.0, 2000, 0.0);
  ASSERT_TRUE(range.ok());
  EXPECT_DOUBLE_EQ(range->lower, range->center);
  EXPECT_DOUBLE_EQ(range->upper, range->center);
}

TEST(RandomizedPosteriorRangeTest, RangeWidensWithAlpha) {
  const double gamma = 19.0;
  const uint64_t n = 2000;
  const double x = 1.0 / (gamma + n - 1.0);
  StatusOr<PosteriorRange> narrow =
      RandomizedPosteriorRange(0.05, gamma, n, 0.2 * gamma * x);
  StatusOr<PosteriorRange> wide =
      RandomizedPosteriorRange(0.05, gamma, n, 0.8 * gamma * x);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  EXPECT_LT(wide->lower, narrow->lower);
  EXPECT_GT(wide->upper, narrow->upper);
}

TEST(RandomizedPosteriorRangeTest, FullAlphaLowerBoundNearsZeroBreach) {
  // At alpha = gamma x the best-case realization has a zero diagonal: the
  // observed value carries no evidence for the property and the breach
  // vanishes.
  const double gamma = 19.0;
  const uint64_t n = 2000;
  const double x = 1.0 / (gamma + n - 1.0);
  StatusOr<PosteriorRange> range =
      RandomizedPosteriorRange(0.05, gamma, n, gamma * x);
  ASSERT_TRUE(range.ok());
  EXPECT_NEAR(range->lower, 0.0, 1e-9);
  EXPECT_GT(range->upper, 0.6);
}

TEST(RandomizedPosteriorRangeTest, Validation) {
  EXPECT_FALSE(RandomizedPosteriorRange(0.0, 19.0, 100, 0.0).ok());
  EXPECT_FALSE(RandomizedPosteriorRange(0.05, 1.0, 100, 0.0).ok());
  EXPECT_FALSE(RandomizedPosteriorRange(0.05, 19.0, 1, 0.0).ok());
  EXPECT_FALSE(RandomizedPosteriorRange(0.05, 19.0, 100, -0.1).ok());
  EXPECT_FALSE(RandomizedPosteriorRange(0.05, 19.0, 100, 1.0).ok());
}

class PosteriorSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(PosteriorSweepTest, CenterAlwaysEqualsDeterministicBreach) {
  const double prior = GetParam();
  const double gamma = 19.0;
  const uint64_t n = 2000;
  const double x = 1.0 / (gamma + n - 1.0);
  StatusOr<PosteriorRange> range =
      RandomizedPosteriorRange(prior, gamma, n, 0.5 * gamma * x);
  ASSERT_TRUE(range.ok());
  EXPECT_NEAR(range->center, PosteriorFromRatio(prior, gamma), 1e-12);
  EXPECT_LE(range->lower, range->center);
  EXPECT_GE(range->upper, range->center);
}

INSTANTIATE_TEST_SUITE_P(Priors, PosteriorSweepTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.3, 0.6, 0.9));

}  // namespace
}  // namespace core
}  // namespace frapp
