#include "frapp/core/gamma_diagonal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "frapp/core/naive_perturber.h"
#include "frapp/core/privacy.h"
#include "frapp/linalg/condition.h"

namespace frapp {
namespace core {
namespace {

data::CategoricalSchema TinySchema() {
  StatusOr<data::CategoricalSchema> s = data::CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}, {"c", {"0", "1"}}});
  return *std::move(s);  // domain size 12
}

TEST(GammaDiagonalMatrixTest, EntriesAndStochasticity) {
  StatusOr<GammaDiagonalMatrix> a = GammaDiagonalMatrix::Create(19.0, 12);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a->x(), 1.0 / 30.0, 1e-15);
  EXPECT_NEAR(a->DiagonalValue(), 19.0 / 30.0, 1e-15);
  EXPECT_NEAR(a->Entry(3, 3), a->DiagonalValue(), 0.0);
  EXPECT_NEAR(a->Entry(3, 4), a->x(), 0.0);
  EXPECT_TRUE(a->ToDense().IsColumnStochastic());
  EXPECT_TRUE(a->ToUniformMixture().IsColumnStochastic());
}

TEST(GammaDiagonalMatrixTest, AmplificationIsExactlyGamma) {
  StatusOr<GammaDiagonalMatrix> a = GammaDiagonalMatrix::Create(19.0, 12);
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(a->Amplification(), 19.0);
  EXPECT_NEAR(MatrixAmplification(a->ToDense()), 19.0, 1e-12);
}

TEST(GammaDiagonalMatrixTest, ConditionNumberClosedFormMatchesDense) {
  StatusOr<GammaDiagonalMatrix> a = GammaDiagonalMatrix::Create(19.0, 12);
  ASSERT_TRUE(a.ok());
  StatusOr<double> closed = a->ConditionNumber();
  ASSERT_TRUE(closed.ok());
  EXPECT_NEAR(*closed, (19.0 + 11.0) / 18.0, 1e-12);
  StatusOr<double> dense = linalg::SymmetricConditionNumber(a->ToDense());
  ASSERT_TRUE(dense.ok());
  EXPECT_NEAR(*closed, *dense, 1e-9);
}

TEST(GammaDiagonalMatrixTest, Validation) {
  EXPECT_FALSE(GammaDiagonalMatrix::Create(1.0, 10).ok());
  EXPECT_FALSE(GammaDiagonalMatrix::Create(0.5, 10).ok());
  EXPECT_FALSE(GammaDiagonalMatrix::Create(19.0, 1).ok());
}

TEST(MinimumConditionNumberBoundTest, OptimalityAgainstRandomFeasibleMatrices) {
  // Paper Section 3 theorem: NO symmetric column-stochastic matrix with
  // amplification <= gamma beats (gamma + n - 1)/(gamma - 1). Verify against
  // randomized feasible matrices.
  const double gamma = 10.0;
  const size_t n = 6;
  const double bound = MinimumConditionNumberBound(gamma, n);
  random::Pcg64 rng(2024);

  for (int trial = 0; trial < 200; ++trial) {
    // Random symmetric matrix with entries in [1, gamma], then normalized by
    // the (symmetry-preserving) Sinkhorn-style scaling toward stochasticity.
    linalg::Matrix m(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i; j < n; ++j) {
        m(i, j) = rng.NextDouble(1.0, gamma);
        m(j, i) = m(i, j);
      }
    }
    for (int sweep = 0; sweep < 200; ++sweep) {
      for (size_t j = 0; j < n; ++j) {
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) sum += m(i, j);
        const double scale = 1.0 / std::sqrt(sum);
        for (size_t i = 0; i < n; ++i) {
          m(i, j) *= scale;
          m(j, i) = m(i, j);
        }
      }
    }
    if (!m.IsColumnStochastic(1e-6)) continue;
    if (MatrixAmplification(m) > gamma) continue;  // infeasible draw
    StatusOr<double> cond = linalg::SymmetricConditionNumber(m);
    if (!cond.ok()) continue;  // indefinite draw
    EXPECT_GE(*cond, bound * (1.0 - 1e-6)) << "trial " << trial;
  }
}

TEST(PerturbRecordDiagonalFormTest, MatchesTheoreticalColumnDistribution) {
  // Perturb one fixed record many times; the empirical distribution over the
  // joint domain must match [diag on u, x elsewhere].
  data::CategoricalSchema schema = TinySchema();
  const data::DomainIndexer indexer = data::DomainIndexer::OverAllAttributes(schema);
  const uint64_t n = indexer.domain_size();
  const double gamma = 7.0;
  const double x = 1.0 / (gamma + static_cast<double>(n) - 1.0);

  std::vector<size_t> cards = {2, 3, 2};
  const std::vector<uint8_t> record = {1, 2, 0};
  const uint64_t u = indexer.EncodeFromFullRecord(record);

  random::Pcg64 rng(99);
  const int trials = 300000;
  std::vector<int> counts(n, 0);
  std::vector<uint8_t> out;
  for (int t = 0; t < trials; ++t) {
    PerturbRecordDiagonalForm(record, cards, n, gamma * x, x, rng, &out);
    ++counts[indexer.EncodeFromFullRecord(out)];
  }

  for (uint64_t v = 0; v < n; ++v) {
    const double expected = (v == u) ? gamma * x : x;
    const double observed = static_cast<double>(counts[v]) / trials;
    EXPECT_NEAR(observed, expected, 0.004) << "v=" << v;
  }
}

TEST(GammaDiagonalPerturberTest, AgreesWithNaiveCdfPerturber) {
  // The O(M) dependent-column algorithm and the O(|S_V|) CDF scan must
  // induce the same distribution (paper Section 5's equivalence).
  data::CategoricalSchema schema = TinySchema();
  StatusOr<data::CategoricalTable> original = data::CategoricalTable::Create(schema);
  ASSERT_TRUE(original.ok());
  random::Pcg64 data_rng(5);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(original
                    ->AppendRow({static_cast<uint8_t>(data_rng.NextBounded(2)),
                                 static_cast<uint8_t>(data_rng.NextBounded(3)),
                                 static_cast<uint8_t>(data_rng.NextBounded(2))})
                    .ok());
  }

  const double gamma = 19.0;
  StatusOr<GammaDiagonalPerturber> fast =
      GammaDiagonalPerturber::Create(schema, gamma);
  ASSERT_TRUE(fast.ok());
  StatusOr<GammaDiagonalMatrix> matrix =
      GammaDiagonalMatrix::Create(gamma, schema.DomainSize());
  ASSERT_TRUE(matrix.ok());
  StatusOr<NaivePerturber> naive = NaivePerturber::Create(schema, *matrix);
  ASSERT_TRUE(naive.ok());

  const data::DomainIndexer indexer = data::DomainIndexer::OverAllAttributes(schema);
  // Accumulate perturbed histograms over several repetitions.
  linalg::Vector fast_hist(static_cast<size_t>(indexer.domain_size()));
  linalg::Vector naive_hist(static_cast<size_t>(indexer.domain_size()));
  random::Pcg64 rng_fast(7), rng_naive(8);
  const int reps = 25;
  for (int r = 0; r < reps; ++r) {
    StatusOr<data::CategoricalTable> pf = fast->Perturb(*original, rng_fast);
    StatusOr<data::CategoricalTable> pn = naive->Perturb(*original, rng_naive);
    ASSERT_TRUE(pf.ok() && pn.ok());
    fast_hist = fast_hist + pf->JointHistogram(indexer);
    naive_hist = naive_hist + pn->JointHistogram(indexer);
  }
  const double total = fast_hist.Sum();
  ASSERT_DOUBLE_EQ(total, naive_hist.Sum());
  for (size_t v = 0; v < fast_hist.size(); ++v) {
    EXPECT_NEAR(fast_hist[v] / total, naive_hist[v] / total, 0.005) << "v=" << v;
  }
}

TEST(GammaDiagonalPerturberTest, PreservesRowCountAndSchema) {
  data::CategoricalSchema schema = TinySchema();
  StatusOr<data::CategoricalTable> t = data::CategoricalTable::Create(schema);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AppendRow({0, 0, 0}).ok());
  ASSERT_TRUE(t->AppendRow({1, 2, 1}).ok());
  StatusOr<GammaDiagonalPerturber> p = GammaDiagonalPerturber::Create(schema, 19.0);
  ASSERT_TRUE(p.ok());
  random::Pcg64 rng(1);
  StatusOr<data::CategoricalTable> out = p->Perturb(*t, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->num_attributes(), 3u);
}

TEST(GammaDiagonalPerturberTest, HighGammaMostlyPreservesRecords) {
  // gamma >> n: the diagonal dominates, most records survive unchanged.
  data::CategoricalSchema schema = TinySchema();
  StatusOr<data::CategoricalTable> t = data::CategoricalTable::Create(schema);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(t->AppendRow({1, 1, 1}).ok());
  StatusOr<GammaDiagonalPerturber> p = GammaDiagonalPerturber::Create(schema, 1e6);
  ASSERT_TRUE(p.ok());
  random::Pcg64 rng(3);
  StatusOr<data::CategoricalTable> out = p->Perturb(*t, rng);
  ASSERT_TRUE(out.ok());
  size_t unchanged = 0;
  for (size_t i = 0; i < out->num_rows(); ++i) {
    unchanged += (out->Row(i) == std::vector<uint8_t>{1, 1, 1}) ? 1 : 0;
  }
  EXPECT_GT(unchanged, 990u);
}

}  // namespace
}  // namespace core
}  // namespace frapp
