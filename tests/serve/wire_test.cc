// Hostile-peer coverage of the serve query frames: every field round-trips
// exactly (float BITS, not decimal round-trips), and every malformed frame
// — truncated at any byte, corrupted counts, unknown enum values, trailing
// garbage, oversized length prefixes — decodes to a Status, never a crash
// or a giant allocation.

#include "frapp/serve/query_wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "frapp/dist/wire.h"
#include "frapp/dist/wire_io.h"

namespace frapp {
namespace serve {
namespace {

QueryRequest MakeRequest() {
  QueryRequest request;
  request.kind = QueryKind::kRules;
  request.schema_fingerprint = 0x0123456789abcdefull;
  request.spec.kind = dist::MechanismSpec::Kind::kRanGd;
  request.spec.gamma = 23.5;
  request.spec.alpha = 0.75;
  request.spec.randomization = random::RandomizationKind::kTwoPoint;
  request.spec.cutoff_k = 5;
  request.spec.rho = 0.494;
  request.perturb_seed = 99;
  request.min_support = 0.015;
  request.min_confidence = 0.6;
  request.top_k = 12;
  return request;
}

QueryResponse MakeResponse() {
  QueryResponse response;
  response.kind = QueryKind::kMine;
  response.outcome = CacheOutcome::kCoalesced;
  response.store_hits = 11;
  response.store_misses = 3;
  response.delta_chunks = 2;
  response.tail_rows = 417;
  response.elapsed_micros = 123456;
  response.result.by_length.resize(2);
  response.result.by_length[0].push_back(
      {*mining::Itemset::Create({{0, 1}}), 0.25});
  response.result.by_length[0].push_back(
      {*mining::Itemset::Create({{3, 2}}), 0.125});
  response.result.by_length[1].push_back(
      {*mining::Itemset::Create({{0, 1}, {3, 2}}), 0.0625});
  response.result.candidates_per_pass = {9, 4};
  response.top.push_back({*mining::Itemset::Create({{0, 1}}), 0.25});
  response.rules.push_back({*mining::Itemset::Create({{0, 1}}),
                            *mining::Itemset::Create({{3, 2}}), 0.0625, 0.25});
  response.server.queries = 7;
  response.server.mine_runs = 2;
  response.server.cache_hits = 4;
  response.server.coalesced = 1;
  response.server.store_hits = 11;
  response.server.store_misses = 3;
  response.server.cache_entries = 2;
  response.server.cache_evictions = 1;
  response.server.rejected = 5;
  return response;
}

TEST(QueryWire, RequestRoundTripsEveryField) {
  const QueryRequest want = MakeRequest();
  const StatusOr<QueryRequest> got =
      DecodeQueryRequest(EncodeQueryRequest(want));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->protocol_version, want.protocol_version);
  EXPECT_EQ(got->kind, want.kind);
  EXPECT_EQ(got->schema_fingerprint, want.schema_fingerprint);
  EXPECT_EQ(got->spec.kind, want.spec.kind);
  EXPECT_EQ(got->spec.gamma, want.spec.gamma);
  EXPECT_EQ(got->spec.alpha, want.spec.alpha);
  EXPECT_EQ(got->spec.randomization, want.spec.randomization);
  EXPECT_EQ(got->spec.cutoff_k, want.spec.cutoff_k);
  EXPECT_EQ(got->spec.rho, want.spec.rho);
  EXPECT_EQ(got->perturb_seed, want.perturb_seed);
  EXPECT_EQ(got->min_support, want.min_support);
  EXPECT_EQ(got->min_confidence, want.min_confidence);
  EXPECT_EQ(got->top_k, want.top_k);
}

TEST(QueryWire, ResponseRoundTripsEveryField) {
  const QueryResponse want = MakeResponse();
  const StatusOr<QueryResponse> got =
      DecodeQueryResponse(EncodeQueryResponse(want));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->kind, want.kind);
  EXPECT_EQ(got->outcome, want.outcome);
  EXPECT_EQ(got->store_hits, want.store_hits);
  EXPECT_EQ(got->store_misses, want.store_misses);
  EXPECT_EQ(got->delta_chunks, want.delta_chunks);
  EXPECT_EQ(got->tail_rows, want.tail_rows);
  EXPECT_EQ(got->elapsed_micros, want.elapsed_micros);
  ASSERT_EQ(got->result.by_length.size(), want.result.by_length.size());
  for (size_t k = 0; k < want.result.by_length.size(); ++k) {
    ASSERT_EQ(got->result.by_length[k].size(), want.result.by_length[k].size());
    for (size_t i = 0; i < want.result.by_length[k].size(); ++i) {
      EXPECT_TRUE(got->result.by_length[k][i].itemset ==
                  want.result.by_length[k][i].itemset);
      EXPECT_EQ(got->result.by_length[k][i].support,
                want.result.by_length[k][i].support);
    }
  }
  EXPECT_EQ(got->result.candidates_per_pass, want.result.candidates_per_pass);
  ASSERT_EQ(got->top.size(), 1u);
  EXPECT_TRUE(got->top[0].itemset == want.top[0].itemset);
  EXPECT_EQ(got->top[0].support, want.top[0].support);
  ASSERT_EQ(got->rules.size(), 1u);
  EXPECT_TRUE(got->rules[0].antecedent == want.rules[0].antecedent);
  EXPECT_TRUE(got->rules[0].consequent == want.rules[0].consequent);
  EXPECT_EQ(got->rules[0].support, want.rules[0].support);
  EXPECT_EQ(got->rules[0].confidence, want.rules[0].confidence);
  EXPECT_TRUE(got->server == want.server);
}

TEST(QueryWire, RequestRejectsEveryTruncation) {
  const dist::Message full = EncodeQueryRequest(MakeRequest());
  for (size_t len = 0; len < full.payload.size(); ++len) {
    dist::Message cut = full;
    cut.payload.resize(len);
    EXPECT_FALSE(DecodeQueryRequest(cut).ok()) << "survived at " << len;
  }
}

TEST(QueryWire, ResponseRejectsEveryTruncation) {
  const dist::Message full = EncodeQueryResponse(MakeResponse());
  for (size_t len = 0; len < full.payload.size(); ++len) {
    dist::Message cut = full;
    cut.payload.resize(len);
    EXPECT_FALSE(DecodeQueryResponse(cut).ok()) << "survived at " << len;
  }
}

TEST(QueryWire, RequestRejectsTrailingGarbage) {
  dist::Message message = EncodeQueryRequest(MakeRequest());
  message.payload.push_back(0);
  EXPECT_FALSE(DecodeQueryRequest(message).ok());
}

TEST(QueryWire, RequestRejectsUnknownEnumValues) {
  // Payload offsets: version u32 (0), query kind u8 (4), fingerprint u64
  // (5), spec kind u8 (13), gamma f64 (14), alpha f64 (22),
  // randomization u8 (30).
  {
    dist::Message message = EncodeQueryRequest(MakeRequest());
    message.payload[4] = 200;  // no such QueryKind
    EXPECT_FALSE(DecodeQueryRequest(message).ok());
  }
  {
    dist::Message message = EncodeQueryRequest(MakeRequest());
    message.payload[13] = 99;  // no such MechanismSpec::Kind
    EXPECT_FALSE(DecodeQueryRequest(message).ok());
  }
  {
    dist::Message message = EncodeQueryRequest(MakeRequest());
    message.payload[30] = 77;  // no such RandomizationKind
    EXPECT_FALSE(DecodeQueryRequest(message).ok());
  }
}

TEST(QueryWire, ResponseRejectsUnknownEnumValues) {
  {
    dist::Message message = EncodeQueryResponse(MakeResponse());
    message.payload[0] = 200;  // query kind
    EXPECT_FALSE(DecodeQueryResponse(message).ok());
  }
  {
    dist::Message message = EncodeQueryResponse(MakeResponse());
    message.payload[1] = 9;  // cache outcome
    EXPECT_FALSE(DecodeQueryResponse(message).ok());
  }
}

TEST(QueryWire, WrongMessageTypeIsRejectedAndErrorFramePropagates) {
  EXPECT_FALSE(DecodeQueryRequest(dist::EncodePong()).ok());
  EXPECT_FALSE(DecodeQueryResponse(dist::EncodePing()).ok());
  // A kQueryRequest payload under the kQueryResponse type (and vice versa)
  // must not decode either.
  dist::Message crossed = EncodeQueryRequest(MakeRequest());
  crossed.type = dist::MessageType::kQueryResponse;
  EXPECT_FALSE(DecodeQueryResponse(crossed).ok());

  // An Error frame in a response slot surfaces as the carried Status.
  const Status failure = Status::Unavailable("server is shutting down");
  const StatusOr<QueryResponse> got =
      DecodeQueryResponse(dist::EncodeError(failure));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

// A corrupt element count must read as truncation, NOT drive a
// count-sized allocation: the decoder may never reserve more than the
// payload could possibly hold.
TEST(QueryWire, ResponseRejectsCorruptCountsWithoutGiantAllocation) {
  // Response header is 1+1+5*8 = 42 bytes; the level count u32 sits at 42.
  dist::Message message = EncodeQueryResponse(MakeResponse());
  ASSERT_GT(message.payload.size(), 46u);
  for (size_t i = 0; i < 4; ++i) message.payload[42 + i] = 0xff;
  EXPECT_FALSE(DecodeQueryResponse(message).ok());
}

TEST(QueryWire, ResponseRejectsMalformedItemsets) {
  using dist::PayloadWriter;
  // Hand-build a response whose top list carries a hostile itemset.
  const auto build = [](uint16_t k, std::vector<uint16_t> pairs) {
    PayloadWriter w;
    w.U8(0);  // kind kMine
    w.U8(0);  // outcome kMiss
    for (int i = 0; i < 5; ++i) w.U64(0);  // per-query stats
    w.U32(0);                              // no mined levels
    w.U32(0);                              // no candidate passes
    w.U32(1);                              // ONE top itemset...
    w.U16(k);                              // ...with a hostile length
    for (uint16_t v : pairs) w.U16(v);
    w.F64(0.5);                            // its support
    w.U32(0);                              // no rules
    for (int i = 0; i < 9; ++i) w.U64(0);  // server stats
    return dist::Message{dist::MessageType::kQueryResponse, w.Take()};
  };

  // k == 0: empty itemsets never cross the wire.
  EXPECT_FALSE(DecodeQueryResponse(build(0, {})).ok());
  // Duplicate attribute: violates the sorted-distinct invariant.
  EXPECT_FALSE(DecodeQueryResponse(build(2, {1, 0, 1, 1})).ok());
  // Unsorted attributes are canonicalized (Itemset::Create sorts), so the
  // decoded itemset is the same value however a peer ordered the pairs.
  const StatusOr<QueryResponse> unsorted =
      DecodeQueryResponse(build(2, {3, 0, 1, 0}));
  ASSERT_TRUE(unsorted.ok()) << unsorted.status().ToString();
  EXPECT_TRUE(unsorted->top[0].itemset ==
              *mining::Itemset::Create({{1, 0}, {3, 0}}));
  // Length larger than the remaining payload: truncation, not overread.
  EXPECT_FALSE(DecodeQueryResponse(build(40000, {1, 0})).ok());
}

TEST(QueryWire, OversizedFramePrefixIsRejectedByFraming) {
  std::vector<uint8_t> frame =
      dist::EncodeFrame(EncodeQueryRequest(MakeRequest()));
  // Corrupt the u32 length prefix to something absurd: framing must refuse
  // before any payload allocation happens.
  frame[0] = 0xff;
  frame[1] = 0xff;
  frame[2] = 0xff;
  frame[3] = 0xff;
  size_t consumed = 0;
  EXPECT_FALSE(dist::DecodeFrame(frame.data(), frame.size(), &consumed).ok());
}

TEST(QueryWire, QueryFramesRoundTripThroughFraming) {
  const dist::Message message = EncodeQueryResponse(MakeResponse());
  const std::vector<uint8_t> frame = dist::EncodeFrame(message);
  size_t consumed = 0;
  const StatusOr<dist::Message> decoded =
      dist::DecodeFrame(frame.data(), frame.size(), &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded->type, dist::MessageType::kQueryResponse);
  EXPECT_EQ(decoded->payload, message.payload);
}

}  // namespace
}  // namespace serve
}  // namespace frapp
