// Service-grade contract of the serve layer (broker + server):
//
//   - Every mine a broker answers is BIT-IDENTICAL to a from-scratch
//     pipeline::PrivacyPipeline run of the same spec, across all five
//     mechanisms.
//   - A repeated query is a cache hit: nothing executes, mine_runs stays
//     put, the result object is replayed bit-for-bit.
//   - N identical concurrent queries coalesce into ONE mine (stats-asserted
//     with the waiters provably parked before the run is released).
//   - A sub-supmin drill-down re-perturbs NOTHING: delta_chunks == 0,
//     tail_rows == 0, answered from the count store's materialized counts.
//   - Top-k and rule queries derive from the same cached mine.
//   - Graceful shutdown delivers the response of an in-flight query before
//     the connection dies.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "frapp/data/census.h"
#include "frapp/data/schema.h"
#include "frapp/data/sharded_table.h"
#include "frapp/mining/rules.h"
#include "frapp/pipeline/privacy_pipeline.h"
#include "frapp/serve/broker.h"
#include "frapp/serve/client.h"
#include "frapp/serve/query_wire.h"
#include "frapp/serve/server.h"

namespace frapp {
namespace serve {
namespace {

// Chunk-aligned on purpose (2 x kShardAlignmentRows): a store-backed
// re-mine of unchanged data then has no partial tail, so the zero
// re-perturbation claims (delta_chunks == 0 AND tail_rows == 0) are exact.
constexpr size_t kRows = 2 * data::kShardAlignmentRows;
constexpr uint64_t kGenSeed = 5;
constexpr uint64_t kPerturbSeed = 7;

void ExpectSameMining(const mining::AprioriResult& got,
                      const mining::AprioriResult& want) {
  ASSERT_EQ(got.candidates_per_pass, want.candidates_per_pass);
  ASSERT_EQ(got.by_length.size(), want.by_length.size());
  for (size_t k = 0; k < want.by_length.size(); ++k) {
    ASSERT_EQ(got.by_length[k].size(), want.by_length[k].size())
        << "length " << k + 1;
    for (size_t i = 0; i < want.by_length[k].size(); ++i) {
      ASSERT_TRUE(got.by_length[k][i].itemset == want.by_length[k][i].itemset)
          << "length " << k + 1 << " rank " << i;
      ASSERT_EQ(got.by_length[k][i].support, want.by_length[k][i].support)
          << "length " << k + 1 << " rank " << i;
    }
  }
}

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatusOr<data::CategoricalTable> t =
        data::census::MakeDataset(kRows, kGenSeed);
    ASSERT_TRUE(t.ok());
    table_ = new data::CategoricalTable(*std::move(t));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  static BrokerOptions MakeOptions() {
    BrokerOptions options(table_->schema());
    options.source_factory =
        []() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
      std::unique_ptr<pipeline::TableSource> src =
          std::make_unique<pipeline::InMemoryTableSource>(*table_, 0);
      return src;
    };
    options.source_id = "test:census";
    options.num_threads = 1;
    return options;
  }

  static QueryRequest MakeRequest(QueryKind kind = QueryKind::kMine) {
    QueryRequest request;
    request.kind = kind;
    request.schema_fingerprint = data::SchemaFingerprint(table_->schema());
    request.perturb_seed = kPerturbSeed;
    request.min_support = 0.02;
    return request;
  }

  /// From-scratch pipeline ground truth for `request`'s mine.
  static mining::AprioriResult Reference(const QueryRequest& request) {
    StatusOr<std::unique_ptr<core::Mechanism>> mech =
        dist::MakeMechanism(request.spec, table_->schema());
    EXPECT_TRUE(mech.ok());
    pipeline::PipelineOptions popts;
    popts.num_shards = 1;
    popts.num_threads = 1;
    popts.perturb_seed = request.perturb_seed;
    popts.mining.min_support = request.min_support;
    StatusOr<pipeline::PipelineResult> run =
        pipeline::PrivacyPipeline(popts).Run(**mech, *table_);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return run->mined;
  }

  static data::CategoricalTable* table_;
};

data::CategoricalTable* ServeTest::table_ = nullptr;

// ------------------------------------------------------------------ broker --

struct MechanismCase {
  const char* name;
  dist::MechanismSpec::Kind kind;
};

class BrokerMechanismTest : public ServeTest,
                            public ::testing::WithParamInterface<MechanismCase> {
};

TEST_P(BrokerMechanismTest, MineMatchesPipelineBitwise) {
  QueryBroker broker(MakeOptions());
  QueryRequest request = MakeRequest();
  request.spec.kind = GetParam().kind;

  const StatusOr<QueryResponse> response = broker.Execute(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->outcome, CacheOutcome::kMiss);
  ExpectSameMining(response->result, Reference(request));
  EXPECT_EQ(broker.stats().mine_runs, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, BrokerMechanismTest,
    ::testing::Values(
        MechanismCase{"det_gd", dist::MechanismSpec::Kind::kDetGd},
        MechanismCase{"ran_gd", dist::MechanismSpec::Kind::kRanGd},
        MechanismCase{"mask", dist::MechanismSpec::Kind::kMask},
        MechanismCase{"cut_paste", dist::MechanismSpec::Kind::kCutPaste},
        MechanismCase{"ind_gd", dist::MechanismSpec::Kind::kIndGd}),
    [](const ::testing::TestParamInfo<MechanismCase>& info) {
      return info.param.name;
    });

TEST_F(ServeTest, BrokerRepeatedQueryIsCacheHitWithIdenticalResult) {
  QueryBroker broker(MakeOptions());
  const QueryRequest request = MakeRequest();

  const StatusOr<QueryResponse> first = broker.Execute(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->outcome, CacheOutcome::kMiss);

  const StatusOr<QueryResponse> second = broker.Execute(request);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->outcome, CacheOutcome::kHit);
  // A hit executed nothing: the per-query run stats are zero by contract.
  EXPECT_EQ(second->store_hits, 0u);
  EXPECT_EQ(second->delta_chunks, 0u);
  ExpectSameMining(second->result, first->result);

  const BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.mine_runs, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST_F(ServeTest, BrokerCoalescesConcurrentIdenticalQueriesIntoOneMine) {
  constexpr size_t kClients = 8;

  // The factory gates the one real mine: it parks until the test has SEEN
  // all the other clients attach (stats().coalesced), proving they were
  // concurrent with — not after — the run they share.
  struct Gate {
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
    std::atomic<int> factory_calls{0};
  };
  auto gate = std::make_shared<Gate>();

  BrokerOptions options = MakeOptions();
  options.source_factory =
      [gate]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    gate->factory_calls.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate->mutex);
    gate->cv.wait(lock, [&] { return gate->open; });
    std::unique_ptr<pipeline::TableSource> src =
        std::make_unique<pipeline::InMemoryTableSource>(*table_, 0);
    return src;
  };
  QueryBroker broker(options);
  const QueryRequest request = MakeRequest();

  std::vector<StatusOr<QueryResponse>> responses(
      kClients, Status::Internal("not run"));
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back(
        [&, i] { responses[i] = broker.Execute(request); });
  }

  // Wait until all peers are parked on the in-flight entry (counted BEFORE
  // they block) and exactly one run reached the gated factory.
  for (int spin = 0; broker.stats().coalesced < kClients - 1; ++spin) {
    ASSERT_LT(spin, 10000) << "coalesced peers never parked";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(gate->mutex);
    gate->open = true;
  }
  gate->cv.notify_all();
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(gate->factory_calls.load(), 1);
  size_t misses = 0, coalesced = 0;
  const QueryResponse* miss = nullptr;
  for (const StatusOr<QueryResponse>& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->outcome == CacheOutcome::kMiss) {
      ++misses;
      miss = &*response;
    } else {
      ASSERT_EQ(response->outcome, CacheOutcome::kCoalesced);
      ++coalesced;
    }
  }
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(coalesced, kClients - 1);
  ASSERT_NE(miss, nullptr);
  for (const StatusOr<QueryResponse>& response : responses) {
    ExpectSameMining(response->result, miss->result);
  }

  const BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.queries, kClients);
  EXPECT_EQ(stats.mine_runs, 1u);
  EXPECT_EQ(stats.coalesced, kClients - 1);
  ExpectSameMining(miss->result, Reference(request));
}

TEST_F(ServeTest, BrokerSubSupminDrillDownPerturbsNothing) {
  QueryBroker broker(MakeOptions());
  QueryRequest request = MakeRequest();
  request.min_support = 0.02;
  ASSERT_TRUE(broker.Execute(request).ok());

  // Below the first mine's supmin: a different result key (kMiss), but the
  // same counting problem — answered from the store's materialized counts
  // and perturbed substrate with ZERO re-perturbation.
  request.min_support = 0.01;
  const StatusOr<QueryResponse> drill = broker.Execute(request);
  ASSERT_TRUE(drill.ok()) << drill.status().ToString();
  EXPECT_EQ(drill->outcome, CacheOutcome::kMiss);
  EXPECT_EQ(drill->delta_chunks, 0u);
  EXPECT_EQ(drill->tail_rows, 0u);
  EXPECT_GT(drill->store_hits, 0u);
  ExpectSameMining(drill->result, Reference(request));
  EXPECT_EQ(broker.stats().mine_runs, 2u);
}

TEST_F(ServeTest, BrokerTopKDerivesFromCachedMine) {
  QueryBroker broker(MakeOptions());
  const QueryRequest mine = MakeRequest();
  const StatusOr<QueryResponse> mined = broker.Execute(mine);
  ASSERT_TRUE(mined.ok());

  QueryRequest topk = MakeRequest(QueryKind::kTopK);
  topk.top_k = 5;
  const StatusOr<QueryResponse> response = broker.Execute(topk);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // Same key as the mine: served from its cached result, no new run.
  EXPECT_EQ(response->outcome, CacheOutcome::kHit);
  EXPECT_EQ(broker.stats().mine_runs, 1u);

  // Re-derive the expectation from the mined result: support desc, itemset
  // asc on ties, truncated to k.
  std::vector<mining::FrequentItemset> all;
  for (const auto& level : mined->result.by_length) {
    all.insert(all.end(), level.begin(), level.end());
  }
  std::sort(all.begin(), all.end(),
            [](const mining::FrequentItemset& a,
               const mining::FrequentItemset& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.itemset < b.itemset;
            });
  ASSERT_GE(all.size(), 5u);
  ASSERT_EQ(response->top.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(response->top[i].itemset == all[i].itemset) << "rank " << i;
    EXPECT_EQ(response->top[i].support, all[i].support) << "rank " << i;
  }
}

TEST_F(ServeTest, BrokerRulesMatchDirectGeneration) {
  QueryBroker broker(MakeOptions());
  const StatusOr<QueryResponse> mined = broker.Execute(MakeRequest());
  ASSERT_TRUE(mined.ok());

  QueryRequest rules = MakeRequest(QueryKind::kRules);
  rules.min_confidence = 0.5;
  const StatusOr<QueryResponse> response = broker.Execute(rules);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->outcome, CacheOutcome::kHit);
  EXPECT_EQ(broker.stats().mine_runs, 1u);

  mining::RuleOptions rule_options;
  rule_options.min_confidence = 0.5;
  StatusOr<std::vector<mining::AssociationRule>> want =
      mining::GenerateAssociationRules(mined->result, rule_options);
  ASSERT_TRUE(want.ok());
  ASSERT_FALSE(want->empty()) << "vacuous: census at supmin 0.02 must rule";
  ASSERT_EQ(response->rules.size(), want->size());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_TRUE(response->rules[i].antecedent == (*want)[i].antecedent);
    EXPECT_TRUE(response->rules[i].consequent == (*want)[i].consequent);
    EXPECT_EQ(response->rules[i].support, (*want)[i].support);
    EXPECT_EQ(response->rules[i].confidence, (*want)[i].confidence);
  }
}

TEST_F(ServeTest, BrokerBoundedCacheEvictsLeastRecentlyUsed) {
  BrokerOptions options = MakeOptions();
  options.cache_entries = 1;
  QueryBroker broker(options);

  QueryRequest request = MakeRequest();
  request.min_support = 0.02;
  ASSERT_TRUE(broker.Execute(request).ok());
  request.min_support = 0.03;  // evicts the 0.02 entry
  ASSERT_TRUE(broker.Execute(request).ok());

  request.min_support = 0.02;
  const StatusOr<QueryResponse> again = broker.Execute(request);
  ASSERT_TRUE(again.ok());
  // Evicted, so no cache hit — but the re-mine rides the count store:
  // nothing re-perturbed even though the result had to be rebuilt.
  EXPECT_EQ(again->outcome, CacheOutcome::kMiss);
  EXPECT_EQ(again->delta_chunks, 0u);
  EXPECT_EQ(again->tail_rows, 0u);

  const BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_GE(stats.cache_evictions, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST_F(ServeTest, BrokerRejectsMismatchesAndBadArguments) {
  QueryBroker broker(MakeOptions());

  QueryRequest wrong_version = MakeRequest();
  wrong_version.protocol_version = dist::kProtocolVersion + 1;
  StatusOr<QueryResponse> response = broker.Execute(wrong_version);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);

  QueryRequest wrong_fingerprint = MakeRequest();
  wrong_fingerprint.schema_fingerprint ^= 0xdeadbeef;
  response = broker.Execute(wrong_fingerprint);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);

  QueryRequest zero_supmin = MakeRequest();
  zero_supmin.min_support = 0.0;
  EXPECT_FALSE(broker.Execute(zero_supmin).ok());

  QueryRequest huge_supmin = MakeRequest();
  huge_supmin.min_support = 1.5;
  EXPECT_FALSE(broker.Execute(huge_supmin).ok());

  QueryRequest negative_confidence = MakeRequest(QueryKind::kRules);
  negative_confidence.min_confidence = -0.1;
  EXPECT_FALSE(broker.Execute(negative_confidence).ok());

  const BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.rejected, 5u);
  EXPECT_EQ(stats.queries, 0u);  // rejections are never admitted
  EXPECT_EQ(stats.mine_runs, 0u);
}

TEST_F(ServeTest, BrokerStatsQueryNeverMines) {
  QueryBroker broker(MakeOptions());
  const StatusOr<QueryResponse> response =
      broker.Execute(MakeRequest(QueryKind::kStats));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->server.queries, 1u);
  EXPECT_EQ(response->server.mine_runs, 0u);
  EXPECT_EQ(broker.stats().mine_runs, 0u);
}

// ------------------------------------------------------------------ server --

TEST_F(ServeTest, ServerAnswersQueriesOverTransport) {
  QueryBroker broker(MakeOptions());
  QueryServer server(&broker);
  auto [client_side, server_side] = dist::CreateInProcessTransportPair();
  server.AttachSession(std::move(server_side));
  QueryClient client(std::move(client_side));

  ASSERT_TRUE(client.Ping().ok());

  const StatusOr<QueryResponse> response = client.Query(MakeRequest());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->outcome, CacheOutcome::kMiss);
  ExpectSameMining(response->result, Reference(MakeRequest()));
  EXPECT_EQ(response->server.mine_runs, 1u);

  // A broker rejection crosses the wire as an Error frame and comes back
  // as the same Status the broker returned.
  QueryRequest bad = MakeRequest();
  bad.schema_fingerprint ^= 1;
  const StatusOr<QueryResponse> rejected = client.Query(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(broker.stats().rejected, 1u);

  client.Close();
  server.Shutdown();
  EXPECT_EQ(server.sessions(), 1u);
}

TEST_F(ServeTest, ServerGracefulShutdownDeliversInFlightResponse) {
  struct Gate {
    std::mutex mutex;
    std::condition_variable cv;
    bool entered = false;
    bool open = false;
  };
  auto gate = std::make_shared<Gate>();

  BrokerOptions options = MakeOptions();
  options.source_factory =
      [gate]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    {
      std::unique_lock<std::mutex> lock(gate->mutex);
      gate->entered = true;
      gate->cv.notify_all();
      gate->cv.wait(lock, [&] { return gate->open; });
    }
    std::unique_ptr<pipeline::TableSource> src =
        std::make_unique<pipeline::InMemoryTableSource>(*table_, 0);
    return src;
  };
  QueryBroker broker(options);
  QueryServer server(&broker);
  auto [client_side, server_side] = dist::CreateInProcessTransportPair();
  server.AttachSession(std::move(server_side));
  QueryClient client(std::move(client_side));

  StatusOr<QueryResponse> response = Status::Internal("not run");
  std::thread querier([&] { response = client.Query(MakeRequest()); });

  // The query is provably in flight (its mine is parked in the factory)...
  {
    std::unique_lock<std::mutex> lock(gate->mutex);
    gate->cv.wait(lock, [&] { return gate->entered; });
  }
  // ...when shutdown begins. Release the mine only after Shutdown has
  // started waiting on the session's busy lock.
  std::thread stopper([&] { server.Shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> lock(gate->mutex);
    gate->open = true;
  }
  gate->cv.notify_all();
  stopper.join();
  querier.join();

  // The in-flight query's response arrived intact despite the shutdown.
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ExpectSameMining(response->result, Reference(MakeRequest()));

  // After shutdown the server admits nothing new.
  auto [c2, s2] = dist::CreateInProcessTransportPair();
  server.AttachSession(std::move(s2));
  QueryClient late(std::move(c2));
  EXPECT_FALSE(late.Query(MakeRequest()).ok());
}

}  // namespace
}  // namespace serve
}  // namespace frapp
