// Binary shard format: round-trips must be exact, the schema fingerprint
// must refuse mismatched schemas, and corrupt/truncated payloads must fail
// loudly instead of producing wrong rows.

#include "frapp/data/shard_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "frapp/data/census.h"
#include "frapp/data/csv.h"
#include "frapp/data/sharded_table.h"

namespace frapp {
namespace data {
namespace {

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "/frapp_shard_io_" + stem + "_" +
         std::to_string(::getpid());
}

void ExpectSameTable(const CategoricalTable& a, const CategoricalTable& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (size_t j = 0; j < a.num_attributes(); ++j) {
    ASSERT_EQ(a.Column(j), b.Column(j)) << "column " << j;
  }
}

TEST(SchemaFingerprintTest, DistinguishesSchemas) {
  const uint64_t census = SchemaFingerprint(census::Schema());
  EXPECT_EQ(census, SchemaFingerprint(census::Schema()));  // deterministic

  CategoricalSchema renamed = *CategoricalSchema::Create(
      {{"a", {"x", "y"}}, {"b", {"p", "q"}}});
  CategoricalSchema reordered = *CategoricalSchema::Create(
      {{"a", {"y", "x"}}, {"b", {"p", "q"}}});
  CategoricalSchema renamed_col = *CategoricalSchema::Create(
      {{"a2", {"x", "y"}}, {"b", {"p", "q"}}});
  EXPECT_NE(SchemaFingerprint(renamed), census);
  // Reordering labels remaps every cell id -> must change the fingerprint.
  EXPECT_NE(SchemaFingerprint(renamed), SchemaFingerprint(reordered));
  EXPECT_NE(SchemaFingerprint(renamed), SchemaFingerprint(renamed_col));
}

TEST(ShardIoTest, RoundTripsWholeTable) {
  const CategoricalTable table = *census::MakeDataset(10000, 3);
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(WriteBinaryTable(table, path).ok());

  StatusOr<BinaryShardReader> reader =
      BinaryShardReader::Open(path, table.schema());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->total_rows(), 10000u);
  StatusOr<CategoricalTable> back =
      reader->ReadShard(std::numeric_limits<size_t>::max());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameTable(table, *back);
  std::remove(path.c_str());
}

TEST(ShardIoTest, ShardedReadsConcatenateToTheWholeTable) {
  const CategoricalTable table = *census::MakeDataset(5000, 9);
  const std::string path = TempPath("sharded");
  ASSERT_TRUE(WriteBinaryTable(table, path).ok());

  BinaryShardReader reader = *BinaryShardReader::Open(path, table.schema());
  CategoricalTable rebuilt = *CategoricalTable::Create(table.schema());
  size_t shards = 0;
  while (true) {
    const size_t before = reader.rows_read();
    CategoricalTable shard = *reader.ReadShard(1024);
    if (shard.num_rows() == 0) break;
    EXPECT_EQ(before + shard.num_rows(), reader.rows_read());
    for (size_t i = 0; i < shard.num_rows(); ++i) {
      ASSERT_TRUE(rebuilt.AppendRow(shard.Row(i)).ok());
    }
    ++shards;
  }
  EXPECT_EQ(shards, 5u);  // 4 x 1024 + 904
  ExpectSameTable(table, rebuilt);
  std::remove(path.c_str());
}

TEST(ShardIoTest, SkipToRowSeeksToTheExactRow) {
  const CategoricalTable table = *census::MakeDataset(5000, 9);
  const std::string path = TempPath("skip");
  ASSERT_TRUE(WriteBinaryTable(table, path).ok());

  BinaryShardReader reader = *BinaryShardReader::Open(path, table.schema());
  ASSERT_TRUE(reader.SkipToRow(3210).ok());
  EXPECT_EQ(reader.rows_read(), 3210u);
  CategoricalTable shard = *reader.ReadShard(100);
  ASSERT_EQ(shard.num_rows(), 100u);
  for (size_t i = 0; i < shard.num_rows(); ++i) {
    for (size_t j = 0; j < table.num_attributes(); ++j) {
      ASSERT_EQ(shard.Value(i, j), table.Value(3210 + i, j))
          << "row " << i << " attr " << j;
    }
  }
  // Backward seeks work too (a fresh session re-reads from its range).
  ASSERT_TRUE(reader.SkipToRow(0).ok());
  EXPECT_EQ(reader.rows_read(), 0u);
  CategoricalTable head = *reader.ReadShard(1);
  ASSERT_EQ(head.num_rows(), 1u);
  EXPECT_EQ(head.Value(0, 0), table.Value(0, 0));

  EXPECT_FALSE(reader.SkipToRow(5001).ok());  // past the end
  std::remove(path.c_str());
}

TEST(ShardIoTest, CsvToBinaryToTableEqualsDirectCsvLoad) {
  // The conversion workflow end to end: CSV -> binary -> table must equal
  // the direct CSV load bit for bit.
  const CategoricalTable table = *census::MakeDataset(3000, 21);
  const std::string csv_path = TempPath("conv") + ".csv";
  const std::string bin_path = TempPath("conv") + ".bin";
  ASSERT_TRUE(WriteCsv(table, csv_path).ok());

  const CategoricalTable from_csv = *ReadCsv(csv_path, table.schema());
  ASSERT_TRUE(WriteBinaryTable(from_csv, bin_path).ok());
  BinaryShardReader reader = *BinaryShardReader::Open(bin_path, table.schema());
  const CategoricalTable from_bin =
      *reader.ReadShard(std::numeric_limits<size_t>::max());

  ExpectSameTable(from_csv, from_bin);
  ExpectSameTable(table, from_bin);
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(ShardIoTest, AppendGrowsTheFileToTheConcatenation) {
  const CategoricalTable table = *census::MakeDataset(9000, 11);
  const CategoricalTable head = *CopyRowRange(table, {0, 6000});
  const CategoricalTable mid = *CopyRowRange(table, {6000, 8000});
  const CategoricalTable rest = *CopyRowRange(table, {8000, 9000});

  const std::string path = TempPath("append");
  ASSERT_TRUE(WriteBinaryTable(head, path).ok());
  ASSERT_TRUE(AppendBinaryTable(mid, path).ok());
  ASSERT_TRUE(AppendBinaryTable(rest, path).ok());

  StatusOr<BinaryShardReader> reader =
      BinaryShardReader::Open(path, table.schema());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->total_rows(), 9000u);
  StatusOr<CategoricalTable> read = reader->ReadShard(9000);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ExpectSameTable(*read, table);

  // Growing the file must equal writing the grown table outright.
  const std::string direct = TempPath("append_direct");
  ASSERT_TRUE(WriteBinaryTable(table, direct).ok());
  std::ifstream a(path, std::ios::binary), b(direct, std::ios::binary);
  const std::string a_bytes((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string b_bytes((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(a_bytes, b_bytes);

  // A schema mismatch refuses before any byte is written.
  const CategoricalSchema other = *CategoricalSchema::Create(
      {{"a", {"x", "y"}}, {"b", {"p", "q"}}});
  CategoricalTable foreign = *CategoricalTable::Create(other);
  EXPECT_FALSE(AppendBinaryTable(foreign, path).ok());
  std::remove(path.c_str());
  std::remove(direct.c_str());
}

TEST(ShardIoTest, RejectsMismatchedSchema) {
  const CategoricalTable table = *census::MakeDataset(100, 1);
  const std::string path = TempPath("fingerprint");
  ASSERT_TRUE(WriteBinaryTable(table, path).ok());

  const CategoricalSchema other = *CategoricalSchema::Create(
      {{"a", {"x", "y"}}, {"b", {"p", "q"}}});
  StatusOr<BinaryShardReader> reader = BinaryShardReader::Open(path, other);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("fingerprint"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ShardIoTest, RejectsNonBinaryFile) {
  const std::string path = TempPath("garbage");
  {
    std::ofstream out(path);
    out << "age,fnlwgt\nthis,is,csv\n";
  }
  StatusOr<BinaryShardReader> reader =
      BinaryShardReader::Open(path, census::Schema());
  ASSERT_FALSE(reader.ok());
  std::remove(path.c_str());
}

TEST(ShardIoTest, TruncatedPayloadNamesTheRow) {
  const CategoricalTable table = *census::MakeDataset(1000, 5);
  const std::string path = TempPath("truncated");
  ASSERT_TRUE(WriteBinaryTable(table, path).ok());
  // Chop the file mid-payload: the header still promises 1000 rows.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  BinaryShardReader reader = *BinaryShardReader::Open(path, table.schema());
  StatusOr<CategoricalTable> shard =
      reader.ReadShard(std::numeric_limits<size_t>::max());
  ASSERT_FALSE(shard.ok());
  EXPECT_NE(shard.status().message().find("truncated"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ShardIoTest, OutOfRangeCellIdNamesRowAndColumn) {
  const CategoricalTable table = *census::MakeDataset(100, 5);
  const std::string path = TempPath("corrupt");
  ASSERT_TRUE(WriteBinaryTable(table, path).ok());
  // Overwrite row 7, column 0's u16 with an id past the cardinality.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    const size_t header = 32;
    const size_t cell = header + 7 * table.num_attributes() * 2;
    file.seekp(static_cast<std::streamoff>(cell));
    const char big[2] = {static_cast<char>(0xff), static_cast<char>(0x7f)};
    file.write(big, 2);
  }
  BinaryShardReader reader = *BinaryShardReader::Open(path, table.schema());
  StatusOr<CategoricalTable> shard =
      reader.ReadShard(std::numeric_limits<size_t>::max());
  ASSERT_FALSE(shard.ok());
  EXPECT_NE(shard.status().message().find("row 7"), std::string::npos);
  EXPECT_NE(shard.status().message().find("cardinality"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace frapp
