#include "frapp/data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace frapp {
namespace data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/frapp_csv_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  CategoricalSchema Schema() {
    StatusOr<CategoricalSchema> s =
        CategoricalSchema::Create({{"color", {"red", "blue"}}, {"size", {"S", "L"}}});
    return *std::move(s);
  }

  std::string path_;
};

TEST_F(CsvTest, RoundTrip) {
  StatusOr<CategoricalTable> t = CategoricalTable::Create(Schema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AppendRow({0, 1}).ok());
  ASSERT_TRUE(t->AppendRow({1, 0}).ok());
  ASSERT_TRUE(WriteCsv(*t, path_).ok());

  StatusOr<CategoricalTable> back = ReadCsv(path_, Schema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->Value(0, 0), 0);
  EXPECT_EQ(back->Value(0, 1), 1);
  EXPECT_EQ(back->Value(1, 0), 1);
}

TEST_F(CsvTest, ReadsWhitespaceTolerantCells) {
  WriteFile("color,size\n red , L \nblue,S\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->Value(0, 1), 1);
}

TEST_F(CsvTest, SkipsBlankLines) {
  WriteFile("color,size\nred,S\n\n\nblue,L\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST_F(CsvTest, MissingFileIsIOError) {
  StatusOr<CategoricalTable> t = ReadCsv("/nonexistent/x.csv", Schema());
  EXPECT_EQ(t.status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, EmptyFileIsError) {
  WriteFile("");
  EXPECT_FALSE(ReadCsv(path_, Schema()).ok());
}

TEST_F(CsvTest, HeaderMismatchRejected) {
  WriteFile("color,weight\nred,S\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, WrongColumnCountRejectedWithLineNumber) {
  WriteFile("color,size\nred\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 2"), std::string::npos);
}

TEST_F(CsvTest, UnknownCategoryRejected) {
  WriteFile("color,size\npurple,S\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("purple"), std::string::npos);
}

}  // namespace
}  // namespace data
}  // namespace frapp
