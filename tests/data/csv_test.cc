#include "frapp/data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace frapp {
namespace data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/frapp_csv_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  CategoricalSchema Schema() {
    StatusOr<CategoricalSchema> s =
        CategoricalSchema::Create({{"color", {"red", "blue"}}, {"size", {"S", "L"}}});
    return *std::move(s);
  }

  std::string path_;
};

TEST_F(CsvTest, RoundTrip) {
  StatusOr<CategoricalTable> t = CategoricalTable::Create(Schema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AppendRow({0, 1}).ok());
  ASSERT_TRUE(t->AppendRow({1, 0}).ok());
  ASSERT_TRUE(WriteCsv(*t, path_).ok());

  StatusOr<CategoricalTable> back = ReadCsv(path_, Schema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->Value(0, 0), 0);
  EXPECT_EQ(back->Value(0, 1), 1);
  EXPECT_EQ(back->Value(1, 0), 1);
}

TEST_F(CsvTest, ReadsWhitespaceTolerantCells) {
  WriteFile("color,size\n red , L \nblue,S\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->Value(0, 1), 1);
}

TEST_F(CsvTest, SkipsBlankLines) {
  WriteFile("color,size\nred,S\n\n\nblue,L\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST_F(CsvTest, MissingFileIsIOError) {
  StatusOr<CategoricalTable> t = ReadCsv("/nonexistent/x.csv", Schema());
  EXPECT_EQ(t.status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, EmptyFileIsError) {
  WriteFile("");
  EXPECT_FALSE(ReadCsv(path_, Schema()).ok());
}

TEST_F(CsvTest, HeaderMismatchRejected) {
  WriteFile("color,weight\nred,S\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, WrongColumnCountRejectedWithLineNumber) {
  WriteFile("color,size\nred\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 2"), std::string::npos);
}

TEST_F(CsvTest, UnknownCategoryRejected) {
  WriteFile("color,size\npurple,S\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("purple"), std::string::npos);
}

TEST_F(CsvTest, UnknownCategoryNamesOffendingLine) {
  WriteFile("color,size\nred,S\nblue,L\npurple,S\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 4"), std::string::npos);
}

TEST_F(CsvTest, ReadsCrlfLineEndings) {
  WriteFile("color,size\r\nred,S\r\nblue,L\r\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->Value(1, 0), 1);
  EXPECT_EQ(t->Value(1, 1), 1);
}

TEST_F(CsvTest, ReadsFileWithoutTrailingNewline) {
  WriteFile("color,size\nred,S\nblue,L");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST_F(CsvTest, ReadsQuotedCells) {
  WriteFile("color,size\n\"red\",\"S\"\n\"blue\", \"L\" \n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->Value(1, 1), 1);
}

TEST_F(CsvTest, QuotedCellsMayContainCommasAndQuotes) {
  StatusOr<CategoricalSchema> schema = CategoricalSchema::Create(
      {{"name", {"a,b", "plain", "sa\"id"}}, {"size", {"S", "L"}}});
  ASSERT_TRUE(schema.ok());
  WriteFile("name,size\n\"a,b\",S\n\"sa\"\"id\",L\nplain,S\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, *schema);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->Value(0, 0), 0);
  EXPECT_EQ(t->Value(1, 0), 2);
  EXPECT_EQ(t->Value(2, 0), 1);
}

TEST_F(CsvTest, UnterminatedQuoteRejectedWithLineNumber) {
  WriteFile("color,size\nred,S\n\"blue,L\n");
  StatusOr<CategoricalTable> t = ReadCsv(path_, Schema());
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(t.status().message().find("unterminated"), std::string::npos);
}

TEST_F(CsvTest, WriteQuotesLabelsThatNeedIt) {
  StatusOr<CategoricalSchema> schema = CategoricalSchema::Create(
      {{"name", {"a,b", "plain"}}, {"size", {"S", "L"}}});
  ASSERT_TRUE(schema.ok());
  StatusOr<CategoricalTable> t = CategoricalTable::Create(*schema);
  ASSERT_TRUE(t->AppendRow({0, 1}).ok());
  ASSERT_TRUE(t->AppendRow({1, 0}).ok());
  ASSERT_TRUE(WriteCsv(*t, path_).ok());

  // Round trip: the comma-bearing label must survive its quoting.
  StatusOr<CategoricalTable> back = ReadCsv(path_, *schema);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->Value(0, 0), 0);
  EXPECT_EQ(back->Value(0, 1), 1);
  EXPECT_EQ(back->Value(1, 0), 1);
}

TEST_F(CsvTest, WriteRejectsNewlineLabels) {
  // The line-oriented reader cannot parse cells spanning lines, so writing
  // such labels must fail instead of producing an unreadable file.
  StatusOr<CategoricalSchema> schema = CategoricalSchema::Create(
      {{"name", {"two\nlines", "plain"}}, {"size", {"S", "L"}}});
  ASSERT_TRUE(schema.ok());
  StatusOr<CategoricalTable> t = CategoricalTable::Create(*schema);
  ASSERT_TRUE(t->AppendRow({1, 0}).ok());
  EXPECT_EQ(WriteCsv(*t, path_).code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, ShardedReaderStreamsInChunks) {
  WriteFile("color,size\nred,S\nblue,L\nred,L\nblue,S\nred,S\n");
  StatusOr<ShardedCsvReader> reader = ShardedCsvReader::Open(path_, Schema());
  ASSERT_TRUE(reader.ok());
  StatusOr<CategoricalTable> first = reader->ReadShard(2);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->num_rows(), 2u);
  EXPECT_EQ(reader->rows_read(), 2u);
  StatusOr<CategoricalTable> second = reader->ReadShard(2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->num_rows(), 2u);
  StatusOr<CategoricalTable> tail = reader->ReadShard(2);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->num_rows(), 1u);
  EXPECT_EQ(reader->rows_read(), 5u);
  StatusOr<CategoricalTable> done = reader->ReadShard(2);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->num_rows(), 0u);
}

TEST_F(CsvTest, ShardedReaderChunksConcatenateToWholeFile) {
  WriteFile("color,size\nred,S\n\nblue,L\nred,L\nblue,S\n");
  StatusOr<CategoricalTable> whole = ReadCsv(path_, Schema());
  ASSERT_TRUE(whole.ok());

  StatusOr<ShardedCsvReader> reader = ShardedCsvReader::Open(path_, Schema());
  ASSERT_TRUE(reader.ok());
  size_t row = 0;
  while (true) {
    StatusOr<CategoricalTable> chunk = reader->ReadShard(3);
    ASSERT_TRUE(chunk.ok());
    if (chunk->num_rows() == 0) break;
    for (size_t i = 0; i < chunk->num_rows(); ++i, ++row) {
      for (size_t j = 0; j < whole->num_attributes(); ++j) {
        EXPECT_EQ(chunk->Value(i, j), whole->Value(row, j));
      }
    }
  }
  EXPECT_EQ(row, whole->num_rows());
}

TEST_F(CsvTest, RawShardsDecodeToTheSameTablesAsReadShard) {
  WriteFile("color,size\nred,S\n\nblue,L\nred,L\n\nblue,S\nred,S\n");
  StatusOr<ShardedCsvReader> direct = ShardedCsvReader::Open(path_, Schema());
  StatusOr<ShardedCsvReader> split = ShardedCsvReader::Open(path_, Schema());
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(split.ok());
  size_t rows = 0;
  while (true) {
    StatusOr<CategoricalTable> want = direct->ReadShard(2);
    ASSERT_TRUE(want.ok());
    StatusOr<RawCsvShard> raw = split->ReadRawShard(2);
    ASSERT_TRUE(raw.ok());
    EXPECT_EQ(raw->row_begin, rows);
    EXPECT_EQ(raw->num_rows, want->num_rows());
    StatusOr<CategoricalTable> got =
        ShardedCsvReader::DecodeRawShard(*raw, path_, Schema());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->num_rows(), want->num_rows());
    for (size_t i = 0; i < got->num_rows(); ++i) {
      for (size_t j = 0; j < got->num_attributes(); ++j) {
        EXPECT_EQ(got->Value(i, j), want->Value(i, j));
      }
    }
    if (want->num_rows() == 0) break;
    rows += want->num_rows();
  }
  EXPECT_EQ(rows, 5u);
  EXPECT_EQ(split->rows_read(), 5u);
}

TEST_F(CsvTest, RawShardDecodeKeepsExactErrorLineNumbers) {
  // Blank lines stay inside the raw text, so the malformed row reports the
  // same file line number whether decoded in-line or from the raw block.
  WriteFile("color,size\nred,S\n\n\npurple,L\n");
  StatusOr<ShardedCsvReader> reader = ShardedCsvReader::Open(path_, Schema());
  ASSERT_TRUE(reader.ok());
  StatusOr<RawCsvShard> raw = reader->ReadRawShard(10);
  ASSERT_TRUE(raw.ok());
  StatusOr<CategoricalTable> got =
      ShardedCsvReader::DecodeRawShard(*raw, path_, Schema());
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("line 5"), std::string::npos)
      << got.status().ToString();
  EXPECT_NE(got.status().message().find("purple"), std::string::npos);
}

TEST_F(CsvTest, RawShardAfterExhaustionIsEmpty) {
  WriteFile("color,size\nred,S\n");
  StatusOr<ShardedCsvReader> reader = ShardedCsvReader::Open(path_, Schema());
  ASSERT_TRUE(reader.ok());
  StatusOr<RawCsvShard> raw = reader->ReadRawShard(5);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->num_rows, 1u);
  raw = reader->ReadRawShard(5);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->num_rows, 0u);
  EXPECT_TRUE(raw->text.empty());
}

}  // namespace
}  // namespace data
}  // namespace frapp
