// Calibration tests for the CENSUS / HEALTH stand-in generators: the schemas
// must match the paper's Tables 1 and 2 exactly, and the generated data must
// reproduce the Table 3 frequent-singleton profile at supmin = 2%.

#include <gtest/gtest.h>

#include "frapp/data/census.h"
#include "frapp/data/health.h"

namespace frapp {
namespace data {
namespace {

TEST(CensusSchemaTest, MatchesPaperTable1) {
  CategoricalSchema s = census::Schema();
  ASSERT_EQ(s.num_attributes(), 6u);
  EXPECT_EQ(s.attribute(0).name, "age");
  EXPECT_EQ(s.attribute(1).name, "fnlwgt");
  EXPECT_EQ(s.attribute(2).name, "hours-per-week");
  EXPECT_EQ(s.attribute(3).name, "race");
  EXPECT_EQ(s.attribute(4).name, "sex");
  EXPECT_EQ(s.attribute(5).name, "native-country");
  EXPECT_EQ(s.Cardinality(0), 4u);
  EXPECT_EQ(s.Cardinality(1), 5u);
  EXPECT_EQ(s.Cardinality(2), 5u);
  EXPECT_EQ(s.Cardinality(3), 5u);
  EXPECT_EQ(s.Cardinality(4), 2u);
  EXPECT_EQ(s.Cardinality(5), 2u);
  EXPECT_EQ(s.DomainSize(), 2000u);      // 4*5*5*5*2*2
  EXPECT_EQ(s.TotalCategories(), 23u);   // M_b for MASK
}

TEST(CensusSchemaTest, CategoryLabels) {
  CategoricalSchema s = census::Schema();
  EXPECT_EQ(s.attribute(0).categories[0], "(15-35]");
  EXPECT_EQ(s.attribute(3).categories[0], "White");
  EXPECT_EQ(s.attribute(4).categories, (std::vector<std::string>{"Female", "Male"}));
  EXPECT_EQ(s.attribute(5).categories[0], "United-States");
}

TEST(HealthSchemaTest, MatchesPaperTable2) {
  CategoricalSchema s = health::Schema();
  ASSERT_EQ(s.num_attributes(), 7u);
  EXPECT_EQ(s.attribute(0).name, "AGE");
  EXPECT_EQ(s.attribute(1).name, "BDDAY12");
  EXPECT_EQ(s.attribute(2).name, "DV12");
  EXPECT_EQ(s.attribute(3).name, "PHONE");
  EXPECT_EQ(s.attribute(4).name, "SEX");
  EXPECT_EQ(s.attribute(5).name, "INCFAM20");
  EXPECT_EQ(s.attribute(6).name, "HEALTH");
  EXPECT_EQ(s.DomainSize(), 7500u);      // 5*5*5*3*2*2*5
  EXPECT_EQ(s.TotalCategories(), 27u);   // M_b for MASK
}

TEST(CensusGeneratorTest, GeneratesRequestedRows) {
  StatusOr<CategoricalTable> t = census::MakeDataset(5000, 1);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 5000u);
}

TEST(CensusGeneratorTest, DominantMarginalsMatchAdult) {
  StatusOr<ChainGenerator> g = census::Generator();
  ASSERT_TRUE(g.ok());
  // race: ~85% White; native-country: ~89% US; sex: ~67% Male.
  EXPECT_NEAR(g->ExactMarginal(3)[0], 0.854, 1e-9);
  EXPECT_NEAR(g->ExactMarginal(5)[0], 0.894, 0.01);
  EXPECT_NEAR(g->ExactMarginal(4)[1], 0.67, 1e-9);
}

TEST(CensusGeneratorTest, FrequentSingletonProfileMatchesTable3) {
  // Table 3 row 1 for CENSUS: 19 frequent 1-itemsets at supmin = 2%.
  StatusOr<ChainGenerator> g = census::Generator();
  ASSERT_TRUE(g.ok());
  size_t frequent = 0;
  for (size_t j = 0; j < g->schema().num_attributes(); ++j) {
    linalg::Vector m = g->ExactMarginal(j);
    for (size_t c = 0; c < m.size(); ++c) frequent += (m[c] >= 0.02) ? 1 : 0;
  }
  EXPECT_EQ(frequent, 19u);
}

TEST(HealthGeneratorTest, FrequentSingletonProfileMatchesTable3) {
  // Table 3 row 1 for HEALTH: 23 frequent 1-itemsets at supmin = 2%.
  StatusOr<ChainGenerator> g = health::Generator();
  ASSERT_TRUE(g.ok());
  size_t frequent = 0;
  for (size_t j = 0; j < g->schema().num_attributes(); ++j) {
    linalg::Vector m = g->ExactMarginal(j);
    for (size_t c = 0; c < m.size(); ++c) frequent += (m[c] >= 0.02) ? 1 : 0;
  }
  EXPECT_EQ(frequent, 23u);
}

TEST(HealthGeneratorTest, HealthDegradesWithAge) {
  StatusOr<CategoricalTable> t = health::MakeDataset(50000, 2);
  ASSERT_TRUE(t.ok());
  // P(HEALTH = Poor | AGE >= 80) should far exceed P(Poor | AGE < 20).
  size_t young = 0, young_poor = 0, old = 0, old_poor = 0;
  for (size_t i = 0; i < t->num_rows(); ++i) {
    if (t->Value(i, 0) == 0) {
      ++young;
      young_poor += t->Value(i, 6) == 4 ? 1 : 0;
    } else if (t->Value(i, 0) == 4) {
      ++old;
      old_poor += t->Value(i, 6) == 4 ? 1 : 0;
    }
  }
  ASSERT_GT(young, 0u);
  ASSERT_GT(old, 0u);
  EXPECT_GT(static_cast<double>(old_poor) / old,
            3.0 * static_cast<double>(young_poor) / young);
}

TEST(DatasetsTest, DefaultSizesMatchPaper) {
  EXPECT_EQ(census::kDefaultNumRecords, 50000u);
  EXPECT_EQ(health::kDefaultNumRecords, 100000u);
}

}  // namespace
}  // namespace data
}  // namespace frapp
