// The boolean-index shard merge invariant: exact-pattern counts and hit
// histograms are per-row sums, and the superset Mobius transform is linear,
// so ANY row partition of a boolean table must answer every query
// bit-identically to the monolithic index, at every thread count.

#include "frapp/data/sharded_boolean_vertical_index.h"

#include <gtest/gtest.h>

#include "frapp/data/boolean_view.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace data {
namespace {

BooleanTable RandomTable(size_t rows, size_t bits, uint64_t seed) {
  BooleanTable table = *BooleanTable::CreateEmpty(bits);
  random::Pcg64 rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    table.AppendRow(rng.Next());
  }
  return table;
}

TEST(ShardedBooleanVerticalIndexTest, PatternCountsMatchMonolithicOverGrid) {
  const BooleanTable table = RandomTable(20011, 23, 5);
  const BooleanVerticalIndex monolithic(table);
  const std::vector<std::vector<size_t>> queries = {
      {0}, {3, 7}, {1, 4, 9}, {0, 5, 11, 17}, {2, 6, 10, 15, 22}};
  for (size_t num_shards : {1ul, 3ul, 7ul}) {
    for (size_t num_threads : {1ul, 4ul}) {
      SCOPED_TRACE(testing::Message() << "shards=" << num_shards
                                      << " threads=" << num_threads);
      const ShardedBooleanVerticalIndex sharded =
          ShardedBooleanVerticalIndex::Build(table, num_shards, num_threads);
      EXPECT_EQ(sharded.num_rows(), table.num_rows());
      EXPECT_EQ(sharded.num_bits(), table.num_bits());
      EXPECT_EQ(sharded.num_shards(), num_shards);
      for (const std::vector<size_t>& positions : queries) {
        EXPECT_EQ(sharded.PatternCounts(positions, num_threads),
                  monolithic.PatternCounts(positions));
        EXPECT_EQ(sharded.HitHistogram(positions, num_threads),
                  monolithic.HitHistogram(positions));
      }
    }
  }
}

TEST(ShardedBooleanVerticalIndexTest, PatternCountsSumToRowCount) {
  const BooleanTable table = RandomTable(4097, 12, 11);
  const ShardedBooleanVerticalIndex index =
      ShardedBooleanVerticalIndex::Build(table, 3);
  const std::vector<int64_t> counts = index.PatternCounts({1, 5, 8, 11});
  int64_t total = 0;
  for (int64_t c : counts) {
    EXPECT_GE(c, 0);
    total += c;
  }
  EXPECT_EQ(total, static_cast<int64_t>(table.num_rows()));
}

TEST(ShardedBooleanVerticalIndexTest, LongPatternsBeyondIndexedCutoff) {
  // Lengths above kMaxIndexedLength (the perf heuristic) must stay exact:
  // the sharded estimators have no row-scan fallback.
  const BooleanTable table = RandomTable(1000, 10, 3);
  const BooleanVerticalIndex monolithic(table);
  const std::vector<size_t> positions = {0, 1, 2, 4, 5, 7, 9};
  ASSERT_GT(positions.size(), BooleanVerticalIndex::kMaxIndexedLength);
  const ShardedBooleanVerticalIndex sharded =
      ShardedBooleanVerticalIndex::Build(table, 4, 2);
  EXPECT_EQ(sharded.PatternCounts(positions, 2),
            monolithic.PatternCounts(positions));
}

TEST(ShardedBooleanVerticalIndexTest, FromShardsConcatenatesRowCounts) {
  const BooleanTable table = RandomTable(300, 8, 9);
  std::vector<BooleanVerticalIndex> shards;
  shards.emplace_back(table, RowRange{0, 100});
  shards.emplace_back(table, RowRange{100, 170});
  shards.emplace_back(table, RowRange{170, 300});
  const ShardedBooleanVerticalIndex index =
      ShardedBooleanVerticalIndex::FromShards(std::move(shards));
  EXPECT_EQ(index.num_rows(), 300u);
  EXPECT_EQ(index.num_shards(), 3u);
  const BooleanVerticalIndex monolithic(table);
  EXPECT_EQ(index.PatternCounts({2, 3, 6}), monolithic.PatternCounts({2, 3, 6}));
}

TEST(ShardedBooleanVerticalIndexTest, SupersetCountsAreThePreMobiusHalf) {
  // The raw superset totals (what a frapp/dist worker ships) plus one
  // Mobius transform must equal PatternCounts exactly — that equivalence is
  // what lets the transform run after the distributed merge.
  const BooleanTable table = RandomTable(5000, 12, 11);
  const ShardedBooleanVerticalIndex index =
      ShardedBooleanVerticalIndex::Build(table, 3, 2);
  const std::vector<size_t> positions = {1, 4, 8, 11};
  std::vector<int64_t> superset = index.SupersetCounts(positions, 2);
  ASSERT_EQ(superset.size(), 16u);
  // Subset {} is every row; counts are monotone under subset inclusion.
  EXPECT_EQ(superset[0], static_cast<int64_t>(table.num_rows()));
  for (size_t s = 1; s < superset.size(); ++s) {
    EXPECT_LE(superset[s], superset[0]);
  }
  BooleanVerticalIndex::MobiusExactCounts(superset);
  EXPECT_EQ(superset, index.PatternCounts(positions));
}

TEST(ShardedBooleanVerticalIndexTest, SupersetCountsSumAcrossPartitions) {
  // Integer additivity over any row partition: the distributed merge's
  // correctness argument, checked directly.
  const BooleanTable table = RandomTable(4096, 10, 13);
  const ShardedBooleanVerticalIndex whole =
      ShardedBooleanVerticalIndex::Build(table, 1);
  std::vector<BooleanVerticalIndex> left_shards;
  left_shards.emplace_back(table, RowRange{0, 1500});
  std::vector<BooleanVerticalIndex> right_shards;
  right_shards.emplace_back(table, RowRange{1500, 4096});
  const ShardedBooleanVerticalIndex left =
      ShardedBooleanVerticalIndex::FromShards(std::move(left_shards));
  const ShardedBooleanVerticalIndex right =
      ShardedBooleanVerticalIndex::FromShards(std::move(right_shards));
  const std::vector<size_t> positions = {0, 2, 5, 7, 9};
  const std::vector<int64_t> total = whole.SupersetCounts(positions);
  const std::vector<int64_t> a = left.SupersetCounts(positions);
  const std::vector<int64_t> b = right.SupersetCounts(positions);
  for (size_t s = 0; s < total.size(); ++s) {
    EXPECT_EQ(total[s], a[s] + b[s]) << "subset " << s;
  }
}

TEST(ShardedBooleanVerticalIndexTest, EmptyIndexAnswersZero) {
  const ShardedBooleanVerticalIndex empty;
  EXPECT_EQ(empty.num_rows(), 0u);
  EXPECT_EQ(empty.num_shards(), 0u);
  const std::vector<int64_t> counts = empty.PatternCounts({});
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 0);
}

}  // namespace
}  // namespace data
}  // namespace frapp
