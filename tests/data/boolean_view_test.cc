#include "frapp/data/boolean_view.h"

#include <gtest/gtest.h>

#include "frapp/data/census.h"

namespace frapp {
namespace data {
namespace {

CategoricalSchema TinySchema() {
  StatusOr<CategoricalSchema> s =
      CategoricalSchema::Create({{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}});
  return *std::move(s);
}

TEST(BooleanLayoutTest, OffsetsAndPositions) {
  BooleanLayout layout(TinySchema());
  EXPECT_EQ(layout.num_bits(), 5u);
  EXPECT_EQ(layout.num_attributes(), 2u);
  EXPECT_EQ(layout.AttributeOffset(0), 0u);
  EXPECT_EQ(layout.AttributeOffset(1), 2u);
  EXPECT_EQ(layout.BitPosition(0, 1), 1u);
  EXPECT_EQ(layout.BitPosition(1, 2), 4u);
}

TEST(BooleanTableTest, OneHotEncoding) {
  StatusOr<CategoricalTable> t = CategoricalTable::Create(TinySchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AppendRow({1, 2}).ok());
  ASSERT_TRUE(t->AppendRow({0, 0}).ok());
  StatusOr<BooleanTable> b = BooleanTable::FromCategorical(*t);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_rows(), 2u);
  EXPECT_EQ(b->num_bits(), 5u);
  EXPECT_EQ(b->RowBits(0), (1ull << 1) | (1ull << 4));
  EXPECT_EQ(b->RowBits(1), (1ull << 0) | (1ull << 2));
}

TEST(BooleanTableTest, EveryRowHasExactlyMOnes) {
  // The paper's MASK mapping invariant: each record has exactly M ones.
  StatusOr<CategoricalTable> t = census::MakeDataset(1000, 3);
  ASSERT_TRUE(t.ok());
  StatusOr<BooleanTable> b = BooleanTable::FromCategorical(*t);
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < b->num_rows(); ++i) {
    EXPECT_EQ(b->PopCount(i), 6);
  }
}

TEST(BooleanTableTest, GetBit) {
  StatusOr<BooleanTable> b = BooleanTable::CreateEmpty(8);
  ASSERT_TRUE(b.ok());
  b->AppendRow(0b10100101);
  EXPECT_TRUE(b->Get(0, 0));
  EXPECT_FALSE(b->Get(0, 1));
  EXPECT_TRUE(b->Get(0, 7));
}

TEST(BooleanTableTest, AppendRowMasksInvalidHighBits) {
  StatusOr<BooleanTable> b = BooleanTable::CreateEmpty(4);
  ASSERT_TRUE(b.ok());
  b->AppendRow(0xFF);
  EXPECT_EQ(b->RowBits(0), 0x0Full);
}

TEST(BooleanTableTest, CreateEmptyValidation) {
  EXPECT_FALSE(BooleanTable::CreateEmpty(0).ok());
  EXPECT_FALSE(BooleanTable::CreateEmpty(65).ok());
  EXPECT_TRUE(BooleanTable::CreateEmpty(64).ok());
}

TEST(BooleanTableTest, TooManyCategoriesRejected) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < 9; ++i) {
    attrs.push_back(
        {"a" + std::to_string(i), {"0", "1", "2", "3", "4", "5", "6", "7"}});
  }
  StatusOr<CategoricalSchema> s = CategoricalSchema::Create(std::move(attrs));
  ASSERT_TRUE(s.ok());  // 72 bits
  StatusOr<CategoricalTable> t = CategoricalTable::Create(*s);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(BooleanTable::FromCategorical(*t).ok());
}

}  // namespace
}  // namespace data
}  // namespace frapp
