#include "frapp/data/discretize.h"

#include <gtest/gtest.h>

namespace frapp {
namespace data {
namespace {

TEST(DiscretizerTest, PaperAgeBins) {
  // Table 1: age in (15-35], (35-55], (55-75], > 75.
  StatusOr<EquiWidthDiscretizer> d = EquiWidthDiscretizer::Create(15, 75, 3);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_bins(), 4u);
  EXPECT_EQ(d->Bin(20), 0u);
  EXPECT_EQ(d->Bin(35), 0u);   // right-closed
  EXPECT_EQ(d->Bin(35.01), 1u);
  EXPECT_EQ(d->Bin(55), 1u);
  EXPECT_EQ(d->Bin(75), 2u);
  EXPECT_EQ(d->Bin(76), 3u);   // overflow
  EXPECT_EQ(d->Bin(10), 0u);   // clamps below
  const std::vector<std::string> labels = d->BinLabels();
  EXPECT_EQ(labels[0], "(15-35]");
  EXPECT_EQ(labels[2], "(55-75]");
  EXPECT_EQ(labels[3], "> 75");
}

TEST(DiscretizerTest, ScientificEdgeLabels) {
  // Table 1: fnlwgt bins at multiples of 1e5.
  StatusOr<EquiWidthDiscretizer> d = EquiWidthDiscretizer::Create(0, 4e5, 4);
  ASSERT_TRUE(d.ok());
  const std::vector<std::string> labels = d->BinLabels();
  EXPECT_EQ(labels[0], "(0-1e5]");
  EXPECT_EQ(labels[3], "(3e5-4e5]");
  EXPECT_EQ(labels[4], "> 4e5");
}

TEST(DiscretizerTest, NoOverflowBin) {
  StatusOr<EquiWidthDiscretizer> d = EquiWidthDiscretizer::Create(0, 10, 2, false);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_bins(), 2u);
  EXPECT_EQ(d->Bin(100), 1u);  // clamps into the last bin
  EXPECT_EQ(d->BinLabels().size(), 2u);
}

TEST(DiscretizerTest, ToAttribute) {
  StatusOr<EquiWidthDiscretizer> d = EquiWidthDiscretizer::Create(0, 20, 1);
  ASSERT_TRUE(d.ok());
  Attribute attr = d->ToAttribute("hours");
  EXPECT_EQ(attr.name, "hours");
  EXPECT_EQ(attr.cardinality(), 2u);
  EXPECT_EQ(attr.categories[0], "(0-20]");
  EXPECT_EQ(attr.categories[1], "> 20");
}

TEST(DiscretizerTest, Validation) {
  EXPECT_FALSE(EquiWidthDiscretizer::Create(10, 10, 2).ok());
  EXPECT_FALSE(EquiWidthDiscretizer::Create(10, 5, 2).ok());
  EXPECT_FALSE(EquiWidthDiscretizer::Create(0, 10, 0).ok());
}

TEST(DiscretizerTest, EveryValueLandsInExactlyOneBin) {
  StatusOr<EquiWidthDiscretizer> d = EquiWidthDiscretizer::Create(0, 100, 5);
  ASSERT_TRUE(d.ok());
  size_t last = 0;
  for (double v = -5.0; v <= 120.0; v += 0.5) {
    const size_t bin = d->Bin(v);
    ASSERT_LT(bin, d->num_bins());
    EXPECT_GE(bin, last);  // monotone in v
    last = bin;
  }
}

}  // namespace
}  // namespace data
}  // namespace frapp
