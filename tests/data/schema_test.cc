#include "frapp/data/schema.h"

#include <gtest/gtest.h>

namespace frapp {
namespace data {
namespace {

std::vector<Attribute> TwoAttrs() {
  return {{"color", {"red", "green", "blue"}}, {"size", {"S", "L"}}};
}

TEST(SchemaTest, CreateAndAccess) {
  StatusOr<CategoricalSchema> s = CategoricalSchema::Create(TwoAttrs());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_attributes(), 2u);
  EXPECT_EQ(s->Cardinality(0), 3u);
  EXPECT_EQ(s->Cardinality(1), 2u);
  EXPECT_EQ(s->attribute(1).name, "size");
  EXPECT_EQ(s->DomainSize(), 6u);
  EXPECT_EQ(s->TotalCategories(), 5u);
}

TEST(SchemaTest, AttributeAndCategoryLookup) {
  StatusOr<CategoricalSchema> s = CategoricalSchema::Create(TwoAttrs());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s->AttributeIndex("size"), 1u);
  EXPECT_EQ(s->AttributeIndex("weight").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*s->CategoryIndex(0, "blue"), 2u);
  EXPECT_EQ(s->CategoryIndex(0, "purple").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(s->CategoryIndex(5, "x").status().code(), StatusCode::kOutOfRange);
}

TEST(SchemaTest, RejectsEmptySchema) {
  EXPECT_FALSE(CategoricalSchema::Create({}).ok());
}

TEST(SchemaTest, RejectsEmptyAttributeName) {
  EXPECT_FALSE(CategoricalSchema::Create({{"", {"a"}}}).ok());
}

TEST(SchemaTest, RejectsDuplicateAttributeNames) {
  EXPECT_FALSE(CategoricalSchema::Create({{"a", {"x"}}, {"a", {"y"}}}).ok());
}

TEST(SchemaTest, RejectsEmptyCategoryList) {
  EXPECT_FALSE(CategoricalSchema::Create({{"a", {}}}).ok());
}

TEST(SchemaTest, RejectsDuplicateCategories) {
  EXPECT_FALSE(CategoricalSchema::Create({{"a", {"x", "x"}}}).ok());
}

TEST(SchemaTest, DomainSizeOfLargeSchema) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < 10; ++i) {
    attrs.push_back({"a" + std::to_string(i), {"0", "1", "2", "3"}});
  }
  StatusOr<CategoricalSchema> s = CategoricalSchema::Create(std::move(attrs));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->DomainSize(), 1048576u);  // 4^10
}

}  // namespace
}  // namespace data
}  // namespace frapp
