#include "frapp/data/boolean_vertical_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "frapp/random/rng.h"

namespace frapp {
namespace data {
namespace {

BooleanTable RandomBooleanTable(size_t num_bits, size_t n, random::Pcg64& rng) {
  BooleanTable table = *BooleanTable::CreateEmpty(num_bits);
  for (size_t i = 0; i < n; ++i) table.AppendRow(rng.Next());
  return table;
}

std::vector<int64_t> ScalarPatternCounts(const BooleanTable& table,
                                         const std::vector<size_t>& positions) {
  std::vector<int64_t> counts(1ull << positions.size(), 0);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    size_t idx = 0;
    for (size_t b = 0; b < positions.size(); ++b) {
      idx |= static_cast<size_t>((table.RowBits(i) >> positions[b]) & 1u) << b;
    }
    ++counts[idx];
  }
  return counts;
}

TEST(BooleanVerticalIndexTest, PatternCountsMatchScalarOnRandomTables) {
  random::Pcg64 rng(11);
  for (size_t n : {0u, 1u, 64u, 65u, 500u}) {
    const BooleanTable table = RandomBooleanTable(23, n, rng);
    const BooleanVerticalIndex index(table);
    for (int trial = 0; trial < 10; ++trial) {
      const size_t k =
          1 + rng.NextBounded(BooleanVerticalIndex::kMaxIndexedLength);
      std::vector<size_t> positions;
      for (size_t b = 0; b < k; ++b) {
        size_t pos;
        do {
          pos = rng.NextBounded(23);
        } while (std::find(positions.begin(), positions.end(), pos) !=
                 positions.end());
        positions.push_back(pos);
      }
      EXPECT_EQ(index.PatternCounts(positions), ScalarPatternCounts(table, positions))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BooleanVerticalIndexTest, HitHistogramMatchesScalar) {
  random::Pcg64 rng(12);
  const BooleanTable table = RandomBooleanTable(20, 333, rng);
  const BooleanVerticalIndex index(table);
  const std::vector<size_t> positions = {2, 7, 13};
  uint64_t mask = 0;
  for (size_t p : positions) mask |= 1ull << p;

  std::vector<int64_t> expected(positions.size() + 1, 0);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    ++expected[static_cast<size_t>(__builtin_popcountll(table.RowBits(i) & mask))];
  }
  EXPECT_EQ(index.HitHistogram(positions), expected);
}

TEST(BooleanVerticalIndexTest, PatternCountsSumToRowCount) {
  random::Pcg64 rng(13);
  const BooleanTable table = RandomBooleanTable(10, 77, rng);
  const BooleanVerticalIndex index(table);
  const std::vector<int64_t> counts = index.PatternCounts({0, 4, 9});
  int64_t total = 0;
  for (int64_t c : counts) {
    EXPECT_GE(c, 0);
    total += c;
  }
  EXPECT_EQ(total, 77);
}

}  // namespace
}  // namespace data
}  // namespace frapp
