#include "frapp/data/sharded_table.h"

#include <gtest/gtest.h>

#include "frapp/data/schema.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace data {
namespace {

CategoricalSchema TwoAttributeSchema() {
  return *CategoricalSchema::Create({
      {"a", {"a0", "a1", "a2"}},
      {"b", {"b0", "b1"}},
  });
}

CategoricalTable RandomTable(size_t n, uint64_t seed) {
  CategoricalTable table = *CategoricalTable::Create(TwoAttributeSchema());
  random::Pcg64 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    (void)table.AppendRow({static_cast<uint8_t>(rng.NextBounded(3)),
                           static_cast<uint8_t>(rng.NextBounded(2))});
  }
  return table;
}

void ExpectValidPartition(const std::vector<RowRange>& plan, size_t num_rows,
                          size_t alignment) {
  size_t expected_begin = 0;
  for (const RowRange& range : plan) {
    EXPECT_EQ(range.begin, expected_begin);
    EXPECT_GT(range.size(), 0u);
    EXPECT_EQ(range.begin % alignment, 0u);
    if (range.end != num_rows) EXPECT_EQ(range.end % alignment, 0u);
    expected_begin = range.end;
  }
  EXPECT_EQ(expected_begin, num_rows);
}

TEST(ShardedTablePlanTest, CoversAllRowsContiguouslyAndAligned) {
  for (size_t num_rows : {1ul, 100ul, 8192ul, 8193ul, 50000ul, 100000ul}) {
    for (size_t num_shards : {1ul, 2ul, 3ul, 7ul, 100ul}) {
      const std::vector<RowRange> plan =
          ShardedTable::Plan(num_rows, num_shards);
      SCOPED_TRACE(testing::Message() << "rows=" << num_rows
                                      << " shards=" << num_shards);
      ExpectValidPartition(plan, num_rows, kShardAlignmentRows);
      // Clamped to the number of alignment quanta, never beyond the request.
      const size_t quanta =
          (num_rows + kShardAlignmentRows - 1) / kShardAlignmentRows;
      EXPECT_EQ(plan.size(), std::min(num_shards, quanta));
    }
  }
}

TEST(ShardedTablePlanTest, ZeroShardsMeansOnePerQuantum) {
  const std::vector<RowRange> plan = ShardedTable::Plan(50000, 0);
  EXPECT_EQ(plan.size(), 7u);  // ceil(50000 / 8192)
  ExpectValidPartition(plan, 50000, kShardAlignmentRows);
}

TEST(ShardedTablePlanTest, EmptyTableHasNoShards) {
  EXPECT_TRUE(ShardedTable::Plan(0, 4).empty());
}

TEST(ShardedTablePlanTest, ShardsAreEvenInQuanta) {
  // 10 quanta over 3 shards: 4 + 3 + 3, never 8 + 1 + 1.
  const size_t rows = 10 * kShardAlignmentRows;
  const std::vector<RowRange> plan = ShardedTable::Plan(rows, 3);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].size(), 4 * kShardAlignmentRows);
  EXPECT_EQ(plan[1].size(), 3 * kShardAlignmentRows);
  EXPECT_EQ(plan[2].size(), 3 * kShardAlignmentRows);
}

TEST(ShardedTablePlanTest, UnalignedPlanSplitsSmallTables) {
  // Alignment 1 (pure counting): a 10-row table really splits 3 ways.
  const std::vector<RowRange> plan = ShardedTable::Plan(10, 3, 1);
  ASSERT_EQ(plan.size(), 3u);
  ExpectValidPartition(plan, 10, 1);
  EXPECT_EQ(plan[0].size(), 4u);
}

TEST(ShardedTableTest, MaterializedShardsConcatenateToTable) {
  const CategoricalTable table = RandomTable(1000, 7);
  const ShardedTable sharded = ShardedTable::Create(table, 3, /*alignment=*/64);
  ASSERT_EQ(sharded.num_shards(), 3u);
  EXPECT_EQ(sharded.MaxShardRows(), sharded.Range(0).size());
  size_t row = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    const StatusOr<CategoricalTable> shard = sharded.MaterializeShard(s);
    ASSERT_TRUE(shard.ok());
    ASSERT_EQ(shard->num_rows(), sharded.Range(s).size());
    for (size_t i = 0; i < shard->num_rows(); ++i, ++row) {
      for (size_t j = 0; j < table.num_attributes(); ++j) {
        ASSERT_EQ(shard->Value(i, j), table.Value(row, j));
      }
    }
  }
  EXPECT_EQ(row, table.num_rows());
}

TEST(ShardedTableTest, MaterializeOutOfRangeFails) {
  const CategoricalTable table = RandomTable(10, 3);
  const ShardedTable sharded = ShardedTable::Create(table, 2, /*alignment=*/1);
  EXPECT_FALSE(sharded.MaterializeShard(99).ok());
}

TEST(CopyRowRangeTest, RejectsRangeBeyondTable) {
  const CategoricalTable table = RandomTable(10, 3);
  EXPECT_FALSE(CopyRowRange(table, RowRange{5, 20}).ok());
  EXPECT_FALSE(CopyRowRange(table, RowRange{7, 3}).ok());
}

}  // namespace
}  // namespace data
}  // namespace frapp
