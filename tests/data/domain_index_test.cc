#include "frapp/data/domain_index.h"

#include <gtest/gtest.h>

namespace frapp {
namespace data {
namespace {

CategoricalSchema MakeSchema() {
  StatusOr<CategoricalSchema> s = CategoricalSchema::Create(
      {{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}, {"c", {"0", "1", "2", "3"}}});
  return *std::move(s);
}

TEST(DomainIndexerTest, FullDomainSize) {
  DomainIndexer idx = DomainIndexer::OverAllAttributes(MakeSchema());
  EXPECT_EQ(idx.domain_size(), 24u);
  EXPECT_EQ(idx.num_attributes(), 3u);
}

TEST(DomainIndexerTest, FirstAttributeMostSignificant) {
  DomainIndexer idx = DomainIndexer::OverAllAttributes(MakeSchema());
  EXPECT_EQ(idx.Encode({0, 0, 0}), 0u);
  EXPECT_EQ(idx.Encode({0, 0, 1}), 1u);
  EXPECT_EQ(idx.Encode({0, 1, 0}), 4u);
  EXPECT_EQ(idx.Encode({1, 0, 0}), 12u);
  EXPECT_EQ(idx.Encode({1, 2, 3}), 23u);
}

TEST(DomainIndexerTest, RoundTripAllIndices) {
  DomainIndexer idx = DomainIndexer::OverAllAttributes(MakeSchema());
  for (uint64_t i = 0; i < idx.domain_size(); ++i) {
    EXPECT_EQ(idx.Encode(idx.Decode(i)), i);
  }
}

TEST(DomainIndexerTest, SubsetIndexing) {
  CategoricalSchema schema = MakeSchema();
  StatusOr<DomainIndexer> idx = DomainIndexer::OverSubset(schema, {0, 2});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->domain_size(), 8u);
  EXPECT_EQ(idx->Encode({1, 3}), 7u);
  EXPECT_EQ(idx->Decode(5), (std::vector<size_t>{1, 1}));
}

TEST(DomainIndexerTest, EncodeFromFullRecordSelectsSubset) {
  CategoricalSchema schema = MakeSchema();
  StatusOr<DomainIndexer> idx = DomainIndexer::OverSubset(schema, {1});
  ASSERT_TRUE(idx.ok());
  const std::vector<uint8_t> record = {1, 2, 3};
  EXPECT_EQ(idx->EncodeFromFullRecord(record), 2u);
}

TEST(DomainIndexerTest, SubsetValidation) {
  CategoricalSchema schema = MakeSchema();
  EXPECT_FALSE(DomainIndexer::OverSubset(schema, {}).ok());
  EXPECT_FALSE(DomainIndexer::OverSubset(schema, {2, 1}).ok());   // not ascending
  EXPECT_FALSE(DomainIndexer::OverSubset(schema, {0, 0}).ok());   // duplicate
  EXPECT_FALSE(DomainIndexer::OverSubset(schema, {5}).ok());      // out of range
}

TEST(DomainIndexerDeathTest, EncodeChecksRanges) {
  DomainIndexer idx = DomainIndexer::OverAllAttributes(MakeSchema());
  EXPECT_DEATH(idx.Encode({0, 3, 0}), "FRAPP_CHECK");
  EXPECT_DEATH(idx.Decode(24), "FRAPP_CHECK");
}

}  // namespace
}  // namespace data
}  // namespace frapp
