#include "frapp/data/synthetic.h"

#include <gtest/gtest.h>

namespace frapp {
namespace data {
namespace {

CategoricalSchema TinySchema() {
  StatusOr<CategoricalSchema> s =
      CategoricalSchema::Create({{"a", {"0", "1"}}, {"b", {"0", "1", "2"}}});
  return *std::move(s);
}

TEST(ChainGeneratorTest, ValidatesSpecCount) {
  std::vector<ChainAttributeSpec> specs(1);
  specs[0].distributions = {{0.5, 0.5}};
  EXPECT_FALSE(ChainGenerator::Create(TinySchema(), specs).ok());
}

TEST(ChainGeneratorTest, ValidatesParentOrdering) {
  std::vector<ChainAttributeSpec> specs(2);
  specs[0].parent = 1;  // parent after child: invalid
  specs[0].distributions = {{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}};
  specs[1].distributions = {{0.3, 0.3, 0.4}};
  EXPECT_FALSE(ChainGenerator::Create(TinySchema(), specs).ok());
}

TEST(ChainGeneratorTest, ValidatesRowCounts) {
  std::vector<ChainAttributeSpec> specs(2);
  specs[0].distributions = {{0.5, 0.5}};
  specs[1].parent = 0;
  specs[1].distributions = {{0.3, 0.3, 0.4}};  // needs 2 rows, has 1
  EXPECT_FALSE(ChainGenerator::Create(TinySchema(), specs).ok());
}

TEST(ChainGeneratorTest, ValidatesRowArity) {
  std::vector<ChainAttributeSpec> specs(2);
  specs[0].distributions = {{0.5, 0.5}};
  specs[1].distributions = {{0.5, 0.5}};  // needs 3 weights
  EXPECT_FALSE(ChainGenerator::Create(TinySchema(), specs).ok());
}

ChainGenerator MakeGenerator() {
  std::vector<ChainAttributeSpec> specs(2);
  specs[0].distributions = {{0.7, 0.3}};
  specs[1].parent = 0;
  specs[1].distributions = {{0.8, 0.1, 0.1}, {0.1, 0.1, 0.8}};
  StatusOr<ChainGenerator> g = ChainGenerator::Create(TinySchema(), specs);
  return *std::move(g);
}

TEST(ChainGeneratorTest, DeterministicForSeed) {
  ChainGenerator g = MakeGenerator();
  StatusOr<CategoricalTable> t1 = g.Generate(100, 5);
  StatusOr<CategoricalTable> t2 = g.Generate(100, 5);
  ASSERT_TRUE(t1.ok() && t2.ok());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(t1->Row(i), t2->Row(i));
  }
  StatusOr<CategoricalTable> t3 = g.Generate(100, 6);
  ASSERT_TRUE(t3.ok());
  bool any_diff = false;
  for (size_t i = 0; i < 100; ++i) any_diff |= (t1->Row(i) != t3->Row(i));
  EXPECT_TRUE(any_diff);
}

TEST(ChainGeneratorTest, MarginalsMatchSpec) {
  ChainGenerator g = MakeGenerator();
  StatusOr<CategoricalTable> t = g.Generate(100000, 17);
  ASSERT_TRUE(t.ok());
  linalg::Vector ma = t->Marginal(0);
  EXPECT_NEAR(ma[0], 0.7, 0.01);

  // b's marginal: 0.7 * [.8,.1,.1] + 0.3 * [.1,.1,.8].
  linalg::Vector mb = t->Marginal(1);
  EXPECT_NEAR(mb[0], 0.59, 0.01);
  EXPECT_NEAR(mb[1], 0.10, 0.01);
  EXPECT_NEAR(mb[2], 0.31, 0.01);
}

TEST(ChainGeneratorTest, ConditionalDependencyIsRealized) {
  ChainGenerator g = MakeGenerator();
  StatusOr<CategoricalTable> t = g.Generate(50000, 23);
  ASSERT_TRUE(t.ok());
  // P(b=2 | a=1) should be ~0.8, P(b=2 | a=0) ~0.1.
  size_t a1 = 0, a1b2 = 0, a0 = 0, a0b2 = 0;
  for (size_t i = 0; i < t->num_rows(); ++i) {
    if (t->Value(i, 0) == 1) {
      ++a1;
      a1b2 += t->Value(i, 1) == 2 ? 1 : 0;
    } else {
      ++a0;
      a0b2 += t->Value(i, 1) == 2 ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(a1b2) / a1, 0.8, 0.02);
  EXPECT_NEAR(static_cast<double>(a0b2) / a0, 0.1, 0.02);
}

TEST(ChainGeneratorTest, ExactMarginalPropagation) {
  ChainGenerator g = MakeGenerator();
  linalg::Vector ma = g.ExactMarginal(0);
  EXPECT_NEAR(ma[0], 0.7, 1e-12);
  linalg::Vector mb = g.ExactMarginal(1);
  EXPECT_NEAR(mb[0], 0.59, 1e-12);
  EXPECT_NEAR(mb[1], 0.10, 1e-12);
  EXPECT_NEAR(mb[2], 0.31, 1e-12);
}

TEST(ChainGeneratorTest, UnnormalizedWeightsAreNormalized) {
  std::vector<ChainAttributeSpec> specs(2);
  specs[0].distributions = {{7.0, 3.0}};  // weights, not probabilities
  specs[1].distributions = {{1.0, 1.0, 2.0}};
  StatusOr<ChainGenerator> g = ChainGenerator::Create(TinySchema(), specs);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->ExactMarginal(0)[0], 0.7, 1e-12);
  EXPECT_NEAR(g->ExactMarginal(1)[2], 0.5, 1e-12);
}

}  // namespace
}  // namespace data
}  // namespace frapp
