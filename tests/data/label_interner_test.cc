// LabelInterner must agree with CategoricalSchema::CategoryIndex on every
// label (it replaces it on the ingest hot path) and reject unknown labels.

#include "frapp/data/label_interner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "frapp/data/census.h"
#include "frapp/data/schema.h"

namespace frapp {
namespace data {
namespace {

TEST(LabelInternerTest, ResolvesEveryLabelOfEveryCensusColumn) {
  const CategoricalSchema schema = census::Schema();
  std::vector<LabelInterner> interners = MakeColumnInterners(schema);
  ASSERT_EQ(interners.size(), schema.num_attributes());
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    const Attribute& attr = schema.attribute(j);
    for (size_t c = 0; c < attr.cardinality(); ++c) {
      EXPECT_EQ(interners[j].Intern(attr.categories[c]), static_cast<int>(c))
          << attr.name << " / " << attr.categories[c];
      // Against the reference resolver it replaces.
      EXPECT_EQ(*schema.CategoryIndex(j, attr.categories[c]), c);
    }
  }
}

TEST(LabelInternerTest, RejectsUnknownAndNearMissLabels) {
  const CategoricalSchema schema = census::Schema();  // outlives the interner
  LabelInterner interner(schema.attribute(0).categories);
  EXPECT_EQ(interner.Intern("no-such-label"), -1);
  EXPECT_EQ(interner.Intern(""), -1);
  // A known label with altered case/whitespace is a different label.
  EXPECT_EQ(interner.Intern(schema.attribute(0).categories[0] + " "), -1);
}

TEST(LabelInternerTest, ClusteredLookupsHitTheLastHitFastPath) {
  const std::vector<std::string> labels = {"alpha", "beta", "gamma", "delta"};
  LabelInterner interner(labels);
  // Long runs of the same label (a sorted column) and run breaks must both
  // resolve correctly; the fast path is an internal detail, correctness is
  // the observable.
  for (int pass = 0; pass < 3; ++pass) {
    for (size_t id = 0; id < labels.size(); ++id) {
      for (int rep = 0; rep < 100; ++rep) {
        ASSERT_EQ(interner.Intern(labels[id]), static_cast<int>(id));
      }
    }
  }
  // A miss in the middle of a run must not poison the cursor.
  EXPECT_EQ(interner.Intern("delta"), 3);
  EXPECT_EQ(interner.Intern("epsilon"), -1);
  EXPECT_EQ(interner.Intern("delta"), 3);
  EXPECT_EQ(interner.Intern("alpha"), 0);
}

TEST(LabelInternerTest, ManyLabelsSurviveProbeCollisions) {
  // 300+ labels force a deeper table and genuine linear-probe collisions.
  std::vector<std::string> labels;
  for (int i = 0; i < 317; ++i) labels.push_back("label_" + std::to_string(i));
  LabelInterner interner(labels);
  for (size_t id = 0; id < labels.size(); ++id) {
    ASSERT_EQ(interner.Intern(labels[id]), static_cast<int>(id));
  }
  EXPECT_EQ(interner.Intern("label_317"), -1);
  EXPECT_EQ(interner.Intern("label_"), -1);
}

}  // namespace
}  // namespace data
}  // namespace frapp
