#include "frapp/data/table.h"

#include <gtest/gtest.h>

namespace frapp {
namespace data {
namespace {

CategoricalSchema MakeSchema() {
  StatusOr<CategoricalSchema> s =
      CategoricalSchema::Create({{"a", {"0", "1"}}, {"b", {"x", "y", "z"}}});
  return *std::move(s);
}

TEST(TableTest, AppendAndAccess) {
  StatusOr<CategoricalTable> t = CategoricalTable::Create(MakeSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->AppendRow({0, 2}).ok());
  EXPECT_TRUE(t->AppendRow({1, 0}).ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->Value(0, 1), 2);
  EXPECT_EQ(t->Row(1), (std::vector<uint8_t>{1, 0}));
}

TEST(TableTest, AppendValidation) {
  StatusOr<CategoricalTable> t = CategoricalTable::Create(MakeSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->AppendRow({0}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t->AppendRow({0, 3}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(t->num_rows(), 0u);
}

TEST(TableTest, SetValue) {
  StatusOr<CategoricalTable> t = CategoricalTable::Create(MakeSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AppendRow({0, 0}).ok());
  t->SetValue(0, 1, 2);
  EXPECT_EQ(t->Value(0, 1), 2);
}

TEST(TableTest, JointHistogramFullDomain) {
  StatusOr<CategoricalTable> t = CategoricalTable::Create(MakeSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AppendRow({0, 0}).ok());
  ASSERT_TRUE(t->AppendRow({0, 0}).ok());
  ASSERT_TRUE(t->AppendRow({1, 2}).ok());
  DomainIndexer idx = DomainIndexer::OverAllAttributes(t->schema());
  linalg::Vector h = t->JointHistogram(idx);
  ASSERT_EQ(h.size(), 6u);
  EXPECT_DOUBLE_EQ(h[0], 2.0);  // (0, 0)
  EXPECT_DOUBLE_EQ(h[5], 1.0);  // (1, 2)
  EXPECT_DOUBLE_EQ(h.Sum(), 3.0);
}

TEST(TableTest, JointHistogramSubset) {
  StatusOr<CategoricalTable> t = CategoricalTable::Create(MakeSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AppendRow({0, 1}).ok());
  ASSERT_TRUE(t->AppendRow({1, 1}).ok());
  StatusOr<DomainIndexer> idx = DomainIndexer::OverSubset(t->schema(), {1});
  ASSERT_TRUE(idx.ok());
  linalg::Vector h = t->JointHistogram(*idx);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h[1], 2.0);
}

TEST(TableTest, Marginal) {
  StatusOr<CategoricalTable> t = CategoricalTable::Create(MakeSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AppendRow({0, 0}).ok());
  ASSERT_TRUE(t->AppendRow({0, 1}).ok());
  ASSERT_TRUE(t->AppendRow({1, 1}).ok());
  ASSERT_TRUE(t->AppendRow({1, 1}).ok());
  linalg::Vector m = t->Marginal(1);
  EXPECT_DOUBLE_EQ(m[0], 0.25);
  EXPECT_DOUBLE_EQ(m[1], 0.75);
  EXPECT_DOUBLE_EQ(m[2], 0.0);
}

TEST(TableTest, ColumnAccessIsContiguous) {
  StatusOr<CategoricalTable> t = CategoricalTable::Create(MakeSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AppendRow({0, 2}).ok());
  ASSERT_TRUE(t->AppendRow({1, 1}).ok());
  const std::vector<uint8_t>& col = t->Column(1);
  EXPECT_EQ(col, (std::vector<uint8_t>{2, 1}));
}

TEST(TableTest, AppendZeroRowsAndMutableColumns) {
  StatusOr<CategoricalTable> t = CategoricalTable::Create(MakeSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AppendRow({1, 2}).ok());
  t->AppendZeroRows(3);
  EXPECT_EQ(t->num_rows(), 4u);
  EXPECT_EQ(t->Value(0, 1), 2);  // existing data untouched
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(t->Value(i, 0), 0);
    EXPECT_EQ(t->Value(i, 1), 0);
  }
  t->MutableColumnData(1)[2] = 1;
  EXPECT_EQ(t->Value(2, 1), 1);
}

}  // namespace
}  // namespace data
}  // namespace frapp
