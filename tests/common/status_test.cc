#include "frapp/common/status.h"

#include <gtest/gtest.h>

namespace frapp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

struct FactoryCase {
  Status (*factory)(std::string);
  StatusCode code;
  const char* name;
};

class StatusFactoryTest : public ::testing::TestWithParam<FactoryCase> {};

TEST_P(StatusFactoryTest, FactorySetsCodeAndMessage) {
  const FactoryCase& c = GetParam();
  Status s = c.factory("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), c.code);
  EXPECT_EQ(s.message(), "boom");
  EXPECT_EQ(s.ToString(), std::string(c.name) + ": boom");
}

INSTANTIATE_TEST_SUITE_P(
    AllFactories, StatusFactoryTest,
    ::testing::Values(
        FactoryCase{&Status::InvalidArgument, StatusCode::kInvalidArgument,
                    "InvalidArgument"},
        FactoryCase{&Status::FailedPrecondition, StatusCode::kFailedPrecondition,
                    "FailedPrecondition"},
        FactoryCase{&Status::NotFound, StatusCode::kNotFound, "NotFound"},
        FactoryCase{&Status::OutOfRange, StatusCode::kOutOfRange, "OutOfRange"},
        FactoryCase{&Status::NumericalError, StatusCode::kNumericalError,
                    "NumericalError"},
        FactoryCase{&Status::IOError, StatusCode::kIOError, "IOError"},
        FactoryCase{&Status::Unimplemented, StatusCode::kUnimplemented,
                    "Unimplemented"},
        FactoryCase{&Status::Internal, StatusCode::kInternal, "Internal"}));

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(StatusTest, CopyIsCheapAndIndependent) {
  Status a = Status::Internal("shared");
  Status b = a;
  EXPECT_EQ(a, b);
  a = Status::OK();
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.message(), "shared");
}

TEST(StatusTest, OkCodeWithMessageNormalizesToOk) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

Status FailsThrough(bool fail) {
  FRAPP_RETURN_IF_ERROR(fail ? Status::IOError("inner") : Status::OK());
  return Status::Internal("reached-end");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough(true).code(), StatusCode::kIOError);
  EXPECT_EQ(FailsThrough(false).code(), StatusCode::kInternal);
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNumericalError), "NumericalError");
}

}  // namespace
}  // namespace frapp
