#include "frapp/common/string_util.h"

#include <gtest/gtest.h>

namespace frapp {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StripWhitespaceTest, Strips) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\nabc\r "), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("no-op"), "no-op");
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ParseDoubleTest, ValidInputs) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e-3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2e-3);
  EXPECT_TRUE(ParseDouble("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ParseDoubleTest, InvalidInputs) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("  ", &v));
}

TEST(ParseUint64Test, ValidInputs) {
  unsigned long long v = 0;
  EXPECT_TRUE(ParseUint64("123", &v));
  EXPECT_EQ(v, 123ull);
  EXPECT_TRUE(ParseUint64(" 0 ", &v));
  EXPECT_EQ(v, 0ull);
}

TEST(ParseUint64Test, InvalidInputs) {
  unsigned long long v = 0;
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12.5", &v));
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("x", &v));
}

TEST(FormatSignificantTest, RoundsToSignificantDigits) {
  EXPECT_EQ(FormatSignificant(123.456, 4), "123.5");
  EXPECT_EQ(FormatSignificant(0.0001234, 2), "0.00012");
}

}  // namespace
}  // namespace frapp
