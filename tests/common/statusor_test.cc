#include "frapp/common/statusor.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace frapp {
namespace {

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, ValueOrFallsBack) {
  StatusOr<int> err = Status::Internal("x");
  EXPECT_EQ(err.value_or(7), 7);
  StatusOr<int> ok = 3;
  EXPECT_EQ(ok.value_or(7), 3);
}

TEST(StatusOrTest, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusOrTest, MutableAccess) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2};
  v->push_back(3);
  EXPECT_EQ(v->size(), 3u);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  FRAPP_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(StatusOrTest, AssignOrReturnChains) {
  StatusOr<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  StatusOr<int> fail_outer = Quarter(9);
  EXPECT_EQ(fail_outer.status().code(), StatusCode::kInvalidArgument);

  StatusOr<int> fail_inner = Quarter(6);  // 6/2 = 3, odd
  EXPECT_EQ(fail_inner.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> v = Status::Internal("broken");
  EXPECT_DEATH((void)v.value(), "broken");
}

TEST(StatusOrDeathTest, OkStatusWithoutValueAborts) {
  EXPECT_DEATH(StatusOr<int>{Status::OK()}, "OK status");
}

}  // namespace
}  // namespace frapp
