#include "frapp/common/cpuinfo.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace frapp {
namespace common {
namespace {

TEST(CpuInfoTest, DetectionIsDeterministic) {
  const CpuInfo a = internal::DetectCpuInfo();
  const CpuInfo b = internal::DetectCpuInfo();
  EXPECT_EQ(a.features.avx2, b.features.avx2);
  EXPECT_EQ(a.features.avx512vpopcntdq, b.features.avx512vpopcntdq);
  EXPECT_EQ(a.cache.l1d_bytes, b.cache.l1d_bytes);
  EXPECT_EQ(a.cache.l2_bytes, b.cache.l2_bytes);
  EXPECT_EQ(a.logical_cpus, b.logical_cpus);
  EXPECT_EQ(a.physical_cores, b.physical_cores);
  EXPECT_EQ(a.physical_core_cpus, b.physical_core_cpus);
}

TEST(CpuInfoTest, FieldsAreSaneOnAnyHost) {
  const CpuInfo& info = GetCpuInfo();
  // Cache sizes keep their safe defaults when detection fails, so they are
  // never zero and the tiling math never divides by zero.
  EXPECT_GE(info.cache.l1d_bytes, 4u * 1024);
  EXPECT_GE(info.cache.l2_bytes, 64u * 1024);
  EXPECT_GE(info.cache.line_bytes, 32u);
  EXPECT_GE(info.logical_cpus, 1u);
  EXPECT_GE(info.physical_cores, 1u);
  EXPECT_LE(info.physical_cores, info.logical_cpus);
  // Pinning targets: one representative cpu id per physical core, sorted,
  // unique, and in range for the machine.
  ASSERT_EQ(info.physical_core_cpus.size(), info.physical_cores);
  EXPECT_TRUE(std::is_sorted(info.physical_core_cpus.begin(),
                             info.physical_core_cpus.end()));
  EXPECT_EQ(std::adjacent_find(info.physical_core_cpus.begin(),
                               info.physical_core_cpus.end()),
            info.physical_core_cpus.end());
  for (int cpu : info.physical_core_cpus) EXPECT_GE(cpu, 0);
}

TEST(CpuInfoTest, GetCpuInfoReturnsOneCachedInstance) {
  EXPECT_EQ(&GetCpuInfo(), &GetCpuInfo());
}

TEST(CpuInfoTest, SummaryMentionsEverySection) {
  const std::string summary = CpuInfoSummary(GetCpuInfo());
  EXPECT_NE(summary.find("isa features"), std::string::npos);
  EXPECT_NE(summary.find("avx512vpopcntdq"), std::string::npos);
  EXPECT_NE(summary.find("cache geometry"), std::string::npos);
  EXPECT_NE(summary.find("topology"), std::string::npos);
  EXPECT_NE(summary.find("physical cores"), std::string::npos);
}

#if defined(__x86_64__) || defined(__i386__)
TEST(CpuInfoTest, FeatureLadderIsMonotone) {
  // The x86 feature ladder never inverts: vpopcntdq implies avx512f,
  // avx512f implies avx2 on every shipping core, avx2 implies sse4.2.
  const CpuFeatures& f = GetCpuInfo().features;
  if (f.avx512vpopcntdq) EXPECT_TRUE(f.avx512f);
  if (f.avx512f) EXPECT_TRUE(f.avx2);
  if (f.avx2) EXPECT_TRUE(f.sse42);
}
#endif

}  // namespace
}  // namespace common
}  // namespace frapp
