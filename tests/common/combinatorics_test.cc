#include "frapp/common/combinatorics.h"

#include <gtest/gtest.h>

namespace frapp {
namespace {

TEST(BinomialCoefficientTest, KnownValues) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(6, 3), 20.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(23, 6), 100947.0);
}

TEST(BinomialCoefficientTest, OutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(3, 4), 0.0);
}

TEST(BinomialCoefficientTest, PascalIdentity) {
  for (size_t n = 1; n < 20; ++n) {
    for (size_t k = 1; k <= n; ++k) {
      EXPECT_NEAR(BinomialCoefficient(n, k),
                  BinomialCoefficient(n - 1, k - 1) + BinomialCoefficient(n - 1, k),
                  1e-6)
          << "n=" << n << " k=" << k;
    }
  }
}

class BinomialPmfTest : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(BinomialPmfTest, SumsToOne) {
  const auto [n, p] = GetParam();
  double total = 0.0;
  for (size_t k = 0; k <= n; ++k) total += BinomialPmf(k, n, p);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_P(BinomialPmfTest, MeanIsNp) {
  const auto [n, p] = GetParam();
  double mean = 0.0;
  for (size_t k = 0; k <= n; ++k) {
    mean += static_cast<double>(k) * BinomialPmf(k, n, p);
  }
  EXPECT_NEAR(mean, static_cast<double>(n) * p, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialPmfTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 5, 10, 23),
                       ::testing::Values(0.1, 0.494, 0.5, 0.9)));

TEST(BinomialPmfTest, OutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 4, 0.5), 0.0);
}

TEST(HypergeometricPmfTest, SumsToOne) {
  const size_t population = 10, successes = 4, draws = 3;
  double total = 0.0;
  for (size_t k = 0; k <= draws; ++k) {
    total += HypergeometricPmf(k, population, successes, draws);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HypergeometricPmfTest, KnownValue) {
  // Draw 2 from {2 marked, 2 unmarked}: P(both marked) = 1/6.
  EXPECT_NEAR(HypergeometricPmf(2, 4, 2, 2), 1.0 / 6.0, 1e-12);
}

TEST(HypergeometricPmfTest, MeanMatchesFormula) {
  const size_t population = 12, successes = 5, draws = 6;
  double mean = 0.0;
  for (size_t k = 0; k <= draws; ++k) {
    mean += static_cast<double>(k) *
            HypergeometricPmf(k, population, successes, draws);
  }
  EXPECT_NEAR(mean,
              static_cast<double>(draws) * successes / static_cast<double>(population),
              1e-10);
}

TEST(HypergeometricPmfTest, InfeasibleIsZero) {
  EXPECT_DOUBLE_EQ(HypergeometricPmf(3, 10, 2, 5), 0.0);   // k > successes
  EXPECT_DOUBLE_EQ(HypergeometricPmf(0, 10, 8, 5), 0.0);   // too few unmarked
}

}  // namespace
}  // namespace frapp
