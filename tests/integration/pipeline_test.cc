// End-to-end integration: the full paper pipeline — generate data, perturb,
// mine with reconstruction, and score — at reduced scale. These tests check
// the SHAPE claims of Section 7: DET-GD/RAN-GD stay accurate where
// MASK/C&P degrade, and condition numbers explain why.

#include <gtest/gtest.h>

#include "frapp/core/mechanism.h"
#include "frapp/data/census.h"
#include "frapp/eval/experiment.h"
#include "frapp/mining/rules.h"

namespace frapp {
namespace {

constexpr double kGamma = 19.0;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatusOr<data::CategoricalTable> t = data::census::MakeDataset(40000, 4242);
    ASSERT_TRUE(t.ok());
    table_ = new data::CategoricalTable(*std::move(t));
    mining::AprioriOptions options;
    options.min_support = 0.02;
    StatusOr<mining::AprioriResult> truth = mining::MineExact(*table_, options);
    ASSERT_TRUE(truth.ok());
    truth_ = new mining::AprioriResult(*std::move(truth));
  }

  static void TearDownTestSuite() {
    delete table_;
    delete truth_;
    table_ = nullptr;
    truth_ = nullptr;
  }

  static data::CategoricalTable* table_;
  static mining::AprioriResult* truth_;
};

data::CategoricalTable* PipelineTest::table_ = nullptr;
mining::AprioriResult* PipelineTest::truth_ = nullptr;

TEST_F(PipelineTest, ExactMiningFindsLongItemsets) {
  // The CENSUS stand-in must produce frequent itemsets up to length >= 5
  // (the paper's Table 3 reaches length 6 at full scale).
  EXPECT_GE(truth_->MaxLength(), 5u);
  EXPECT_EQ(truth_->OfLength(1).size(), 19u);
  EXPECT_GT(truth_->OfLength(3).size(), 50u);
}

TEST_F(PipelineTest, DetGdAccurateAtShortLengths) {
  StatusOr<std::unique_ptr<core::DetGdMechanism>> m =
      core::DetGdMechanism::Create(table_->schema(), kGamma);
  ASSERT_TRUE(m.ok());
  eval::ExperimentConfig config;
  config.perturb_seed = 1;
  StatusOr<eval::MechanismRun> run = eval::RunMechanism(**m, *table_, *truth_, config);
  ASSERT_TRUE(run.ok());

  // Singletons: the large majority is identified. (Itemsets sitting on the
  // 2% threshold are inherent coin flips at condition number ~112, so the
  // bound is not zero.)
  ASSERT_FALSE(run->accuracy.empty());
  const eval::LengthAccuracy& l1 = run->accuracy[0];
  EXPECT_EQ(l1.length, 1u);
  EXPECT_LT(l1.sigma_minus, 30.0);
  EXPECT_LT(l1.sigma_plus, 30.0);
  EXPECT_GT(l1.correct, 13u);  // >= 14 of the 19 true singletons
}

TEST_F(PipelineTest, RanGdTracksDetGdClosely) {
  // Paper Section 7: RAN-GD's accuracy is only marginally below DET-GD's.
  const double x = 1.0 / (kGamma + 1999.0);
  StatusOr<std::unique_ptr<core::DetGdMechanism>> det =
      core::DetGdMechanism::Create(table_->schema(), kGamma);
  StatusOr<std::unique_ptr<core::RanGdMechanism>> ran =
      core::RanGdMechanism::Create(table_->schema(), kGamma, kGamma * x / 2.0);
  ASSERT_TRUE(det.ok() && ran.ok());

  eval::ExperimentConfig config;
  config.perturb_seed = 2;
  StatusOr<eval::MechanismRun> det_run =
      eval::RunMechanism(**det, *table_, *truth_, config);
  StatusOr<eval::MechanismRun> ran_run =
      eval::RunMechanism(**ran, *table_, *truth_, config);
  ASSERT_TRUE(det_run.ok() && ran_run.ok());

  const eval::LengthAccuracy det_total = eval::OverallAccuracy(det_run->accuracy);
  const eval::LengthAccuracy ran_total = eval::OverallAccuracy(ran_run->accuracy);
  // Identity errors within 20 percentage points of each other overall.
  EXPECT_NEAR(ran_total.sigma_minus, det_total.sigma_minus, 20.0);
}

TEST_F(PipelineTest, MaskDegradesAtLongLengths) {
  // Paper: MASK finds no itemsets beyond ~length 4 on CENSUS -> sigma- hits
  // 100% while DET-GD still finds a large share.
  StatusOr<std::unique_ptr<core::MaskMechanism>> mask =
      core::MaskMechanism::Create(table_->schema(), kGamma);
  StatusOr<std::unique_ptr<core::DetGdMechanism>> det =
      core::DetGdMechanism::Create(table_->schema(), kGamma);
  ASSERT_TRUE(mask.ok() && det.ok());

  eval::ExperimentConfig config;
  config.perturb_seed = 3;
  StatusOr<eval::MechanismRun> mask_run =
      eval::RunMechanism(**mask, *table_, *truth_, config);
  StatusOr<eval::MechanismRun> det_run =
      eval::RunMechanism(**det, *table_, *truth_, config);
  ASSERT_TRUE(mask_run.ok() && det_run.ok());

  const size_t long_len = std::min<size_t>(truth_->MaxLength(), 5);
  ASSERT_GE(long_len, 4u);
  const auto correct_at = [&](const eval::MechanismRun& run, size_t len) {
    for (const auto& acc : run.accuracy) {
      if (acc.length == len) return acc.correct;
    }
    return size_t{0};
  };
  // MASK correctly recovers (almost) none of the long itemsets...
  const size_t mask_correct = correct_at(*mask_run, long_len);
  EXPECT_LE(mask_correct, truth_->OfLength(long_len).size() / 4);
  // ...while DET-GD recovers strictly (and substantially) more.
  const size_t det_correct = correct_at(*det_run, long_len);
  EXPECT_GT(det_correct, 2 * mask_correct);
  EXPECT_GT(det_correct, truth_->OfLength(long_len).size() / 4);
}

TEST_F(PipelineTest, ConditionNumbersExplainTheAccuracyOrdering) {
  data::CategoricalSchema schema = table_->schema();
  StatusOr<std::unique_ptr<core::DetGdMechanism>> det =
      core::DetGdMechanism::Create(schema, kGamma);
  StatusOr<std::unique_ptr<core::MaskMechanism>> mask =
      core::MaskMechanism::Create(schema, kGamma);
  StatusOr<std::unique_ptr<core::CutPasteMechanism>> cp =
      core::CutPasteMechanism::Create(schema, 3, 0.494);
  ASSERT_TRUE(det.ok() && mask.ok() && cp.ok());
  for (size_t k = 3; k <= 6; ++k) {
    StatusOr<double> d = (*det)->ConditionNumberForLength(k);
    StatusOr<double> m = (*mask)->ConditionNumberForLength(k);
    StatusOr<double> c = (*cp)->ConditionNumberForLength(k);
    ASSERT_TRUE(d.ok() && m.ok() && c.ok());
    EXPECT_LT(*d, *m) << "k=" << k;
    EXPECT_LT(*d, *c) << "k=" << k;
  }
}

TEST_F(PipelineTest, RulesFromReconstructedSupportsAreSane) {
  StatusOr<std::unique_ptr<core::DetGdMechanism>> m =
      core::DetGdMechanism::Create(table_->schema(), kGamma);
  ASSERT_TRUE(m.ok());
  eval::ExperimentConfig config;
  config.perturb_seed = 5;
  StatusOr<eval::MechanismRun> run = eval::RunMechanism(**m, *table_, *truth_, config);
  ASSERT_TRUE(run.ok());

  std::vector<mining::AssociationRule> rules = mining::GenerateRules(run->mined, 0.7);
  EXPECT_FALSE(rules.empty());
  for (const auto& rule : rules) {
    EXPECT_GE(rule.confidence, 0.7);
    EXPECT_FALSE(rule.antecedent.empty());
    EXPECT_FALSE(rule.consequent.empty());
  }
}

TEST_F(PipelineTest, PerturbationIsDeterministicGivenSeed) {
  StatusOr<std::unique_ptr<core::DetGdMechanism>> m1 =
      core::DetGdMechanism::Create(table_->schema(), kGamma);
  StatusOr<std::unique_ptr<core::DetGdMechanism>> m2 =
      core::DetGdMechanism::Create(table_->schema(), kGamma);
  ASSERT_TRUE(m1.ok() && m2.ok());
  random::Pcg64 rng1(77), rng2(77);
  ASSERT_TRUE((*m1)->Prepare(*table_, rng1).ok());
  ASSERT_TRUE((*m2)->Prepare(*table_, rng2).ok());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ((*m1)->perturbed().Row(i), (*m2)->perturbed().Row(i));
  }
}

}  // namespace
}  // namespace frapp
