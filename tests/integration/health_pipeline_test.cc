// HEALTH-dataset integration (reduced scale): the paper's Figure 2 shapes
// and the designer/error-analysis workflow on the 7-attribute schema.

#include <gtest/gtest.h>

#include <cmath>

#include "frapp/core/designer.h"
#include "frapp/core/error_analysis.h"
#include "frapp/core/mechanism.h"
#include "frapp/data/health.h"
#include "frapp/eval/experiment.h"

namespace frapp {
namespace {

constexpr double kGamma = 19.0;

class HealthPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatusOr<data::CategoricalTable> t = data::health::MakeDataset(40000, 777);
    ASSERT_TRUE(t.ok());
    table_ = new data::CategoricalTable(*std::move(t));
    mining::AprioriOptions options;
    options.min_support = 0.02;
    StatusOr<mining::AprioriResult> truth = mining::MineExact(*table_, options);
    ASSERT_TRUE(truth.ok());
    truth_ = new mining::AprioriResult(*std::move(truth));
  }

  static void TearDownTestSuite() {
    delete table_;
    delete truth_;
    table_ = nullptr;
    truth_ = nullptr;
  }

  static data::CategoricalTable* table_;
  static mining::AprioriResult* truth_;
};

data::CategoricalTable* HealthPipelineTest::table_ = nullptr;
mining::AprioriResult* HealthPipelineTest::truth_ = nullptr;

TEST_F(HealthPipelineTest, TruthReachesDeepItemsets) {
  EXPECT_EQ(truth_->OfLength(1).size(), 23u);
  EXPECT_GE(truth_->MaxLength(), 6u);
}

TEST_F(HealthPipelineTest, CutPasteStructurallyBlindBeyondK) {
  // On the 7-attribute schema, C&P with K = 3 recovers nothing at length
  // >= 4 (rank deficiency), while DET-GD still does.
  auto cp = *core::CutPasteMechanism::Create(table_->schema(), 3, 0.494);
  auto det = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  eval::ExperimentConfig config;
  config.perturb_seed = 9;
  const eval::MechanismRun cp_run =
      *eval::RunMechanism(*cp, *table_, *truth_, config);
  const eval::MechanismRun det_run =
      *eval::RunMechanism(*det, *table_, *truth_, config);

  EXPECT_TRUE(cp_run.mined.OfLength(4).empty());
  size_t det_correct_4 = 0;
  for (const auto& acc : det_run.accuracy) {
    if (acc.length == 4) det_correct_4 = acc.correct;
  }
  EXPECT_GT(det_correct_4, 0u);
}

TEST_F(HealthPipelineTest, DesignerEndToEndOnHealth) {
  core::DesignOptions options;
  options.randomization_fraction = 0.5;
  StatusOr<core::FrappDesign> design =
      core::DesignMechanism(table_->schema(), options);
  ASSERT_TRUE(design.ok());
  EXPECT_NEAR(design->condition_number, (19.0 + 7499.0) / 18.0, 1e-9);

  random::Pcg64 rng(10);
  ASSERT_TRUE(design->mechanism->Prepare(*table_, rng).ok());
  StatusOr<double> est = design->mechanism->estimator().EstimateSupport(
      *mining::Itemset::Create({{4, 1}}));
  ASSERT_TRUE(est.ok());
  // Singleton noise on HEALTH is sigma ~ 1 at this N; wiring bugs are 10x+.
  EXPECT_LT(std::fabs(*est - 0.52), 4.0);
}

TEST_F(HealthPipelineTest, ErrorBudgetExplainsWhatGetsFound) {
  // Itemsets whose distance to the threshold exceeds ~3 predicted sigmas
  // should essentially always be classified correctly by DET-GD.
  auto rec = *core::GammaSubsetReconstructor::Create(
      kGamma, table_->schema().DomainSize());
  auto det = *core::DetGdMechanism::Create(table_->schema(), kGamma);
  eval::ExperimentConfig config;
  config.perturb_seed = 21;
  const eval::MechanismRun run = *eval::RunMechanism(*det, *table_, *truth_, config);

  std::unordered_map<mining::Itemset, double, mining::Itemset::Hash> found;
  for (const auto& level : run.mined.by_length) {
    for (const auto& f : level) found.emplace(f.itemset, f.support);
  }

  size_t confident = 0, confident_found = 0;
  for (size_t k = 4; k <= truth_->MaxLength(); ++k) {
    for (const auto& f : truth_->OfLength(k)) {
      uint64_t n_cs = 1;
      for (const auto& item : f.itemset.items()) {
        n_cs *= table_->schema().Cardinality(item.attribute);
      }
      const double sigma = *core::ReconstructedSupportStddev(
          rec, f.support, n_cs, table_->num_rows());
      if (f.support - 0.02 > 3.0 * sigma) {
        ++confident;
        confident_found += found.count(f.itemset);
      }
    }
  }
  if (confident > 0) {
    EXPECT_GT(static_cast<double>(confident_found) / confident, 0.9);
  }
}

}  // namespace
}  // namespace frapp
