#include "frapp/eval/reporting.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace frapp {
namespace eval {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
  // Four lines: header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTableDeathTest, RowArityChecked) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "FRAPP_CHECK");
}

TEST(CellTest, FormatsNumbersAndNans) {
  EXPECT_EQ(Cell(1.5), "1.5");
  EXPECT_EQ(Cell(std::nan("")), "-");
  EXPECT_EQ(Cell(std::numeric_limits<double>::infinity()), "-");
  EXPECT_EQ(Cell(123.456, 2), "1.2e+02");
}

TEST(WriteCsvTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/frapp_reporting_test.csv";
  Status s = WriteCsv(path, {"x", "y"}, {{"1", "2"}, {"3", "4"}});
  ASSERT_TRUE(s.ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "x,y\n1,2\n3,4\n");
  std::remove(path.c_str());
}

TEST(WriteCsvTest, BadPathIsIOError) {
  EXPECT_EQ(WriteCsv("/nonexistent-dir/x.csv", {"a"}, {}).code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace eval
}  // namespace frapp
