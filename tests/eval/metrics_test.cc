#include "frapp/eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace frapp {
namespace eval {
namespace {

using mining::AprioriResult;
using mining::Itemset;

AprioriResult MakeResult(
    const std::vector<std::vector<std::pair<Itemset, double>>>& levels) {
  AprioriResult r;
  for (const auto& level : levels) {
    std::vector<mining::FrequentItemset> v;
    for (const auto& [itemset, support] : level) v.push_back({itemset, support});
    r.by_length.push_back(std::move(v));
  }
  return r;
}

TEST(MetricsTest, PerfectMatchHasZeroErrors) {
  AprioriResult truth = MakeResult({{{*Itemset::Create({{0, 0}}), 0.5}}});
  std::vector<LengthAccuracy> acc = CompareMiningResults(truth, truth);
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_EQ(acc[0].length, 1u);
  EXPECT_DOUBLE_EQ(acc[0].support_error, 0.0);
  EXPECT_DOUBLE_EQ(acc[0].sigma_minus, 0.0);
  EXPECT_DOUBLE_EQ(acc[0].sigma_plus, 0.0);
}

TEST(MetricsTest, SupportErrorIsMeanRelativePercentOverCorrect) {
  Itemset a = *Itemset::Create({{0, 0}});
  Itemset b = *Itemset::Create({{0, 1}});
  AprioriResult truth = MakeResult({{{a, 0.5}, {b, 0.2}}});
  // a estimated 10% low, b estimated 50% high.
  AprioriResult est = MakeResult({{{a, 0.45}, {b, 0.3}}});
  std::vector<LengthAccuracy> acc = CompareMiningResults(truth, est);
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_NEAR(acc[0].support_error, (10.0 + 50.0) / 2.0, 1e-9);
}

TEST(MetricsTest, FalseNegativesAndPositives) {
  Itemset a = *Itemset::Create({{0, 0}});
  Itemset b = *Itemset::Create({{0, 1}});
  Itemset c = *Itemset::Create({{0, 2}});
  // Truth: {a, b}. Estimated: {b, c} -> 1 false negative (a), 1 false
  // positive (c) relative to |F| = 2.
  AprioriResult truth = MakeResult({{{a, 0.5}, {b, 0.2}}});
  AprioriResult est = MakeResult({{{b, 0.22}, {c, 0.1}}});
  std::vector<LengthAccuracy> acc = CompareMiningResults(truth, est);
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_EQ(acc[0].true_frequent, 2u);
  EXPECT_EQ(acc[0].found_frequent, 2u);
  EXPECT_EQ(acc[0].correct, 1u);
  EXPECT_DOUBLE_EQ(acc[0].sigma_minus, 50.0);
  EXPECT_DOUBLE_EQ(acc[0].sigma_plus, 50.0);
}

TEST(MetricsTest, MechanismFindsNothing) {
  Itemset a = *Itemset::Create({{0, 0}});
  AprioriResult truth = MakeResult({{{a, 0.5}}});
  AprioriResult est = MakeResult({});
  std::vector<LengthAccuracy> acc = CompareMiningResults(truth, est);
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_TRUE(std::isnan(acc[0].support_error));  // nothing correctly found
  EXPECT_DOUBLE_EQ(acc[0].sigma_minus, 100.0);
  EXPECT_DOUBLE_EQ(acc[0].sigma_plus, 0.0);
}

TEST(MetricsTest, SpuriousLengthHasNanIdentityErrors) {
  // Estimated finds length-2 itemsets where truth has none: |F| = 0 makes
  // the percentage identity errors undefined.
  Itemset a = *Itemset::Create({{0, 0}});
  Itemset ab = *Itemset::Create({{0, 0}, {1, 0}});
  AprioriResult truth = MakeResult({{{a, 0.5}}});
  AprioriResult est = MakeResult({{{a, 0.5}}, {{ab, 0.3}}});
  std::vector<LengthAccuracy> acc = CompareMiningResults(truth, est);
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_TRUE(std::isnan(acc[1].sigma_minus));
  EXPECT_TRUE(std::isnan(acc[1].sigma_plus));
  EXPECT_EQ(acc[1].found_frequent, 1u);
}

TEST(MetricsTest, EmptyLengthsAreOmitted) {
  Itemset a = *Itemset::Create({{0, 0}});
  Itemset abc = *Itemset::Create({{0, 0}, {1, 0}, {2, 0}});
  AprioriResult truth = MakeResult({{{a, 0.5}}, {}, {{abc, 0.1}}});
  std::vector<LengthAccuracy> acc = CompareMiningResults(truth, truth);
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc[0].length, 1u);
  EXPECT_EQ(acc[1].length, 3u);
}

TEST(MetricsTest, OverallAggregation) {
  Itemset a = *Itemset::Create({{0, 0}});
  Itemset b = *Itemset::Create({{1, 0}});
  Itemset ab = *Itemset::Create({{0, 0}, {1, 0}});
  AprioriResult truth = MakeResult({{{a, 0.5}, {b, 0.4}}, {{ab, 0.2}}});
  AprioriResult est = MakeResult({{{a, 0.55}, {b, 0.4}}, {}});
  std::vector<LengthAccuracy> per_length = CompareMiningResults(truth, est);
  LengthAccuracy overall = OverallAccuracy(per_length);
  EXPECT_EQ(overall.true_frequent, 3u);
  EXPECT_EQ(overall.found_frequent, 2u);
  EXPECT_EQ(overall.correct, 2u);
  EXPECT_NEAR(overall.support_error, 5.0, 1e-9);  // (10% + 0%) / 2
  EXPECT_NEAR(overall.sigma_minus, 100.0 / 3.0, 1e-9);
  EXPECT_NEAR(overall.sigma_plus, 0.0, 1e-9);
}

TEST(MetricsTest, OverallOfEmptyIsNan) {
  LengthAccuracy overall = OverallAccuracy({});
  EXPECT_TRUE(std::isnan(overall.support_error));
  EXPECT_TRUE(std::isnan(overall.sigma_minus));
}

}  // namespace
}  // namespace eval
}  // namespace frapp
