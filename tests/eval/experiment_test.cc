#include "frapp/eval/experiment.h"

#include <gtest/gtest.h>

#include "frapp/data/census.h"

namespace frapp {
namespace eval {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<data::CategoricalTable> t = data::census::MakeDataset(8000, 11);
    ASSERT_TRUE(t.ok());
    table_.emplace(*std::move(t));
    mining::AprioriOptions options;
    options.min_support = 0.02;
    StatusOr<mining::AprioriResult> truth = mining::MineExact(*table_, options);
    ASSERT_TRUE(truth.ok());
    truth_.emplace(*std::move(truth));
  }

  std::optional<data::CategoricalTable> table_;
  std::optional<mining::AprioriResult> truth_;
};

TEST_F(ExperimentTest, RunMechanismProducesAccuracyPerLength) {
  auto mechanism = *core::DetGdMechanism::Create(table_->schema(), 19.0);
  ExperimentConfig config;
  config.perturb_seed = 5;
  StatusOr<MechanismRun> run = RunMechanism(*mechanism, *table_, *truth_, config);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->mechanism_name, "DET-GD");
  ASSERT_FALSE(run->accuracy.empty());
  EXPECT_EQ(run->accuracy[0].length, 1u);
  EXPECT_EQ(run->accuracy[0].true_frequent, truth_->OfLength(1).size());
}

TEST_F(ExperimentTest, SameSeedSameResult) {
  ExperimentConfig config;
  config.perturb_seed = 13;
  auto m1 = *core::DetGdMechanism::Create(table_->schema(), 19.0);
  auto m2 = *core::DetGdMechanism::Create(table_->schema(), 19.0);
  StatusOr<MechanismRun> a = RunMechanism(*m1, *table_, *truth_, config);
  StatusOr<MechanismRun> b = RunMechanism(*m2, *table_, *truth_, config);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->accuracy.size(), b->accuracy.size());
  for (size_t i = 0; i < a->accuracy.size(); ++i) {
    EXPECT_EQ(a->accuracy[i].correct, b->accuracy[i].correct);
    EXPECT_EQ(a->accuracy[i].found_frequent, b->accuracy[i].found_frequent);
  }
}

TEST_F(ExperimentTest, MaxLengthLimitsPasses) {
  auto mechanism = *core::DetGdMechanism::Create(table_->schema(), 19.0);
  ExperimentConfig config;
  config.max_length = 2;
  StatusOr<MechanismRun> run = RunMechanism(*mechanism, *table_, *truth_, config);
  ASSERT_TRUE(run.ok());
  EXPECT_LE(run->mined.MaxLength(), 2u);
}

TEST_F(ExperimentTest, BadThresholdPropagates) {
  auto mechanism = *core::DetGdMechanism::Create(table_->schema(), 19.0);
  ExperimentConfig config;
  config.min_support = 0.0;
  EXPECT_FALSE(RunMechanism(*mechanism, *table_, *truth_, config).ok());
}

}  // namespace
}  // namespace eval
}  // namespace frapp
