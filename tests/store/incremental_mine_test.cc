// The incremental mining claim: AppendAndMine over a count store is
// BIT-IDENTICAL to a from-scratch PrivacyPipeline mine of the same window —
// same itemsets, same support doubles, same candidate counts per pass —
// across mechanisms (categorical DET-GD and boolean MASK), source kinds
// (in-memory and binary file), thread counts, and append steps. Supporting
// claims: supmin may drift anywhere above the store's retention threshold
// with zero fallbacks, below it the mine still agrees (through recounts),
// and window expiry by subtraction equals a direct mine of the surviving
// window down to the saved store's bytes.

#include "frapp/store/incremental_mine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "frapp/data/census.h"
#include "frapp/data/shard_io.h"
#include "frapp/data/sharded_table.h"
#include "frapp/pipeline/privacy_pipeline.h"
#include "frapp/store/count_store.h"

namespace frapp {
namespace store {
namespace {

constexpr size_t kChunk = data::kShardAlignmentRows;

void ExpectSameMining(const mining::AprioriResult& got,
                      const mining::AprioriResult& want) {
  ASSERT_EQ(got.candidates_per_pass, want.candidates_per_pass);
  ASSERT_EQ(got.by_length.size(), want.by_length.size());
  for (size_t k = 0; k < want.by_length.size(); ++k) {
    ASSERT_EQ(got.by_length[k].size(), want.by_length[k].size())
        << "length " << k + 1;
    for (size_t i = 0; i < want.by_length[k].size(); ++i) {
      ASSERT_TRUE(got.by_length[k][i].itemset == want.by_length[k][i].itemset)
          << "length " << k + 1 << " rank " << i;
      // Bitwise double equality — the whole point of the design.
      ASSERT_EQ(got.by_length[k][i].support, want.by_length[k][i].support)
          << "length " << k + 1 << " rank " << i;
    }
  }
}

class IncrementalMineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StatusOr<data::CategoricalTable> t =
        data::census::MakeDataset(50000, data::census::kDefaultSeed);
    ASSERT_TRUE(t.ok());
    full_ = new data::CategoricalTable(*std::move(t));
  }
  static void TearDownTestSuite() {
    delete full_;
    full_ = nullptr;
  }

  static mining::AprioriResult Reference(const dist::MechanismSpec& spec,
                                         const data::CategoricalTable& prefix,
                                         const IncrementalOptions& options) {
    StatusOr<std::unique_ptr<core::Mechanism>> mech =
        dist::MakeMechanism(spec, prefix.schema());
    EXPECT_TRUE(mech.ok());
    pipeline::PipelineOptions popts;
    popts.num_shards = 3;
    popts.num_threads = options.num_threads;
    popts.perturb_seed = options.perturb_seed;
    popts.mining = options.mining;
    StatusOr<pipeline::PipelineResult> run =
        pipeline::PrivacyPipeline(popts).Run(**mech, prefix);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return run->mined;
  }

  static data::CategoricalTable* full_;
};

data::CategoricalTable* IncrementalMineTest::full_ = nullptr;

struct GridCase {
  const char* name;
  dist::MechanismSpec::Kind kind;
  bool binary_source;
  size_t threads;
};

class IncrementalGridTest : public IncrementalMineTest,
                            public ::testing::WithParamInterface<GridCase> {};

TEST_P(IncrementalGridTest, AppendStepsMatchFromScratchBitwise) {
  const GridCase& param = GetParam();
  dist::MechanismSpec spec;
  spec.kind = param.kind;

  IncrementalOptions options;
  options.mining.min_support = 0.02;
  options.num_threads = param.threads;
  options.source_id = std::string("census-grid-") + param.name;

  const std::string binary_path =
      ::testing::TempDir() + "/grid_" + param.name + ".frappbin";
  std::shared_ptr<data::CategoricalTable> current;
  const SourceFactory factory =
      [&]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    if (!param.binary_source) {
      std::unique_ptr<pipeline::TableSource> src =
          std::make_unique<pipeline::InMemoryTableSource>(*current, 3);
      return src;
    }
    FRAPP_ASSIGN_OR_RETURN(pipeline::BinaryTableSource src,
                           pipeline::BinaryTableSource::Open(
                               binary_path, full_->schema()));
    std::unique_ptr<pipeline::TableSource> out =
        std::make_unique<pipeline::BinaryTableSource>(std::move(src));
    return out;
  };

  CountStore cs(MakeStoreIdentity(spec, full_->schema(), options));
  // 2 chunks + tail, then +2 whole chunks, then the full unaligned 50k.
  const size_t steps[] = {2 * kChunk + 3616, 4 * kChunk + 4096, 50000};
  for (size_t step = 0; step < 3; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    const size_t rows = steps[step];
    StatusOr<data::CategoricalTable> prefix =
        data::CopyRowRange(*full_, {0, rows});
    ASSERT_TRUE(prefix.ok());
    current = std::make_shared<data::CategoricalTable>(*std::move(prefix));
    if (param.binary_source) {
      ASSERT_TRUE(data::WriteBinaryTable(*current, binary_path).ok());
    }

    StatusOr<IncrementalResult> run =
        AppendAndMine(cs, spec, factory, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ExpectSameMining(run->mined, Reference(spec, *current, options));

    EXPECT_EQ(run->stats.total_rows, rows);
    EXPECT_EQ(run->stats.tail_rows, rows % kChunk);
    EXPECT_EQ(run->stats.delta_chunks, 2u);
    if (step == 0) {
      EXPECT_TRUE(run->stats.store_created);
      EXPECT_EQ(run->stats.store_hits, 0u);
      EXPECT_EQ(run->stats.superset_fallbacks, 0u);
    } else {
      EXPECT_FALSE(run->stats.store_created);
      EXPECT_GT(run->stats.store_hits, 0u);
      // These appends are aggressive (+84%, +36%), so estimated supports
      // genuinely drift and a few candidates fall outside the previous
      // run's superset. Every such miss must be recovered by a fallback
      // recount — the bit-identity check above already proved the recovery
      // exact. Zero-miss behaviour on realistic appends is asserted by
      // SmallAppendsHitTheStoreEntirely.
      EXPECT_EQ(run->stats.superset_fallbacks, run->stats.store_misses);
    }
    EXPECT_EQ(cs.high_water(), rows / kChunk * kChunk);
    EXPECT_GT(cs.num_entries(), 0u);
  }
  std::remove(binary_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IncrementalGridTest,
    ::testing::Values(
        GridCase{"detgd-mem-1", dist::MechanismSpec::Kind::kDetGd, false, 1},
        GridCase{"detgd-mem-2", dist::MechanismSpec::Kind::kDetGd, false, 2},
        GridCase{"detgd-bin-2", dist::MechanismSpec::Kind::kDetGd, true, 2},
        GridCase{"mask-mem-1", dist::MechanismSpec::Kind::kMask, false, 1},
        GridCase{"mask-bin-1", dist::MechanismSpec::Kind::kMask, true, 1},
        GridCase{"mask-bin-2", dist::MechanismSpec::Kind::kMask, true, 2}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_F(IncrementalMineTest, SmallAppendsReadTheSourceOnce) {
  // The bench regime: a mined base grows by a few percent. Estimated
  // supports jitter on every append (joint-domain inversion amplifies count
  // noise), so some candidates flicker out of the retained superset and
  // miss the store — but every miss is recounted from the materialized
  // substrate: the source is opened EXACTLY ONCE per run and only the delta
  // chunks plus the tail are ever perturbed.
  for (const bool boolean : {false, true}) {
    SCOPED_TRACE(boolean ? "mask" : "det-gd");
    dist::MechanismSpec spec;
    if (boolean) spec.kind = dist::MechanismSpec::Kind::kMask;
    IncrementalOptions options;
    options.mining.min_support = 0.02;
    options.num_threads = 2;
    options.source_id = "census-small-append";

    std::shared_ptr<data::CategoricalTable> current;
    size_t opens = 0;
    const SourceFactory factory =
        [&]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
      ++opens;
      std::unique_ptr<pipeline::TableSource> src =
          std::make_unique<pipeline::InMemoryTableSource>(*current, 3);
      return src;
    };

    CountStore cs(MakeStoreIdentity(spec, full_->schema(), options));
    // +3% with one new whole chunk, then +1% landing entirely in the tail.
    const size_t steps[] = {48000, 49500, 50000};
    for (size_t step = 0; step < 3; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      StatusOr<data::CategoricalTable> prefix =
          data::CopyRowRange(*full_, {0, steps[step]});
      ASSERT_TRUE(prefix.ok());
      current = std::make_shared<data::CategoricalTable>(*std::move(prefix));

      const size_t opens_before = opens;
      StatusOr<IncrementalResult> run =
          AppendAndMine(cs, spec, factory, options);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(opens, opens_before + 1);
      ExpectSameMining(run->mined, Reference(spec, *current, options));
      if (step > 0) {
        EXPECT_GT(run->stats.store_hits, 0u);
        // Misses may happen (estimator jitter) but each one is served from
        // the substrate, never by re-reading or re-perturbing the source.
        EXPECT_EQ(run->stats.superset_fallbacks, run->stats.store_misses);
      }
      EXPECT_EQ(run->stats.delta_chunks, step == 0 ? 5u : step == 1 ? 1u : 0u);
      // The substrate tiles the stored window chunk for chunk.
      EXPECT_EQ(cs.substrate().size() * kChunk,
                cs.high_water() - cs.window_begin());
    }
  }
}

TEST_F(IncrementalMineTest, SupminDriftInsideMarginNeedsNoFallbacks) {
  dist::MechanismSpec spec;  // DET-GD
  IncrementalOptions options;
  options.mining.min_support = 0.02;
  options.superset_margin = 0.25;  // retention threshold 0.015
  options.num_threads = 2;
  options.source_id = "census-drift";

  StatusOr<data::CategoricalTable> prefix = data::CopyRowRange(*full_, {0, 50000});
  ASSERT_TRUE(prefix.ok());
  const SourceFactory factory =
      [&]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    std::unique_ptr<pipeline::TableSource> src =
        std::make_unique<pipeline::InMemoryTableSource>(*prefix, 0);
    return src;
  };

  CountStore cs(MakeStoreIdentity(spec, full_->schema(), options));
  StatusOr<IncrementalResult> first = AppendAndMine(cs, spec, factory, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Drift DOWN but above retention: every candidate is already
  // materialized — a pure lattice-walk re-run over stored counts.
  options.mining.min_support = 0.017;
  StatusOr<IncrementalResult> inside = AppendAndMine(cs, spec, factory, options);
  ASSERT_TRUE(inside.ok()) << inside.status().ToString();
  ExpectSameMining(inside->mined, Reference(spec, *prefix, options));
  EXPECT_EQ(inside->stats.superset_fallbacks, 0u);
  EXPECT_EQ(inside->stats.store_misses, 0u);
  EXPECT_EQ(inside->stats.delta_chunks, 0u);

  // Drift BELOW retention: the walk needs candidates the superset never
  // kept, so the stored range is recounted — slower, but the mine still
  // agrees bit for bit.
  options.mining.min_support = 0.005;
  StatusOr<IncrementalResult> below = AppendAndMine(cs, spec, factory, options);
  ASSERT_TRUE(below.ok()) << below.status().ToString();
  ExpectSameMining(below->mined, Reference(spec, *prefix, options));
  EXPECT_GT(below->stats.superset_fallbacks, 0u);
}

TEST_F(IncrementalMineTest, WindowExpirySubtractionMatchesDirectWindowMine) {
  dist::MechanismSpec spec;  // DET-GD
  IncrementalOptions options;
  options.mining.min_support = 0.02;
  options.num_threads = 2;
  options.source_id = "census-window";

  StatusOr<data::CategoricalTable> prefix = data::CopyRowRange(*full_, {0, 50000});
  ASSERT_TRUE(prefix.ok());
  const SourceFactory factory =
      [&]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    std::unique_ptr<pipeline::TableSource> src =
        std::make_unique<pipeline::InMemoryTableSource>(*prefix, 4);
    return src;
  };

  // Mine the full range, then expire the first two chunks by subtraction.
  CountStore subtracted(MakeStoreIdentity(spec, full_->schema(), options));
  ASSERT_TRUE(AppendAndMine(subtracted, spec, factory, options).ok());
  options.window_begin_row = 2 * kChunk;
  StatusOr<IncrementalResult> expired =
      AppendAndMine(subtracted, spec, factory, options);
  ASSERT_TRUE(expired.ok()) << expired.status().ToString();
  EXPECT_EQ(expired->stats.expired_chunks, 2u);
  EXPECT_EQ(expired->stats.delta_chunks, 0u);

  // Direct mine of the surviving window from an empty store. Seeded chunk
  // streams are GLOBAL, so this counts rows [2 chunks, 50000) exactly as
  // they were perturbed in the full pass.
  CountStore direct(MakeStoreIdentity(spec, full_->schema(), options));
  StatusOr<IncrementalResult> fresh =
      AppendAndMine(direct, spec, factory, options);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  ExpectSameMining(expired->mined, fresh->mined);

  // The stores agree down to their serialized bytes: subtraction recovered
  // exactly the counts the surviving rows contributed.
  const std::string sub_path = ::testing::TempDir() + "/window_sub.frappcnt";
  const std::string dir_path = ::testing::TempDir() + "/window_dir.frappcnt";
  ASSERT_TRUE(subtracted.SaveToFile(sub_path).ok());
  ASSERT_TRUE(direct.SaveToFile(dir_path).ok());
  std::ifstream a(sub_path, std::ios::binary), b(dir_path, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(sub_path.c_str());
  std::remove(dir_path.c_str());
}

TEST_F(IncrementalMineTest, BooleanWindowExpiryMatchesDirectWindowMine) {
  dist::MechanismSpec spec;
  spec.kind = dist::MechanismSpec::Kind::kMask;
  IncrementalOptions options;
  options.mining.min_support = 0.02;
  options.num_threads = 2;
  options.source_id = "census-window-mask";

  StatusOr<data::CategoricalTable> prefix = data::CopyRowRange(*full_, {0, 50000});
  ASSERT_TRUE(prefix.ok());
  const SourceFactory factory =
      [&]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    std::unique_ptr<pipeline::TableSource> src =
        std::make_unique<pipeline::InMemoryTableSource>(*prefix, 0);
    return src;
  };

  CountStore subtracted(MakeStoreIdentity(spec, full_->schema(), options));
  ASSERT_TRUE(AppendAndMine(subtracted, spec, factory, options).ok());
  options.window_begin_row = 3 * kChunk;
  StatusOr<IncrementalResult> expired =
      AppendAndMine(subtracted, spec, factory, options);
  ASSERT_TRUE(expired.ok()) << expired.status().ToString();

  CountStore direct(MakeStoreIdentity(spec, full_->schema(), options));
  StatusOr<IncrementalResult> fresh =
      AppendAndMine(direct, spec, factory, options);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ExpectSameMining(expired->mined, fresh->mined);
}

TEST_F(IncrementalMineTest, RejectsMismatchedStoreAndBackwardWindows) {
  dist::MechanismSpec spec;
  IncrementalOptions options;
  options.mining.min_support = 0.02;
  options.source_id = "census-reject";

  StatusOr<data::CategoricalTable> prefix = data::CopyRowRange(*full_, {0, 20000});
  ASSERT_TRUE(prefix.ok());
  const SourceFactory factory =
      [&]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    std::unique_ptr<pipeline::TableSource> src =
        std::make_unique<pipeline::InMemoryTableSource>(*prefix, 0);
    return src;
  };

  // Store built under a different seed: refused outright.
  IncrementalOptions other = options;
  other.perturb_seed = 99;
  CountStore wrong(MakeStoreIdentity(spec, full_->schema(), other));
  const StatusOr<IncrementalResult> mismatch =
      AppendAndMine(wrong, spec, factory, options);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kFailedPrecondition);

  // A window that moves backwards past expired rows: refused.
  CountStore cs(MakeStoreIdentity(spec, full_->schema(), options));
  options.window_begin_row = kChunk;
  ASSERT_TRUE(AppendAndMine(cs, spec, factory, options).ok());
  options.window_begin_row = 0;
  const StatusOr<IncrementalResult> backwards =
      AppendAndMine(cs, spec, factory, options);
  ASSERT_FALSE(backwards.ok());
  EXPECT_EQ(backwards.status().code(), StatusCode::kFailedPrecondition);

  // Unaligned window: refused.
  options.window_begin_row = 100;
  EXPECT_FALSE(AppendAndMine(cs, spec, factory, options).ok());
}

// Regression: the CLI and the serve broker hand AppendAndMine sources that
// OWN their table (generated in-memory datasets, binary readers with their
// own schema). AppendAndMine releases the source right after ingest to drop
// the table before the candidate walk — anything it kept by reference into
// the source (the schema, in the original bug) died with it, and the walk
// sized its candidate loops from freed cardinalities. Must stay correct (and
// ASan-clean) with a source whose table's lifetime ends at that release.
TEST_F(IncrementalMineTest, SurvivesSourceThatOwnsItsTable) {
  class OwningSource : public pipeline::TableSource {
   public:
    explicit OwningSource(data::CategoricalTable table)
        : table_(std::make_shared<data::CategoricalTable>(std::move(table))),
          inner_(*table_, 0) {}
    const data::CategoricalSchema& schema() const override {
      return inner_.schema();
    }
    StatusOr<bool> NextShard(pipeline::PulledShard* out) override {
      return inner_.NextShard(out);
    }
    Status SkipToRow(size_t row) override { return inner_.SkipToRow(row); }
    std::optional<size_t> TotalRows() const override {
      return inner_.TotalRows();
    }

   private:
    std::shared_ptr<data::CategoricalTable> table_;
    pipeline::InMemoryTableSource inner_;
  };

  dist::MechanismSpec spec;
  IncrementalOptions options;
  options.mining.min_support = 0.02;
  options.source_id = "census-owning";

  const size_t rows = 2 * kChunk + 1024;
  StatusOr<data::CategoricalTable> prefix = data::CopyRowRange(*full_, {0, rows});
  ASSERT_TRUE(prefix.ok());

  const SourceFactory factory =
      [&]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable copy,
                           data::CopyRowRange(*full_, {0, rows}));
    std::unique_ptr<pipeline::TableSource> src =
        std::make_unique<OwningSource>(std::move(copy));
    return src;
  };

  CountStore cs(MakeStoreIdentity(spec, full_->schema(), options));
  const StatusOr<IncrementalResult> got = AppendAndMine(cs, spec, factory, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameMining(got->mined, Reference(spec, *prefix, options));

  // Second call: pure store re-mine (no growth), source released immediately.
  const StatusOr<IncrementalResult> again =
      AppendAndMine(cs, spec, factory, options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->stats.delta_chunks, 0u);
  ExpectSameMining(again->mined, got->mined);
}

}  // namespace
}  // namespace store
}  // namespace frapp
