// CountStore invariants:
//
//  1. ROUNDTRIP: identity, window, and every entry survive save + load
//     bit-for-bit, and the byte image is deterministic (sorted keys).
//  2. REJECTION: truncation, magic/version damage, bit flips anywhere in
//     the payload, duplicate keys, and wrong-arity count vectors are all
//     detected before any counts are trusted; an identity mismatch refuses
//     to merge even a pristine file.
//  3. RUN PROTOCOL: Commit drops exactly the entries the run did not Put,
//     so candidates that fall out of the superset self-clean.

#include "frapp/store/count_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "frapp/store/incremental_mine.h"

namespace frapp {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

StoreIdentity TestIdentity() {
  StoreIdentity identity;
  identity.source_id = "unit-test-source";
  identity.schema_fingerprint = 0x1234abcd5678ef00ULL;
  identity.spec_key = "det-gd|gamma=404c000000000000";
  identity.perturb_seed = 7;
  identity.retention_bits = 0x3f8eb851eb851eb8ULL;
  identity.kind = CountKind::kSupport;
  identity.num_bits = 0;
  return identity;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CountStoreTest, RoundTripsIdentityWindowAndEntries) {
  CountStore store(TestIdentity());
  store.BeginRun();
  store.Put({0x00010002u}, {411});
  store.Put({0x00010002u, 0x00030000u}, {97});
  store.Put({0x00050001u}, {12345678901LL});
  store.Commit(8192, 40960);

  const std::string path = TempPath("roundtrip.frappcnt");
  ASSERT_TRUE(store.SaveToFile(path).ok());

  StatusOr<CountStore> loaded = CountStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->identity() == store.identity());
  EXPECT_EQ(loaded->window_begin(), 8192u);
  EXPECT_EQ(loaded->high_water(), 40960u);
  ASSERT_EQ(loaded->num_entries(), 3u);
  const std::vector<int64_t>* pair = loaded->Find({0x00010002u, 0x00030000u});
  ASSERT_NE(pair, nullptr);
  EXPECT_EQ(*pair, (std::vector<int64_t>{97}));
  const std::vector<int64_t>* big = loaded->Find({0x00050001u});
  ASSERT_NE(big, nullptr);
  EXPECT_EQ((*big)[0], 12345678901LL);
  EXPECT_EQ(loaded->Find({0x00990000u}), nullptr);

  // Deterministic byte image: saving the loaded store reproduces the file.
  const std::string again = TempPath("roundtrip2.frappcnt");
  ASSERT_TRUE(loaded->SaveToFile(again).ok());
  EXPECT_EQ(ReadAll(path), ReadAll(again));
}

TEST(CountStoreTest, RoundTripsBooleanSupersetVectors) {
  StoreIdentity identity = TestIdentity();
  identity.kind = CountKind::kBooleanSuperset;
  identity.num_bits = 19;
  CountStore store(identity);
  store.BeginRun();
  store.Put({3u, 7u}, {100, 40, 30, 5});  // 2^2 superset counts
  store.Commit(0, 16384);

  const std::string path = TempPath("bool.frappcnt");
  ASSERT_TRUE(store.SaveToFile(path).ok());
  StatusOr<CountStore> loaded = CountStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<int64_t>* counts = loaded->Find({3u, 7u});
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(*counts, (std::vector<int64_t>{100, 40, 30, 5}));
}

TEST(CountStoreTest, RoundTripsSubstrateChunks) {
  CountStore store(TestIdentity());
  store.BeginRun();
  store.Put({0x00010002u}, {411});
  // Two chunks of 3 planes each, distinct recognizable words.
  const uint64_t words_per_chunk = 3 * CountStore::kSubstrateChunkWords;
  std::vector<SubstrateChunk> chunks(2);
  for (size_t c = 0; c < 2; ++c) {
    chunks[c].words.resize(words_per_chunk);
    for (size_t w = 0; w < words_per_chunk; ++w) {
      chunks[c].words[w] = (uint64_t{c} << 32) | w;
    }
  }
  store.UpdateSubstrate(3, 0, chunks);
  store.Commit(8192, 8192 + 2 * CountStore::kSubstrateChunkRows);

  const std::string path = TempPath("substrate.frappcnt");
  ASSERT_TRUE(store.SaveToFile(path).ok());
  StatusOr<CountStore> loaded = CountStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->substrate_planes(), 3u);
  ASSERT_EQ(loaded->substrate().size(), 2u);
  EXPECT_EQ(loaded->substrate()[0].words, chunks[0].words);
  EXPECT_EQ(loaded->substrate()[1].words, chunks[1].words);

  // Expiry pops the front chunk, append pushes on the back.
  SubstrateChunk fresh;
  fresh.words.assign(words_per_chunk, 0xabcdefULL);
  loaded->UpdateSubstrate(3, 1, {fresh});
  ASSERT_EQ(loaded->substrate().size(), 2u);
  EXPECT_EQ(loaded->substrate()[0].words, chunks[1].words);
  EXPECT_EQ(loaded->substrate()[1].words, fresh.words);
}

TEST(CountStoreTest, RefusesSubstrateThatDoesNotTileTheWindow) {
  CountStore store(TestIdentity());
  store.BeginRun();
  store.Put({0x00010002u}, {411});
  SubstrateChunk chunk;
  chunk.words.assign(2 * CountStore::kSubstrateChunkWords, 7);
  store.UpdateSubstrate(2, 0, {chunk});
  // One chunk cannot tile a two-chunk window: the save must refuse rather
  // than write a store that would poison later incremental runs.
  store.Commit(0, 2 * CountStore::kSubstrateChunkRows);
  const std::string path = TempPath("badtile.frappcnt");
  EXPECT_FALSE(store.SaveToFile(path).ok());
}

TEST(CountStoreTest, RejectsDamagedFiles) {
  CountStore store(TestIdentity());
  store.BeginRun();
  store.Put({0x00010002u}, {411});
  store.Put({0x00040003u}, {17});
  store.Commit(0, 16384);
  const std::string path = TempPath("damaged.frappcnt");
  ASSERT_TRUE(store.SaveToFile(path).ok());
  const std::string good = ReadAll(path);

  // Truncation: drop the trailing checksum plus a payload byte.
  WriteAll(path, good.substr(0, good.size() - 9));
  EXPECT_FALSE(CountStore::LoadFromFile(path).ok());

  // Far-too-short file.
  WriteAll(path, good.substr(0, 10));
  EXPECT_FALSE(CountStore::LoadFromFile(path).ok());

  // Wrong magic.
  {
    std::string bad = good;
    bad[0] = 'X';
    WriteAll(path, bad);
    const StatusOr<CountStore> r = CountStore::LoadFromFile(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("not a FRAPP count store"),
              std::string::npos);
  }

  // Unknown version (checked before the checksum, so the message is
  // specific).
  {
    std::string bad = good;
    bad[8] = 9;
    WriteAll(path, bad);
    const StatusOr<CountStore> r = CountStore::LoadFromFile(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("format version"), std::string::npos);
  }

  // A single flipped bit anywhere in the payload fails the checksum.
  for (const size_t offset : {size_t{13}, size_t{40}, good.size() - 12}) {
    std::string bad = good;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x40);
    WriteAll(path, bad);
    const StatusOr<CountStore> r = CountStore::LoadFromFile(path);
    ASSERT_FALSE(r.ok()) << "offset " << offset;
    EXPECT_NE(r.status().ToString().find("checksum"), std::string::npos);
  }

  // Intact payload restored: loads again.
  WriteAll(path, good);
  EXPECT_TRUE(CountStore::LoadFromFile(path).ok());
}

TEST(CountStoreTest, LoadOrCreateValidatesIdentity) {
  const std::string path = TempPath("identity.frappcnt");
  std::remove(path.c_str());

  bool created = false;
  StatusOr<CountStore> fresh = LoadOrCreateStore(path, TestIdentity(), &created);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(created);
  EXPECT_EQ(fresh->num_entries(), 0u);
  fresh->BeginRun();
  fresh->Put({0x00010002u}, {5});
  fresh->Commit(0, 8192);
  ASSERT_TRUE(fresh->SaveToFile(path).ok());

  // Same identity: loads the materialized entries.
  StatusOr<CountStore> same = LoadOrCreateStore(path, TestIdentity(), &created);
  ASSERT_TRUE(same.ok()) << same.status().ToString();
  EXPECT_FALSE(created);
  EXPECT_EQ(same->num_entries(), 1u);

  // A drifted retention threshold is OWNED by the file, not a mismatch.
  StoreIdentity drifted = TestIdentity();
  drifted.retention_bits ^= 0xffULL;
  EXPECT_TRUE(LoadOrCreateStore(path, drifted, &created).ok());

  // Any other identity change refuses the file.
  for (StoreIdentity bad : {TestIdentity(), TestIdentity(), TestIdentity()}) {
    static int field = 0;
    switch (field++) {
      case 0: bad.perturb_seed = 8; break;
      case 1: bad.spec_key = "mask|gamma=..."; break;
      default: bad.source_id = "other-table"; break;
    }
    const StatusOr<CountStore> r = LoadOrCreateStore(path, bad, &created);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(CountStoreTest, CommitDropsEntriesTheRunDidNotTouch) {
  CountStore store(TestIdentity());
  store.BeginRun();
  store.Put({1u}, {10});
  store.Put({2u}, {20});
  store.Put({3u}, {30});
  EXPECT_EQ(store.Commit(0, 8192), 0u);
  EXPECT_EQ(store.num_entries(), 3u);

  // Next run only touches {1} and {3}: {2} fell out of the superset.
  store.BeginRun();
  store.Put({1u}, {11});
  store.Put({3u}, {33});
  EXPECT_EQ(store.Commit(0, 16384), 1u);
  EXPECT_EQ(store.num_entries(), 2u);
  EXPECT_EQ(store.Find({2u}), nullptr);
  ASSERT_NE(store.Find({1u}), nullptr);
  EXPECT_EQ((*store.Find({1u}))[0], 11);
  EXPECT_EQ(store.window_begin(), 0u);
  EXPECT_EQ(store.high_water(), 16384u);
}

}  // namespace
}  // namespace store
}  // namespace frapp
