// The paper's motivating scenario (Section 1): a pharmaceutical company
// collects disease histories to mine correlations like "adult females with
// malarial infections are also prone to contract tuberculosis" — but clients
// will only participate if their individual records stay private.
//
// This example runs the full FRAPP pipeline on the HEALTH stand-in dataset:
// client-side RAN-GD perturbation (randomized matrices for extra privacy),
// Apriori mining with per-pass support reconstruction, and association-rule
// derivation from the reconstructed supports.
//
// Build & run:  ./build/examples/medical_survey

#include <iostream>

#include "frapp/core/mechanism.h"
#include "frapp/data/health.h"
#include "frapp/mining/rules.h"
#include "frapp/pipeline/privacy_pipeline.h"

using namespace frapp;

namespace {

template <typename T>
T Unwrap(StatusOr<T> v) {
  if (!v.ok()) {
    std::cerr << "error: " << v.status().ToString() << "\n";
    std::exit(1);
  }
  return *std::move(v);
}

}  // namespace

int main() {
  const double gamma = 19.0;  // (rho1, rho2) = (5%, 50%)

  std::cout << "Collecting 100,000 patient records (synthetic NHIS stand-in)...\n";
  const data::CategoricalTable survey = Unwrap(data::health::MakeDataset());
  const data::CategoricalSchema& schema = survey.schema();

  // Clients perturb with RAN-GD: each client draws a PRIVATE matrix
  // realization, so the miner cannot even pin down the exact posterior.
  const double x = 1.0 / (gamma + static_cast<double>(schema.DomainSize()) - 1.0);
  const double alpha = gamma * x / 2.0;
  auto mechanism =
      Unwrap(core::RanGdMechanism::Create(schema, gamma, alpha));

  const core::PosteriorRange window =
      Unwrap(mechanism->perturber().PosteriorWindow(0.05));
  std::cout << "Client-side privacy: a 5%-prior property ends between "
            << static_cast<int>(window.lower * 100) << "% and "
            << static_cast<int>(window.upper * 100)
            << "% posterior (vs a pinpoint 50% for the deterministic matrix).\n";

  // The miner runs the shard-streaming pipeline: each batch of client
  // records is perturbed, vertically indexed and dropped (one shard per
  // seeded chunk, all cores), then Apriori reconstructs supports per pass —
  // bit-identical at every shard/thread count.
  pipeline::PipelineOptions options;
  options.perturb_seed = 2005;
  options.num_shards = 0;   // one shard per seeded chunk
  options.num_threads = 0;  // all hardware threads
  options.mining.min_support = 0.02;
  const pipeline::PipelineResult result =
      Unwrap(pipeline::PrivacyPipeline(options).Run(*mechanism, survey));
  const mining::AprioriResult& mined = result.mined;
  std::cout << "Perturbed database streamed in " << result.stats.num_shards
            << " shards (peak "
            << result.stats.peak_inflight_perturbed_bytes / 1024
            << " KiB of perturbed rows in memory); originals never left the"
               " clients.\n\n";

  std::cout << "Reconstructed frequent itemsets per length:";
  for (size_t k = 1; k <= mined.MaxLength(); ++k) {
    std::cout << "  L" << k << "=" << mined.OfLength(k).size();
  }
  std::cout << "\n\nStrongest reconstructed health associations (conf >= 0.85):\n";

  const std::vector<mining::AssociationRule> rules = mining::GenerateRules(mined, 0.85);
  size_t shown = 0;
  for (const auto& rule : rules) {
    // Keep the health-interpretable ones: consequent on HEALTH / DV12 / BDDAY12.
    const uint16_t consequent_attr = rule.consequent.item(0).attribute;
    if (consequent_attr != 1 && consequent_attr != 2 && consequent_attr != 6) {
      continue;
    }
    // Reconstructed supports are noisy point estimates; discard rules whose
    // statistics are physically implausible (confidence/support above 1).
    if (rule.confidence > 1.0 || rule.support > 1.0) continue;
    printf("  conf %.2f  sup %4.1f%%  %s\n", rule.confidence, rule.support * 100.0,
           rule.ToString(schema).c_str());
    if (++shown == 12) break;
  }
  if (shown == 0) {
    std::cout << "  (no rules above the confidence cut — lower it to explore)\n";
  }

  std::cout << "\nEvery statistic above was computed WITHOUT access to any true\n"
               "record: the estimates come from inverting the expected\n"
               "perturbation matrix per Apriori pass (paper Section 6).\n";
  return 0;
}
