// FRAPP quickstart: the complete privacy-preserving mining loop in ~80 lines.
//
//  1. clients hold categorical records;
//  2. each client perturbs their record with the gamma-diagonal matrix for a
//     (rho1, rho2) = (5%, 50%) privacy guarantee BEFORE sending it anywhere;
//  3. the miner reconstructs the original distribution from the perturbed
//     database and the known matrix (paper Eq. 8).
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "frapp/core/gamma_diagonal.h"
#include "frapp/core/mechanism.h"
#include "frapp/core/privacy.h"
#include "frapp/core/reconstructor.h"
#include "frapp/data/schema.h"
#include "frapp/data/table.h"
#include "frapp/pipeline/privacy_pipeline.h"
#include "frapp/random/rng.h"

using namespace frapp;

int main() {
  // --- A tiny survey: two private attributes. ----------------------------
  StatusOr<data::CategoricalSchema> schema = data::CategoricalSchema::Create({
      {"smoker", {"no", "yes"}},
      {"condition", {"none", "diabetes", "hypertension"}},
  });
  if (!schema.ok()) {
    std::cerr << schema.status().ToString() << "\n";
    return 1;
  }

  // Original client data (in reality this never leaves the clients).
  StatusOr<data::CategoricalTable> original = data::CategoricalTable::Create(*schema);
  random::Pcg64 population(1);
  for (int i = 0; i < 50000; ++i) {
    const uint8_t smoker = population.NextBernoulli(0.25) ? 1 : 0;
    // Smokers are likelier to report a condition.
    const double condition_rate = smoker ? 0.4 : 0.15;
    uint8_t condition = 0;
    if (population.NextBernoulli(condition_rate)) {
      condition = population.NextBernoulli(0.5) ? 1 : 2;
    }
    (void)original->AppendRow({smoker, condition});
  }

  // --- Choose the privacy level. ------------------------------------------
  const core::PrivacyRequirement requirement{0.05, 0.50};  // (rho1, rho2)
  const double gamma = *core::GammaFromRequirement(requirement);
  std::cout << "privacy (rho1, rho2) = (5%, 50%)  =>  gamma = " << gamma << "\n";

  // --- Client-side perturbation (gamma-diagonal, O(M) per record). --------
  StatusOr<core::GammaDiagonalPerturber> perturber =
      core::GammaDiagonalPerturber::Create(*schema, gamma);
  random::Pcg64 rng(42);
  StatusOr<data::CategoricalTable> perturbed = perturber->Perturb(*original, rng);
  if (!perturbed.ok()) {
    std::cerr << perturbed.status().ToString() << "\n";
    return 1;
  }

  // --- Miner-side reconstruction of the joint distribution. ---------------
  StatusOr<linalg::Vector> estimate =
      core::ReconstructFullDistribution(*perturbed, perturber->matrix());
  if (!estimate.ok()) {
    std::cerr << estimate.status().ToString() << "\n";
    return 1;
  }

  const data::DomainIndexer indexer = data::DomainIndexer::OverAllAttributes(*schema);
  const linalg::Vector truth = original->JointHistogram(indexer);
  const double n = static_cast<double>(original->num_rows());

  std::cout << "\njoint cell                          true    reconstructed\n";
  std::cout << "----------------------------------------------------------\n";
  for (uint64_t v = 0; v < indexer.domain_size(); ++v) {
    const std::vector<size_t> values = indexer.Decode(v);
    std::string label = schema->attribute(0).categories[values[0]] + " / " +
                        schema->attribute(1).categories[values[1]];
    label.resize(34, ' ');
    printf("%s  %5.3f    %6.3f\n", label.c_str(),
           truth[static_cast<size_t>(v)] / n,
           (*estimate)[static_cast<size_t>(v)] / n);
  }

  // --- Frequent-pattern mining through the streaming pipeline. ------------
  // The same privacy budget also supports itemset mining: the pipeline
  // perturbs shard by shard (dropping each shard once indexed) and runs
  // Apriori with per-pass support reconstruction.
  StatusOr<std::unique_ptr<core::DetGdMechanism>> mechanism =
      core::DetGdMechanism::Create(*schema, gamma);
  pipeline::PipelineOptions options;
  options.perturb_seed = 42;
  options.num_shards = 0;  // one shard per seeded chunk
  options.mining.min_support = 0.05;
  StatusOr<pipeline::PipelineResult> mined =
      pipeline::PrivacyPipeline(options).Run(**mechanism, *original);
  if (!mined.ok()) {
    std::cerr << mined.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nPrivacy-preserving mining (supmin = 5%, streamed in "
            << mined->stats.num_shards << " shards): "
            << mined->mined.TotalFrequent()
            << " frequent itemsets reconstructed.\n";

  std::cout << "\nNo individual record was revealed: any adversary seeing one\n"
               "perturbed record can raise a 5%-prior property to at most a\n"
               "50% posterior (amplification bound gamma = 19).\n";
  return 0;
}
