// Mechanism bake-off on the CENSUS stand-in: how do the four Section-7
// mechanisms (DET-GD, RAN-GD, MASK, C&P) compare when an analyst needs the
// paper's quality metrics at a strict (5%, 50%) privacy level?
//
// Build & run:  ./build/examples/census_analysis

#include <iostream>
#include <vector>

#include "frapp/core/mechanism.h"
#include "frapp/data/census.h"
#include "frapp/eval/experiment.h"
#include "frapp/eval/reporting.h"

using namespace frapp;

namespace {

template <typename T>
T Unwrap(StatusOr<T> v) {
  if (!v.ok()) {
    std::cerr << "error: " << v.status().ToString() << "\n";
    std::exit(1);
  }
  return *std::move(v);
}

}  // namespace

int main() {
  const double gamma = 19.0;
  const data::CategoricalTable census = Unwrap(data::census::MakeDataset());
  const data::CategoricalSchema& schema = census.schema();

  std::cout << "CENSUS stand-in: " << census.num_rows() << " records, |S_U| = "
            << schema.DomainSize() << ", supmin = 2%\n\n";

  mining::AprioriOptions options;
  options.min_support = 0.02;
  const mining::AprioriResult truth = Unwrap(mining::MineExact(census, options));

  std::vector<std::unique_ptr<core::Mechanism>> mechanisms;
  mechanisms.push_back(Unwrap(core::DetGdMechanism::Create(schema, gamma)));
  const double x = 1.0 / (gamma + static_cast<double>(schema.DomainSize()) - 1.0);
  mechanisms.push_back(
      Unwrap(core::RanGdMechanism::Create(schema, gamma, gamma * x / 2.0)));
  mechanisms.push_back(Unwrap(core::MaskMechanism::Create(schema, gamma)));
  mechanisms.push_back(Unwrap(core::CutPasteMechanism::Create(schema, 3, 0.494)));

  // Route every mechanism through the shard-streaming pipeline: perturbed
  // shards are indexed and dropped one by one (O(shard) peak memory) and
  // candidate counting fans out over all cores — with results bit-identical
  // to the single-shard, single-thread run.
  eval::ExperimentConfig config;
  config.min_support = options.min_support;
  config.perturb_seed = 7;
  config.num_shards = 0;   // one shard per seeded chunk
  config.num_threads = 0;  // all hardware threads

  eval::TextTable table({"mechanism", "found/true", "rho (%)", "sigma- (%)",
                         "sigma+ (%)", "deepest length", "cond @ len 4"});
  std::vector<eval::MechanismRun> runs;
  for (auto& mechanism : mechanisms) {
    const eval::MechanismRun run =
        Unwrap(eval::RunMechanism(*mechanism, census, truth, config));
    runs.push_back(run);
    const eval::LengthAccuracy total = eval::OverallAccuracy(run.accuracy);
    StatusOr<double> cond = mechanism->ConditionNumberForLength(4);
    table.AddRow({run.mechanism_name,
                  std::to_string(total.correct) + "/" +
                      std::to_string(total.true_frequent),
                  eval::Cell(total.support_error, 4),
                  eval::Cell(total.sigma_minus, 4),
                  eval::Cell(total.sigma_plus, 4),
                  std::to_string(run.mined.MaxLength()),
                  cond.ok() ? eval::Cell(*cond, 4) : std::string("singular")});
  }
  table.Print(std::cout);

  std::cout << "\npipeline: ";
  for (const eval::MechanismRun& run : runs) {
    const pipeline::PipelineStats& stats = run.pipeline_stats;
    std::cout << run.mechanism_name << "="
              << (stats.shard_streamed
                      ? std::to_string(stats.num_shards) + " shards, peak " +
                            std::to_string(stats.peak_inflight_perturbed_bytes /
                                           1024) +
                            " KiB perturbed"
                      : std::string("monolithic fallback"))
              << "  ";
  }
  std::cout << "\n";

  std::cout << "\nReading guide: DET-GD/RAN-GD recover itemsets at every length\n"
               "because their reconstruction matrices keep a constant condition\n"
               "number (~112); MASK's and C&P's blow up exponentially, so they\n"
               "stop finding patterns beyond length 4 and 3 respectively —\n"
               "the paper's Figures 1 and 4 in one table.\n";
  return 0;
}
