// Mechanism bake-off on the CENSUS stand-in: how do the four Section-7
// mechanisms (DET-GD, RAN-GD, MASK, C&P) compare when an analyst needs the
// paper's quality metrics at a strict (5%, 50%) privacy level? Every
// mechanism runs through the shard-streaming PrivacyPipeline; a final
// section repeats one run from a CSV STREAM (chunked parse, no full table
// in memory), then converts the CSV to the binary shard format (what
// `frapp convert` does) and repeats it again from a PREFETCHED binary
// stream — the ingest fast path — showing every variant mines a
// bit-identical result.
//
// Build & run:  ./build/examples/census_analysis

#include <cstdio>
#include <iostream>
#include <vector>

#include "frapp/core/mechanism.h"
#include "frapp/data/census.h"
#include "frapp/data/csv.h"
#include "frapp/data/shard_io.h"
#include "frapp/eval/experiment.h"
#include "frapp/eval/reporting.h"
#include "frapp/pipeline/table_source.h"

using namespace frapp;

namespace {

template <typename T>
T Unwrap(StatusOr<T> v) {
  if (!v.ok()) {
    std::cerr << "error: " << v.status().ToString() << "\n";
    std::exit(1);
  }
  return *std::move(v);
}

}  // namespace

int main() {
  const double gamma = 19.0;
  const data::CategoricalTable census = Unwrap(data::census::MakeDataset());
  const data::CategoricalSchema& schema = census.schema();

  std::cout << "CENSUS stand-in: " << census.num_rows() << " records, |S_U| = "
            << schema.DomainSize() << ", supmin = 2%\n\n";

  mining::AprioriOptions options;
  options.min_support = 0.02;
  const mining::AprioriResult truth = Unwrap(mining::MineExact(census, options));

  std::vector<std::unique_ptr<core::Mechanism>> mechanisms;
  mechanisms.push_back(Unwrap(core::DetGdMechanism::Create(schema, gamma)));
  const double x = 1.0 / (gamma + static_cast<double>(schema.DomainSize()) - 1.0);
  mechanisms.push_back(
      Unwrap(core::RanGdMechanism::Create(schema, gamma, gamma * x / 2.0)));
  mechanisms.push_back(Unwrap(core::MaskMechanism::Create(schema, gamma)));
  mechanisms.push_back(Unwrap(core::CutPasteMechanism::Create(schema, 3, 0.494)));

  // Route every mechanism through the shard-streaming pipeline: perturbed
  // shards are indexed and dropped one by one (O(shard) peak memory) and
  // candidate counting fans out over all cores — with results bit-identical
  // to the single-shard, single-thread run.
  eval::ExperimentConfig config;
  config.min_support = options.min_support;
  config.perturb_seed = 7;
  config.num_shards = 0;   // one shard per seeded chunk
  config.num_threads = 0;  // all hardware threads

  eval::TextTable table({"mechanism", "found/true", "rho (%)", "sigma- (%)",
                         "sigma+ (%)", "deepest length", "cond @ len 4"});
  std::vector<eval::MechanismRun> runs;
  for (auto& mechanism : mechanisms) {
    const eval::MechanismRun run =
        Unwrap(eval::RunMechanism(*mechanism, census, truth, config));
    runs.push_back(run);
    const eval::LengthAccuracy total = eval::OverallAccuracy(run.accuracy);
    StatusOr<double> cond = mechanism->ConditionNumberForLength(4);
    table.AddRow({run.mechanism_name,
                  std::to_string(total.correct) + "/" +
                      std::to_string(total.true_frequent),
                  eval::Cell(total.support_error, 4),
                  eval::Cell(total.sigma_minus, 4),
                  eval::Cell(total.sigma_plus, 4),
                  std::to_string(run.mined.MaxLength()),
                  cond.ok() ? eval::Cell(*cond, 4) : std::string("singular")});
  }
  table.Print(std::cout);

  std::cout << "\npipeline: ";
  for (const eval::MechanismRun& run : runs) {
    const pipeline::PipelineStats& stats = run.pipeline_stats;
    std::cout << run.mechanism_name << "=" << stats.num_shards
              << " shards, peak "
              << stats.peak_inflight_perturbed_bytes / 1024
              << " KiB perturbed  ";
  }
  std::cout << "\n";

  // --- CSV-ingest demo: the same mining without the table in memory. -------
  // Round-trip the dataset through a CSV file, then stream it shard by shard
  // (chunked parse -> perturb -> index -> drop). The global seeded-chunk RNG
  // contract makes the result bit-identical to the in-memory run above.
  const std::string csv_path = "/tmp/frapp_census_analysis.csv";
  if (Status s = data::WriteCsv(census, csv_path); !s.ok()) {
    std::cerr << "error: " << s.ToString() << "\n";
    return 1;
  }
  auto streamed_mechanism = Unwrap(core::DetGdMechanism::Create(schema, gamma));
  pipeline::CsvTableSource source =
      Unwrap(pipeline::CsvTableSource::Open(csv_path, schema));
  const eval::MechanismRun streamed =
      Unwrap(eval::RunMechanism(*streamed_mechanism, source, truth, config));
  // Itemset-by-itemset, support-by-support equality — the bit-identity the
  // seeded-chunk contract promises, not just matching totals.
  const auto same_mining_result = [](const mining::AprioriResult& a,
                                     const mining::AprioriResult& b) {
    if (a.by_length.size() != b.by_length.size()) return false;
    for (size_t k = 0; k < a.by_length.size(); ++k) {
      if (a.by_length[k].size() != b.by_length[k].size()) return false;
      for (size_t i = 0; i < a.by_length[k].size(); ++i) {
        if (!(a.by_length[k][i].itemset == b.by_length[k][i].itemset) ||
            a.by_length[k][i].support != b.by_length[k][i].support) {
          return false;
        }
      }
    }
    return true;
  };
  const bool identical = same_mining_result(streamed.mined, runs[0].mined);
  std::cout << "\nCSV stream (DET-GD): " << streamed.pipeline_stats.num_shards
            << " shards of <= " << streamed.pipeline_stats.max_shard_rows
            << " rows, peak "
            << streamed.pipeline_stats.peak_inflight_perturbed_bytes / 1024
            << " KiB perturbed, mined "
            << (identical ? "IDENTICAL to" : "DIFFERENT from")
            << " the in-memory run\n";

  // --- Ingest fast path: binary shards + prefetch. -------------------------
  // Convert the CSV once to the pre-tokenized binary format (what
  // `frapp convert --in census.csv --out census.bin` does), then mine from a
  // binary stream behind a producer thread: the next shard loads while the
  // workers perturb the current one, and no text is parsed at all.
  const std::string bin_path = "/tmp/frapp_census_analysis.bin";
  {
    const data::CategoricalTable reloaded =
        Unwrap(data::ReadCsv(csv_path, schema));
    if (Status s = data::WriteBinaryTable(reloaded, bin_path); !s.ok()) {
      std::cerr << "error: " << s.ToString() << "\n";
      return 1;
    }
  }
  auto binary_mechanism = Unwrap(core::DetGdMechanism::Create(schema, gamma));
  pipeline::BinaryTableSource binary_source =
      Unwrap(pipeline::BinaryTableSource::Open(bin_path, schema));
  eval::ExperimentConfig fast_config = config;
  fast_config.prefetch_source = true;
  const eval::MechanismRun fast = Unwrap(
      eval::RunMechanism(*binary_mechanism, binary_source, truth, fast_config));
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
  const pipeline::PipelineStats& fast_stats = fast.pipeline_stats;
  std::cout << "binary stream + prefetch (DET-GD): "
            << fast_stats.num_shards << " shards, "
            << fast_stats.producer_parse_nanos / 1000 << " us ingest "
               "overlapped with compute ("
            << fast_stats.source_wait_nanos / 1000
            << " us left on the critical path), mined "
            << (same_mining_result(fast.mined, runs[0].mined)
                    ? "IDENTICAL to"
                    : "DIFFERENT from")
            << " the in-memory run\n";

  std::cout << "\nReading guide: DET-GD/RAN-GD recover itemsets at every length\n"
               "because their reconstruction matrices keep a constant condition\n"
               "number (~112); MASK's and C&P's blow up exponentially, so they\n"
               "stop finding patterns beyond length 4 and 3 respectively —\n"
               "the paper's Figures 1 and 4 in one table.\n";
  return 0;
}
