// Privacy audit tool: given a desired (rho1, rho2) guarantee, derive the
// admissible amplification gamma, inspect what each mechanism actually
// delivers, and quantify the extra protection of randomizing the matrix
// (paper Sections 2.1, 4.1). This is the "first fix gamma, then optionally
// randomize" two-step workflow the paper proposes.
//
// Build & run:  ./build/examples/privacy_audit

#include <iostream>

#include "frapp/core/mechanism.h"
#include "frapp/core/privacy.h"
#include "frapp/data/census.h"
#include "frapp/eval/reporting.h"
#include "frapp/pipeline/privacy_pipeline.h"

using namespace frapp;

namespace {

template <typename T>
T Unwrap(StatusOr<T> v) {
  if (!v.ok()) {
    std::cerr << "error: " << v.status().ToString() << "\n";
    std::exit(1);
  }
  return *std::move(v);
}

}  // namespace

int main() {
  const data::CategoricalSchema schema = data::census::Schema();

  std::cout << "=== Step 1: from policy to gamma ===\n";
  eval::TextTable gammas({"rho1 (%)", "rho2 (%)", "gamma"});
  for (const core::PrivacyRequirement req :
       {core::PrivacyRequirement{0.05, 0.50}, core::PrivacyRequirement{0.05, 0.30},
        core::PrivacyRequirement{0.10, 0.50}, core::PrivacyRequirement{0.01, 0.20}}) {
    gammas.AddRow({eval::Cell(req.rho1 * 100, 3), eval::Cell(req.rho2 * 100, 3),
                   eval::Cell(Unwrap(core::GammaFromRequirement(req)), 4)});
  }
  gammas.Print(std::cout);

  const double gamma = Unwrap(core::GammaFromRequirement({0.05, 0.50}));
  std::cout << "\nAuditing mechanisms at gamma = " << gamma
            << " on the CENSUS schema:\n\n";

  std::cout << "=== Step 2: delivered record-level amplification ===\n";
  eval::TextTable audit({"mechanism", "amplification", "within gamma?"});
  auto det = Unwrap(core::DetGdMechanism::Create(schema, gamma));
  auto mask = Unwrap(core::MaskMechanism::Create(schema, gamma));
  auto cp = Unwrap(core::CutPasteMechanism::Create(schema, 3, 0.494));
  for (const core::Mechanism* m :
       {static_cast<core::Mechanism*>(det.get()),
        static_cast<core::Mechanism*>(mask.get()),
        static_cast<core::Mechanism*>(cp.get())}) {
    const double amp = m->Amplification();
    audit.AddRow({m->name(), eval::Cell(amp, 5),
                  amp <= gamma + 1e-9 ? "yes" : "NO"});
  }
  audit.Print(std::cout);

  std::cout << "\n=== Step 3: optional randomization (RAN-GD) ===\n";
  std::cout << "Worst-case posterior for a 5%-prior property, as the miner can\n"
               "DETERMINE it (paper Section 4.1):\n\n";
  eval::TextTable window({"alpha/(gamma x)", "posterior range", "deterministic"});
  const uint64_t n = schema.DomainSize();
  const double x = 1.0 / (gamma + static_cast<double>(n) - 1.0);
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const core::PosteriorRange range = Unwrap(
        core::RandomizedPosteriorRange(0.05, gamma, n, fraction * gamma * x));
    window.AddRow({eval::Cell(fraction, 3),
                   "[" + eval::Cell(range.lower * 100, 3) + "%, " +
                       eval::Cell(range.upper * 100, 3) + "%]",
                   eval::Cell(range.center * 100, 3) + "%"});
  }
  window.Print(std::cout);

  std::cout << "\nInterpretation: with the deterministic matrix the adversary\n"
               "can compute the breach EXACTLY (50%). With RAN-GD they only\n"
               "know it lies in the printed range; at alpha = gamma*x/2 the\n"
               "determinable worst case drops to ~33% — the paper's headline\n"
               "privacy gain for a marginal accuracy cost.\n";

  std::cout << "\n=== Step 4: end-to-end dry run through the streaming pipeline ===\n";
  // Every audited mechanism is exercised on a small CENSUS sample via the
  // shard-streaming PrivacyPipeline (there is no monolithic path), so the
  // audit also proves the deployment path works at bounded memory.
  const data::CategoricalTable sample = Unwrap(data::census::MakeDataset(20000, 7));
  pipeline::PipelineOptions options;
  options.num_shards = 0;   // one shard per seeded chunk
  options.num_threads = 0;  // all hardware threads
  options.mining.min_support = 0.02;
  auto ind = Unwrap(core::IndependentColumnMechanism::Create(schema, gamma));
  eval::TextTable dry({"mechanism", "shards", "peak perturbed (KiB)",
                       "frequent itemsets"});
  for (core::Mechanism* m :
       {static_cast<core::Mechanism*>(det.get()),
        static_cast<core::Mechanism*>(mask.get()),
        static_cast<core::Mechanism*>(cp.get()),
        static_cast<core::Mechanism*>(ind.get())}) {
    const pipeline::PipelineResult run =
        Unwrap(pipeline::PrivacyPipeline(options).Run(*m, sample));
    dry.AddRow({m->name(), std::to_string(run.stats.num_shards),
                std::to_string(run.stats.peak_inflight_perturbed_bytes / 1024),
                std::to_string(run.mined.TotalFrequent())});
  }
  dry.Print(std::cout);
  return 0;
}
