// Plain-text table/series rendering for the bench binaries, which print the
// same rows/series the paper's tables and figures report.

#ifndef FRAPP_EVAL_REPORTING_H_
#define FRAPP_EVAL_REPORTING_H_

#include <iostream>
#include <string>
#include <vector>

#include "frapp/common/status.h"
#include "frapp/mining/apriori.h"
#include "frapp/mining/rules.h"

namespace frapp {
namespace eval {

/// Fixed-width text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; its arity must match the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column alignment and a separator under the header.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Number formatting for report cells: finite values with `digits`
/// significant digits, NaN/inf rendered as "-" (the paper's figures simply
/// have no point where a mechanism found nothing).
std::string Cell(double value, int digits = 4);

/// Writes rows as CSV (used to dump figure series for external plotting).
Status WriteCsv(const std::string& path, const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// The canonical frequent-itemset report, shared by every mine mode
/// (`frapp mine` single-process/distributed/incremental and the
/// `frapp query` client): identical supports print identical text, which is
/// how scripts prove bit-parity between execution paths with a plain
/// `diff`. Supports print at 9 significant digits so near-miss parity
/// failures show up instead of rounding away. The golden fixtures under
/// tests/golden/ freeze this format — changing it is a format break.
void PrintMiningReport(std::ostream& os, const data::CategoricalSchema& schema,
                       const mining::AprioriResult& result,
                       const std::string& label, double minsup, size_t top);

/// The association-rule report (same conventions: 9 significant digits,
/// deterministic order — rules arrive pre-sorted from
/// mining::GenerateAssociationRules).
void PrintRulesReport(std::ostream& os, const data::CategoricalSchema& schema,
                      const std::vector<mining::AssociationRule>& rules,
                      const std::string& label, double min_confidence,
                      size_t top);

}  // namespace eval
}  // namespace frapp

#endif  // FRAPP_EVAL_REPORTING_H_
