#include "frapp/eval/metrics.h"

#include <cmath>
#include <limits>
#include <unordered_map>

namespace frapp {
namespace eval {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

std::vector<LengthAccuracy> CompareMiningResults(
    const mining::AprioriResult& truth, const mining::AprioriResult& estimated) {
  const size_t max_len =
      std::max(truth.by_length.size(), estimated.by_length.size());
  std::vector<LengthAccuracy> out;

  for (size_t k = 1; k <= max_len; ++k) {
    const auto& f_list = truth.OfLength(k);
    const auto& r_list = estimated.OfLength(k);
    if (f_list.empty() && r_list.empty()) continue;

    std::unordered_map<mining::Itemset, double, mining::Itemset::Hash> f_support;
    f_support.reserve(f_list.size() * 2);
    for (const auto& f : f_list) f_support.emplace(f.itemset, f.support);

    LengthAccuracy acc;
    acc.length = k;
    acc.true_frequent = f_list.size();
    acc.found_frequent = r_list.size();

    double error_sum = 0.0;
    for (const auto& r : r_list) {
      auto it = f_support.find(r.itemset);
      if (it == f_support.end()) continue;  // false positive
      ++acc.correct;
      error_sum += std::fabs(r.support - it->second) / it->second;
    }
    acc.support_error =
        acc.correct > 0 ? 100.0 * error_sum / static_cast<double>(acc.correct) : kNaN;
    if (acc.true_frequent > 0) {
      const double f_count = static_cast<double>(acc.true_frequent);
      acc.sigma_minus =
          100.0 * static_cast<double>(acc.true_frequent - acc.correct) / f_count;
      acc.sigma_plus =
          100.0 * static_cast<double>(acc.found_frequent - acc.correct) / f_count;
    } else {
      acc.sigma_minus = kNaN;
      acc.sigma_plus = kNaN;
    }
    out.push_back(acc);
  }
  return out;
}

LengthAccuracy OverallAccuracy(const std::vector<LengthAccuracy>& per_length) {
  LengthAccuracy total;
  total.length = 0;
  double error_weighted = 0.0;
  size_t error_weight = 0;
  for (const LengthAccuracy& acc : per_length) {
    total.true_frequent += acc.true_frequent;
    total.found_frequent += acc.found_frequent;
    total.correct += acc.correct;
    if (acc.correct > 0 && std::isfinite(acc.support_error)) {
      error_weighted += acc.support_error * static_cast<double>(acc.correct);
      error_weight += acc.correct;
    }
  }
  total.support_error =
      error_weight > 0 ? error_weighted / static_cast<double>(error_weight) : kNaN;
  if (total.true_frequent > 0) {
    const double f_count = static_cast<double>(total.true_frequent);
    total.sigma_minus =
        100.0 * static_cast<double>(total.true_frequent - total.correct) / f_count;
    total.sigma_plus =
        100.0 * static_cast<double>(total.found_frequent - total.correct) / f_count;
  } else {
    total.sigma_minus = kNaN;
    total.sigma_plus = kNaN;
  }
  return total;
}

}  // namespace eval
}  // namespace frapp
