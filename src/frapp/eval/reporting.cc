#include "frapp/eval/reporting.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "frapp/common/check.h"

namespace frapp {
namespace eval {

void TextTable::AddRow(std::vector<std::string> cells) {
  FRAPP_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t j = 0; j < headers_.size(); ++j) widths[j] = headers_[j].size();
  for (const auto& row : rows_) {
    for (size_t j = 0; j < row.size(); ++j) {
      widths[j] = std::max(widths[j], row[j].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t j = 0; j < row.size(); ++j) {
      os << (j == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(widths[j]))
         << row[j];
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w;
  os << std::string(total + 2 * (headers_.size() - 1), '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Cell(double value, int digits) {
  if (!std::isfinite(value)) return "-";
  std::ostringstream os;
  os << std::setprecision(digits) << value;
  return os.str();
}

void PrintMiningReport(std::ostream& os, const data::CategoricalSchema& schema,
                       const mining::AprioriResult& result,
                       const std::string& label, double minsup, size_t top) {
  os << label << " frequent itemsets (minsup = " << minsup << "):";
  for (size_t k = 1; k <= result.MaxLength(); ++k) {
    os << "  L" << k << "=" << result.OfLength(k).size();
  }
  os << "\n\n";

  std::vector<mining::FrequentItemset> all;
  for (const auto& level : result.by_length) {
    all.insert(all.end(), level.begin(), level.end());
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.support > b.support; });
  TextTable out({"support", "itemset"});
  for (size_t i = 0; i < std::min(top, all.size()); ++i) {
    out.AddRow({Cell(all[i].support, 9), all[i].itemset.ToString(schema)});
  }
  out.Print(os);
}

void PrintRulesReport(std::ostream& os, const data::CategoricalSchema& schema,
                      const std::vector<mining::AssociationRule>& rules,
                      const std::string& label, double min_confidence,
                      size_t top) {
  os << label << " association rules (minconf = " << min_confidence
     << "): " << rules.size() << " rule(s)\n\n";
  TextTable out({"confidence", "support", "rule"});
  for (size_t i = 0; i < std::min(top, rules.size()); ++i) {
    out.AddRow({Cell(rules[i].confidence, 9), Cell(rules[i].support, 9),
                rules[i].ToString(schema)});
  }
  out.Print(os);
}

Status WriteCsv(const std::string& path, const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  for (size_t j = 0; j < header.size(); ++j) {
    if (j > 0) out << ',';
    out << header[j];
  }
  out << '\n';
  for (const auto& row : rows) {
    for (size_t j = 0; j < row.size(); ++j) {
      if (j > 0) out << ',';
      out << row[j];
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace eval
}  // namespace frapp
