// End-to-end experiment runner: perturb -> mine -> compare against truth.
// This is the pipeline behind Figures 1-3.

#ifndef FRAPP_EVAL_EXPERIMENT_H_
#define FRAPP_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/core/mechanism.h"
#include "frapp/data/table.h"
#include "frapp/eval/metrics.h"
#include "frapp/mining/apriori.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace eval {

/// Shared experiment parameters (paper Section 7 defaults).
struct ExperimentConfig {
  /// supmin as a fraction; the paper mines at 2%.
  double min_support = 0.02;

  /// Cap on mined itemset length (0 = schema bound).
  size_t max_length = 0;

  /// Seed for the perturbation randomness.
  uint64_t perturb_seed = 7;
};

/// One mechanism's result on one dataset.
struct MechanismRun {
  std::string mechanism_name;
  mining::AprioriResult mined;
  std::vector<LengthAccuracy> accuracy;
};

/// Runs `mechanism` on `original`: perturbs with a fresh Pcg64(perturb_seed),
/// mines with the mechanism's reconstructing estimator, and scores against
/// `truth` (the exact mining result at the same threshold).
StatusOr<MechanismRun> RunMechanism(core::Mechanism& mechanism,
                                    const data::CategoricalTable& original,
                                    const mining::AprioriResult& truth,
                                    const ExperimentConfig& config);

}  // namespace eval
}  // namespace frapp

#endif  // FRAPP_EVAL_EXPERIMENT_H_
