// End-to-end experiment runner: perturb -> mine -> compare against truth.
// This is the pipeline behind Figures 1-3.

#ifndef FRAPP_EVAL_EXPERIMENT_H_
#define FRAPP_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/core/mechanism.h"
#include "frapp/data/table.h"
#include "frapp/eval/metrics.h"
#include "frapp/mining/apriori.h"
#include "frapp/pipeline/privacy_pipeline.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace eval {

/// Shared experiment parameters (paper Section 7 defaults).
struct ExperimentConfig {
  /// supmin as a fraction; the paper mines at 2%.
  double min_support = 0.02;

  /// Cap on mined itemset length (0 = schema bound).
  size_t max_length = 0;

  /// Seed for the perturbation randomness.
  uint64_t perturb_seed = 7;

  /// Row shards streamed through the perturb -> index -> count pipeline
  /// (0 = one per seeded-chunk quantum). Results are bit-identical for
  /// every value; more shards expose parallelism and bound peak memory.
  size_t num_shards = 1;

  /// Worker threads for shard streaming and candidate counting (0 =
  /// hardware concurrency). Never affects results.
  size_t num_threads = 1;

  /// Pull the source through a PrefetchingTableSource producer thread
  /// (parse the next shard while the workers perturb the current one).
  /// Never affects results.
  bool prefetch_source = false;
};

/// One mechanism's result on one dataset.
struct MechanismRun {
  std::string mechanism_name;
  mining::AprioriResult mined;
  std::vector<LengthAccuracy> accuracy;
  pipeline::PipelineStats pipeline_stats;
};

/// Runs `mechanism` on `original` through the shard-streaming
/// pipeline::PrivacyPipeline (every mechanism streams; there is no
/// monolithic path): perturbs deterministically from `perturb_seed`, mines
/// with the mechanism's reconstructing estimator, and scores against
/// `truth` (the exact mining result at the same threshold).
StatusOr<MechanismRun> RunMechanism(core::Mechanism& mechanism,
                                    const data::CategoricalTable& original,
                                    const mining::AprioriResult& truth,
                                    const ExperimentConfig& config);

/// Same flow fed by an arbitrary TableSource (CSV stream, synthetic
/// generator, ...): the table never needs to exist fully in memory.
StatusOr<MechanismRun> RunMechanism(core::Mechanism& mechanism,
                                    pipeline::TableSource& source,
                                    const mining::AprioriResult& truth,
                                    const ExperimentConfig& config);

/// Scores an externally produced mining result against truth — the
/// comparison half of RunMechanism, for flows whose mining happens outside
/// the pipeline (the frapp/dist coordinator path: perturbation and counting
/// on remote workers, reconstruction on the coordinator).
MechanismRun ScoreMiningRun(std::string mechanism_name,
                            mining::AprioriResult mined,
                            const mining::AprioriResult& truth);

}  // namespace eval
}  // namespace frapp

#endif  // FRAPP_EVAL_EXPERIMENT_H_
