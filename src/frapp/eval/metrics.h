// Accuracy metrics of paper Section 7.
//
// Support error (rho): mean percentage relative error of the reconstructed
// supports over the itemsets CORRECTLY identified as frequent.
// Identity errors (sigma+/sigma-): percentage of false positives / false
// negatives relative to the number of truly frequent itemsets.

#ifndef FRAPP_EVAL_METRICS_H_
#define FRAPP_EVAL_METRICS_H_

#include <vector>

#include "frapp/mining/apriori.h"

namespace frapp {
namespace eval {

/// Accuracy for one itemset length.
struct LengthAccuracy {
  size_t length = 0;

  size_t true_frequent = 0;   ///< |F|: truly frequent itemsets
  size_t found_frequent = 0;  ///< |R|: itemsets reported frequent
  size_t correct = 0;         ///< |F intersect R|

  /// Support error rho (percent); NaN when no itemset was correctly found.
  double support_error = 0.0;

  /// False negatives sigma- = |F - R| / |F| * 100; NaN when |F| = 0.
  double sigma_minus = 0.0;

  /// False positives sigma+ = |R - F| / |F| * 100; NaN when |F| = 0.
  double sigma_plus = 0.0;
};

/// Compares an estimated mining result against the exact one, length by
/// length (lengths with neither true nor found itemsets are omitted).
std::vector<LengthAccuracy> CompareMiningResults(
    const mining::AprioriResult& truth, const mining::AprioriResult& estimated);

/// Aggregates the per-length rows into an overall row (length = 0) using
/// itemset-weighted averages.
LengthAccuracy OverallAccuracy(const std::vector<LengthAccuracy>& per_length);

}  // namespace eval
}  // namespace frapp

#endif  // FRAPP_EVAL_METRICS_H_
