#include "frapp/eval/experiment.h"

namespace frapp {
namespace eval {

namespace {

pipeline::PipelineOptions ToPipelineOptions(const ExperimentConfig& config) {
  pipeline::PipelineOptions options;
  options.num_shards = config.num_shards;
  options.num_threads = config.num_threads;
  options.prefetch_source = config.prefetch_source;
  options.perturb_seed = config.perturb_seed;
  options.mining.min_support = config.min_support;
  options.mining.max_length = config.max_length;
  return options;
}

StatusOr<MechanismRun> ScoreRun(core::Mechanism& mechanism,
                                StatusOr<pipeline::PipelineResult> result,
                                const mining::AprioriResult& truth) {
  FRAPP_RETURN_IF_ERROR(result.status());
  MechanismRun run =
      ScoreMiningRun(mechanism.name(), std::move(result->mined), truth);
  run.pipeline_stats = result->stats;
  return run;
}

}  // namespace

MechanismRun ScoreMiningRun(std::string mechanism_name,
                            mining::AprioriResult mined,
                            const mining::AprioriResult& truth) {
  MechanismRun run;
  run.mechanism_name = std::move(mechanism_name);
  run.accuracy = CompareMiningResults(truth, mined);
  run.mined = std::move(mined);
  return run;
}

StatusOr<MechanismRun> RunMechanism(core::Mechanism& mechanism,
                                    const data::CategoricalTable& original,
                                    const mining::AprioriResult& truth,
                                    const ExperimentConfig& config) {
  pipeline::PrivacyPipeline privacy_pipeline(ToPipelineOptions(config));
  return ScoreRun(mechanism, privacy_pipeline.Run(mechanism, original), truth);
}

StatusOr<MechanismRun> RunMechanism(core::Mechanism& mechanism,
                                    pipeline::TableSource& source,
                                    const mining::AprioriResult& truth,
                                    const ExperimentConfig& config) {
  pipeline::PrivacyPipeline privacy_pipeline(ToPipelineOptions(config));
  return ScoreRun(mechanism, privacy_pipeline.Run(mechanism, source), truth);
}

}  // namespace eval
}  // namespace frapp
