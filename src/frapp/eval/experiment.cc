#include "frapp/eval/experiment.h"

namespace frapp {
namespace eval {

StatusOr<MechanismRun> RunMechanism(core::Mechanism& mechanism,
                                    const data::CategoricalTable& original,
                                    const mining::AprioriResult& truth,
                                    const ExperimentConfig& config) {
  pipeline::PipelineOptions options;
  options.num_shards = config.num_shards;
  options.num_threads = config.num_threads;
  options.perturb_seed = config.perturb_seed;
  options.mining.min_support = config.min_support;
  options.mining.max_length = config.max_length;
  pipeline::PrivacyPipeline privacy_pipeline(options);
  FRAPP_ASSIGN_OR_RETURN(pipeline::PipelineResult result,
                         privacy_pipeline.Run(mechanism, original));

  MechanismRun run;
  run.mechanism_name = mechanism.name();
  run.accuracy = CompareMiningResults(truth, result.mined);
  run.mined = std::move(result.mined);
  run.pipeline_stats = result.stats;
  return run;
}

}  // namespace eval
}  // namespace frapp
