#include "frapp/eval/experiment.h"

namespace frapp {
namespace eval {

StatusOr<MechanismRun> RunMechanism(core::Mechanism& mechanism,
                                    const data::CategoricalTable& original,
                                    const mining::AprioriResult& truth,
                                    const ExperimentConfig& config) {
  random::Pcg64 rng(config.perturb_seed);
  FRAPP_RETURN_IF_ERROR(mechanism.Prepare(original, rng));

  mining::AprioriOptions options;
  options.min_support = config.min_support;
  options.max_length = config.max_length;
  FRAPP_ASSIGN_OR_RETURN(
      mining::AprioriResult mined,
      mining::MineFrequentItemsets(original.schema(), mechanism.estimator(),
                                   options));

  MechanismRun run;
  run.mechanism_name = mechanism.name();
  run.accuracy = CompareMiningResults(truth, mined);
  run.mined = std::move(mined);
  return run;
}

}  // namespace eval
}  // namespace frapp
