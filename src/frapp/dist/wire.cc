#include "frapp/dist/wire.h"

#include <algorithm>
#include <utility>

#include "frapp/data/boolean_vertical_index.h"
#include "frapp/dist/wire_io.h"

namespace frapp {
namespace dist {

namespace {

// The payload builder/reader moved to dist/wire_io.h when the serve query
// frames joined the protocol; these aliases keep the decoders below
// unchanged.
using Writer = PayloadWriter;
using Reader = PayloadReader;

bool KnownMessageType(uint8_t type) {
  return type >= static_cast<uint8_t>(MessageType::kHello) &&
         type <= static_cast<uint8_t>(MessageType::kQueryResponse);
}

}  // namespace

// ---------------------------------------------------------------- framing --

std::vector<uint8_t> EncodeFrame(const Message& message) {
  Writer w;
  w.U32(static_cast<uint32_t>(message.payload.size()));
  w.U8(static_cast<uint8_t>(message.type));
  std::vector<uint8_t> frame = w.Take();
  frame.insert(frame.end(), message.payload.begin(), message.payload.end());
  return frame;
}

StatusOr<Message> DecodeFrame(const uint8_t* data, size_t size,
                              size_t* consumed) {
  if (size < kFrameHeaderBytes) {
    return Status::InvalidArgument(
        "frame truncated: " + std::to_string(size) + " of " +
        std::to_string(kFrameHeaderBytes) + " header bytes");
  }
  Reader header(data, kFrameHeaderBytes);
  const uint32_t payload_len = header.U32();
  const uint8_t type = header.U8();
  if (payload_len > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame announces " + std::to_string(payload_len) +
        " payload bytes, above the " + std::to_string(kMaxFramePayload) +
        " cap (corrupt length prefix?)");
  }
  if (!KnownMessageType(type)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(type));
  }
  if (size - kFrameHeaderBytes < payload_len) {
    return Status::InvalidArgument(
        "frame truncated: payload has " +
        std::to_string(size - kFrameHeaderBytes) + " of " +
        std::to_string(payload_len) + " bytes");
  }
  Message message;
  message.type = static_cast<MessageType>(type);
  message.payload.assign(data + kFrameHeaderBytes,
                         data + kFrameHeaderBytes + payload_len);
  *consumed = kFrameHeaderBytes + payload_len;
  return message;
}

// --------------------------------------------------------------- messages --

namespace {

Status ExpectType(const Message& message, MessageType want, const char* what) {
  if (message.type == want) return Status::OK();
  if (message.type == MessageType::kError) return DecodeError(message);
  return Status::InvalidArgument(
      std::string(what) + ": unexpected message type " +
      std::to_string(static_cast<int>(message.type)));
}

}  // namespace

Message EncodeHello(const HelloRequest& hello) {
  Writer w;
  w.U32(hello.protocol_version);
  w.U64(hello.schema_fingerprint);
  w.U64(hello.perturb_seed);
  w.U64(hello.range_begin);
  w.U64(hello.range_end);
  w.U8(static_cast<uint8_t>(hello.spec.kind));
  w.F64(hello.spec.gamma);
  w.F64(hello.spec.alpha);
  w.U8(static_cast<uint8_t>(hello.spec.randomization));
  w.U64(hello.spec.cutoff_k);
  w.F64(hello.spec.rho);
  return Message{MessageType::kHello, w.Take()};
}

StatusOr<HelloRequest> DecodeHello(const Message& message) {
  FRAPP_RETURN_IF_ERROR(ExpectType(message, MessageType::kHello, "Hello"));
  Reader r(message.payload.data(), message.payload.size());
  HelloRequest hello;
  hello.protocol_version = r.U32();
  hello.schema_fingerprint = r.U64();
  hello.perturb_seed = r.U64();
  hello.range_begin = r.U64();
  hello.range_end = r.U64();
  const uint8_t kind = r.U8();
  hello.spec.gamma = r.F64();
  hello.spec.alpha = r.F64();
  const uint8_t randomization = r.U8();
  hello.spec.cutoff_k = r.U64();
  hello.spec.rho = r.F64();
  FRAPP_RETURN_IF_ERROR(r.Finish("Hello"));
  if (kind > static_cast<uint8_t>(MechanismSpec::Kind::kIndGd)) {
    return Status::InvalidArgument("Hello: unknown mechanism kind " +
                                   std::to_string(kind));
  }
  if (randomization >
      static_cast<uint8_t>(random::RandomizationKind::kTruncatedGaussian)) {
    return Status::InvalidArgument("Hello: unknown randomization kind " +
                                   std::to_string(randomization));
  }
  if (hello.range_end < hello.range_begin) {
    return Status::InvalidArgument("Hello: range end before begin");
  }
  hello.spec.kind = static_cast<MechanismSpec::Kind>(kind);
  hello.spec.randomization =
      static_cast<random::RandomizationKind>(randomization);
  return hello;
}

Message EncodeHelloAck(const HelloAck& ack) {
  Writer w;
  w.U64(ack.num_rows);
  w.U8(ack.shard_kind);
  w.U64(ack.num_bits);
  return Message{MessageType::kHelloAck, w.Take()};
}

StatusOr<HelloAck> DecodeHelloAck(const Message& message) {
  FRAPP_RETURN_IF_ERROR(
      ExpectType(message, MessageType::kHelloAck, "HelloAck"));
  Reader r(message.payload.data(), message.payload.size());
  HelloAck ack;
  ack.num_rows = r.U64();
  ack.shard_kind = r.U8();
  ack.num_bits = r.U64();
  FRAPP_RETURN_IF_ERROR(r.Finish("HelloAck"));
  if (ack.shard_kind > 1) {
    return Status::InvalidArgument("HelloAck: unknown shard kind " +
                                   std::to_string(ack.shard_kind));
  }
  return ack;
}

Message EncodeCountRequest(const CountRequest& request) {
  Writer w;
  w.U32(static_cast<uint32_t>(request.itemsets.size()));
  for (const mining::Itemset& itemset : request.itemsets) {
    w.U16(static_cast<uint16_t>(itemset.size()));
    for (const mining::Item& item : itemset.items()) {
      w.U16(item.attribute);
      w.U16(item.category);
    }
  }
  return Message{MessageType::kCountRequest, w.Take()};
}

StatusOr<CountRequest> DecodeCountRequest(const Message& message) {
  FRAPP_RETURN_IF_ERROR(
      ExpectType(message, MessageType::kCountRequest, "CountRequest"));
  Reader r(message.payload.data(), message.payload.size());
  const uint32_t n = r.U32();
  CountRequest request;
  // Never reserve a peer-controlled count beyond what the payload could
  // possibly hold (6 bytes is the smallest itemset encoding): a corrupt n
  // must fail as a truncated payload, not as a giant allocation.
  request.itemsets.reserve(
      r.failed() ? 0 : std::min<size_t>(n, r.remaining() / 6));
  for (uint32_t c = 0; c < n && !r.failed(); ++c) {
    const uint16_t k = r.U16();
    if (k == 0) {
      return Status::InvalidArgument("CountRequest: empty itemset");
    }
    std::vector<mining::Item> items;
    items.reserve(k);
    for (uint16_t i = 0; i < k; ++i) {
      const uint16_t attribute = r.U16();
      const uint16_t category = r.U16();
      items.push_back(mining::Item{attribute, category});
    }
    if (r.failed()) break;
    // Validate the sorted-distinct-attributes invariant instead of trusting
    // the peer.
    FRAPP_ASSIGN_OR_RETURN(mining::Itemset itemset,
                           mining::Itemset::Create(std::move(items)));
    request.itemsets.push_back(std::move(itemset));
  }
  FRAPP_RETURN_IF_ERROR(r.Finish("CountRequest"));
  return request;
}

Message EncodeCountResponse(const CountResponse& response) {
  Writer w;
  w.U32(static_cast<uint32_t>(response.counts.size()));
  for (uint64_t count : response.counts) w.U64(count);
  return Message{MessageType::kCountResponse, w.Take()};
}

StatusOr<CountResponse> DecodeCountResponse(const Message& message) {
  FRAPP_RETURN_IF_ERROR(
      ExpectType(message, MessageType::kCountResponse, "CountResponse"));
  Reader r(message.payload.data(), message.payload.size());
  const uint32_t n = r.U32();
  CountResponse response;
  if (!r.failed() && r.remaining() == n * sizeof(uint64_t)) {
    response.counts.reserve(n);
  }
  for (uint32_t c = 0; c < n && !r.failed(); ++c) {
    response.counts.push_back(r.U64());
  }
  FRAPP_RETURN_IF_ERROR(r.Finish("CountResponse"));
  return response;
}

Message EncodePatternRequest(const PatternRequest& request) {
  Writer w;
  w.U32(static_cast<uint32_t>(request.candidates.size()));
  for (const std::vector<uint32_t>& positions : request.candidates) {
    w.U16(static_cast<uint16_t>(positions.size()));
    for (uint32_t position : positions) w.U32(position);
  }
  return Message{MessageType::kPatternRequest, w.Take()};
}

StatusOr<PatternRequest> DecodePatternRequest(const Message& message) {
  FRAPP_RETURN_IF_ERROR(
      ExpectType(message, MessageType::kPatternRequest, "PatternRequest"));
  Reader r(message.payload.data(), message.payload.size());
  const uint32_t n = r.U32();
  PatternRequest request;
  // Bounded reserve (2 bytes = the smallest candidate encoding): see
  // DecodeCountRequest.
  request.candidates.reserve(
      r.failed() ? 0 : std::min<size_t>(n, r.remaining() / 2));
  uint64_t total_patterns = 0;
  for (uint32_t c = 0; c < n && !r.failed(); ++c) {
    const uint16_t k = r.U16();
    if (k > data::BooleanVerticalIndex::kMaxPatternLength) {
      return Status::InvalidArgument(
          "PatternRequest: " + std::to_string(k) +
          " positions exceed the 2^k counting cap");
    }
    total_patterns += 1ull << k;
    if (total_patterns > kMaxPatternsPerBatch) {
      return Status::InvalidArgument(
          "PatternRequest: batch exceeds the pattern budget (" +
          std::to_string(kMaxPatternsPerBatch) + ")");
    }
    std::vector<uint32_t> positions;
    positions.reserve(k);
    for (uint16_t i = 0; i < k && !r.failed(); ++i) {
      positions.push_back(r.U32());
    }
    request.candidates.push_back(std::move(positions));
  }
  FRAPP_RETURN_IF_ERROR(r.Finish("PatternRequest"));
  return request;
}

Message EncodePatternResponse(const PatternResponse& response) {
  Writer w;
  w.U32(static_cast<uint32_t>(response.superset_counts.size()));
  for (const std::vector<int64_t>& counts : response.superset_counts) {
    w.U32(static_cast<uint32_t>(counts.size()));
    for (int64_t count : counts) w.I64(count);
  }
  return Message{MessageType::kPatternResponse, w.Take()};
}

StatusOr<PatternResponse> DecodePatternResponse(const Message& message) {
  FRAPP_RETURN_IF_ERROR(
      ExpectType(message, MessageType::kPatternResponse, "PatternResponse"));
  Reader r(message.payload.data(), message.payload.size());
  const uint32_t n = r.U32();
  PatternResponse response;
  // Bounded reserve (4 bytes = the smallest per-candidate encoding): see
  // DecodeCountRequest.
  response.superset_counts.reserve(
      r.failed() ? 0 : std::min<size_t>(n, r.remaining() / 4));
  uint64_t total_patterns = 0;
  for (uint32_t c = 0; c < n && !r.failed(); ++c) {
    const uint32_t patterns = r.U32();
    total_patterns += patterns;
    if (total_patterns > kMaxPatternsPerBatch ||
        (r.remaining() < static_cast<size_t>(patterns) * sizeof(int64_t) &&
         !r.failed())) {
      return Status::InvalidArgument(
          "PatternResponse: counts exceed the payload or pattern budget");
    }
    std::vector<int64_t> counts;
    counts.reserve(patterns);
    for (uint32_t s = 0; s < patterns && !r.failed(); ++s) {
      counts.push_back(r.I64());
    }
    response.superset_counts.push_back(std::move(counts));
  }
  FRAPP_RETURN_IF_ERROR(r.Finish("PatternResponse"));
  return response;
}

Message EncodeShutdown() { return Message{MessageType::kShutdown, {}}; }

Message EncodePing() { return Message{MessageType::kPing, {}}; }

Message EncodePong() { return Message{MessageType::kPong, {}}; }

Message EncodeAssignRange(const AssignRange& assign) {
  Writer w;
  w.U64(assign.range_begin);
  w.U64(assign.range_end);
  return Message{MessageType::kAssignRange, w.Take()};
}

StatusOr<AssignRange> DecodeAssignRange(const Message& message) {
  FRAPP_RETURN_IF_ERROR(
      ExpectType(message, MessageType::kAssignRange, "AssignRange"));
  Reader r(message.payload.data(), message.payload.size());
  AssignRange assign;
  assign.range_begin = r.U64();
  assign.range_end = r.U64();
  FRAPP_RETURN_IF_ERROR(r.Finish("AssignRange"));
  if (assign.range_end < assign.range_begin) {
    return Status::InvalidArgument("AssignRange: range end before begin");
  }
  return assign;
}

Message EncodeRangeAck(const RangeAck& ack) {
  Writer w;
  w.U64(ack.num_rows);
  w.U64(ack.num_bits);
  return Message{MessageType::kRangeAck, w.Take()};
}

StatusOr<RangeAck> DecodeRangeAck(const Message& message) {
  FRAPP_RETURN_IF_ERROR(
      ExpectType(message, MessageType::kRangeAck, "RangeAck"));
  Reader r(message.payload.data(), message.payload.size());
  RangeAck ack;
  ack.num_rows = r.U64();
  ack.num_bits = r.U64();
  FRAPP_RETURN_IF_ERROR(r.Finish("RangeAck"));
  return ack;
}

Message EncodeError(const Status& status) {
  Writer w;
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.message());
  return Message{MessageType::kError, w.Take()};
}

Status DecodeError(const Message& message) {
  if (message.type != MessageType::kError) {
    return Status::InvalidArgument("DecodeError on a non-Error message");
  }
  Reader r(message.payload.data(), message.payload.size());
  const uint8_t code = r.U8();
  std::string text = r.Str();
  FRAPP_RETURN_IF_ERROR(r.Finish("Error"));
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Internal("remote error with unknown status code " +
                            std::to_string(code) + ": " + text);
  }
  return Status(static_cast<StatusCode>(code), "remote: " + std::move(text));
}

}  // namespace dist
}  // namespace frapp
