// Retry policy for the frapp/dist coordinator and dial-out paths: how many
// times to wait, how long each wait may take, and how far apart repeated
// attempts back off.
//
// Backoff is capped exponential with DETERMINISTIC jitter: the delay for
// attempt k is base * 2^k, clamped to the cap, scaled by a jitter factor in
// [0.5, 1.0] drawn from a splitmix64 hash of (jitter_seed, attempt). Jitter
// decorrelates a fleet of coordinators redialing the same worker, and being
// a pure function of the seed keeps tests and reproduced runs exact.

#ifndef FRAPP_DIST_RETRY_H_
#define FRAPP_DIST_RETRY_H_

#include <cstdint>

namespace frapp {
namespace dist {

struct RetryOptions {
  /// Receive waits per request before the peer is declared dead: the first
  /// wait plus (max_attempts - 1) retries, each bounded by
  /// `request_deadline_ms`. Also bounds re-dial attempts on connect paths.
  size_t max_attempts = 3;

  /// Per-attempt send/receive deadline in milliseconds. 0 disables
  /// deadlines entirely (block forever — the pre-fault-tolerance
  /// behaviour). A hung worker is detected after at most
  /// max_attempts * request_deadline_ms.
  uint64_t request_deadline_ms = 0;

  /// First backoff delay between attempts (doubles each attempt).
  uint64_t base_backoff_ms = 20;

  /// Backoff ceiling.
  uint64_t max_backoff_ms = 2000;

  /// Seed of the deterministic jitter stream. Two coordinators with
  /// different seeds spread their retries; one seed reproduces exactly.
  uint64_t jitter_seed = 0x6a09e667f3bcc909ull;
};

/// splitmix64: the one-shot hash behind the jitter stream.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Delay before retry `attempt` (0-based: the delay between the first
/// failure and the second attempt is BackoffMillis(options, 0)).
/// Deterministic in (options, attempt).
inline uint64_t BackoffMillis(const RetryOptions& options, size_t attempt) {
  // base * 2^attempt without overflow: saturate at the cap early.
  uint64_t delay = options.base_backoff_ms;
  for (size_t i = 0; i < attempt && delay < options.max_backoff_ms; ++i) {
    delay *= 2;
  }
  if (delay > options.max_backoff_ms) delay = options.max_backoff_ms;
  // Jitter factor in [1/2, 1]: delay/2 + hash-fraction * delay/2.
  const uint64_t h = SplitMix64(options.jitter_seed ^ (attempt + 1));
  return delay / 2 + (h % (delay / 2 + 1));
}

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_RETRY_H_
