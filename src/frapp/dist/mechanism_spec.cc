#include "frapp/dist/mechanism_spec.h"

#include <algorithm>
#include <cctype>

namespace frapp {
namespace dist {

std::string MechanismSpecName(const MechanismSpec& spec) {
  switch (spec.kind) {
    case MechanismSpec::Kind::kDetGd:
      return "DET-GD";
    case MechanismSpec::Kind::kRanGd:
      return "RAN-GD";
    case MechanismSpec::Kind::kMask:
      return "MASK";
    case MechanismSpec::Kind::kCutPaste:
      return "C&P";
    case MechanismSpec::Kind::kIndGd:
      return "IND-GD";
  }
  return "?";
}

StatusOr<MechanismSpec::Kind> ParseMechanismKind(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "det-gd" || lower == "detgd") return MechanismSpec::Kind::kDetGd;
  if (lower == "ran-gd" || lower == "rangd") return MechanismSpec::Kind::kRanGd;
  if (lower == "mask") return MechanismSpec::Kind::kMask;
  if (lower == "cp" || lower == "c&p" || lower == "cut-paste") {
    return MechanismSpec::Kind::kCutPaste;
  }
  if (lower == "ind-gd" || lower == "indgd") return MechanismSpec::Kind::kIndGd;
  return Status::InvalidArgument(
      "unknown mechanism '" + name +
      "' (det-gd|ran-gd|mask|cp|ind-gd)");
}

StatusOr<std::unique_ptr<core::Mechanism>> MakeMechanism(
    const MechanismSpec& spec, const data::CategoricalSchema& schema) {
  std::unique_ptr<core::Mechanism> mechanism;
  switch (spec.kind) {
    case MechanismSpec::Kind::kDetGd: {
      FRAPP_ASSIGN_OR_RETURN(mechanism,
                             core::DetGdMechanism::Create(schema, spec.gamma));
      break;
    }
    case MechanismSpec::Kind::kRanGd: {
      FRAPP_ASSIGN_OR_RETURN(
          mechanism, core::RanGdMechanism::Create(schema, spec.gamma,
                                                  spec.alpha,
                                                  spec.randomization));
      break;
    }
    case MechanismSpec::Kind::kMask: {
      FRAPP_ASSIGN_OR_RETURN(mechanism,
                             core::MaskMechanism::Create(schema, spec.gamma));
      break;
    }
    case MechanismSpec::Kind::kCutPaste: {
      FRAPP_ASSIGN_OR_RETURN(
          mechanism, core::CutPasteMechanism::Create(
                         schema, static_cast<size_t>(spec.cutoff_k), spec.rho));
      break;
    }
    case MechanismSpec::Kind::kIndGd: {
      FRAPP_ASSIGN_OR_RETURN(
          mechanism,
          core::IndependentColumnMechanism::Create(schema, spec.gamma));
      break;
    }
  }
  if (mechanism == nullptr) {
    return Status::InvalidArgument("unknown mechanism kind");
  }
  return mechanism;
}

}  // namespace dist
}  // namespace frapp
