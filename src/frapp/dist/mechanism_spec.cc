#include "frapp/dist/mechanism_spec.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace frapp {
namespace dist {

namespace {

/// Exact (bit-pattern) hex form of a double: 0.1 + 0.2 and 0.3 key
/// differently, which is what a cache key wants.
std::string DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return std::string(buf);
}

}  // namespace

std::string MechanismSpecName(const MechanismSpec& spec) {
  switch (spec.kind) {
    case MechanismSpec::Kind::kDetGd:
      return "DET-GD";
    case MechanismSpec::Kind::kRanGd:
      return "RAN-GD";
    case MechanismSpec::Kind::kMask:
      return "MASK";
    case MechanismSpec::Kind::kCutPaste:
      return "C&P";
    case MechanismSpec::Kind::kIndGd:
      return "IND-GD";
  }
  return "?";
}

std::string CanonicalSpecKey(const MechanismSpec& spec) {
  std::string key = "kind=";
  key += std::to_string(static_cast<unsigned>(spec.kind));
  key += "|gamma=" + DoubleBits(spec.gamma);
  key += "|alpha=" + DoubleBits(spec.alpha);
  key += "|rand=" + std::to_string(static_cast<unsigned>(spec.randomization));
  key += "|k=" + std::to_string(spec.cutoff_k);
  key += "|rho=" + DoubleBits(spec.rho);
  return key;
}

StatusOr<MechanismSpec::Kind> ParseMechanismKind(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "det-gd" || lower == "detgd") return MechanismSpec::Kind::kDetGd;
  if (lower == "ran-gd" || lower == "rangd") return MechanismSpec::Kind::kRanGd;
  if (lower == "mask") return MechanismSpec::Kind::kMask;
  if (lower == "cp" || lower == "c&p" || lower == "cut-paste") {
    return MechanismSpec::Kind::kCutPaste;
  }
  if (lower == "ind-gd" || lower == "indgd") return MechanismSpec::Kind::kIndGd;
  return Status::InvalidArgument(
      "unknown mechanism '" + name +
      "' (det-gd|ran-gd|mask|cp|ind-gd)");
}

StatusOr<std::unique_ptr<core::Mechanism>> MakeMechanism(
    const MechanismSpec& spec, const data::CategoricalSchema& schema) {
  std::unique_ptr<core::Mechanism> mechanism;
  switch (spec.kind) {
    case MechanismSpec::Kind::kDetGd: {
      FRAPP_ASSIGN_OR_RETURN(mechanism,
                             core::DetGdMechanism::Create(schema, spec.gamma));
      break;
    }
    case MechanismSpec::Kind::kRanGd: {
      FRAPP_ASSIGN_OR_RETURN(
          mechanism, core::RanGdMechanism::Create(schema, spec.gamma,
                                                  spec.alpha,
                                                  spec.randomization));
      break;
    }
    case MechanismSpec::Kind::kMask: {
      FRAPP_ASSIGN_OR_RETURN(mechanism,
                             core::MaskMechanism::Create(schema, spec.gamma));
      break;
    }
    case MechanismSpec::Kind::kCutPaste: {
      FRAPP_ASSIGN_OR_RETURN(
          mechanism, core::CutPasteMechanism::Create(
                         schema, static_cast<size_t>(spec.cutoff_k), spec.rho));
      break;
    }
    case MechanismSpec::Kind::kIndGd: {
      FRAPP_ASSIGN_OR_RETURN(
          mechanism,
          core::IndependentColumnMechanism::Create(schema, spec.gamma));
      break;
    }
  }
  if (mechanism == nullptr) {
    return Status::InvalidArgument("unknown mechanism kind");
  }
  return mechanism;
}

}  // namespace dist
}  // namespace frapp
