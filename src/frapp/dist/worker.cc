#include "frapp/dist/worker.h"

#include <algorithm>
#include <vector>

#include "frapp/core/mechanism.h"
#include "frapp/data/shard_io.h"
#include "frapp/data/sharded_boolean_vertical_index.h"
#include "frapp/data/sharded_table.h"
#include "frapp/dist/mechanism_spec.h"
#include "frapp/dist/wire.h"
#include "frapp/mining/sharded_vertical_index.h"

namespace frapp {
namespace dist {

namespace {

/// The worker's post-ingest state: the local index of its perturbed range
/// (exactly one of the two populated, by shard kind) plus the mechanism,
/// which owns the reconstruction parameters the coordinator side uses.
struct LocalState {
  std::unique_ptr<core::Mechanism> mechanism;
  core::Mechanism::ShardKind kind = core::Mechanism::ShardKind::kCategorical;
  mining::ShardedVerticalIndex categorical =
      mining::ShardedVerticalIndex::FromShards({});
  data::ShardedBooleanVerticalIndex boolean;

  size_t num_rows() const {
    return kind == core::Mechanism::ShardKind::kBoolean
               ? boolean.num_rows()
               : categorical.num_rows();
  }
};

/// Streams the source's shards intersected with [range.begin, range.end)
/// through perturb -> index -> drop. Every sub-shard keeps its GLOBAL row
/// position, so the seeded-chunk streams — and therefore the perturbed bits
/// — equal the single-process pass over the same rows.
Status IngestRange(const HelloRequest& hello, const WorkerOptions& options,
                   pipeline::TableSource& source, LocalState* state) {
  const data::RowRange range{static_cast<size_t>(hello.range_begin),
                             static_cast<size_t>(hello.range_end)};
  // Seekable sources jump straight to the range (binary files seek); others
  // keep yielding from row 0 and the loop below drops the leading rows.
  FRAPP_RETURN_IF_ERROR(source.SkipToRow(range.begin));

  const bool boolean = state->kind == core::Mechanism::ShardKind::kBoolean;
  std::vector<mining::VerticalIndex> categorical_shards;
  std::vector<data::BooleanVerticalIndex> boolean_shards;
  pipeline::PulledShard shard;
  while (true) {
    FRAPP_ASSIGN_OR_RETURN(const bool more, source.NextShard(&shard));
    if (!more) break;
    const size_t shard_begin = shard.view.global_begin;
    const size_t shard_end = shard_begin + shard.view.size();
    if (shard_end <= range.begin) continue;  // wholly before the range
    if (shard_begin >= range.end) break;     // global order: nothing follows
    // Intersect with the assigned range. Both range bounds and every shard
    // begin are chunk-aligned, so the sub-shard still starts on the chunk
    // grid and seeded perturbation draws the same global streams.
    const size_t begin = std::max(shard_begin, range.begin);
    const size_t end = std::min(shard_end, range.end);
    data::ShardView view;
    view.rows = shard.view.rows;
    view.local = data::RowRange{shard.view.local.begin + (begin - shard_begin),
                                shard.view.local.begin + (end - shard_begin)};
    view.global_begin = begin;
    if (boolean) {
      FRAPP_ASSIGN_OR_RETURN(
          data::BooleanTable perturbed,
          state->mechanism->PerturbBooleanShard(view, hello.perturb_seed,
                                                options.num_threads));
      shard.owned.reset();  // source rows dropped once perturbed
      boolean_shards.emplace_back(perturbed);
    } else {
      FRAPP_ASSIGN_OR_RETURN(
          data::CategoricalTable perturbed,
          state->mechanism->PerturbShard(view, hello.perturb_seed,
                                         options.num_threads));
      shard.owned.reset();
      categorical_shards.push_back(
          mining::VerticalIndex::Build(perturbed, options.num_threads));
    }  // the perturbed rows are dropped here
  }
  if (boolean) {
    state->boolean =
        data::ShardedBooleanVerticalIndex::FromShards(std::move(boolean_shards));
  } else {
    state->categorical =
        mining::ShardedVerticalIndex::FromShards(std::move(categorical_shards));
  }
  return Status::OK();
}

/// Handshake: validates the Hello against local reality, then perturbs and
/// indexes the assigned range.
Status HandleHello(const Message& message, const WorkerOptions& options,
                   LocalState* state, HelloAck* ack) {
  FRAPP_ASSIGN_OR_RETURN(const HelloRequest hello, DecodeHello(message));
  if (hello.protocol_version != kProtocolVersion) {
    return Status::FailedPrecondition(
        "protocol version mismatch: coordinator speaks v" +
        std::to_string(hello.protocol_version) + ", worker v" +
        std::to_string(kProtocolVersion));
  }
  const uint64_t local_fingerprint = data::SchemaFingerprint(options.schema);
  if (hello.schema_fingerprint != local_fingerprint) {
    return Status::FailedPrecondition(
        "schema fingerprint mismatch: coordinator " +
        std::to_string(hello.schema_fingerprint) + ", worker " +
        std::to_string(local_fingerprint) +
        " — the two sides would disagree on category ids");
  }
  if (hello.range_begin % data::kShardAlignmentRows != 0) {
    return Status::InvalidArgument(
        "assigned range must start on the chunk quantum (" +
        std::to_string(data::kShardAlignmentRows) + " rows)");
  }
  FRAPP_ASSIGN_OR_RETURN(state->mechanism,
                         MakeMechanism(hello.spec, options.schema));
  if (!state->mechanism->SupportsShardStreaming()) {
    return Status::Unimplemented(state->mechanism->name() +
                                 " does not stream shards");
  }
  state->kind = state->mechanism->shard_kind();

  FRAPP_ASSIGN_OR_RETURN(std::unique_ptr<pipeline::TableSource> source,
                         options.source_factory());
  if (data::SchemaFingerprint(source->schema()) != local_fingerprint) {
    return Status::FailedPrecondition(
        "worker source schema differs from worker schema");
  }
  FRAPP_RETURN_IF_ERROR(IngestRange(hello, options, *source, state));

  ack->num_rows = state->num_rows();
  ack->shard_kind =
      state->kind == core::Mechanism::ShardKind::kBoolean ? 1 : 0;
  ack->num_bits = state->kind == core::Mechanism::ShardKind::kBoolean
                      ? state->boolean.num_bits()
                      : 0;
  return Status::OK();
}

StatusOr<Message> HandleCountRequest(const Message& message,
                                     const WorkerOptions& options,
                                     const LocalState& state) {
  if (state.kind != core::Mechanism::ShardKind::kCategorical) {
    return Status::FailedPrecondition(
        "CountRequest against a boolean-kind worker");
  }
  FRAPP_ASSIGN_OR_RETURN(const CountRequest request,
                         DecodeCountRequest(message));
  // Validate against the schema before touching bitmaps: a corrupt peer
  // must get an Error frame, not index out of range.
  for (const mining::Itemset& itemset : request.itemsets) {
    for (const mining::Item& item : itemset.items()) {
      if (item.attribute >= options.schema.num_attributes() ||
          item.category >= options.schema.Cardinality(item.attribute)) {
        return Status::OutOfRange("itemset references item (" +
                                  std::to_string(item.attribute) + ", " +
                                  std::to_string(item.category) +
                                  ") outside the schema");
      }
    }
  }
  const std::vector<size_t> counts =
      state.categorical.CountSupports(request.itemsets, options.num_threads);
  CountResponse response;
  response.counts.assign(counts.begin(), counts.end());
  return EncodeCountResponse(response);
}

StatusOr<Message> HandlePatternRequest(const Message& message,
                                       const WorkerOptions& options,
                                       const LocalState& state) {
  if (state.kind != core::Mechanism::ShardKind::kBoolean) {
    return Status::FailedPrecondition(
        "PatternRequest against a categorical-kind worker");
  }
  FRAPP_ASSIGN_OR_RETURN(const PatternRequest request,
                         DecodePatternRequest(message));
  PatternResponse response;
  response.superset_counts.reserve(request.candidates.size());
  for (const std::vector<uint32_t>& candidate : request.candidates) {
    std::vector<size_t> positions(candidate.begin(), candidate.end());
    // A zero-row worker owns no bits; its superset counts are all zero for
    // any positions. Otherwise bounds-check against the one-hot width.
    if (state.boolean.num_shards() > 0) {
      for (size_t position : positions) {
        if (position >= state.boolean.num_bits()) {
          return Status::OutOfRange(
              "bit position " + std::to_string(position) +
              " outside the one-hot layout (" +
              std::to_string(state.boolean.num_bits()) + " bits)");
        }
      }
    }
    response.superset_counts.push_back(
        state.boolean.SupersetCounts(positions, options.num_threads));
  }
  return EncodePatternResponse(response);
}

}  // namespace

Status ServeWorker(Transport& transport, const WorkerOptions& options) {
  LocalState state;
  bool prepared = false;
  while (true) {
    StatusOr<Message> received = transport.Receive();
    if (!received.ok()) {
      // A peer that simply went away (clean close) ends the session
      // without error; anything else — a corrupt frame, an I/O failure —
      // is the session's failure.
      if (received.status().code() == StatusCode::kFailedPrecondition) {
        return Status::OK();
      }
      return received.status();
    }
    StatusOr<Message> reply = Status::Internal("unhandled message");
    switch (received->type) {
      case MessageType::kHello: {
        HelloAck ack;
        const Status handshake =
            HandleHello(*received, options, &state, &ack);
        prepared = handshake.ok();
        reply = handshake.ok() ? StatusOr<Message>(EncodeHelloAck(ack))
                               : StatusOr<Message>(handshake);
        break;
      }
      case MessageType::kCountRequest:
        reply = prepared ? HandleCountRequest(*received, options, state)
                         : StatusOr<Message>(Status::FailedPrecondition(
                               "CountRequest before a successful Hello"));
        break;
      case MessageType::kPatternRequest:
        reply = prepared ? HandlePatternRequest(*received, options, state)
                         : StatusOr<Message>(Status::FailedPrecondition(
                               "PatternRequest before a successful Hello"));
        break;
      case MessageType::kShutdown:
        return Status::OK();
      default:
        reply = Status::InvalidArgument(
            "worker cannot handle message type " +
            std::to_string(static_cast<int>(received->type)));
        break;
    }
    if (reply.ok()) {
      FRAPP_RETURN_IF_ERROR(transport.Send(*reply));
    } else {
      // Status propagation: ship the failure to the coordinator, then end
      // the session with it locally too.
      (void)transport.Send(EncodeError(reply.status()));
      return reply.status();
    }
  }
}

InProcessWorker::InProcessWorker(WorkerOptions options) {
  auto [worker_side, coordinator_side] = CreateInProcessTransportPair();
  worker_endpoint_ = std::move(worker_side);
  coordinator_endpoint_ = std::move(coordinator_side);
  thread_ = std::thread([this, options = std::move(options)] {
    result_ = ServeWorker(*worker_endpoint_, options);
  });
}

InProcessWorker::~InProcessWorker() { (void)Join(); }

Status InProcessWorker::Join() {
  if (!joined_) {
    worker_endpoint_->Close();
    thread_.join();
    joined_ = true;
  }
  return result_;
}

}  // namespace dist
}  // namespace frapp
