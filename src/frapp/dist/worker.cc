#include "frapp/dist/worker.h"

#include <algorithm>
#include <vector>

#include "frapp/core/mechanism.h"
#include "frapp/data/shard_io.h"
#include "frapp/data/sharded_boolean_vertical_index.h"
#include "frapp/data/sharded_table.h"
#include "frapp/dist/mechanism_spec.h"
#include "frapp/dist/wire.h"
#include "frapp/mining/sharded_vertical_index.h"

namespace frapp {
namespace dist {

namespace {

/// The worker's post-ingest state: the local index of its perturbed
/// range(s) (exactly one of the two populated, by shard kind), the
/// mechanism, and the saved job description so a later AssignRange re-runs
/// ingest with the SAME seed and spec.
struct LocalState {
  std::unique_ptr<core::Mechanism> mechanism;
  core::Mechanism::ShardKind kind = core::Mechanism::ShardKind::kCategorical;
  mining::ShardedVerticalIndex categorical =
      mining::ShardedVerticalIndex::FromShards({});
  data::ShardedBooleanVerticalIndex boolean;
  HelloRequest hello;

  size_t num_rows() const {
    return kind == core::Mechanism::ShardKind::kBoolean
               ? boolean.num_rows()
               : categorical.num_rows();
  }
};

/// Streams the source's shards intersected with [begin, end) through
/// perturb -> index -> drop. Every sub-shard keeps its GLOBAL row position,
/// so the seeded-chunk streams — and therefore the perturbed bits — equal
/// the single-process pass over the same rows.
StatusOr<CachedRangeIndex> IngestRange(uint64_t range_begin,
                                       uint64_t range_end, uint64_t seed,
                                       const WorkerOptions& options,
                                       pipeline::TableSource& source,
                                       const LocalState& state) {
  const data::RowRange range{static_cast<size_t>(range_begin),
                             static_cast<size_t>(range_end)};
  // Seekable sources jump straight to the range (binary files seek); others
  // keep yielding from row 0 and the loop below drops the leading rows.
  FRAPP_RETURN_IF_ERROR(source.SkipToRow(range.begin));

  const bool boolean = state.kind == core::Mechanism::ShardKind::kBoolean;
  CachedRangeIndex built;
  pipeline::PulledShard shard;
  while (true) {
    FRAPP_ASSIGN_OR_RETURN(const bool more, source.NextShard(&shard));
    if (!more) break;
    const size_t shard_begin = shard.view.global_begin;
    const size_t shard_end = shard_begin + shard.view.size();
    if (shard_end <= range.begin) continue;  // wholly before the range
    if (shard_begin >= range.end) break;     // global order: nothing follows
    // Intersect with the assigned range. Both range bounds and every shard
    // begin are chunk-aligned, so the sub-shard still starts on the chunk
    // grid and seeded perturbation draws the same global streams.
    const size_t begin = std::max(shard_begin, range.begin);
    const size_t end = std::min(shard_end, range.end);
    data::ShardView view;
    view.rows = shard.view.rows;
    view.local = data::RowRange{shard.view.local.begin + (begin - shard_begin),
                                shard.view.local.begin + (end - shard_begin)};
    view.global_begin = begin;
    if (boolean) {
      FRAPP_ASSIGN_OR_RETURN(
          data::BooleanTable perturbed,
          state.mechanism->PerturbBooleanShard(view, seed,
                                               options.num_threads));
      shard.owned.reset();  // source rows dropped once perturbed
      built.num_rows += perturbed.num_rows();
      built.boolean_shards.emplace_back(perturbed);
      if (built.boolean_shards.back().num_bits() != 0) {
        built.num_bits = built.boolean_shards.back().num_bits();
      }
    } else {
      FRAPP_ASSIGN_OR_RETURN(
          data::CategoricalTable perturbed,
          state.mechanism->PerturbShard(view, seed, options.num_threads));
      shard.owned.reset();
      built.num_rows += perturbed.num_rows();
      built.categorical_shards.push_back(
          mining::VerticalIndex::Build(perturbed, options.num_threads));
    }  // the perturbed rows are dropped here
  }
  return built;
}

/// Cache-aware ingest of one chunk-aligned range: serves from the
/// process-lifetime IndexCache when the (source, fingerprint, spec, seed,
/// range) key hits, otherwise opens a fresh source, builds, and populates
/// the cache. Determinism of the pass is what makes a hit safe.
StatusOr<CachedRangeIndex> BuildOrFetchRange(uint64_t range_begin,
                                             uint64_t range_end,
                                             const WorkerOptions& options,
                                             const LocalState& state) {
  std::string key;
  const bool cacheable =
      options.index_cache != nullptr && !options.source_id.empty();
  if (cacheable) {
    key = MakeIndexCacheKey(options.source_id,
                            data::SchemaFingerprint(options.schema),
                            CanonicalSpecKey(state.hello.spec),
                            state.hello.perturb_seed, range_begin, range_end);
    CachedRangeIndex cached;
    if (options.index_cache->Lookup(key, &cached)) return cached;
  }
  FRAPP_ASSIGN_OR_RETURN(std::unique_ptr<pipeline::TableSource> source,
                         options.source_factory());
  if (data::SchemaFingerprint(source->schema()) !=
      data::SchemaFingerprint(options.schema)) {
    return Status::FailedPrecondition(
        "worker source schema differs from worker schema");
  }
  FRAPP_ASSIGN_OR_RETURN(
      CachedRangeIndex built,
      IngestRange(range_begin, range_end, state.hello.perturb_seed, options,
                  *source, state));
  if (cacheable) options.index_cache->Insert(key, built);
  return built;
}

/// Handshake: validates the Hello against local reality, then perturbs and
/// indexes the assigned range.
Status HandleHello(const Message& message, const WorkerOptions& options,
                   LocalState* state, HelloAck* ack) {
  FRAPP_ASSIGN_OR_RETURN(const HelloRequest hello, DecodeHello(message));
  if (hello.protocol_version != kProtocolVersion) {
    return Status::FailedPrecondition(
        "protocol version mismatch: coordinator speaks v" +
        std::to_string(hello.protocol_version) + ", worker v" +
        std::to_string(kProtocolVersion));
  }
  const uint64_t local_fingerprint = data::SchemaFingerprint(options.schema);
  if (hello.schema_fingerprint != local_fingerprint) {
    return Status::FailedPrecondition(
        "schema fingerprint mismatch: coordinator " +
        std::to_string(hello.schema_fingerprint) + ", worker " +
        std::to_string(local_fingerprint) +
        " — the two sides would disagree on category ids");
  }
  if (hello.range_begin % data::kShardAlignmentRows != 0) {
    return Status::InvalidArgument(
        "assigned range must start on the chunk quantum (" +
        std::to_string(data::kShardAlignmentRows) + " rows)");
  }
  FRAPP_ASSIGN_OR_RETURN(state->mechanism,
                         MakeMechanism(hello.spec, options.schema));
  if (!state->mechanism->SupportsShardStreaming()) {
    return Status::Unimplemented(state->mechanism->name() +
                                 " does not stream shards");
  }
  state->kind = state->mechanism->shard_kind();
  state->hello = hello;
  // A re-handshake starts the job over: drop ranges held for the old one.
  state->categorical = mining::ShardedVerticalIndex::FromShards({});
  state->boolean = data::ShardedBooleanVerticalIndex();

  FRAPP_ASSIGN_OR_RETURN(
      CachedRangeIndex built,
      BuildOrFetchRange(hello.range_begin, hello.range_end, options, *state));
  const bool boolean = state->kind == core::Mechanism::ShardKind::kBoolean;
  if (boolean) {
    state->boolean.AppendShards(std::move(built.boolean_shards));
  } else {
    state->categorical.AppendShards(std::move(built.categorical_shards));
  }

  ack->num_rows = state->num_rows();
  ack->shard_kind = boolean ? 1 : 0;
  ack->num_bits = boolean ? state->boolean.num_bits() : 0;
  return Status::OK();
}

/// Fault recovery: ingests ANOTHER chunk-aligned range (a dead worker's)
/// on top of the held one(s), with the seed and spec saved from Hello.
Status HandleAssignRange(const Message& message, const WorkerOptions& options,
                         LocalState* state, RangeAck* ack) {
  FRAPP_ASSIGN_OR_RETURN(const AssignRange assign,
                         DecodeAssignRange(message));
  if (assign.range_begin % data::kShardAlignmentRows != 0) {
    return Status::InvalidArgument(
        "assigned range must start on the chunk quantum (" +
        std::to_string(data::kShardAlignmentRows) + " rows)");
  }
  FRAPP_ASSIGN_OR_RETURN(
      CachedRangeIndex built,
      BuildOrFetchRange(assign.range_begin, assign.range_end, options,
                        *state));
  ack->num_rows = built.num_rows;
  ack->num_bits = built.num_bits;
  if (state->kind == core::Mechanism::ShardKind::kBoolean) {
    state->boolean.AppendShards(std::move(built.boolean_shards));
  } else {
    state->categorical.AppendShards(std::move(built.categorical_shards));
  }
  return Status::OK();
}

StatusOr<Message> HandleCountRequest(const Message& message,
                                     const WorkerOptions& options,
                                     const LocalState& state) {
  if (state.kind != core::Mechanism::ShardKind::kCategorical) {
    return Status::FailedPrecondition(
        "CountRequest against a boolean-kind worker");
  }
  FRAPP_ASSIGN_OR_RETURN(const CountRequest request,
                         DecodeCountRequest(message));
  // Validate against the schema before touching bitmaps: a corrupt peer
  // must get an Error frame, not index out of range.
  for (const mining::Itemset& itemset : request.itemsets) {
    for (const mining::Item& item : itemset.items()) {
      if (item.attribute >= options.schema.num_attributes() ||
          item.category >= options.schema.Cardinality(item.attribute)) {
        return Status::OutOfRange("itemset references item (" +
                                  std::to_string(item.attribute) + ", " +
                                  std::to_string(item.category) +
                                  ") outside the schema");
      }
    }
  }
  const std::vector<size_t> counts =
      state.categorical.CountSupports(request.itemsets, options.num_threads);
  CountResponse response;
  response.counts.assign(counts.begin(), counts.end());
  return EncodeCountResponse(response);
}

StatusOr<Message> HandlePatternRequest(const Message& message,
                                       const WorkerOptions& options,
                                       const LocalState& state) {
  if (state.kind != core::Mechanism::ShardKind::kBoolean) {
    return Status::FailedPrecondition(
        "PatternRequest against a categorical-kind worker");
  }
  FRAPP_ASSIGN_OR_RETURN(const PatternRequest request,
                         DecodePatternRequest(message));
  PatternResponse response;
  response.superset_counts.reserve(request.candidates.size());
  for (const std::vector<uint32_t>& candidate : request.candidates) {
    std::vector<size_t> positions(candidate.begin(), candidate.end());
    // A zero-row worker owns no bits; its superset counts are all zero for
    // any positions. Otherwise bounds-check against the one-hot width.
    if (state.boolean.num_shards() > 0) {
      for (size_t position : positions) {
        if (position >= state.boolean.num_bits()) {
          return Status::OutOfRange(
              "bit position " + std::to_string(position) +
              " outside the one-hot layout (" +
              std::to_string(state.boolean.num_bits()) + " bits)");
        }
      }
    }
    response.superset_counts.push_back(
        state.boolean.SupersetCounts(positions, options.num_threads));
  }
  return EncodePatternResponse(response);
}

}  // namespace

Status ServeWorker(Transport& transport, const WorkerOptions& options) {
  LocalState state;
  bool prepared = false;
  if (options.session_idle_timeout_ms > 0) {
    transport.SetReceiveTimeoutMillis(options.session_idle_timeout_ms);
  }
  while (true) {
    StatusOr<Message> received = transport.Receive();
    if (!received.ok()) {
      // A peer that simply went away (clean close) ends the session
      // without error, and so does one idle past the session timeout (a
      // SIGKILLed or partitioned coordinator must not pin the worker);
      // anything else — a corrupt frame, an I/O failure — is the session's
      // failure.
      if (received.status().code() == StatusCode::kFailedPrecondition ||
          received.status().code() == StatusCode::kUnavailable ||
          received.status().code() == StatusCode::kDeadlineExceeded) {
        return Status::OK();
      }
      return received.status();
    }
    StatusOr<Message> reply = Status::Internal("unhandled message");
    switch (received->type) {
      case MessageType::kHello: {
        HelloAck ack;
        const Status handshake =
            HandleHello(*received, options, &state, &ack);
        prepared = handshake.ok();
        reply = handshake.ok() ? StatusOr<Message>(EncodeHelloAck(ack))
                               : StatusOr<Message>(handshake);
        break;
      }
      case MessageType::kCountRequest:
        reply = prepared ? HandleCountRequest(*received, options, state)
                         : StatusOr<Message>(Status::FailedPrecondition(
                               "CountRequest before a successful Hello"));
        break;
      case MessageType::kPatternRequest:
        reply = prepared ? HandlePatternRequest(*received, options, state)
                         : StatusOr<Message>(Status::FailedPrecondition(
                               "PatternRequest before a successful Hello"));
        break;
      case MessageType::kPing:
        // Liveness is a property of the process, not the job: answered
        // whether or not a handshake happened.
        reply = EncodePong();
        break;
      case MessageType::kAssignRange: {
        if (!prepared) {
          reply = Status::FailedPrecondition(
              "AssignRange before a successful Hello");
          break;
        }
        RangeAck ack;
        const Status assigned =
            HandleAssignRange(*received, options, &state, &ack);
        reply = assigned.ok() ? StatusOr<Message>(EncodeRangeAck(ack))
                              : StatusOr<Message>(assigned);
        break;
      }
      case MessageType::kShutdown:
        return Status::OK();
      default:
        reply = Status::InvalidArgument(
            "worker cannot handle message type " +
            std::to_string(static_cast<int>(received->type)));
        break;
    }
    if (reply.ok()) {
      const Status sent = transport.Send(*reply);
      if (!sent.ok()) {
        // The coordinator can vanish WHILE we reply (it declared this
        // worker dead, crashed, or reset the connection): the reply just
        // has no reader. Same clean session end as a close between
        // requests — only a local I/O failure is the session's error.
        if (sent.code() == StatusCode::kFailedPrecondition ||
            sent.code() == StatusCode::kUnavailable) {
          return Status::OK();
        }
        return sent;
      }
    } else {
      // Status propagation: ship the failure to the coordinator, then end
      // the session with it locally too.
      (void)transport.Send(EncodeError(reply.status()));
      return reply.status();
    }
  }
}

InProcessWorker::InProcessWorker(WorkerOptions options) {
  auto [worker_side, coordinator_side] = CreateInProcessTransportPair();
  worker_endpoint_ = std::move(worker_side);
  coordinator_endpoint_ = std::move(coordinator_side);
  thread_ = std::thread([this, options = std::move(options)] {
    result_ = ServeWorker(*worker_endpoint_, options);
  });
}

InProcessWorker::~InProcessWorker() { (void)Join(); }

Status InProcessWorker::Join() {
  if (!joined_) {
    worker_endpoint_->Close();
    thread_.join();
    joined_ = true;
  }
  return result_;
}

}  // namespace dist
}  // namespace frapp
