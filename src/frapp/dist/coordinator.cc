#include "frapp/dist/coordinator.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "frapp/common/clock.h"
#include "frapp/common/parallel.h"
#include "frapp/common/tree_merge.h"
#include "frapp/data/boolean_vertical_index.h"
#include "frapp/data/pattern_count_source.h"
#include "frapp/data/shard_io.h"
#include "frapp/data/sharded_table.h"
#include "frapp/dist/wire.h"
#include "frapp/mining/count_source.h"

namespace frapp {
namespace dist {


/// Atomic counters behind the DistStats snapshot (updated from pool
/// threads during fan-out).
struct Coordinator::Internals {
  std::atomic<uint64_t> requests_sent{0};
  std::atomic<uint64_t> responses_received{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> merge_nanos{0};
};

// ------------------------------------------------------- remote counting --

/// SupportCountSource whose CountSupports fans candidate blocks out to the
/// workers and tree-merges the returned vectors.
class Coordinator::RemoteSupportCountSource
    : public mining::SupportCountSource {
 public:
  explicit RemoteSupportCountSource(Coordinator* coordinator)
      : coordinator_(coordinator) {}

  size_t num_rows() const override {
    return static_cast<size_t>(coordinator_->total_rows_);
  }

  StatusOr<std::vector<uint64_t>> CountSupports(
      const std::vector<mining::Itemset>& itemsets) override {
    std::vector<uint64_t> totals;
    totals.reserve(itemsets.size());
    const size_t block_size =
        std::max<size_t>(1, coordinator_->options_.max_itemsets_per_request);
    for (size_t begin = 0; begin < itemsets.size(); begin += block_size) {
      const size_t end = std::min(itemsets.size(), begin + block_size);
      CountRequest request;
      request.itemsets.assign(itemsets.begin() + begin, itemsets.begin() + end);
      std::vector<Message> responses;
      FRAPP_RETURN_IF_ERROR(
          coordinator_->Broadcast(EncodeCountRequest(request), &responses));
      const uint64_t merge_start = common::NowNanos();
      std::vector<std::vector<uint64_t>> vectors(responses.size());
      for (size_t w = 0; w < responses.size(); ++w) {
        FRAPP_ASSIGN_OR_RETURN(CountResponse response,
                               DecodeCountResponse(responses[w]));
        if (response.counts.size() != end - begin) {
          return Status::Internal(
              "worker " + std::to_string(w) + " returned " +
              std::to_string(response.counts.size()) + " counts for " +
              std::to_string(end - begin) + " candidates");
        }
        vectors[w] = std::move(response.counts);
      }
      common::TreeMergeVectors(vectors);
      totals.insert(totals.end(), vectors[0].begin(), vectors[0].end());
      coordinator_->internals_->merge_nanos.fetch_add(
          common::NowNanos() - merge_start, std::memory_order_relaxed);
    }
    return totals;
  }

 private:
  Coordinator* coordinator_;
};

/// PatternCountSource whose batches fan candidate BLOCKS of bit positions
/// out (split on the wire's pattern budget, so a whole Apriori pass costs
/// few round trips instead of one per candidate), tree-merge the RAW
/// per-candidate superset vectors, and apply the Mobius transform once per
/// candidate on the merged totals (it is linear, so this equals
/// transforming per worker and summing — and bit-equals the single-process
/// ShardedBooleanVerticalIndex path).
class Coordinator::RemotePatternCountSource
    : public data::PatternCountSource {
 public:
  explicit RemotePatternCountSource(Coordinator* coordinator)
      : coordinator_(coordinator) {}

  size_t num_rows() const override {
    return static_cast<size_t>(coordinator_->total_rows_);
  }
  size_t num_bits() const override {
    return static_cast<size_t>(coordinator_->num_bits_);
  }

  StatusOr<std::vector<int64_t>> PatternCounts(
      const std::vector<size_t>& positions) override {
    FRAPP_ASSIGN_OR_RETURN(std::vector<std::vector<int64_t>> counts,
                           PatternCountsBatch({positions}));
    return std::move(counts[0]);
  }

  StatusOr<std::vector<std::vector<int64_t>>> PatternCountsBatch(
      const std::vector<std::vector<size_t>>& candidates) override {
    std::vector<std::vector<int64_t>> totals;
    totals.reserve(candidates.size());
    // Greedy blocks under the wire's pattern budget (and the categorical
    // block cap, for symmetry): block boundaries only change round-trip
    // granularity, never the integers merged per candidate.
    size_t begin = 0;
    while (begin < candidates.size()) {
      uint64_t budget = 0;
      size_t end = begin;
      PatternRequest request;
      while (end < candidates.size() &&
             request.candidates.size() <
                 coordinator_->options_.max_itemsets_per_request) {
        const std::vector<size_t>& positions = candidates[end];
        if (positions.size() >
            data::BooleanVerticalIndex::kMaxPatternLength) {
          return Status::InvalidArgument("pattern length above the 2^k cap");
        }
        const uint64_t patterns = 1ull << positions.size();
        if (end > begin && budget + patterns > kMaxPatternsPerBatch) break;
        budget += patterns;
        request.candidates.emplace_back(positions.begin(), positions.end());
        ++end;
      }
      std::vector<Message> responses;
      FRAPP_RETURN_IF_ERROR(
          coordinator_->Broadcast(EncodePatternRequest(request), &responses));
      const uint64_t merge_start = common::NowNanos();
      std::vector<PatternResponse> decoded(responses.size());
      for (size_t w = 0; w < responses.size(); ++w) {
        FRAPP_ASSIGN_OR_RETURN(decoded[w],
                               DecodePatternResponse(responses[w]));
        if (decoded[w].superset_counts.size() != end - begin) {
          return Status::Internal(
              "worker " + std::to_string(w) + " returned " +
              std::to_string(decoded[w].superset_counts.size()) +
              " superset vectors for " + std::to_string(end - begin) +
              " candidates");
        }
      }
      for (size_t c = 0; c < end - begin; ++c) {
        const size_t patterns = 1ull << candidates[begin + c].size();
        std::vector<std::vector<int64_t>> vectors(decoded.size());
        for (size_t w = 0; w < decoded.size(); ++w) {
          if (decoded[w].superset_counts[c].size() != patterns) {
            return Status::Internal(
                "worker " + std::to_string(w) +
                " returned a wrong-sized superset vector");
          }
          vectors[w] = std::move(decoded[w].superset_counts[c]);
        }
        common::TreeMergeVectors(vectors);
        std::vector<int64_t> merged = std::move(vectors[0]);
        data::BooleanVerticalIndex::MobiusExactCounts(merged);
        totals.push_back(std::move(merged));
      }
      coordinator_->internals_->merge_nanos.fetch_add(
          common::NowNanos() - merge_start, std::memory_order_relaxed);
      begin = end;
    }
    return totals;
  }

 private:
  Coordinator* coordinator_;
};

// ------------------------------------------------------------ coordinator --

Coordinator::Coordinator(std::vector<std::unique_ptr<Transport>> workers,
                         data::CategoricalSchema schema,
                         const MechanismSpec& spec,
                         const CoordinatorOptions& options)
    : workers_(std::move(workers)),
      schema_(std::move(schema)),
      spec_(spec),
      options_(options),
      internals_(std::make_unique<Internals>()) {}

Coordinator::~Coordinator() { Shutdown(); }

StatusOr<std::unique_ptr<Coordinator>> Coordinator::Connect(
    std::vector<std::unique_ptr<Transport>> workers,
    const data::CategoricalSchema& schema, const MechanismSpec& spec,
    size_t total_rows, const CoordinatorOptions& options) {
  if (workers.empty()) {
    return Status::InvalidArgument("Connect needs at least one worker");
  }
  std::unique_ptr<Coordinator> coordinator(
      new Coordinator(std::move(workers), schema, spec, options));

  // The coordinator's own mechanism instance: reconstruction parameters and
  // the shard-kind the workers must index. Never perturbs anything here.
  FRAPP_ASSIGN_OR_RETURN(coordinator->mechanism_,
                         MakeMechanism(spec, coordinator->schema_));
  if (!coordinator->mechanism_->SupportsShardStreaming()) {
    return Status::Unimplemented(coordinator->mechanism_->name() +
                                 " does not stream shards");
  }
  coordinator->kind_ = coordinator->mechanism_->shard_kind();

  // One contiguous chunk-aligned range per worker — the same partition
  // function the in-process pipeline shards with. Workers past the number
  // of chunk quanta get an empty range (and count zeros, harmlessly).
  const std::vector<data::RowRange> plan = data::ShardedTable::Plan(
      total_rows, coordinator->workers_.size(), data::kShardAlignmentRows);
  const uint64_t fingerprint =
      data::SchemaFingerprint(coordinator->schema_);

  // Send every Hello before waiting on any ack, so all workers ingest
  // their ranges concurrently.
  for (size_t w = 0; w < coordinator->workers_.size(); ++w) {
    HelloRequest hello;
    hello.schema_fingerprint = fingerprint;
    hello.perturb_seed = options.perturb_seed;
    if (w < plan.size()) {
      hello.range_begin = plan[w].begin;
      hello.range_end = plan[w].end;
    }
    hello.spec = spec;
    const Message message = EncodeHello(hello);
    coordinator->internals_->bytes_sent.fetch_add(message.WireSize(),
                                                  std::memory_order_relaxed);
    coordinator->internals_->requests_sent.fetch_add(
        1, std::memory_order_relaxed);
    FRAPP_RETURN_IF_ERROR(coordinator->workers_[w]->Send(message));
  }
  uint64_t acked_rows = 0;
  for (size_t w = 0; w < coordinator->workers_.size(); ++w) {
    FRAPP_ASSIGN_OR_RETURN(const Message message,
                           coordinator->workers_[w]->Receive());
    coordinator->internals_->bytes_received.fetch_add(
        message.WireSize(), std::memory_order_relaxed);
    coordinator->internals_->responses_received.fetch_add(
        1, std::memory_order_relaxed);
    FRAPP_ASSIGN_OR_RETURN(const HelloAck ack, DecodeHelloAck(message));
    const uint8_t want_kind =
        coordinator->kind_ == core::Mechanism::ShardKind::kBoolean ? 1 : 0;
    if (ack.shard_kind != want_kind) {
      return Status::Internal("worker " + std::to_string(w) +
                              " indexed the wrong shard representation");
    }
    acked_rows += ack.num_rows;
    coordinator->num_bits_ =
        std::max(coordinator->num_bits_, ack.num_bits);
  }
  if (acked_rows != total_rows) {
    return Status::FailedPrecondition(
        "workers ingested " + std::to_string(acked_rows) + " rows, expected " +
        std::to_string(total_rows) +
        " — worker data does not cover the assigned ranges");
  }
  coordinator->total_rows_ = acked_rows;
  return coordinator;
}

Status Coordinator::Broadcast(const Message& request,
                              std::vector<Message>* responses) {
  // Same request to every worker: the candidate block is global, each
  // worker counts it over ITS rows. All sends complete before the first
  // receive can block, so worker compute overlaps.
  for (std::unique_ptr<Transport>& worker : workers_) {
    internals_->bytes_sent.fetch_add(request.WireSize(),
                                     std::memory_order_relaxed);
    internals_->requests_sent.fetch_add(1, std::memory_order_relaxed);
    FRAPP_RETURN_IF_ERROR(worker->Send(request));
  }
  responses->assign(workers_.size(), Message{});
  std::vector<Status> statuses(workers_.size());
  const size_t fan_out = options_.num_threads == 0 ? workers_.size()
                                                   : options_.num_threads;
  common::ParallelForChunks(workers_.size(), fan_out, [&](size_t w) {
    StatusOr<Message> received = workers_[w]->Receive();
    if (!received.ok()) {
      statuses[w] = received.status();
      return;
    }
    if (received->type == MessageType::kError) {
      statuses[w] = DecodeError(*received);
      return;
    }
    internals_->bytes_received.fetch_add(received->WireSize(),
                                         std::memory_order_relaxed);
    internals_->responses_received.fetch_add(1, std::memory_order_relaxed);
    (*responses)[w] = *std::move(received);
  });
  for (size_t w = 0; w < statuses.size(); ++w) {
    if (!statuses[w].ok()) {
      return Status(statuses[w].code(), "worker " + std::to_string(w) + ": " +
                                            statuses[w].message());
    }
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<DistributedSupportEstimator>>
Coordinator::MakeEstimator() {
  std::unique_ptr<mining::SupportEstimator> inner;
  if (kind_ == core::Mechanism::ShardKind::kBoolean) {
    FRAPP_ASSIGN_OR_RETURN(
        inner, mechanism_->MakeBooleanCountSourceEstimator(
                   std::make_shared<RemotePatternCountSource>(this)));
  } else {
    FRAPP_ASSIGN_OR_RETURN(
        inner, mechanism_->MakeCountSourceEstimator(
                   std::make_shared<RemoteSupportCountSource>(this)));
  }
  return std::unique_ptr<DistributedSupportEstimator>(
      new DistributedSupportEstimator(std::move(inner)));
}

StatusOr<mining::AprioriResult> Coordinator::Mine(
    const mining::AprioriOptions& mining) {
  FRAPP_ASSIGN_OR_RETURN(std::unique_ptr<DistributedSupportEstimator> estimator,
                         MakeEstimator());
  return mining::MineFrequentItemsets(schema_, *estimator, mining);
}

void Coordinator::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  const Message shutdown = EncodeShutdown();
  for (std::unique_ptr<Transport>& worker : workers_) {
    (void)worker->Send(shutdown);
    worker->Close();
  }
}

DistStats Coordinator::stats() const {
  DistStats stats;
  stats.num_workers = workers_.size();
  stats.total_rows = total_rows_;
  stats.requests_sent =
      internals_->requests_sent.load(std::memory_order_relaxed);
  stats.responses_received =
      internals_->responses_received.load(std::memory_order_relaxed);
  stats.bytes_sent = internals_->bytes_sent.load(std::memory_order_relaxed);
  stats.bytes_received =
      internals_->bytes_received.load(std::memory_order_relaxed);
  stats.merge_nanos = internals_->merge_nanos.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace dist
}  // namespace frapp
