#include "frapp/dist/coordinator.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "frapp/common/clock.h"
#include "frapp/common/parallel.h"
#include "frapp/common/tree_merge.h"
#include "frapp/data/boolean_vertical_index.h"
#include "frapp/data/pattern_count_source.h"
#include "frapp/data/shard_io.h"
#include "frapp/data/sharded_table.h"
#include "frapp/dist/wire.h"
#include "frapp/mining/count_source.h"

namespace frapp {
namespace dist {


/// Atomic counters behind the DistStats snapshot (updated from pool
/// threads during fan-out).
struct Coordinator::Internals {
  std::atomic<uint64_t> requests_sent{0};
  std::atomic<uint64_t> responses_received{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> merge_nanos{0};
  std::atomic<uint64_t> workers_failed{0};
  std::atomic<uint64_t> ranges_reassigned{0};
  std::atomic<uint64_t> ranges_appended{0};
  std::atomic<uint64_t> rows_appended{0};
  std::atomic<uint64_t> deadline_retries{0};
  std::atomic<uint64_t> pings_sent{0};
  std::atomic<uint64_t> rounds_restarted{0};
};

// ------------------------------------------------------- remote counting --

/// SupportCountSource whose CountSupports fans candidate blocks out to the
/// workers and tree-merges the returned vectors.
class Coordinator::RemoteSupportCountSource
    : public mining::SupportCountSource {
 public:
  explicit RemoteSupportCountSource(Coordinator* coordinator)
      : coordinator_(coordinator) {}

  size_t num_rows() const override {
    return static_cast<size_t>(coordinator_->total_rows_ -
                               coordinator_->options_.begin_row);
  }

  StatusOr<std::vector<uint64_t>> CountSupports(
      const std::vector<mining::Itemset>& itemsets) override {
    std::vector<uint64_t> totals;
    totals.reserve(itemsets.size());
    const size_t block_size =
        std::max<size_t>(1, coordinator_->options_.max_itemsets_per_request);
    for (size_t begin = 0; begin < itemsets.size(); begin += block_size) {
      const size_t end = std::min(itemsets.size(), begin + block_size);
      CountRequest request;
      request.itemsets.assign(itemsets.begin() + begin, itemsets.begin() + end);
      std::vector<Message> responses;
      FRAPP_RETURN_IF_ERROR(
          coordinator_->Broadcast(EncodeCountRequest(request), &responses));
      const uint64_t merge_start = common::NowNanos();
      std::vector<std::vector<uint64_t>> vectors(responses.size());
      for (size_t w = 0; w < responses.size(); ++w) {
        FRAPP_ASSIGN_OR_RETURN(CountResponse response,
                               DecodeCountResponse(responses[w]));
        if (response.counts.size() != end - begin) {
          return Status::Internal(
              "worker " + std::to_string(w) + " returned " +
              std::to_string(response.counts.size()) + " counts for " +
              std::to_string(end - begin) + " candidates");
        }
        vectors[w] = std::move(response.counts);
      }
      common::TreeMergeVectors(vectors);
      totals.insert(totals.end(), vectors[0].begin(), vectors[0].end());
      coordinator_->internals_->merge_nanos.fetch_add(
          common::NowNanos() - merge_start, std::memory_order_relaxed);
    }
    return totals;
  }

 private:
  Coordinator* coordinator_;
};

/// PatternCountSource whose batches fan candidate BLOCKS of bit positions
/// out (split on the wire's pattern budget, so a whole Apriori pass costs
/// few round trips instead of one per candidate), tree-merge the RAW
/// per-candidate superset vectors, and apply the Mobius transform once per
/// candidate on the merged totals (it is linear, so this equals
/// transforming per worker and summing — and bit-equals the single-process
/// ShardedBooleanVerticalIndex path).
class Coordinator::RemotePatternCountSource
    : public data::PatternCountSource {
 public:
  explicit RemotePatternCountSource(Coordinator* coordinator)
      : coordinator_(coordinator) {}

  size_t num_rows() const override {
    return static_cast<size_t>(coordinator_->total_rows_ -
                               coordinator_->options_.begin_row);
  }
  size_t num_bits() const override {
    return static_cast<size_t>(coordinator_->num_bits_);
  }

  StatusOr<std::vector<int64_t>> PatternCounts(
      const std::vector<size_t>& positions) override {
    FRAPP_ASSIGN_OR_RETURN(std::vector<std::vector<int64_t>> counts,
                           PatternCountsBatch({positions}));
    return std::move(counts[0]);
  }

  StatusOr<std::vector<std::vector<int64_t>>> PatternCountsBatch(
      const std::vector<std::vector<size_t>>& candidates) override {
    std::vector<std::vector<int64_t>> totals;
    totals.reserve(candidates.size());
    // Greedy blocks under the wire's pattern budget (and the categorical
    // block cap, for symmetry): block boundaries only change round-trip
    // granularity, never the integers merged per candidate.
    size_t begin = 0;
    while (begin < candidates.size()) {
      uint64_t budget = 0;
      size_t end = begin;
      PatternRequest request;
      while (end < candidates.size() &&
             request.candidates.size() <
                 coordinator_->options_.max_itemsets_per_request) {
        const std::vector<size_t>& positions = candidates[end];
        if (positions.size() >
            data::BooleanVerticalIndex::kMaxPatternLength) {
          return Status::InvalidArgument("pattern length above the 2^k cap");
        }
        const uint64_t patterns = 1ull << positions.size();
        if (end > begin && budget + patterns > kMaxPatternsPerBatch) break;
        budget += patterns;
        request.candidates.emplace_back(positions.begin(), positions.end());
        ++end;
      }
      std::vector<Message> responses;
      FRAPP_RETURN_IF_ERROR(
          coordinator_->Broadcast(EncodePatternRequest(request), &responses));
      const uint64_t merge_start = common::NowNanos();
      std::vector<PatternResponse> decoded(responses.size());
      for (size_t w = 0; w < responses.size(); ++w) {
        FRAPP_ASSIGN_OR_RETURN(decoded[w],
                               DecodePatternResponse(responses[w]));
        if (decoded[w].superset_counts.size() != end - begin) {
          return Status::Internal(
              "worker " + std::to_string(w) + " returned " +
              std::to_string(decoded[w].superset_counts.size()) +
              " superset vectors for " + std::to_string(end - begin) +
              " candidates");
        }
      }
      for (size_t c = 0; c < end - begin; ++c) {
        const size_t patterns = 1ull << candidates[begin + c].size();
        std::vector<std::vector<int64_t>> vectors(decoded.size());
        for (size_t w = 0; w < decoded.size(); ++w) {
          if (decoded[w].superset_counts[c].size() != patterns) {
            return Status::Internal(
                "worker " + std::to_string(w) +
                " returned a wrong-sized superset vector");
          }
          vectors[w] = std::move(decoded[w].superset_counts[c]);
        }
        common::TreeMergeVectors(vectors);
        std::vector<int64_t> merged = std::move(vectors[0]);
        data::BooleanVerticalIndex::MobiusExactCounts(merged);
        totals.push_back(std::move(merged));
      }
      coordinator_->internals_->merge_nanos.fetch_add(
          common::NowNanos() - merge_start, std::memory_order_relaxed);
      begin = end;
    }
    return totals;
  }

 private:
  Coordinator* coordinator_;
};

// ------------------------------------------------------------ coordinator --

Coordinator::Coordinator(std::vector<std::unique_ptr<Transport>> workers,
                         data::CategoricalSchema schema,
                         const MechanismSpec& spec,
                         const CoordinatorOptions& options)
    : schema_(std::move(schema)),
      spec_(spec),
      options_(options),
      internals_(std::make_unique<Internals>()) {
  workers_.reserve(workers.size());
  for (std::unique_ptr<Transport>& transport : workers) {
    WorkerSlot slot;
    slot.transport = std::move(transport);
    workers_.push_back(std::move(slot));
  }
}

Coordinator::~Coordinator() { Shutdown(); }

StatusOr<std::unique_ptr<Coordinator>> Coordinator::Connect(
    std::vector<std::unique_ptr<Transport>> workers,
    const data::CategoricalSchema& schema, const MechanismSpec& spec,
    size_t total_rows, const CoordinatorOptions& options) {
  if (workers.empty()) {
    return Status::InvalidArgument("Connect needs at least one worker");
  }
  if (options.begin_row % data::kShardAlignmentRows != 0) {
    return Status::InvalidArgument(
        "begin_row must be a multiple of the chunk quantum (" +
        std::to_string(data::kShardAlignmentRows) + ")");
  }
  if (options.begin_row > total_rows) {
    return Status::InvalidArgument("begin_row is past total_rows");
  }
  std::unique_ptr<Coordinator> coordinator(
      new Coordinator(std::move(workers), schema, spec, options));

  // The coordinator's own mechanism instance: reconstruction parameters and
  // the shard-kind the workers must index. Never perturbs anything here.
  FRAPP_ASSIGN_OR_RETURN(coordinator->mechanism_,
                         MakeMechanism(spec, coordinator->schema_));
  if (!coordinator->mechanism_->SupportsShardStreaming()) {
    return Status::Unimplemented(coordinator->mechanism_->name() +
                                 " does not stream shards");
  }
  coordinator->kind_ = coordinator->mechanism_->shard_kind();
  coordinator->total_rows_ = total_rows;

  // Failure detection needs bounded waits on every connection; a zero
  // deadline keeps the pre-fault-tolerance block-forever behaviour.
  if (options.retry.request_deadline_ms > 0) {
    for (WorkerSlot& slot : coordinator->workers_) {
      slot.transport->SetReceiveTimeoutMillis(
          options.retry.request_deadline_ms);
      slot.transport->SetSendTimeoutMillis(options.retry.request_deadline_ms);
    }
  }

  // One contiguous chunk-aligned range per worker over the session window
  // [begin_row, total_rows) — the same partition function the in-process
  // pipeline shards with, offset to the window start (begin_row is
  // chunk-aligned, so every sub-range stays on the global chunk grid).
  // Workers past the number of chunk quanta get an empty range (and count
  // zeros, harmlessly).
  std::vector<data::RowRange> plan = data::ShardedTable::Plan(
      total_rows - options.begin_row, coordinator->workers_.size(),
      data::kShardAlignmentRows);
  for (data::RowRange& range : plan) {
    range.begin += options.begin_row;
    range.end += options.begin_row;
  }
  const uint64_t fingerprint =
      data::SchemaFingerprint(coordinator->schema_);

  // Send every Hello before waiting on any ack, so all workers ingest
  // their ranges concurrently. A worker that cannot even be sent to is
  // dead on arrival; its planned range is re-assigned after the ack loop.
  std::vector<RowSpan> orphans;
  std::vector<bool> hello_sent(coordinator->workers_.size(), false);
  for (size_t w = 0; w < coordinator->workers_.size(); ++w) {
    HelloRequest hello;
    hello.schema_fingerprint = fingerprint;
    hello.perturb_seed = options.perturb_seed;
    if (w < plan.size()) {
      hello.range_begin = plan[w].begin;
      hello.range_end = plan[w].end;
    }
    hello.spec = spec;
    coordinator->workers_[w].ranges.push_back(
        RowSpan{hello.range_begin, hello.range_end});
    const Status sent = coordinator->SendTo(w, EncodeHello(hello));
    if (sent.ok()) {
      hello_sent[w] = true;
    } else {
      coordinator->MarkDead(w, &orphans);
    }
  }
  for (size_t w = 0; w < coordinator->workers_.size(); ++w) {
    if (!hello_sent[w]) continue;
    StatusOr<Message> received = coordinator->ReceiveFrom(w);
    if (!received.ok()) {
      // A transport-level failure at handshake is a dead worker, not a
      // dead job: survivors absorb its range below.
      coordinator->MarkDead(w, &orphans);
      continue;
    }
    if (received->type == MessageType::kError) {
      // An application-level refusal (schema/version mismatch) means the
      // JOB is misconfigured — re-assigning would refuse everywhere.
      const Status refused = DecodeError(*received);
      return Status(refused.code(),
                    "worker " + std::to_string(w) + ": " + refused.message());
    }
    FRAPP_ASSIGN_OR_RETURN(const HelloAck ack, DecodeHelloAck(*received));
    const uint8_t want_kind =
        coordinator->kind_ == core::Mechanism::ShardKind::kBoolean ? 1 : 0;
    if (ack.shard_kind != want_kind) {
      return Status::Internal("worker " + std::to_string(w) +
                              " indexed the wrong shard representation");
    }
    coordinator->workers_[w].rows = ack.num_rows;
    coordinator->num_bits_ = std::max(coordinator->num_bits_, ack.num_bits);
  }
  FRAPP_RETURN_IF_ERROR(coordinator->ReassignOrphans(std::move(orphans)));
  return coordinator;
}

size_t Coordinator::num_alive_workers() const {
  size_t alive = 0;
  for (const WorkerSlot& slot : workers_) {
    if (slot.alive) ++alive;
  }
  return alive;
}

Status Coordinator::SendTo(size_t w, const Message& message) {
  const Status sent = workers_[w].transport->Send(message);
  if (sent.ok()) {
    internals_->bytes_sent.fetch_add(message.WireSize(),
                                     std::memory_order_relaxed);
    internals_->requests_sent.fetch_add(1, std::memory_order_relaxed);
  }
  return sent;
}

StatusOr<Message> Coordinator::ReceiveFrom(size_t w) {
  const size_t attempts =
      options_.retry.max_attempts > 0 ? options_.retry.max_attempts : 1;
  Status last = Status::Internal("no receive attempts made");
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    StatusOr<Message> received = workers_[w].transport->Receive();
    if (received.ok()) {
      internals_->bytes_received.fetch_add(received->WireSize(),
                                           std::memory_order_relaxed);
      internals_->responses_received.fetch_add(1, std::memory_order_relaxed);
      return received;
    }
    last = received.status();
    // Only a deadline is worth another wait (the resumable receive picks
    // the same frame back up); closed/corrupt connections cannot recover.
    if (last.code() != StatusCode::kDeadlineExceeded) break;
    if (attempt + 1 < attempts) {
      internals_->deadline_retries.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return last;
}

void Coordinator::MarkDead(size_t w, std::vector<RowSpan>* orphans) {
  WorkerSlot& slot = workers_[w];
  if (!slot.alive) return;
  slot.alive = false;
  slot.transport->Close();
  internals_->workers_failed.fetch_add(1, std::memory_order_relaxed);
  for (const RowSpan& span : slot.ranges) {
    if (span.end > span.begin) orphans->push_back(span);
  }
  slot.ranges.clear();
  slot.rows = 0;
}

Status Coordinator::ReassignOrphans(std::vector<RowSpan> orphans,
                                    bool appending) {
  std::atomic<uint64_t>& assign_counter = appending
                                              ? internals_->ranges_appended
                                              : internals_->ranges_reassigned;
  while (!orphans.empty()) {
    std::vector<size_t> alive;
    for (size_t w = 0; w < workers_.size(); ++w) {
      if (workers_[w].alive) alive.push_back(w);
    }
    if (alive.empty()) {
      return Status::Unavailable(
          "all " + std::to_string(workers_.size()) + " workers failed");
    }
    // Split every orphaned span across the live fleet with the SAME
    // chunk-aligned planner that cut the original ranges: sub-ranges stay
    // on the chunk grid (the span begins chunk-aligned), so survivors
    // perturb them on the same global seeded-chunk streams.
    struct Assignment {
      RowSpan span;
      size_t target;
    };
    std::vector<Assignment> assignments;
    for (const RowSpan& orphan : orphans) {
      const std::vector<data::RowRange> split = data::ShardedTable::Plan(
          static_cast<size_t>(orphan.end - orphan.begin), alive.size(),
          data::kShardAlignmentRows);
      for (size_t i = 0; i < split.size(); ++i) {
        if (split[i].end == split[i].begin) continue;
        assignments.push_back(
            Assignment{RowSpan{orphan.begin + split[i].begin,
                               orphan.begin + split[i].end},
                       alive[i % alive.size()]});
      }
    }
    orphans.clear();

    // Per-target queues, ingested concurrently across targets (sequential
    // request/response per connection, as the protocol requires).
    std::vector<std::vector<RowSpan>> queue(workers_.size());
    for (const Assignment& assignment : assignments) {
      queue[assignment.target].push_back(assignment.span);
    }
    std::vector<std::vector<RowSpan>> failed_spans(workers_.size());
    // vector<char>, not vector<bool>: pool threads flag distinct indexes
    // concurrently, and vector<bool> packs bits into shared words.
    std::vector<char> died(workers_.size(), 0);
    std::vector<Status> refused(workers_.size());
    std::vector<uint64_t> seen_bits(workers_.size(), 0);
    const size_t fan_out =
        options_.num_threads == 0 ? workers_.size() : options_.num_threads;
    common::ParallelForChunks(workers_.size(), fan_out, [&](size_t w) {
      for (size_t i = 0; i < queue[w].size(); ++i) {
        const RowSpan& span = queue[w][i];
        AssignRange assign;
        assign.range_begin = span.begin;
        assign.range_end = span.end;
        const Status sent = SendTo(w, EncodeAssignRange(assign));
        StatusOr<Message> received =
            sent.ok() ? ReceiveFrom(w) : StatusOr<Message>(sent);
        if (received.ok() && received->type == MessageType::kError) {
          // An Error frame over a healthy connection is the worker
          // REFUSING the assignment (schema mismatch, misaligned range) —
          // the JOB's fault, same as Broadcast: every survivor would
          // refuse too, so it stays fatal instead of cascading the whole
          // fleet into MarkDead.
          refused[w] = DecodeError(*received);
          return;
        }
        StatusOr<RangeAck> ack =
            received.ok() ? DecodeRangeAck(*received)
                          : StatusOr<RangeAck>(received.status());
        if (!ack.ok()) {
          // This survivor failed too: everything still queued for it —
          // including the span that just failed — goes back to the pool.
          died[w] = 1;
          failed_spans[w].assign(queue[w].begin() + i, queue[w].end());
          return;
        }
        workers_[w].ranges.push_back(span);
        workers_[w].rows += ack->num_rows;
        seen_bits[w] = std::max(seen_bits[w], ack->num_bits);
        assign_counter.fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t w = 0; w < workers_.size(); ++w) {
      if (!refused[w].ok()) {
        return Status(refused[w].code(), "worker " + std::to_string(w) +
                                             ": " + refused[w].message());
      }
      num_bits_ = std::max(num_bits_, seen_bits[w]);
      if (!died[w]) continue;
      MarkDead(w, &orphans);
      orphans.insert(orphans.end(), failed_spans[w].begin(),
                     failed_spans[w].end());
    }
  }
  // Coverage re-check: after any recovery the live fleet must still hold
  // exactly the table (a worker whose local data cannot produce its range
  // would silently skew every count otherwise).
  uint64_t covered = 0;
  for (const WorkerSlot& slot : workers_) {
    if (slot.alive) covered += slot.rows;
  }
  if (covered != total_rows_ - options_.begin_row) {
    return Status::FailedPrecondition(
        "workers ingested " + std::to_string(covered) + " rows, expected " +
        std::to_string(total_rows_ - options_.begin_row) +
        " — worker data does not cover the assigned ranges");
  }
  return Status::OK();
}

Status Coordinator::AppendRows(size_t new_total_rows) {
  if (shut_down_) {
    return Status::FailedPrecondition("session already shut down");
  }
  if (new_total_rows < total_rows_) {
    return Status::InvalidArgument(
        "AppendRows cannot shrink the table: sessions only support growth");
  }
  if (new_total_rows == total_rows_) return Status::OK();
  if (total_rows_ % data::kShardAlignmentRows != 0) {
    return Status::FailedPrecondition(
        "append requires the previous total (" + std::to_string(total_rows_) +
        ") to be chunk-aligned: a partial tail chunk cannot be extended once "
        "its rows are perturbed");
  }
  const uint64_t old_total = total_rows_;
  total_rows_ = new_total_rows;
  FRAPP_RETURN_IF_ERROR(ReassignOrphans({RowSpan{old_total, new_total_rows}},
                                        /*appending=*/true));
  internals_->rows_appended.fetch_add(new_total_rows - old_total,
                                      std::memory_order_relaxed);
  return Status::OK();
}

Status Coordinator::CheckHealth() {
  std::vector<RowSpan> orphans;
  std::vector<size_t> alive;
  for (size_t w = 0; w < workers_.size(); ++w) {
    if (workers_[w].alive) alive.push_back(w);
  }
  // vector<char>, not vector<bool>: see ReassignOrphans.
  std::vector<char> died(workers_.size(), 0);
  const size_t fan_out =
      options_.num_threads == 0 ? workers_.size() : options_.num_threads;
  common::ParallelForChunks(alive.size(), fan_out, [&](size_t i) {
    const size_t w = alive[i];
    internals_->pings_sent.fetch_add(1, std::memory_order_relaxed);
    const Status sent = SendTo(w, EncodePing());
    StatusOr<Message> received =
        sent.ok() ? ReceiveFrom(w) : StatusOr<Message>(sent);
    if (!received.ok() || received->type != MessageType::kPong) {
      died[w] = 1;
    }
  });
  for (size_t w = 0; w < workers_.size(); ++w) {
    if (died[w]) MarkDead(w, &orphans);
  }
  return ReassignOrphans(std::move(orphans));
}

Status Coordinator::Broadcast(const Message& request,
                              std::vector<Message>* responses) {
  // Same request to every live worker: the candidate block is global, each
  // worker counts it over ITS rows. All sends complete before the first
  // receive can block, so worker compute overlaps. A round that loses a
  // worker discards ALL its responses, re-assigns the dead worker's ranges
  // and restarts — survivors then hold the orphaned rows too, so keeping
  // the aborted round's (pre-recovery) responses would undercount.
  bool first_round = true;
  while (true) {
    std::vector<size_t> alive;
    for (size_t w = 0; w < workers_.size(); ++w) {
      if (workers_[w].alive) alive.push_back(w);
    }
    if (alive.empty()) {
      return Status::Unavailable(
          "all " + std::to_string(workers_.size()) + " workers failed");
    }
    if (!first_round) {
      internals_->rounds_restarted.fetch_add(1, std::memory_order_relaxed);
    }
    first_round = false;

    std::vector<char> sent_ok(workers_.size(), 0);
    for (const size_t w : alive) {
      sent_ok[w] = SendTo(w, request).ok() ? 1 : 0;
    }
    responses->assign(alive.size(), Message{});
    std::vector<Status> statuses(workers_.size());
    // An Error frame is the worker REPORTING a failure over a healthy
    // connection — a bad candidate list, a schema disagreement. That is
    // the request's fault, not the worker's: re-assigning rows cannot fix
    // it, so it stays fatal. Transport-level failures (deadline after
    // retries, closed, reset, corrupt frame) mean the WORKER is gone,
    // which recovery exists for.
    // vector<char>, not vector<bool>: see ReassignOrphans.
    std::vector<char> worker_reported(workers_.size(), 0);
    const size_t fan_out =
        options_.num_threads == 0 ? alive.size() : options_.num_threads;
    common::ParallelForChunks(alive.size(), fan_out, [&](size_t i) {
      const size_t w = alive[i];
      if (!sent_ok[w]) {
        statuses[w] = Status::Unavailable("send failed");
        return;
      }
      StatusOr<Message> received = ReceiveFrom(w);
      if (!received.ok()) {
        statuses[w] = received.status();
        return;
      }
      if (received->type == MessageType::kError) {
        statuses[w] = DecodeError(*received);
        worker_reported[w] = 1;
        return;
      }
      (*responses)[i] = *std::move(received);
    });

    std::vector<RowSpan> orphans;
    for (const size_t w : alive) {
      if (statuses[w].ok()) continue;
      if (worker_reported[w]) {
        return Status(statuses[w].code(), "worker " + std::to_string(w) +
                                              ": " + statuses[w].message());
      }
      MarkDead(w, &orphans);
    }
    if (orphans.empty()) return Status::OK();
    FRAPP_RETURN_IF_ERROR(ReassignOrphans(std::move(orphans)));
  }
}

StatusOr<std::unique_ptr<DistributedSupportEstimator>>
Coordinator::MakeEstimator() {
  std::unique_ptr<mining::SupportEstimator> inner;
  if (kind_ == core::Mechanism::ShardKind::kBoolean) {
    FRAPP_ASSIGN_OR_RETURN(
        inner, mechanism_->MakeBooleanCountSourceEstimator(
                   std::make_shared<RemotePatternCountSource>(this)));
  } else {
    FRAPP_ASSIGN_OR_RETURN(
        inner, mechanism_->MakeCountSourceEstimator(
                   std::make_shared<RemoteSupportCountSource>(this)));
  }
  return std::unique_ptr<DistributedSupportEstimator>(
      new DistributedSupportEstimator(std::move(inner)));
}

StatusOr<mining::AprioriResult> Coordinator::Mine(
    const mining::AprioriOptions& mining) {
  FRAPP_ASSIGN_OR_RETURN(std::unique_ptr<DistributedSupportEstimator> estimator,
                         MakeEstimator());
  return mining::MineFrequentItemsets(schema_, *estimator, mining);
}

void Coordinator::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  const Message shutdown = EncodeShutdown();
  for (WorkerSlot& slot : workers_) {
    if (slot.alive) (void)slot.transport->Send(shutdown);
    slot.transport->Close();
  }
}

DistStats Coordinator::stats() const {
  DistStats stats;
  stats.num_workers = workers_.size();
  stats.workers_alive = num_alive_workers();
  stats.total_rows = total_rows_;
  stats.requests_sent =
      internals_->requests_sent.load(std::memory_order_relaxed);
  stats.responses_received =
      internals_->responses_received.load(std::memory_order_relaxed);
  stats.bytes_sent = internals_->bytes_sent.load(std::memory_order_relaxed);
  stats.bytes_received =
      internals_->bytes_received.load(std::memory_order_relaxed);
  stats.merge_nanos = internals_->merge_nanos.load(std::memory_order_relaxed);
  stats.workers_failed =
      internals_->workers_failed.load(std::memory_order_relaxed);
  stats.ranges_reassigned =
      internals_->ranges_reassigned.load(std::memory_order_relaxed);
  stats.ranges_appended =
      internals_->ranges_appended.load(std::memory_order_relaxed);
  stats.rows_appended =
      internals_->rows_appended.load(std::memory_order_relaxed);
  stats.begin_row = options_.begin_row;
  stats.total_chunks = common::NumChunks(total_rows_ - options_.begin_row,
                                         data::kShardAlignmentRows);
  stats.appended_chunks = common::NumChunks(stats.rows_appended,
                                            data::kShardAlignmentRows);
  stats.deadline_retries =
      internals_->deadline_retries.load(std::memory_order_relaxed);
  stats.pings_sent = internals_->pings_sent.load(std::memory_order_relaxed);
  stats.rounds_restarted =
      internals_->rounds_restarted.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace dist
}  // namespace frapp
