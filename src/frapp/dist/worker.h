// The frapp/dist worker: owns one contiguous chunk-aligned shard range of
// the table and answers candidate-count requests over it.
//
// On Hello the worker validates the protocol version and schema fingerprint,
// instantiates the mechanism the coordinator named, ingests its assigned
// global row range from its LOCAL TableSource (CSV, binary shard file,
// in-memory table, generator — rows never cross the wire), perturbs each
// shard with the GLOBAL seeded-chunk RNG streams (the shard's global row
// position selects the streams, so the perturbed bits equal the
// single-process pass), indexes it, and drops the rows. From then on it
// serves:
//
//   CountRequest    -> per-candidate support counts over the local
//                      categorical index
//   PatternRequest  -> RAW superset-intersection counts over the local
//                      boolean index (pre-Mobius; the transform is linear
//                      and runs once on the coordinator's merged totals)
//
// until Shutdown or peer close. Any local failure is shipped back as an
// Error frame (Status propagation) and ends the session.

#ifndef FRAPP_DIST_WORKER_H_
#define FRAPP_DIST_WORKER_H_

#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include "frapp/common/statusor.h"
#include "frapp/data/schema.h"
#include "frapp/dist/transport.h"
#include "frapp/pipeline/table_source.h"

namespace frapp {
namespace dist {

struct WorkerOptions {
  explicit WorkerOptions(data::CategoricalSchema schema_in)
      : schema(std::move(schema_in)) {}

  /// Schema of the worker's local data; its fingerprint must match the
  /// coordinator's or the handshake fails.
  data::CategoricalSchema schema;

  /// Produces a fresh TableSource per session (ingest may need to restart
  /// from row 0 for a new coordinator). The source yields the FULL stream;
  /// the worker skips to its assigned range (seekable sources at zero parse
  /// cost, see TableSource::SkipToRow) and keeps only rows inside it.
  std::function<StatusOr<std::unique_ptr<pipeline::TableSource>>()>
      source_factory;

  /// Worker threads for shard perturbation/indexing and for each counting
  /// pass (0 = hardware concurrency). Never affects results.
  size_t num_threads = 1;
};

/// Serves one coordinator session on `transport`; returns OK after a clean
/// Shutdown (or peer close), the failure otherwise. Blocking: run it on a
/// dedicated thread or process.
Status ServeWorker(Transport& transport, const WorkerOptions& options);

/// ServeWorker on a dedicated thread over an in-process transport pair: the
/// test/bench substrate, and the one-box degenerate deployment.
class InProcessWorker {
 public:
  explicit InProcessWorker(WorkerOptions options);

  /// Joins the serving thread (closing the transport first if the
  /// coordinator never did).
  ~InProcessWorker();

  /// The coordinator-side endpoint; call once and hand it to the
  /// Coordinator, which takes ownership.
  std::unique_ptr<Transport> TakeCoordinatorEndpoint() {
    return std::move(coordinator_endpoint_);
  }

  /// Waits for the session to end and returns ServeWorker's status.
  Status Join();

 private:
  std::unique_ptr<Transport> worker_endpoint_;
  std::unique_ptr<Transport> coordinator_endpoint_;
  std::thread thread_;
  Status result_;
  bool joined_ = false;
};

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_WORKER_H_
