// The frapp/dist worker: owns one contiguous chunk-aligned shard range of
// the table and answers candidate-count requests over it.
//
// On Hello the worker validates the protocol version and schema fingerprint,
// instantiates the mechanism the coordinator named, ingests its assigned
// global row range from its LOCAL TableSource (CSV, binary shard file,
// in-memory table, generator — rows never cross the wire), perturbs each
// shard with the GLOBAL seeded-chunk RNG streams (the shard's global row
// position selects the streams, so the perturbed bits equal the
// single-process pass), indexes it, and drops the rows. From then on it
// serves:
//
//   CountRequest    -> per-candidate support counts over the local
//                      categorical index
//   PatternRequest  -> RAW superset-intersection counts over the local
//                      boolean index (pre-Mobius; the transform is linear
//                      and runs once on the coordinator's merged totals)
//   Ping            -> Pong (liveness; answered before AND after Hello)
//   AssignRange     -> RangeAck, after ingesting ANOTHER chunk-aligned
//                      range on top of the held one(s): the coordinator's
//                      fault recovery hands a dead worker's range to a
//                      survivor, which perturbs it on the same global
//                      seeded-chunk streams — merged counts stay
//                      bit-identical
//
// until Shutdown or peer close. Any local failure is shipped back as an
// Error frame (Status propagation) and ends the session.
//
// A worker OUTLIVES its coordinator: ServeWorker returns OK on a clean peer
// close, and the CLI loops back to accept, so a crashed coordinator can be
// rerun against the same fleet. With an IndexCache installed, the rerun's
// Hello hits the cache and skips the ingest -> perturb -> index pass.

#ifndef FRAPP_DIST_WORKER_H_
#define FRAPP_DIST_WORKER_H_

#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include <string>

#include "frapp/common/statusor.h"
#include "frapp/data/schema.h"
#include "frapp/dist/index_cache.h"
#include "frapp/dist/transport.h"
#include "frapp/pipeline/table_source.h"

namespace frapp {
namespace dist {

struct WorkerOptions {
  explicit WorkerOptions(data::CategoricalSchema schema_in)
      : schema(std::move(schema_in)) {}

  /// Schema of the worker's local data; its fingerprint must match the
  /// coordinator's or the handshake fails.
  data::CategoricalSchema schema;

  /// Produces a fresh TableSource per session (ingest may need to restart
  /// from row 0 for a new coordinator). The source yields the FULL stream;
  /// the worker skips to its assigned range (seekable sources at zero parse
  /// cost, see TableSource::SkipToRow) and keeps only rows inside it.
  std::function<StatusOr<std::unique_ptr<pipeline::TableSource>>()>
      source_factory;

  /// Worker threads for shard perturbation/indexing and for each counting
  /// pass (0 = hardware concurrency). Never affects results.
  size_t num_threads = 1;

  /// Optional process-lifetime cache of built range indexes, shared across
  /// sessions. Requires a non-empty `source_id`; nullptr disables caching.
  IndexCache* index_cache = nullptr;

  /// Stable identity of the local row stream (file path or generator
  /// descriptor) — part of the cache key. Empty = no stable identity, so
  /// the cache is skipped even when installed.
  std::string source_id;

  /// Bounds each receive wait of a session; a session idle past this is
  /// ended CLEANLY (the worker returns to accept, it does not die), so a
  /// coordinator that vanished without closing — SIGKILL, SIGSTOP, network
  /// partition — cannot pin a worker forever. 0 = wait forever.
  uint64_t session_idle_timeout_ms = 0;
};

/// Serves one coordinator session on `transport`; returns OK after a clean
/// Shutdown (or peer close), the failure otherwise. Blocking: run it on a
/// dedicated thread or process.
Status ServeWorker(Transport& transport, const WorkerOptions& options);

/// ServeWorker on a dedicated thread over an in-process transport pair: the
/// test/bench substrate, and the one-box degenerate deployment.
class InProcessWorker {
 public:
  explicit InProcessWorker(WorkerOptions options);

  /// Joins the serving thread (closing the transport first if the
  /// coordinator never did).
  ~InProcessWorker();

  /// The coordinator-side endpoint; call once and hand it to the
  /// Coordinator, which takes ownership.
  std::unique_ptr<Transport> TakeCoordinatorEndpoint() {
    return std::move(coordinator_endpoint_);
  }

  /// Waits for the session to end and returns ServeWorker's status.
  Status Join();

 private:
  std::unique_ptr<Transport> worker_endpoint_;
  std::unique_ptr<Transport> coordinator_endpoint_;
  std::thread thread_;
  Status result_;
  bool joined_ = false;
};

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_WORKER_H_
