#include "frapp/dist/transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

namespace frapp {
namespace dist {

namespace {

Status ClosedError() {
  return Status::FailedPrecondition("connection closed");
}

// ------------------------------------------------------------- in-process --

/// Shared state of one direction of an in-process pair: a FIFO of messages
/// plus a closed flag. Senders enqueue; the receiver blocks on the condition
/// variable. Closing either endpoint closes both directions, waking blocked
/// receivers with ClosedError.
struct InProcessChannel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> queue;
  bool closed = false;

  void Push(Message message) {
    {
      std::lock_guard<std::mutex> lock(mu);
      queue.push_back(std::move(message));
    }
    cv.notify_one();
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

class InProcessTransport : public Transport {
 public:
  InProcessTransport(std::shared_ptr<InProcessChannel> send,
                     std::shared_ptr<InProcessChannel> receive)
      : send_(std::move(send)), receive_(std::move(receive)) {}

  ~InProcessTransport() override { Close(); }

  Status Send(const Message& message) override {
    // Round-trip through the frame encoder: an in-process message exercises
    // (and is size-checked by) the exact same wire format as a TCP one.
    const std::vector<uint8_t> frame = EncodeFrame(message);
    size_t consumed = 0;
    FRAPP_ASSIGN_OR_RETURN(Message decoded,
                           DecodeFrame(frame.data(), frame.size(), &consumed));
    {
      std::lock_guard<std::mutex> lock(send_->mu);
      if (send_->closed) return ClosedError();
    }
    send_->Push(std::move(decoded));
    return Status::OK();
  }

  StatusOr<Message> Receive() override {
    std::unique_lock<std::mutex> lock(receive_->mu);
    receive_->cv.wait(lock, [&] {
      return receive_->closed || !receive_->queue.empty();
    });
    // Drain pending messages even after a close so a shutdown races
    // cleanly, exactly like TCP delivering buffered bytes before EOF.
    if (receive_->queue.empty()) return ClosedError();
    Message message = std::move(receive_->queue.front());
    receive_->queue.pop_front();
    return message;
  }

  void Close() override {
    send_->Close();
    receive_->Close();
  }

 private:
  std::shared_ptr<InProcessChannel> send_;
  std::shared_ptr<InProcessChannel> receive_;
};

// -------------------------------------------------------------------- tcp --

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// Writes all of [data, data+size), looping over partial writes and EINTR.
Status WriteAll(int fd, const uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. `eof_ok` distinguishes a clean close on a
/// frame boundary (ClosedError) from one inside a frame (corruption).
Status ReadAll(int fd, uint8_t* data, size_t size, bool eof_ok) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("recv");
    }
    if (n == 0) {
      if (eof_ok && got == 0) return ClosedError();
      return Status::InvalidArgument(
          "connection closed mid-frame (" + std::to_string(got) + " of " +
          std::to_string(size) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  /// The fd is closed only here, never in Close(): Close() merely shuts the
  /// socket down, so a cross-thread Close cannot race a blocked Receive
  /// into a recycled descriptor.
  ~TcpTransport() override {
    Close();
    ::close(fd_);
  }

  Status Send(const Message& message) override {
    std::lock_guard<std::mutex> lock(send_mu_);
    if (closed_.load(std::memory_order_acquire)) return ClosedError();
    const std::vector<uint8_t> frame = EncodeFrame(message);
    return WriteAll(fd_, frame.data(), frame.size());
  }

  StatusOr<Message> Receive() override {
    if (closed_.load(std::memory_order_acquire)) return ClosedError();
    uint8_t header[kFrameHeaderBytes];
    FRAPP_RETURN_IF_ERROR(
        ReadAll(fd_, header, kFrameHeaderBytes, /*eof_ok=*/true));
    // Validate the header before allocating: DecodeFrame on the 5 header
    // bytes rejects oversized lengths and unknown types, and tells us the
    // payload size it expects.
    uint32_t payload_len = 0;
    for (int i = 3; i >= 0; --i) {
      payload_len = (payload_len << 8) | header[static_cast<size_t>(i)];
    }
    if (payload_len > kMaxFramePayload) {
      return Status::InvalidArgument(
          "frame announces " + std::to_string(payload_len) +
          " payload bytes, above the " + std::to_string(kMaxFramePayload) +
          " cap (corrupt length prefix?)");
    }
    std::vector<uint8_t> frame(kFrameHeaderBytes + payload_len);
    std::memcpy(frame.data(), header, kFrameHeaderBytes);
    FRAPP_RETURN_IF_ERROR(ReadAll(fd_, frame.data() + kFrameHeaderBytes,
                                  payload_len, /*eof_ok=*/false));
    size_t consumed = 0;
    return DecodeFrame(frame.data(), frame.size(), &consumed);
  }

  void Close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

 private:
  const int fd_;
  std::atomic<bool> closed_{false};
  std::mutex send_mu_;
};

/// getaddrinfo for a numeric-or-named host.
StatusOr<struct addrinfo*> Resolve(const std::string& host, uint16_t port,
                                   bool for_bind) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (for_bind) hints.ai_flags = AI_PASSIVE;
  struct addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               std::to_string(port).c_str(), &hints, &result);
  if (rc != 0) {
    return Status::IOError("cannot resolve '" + host +
                           "': " + ::gai_strerror(rc));
  }
  return result;
}

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateInProcessTransportPair() {
  auto a_to_b = std::make_shared<InProcessChannel>();
  auto b_to_a = std::make_shared<InProcessChannel>();
  return {std::make_unique<InProcessTransport>(a_to_b, b_to_a),
          std::make_unique<InProcessTransport>(b_to_a, a_to_b)};
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

TcpListener::~TcpListener() { Close(); }

StatusOr<TcpListener> TcpListener::Bind(const std::string& host,
                                        uint16_t port) {
  FRAPP_ASSIGN_OR_RETURN(struct addrinfo* addrs,
                         Resolve(host, port, /*for_bind=*/true));
  Status last = Status::IOError("no addresses to bind");
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, SOMAXCONN) != 0) {
      last = ErrnoStatus("bind/listen");
      ::close(fd);
      continue;
    }
    // Recover the actual port for ephemeral binds.
    struct sockaddr_storage bound;
    socklen_t bound_len = sizeof(bound);
    uint16_t actual_port = port;
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) == 0) {
      if (bound.ss_family == AF_INET) {
        actual_port = ntohs(
            reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        actual_port = ntohs(
            reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    ::freeaddrinfo(addrs);
    return TcpListener(fd, actual_port);
  }
  ::freeaddrinfo(addrs);
  return last;
}

StatusOr<std::unique_ptr<Transport>> TcpListener::Accept() {
  if (fd_ < 0) return ClosedError();
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("accept");
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                                uint16_t port) {
  FRAPP_ASSIGN_OR_RETURN(struct addrinfo* addrs,
                         Resolve(host, port, /*for_bind=*/false));
  Status last = Status::IOError("no addresses to connect to");
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = ErrnoStatus("connect to " + host + ":" + std::to_string(port));
      ::close(fd);
      continue;
    }
    ::freeaddrinfo(addrs);
    return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
  }
  ::freeaddrinfo(addrs);
  return last;
}

}  // namespace dist
}  // namespace frapp
