#include "frapp/dist/transport.h"

#include "frapp/common/clock.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

namespace frapp {
namespace dist {

namespace {

Status ClosedError() {
  return Status::FailedPrecondition("connection closed");
}

// ------------------------------------------------------------- in-process --

/// Shared state of one direction of an in-process pair: a FIFO of messages
/// plus a closed flag. Senders enqueue; the receiver blocks on the condition
/// variable. Closing either endpoint closes both directions, waking blocked
/// receivers with ClosedError.
struct InProcessChannel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> queue;
  bool closed = false;

  void Push(Message message) {
    {
      std::lock_guard<std::mutex> lock(mu);
      queue.push_back(std::move(message));
    }
    cv.notify_one();
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

class InProcessTransport : public Transport {
 public:
  InProcessTransport(std::shared_ptr<InProcessChannel> send,
                     std::shared_ptr<InProcessChannel> receive)
      : send_(std::move(send)), receive_(std::move(receive)) {}

  ~InProcessTransport() override { Close(); }

  Status Send(const Message& message) override {
    // Round-trip through the frame encoder: an in-process message exercises
    // (and is size-checked by) the exact same wire format as a TCP one.
    const std::vector<uint8_t> frame = EncodeFrame(message);
    size_t consumed = 0;
    FRAPP_ASSIGN_OR_RETURN(Message decoded,
                           DecodeFrame(frame.data(), frame.size(), &consumed));
    {
      std::lock_guard<std::mutex> lock(send_->mu);
      if (send_->closed) return ClosedError();
    }
    send_->Push(std::move(decoded));
    return Status::OK();
  }

  StatusOr<Message> Receive() override {
    std::unique_lock<std::mutex> lock(receive_->mu);
    const auto ready = [&] {
      return receive_->closed || !receive_->queue.empty();
    };
    const uint64_t timeout_ms =
        receive_timeout_ms_.load(std::memory_order_relaxed);
    if (timeout_ms == 0) {
      receive_->cv.wait(lock, ready);
    } else if (!receive_->cv.wait_for(
                   lock, std::chrono::milliseconds(timeout_ms), ready)) {
      return Status::DeadlineExceeded("receive deadline (" +
                                      std::to_string(timeout_ms) +
                                      " ms) exceeded");
    }
    // Drain pending messages even after a close so a shutdown races
    // cleanly, exactly like TCP delivering buffered bytes before EOF.
    if (receive_->queue.empty()) return ClosedError();
    Message message = std::move(receive_->queue.front());
    receive_->queue.pop_front();
    return message;
  }

  void SetReceiveTimeoutMillis(uint64_t ms) override {
    receive_timeout_ms_.store(ms, std::memory_order_relaxed);
  }

  // In-process sends never block (the queue is unbounded), so a send
  // timeout has nothing to bound; the default no-op is correct.

  void Close() override {
    send_->Close();
    receive_->Close();
  }

 private:
  std::shared_ptr<InProcessChannel> send_;
  std::shared_ptr<InProcessChannel> receive_;
  std::atomic<uint64_t> receive_timeout_ms_{0};
};

// -------------------------------------------------------------------- tcp --

/// Maps the current errno onto the dist Status taxonomy: deadline-shaped
/// failures (EAGAIN from SO_RCVTIMEO/SO_SNDTIMEO, ETIMEDOUT) become
/// kDeadlineExceeded so callers know a retry on the SAME connection is
/// safe; peer-gone failures (refused, reset, broken pipe, unreachable)
/// become kUnavailable so the coordinator's recovery path fires; anything
/// else stays a plain kIOError.
Status ErrnoStatus(const std::string& what) {
  const int err = errno;
  const std::string detail = what + ": " + std::strerror(err);
  if (err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT ||
      err == EINPROGRESS) {
    return Status::DeadlineExceeded(detail);
  }
  if (err == ECONNREFUSED || err == ECONNRESET || err == ECONNABORTED ||
      err == EPIPE || err == ENETUNREACH || err == EHOSTUNREACH ||
      err == ENETDOWN) {
    return Status::Unavailable(detail);
  }
  return Status::IOError(detail);
}

/// Writes all of [data, data+size), looping over partial writes and EINTR.
/// MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE against the whole
/// process; the EPIPE errno surfaces as kUnavailable instead. *written
/// reports progress so the caller can tell an untouched stream from a
/// half-written frame.
Status WriteAll(int fd, const uint8_t* data, size_t size, size_t* written) {
  *written = 0;
  while (*written < size) {
    const ssize_t n =
        ::send(fd, data + *written, size - *written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    *written += static_cast<size_t>(n);
  }
  return Status::OK();
}

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  /// The fd is closed only here, never in Close(): Close() merely shuts the
  /// socket down, so a cross-thread Close cannot race a blocked Receive
  /// into a recycled descriptor.
  ~TcpTransport() override {
    Close();
    ::close(fd_);
  }

  Status Send(const Message& message) override {
    std::lock_guard<std::mutex> lock(send_mu_);
    if (closed_.load(std::memory_order_acquire)) return ClosedError();
    if (send_poisoned_) {
      return Status::Unavailable(
          "send direction poisoned: an earlier Send timed out mid-frame, so "
          "the peer's stream position is unknown");
    }
    const std::vector<uint8_t> frame = EncodeFrame(message);
    size_t written = 0;
    Status status = WriteAll(fd_, frame.data(), frame.size(), &written);
    if (status.code() == StatusCode::kDeadlineExceeded && written > 0) {
      // A timed-out send that got NOTHING onto the wire leaves the stream
      // consistent and may be retried; one that left a partial frame cannot.
      send_poisoned_ = true;
    }
    return status;
  }

  StatusOr<Message> Receive() override {
    if (closed_.load(std::memory_order_acquire)) return ClosedError();
    // Phase 1: the 5-byte header. A clean EOF is only clean on a frame
    // boundary (rx_have_ == 0).
    if (rx_have_ < kFrameHeaderBytes) {
      FRAPP_RETURN_IF_ERROR(FillRx(kFrameHeaderBytes, /*eof_ok=*/true));
    }
    // Validate the announced length before allocating for it.
    uint32_t payload_len = 0;
    for (int i = 3; i >= 0; --i) {
      payload_len = (payload_len << 8) | rx_buf_[static_cast<size_t>(i)];
    }
    if (payload_len > kMaxFramePayload) {
      return Status::InvalidArgument(
          "frame announces " + std::to_string(payload_len) +
          " payload bytes, above the " + std::to_string(kMaxFramePayload) +
          " cap (corrupt length prefix?)");
    }
    // Phase 2: the payload.
    const size_t total = kFrameHeaderBytes + payload_len;
    if (rx_have_ < total) {
      FRAPP_RETURN_IF_ERROR(FillRx(total, /*eof_ok=*/false));
    }
    size_t consumed = 0;
    StatusOr<Message> result = DecodeFrame(rx_buf_.data(), total, &consumed);
    // The frame's bytes are consumed either way (a decode failure is a
    // payload problem, not a stream-position problem).
    rx_have_ = 0;
    if (rx_buf_.capacity() > (1u << 20)) {
      std::vector<uint8_t>().swap(rx_buf_);
    }
    return result;
  }

  void SetReceiveTimeoutMillis(uint64_t ms) override {
    SetSocketTimeout(SO_RCVTIMEO, ms);
  }

  void SetSendTimeoutMillis(uint64_t ms) override {
    SetSocketTimeout(SO_SNDTIMEO, ms);
  }

  void Close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

 private:
  /// Reads toward rx_have_ == target, appending into rx_buf_. On a receive
  /// timeout the bytes gathered so far STAY in rx_buf_ — the next Receive()
  /// resumes the same frame, so a deadline never desynchronizes the stream.
  Status FillRx(size_t target, bool eof_ok) {
    if (rx_buf_.size() < target) rx_buf_.resize(target);
    while (rx_have_ < target) {
      const ssize_t n =
          ::recv(fd_, rx_buf_.data() + rx_have_, target - rx_have_, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("recv");
      }
      if (n == 0) {
        if (eof_ok && rx_have_ == 0) return ClosedError();
        return Status::InvalidArgument(
            "connection closed mid-frame (" + std::to_string(rx_have_) +
            " of " + std::to_string(target) + " bytes)");
      }
      rx_have_ += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  /// SO_RCVTIMEO / SO_SNDTIMEO; a zero timeval restores "block forever".
  void SetSocketTimeout(int option, uint64_t ms) {
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, option, &tv, sizeof(tv));
  }

  const int fd_;
  std::atomic<bool> closed_{false};
  std::mutex send_mu_;
  bool send_poisoned_ = false;  // guarded by send_mu_

  // Resumable-receive state (single receiver per the thread contract).
  std::vector<uint8_t> rx_buf_;
  size_t rx_have_ = 0;
};

/// getaddrinfo for a numeric-or-named host.
StatusOr<struct addrinfo*> Resolve(const std::string& host, uint16_t port,
                                   bool for_bind) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (for_bind) hints.ai_flags = AI_PASSIVE;
  struct addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               std::to_string(port).c_str(), &hints, &result);
  if (rc != 0) {
    return Status::IOError("cannot resolve '" + host +
                           "': " + ::gai_strerror(rc));
  }
  return result;
}

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateInProcessTransportPair() {
  auto a_to_b = std::make_shared<InProcessChannel>();
  auto b_to_a = std::make_shared<InProcessChannel>();
  return {std::make_unique<InProcessTransport>(a_to_b, b_to_a),
          std::make_unique<InProcessTransport>(b_to_a, a_to_b)};
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_.exchange(-1)), port_(other.port_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1));
    port_ = other.port_;
  }
  return *this;
}

TcpListener::~TcpListener() { Close(); }

StatusOr<TcpListener> TcpListener::Bind(const std::string& host,
                                        uint16_t port) {
  FRAPP_ASSIGN_OR_RETURN(struct addrinfo* addrs,
                         Resolve(host, port, /*for_bind=*/true));
  Status last = Status::IOError("no addresses to bind");
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, SOMAXCONN) != 0) {
      last = ErrnoStatus("bind/listen");
      ::close(fd);
      continue;
    }
    // Recover the actual port for ephemeral binds.
    struct sockaddr_storage bound;
    socklen_t bound_len = sizeof(bound);
    uint16_t actual_port = port;
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) == 0) {
      if (bound.ss_family == AF_INET) {
        actual_port = ntohs(
            reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        actual_port = ntohs(
            reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    ::freeaddrinfo(addrs);
    return TcpListener(fd, actual_port);
  }
  ::freeaddrinfo(addrs);
  return last;
}

StatusOr<std::unique_ptr<Transport>> TcpListener::Accept() {
  const int listen_fd = fd_.load();
  if (listen_fd < 0) return ClosedError();
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
    }
    if (errno == EINTR && fd_.load() >= 0) continue;
    return ErrnoStatus("accept");
  }
}

void TcpListener::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // close() alone does NOT wake a thread blocked in accept() on Linux;
    // shutdown() does, so a concurrent Accept fails promptly instead of
    // blocking forever on a half-dead listener.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

StatusOr<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                                uint16_t port) {
  FRAPP_ASSIGN_OR_RETURN(struct addrinfo* addrs,
                         Resolve(host, port, /*for_bind=*/false));
  Status last = Status::IOError("no addresses to connect to");
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket");
      continue;
    }
    int rc;
    do {
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      last = ErrnoStatus("connect to " + host + ":" + std::to_string(port));
      ::close(fd);
      continue;
    }
    ::freeaddrinfo(addrs);
    return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
  }
  ::freeaddrinfo(addrs);
  return last;
}

namespace {

/// Polls `fd` writable until `deadline`. EINTR re-polls with the remaining
/// budget (connect(2) cannot be restarted, so the poll carries the wait).
Status WaitWritable(int fd, const common::Deadline& deadline,
                    const std::string& what) {
  while (true) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    int timeout_ms = -1;
    if (!deadline.is_infinite()) {
      if (deadline.expired()) return Status::DeadlineExceeded(what);
      const uint64_t remaining = deadline.remaining_millis();
      timeout_ms = remaining > static_cast<uint64_t>(INT32_MAX)
                       ? INT32_MAX
                       : static_cast<int>(remaining);
    }
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::DeadlineExceeded(what);
    if (errno == EINTR) continue;
    return ErrnoStatus("poll");
  }
}

/// One dial attempt with a bounded connect: non-blocking connect, poll for
/// writability, then SO_ERROR tells whether the handshake succeeded.
StatusOr<std::unique_ptr<Transport>> DialOnce(const std::string& host,
                                              uint16_t port,
                                              uint64_t connect_timeout_ms) {
  if (connect_timeout_ms == 0) return TcpConnect(host, port);
  const std::string peer = host + ":" + std::to_string(port);
  FRAPP_ASSIGN_OR_RETURN(struct addrinfo* addrs,
                         Resolve(host, port, /*for_bind=*/false));
  Status last = Status::IOError("no addresses to connect to");
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket");
      continue;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
      last = ErrnoStatus("connect to " + peer);
      ::close(fd);
      continue;
    }
    if (rc != 0) {
      const Status ready = WaitWritable(
          fd, common::Deadline::AfterMillis(connect_timeout_ms),
          "connect to " + peer + " timed out after " +
              std::to_string(connect_timeout_ms) + " ms");
      if (!ready.ok()) {
        last = ready;
        ::close(fd);
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        errno = so_error != 0 ? so_error : errno;
        last = ErrnoStatus("connect to " + peer);
        ::close(fd);
        continue;
      }
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking for the transport
    ::freeaddrinfo(addrs);
    return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
  }
  ::freeaddrinfo(addrs);
  return last;
}

}  // namespace

StatusOr<std::unique_ptr<Transport>> TcpDial(const std::string& host,
                                             uint16_t port,
                                             const DialOptions& options) {
  const size_t attempts =
      options.retry.max_attempts > 0 ? options.retry.max_attempts : 1;
  Status last = Status::IOError("no dial attempts made");
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMillis(options.retry, attempt - 1)));
    }
    StatusOr<std::unique_ptr<Transport>> dialed =
        DialOnce(host, port, options.connect_timeout_ms);
    if (dialed.ok()) return dialed;
    last = dialed.status();
  }
  return Status(last.code(), "dial " + host + ":" + std::to_string(port) +
                                 " failed after " + std::to_string(attempts) +
                                 " attempt(s): " + last.message());
}

}  // namespace dist
}  // namespace frapp
