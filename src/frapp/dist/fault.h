// Deterministic fault injection for dist transports.
//
// FaultInjectingTransport decorates any Transport with a scripted failure
// schedule: close the connection after N sends or receives, eat sent
// messages (a peer that hangs), report receive deadlines (a peer that went
// silent), or corrupt an incoming frame. The schedule is a pure function of
// operation counts — no clocks, no randomness — so a failure scenario
// replays exactly, in unit tests and under `frapp mine --fault-spec` alike.
//
// Spec grammar (one string drives a whole fleet):
//
//   spec    := clause (';' clause)*
//   clause  := INDEX ':' action (',' action)*
//   action  := KEY '=' UINT
//
// INDEX is the 0-based worker endpoint the clause applies to. Keys:
//
//   close-send=N     close the connection on the (N+1)th Send
//   close-recv=N     close the connection on the (N+1)th Receive
//   drop-send=N      silently eat every Send after the Nth (peer hangs)
//   timeout-recv=N   every Receive after the Nth reports kDeadlineExceeded
//                    (a silent peer, without waiting out a real timer)
//   truncate-recv=N  the (N+1)th Receive reports a corrupt frame
//                    (kInvalidArgument) and closes the connection
//   delay-send-ms=D  sleep D ms before each Send (slow link)
//   delay-recv-ms=D  sleep D ms before each Receive
//
// Example: "2:close-send=1" kills worker 2's connection after its handshake
// frame; "0:timeout-recv=3;1:delay-recv-ms=50" hangs worker 0 after three
// responses and slows worker 1.
//
// The grammar is strict: only the fully empty string means "no faults".
// Empty clauses (doubled or trailing ';'), duplicate endpoint indices, and
// counts that overflow uint64 are errors, and every parse error names the
// 1-based clause it came from — a fleet-wide drill spec with one typo
// should point at the typo, not silently drop or merge a clause.

#ifndef FRAPP_DIST_FAULT_H_
#define FRAPP_DIST_FAULT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "frapp/common/statusor.h"
#include "frapp/dist/transport.h"

namespace frapp {
namespace dist {

/// The scripted failures of ONE endpoint. Counters mean "after this many
/// successful operations"; kNever disables an action.
struct FaultActions {
  static constexpr uint64_t kNever = ~0ull;

  uint64_t close_after_sends = kNever;
  uint64_t close_after_receives = kNever;
  uint64_t drop_sends_after = kNever;
  uint64_t timeout_receives_after = kNever;
  uint64_t truncate_receive_after = kNever;
  uint64_t delay_send_ms = 0;
  uint64_t delay_receive_ms = 0;

  /// True if any action is armed.
  bool armed() const {
    return close_after_sends != kNever || close_after_receives != kNever ||
           drop_sends_after != kNever || timeout_receives_after != kNever ||
           truncate_receive_after != kNever || delay_send_ms != 0 ||
           delay_receive_ms != 0;
  }
};

/// A fleet-wide schedule: endpoint index -> its scripted failures.
struct FaultSpec {
  std::map<size_t, FaultActions> by_endpoint;

  bool empty() const { return by_endpoint.empty(); }
};

/// Parses the spec grammar documented at the top of this header.
StatusOr<FaultSpec> ParseFaultSpec(const std::string& text);

/// Decorates `inner` with a failure schedule. Timeout setters and Close
/// forward to the inner transport; Send/Receive consult the schedule first.
class FaultInjectingTransport : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner,
                          FaultActions actions)
      : inner_(std::move(inner)), actions_(actions) {}

  Status Send(const Message& message) override;
  StatusOr<Message> Receive() override;
  void SetReceiveTimeoutMillis(uint64_t ms) override {
    inner_->SetReceiveTimeoutMillis(ms);
  }
  void SetSendTimeoutMillis(uint64_t ms) override {
    inner_->SetSendTimeoutMillis(ms);
  }
  void Close() override { inner_->Close(); }

  /// Operations that completed (successfully or as injected faults).
  uint64_t sends() const { return sends_; }
  uint64_t receives() const { return receives_; }

 private:
  std::unique_ptr<Transport> inner_;
  const FaultActions actions_;
  uint64_t sends_ = 0;
  uint64_t receives_ = 0;
};

/// Wraps `transport` with endpoint `index`'s clause of `spec`, if any;
/// otherwise returns it untouched. The coordinator CLI calls this on each
/// worker connection it dials.
std::unique_ptr<Transport> MaybeInjectFaults(
    std::unique_ptr<Transport> transport, const FaultSpec& spec, size_t index);

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_FAULT_H_
