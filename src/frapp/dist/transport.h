// Message transports for the frapp/dist wire protocol.
//
// A Transport is one bidirectional, message-oriented, BLOCKING connection
// between a coordinator and a worker. Two implementations:
//
//   InProcessTransport  a pair of in-memory FIFO queues (unbounded — the
//                       strict request/response protocol keeps the depth
//                       at one; there is no backpressure for pipelined
//                       senders). Deterministic and dependency-free: the
//                       test and benchmark substrate, and the degenerate
//                       "distributed on one box" deployment. Messages
//                       still pay the full wire encode/decode, so byte
//                       accounting and protocol behaviour match TCP
//                       exactly.
//   TcpTransport        POSIX stream sockets, blocking I/O with full
//                       partial-read/write and EINTR handling, TCP_NODELAY
//                       (frames are small and latency-bound). The
//                       coordinator drives its per-worker calls from
//                       common::ThreadPool workers, so blocking here is
//                       cheap fan-out, not an event loop.
//
// Thread contract: one thread sends and receives on a given endpoint at a
// time (the dist protocol is strict request/response per connection).
// Close() may be called from another thread to unblock a receiver.

#ifndef FRAPP_DIST_TRANSPORT_H_
#define FRAPP_DIST_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "frapp/common/statusor.h"
#include "frapp/dist/retry.h"
#include "frapp/dist/wire.h"

namespace frapp {
namespace dist {

/// One end of a message connection.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Writes one message as a wire frame. Blocks until fully written (or
  /// until the send timeout trips: kDeadlineExceeded — and, since the frame
  /// may have left partially, the send direction is then poisoned and later
  /// Sends fail kUnavailable).
  virtual Status Send(const Message& message) = 0;

  /// Blocks for the next complete message. A cleanly closed peer yields
  /// kFailedPrecondition ("connection closed"); a peer that vanished
  /// mid-conversation yields kUnavailable; a frame that violates the wire
  /// format yields kInvalidArgument. With a receive timeout set, a silent
  /// peer yields kDeadlineExceeded — the wait is RESUMABLE: partial frame
  /// bytes are retained, and calling Receive() again keeps waiting for the
  /// same frame, so a timeout never desynchronizes the stream.
  virtual StatusOr<Message> Receive() = 0;

  /// Bounds each subsequent Receive wait. 0 restores "block forever".
  virtual void SetReceiveTimeoutMillis(uint64_t ms) { (void)ms; }

  /// Bounds each subsequent Send. 0 restores "block forever".
  virtual void SetSendTimeoutMillis(uint64_t ms) { (void)ms; }

  /// Closes both directions; concurrent and subsequent Send/Receive calls
  /// fail fast. Idempotent.
  virtual void Close() = 0;
};

/// Creates a connected in-process pair: messages sent on one endpoint are
/// received on the other, in order.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateInProcessTransportPair();

/// Listening TCP socket; Accept yields one Transport per inbound
/// connection.
class TcpListener {
 public:
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  ~TcpListener();

  /// Binds and listens on `host`:`port`. Port 0 picks an ephemeral port —
  /// read the actual one from port().
  static StatusOr<TcpListener> Bind(const std::string& host, uint16_t port);

  /// The locally bound port.
  uint16_t port() const { return port_; }

  /// Blocks for the next inbound connection.
  StatusOr<std::unique_ptr<Transport>> Accept();

  /// Stops listening; a blocked Accept fails.
  void Close();

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  // Atomic because Close() may race a blocked Accept() on another thread
  // (the worker's accept loop is shut down exactly that way).
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

/// Connects to a listening worker at `host`:`port`. Blocking connect, one
/// attempt, no timeout — the simple path for tests and local scripts.
StatusOr<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                                uint16_t port);

/// Dial-out policy for TcpDial: per-attempt connect timeout plus the shared
/// retry/backoff options (attempts, capped exponential backoff with
/// deterministic jitter).
struct DialOptions {
  /// Per-attempt connect timeout in milliseconds (non-blocking connect +
  /// poll). 0 = the OS default (blocking connect).
  uint64_t connect_timeout_ms = 5000;

  /// max_attempts dial attempts, base/max backoff and jitter seed between
  /// them. request_deadline_ms is ignored here.
  RetryOptions retry;
};

/// Connects with per-attempt timeouts and capped exponential backoff +
/// jitter between attempts: the coordinator's dial-out path, which must
/// tolerate workers that are still starting up or transiently unreachable.
/// Exhausted attempts surface the last failure (typically kUnavailable for
/// refused connections, kDeadlineExceeded for timeouts).
StatusOr<std::unique_ptr<Transport>> TcpDial(const std::string& host,
                                             uint16_t port,
                                             const DialOptions& options);

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_TRANSPORT_H_
