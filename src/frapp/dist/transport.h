// Message transports for the frapp/dist wire protocol.
//
// A Transport is one bidirectional, message-oriented, BLOCKING connection
// between a coordinator and a worker. Two implementations:
//
//   InProcessTransport  a pair of in-memory FIFO queues (unbounded — the
//                       strict request/response protocol keeps the depth
//                       at one; there is no backpressure for pipelined
//                       senders). Deterministic and dependency-free: the
//                       test and benchmark substrate, and the degenerate
//                       "distributed on one box" deployment. Messages
//                       still pay the full wire encode/decode, so byte
//                       accounting and protocol behaviour match TCP
//                       exactly.
//   TcpTransport        POSIX stream sockets, blocking I/O with full
//                       partial-read/write and EINTR handling, TCP_NODELAY
//                       (frames are small and latency-bound). The
//                       coordinator drives its per-worker calls from
//                       common::ThreadPool workers, so blocking here is
//                       cheap fan-out, not an event loop.
//
// Thread contract: one thread sends and receives on a given endpoint at a
// time (the dist protocol is strict request/response per connection).
// Close() may be called from another thread to unblock a receiver.

#ifndef FRAPP_DIST_TRANSPORT_H_
#define FRAPP_DIST_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "frapp/common/statusor.h"
#include "frapp/dist/wire.h"

namespace frapp {
namespace dist {

/// One end of a message connection.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Writes one message as a wire frame. Blocks until fully written.
  virtual Status Send(const Message& message) = 0;

  /// Blocks for the next complete message. A cleanly closed peer yields
  /// kFailedPrecondition ("connection closed"); a frame that violates the
  /// wire format yields kInvalidArgument.
  virtual StatusOr<Message> Receive() = 0;

  /// Closes both directions; concurrent and subsequent Send/Receive calls
  /// fail fast. Idempotent.
  virtual void Close() = 0;
};

/// Creates a connected in-process pair: messages sent on one endpoint are
/// received on the other, in order.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateInProcessTransportPair();

/// Listening TCP socket; Accept yields one Transport per inbound
/// connection.
class TcpListener {
 public:
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  ~TcpListener();

  /// Binds and listens on `host`:`port`. Port 0 picks an ephemeral port —
  /// read the actual one from port().
  static StatusOr<TcpListener> Bind(const std::string& host, uint16_t port);

  /// The locally bound port.
  uint16_t port() const { return port_; }

  /// Blocks for the next inbound connection.
  StatusOr<std::unique_ptr<Transport>> Accept();

  /// Stops listening; a blocked Accept fails.
  void Close();

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to a listening worker at `host`:`port`.
StatusOr<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                                uint16_t port);

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_TRANSPORT_H_
