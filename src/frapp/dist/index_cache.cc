#include "frapp/dist/index_cache.h"

#include <utility>

namespace frapp {
namespace dist {

bool IndexCache::Lookup(const std::string& key, CachedRangeIndex* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  *out = it->second;
  return true;
}

void IndexCache::Insert(const std::string& key, CachedRangeIndex entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace(key, std::move(entry));
}

IndexCache::Stats IndexCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = entries_.size();
  return out;
}

std::string MakeIndexCacheKey(const std::string& source_id,
                              uint64_t schema_fingerprint,
                              const std::string& spec_key, uint64_t seed,
                              uint64_t range_begin, uint64_t range_end) {
  std::string key = source_id;
  key += "|fp=" + std::to_string(schema_fingerprint);
  key += "|" + spec_key;
  key += "|seed=" + std::to_string(seed);
  key += "|range=" + std::to_string(range_begin) + "-" +
         std::to_string(range_end);
  return key;
}

}  // namespace dist
}  // namespace frapp
