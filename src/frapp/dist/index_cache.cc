#include "frapp/dist/index_cache.h"

#include <utility>

namespace frapp {
namespace dist {

size_t CachedRangeIndex::MemoryBytes() const {
  size_t bytes = sizeof(CachedRangeIndex);
  for (const mining::VerticalIndex& shard : categorical_shards) {
    bytes += sizeof(shard) + shard.MemoryBytes();
  }
  for (const data::BooleanVerticalIndex& shard : boolean_shards) {
    bytes += sizeof(shard) + shard.MemoryBytes();
  }
  return bytes;
}

bool IndexCache::Lookup(const std::string& key, CachedRangeIndex* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  *out = it->second.index;
  return true;
}

void IndexCache::Insert(const std::string& key, CachedRangeIndex entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(key) != 0) return;
  Entry stored;
  stored.bytes = entry.MemoryBytes();
  stored.index = std::move(entry);
  lru_.push_front(key);
  stored.lru = lru_.begin();
  bytes_ += stored.bytes;
  entries_.emplace(key, std::move(stored));
  // Evict oldest-first until under budget; the just-inserted entry sits at
  // the front and is the last candidate, so at least one entry survives
  // even when it alone overflows the budget.
  while (max_bytes_ != 0 && bytes_ > max_bytes_ && entries_.size() > 1) {
    const auto victim = entries_.find(lru_.back());
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

IndexCache::Stats IndexCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = entries_.size();
  out.bytes = bytes_;
  return out;
}

std::string MakeIndexCacheKey(const std::string& source_id,
                              uint64_t schema_fingerprint,
                              const std::string& spec_key, uint64_t seed,
                              uint64_t range_begin, uint64_t range_end) {
  std::string key = source_id;
  key += "|fp=" + std::to_string(schema_fingerprint);
  key += "|" + spec_key;
  key += "|seed=" + std::to_string(seed);
  key += "|range=" + std::to_string(range_begin) + "-" +
         std::to_string(range_end);
  return key;
}

}  // namespace dist
}  // namespace frapp
