// The frapp/dist coordinator: drives Apriori over remote shard workers.
//
// Connect() splits the global row space [0, total_rows) into one contiguous
// chunk-aligned range per worker (the same ShardedTable::Plan the
// single-process pipeline uses), hands each worker its range plus the
// mechanism spec and perturbation seed, and waits for the ingest acks. From
// then on every Apriori pass works like this:
//
//   candidate block --> every worker            (same request, fanned out)
//   count vector    <-- every worker            (integers over ITS rows)
//   tree-merge (integer sums, fixed worker order)
//   boolean only: superset Mobius transform on the MERGED totals
//   mechanism's reconstruction on the totals    (coordinator-local)
//
// Support counts are linear in the row partition and the Mobius transform is
// linear too, so the merged integers equal the single-process pipeline's —
// and since the reconstruction code consuming them is literally the same
// (the mechanism's estimator over a SupportCountSource/PatternCountSource),
// mined itemsets and reconstructed supports are BIT-IDENTICAL to
// pipeline::PrivacyPipeline at any worker count, over any transport.
//
// Traffic is O(workers x candidates) integers per pass; rows never cross
// the wire. DistStats accounts for every byte both ways plus the merge
// time, which is what bench/dist_benchmark.cc records.

#ifndef FRAPP_DIST_COORDINATOR_H_
#define FRAPP_DIST_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/core/mechanism.h"
#include "frapp/data/schema.h"
#include "frapp/dist/mechanism_spec.h"
#include "frapp/dist/transport.h"
#include "frapp/mining/apriori.h"

namespace frapp {
namespace dist {

struct CoordinatorOptions {
  /// Master seed of the deterministic perturbation (worker-side).
  uint64_t perturb_seed = 7;

  /// Threads fanning per-worker calls out (0 = one per worker). Blocking
  /// transport I/O runs on the shared common::ThreadPool. Never affects
  /// results.
  size_t num_threads = 0;

  /// Candidates per CountRequest frame: bounds frame sizes for huge passes.
  size_t max_itemsets_per_request = 8192;
};

/// Observability of one coordinator session.
struct DistStats {
  size_t num_workers = 0;

  /// Rows ingested across workers (sum of HelloAck row counts).
  uint64_t total_rows = 0;

  /// Request/response frames sent to and received from workers.
  uint64_t requests_sent = 0;
  uint64_t responses_received = 0;

  /// Wire bytes both ways (frame headers included), as EncodeFrame lays
  /// them out — identical for TCP and in-process transports.
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;

  /// Nanoseconds merging per-worker count vectors (tree merge + Mobius).
  uint64_t merge_nanos = 0;
};

/// A mining::SupportEstimator whose counts come from remote workers: the
/// mechanism's own reconstructing estimator, fed by merged count vectors.
/// This is what slots into the existing Apriori/estimator seam — Apriori
/// cannot tell it from a local one. Created by Coordinator::MakeEstimator;
/// valid while its Coordinator lives.
class DistributedSupportEstimator : public mining::SupportEstimator {
 public:
  StatusOr<double> EstimateSupport(const mining::Itemset& itemset) override {
    return inner_->EstimateSupport(itemset);
  }
  StatusOr<std::vector<double>> EstimateSupports(
      const std::vector<mining::Itemset>& itemsets) override {
    return inner_->EstimateSupports(itemsets);
  }

 private:
  friend class Coordinator;
  explicit DistributedSupportEstimator(
      std::unique_ptr<mining::SupportEstimator> inner)
      : inner_(std::move(inner)) {}

  std::unique_ptr<mining::SupportEstimator> inner_;
};

class Coordinator {
 public:
  /// Performs the handshake over already-connected transports (one per
  /// worker, ownership taken): assigns ranges over [0, total_rows), ships
  /// the spec + seed, waits for every ingest ack, and verifies the acked
  /// row counts sum to total_rows (a worker whose local data disagrees
  /// would silently skew every count otherwise).
  static StatusOr<std::unique_ptr<Coordinator>> Connect(
      std::vector<std::unique_ptr<Transport>> workers,
      const data::CategoricalSchema& schema, const MechanismSpec& spec,
      size_t total_rows, const CoordinatorOptions& options);

  ~Coordinator();

  /// The distributed estimator over this coordinator's workers.
  StatusOr<std::unique_ptr<DistributedSupportEstimator>> MakeEstimator();

  /// Runs Apriori with the distributed estimator: perturbation and counting
  /// on the workers, reconstruction and candidate generation here.
  StatusOr<mining::AprioriResult> Mine(const mining::AprioriOptions& mining);

  /// Sends Shutdown to every worker and closes the transports. Idempotent;
  /// also run by the destructor.
  void Shutdown();

  const data::CategoricalSchema& schema() const { return schema_; }
  size_t num_workers() const { return workers_.size(); }

  /// Stats snapshot (cheap; callable between passes).
  DistStats stats() const;

 private:
  class RemoteSupportCountSource;
  class RemotePatternCountSource;
  struct Internals;

  Coordinator(std::vector<std::unique_ptr<Transport>> workers,
              data::CategoricalSchema schema, const MechanismSpec& spec,
              const CoordinatorOptions& options);

  /// Sends `request` to every worker, then collects one response per
  /// worker (in worker order). The send loop finishes before any receive
  /// blocks, so all workers compute concurrently; receives fan out on the
  /// shared thread pool.
  Status Broadcast(const Message& request, std::vector<Message>* responses);

  std::vector<std::unique_ptr<Transport>> workers_;
  data::CategoricalSchema schema_;
  MechanismSpec spec_;
  CoordinatorOptions options_;
  std::unique_ptr<core::Mechanism> mechanism_;
  core::Mechanism::ShardKind kind_ =
      core::Mechanism::ShardKind::kCategorical;
  uint64_t total_rows_ = 0;
  uint64_t num_bits_ = 0;
  bool shut_down_ = false;
  std::unique_ptr<Internals> internals_;  // atomic stats counters
};

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_COORDINATOR_H_
