// The frapp/dist coordinator: drives Apriori over remote shard workers.
//
// Connect() splits the global row space [0, total_rows) into one contiguous
// chunk-aligned range per worker (the same ShardedTable::Plan the
// single-process pipeline uses), hands each worker its range plus the
// mechanism spec and perturbation seed, and waits for the ingest acks. From
// then on every Apriori pass works like this:
//
//   candidate block --> every worker            (same request, fanned out)
//   count vector    <-- every worker            (integers over ITS rows)
//   tree-merge (integer sums, fixed worker order)
//   boolean only: superset Mobius transform on the MERGED totals
//   mechanism's reconstruction on the totals    (coordinator-local)
//
// Support counts are linear in the row partition and the Mobius transform is
// linear too, so the merged integers equal the single-process pipeline's —
// and since the reconstruction code consuming them is literally the same
// (the mechanism's estimator over a SupportCountSource/PatternCountSource),
// mined itemsets and reconstructed supports are BIT-IDENTICAL to
// pipeline::PrivacyPipeline at any worker count, over any transport.
//
// Traffic is O(workers x candidates) integers per pass; rows never cross
// the wire. DistStats accounts for every byte both ways plus the merge
// time, which is what bench/dist_benchmark.cc records.
//
// FAULT TOLERANCE. With a request deadline configured (CoordinatorOptions::
// retry), the coordinator survives workers that die, hang, or drop off the
// network, at ANY point after dial-out — and the recovery preserves the
// bit-identity guarantee:
//
//   - A receive that trips its deadline is retried on the same connection
//     (transports resume partial frames), up to max_attempts waits; a
//     worker still silent after that — or one whose connection failed
//     outright — is declared DEAD and its connection closed.
//   - A dead worker's chunk-aligned ranges are re-split (the same
//     ShardedTable::Plan) across the survivors, which re-ingest them via
//     AssignRange: perturbation draws the same GLOBAL seeded-chunk streams,
//     and counts are additive over the row partition, so the merged totals
//     after recovery equal the healthy run's bit for bit.
//   - The interrupted broadcast round then RESTARTS against the survivors:
//     every response of the aborted round was either drained or its
//     connection closed, so the strict request/response streams stay in
//     sync. Re-counted integers are deterministic, so the restart cannot
//     change results — only recover them.
//   - Only when NO worker remains does mining fail, with kUnavailable.
//
// With retry.request_deadline_ms == 0 (the default) deadlines are off and
// behaviour is exactly the pre-fault-tolerance one: block forever, fail on
// the first transport error.

#ifndef FRAPP_DIST_COORDINATOR_H_
#define FRAPP_DIST_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/core/mechanism.h"
#include "frapp/data/schema.h"
#include "frapp/dist/mechanism_spec.h"
#include "frapp/dist/transport.h"
#include "frapp/mining/apriori.h"

namespace frapp {
namespace dist {

struct CoordinatorOptions {
  /// Master seed of the deterministic perturbation (worker-side).
  uint64_t perturb_seed = 7;

  /// First global row of the mined window (chunk-aligned). Workers are
  /// assigned [begin_row, total_rows) only; rows below it are never
  /// ingested or counted. This is how an incremental session serves a
  /// DELTA range (the count store already holds [window_begin, begin_row))
  /// or a windowed stream whose early rows have expired.
  uint64_t begin_row = 0;

  /// Threads fanning per-worker calls out (0 = one per worker). Blocking
  /// transport I/O runs on the shared common::ThreadPool. Never affects
  /// results.
  size_t num_threads = 0;

  /// Candidates per CountRequest frame: bounds frame sizes for huge passes.
  size_t max_itemsets_per_request = 8192;

  /// Failure detection and retry policy. request_deadline_ms bounds every
  /// send and receive against a worker; max_attempts bounds the deadline-
  /// retried receive waits before the worker is declared dead. The deadline
  /// should comfortably exceed the slowest expected ingest/counting pass —
  /// though even a falsely-declared death only costs re-ingest time, never
  /// correctness. The default (0) disables deadlines: block forever.
  RetryOptions retry;
};

/// Observability of one coordinator session.
struct DistStats {
  size_t num_workers = 0;

  /// Workers still serving (== num_workers unless failures struck).
  size_t workers_alive = 0;

  /// Workers declared dead (connection failure, or silent past the retry
  /// budget).
  uint64_t workers_failed = 0;

  /// Chunk-aligned ranges handed to survivors via AssignRange.
  uint64_t ranges_reassigned = 0;

  /// Add-only growth (AppendRows): rows and ranges assigned past the
  /// initial total without re-ingesting anything already held.
  uint64_t rows_appended = 0;
  uint64_t ranges_appended = 0;

  /// Chunk accounting of the session window [begin_row, total_rows):
  /// total_chunks covers the whole window (partial tail chunk included);
  /// appended_chunks covers only rows added by AppendRows — together they
  /// make cache/delta effectiveness visible in every dist report line.
  uint64_t begin_row = 0;
  uint64_t total_chunks = 0;
  uint64_t appended_chunks = 0;

  /// Receive waits that tripped their deadline and were retried on the
  /// same connection.
  uint64_t deadline_retries = 0;

  /// Liveness probes sent by CheckHealth.
  uint64_t pings_sent = 0;

  /// Broadcast rounds restarted after a mid-round worker death.
  uint64_t rounds_restarted = 0;

  /// Rows ingested across workers (sum of HelloAck row counts).
  uint64_t total_rows = 0;

  /// Request/response frames sent to and received from workers.
  uint64_t requests_sent = 0;
  uint64_t responses_received = 0;

  /// Wire bytes both ways (frame headers included), as EncodeFrame lays
  /// them out — identical for TCP and in-process transports.
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;

  /// Nanoseconds merging per-worker count vectors (tree merge + Mobius).
  uint64_t merge_nanos = 0;
};

/// A mining::SupportEstimator whose counts come from remote workers: the
/// mechanism's own reconstructing estimator, fed by merged count vectors.
/// This is what slots into the existing Apriori/estimator seam — Apriori
/// cannot tell it from a local one. Created by Coordinator::MakeEstimator;
/// valid while its Coordinator lives.
class DistributedSupportEstimator : public mining::SupportEstimator {
 public:
  StatusOr<double> EstimateSupport(const mining::Itemset& itemset) override {
    return inner_->EstimateSupport(itemset);
  }
  StatusOr<std::vector<double>> EstimateSupports(
      const std::vector<mining::Itemset>& itemsets) override {
    return inner_->EstimateSupports(itemsets);
  }

 private:
  friend class Coordinator;
  explicit DistributedSupportEstimator(
      std::unique_ptr<mining::SupportEstimator> inner)
      : inner_(std::move(inner)) {}

  std::unique_ptr<mining::SupportEstimator> inner_;
};

class Coordinator {
 public:
  /// Performs the handshake over already-connected transports (one per
  /// worker, ownership taken): assigns ranges over [0, total_rows), ships
  /// the spec + seed, waits for every ingest ack, and verifies the acked
  /// row counts sum to total_rows (a worker whose local data disagrees
  /// would silently skew every count otherwise).
  static StatusOr<std::unique_ptr<Coordinator>> Connect(
      std::vector<std::unique_ptr<Transport>> workers,
      const data::CategoricalSchema& schema, const MechanismSpec& spec,
      size_t total_rows, const CoordinatorOptions& options);

  ~Coordinator();

  /// Add-only data growth: assigns the new rows [previous total,
  /// new_total_rows) across the live fleet via the same chunk-aligned
  /// AssignRange machinery fault recovery uses. Nothing already ingested is
  /// touched — growth costs only the delta, which is what makes a
  /// long-lived session's re-mine after append incremental on the ingest
  /// side (PR6 index caches keep the old ranges warm across sessions too).
  /// Requires the previous total to be chunk-aligned (a partial tail chunk
  /// cannot be extended: perturbation streams are chunk-granular, and a
  /// worker's ingested rows are immutable). On failure the session must be
  /// abandoned: coverage of the new total is no longer guaranteed.
  Status AppendRows(size_t new_total_rows);

  /// One liveness round: pings every live worker and waits for Pongs (under
  /// the retry policy). Workers that fail the probe are declared dead and
  /// their ranges re-assigned to survivors, exactly as during a counting
  /// pass. Fails with kUnavailable once no worker remains. Requires a
  /// configured request deadline to detect HUNG (vs dead) workers.
  Status CheckHealth();

  /// The distributed estimator over this coordinator's workers.
  StatusOr<std::unique_ptr<DistributedSupportEstimator>> MakeEstimator();

  /// Runs Apriori with the distributed estimator: perturbation and counting
  /// on the workers, reconstruction and candidate generation here.
  StatusOr<mining::AprioriResult> Mine(const mining::AprioriOptions& mining);

  /// Sends Shutdown to every worker and closes the transports. Idempotent;
  /// also run by the destructor.
  void Shutdown();

  const data::CategoricalSchema& schema() const { return schema_; }
  size_t num_workers() const { return workers_.size(); }
  size_t num_alive_workers() const;

  /// Stats snapshot (cheap; callable between passes).
  DistStats stats() const;

 private:
  class RemoteSupportCountSource;
  class RemotePatternCountSource;
  struct Internals;

  /// A global row span a worker covers (chunk-aligned).
  struct RowSpan {
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  /// One hired worker: its connection, liveness, and the global coverage
  /// it holds — the hand-off manifest if it dies.
  struct WorkerSlot {
    std::unique_ptr<Transport> transport;
    bool alive = true;
    std::vector<RowSpan> ranges;
    uint64_t rows = 0;
  };

  Coordinator(std::vector<std::unique_ptr<Transport>> workers,
              data::CategoricalSchema schema, const MechanismSpec& spec,
              const CoordinatorOptions& options);

  /// Send/receive against one worker with stats accounting; ReceiveFrom
  /// retries deadline-tripped waits up to the retry budget (the resumable
  /// receive makes that safe) and lets every other failure through.
  Status SendTo(size_t w, const Message& message);
  StatusOr<Message> ReceiveFrom(size_t w);

  /// Declares worker `w` dead: closes its connection and moves its
  /// coverage into *orphans for re-assignment.
  void MarkDead(size_t w, std::vector<RowSpan>* orphans);

  /// Re-splits orphaned spans across the live fleet via AssignRange
  /// (chunk-aligned sub-plans, so perturbation streams stay global), then
  /// re-verifies total row coverage. A worker failing ITS re-assignment is
  /// declared dead too and the loop continues; kUnavailable once nobody is
  /// left. `appending` selects which stats counter the assignments land on
  /// (recovery re-assignments vs add-only growth).
  Status ReassignOrphans(std::vector<RowSpan> orphans, bool appending = false);

  /// Sends `request` to every live worker, then collects one response per
  /// live worker (in slot order). The send loop finishes before any
  /// receive blocks, so all workers compute concurrently; receives fan out
  /// on the shared thread pool. If any worker dies mid-round, the round's
  /// responses are DISCARDED, the dead workers' ranges are re-assigned,
  /// and the round restarts against the survivors — see the file comment
  /// for why that preserves bit-identity.
  Status Broadcast(const Message& request, std::vector<Message>* responses);

  std::vector<WorkerSlot> workers_;
  data::CategoricalSchema schema_;
  MechanismSpec spec_;
  CoordinatorOptions options_;
  std::unique_ptr<core::Mechanism> mechanism_;
  core::Mechanism::ShardKind kind_ =
      core::Mechanism::ShardKind::kCategorical;
  uint64_t total_rows_ = 0;
  uint64_t num_bits_ = 0;
  bool shut_down_ = false;
  std::unique_ptr<Internals> internals_;  // atomic stats counters
};

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_COORDINATOR_H_
