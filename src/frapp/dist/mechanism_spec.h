// Serializable mechanism description: the few numbers that pin down a
// perturbation mechanism, so a coordinator can tell its workers which
// client-side perturbation to run and build the MATCHING miner-side
// reconstruction locally. Both ends construct the mechanism from the same
// spec over the same schema; together with the seeded-chunk RNG contract
// that is what makes worker-side perturbation bit-identical to the
// single-process pass.

#ifndef FRAPP_DIST_MECHANISM_SPEC_H_
#define FRAPP_DIST_MECHANISM_SPEC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "frapp/common/statusor.h"
#include "frapp/core/mechanism.h"
#include "frapp/data/schema.h"
#include "frapp/random/distributions.h"

namespace frapp {
namespace dist {

/// Which mechanism plus its calibration parameters. Field meaning depends on
/// `kind`; unused fields are ignored (and zeroed by convention).
struct MechanismSpec {
  enum class Kind : uint8_t {
    kDetGd = 0,
    kRanGd = 1,
    kMask = 2,
    kCutPaste = 3,
    kIndGd = 4,
  };

  Kind kind = Kind::kDetGd;

  /// Amplification bound (DET-GD, RAN-GD, MASK, IND-GD).
  double gamma = 19.0;

  /// Randomization spread (RAN-GD).
  double alpha = 0.0;

  /// Randomization distribution (RAN-GD).
  random::RandomizationKind randomization = random::RandomizationKind::kUniform;

  /// Cut cutoff K (C&P).
  uint64_t cutoff_k = 3;

  /// Paste probability rho (C&P; the paper's gamma = 19 calibration).
  double rho = 0.494;
};

/// Display name of a spec's mechanism ("DET-GD", "MASK", ...).
std::string MechanismSpecName(const MechanismSpec& spec);

/// Canonical text form covering EVERY field (exact float bits, not decimal
/// round-trips): equal keys iff the specs describe the same perturbation.
/// The worker's index cache keys on it.
std::string CanonicalSpecKey(const MechanismSpec& spec);

/// Parses a CLI-style mechanism name ("det-gd", "ran-gd", "mask", "cp",
/// "ind-gd"; case-insensitive) into a Kind.
StatusOr<MechanismSpec::Kind> ParseMechanismKind(const std::string& name);

/// Instantiates the mechanism a spec describes over `schema`.
StatusOr<std::unique_ptr<core::Mechanism>> MakeMechanism(
    const MechanismSpec& spec, const data::CategoricalSchema& schema);

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_MECHANISM_SPEC_H_
