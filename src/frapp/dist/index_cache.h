// Per-range index cache: a worker process remembers the shard indexes it
// built, keyed on everything that determines them, so a worker that is
// re-hired after a coordinator crash (or asked to serve the same job twice)
// skips the expensive ingest -> perturb -> index pass entirely.
//
// Safe because the pass is DETERMINISTIC: the shard indexes are a pure
// function of (source, schema fingerprint, mechanism spec, master seed,
// chunk-aligned row range) — the global seeded-chunk RNG streams guarantee
// it. The key concatenates exactly those inputs (floats by bit pattern, via
// CanonicalSpecKey), so a hit can never serve stale or mismatched counts.
// Sources without a stable identity (in-memory test tables) use an empty
// source id, which disables caching for them.
//
// The cache lives for the worker PROCESS and is shared across its serve
// sessions; entries are immutable once inserted. Lookup copies shards out
// (index types are plain vectors), so sessions never alias cache state.
// Memory is bounded: every insert charges the entry's approximate heap
// footprint against a byte budget, and the least-recently-used entries are
// evicted when it overflows — a worker reused across many jobs/seeds stays
// flat instead of growing without bound. An eviction only costs the next
// re-ingest of that range; it can never change results.

#ifndef FRAPP_DIST_INDEX_CACHE_H_
#define FRAPP_DIST_INDEX_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "frapp/data/boolean_vertical_index.h"
#include "frapp/mining/vertical_index.h"

namespace frapp {
namespace dist {

/// One cached ingest result: the per-shard indexes of one (job, range),
/// exactly one of the two vectors non-empty (matching the mechanism's shard
/// kind), plus the counts the worker acks with.
struct CachedRangeIndex {
  std::vector<mining::VerticalIndex> categorical_shards;
  std::vector<data::BooleanVerticalIndex> boolean_shards;
  uint64_t num_rows = 0;
  uint64_t num_bits = 0;

  /// Approximate heap footprint — what the entry charges the cache budget.
  size_t MemoryBytes() const;
};

/// Thread-safe process-lifetime LRU cache with a byte budget. Keys come
/// from MakeIndexCacheKey.
class IndexCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
    uint64_t evictions = 0;
    uint64_t bytes = 0;
  };

  /// Default byte budget: generous for one job's worth of ranges, small
  /// next to a mining fleet's working set.
  static constexpr size_t kDefaultMaxBytes = 256ull << 20;

  /// `max_bytes` bounds the summed MemoryBytes of resident entries; 0
  /// means unbounded (callers that manage lifetime themselves, tests).
  /// One entry is always retained even when it alone exceeds the budget —
  /// evicting the entry a session is about to hit would make the cache
  /// pure overhead.
  explicit IndexCache(size_t max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  /// Copies the entry for `key` into *out, refreshes its recency, and
  /// returns true; counts a miss and returns false if absent.
  bool Lookup(const std::string& key, CachedRangeIndex* out);

  /// Inserts (first write wins — determinism makes duplicates identical)
  /// and evicts least-recently-used entries until under budget.
  void Insert(const std::string& key, CachedRangeIndex entry);

  Stats stats() const;

 private:
  struct Entry {
    CachedRangeIndex index;
    size_t bytes = 0;
    std::list<std::string>::iterator lru;  // position in lru_
  };

  const size_t max_bytes_;
  mutable std::mutex mu_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> entries_;
  size_t bytes_ = 0;
  Stats stats_;
};

/// The full determinism key of one ingest pass. `source_id` is a stable
/// name for the row stream (file path, or a generator descriptor); empty
/// means "no stable identity" and callers must skip the cache.
std::string MakeIndexCacheKey(const std::string& source_id,
                              uint64_t schema_fingerprint,
                              const std::string& spec_key, uint64_t seed,
                              uint64_t range_begin, uint64_t range_end);

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_INDEX_CACHE_H_
