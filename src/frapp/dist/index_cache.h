// Per-range index cache: a worker process remembers the shard indexes it
// built, keyed on everything that determines them, so a worker that is
// re-hired after a coordinator crash (or asked to serve the same job twice)
// skips the expensive ingest -> perturb -> index pass entirely.
//
// Safe because the pass is DETERMINISTIC: the shard indexes are a pure
// function of (source, schema fingerprint, mechanism spec, master seed,
// chunk-aligned row range) — the global seeded-chunk RNG streams guarantee
// it. The key concatenates exactly those inputs (floats by bit pattern, via
// CanonicalSpecKey), so a hit can never serve stale or mismatched counts.
// Sources without a stable identity (in-memory test tables) use an empty
// source id, which disables caching for them.
//
// The cache lives for the worker PROCESS and is shared across its serve
// sessions; entries are immutable once inserted. Lookup copies shards out
// (index types are plain vectors), so sessions never alias cache state.

#ifndef FRAPP_DIST_INDEX_CACHE_H_
#define FRAPP_DIST_INDEX_CACHE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "frapp/data/boolean_vertical_index.h"
#include "frapp/mining/vertical_index.h"

namespace frapp {
namespace dist {

/// One cached ingest result: the per-shard indexes of one (job, range),
/// exactly one of the two vectors non-empty (matching the mechanism's shard
/// kind), plus the counts the worker acks with.
struct CachedRangeIndex {
  std::vector<mining::VerticalIndex> categorical_shards;
  std::vector<data::BooleanVerticalIndex> boolean_shards;
  uint64_t num_rows = 0;
  uint64_t num_bits = 0;
};

/// Thread-safe process-lifetime cache. Keys come from MakeIndexCacheKey.
class IndexCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
  };

  /// Copies the entry for `key` into *out and returns true; counts a miss
  /// and returns false if absent.
  bool Lookup(const std::string& key, CachedRangeIndex* out);

  /// Inserts (first write wins — determinism makes duplicates identical).
  void Insert(const std::string& key, CachedRangeIndex entry);

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, CachedRangeIndex> entries_;
  Stats stats_;
};

/// The full determinism key of one ingest pass. `source_id` is a stable
/// name for the row stream (file path, or a generator descriptor); empty
/// means "no stable identity" and callers must skip the cache.
std::string MakeIndexCacheKey(const std::string& source_id,
                              uint64_t schema_fingerprint,
                              const std::string& spec_key, uint64_t seed,
                              uint64_t range_begin, uint64_t range_end);

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_INDEX_CACHE_H_
