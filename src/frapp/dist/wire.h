// The frapp/dist binary wire protocol: length-prefixed frames carrying the
// coordinator <-> worker conversation.
//
// Design rules:
//  - Only CONFIG and COUNT VECTORS ever cross the wire. Rows — original or
//    perturbed — never do: a candidate pass moves O(workers x candidates)
//    integers, independent of the table size.
//  - Everything is little-endian, encoded explicitly byte by byte (no
//    memcpy-of-struct), so the format is identical across hosts.
//  - Frames are length-prefixed and size-capped; a truncated, oversized or
//    trailing-garbage frame is a hard decode error, never a partial read.
//
// Frame layout:
//
//   offset  size  field
//   0       4     u32 payload length (bytes after the type byte)
//   4       1     u8 message type
//   5       ...   payload
//
// Conversation (one coordinator per worker connection):
//
//   coordinator                          worker
//   ----------------------------------- ----------------------------------
//   Hello {version, schema fingerprint,
//          seed, row range, mechanism}  ->
//                                       <- HelloAck {rows, kind, bits}
//                                          or Error {status}
//   CountRequest {candidate block}      ->
//                                       <- CountResponse {u64 counts}
//   PatternRequest {bit positions}      ->
//                                       <- PatternResponse {i64 raw
//                                          superset counts — the Mobius
//                                          transform runs on the MERGED
//                                          totals, coordinator side}
//   Ping {}                             ->
//                                       <- Pong {}  (liveness probe; valid
//                                          before AND after the handshake)
//   AssignRange {row range}             ->
//                                       <- RangeAck {rows, bits}  (fault
//                                          recovery: a dead worker's chunk
//                                          range re-ingested by a survivor)
//   Shutdown {}                         -> (worker closes)
//
// Status propagation: any worker-side failure is shipped back as an Error
// frame carrying the StatusCode and message, which the coordinator rethrows
// as its own Status — a remote failure reads like a local one.

#ifndef FRAPP_DIST_WIRE_H_
#define FRAPP_DIST_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/dist/mechanism_spec.h"
#include "frapp/mining/itemset.h"

namespace frapp {
namespace dist {

/// Protocol version; bumped on any incompatible frame/payload change. The
/// handshake rejects mismatches outright (no negotiation). v2 added the
/// liveness and recovery messages (Ping/Pong, AssignRange/RangeAck); v3
/// added the serve query family (QueryRequest/QueryResponse — payloads in
/// serve/query_wire.h).
inline constexpr uint32_t kProtocolVersion = 3;

/// Hard cap on a frame's payload, rejecting corrupt length prefixes before
/// they turn into allocations. 2^20 patterns x 8 bytes plus headroom.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Frame header bytes (u32 length + u8 type).
inline constexpr size_t kFrameHeaderBytes = 5;

enum class MessageType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kCountRequest = 3,
  kCountResponse = 4,
  kPatternRequest = 5,
  kPatternResponse = 6,
  kShutdown = 7,
  kError = 8,
  kPing = 9,
  kPong = 10,
  kAssignRange = 11,
  kRangeAck = 12,
  // The serve query family (frapp/serve): a client asks a long-lived
  // `frapp serve` process for mined results, top-k itemsets, association
  // rules, or server stats. Payload layouts live in serve/query_wire.h;
  // they share this framing, the Error frame, and Ping/Pong liveness.
  kQueryRequest = 13,
  kQueryResponse = 14,
};

/// One decoded frame: a type plus its raw payload bytes.
struct Message {
  MessageType type = MessageType::kShutdown;
  std::vector<uint8_t> payload;

  /// Bytes this message occupies on the wire (header + payload).
  size_t WireSize() const { return kFrameHeaderBytes + payload.size(); }
};

// ---------------------------------------------------------------- framing --

/// Serializes a message as one frame.
std::vector<uint8_t> EncodeFrame(const Message& message);

/// Decodes one complete frame from the front of [data, data+size). On
/// success sets *consumed to the frame's full byte length. A buffer shorter
/// than the frame it announces, an unknown type, or an oversized length
/// prefix is an error (truncation names how many more bytes were expected).
StatusOr<Message> DecodeFrame(const uint8_t* data, size_t size,
                              size_t* consumed);

// --------------------------------------------------------------- messages --

/// Coordinator -> worker handshake: the job description.
struct HelloRequest {
  uint32_t protocol_version = kProtocolVersion;

  /// data::SchemaFingerprint of the coordinator's schema; the worker
  /// refuses the job unless it matches its own ingest schema, so the two
  /// sides can never disagree on what a category id means.
  uint64_t schema_fingerprint = 0;

  /// Master seed of the deterministic perturbation (the global seeded-chunk
  /// streams are derived from it, worker-side).
  uint64_t perturb_seed = 0;

  /// The worker's assigned global row range [begin, end), chunk-aligned.
  uint64_t range_begin = 0;
  uint64_t range_end = 0;

  MechanismSpec spec;
};

/// Worker -> coordinator handshake reply.
struct HelloAck {
  /// Rows the worker ingested (|assigned range ∩ its stream|).
  uint64_t num_rows = 0;

  /// core::Mechanism::ShardKind the worker indexed (0 categorical,
  /// 1 boolean).
  uint8_t shard_kind = 0;

  /// One-hot width of the boolean index (0 for categorical workers).
  uint64_t num_bits = 0;
};

/// One block of an Apriori pass's candidate list (categorical mechanisms).
struct CountRequest {
  std::vector<mining::Itemset> itemsets;
};

/// counts[c] = worker-local support count of itemsets[c].
struct CountResponse {
  std::vector<uint64_t> counts;
};

/// One block of candidates' bit-position lists (boolean mechanisms): a
/// whole Apriori pass batches into few frames instead of one round trip
/// per candidate.
struct PatternRequest {
  std::vector<std::vector<uint32_t>> candidates;
};

/// superset_counts[c][S] = worker-local RAW superset-intersection count of
/// subset S over candidates[c]'s positions (2^k_c entries, pre-Mobius: the
/// transform is linear, so it runs once on the coordinator's merged
/// totals).
struct PatternResponse {
  std::vector<std::vector<int64_t>> superset_counts;
};

/// Cap on the TOTAL pattern count (sum of 2^k_c) of one PatternRequest's
/// batch: bounds the response at 16 MiB of i64 counts, under the frame
/// cap with headroom. The coordinator splits candidate blocks to fit;
/// decode rejects batches above it.
inline constexpr uint64_t kMaxPatternsPerBatch = 1ull << 21;

/// Worker -> coordinator failure report.
struct ErrorResponse {
  uint8_t code = 0;
  std::string message;
};

/// Coordinator -> worker fault recovery: ingest ANOTHER chunk-aligned
/// global row range on top of the one(s) already held — the dead worker's
/// range, re-perturbed by this survivor on the same global seeded-chunk
/// streams. Because counts are additive over the row partition, the merged
/// totals stay bit-identical to the healthy run.
struct AssignRange {
  uint64_t range_begin = 0;
  uint64_t range_end = 0;
};

/// Worker -> coordinator recovery ack: rows ingested for the assigned
/// range (the coordinator re-verifies total coverage), plus the one-hot
/// width for boolean mechanisms (0 otherwise).
struct RangeAck {
  uint64_t num_rows = 0;
  uint64_t num_bits = 0;
};

Message EncodeHello(const HelloRequest& hello);
StatusOr<HelloRequest> DecodeHello(const Message& message);

Message EncodeHelloAck(const HelloAck& ack);
StatusOr<HelloAck> DecodeHelloAck(const Message& message);

Message EncodeCountRequest(const CountRequest& request);
StatusOr<CountRequest> DecodeCountRequest(const Message& message);

Message EncodeCountResponse(const CountResponse& response);
StatusOr<CountResponse> DecodeCountResponse(const Message& message);

Message EncodePatternRequest(const PatternRequest& request);
StatusOr<PatternRequest> DecodePatternRequest(const Message& message);

Message EncodePatternResponse(const PatternResponse& response);
StatusOr<PatternResponse> DecodePatternResponse(const Message& message);

Message EncodeShutdown();

/// Liveness probe and reply; both payload-free. The worker answers Pong
/// whether or not a handshake has happened, so a coordinator can health-
/// check a fleet it has not hired yet.
Message EncodePing();
Message EncodePong();

Message EncodeAssignRange(const AssignRange& assign);
StatusOr<AssignRange> DecodeAssignRange(const Message& message);

Message EncodeRangeAck(const RangeAck& ack);
StatusOr<RangeAck> DecodeRangeAck(const Message& message);

/// Status <-> Error frame round trip, the remote half of Status
/// propagation.
Message EncodeError(const Status& status);
Status DecodeError(const Message& message);

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_WIRE_H_
