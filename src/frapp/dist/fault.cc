#include "frapp/dist/fault.h"

#include <chrono>
#include <thread>
#include <vector>

namespace frapp {
namespace dist {

namespace {

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

StatusOr<uint64_t> ParseUint(const std::string& text,
                             const std::string& what) {
  if (text.empty()) {
    return Status::InvalidArgument("empty " + what);
  }
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-numeric " + what + " '" + text +
                                     "'");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    // Overflow check: a spec with 20+ digits must fail loudly, not wrap
    // into some small (and silently armed) threshold.
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument(what + " '" + text +
                                     "' overflows uint64");
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

StatusOr<FaultSpec> ParseFaultSpec(const std::string& text) {
  FaultSpec spec;
  if (text.empty()) return spec;
  const std::vector<std::string> clauses = SplitOn(text, ';');
  for (size_t c = 0; c < clauses.size(); ++c) {
    const std::string& clause = clauses[c];
    // Every error names the 1-based clause it came from: a long drill
    // spec with one typo should point at the typo, not at the string.
    const std::string where = "fault spec clause " + std::to_string(c + 1);
    if (clause.empty()) {
      return Status::InvalidArgument(
          where + " is empty (doubled or trailing ';'?)");
    }
    const size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(where + " '" + clause +
                                     "' is missing its 'INDEX:' endpoint "
                                     "prefix");
    }
    StatusOr<uint64_t> index = ParseUint(clause.substr(0, colon),
                                         "endpoint index");
    if (!index.ok()) {
      return Status::InvalidArgument(where + ": " +
                                     index.status().message());
    }
    if (spec.by_endpoint.count(static_cast<size_t>(*index)) > 0) {
      // Merging duplicate clauses would let a later clause silently
      // overwrite an earlier one's actions; make the ambiguity an error.
      return Status::InvalidArgument(where + ": duplicate endpoint index " +
                                     std::to_string(*index));
    }
    FaultActions& actions = spec.by_endpoint[static_cast<size_t>(*index)];
    for (const std::string& action : SplitOn(clause.substr(colon + 1), ',')) {
      const size_t eq = action.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument(where + ": action '" + action +
                                       "' is not KEY=VALUE");
      }
      const std::string key = action.substr(0, eq);
      StatusOr<uint64_t> value = ParseUint(action.substr(eq + 1),
                                           key + " value");
      if (!value.ok()) {
        return Status::InvalidArgument(where + ": " +
                                       value.status().message());
      }
      if (key == "close-send") {
        actions.close_after_sends = *value;
      } else if (key == "close-recv") {
        actions.close_after_receives = *value;
      } else if (key == "drop-send") {
        actions.drop_sends_after = *value;
      } else if (key == "timeout-recv") {
        actions.timeout_receives_after = *value;
      } else if (key == "truncate-recv") {
        actions.truncate_receive_after = *value;
      } else if (key == "delay-send-ms") {
        actions.delay_send_ms = *value;
      } else if (key == "delay-recv-ms") {
        actions.delay_receive_ms = *value;
      } else {
        return Status::InvalidArgument(where + ": unknown key '" + key +
                                       "'");
      }
    }
  }
  return spec;
}

Status FaultInjectingTransport::Send(const Message& message) {
  if (actions_.delay_send_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(actions_.delay_send_ms));
  }
  if (sends_ >= actions_.close_after_sends) {
    ++sends_;
    inner_->Close();
    return Status::Unavailable("fault injection: connection closed after " +
                               std::to_string(actions_.close_after_sends) +
                               " sends");
  }
  if (sends_ >= actions_.drop_sends_after) {
    // The message vanishes but the caller sees success — the classic
    // network partition where the peer never hears the request.
    ++sends_;
    return Status::OK();
  }
  const Status status = inner_->Send(message);
  if (status.ok()) ++sends_;
  return status;
}

StatusOr<Message> FaultInjectingTransport::Receive() {
  if (actions_.delay_receive_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(actions_.delay_receive_ms));
  }
  if (receives_ >= actions_.timeout_receives_after) {
    // A silent peer, reported without waiting out a real timer: the caller
    // sees exactly what a tripped SO_RCVTIMEO would produce.
    ++receives_;
    return Status::DeadlineExceeded(
        "fault injection: simulated silent peer after " +
        std::to_string(actions_.timeout_receives_after) + " receives");
  }
  if (receives_ >= actions_.truncate_receive_after) {
    ++receives_;
    inner_->Close();
    return Status::InvalidArgument(
        "fault injection: truncated frame after " +
        std::to_string(actions_.truncate_receive_after) + " receives");
  }
  if (receives_ >= actions_.close_after_receives) {
    ++receives_;
    inner_->Close();
    return Status::Unavailable("fault injection: connection closed after " +
                               std::to_string(actions_.close_after_receives) +
                               " receives");
  }
  StatusOr<Message> received = inner_->Receive();
  if (received.ok()) ++receives_;
  return received;
}

std::unique_ptr<Transport> MaybeInjectFaults(
    std::unique_ptr<Transport> transport, const FaultSpec& spec,
    size_t index) {
  const auto it = spec.by_endpoint.find(index);
  if (it == spec.by_endpoint.end() || !it->second.armed()) return transport;
  return std::make_unique<FaultInjectingTransport>(std::move(transport),
                                                   it->second);
}

}  // namespace dist
}  // namespace frapp
