// Payload encode/decode helpers shared by every frame family of the frapp
// wire protocol (the dist coordinator/worker frames in dist/wire.cc and the
// serve query frames in serve/query_wire.cc). Everything is little-endian,
// written explicitly byte by byte — no memcpy-of-struct — so payloads are
// identical across hosts.

#ifndef FRAPP_DIST_WIRE_IO_H_
#define FRAPP_DIST_WIRE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "frapp/common/status.h"

namespace frapp {
namespace dist {

/// Little-endian append-only payload builder.
class PayloadWriter {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U16(uint16_t v) { Little(v, 2); }
  void U32(uint32_t v) { Little(v, 4); }
  void U64(uint64_t v) { Little(v, 8); }
  void I64(int64_t v) { Little(static_cast<uint64_t>(v), 8); }
  void F64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  std::vector<uint8_t> Take() { return std::move(out_); }

 private:
  void Little(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
    }
  }

  std::vector<uint8_t> out_;
};

/// Bounds-checked little-endian payload reader with a sticky failure flag:
/// reads past the end return 0 and poison the reader, and Finish() reports
/// the first failure (or trailing garbage) as a Status. Keeps the decoders
/// straight-line without a Status check per field.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8() { return static_cast<uint8_t>(Little(1)); }
  uint16_t U16() { return static_cast<uint16_t>(Little(2)); }
  uint32_t U32() { return static_cast<uint32_t>(Little(4)); }
  uint64_t U64() { return Little(8); }
  int64_t I64() { return static_cast<int64_t>(Little(8)); }
  double F64() {
    const uint64_t bits = U64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint32_t n = U32();
    if (failed_ || size_ - pos_ < n) {
      failed_ = true;
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  bool failed() const { return failed_; }
  size_t remaining() const { return size_ - pos_; }

  /// OK iff every read stayed in bounds and the payload is fully consumed.
  Status Finish(const char* what) const {
    if (failed_) {
      return Status::InvalidArgument(std::string(what) +
                                     ": truncated payload");
    }
    if (pos_ != size_) {
      return Status::InvalidArgument(std::string(what) +
                                     ": trailing bytes after payload");
    }
    return Status::OK();
  }

 private:
  uint64_t Little(int bytes) {
    if (failed_ || size_ - pos_ < static_cast<size_t>(bytes)) {
      failed_ = true;
      return 0;
    }
    uint64_t v = 0;
    for (int i = bytes - 1; i >= 0; --i) {
      v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
    }
    pos_ += static_cast<size_t>(bytes);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace dist
}  // namespace frapp

#endif  // FRAPP_DIST_WIRE_IO_H_
