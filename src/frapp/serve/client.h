// Client side of the serve query conversation: one blocking
// request/response exchange per call over any dist::Transport (TCP for the
// `frapp query` CLI, in-process pairs for tests).

#ifndef FRAPP_SERVE_CLIENT_H_
#define FRAPP_SERVE_CLIENT_H_

#include <memory>

#include "frapp/common/statusor.h"
#include "frapp/dist/transport.h"
#include "frapp/serve/query_wire.h"

namespace frapp {
namespace serve {

class QueryClient {
 public:
  explicit QueryClient(std::unique_ptr<dist::Transport> transport)
      : transport_(std::move(transport)) {}

  ~QueryClient() { Close(); }

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Sends one query and blocks for its response. A server-side rejection
  /// (version/fingerprint mismatch, bad arguments, shutdown) arrives as the
  /// Error frame's Status.
  StatusOr<QueryResponse> Query(const QueryRequest& request);

  /// Liveness probe (kPing -> kPong).
  Status Ping();

  /// Says goodbye (kShutdown) and closes. Idempotent; the destructor calls
  /// it too.
  void Close();

 private:
  std::unique_ptr<dist::Transport> transport_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace frapp

#endif  // FRAPP_SERVE_CLIENT_H_
