#include "frapp/serve/query_wire.h"

#include <algorithm>
#include <utility>

#include "frapp/dist/wire_io.h"

namespace frapp {
namespace serve {

namespace {

using dist::Message;
using dist::MessageType;
using dist::PayloadReader;
using dist::PayloadWriter;

Status ExpectType(const Message& message, MessageType want, const char* what) {
  if (message.type == want) return Status::OK();
  if (message.type == MessageType::kError) return dist::DecodeError(message);
  return Status::InvalidArgument(
      std::string(what) + ": unexpected message type " +
      std::to_string(static_cast<int>(message.type)));
}

void WriteSpec(PayloadWriter& w, const dist::MechanismSpec& spec) {
  w.U8(static_cast<uint8_t>(spec.kind));
  w.F64(spec.gamma);
  w.F64(spec.alpha);
  w.U8(static_cast<uint8_t>(spec.randomization));
  w.U64(spec.cutoff_k);
  w.F64(spec.rho);
}

Status ReadSpec(PayloadReader& r, dist::MechanismSpec* spec,
                const char* what) {
  const uint8_t kind = r.U8();
  spec->gamma = r.F64();
  spec->alpha = r.F64();
  const uint8_t randomization = r.U8();
  spec->cutoff_k = r.U64();
  spec->rho = r.F64();
  if (r.failed()) return Status::OK();  // Finish() reports the truncation.
  if (kind > static_cast<uint8_t>(dist::MechanismSpec::Kind::kIndGd)) {
    return Status::InvalidArgument(std::string(what) +
                                   ": unknown mechanism kind " +
                                   std::to_string(kind));
  }
  if (randomization >
      static_cast<uint8_t>(random::RandomizationKind::kTruncatedGaussian)) {
    return Status::InvalidArgument(std::string(what) +
                                   ": unknown randomization kind " +
                                   std::to_string(randomization));
  }
  spec->kind = static_cast<dist::MechanismSpec::Kind>(kind);
  spec->randomization = static_cast<random::RandomizationKind>(randomization);
  return Status::OK();
}

void WriteItemset(PayloadWriter& w, const mining::Itemset& itemset) {
  w.U16(static_cast<uint16_t>(itemset.size()));
  for (const mining::Item& item : itemset.items()) {
    w.U16(item.attribute);
    w.U16(item.category);
  }
}

// Validates the sorted-distinct-attributes invariant instead of trusting
// the peer (mining::Itemset::Create). An empty itemset is allowed only
// where the caller says so (a rule's antecedent/consequent are non-empty;
// frequent itemsets too).
StatusOr<mining::Itemset> ReadItemset(PayloadReader& r, const char* what) {
  const uint16_t k = r.U16();
  if (r.failed()) return Status::InvalidArgument(std::string(what) +
                                                 ": truncated payload");
  if (k == 0) {
    return Status::InvalidArgument(std::string(what) + ": empty itemset");
  }
  std::vector<mining::Item> items;
  items.reserve(std::min<size_t>(k, r.remaining() / 4));
  for (uint16_t i = 0; i < k && !r.failed(); ++i) {
    const uint16_t attribute = r.U16();
    const uint16_t category = r.U16();
    items.push_back(mining::Item{attribute, category});
  }
  if (r.failed()) {
    return Status::InvalidArgument(std::string(what) + ": truncated payload");
  }
  return mining::Itemset::Create(std::move(items));
}

void WriteServerStats(PayloadWriter& w, const ServerStatsWire& s) {
  w.U64(s.queries);
  w.U64(s.mine_runs);
  w.U64(s.cache_hits);
  w.U64(s.coalesced);
  w.U64(s.store_hits);
  w.U64(s.store_misses);
  w.U64(s.cache_entries);
  w.U64(s.cache_evictions);
  w.U64(s.rejected);
}

ServerStatsWire ReadServerStats(PayloadReader& r) {
  ServerStatsWire s;
  s.queries = r.U64();
  s.mine_runs = r.U64();
  s.cache_hits = r.U64();
  s.coalesced = r.U64();
  s.store_hits = r.U64();
  s.store_misses = r.U64();
  s.cache_entries = r.U64();
  s.cache_evictions = r.U64();
  s.rejected = r.U64();
  return s;
}

}  // namespace

Message EncodeQueryRequest(const QueryRequest& request) {
  PayloadWriter w;
  w.U32(request.protocol_version);
  w.U8(static_cast<uint8_t>(request.kind));
  w.U64(request.schema_fingerprint);
  WriteSpec(w, request.spec);
  w.U64(request.perturb_seed);
  w.F64(request.min_support);
  w.F64(request.min_confidence);
  w.U64(request.top_k);
  return Message{MessageType::kQueryRequest, w.Take()};
}

StatusOr<QueryRequest> DecodeQueryRequest(const Message& message) {
  FRAPP_RETURN_IF_ERROR(
      ExpectType(message, MessageType::kQueryRequest, "QueryRequest"));
  PayloadReader r(message.payload.data(), message.payload.size());
  QueryRequest request;
  request.protocol_version = r.U32();
  const uint8_t kind = r.U8();
  request.schema_fingerprint = r.U64();
  FRAPP_RETURN_IF_ERROR(ReadSpec(r, &request.spec, "QueryRequest"));
  request.perturb_seed = r.U64();
  request.min_support = r.F64();
  request.min_confidence = r.F64();
  request.top_k = r.U64();
  FRAPP_RETURN_IF_ERROR(r.Finish("QueryRequest"));
  if (kind > static_cast<uint8_t>(QueryKind::kStats)) {
    return Status::InvalidArgument("QueryRequest: unknown query kind " +
                                   std::to_string(kind));
  }
  request.kind = static_cast<QueryKind>(kind);
  return request;
}

Message EncodeQueryResponse(const QueryResponse& response) {
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(response.kind));
  w.U8(static_cast<uint8_t>(response.outcome));
  w.U64(response.store_hits);
  w.U64(response.store_misses);
  w.U64(response.delta_chunks);
  w.U64(response.tail_rows);
  w.U64(response.elapsed_micros);

  // Full mined result: levels of (itemset, exact support bits), plus the
  // per-pass candidate counts so a remote report is indistinguishable from
  // a local one.
  w.U32(static_cast<uint32_t>(response.result.by_length.size()));
  for (const auto& level : response.result.by_length) {
    w.U32(static_cast<uint32_t>(level.size()));
    for (const mining::FrequentItemset& f : level) {
      WriteItemset(w, f.itemset);
      w.F64(f.support);
    }
  }
  w.U32(static_cast<uint32_t>(response.result.candidates_per_pass.size()));
  for (size_t candidates : response.result.candidates_per_pass) {
    w.U64(candidates);
  }

  w.U32(static_cast<uint32_t>(response.top.size()));
  for (const mining::FrequentItemset& f : response.top) {
    WriteItemset(w, f.itemset);
    w.F64(f.support);
  }

  w.U32(static_cast<uint32_t>(response.rules.size()));
  for (const mining::AssociationRule& rule : response.rules) {
    WriteItemset(w, rule.antecedent);
    WriteItemset(w, rule.consequent);
    w.F64(rule.support);
    w.F64(rule.confidence);
  }

  WriteServerStats(w, response.server);
  return Message{MessageType::kQueryResponse, w.Take()};
}

StatusOr<QueryResponse> DecodeQueryResponse(const Message& message) {
  FRAPP_RETURN_IF_ERROR(
      ExpectType(message, MessageType::kQueryResponse, "QueryResponse"));
  PayloadReader r(message.payload.data(), message.payload.size());
  QueryResponse response;
  const uint8_t kind = r.U8();
  const uint8_t outcome = r.U8();
  response.store_hits = r.U64();
  response.store_misses = r.U64();
  response.delta_chunks = r.U64();
  response.tail_rows = r.U64();
  response.elapsed_micros = r.U64();
  if (!r.failed()) {
    if (kind > static_cast<uint8_t>(QueryKind::kStats)) {
      return Status::InvalidArgument("QueryResponse: unknown query kind " +
                                     std::to_string(kind));
    }
    if (outcome > static_cast<uint8_t>(CacheOutcome::kCoalesced)) {
      return Status::InvalidArgument("QueryResponse: unknown cache outcome " +
                                     std::to_string(outcome));
    }
    response.kind = static_cast<QueryKind>(kind);
    response.outcome = static_cast<CacheOutcome>(outcome);
  }

  const uint32_t levels = r.U32();
  // Never reserve a peer-controlled count beyond what the payload could
  // possibly hold (4 bytes is the smallest level encoding): a corrupt
  // count must fail as a truncated payload, not as a giant allocation.
  response.result.by_length.reserve(
      r.failed() ? 0 : std::min<size_t>(levels, r.remaining() / 4));
  for (uint32_t l = 0; l < levels && !r.failed(); ++l) {
    const uint32_t n = r.U32();
    std::vector<mining::FrequentItemset> level;
    // 14 bytes = the smallest (itemset, support) encoding.
    level.reserve(r.failed() ? 0 : std::min<size_t>(n, r.remaining() / 14));
    for (uint32_t i = 0; i < n && !r.failed(); ++i) {
      FRAPP_ASSIGN_OR_RETURN(mining::Itemset itemset,
                             ReadItemset(r, "QueryResponse"));
      const double support = r.F64();
      level.push_back(mining::FrequentItemset{std::move(itemset), support});
    }
    response.result.by_length.push_back(std::move(level));
  }
  const uint32_t passes = r.U32();
  response.result.candidates_per_pass.reserve(
      r.failed() ? 0 : std::min<size_t>(passes, r.remaining() / 8));
  for (uint32_t p = 0; p < passes && !r.failed(); ++p) {
    response.result.candidates_per_pass.push_back(
        static_cast<size_t>(r.U64()));
  }

  const uint32_t top = r.U32();
  response.top.reserve(r.failed() ? 0
                                  : std::min<size_t>(top, r.remaining() / 14));
  for (uint32_t i = 0; i < top && !r.failed(); ++i) {
    FRAPP_ASSIGN_OR_RETURN(mining::Itemset itemset,
                           ReadItemset(r, "QueryResponse"));
    const double support = r.F64();
    response.top.push_back(mining::FrequentItemset{std::move(itemset), support});
  }

  const uint32_t rules = r.U32();
  // 28 bytes = the smallest rule encoding (two 1-item itemsets + two f64s).
  response.rules.reserve(
      r.failed() ? 0 : std::min<size_t>(rules, r.remaining() / 28));
  for (uint32_t i = 0; i < rules && !r.failed(); ++i) {
    FRAPP_ASSIGN_OR_RETURN(mining::Itemset antecedent,
                           ReadItemset(r, "QueryResponse"));
    FRAPP_ASSIGN_OR_RETURN(mining::Itemset consequent,
                           ReadItemset(r, "QueryResponse"));
    const double support = r.F64();
    const double confidence = r.F64();
    response.rules.push_back(mining::AssociationRule{
        std::move(antecedent), std::move(consequent), support, confidence});
  }

  response.server = ReadServerStats(r);
  FRAPP_RETURN_IF_ERROR(r.Finish("QueryResponse"));
  return response;
}

}  // namespace serve
}  // namespace frapp
