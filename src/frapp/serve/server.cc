#include "frapp/serve/server.h"

#include <utility>

#include "frapp/serve/query_wire.h"

namespace frapp {
namespace serve {

QueryServer::~QueryServer() { Shutdown(); }

void QueryServer::AttachSession(std::unique_ptr<dist::Transport> transport) {
  auto session = std::make_unique<Session>();
  session->transport = std::move(transport);
  Session* raw = session.get();
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    // Checked under the list lock: Shutdown sets stopping_ BEFORE swapping
    // the list out, so either we see it here and refuse, or our session
    // lands in the list Shutdown is about to drain.
    if (stopping_.load()) {
      raw->transport->Close();
      return;
    }
    session->thread = std::thread([this, raw] { RunSession(raw); });
    session_list_.push_back(std::move(session));
  }
  sessions_.fetch_add(1);
}

Status QueryServer::ServeLoop(dist::TcpListener& listener) {
  while (!stopping_.load()) {
    StatusOr<std::unique_ptr<dist::Transport>> transport = listener.Accept();
    // A failed Accept is the exit signal (the listener was closed, e.g. by
    // a signal handler) — drain and leave cleanly.
    if (!transport.ok()) break;
    AttachSession(*std::move(transport));
  }
  Shutdown();
  return Status::OK();
}

void QueryServer::Shutdown() {
  stopping_.store(true);
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.swap(session_list_);
  }
  for (std::unique_ptr<Session>& session : sessions) {
    {
      // Wait out the in-flight query: `busy` is held from decode through
      // the response send, so once acquired the client has its answer and
      // the close below can only interrupt an idle Receive.
      std::lock_guard<std::mutex> busy(session->busy);
      session->transport->Close();
    }
    if (session->thread.joinable()) session->thread.join();
  }
}

void QueryServer::RunSession(Session* session) {
  dist::Transport& transport = *session->transport;
  while (true) {
    StatusOr<dist::Message> message = transport.Receive();
    if (!message.ok()) break;  // closed or broken peer ends the session
    std::lock_guard<std::mutex> busy(session->busy);
    if (message->type == dist::MessageType::kPing) {
      if (!transport.Send(dist::EncodePong()).ok()) break;
      continue;
    }
    if (message->type == dist::MessageType::kShutdown) break;
    if (message->type != dist::MessageType::kQueryRequest) {
      const Status err = Status::InvalidArgument(
          "serve session expects QueryRequest, Ping, or Shutdown frames");
      if (!transport.Send(dist::EncodeError(err)).ok()) break;
      continue;
    }
    if (stopping_.load()) {
      // The query arrived after shutdown began: refuse rather than start
      // work whose response may never be deliverable.
      (void)transport.Send(
          dist::EncodeError(Status::Unavailable("server is shutting down")));
      break;
    }
    StatusOr<QueryRequest> request = DecodeQueryRequest(*message);
    if (!request.ok()) {
      if (!transport.Send(dist::EncodeError(request.status())).ok()) break;
      continue;
    }
    StatusOr<QueryResponse> response = broker_->Execute(*request);
    const Status sent =
        response.ok() ? transport.Send(EncodeQueryResponse(*response))
                      : transport.Send(dist::EncodeError(response.status()));
    if (!sent.ok()) break;
  }
  transport.Close();
}

}  // namespace serve
}  // namespace frapp
