// Payloads of the serve query frame family (dist::MessageType::kQueryRequest
// / kQueryResponse) — the read path of mining-as-a-service.
//
// A query client asks a long-lived `frapp serve` process a question about
// ONE perturbed counting problem, identified exactly like the count store's
// identity: (schema fingerprint, canonical mechanism spec, perturbation
// seed, supmin). The server answers from its result cache / count store
// when it can and runs at most one mine per distinct key however many
// clients ask concurrently (serve/broker.h).
//
// Query kinds:
//
//   kMine   the full frequent-itemset result (every level, 9-digit exact
//           supports) — byte-renders to the same report as
//           `frapp mine --run-pipeline`.
//   kTopK   the top_k highest-support frequent itemsets across lengths.
//   kRules  association rules (mining::GenerateAssociationRules) derived
//           from the mined result at min_confidence.
//   kStats  server counters only; never triggers a mine.
//
// Every response carries per-query execution stats (cache outcome, count
// store hit/miss counts, chunks actually perturbed) plus a snapshot of the
// server-wide counters, so clients — and the smoke scripts asserting
// coalescing — observe the server's behaviour without a side channel.
//
// Framing, the Error frame, and Ping/Pong liveness are shared with the dist
// conversation (dist/wire.h); payload encoding uses the same little-endian
// conventions (dist/wire_io.h).

#ifndef FRAPP_SERVE_QUERY_WIRE_H_
#define FRAPP_SERVE_QUERY_WIRE_H_

#include <cstdint>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/dist/mechanism_spec.h"
#include "frapp/dist/wire.h"
#include "frapp/mining/apriori.h"
#include "frapp/mining/rules.h"

namespace frapp {
namespace serve {

enum class QueryKind : uint8_t {
  kMine = 0,
  kTopK = 1,
  kRules = 2,
  kStats = 3,
};

/// How the broker satisfied a query.
enum class CacheOutcome : uint8_t {
  /// No cached result: this query ran the mine.
  kMiss = 0,
  /// Served from the result cache; nothing executed.
  kHit = 1,
  /// Attached to an identical in-flight mine and received its result.
  kCoalesced = 2,
};

/// Server-wide counters, snapshotted into every response.
struct ServerStatsWire {
  uint64_t queries = 0;       ///< queries admitted (any kind)
  uint64_t mine_runs = 0;     ///< actual mine executions
  uint64_t cache_hits = 0;    ///< queries served from the result cache
  uint64_t coalesced = 0;     ///< queries that attached to an in-flight mine
  uint64_t store_hits = 0;    ///< count-store vector hits across runs
  uint64_t store_misses = 0;  ///< count-store misses across runs
  uint64_t cache_entries = 0;
  uint64_t cache_evictions = 0;
  uint64_t rejected = 0;      ///< version/fingerprint/argument rejections

  friend bool operator==(const ServerStatsWire&,
                         const ServerStatsWire&) = default;
};

struct QueryRequest {
  uint32_t protocol_version = dist::kProtocolVersion;
  QueryKind kind = QueryKind::kMine;

  /// data::SchemaFingerprint of the client's schema; the server rejects a
  /// mismatch outright (a cached result for the wrong schema must be
  /// unreachable, not wrong).
  uint64_t schema_fingerprint = 0;

  dist::MechanismSpec spec;
  uint64_t perturb_seed = 7;
  double min_support = 0.02;

  /// kRules only: confidence floor.
  double min_confidence = 0.0;

  /// kTopK only: how many itemsets to return (0 = all).
  uint64_t top_k = 0;
};

struct QueryResponse {
  QueryKind kind = QueryKind::kMine;

  // ---- per-query execution stats ----
  CacheOutcome outcome = CacheOutcome::kMiss;
  /// Count-store vector hits/misses of the mine run that produced this
  /// result (zero for kHit/kCoalesced: nothing executed).
  uint64_t store_hits = 0;
  uint64_t store_misses = 0;
  /// Chunks actually perturbed + partial-tail rows recounted by that run —
  /// both zero when the answer came purely from materialized counts.
  uint64_t delta_chunks = 0;
  uint64_t tail_rows = 0;
  uint64_t elapsed_micros = 0;

  // ---- payload (by kind) ----
  mining::AprioriResult result;              ///< kMine
  std::vector<mining::FrequentItemset> top;  ///< kTopK
  std::vector<mining::AssociationRule> rules;  ///< kRules

  ServerStatsWire server;  ///< always present
};

dist::Message EncodeQueryRequest(const QueryRequest& request);
StatusOr<QueryRequest> DecodeQueryRequest(const dist::Message& message);

dist::Message EncodeQueryResponse(const QueryResponse& response);
StatusOr<QueryResponse> DecodeQueryResponse(const dist::Message& message);

}  // namespace serve
}  // namespace frapp

#endif  // FRAPP_SERVE_QUERY_WIRE_H_
