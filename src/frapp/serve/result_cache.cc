#include "frapp/serve/result_cache.h"

#include <utility>

namespace frapp {
namespace serve {

namespace {

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendStr(std::string& out, const std::string& s) {
  AppendU64(out, s.size());
  out += s;
}

}  // namespace

std::string ResultKey::Canonical() const {
  std::string out;
  AppendStr(out, source_id);
  AppendU64(out, schema_fingerprint);
  AppendStr(out, spec_key);
  AppendU64(out, perturb_seed);
  AppendU64(out, supmin_bits);
  return out;
}

std::shared_ptr<const CachedResult> ResultCache::Find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.value;
}

void ResultCache::Insert(const std::string& key,
                         std::shared_ptr<const CachedResult> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // First write wins (values are bit-identical by key construction);
    // just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(value), lru_.begin()});
  while (max_entries_ > 0 && entries_.size() > max_entries_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = entries_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = entries_.size();
  return out;
}

}  // namespace serve
}  // namespace frapp
