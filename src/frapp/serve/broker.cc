#include "frapp/serve/broker.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "frapp/data/schema.h"
#include "frapp/data/sharded_table.h"
#include "frapp/pipeline/privacy_pipeline.h"

namespace frapp {
namespace serve {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

ResultKey KeyOf(const QueryRequest& request, const std::string& source_id) {
  ResultKey key;
  key.source_id = source_id;
  key.schema_fingerprint = request.schema_fingerprint;
  key.spec_key = dist::CanonicalSpecKey(request.spec);
  key.perturb_seed = request.perturb_seed;
  key.supmin_bits = DoubleBits(request.min_support);
  return key;
}

/// The counting-problem key: everything in the result key EXCEPT supmin.
/// All supmin values of one problem share one count store (the retention
/// threshold is fixed at store creation and inherited by later runs).
std::string StoreKeyOf(const QueryRequest& request,
                       const std::string& source_id) {
  ResultKey key = KeyOf(request, source_id);
  key.supmin_bits = 0;
  return key.Canonical();
}

}  // namespace

QueryBroker::QueryBroker(BrokerOptions options)
    : options_(std::move(options)),
      schema_fingerprint_(data::SchemaFingerprint(options_.schema)),
      cache_(options_.cache_entries) {}

StatusOr<QueryResponse> QueryBroker::Execute(const QueryRequest& request) {
  const auto started = std::chrono::steady_clock::now();
  StatusOr<QueryResponse> response = Admit(request);
  if (!response.ok()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.rejected;
    return response;
  }
  response->elapsed_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  response->server = Snapshot();
  return response;
}

StatusOr<QueryResponse> QueryBroker::Admit(const QueryRequest& request) {
  if (request.protocol_version != dist::kProtocolVersion) {
    return Status::InvalidArgument(
        "query protocol version mismatch: client " +
        std::to_string(request.protocol_version) + ", server " +
        std::to_string(dist::kProtocolVersion));
  }
  if (request.schema_fingerprint != schema_fingerprint_) {
    return Status::FailedPrecondition(
        "schema fingerprint mismatch: query " +
        std::to_string(request.schema_fingerprint) + ", served table " +
        std::to_string(schema_fingerprint_) +
        " (a cached result for the wrong schema must be unreachable)");
  }
  if (request.kind != QueryKind::kStats) {
    if (!(request.min_support > 0.0) || request.min_support > 1.0) {
      return Status::InvalidArgument("query min_support must be in (0, 1]");
    }
    if (request.min_confidence < 0.0) {
      return Status::InvalidArgument("query min_confidence must be >= 0");
    }
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
  }

  QueryResponse response;
  response.kind = request.kind;
  if (request.kind == QueryKind::kStats) {
    // Counters only; outcome/result fields stay at their defaults.
    return response;
  }

  CacheOutcome outcome = CacheOutcome::kMiss;
  FRAPP_ASSIGN_OR_RETURN(std::shared_ptr<const CachedResult> cached,
                         MineOrAttach(request, &outcome));
  response.outcome = outcome;
  if (outcome == CacheOutcome::kMiss) {
    // This query executed the mine; replay its run stats. Hits and
    // coalesced queries executed nothing, so theirs stay zero.
    response.store_hits = cached->store_hits;
    response.store_misses = cached->store_misses;
    response.delta_chunks = cached->delta_chunks;
    response.tail_rows = cached->tail_rows;
  }

  switch (request.kind) {
    case QueryKind::kMine:
      response.result = cached->mined;
      break;
    case QueryKind::kTopK: {
      std::vector<mining::FrequentItemset> all;
      for (const auto& level : cached->mined.by_length) {
        all.insert(all.end(), level.begin(), level.end());
      }
      // Deterministic: support desc, itemset asc on ties — byte-stable
      // across runs and identical to re-sorting the full mined result.
      std::sort(all.begin(), all.end(),
                [](const mining::FrequentItemset& a,
                   const mining::FrequentItemset& b) {
                  if (a.support != b.support) return a.support > b.support;
                  return a.itemset < b.itemset;
                });
      if (request.top_k > 0 && all.size() > request.top_k) {
        all.resize(static_cast<size_t>(request.top_k));
      }
      response.top = std::move(all);
      break;
    }
    case QueryKind::kRules: {
      mining::RuleOptions rule_options;
      rule_options.min_confidence = request.min_confidence;
      FRAPP_ASSIGN_OR_RETURN(
          response.rules,
          mining::GenerateAssociationRules(cached->mined, rule_options));
      break;
    }
    case QueryKind::kStats:
      break;  // handled above
  }
  return response;
}

StatusOr<std::shared_ptr<const CachedResult>> QueryBroker::MineOrAttach(
    const QueryRequest& request, CacheOutcome* outcome) {
  const std::string key = KeyOf(request, options_.source_id).Canonical();

  // Fast path: already mined.
  if (std::shared_ptr<const CachedResult> hit = cache_.Find(key)) {
    *outcome = CacheOutcome::kHit;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.cache_hits;
    return hit;
  }

  std::shared_ptr<Inflight> inflight;
  bool runner = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      inflight = it->second;
    } else {
      // Re-check the cache under the in-flight lock: a run that completed
      // between the miss above and here has already erased its in-flight
      // entry, and waiting for nobody would deadlock.
      if (std::shared_ptr<const CachedResult> hit = cache_.Find(key)) {
        *outcome = CacheOutcome::kHit;
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.cache_hits;
        return hit;
      }
      inflight = std::make_shared<Inflight>();
      inflight_.emplace(key, inflight);
      runner = true;
    }
  }

  if (!runner) {
    // Coalesce: count the attachment BEFORE blocking, so observers (the
    // coalescing tests) can wait until all peers are parked.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.coalesced;
    }
    std::unique_lock<std::mutex> lock(inflight->mutex);
    inflight->cv.wait(lock, [&] { return inflight->done; });
    if (!inflight->status.ok()) return inflight->status;
    *outcome = CacheOutcome::kCoalesced;
    return inflight->result;
  }

  // This query runs the mine; everyone arriving meanwhile attaches above.
  StatusOr<CachedResult> mined = RunMine(request);
  std::shared_ptr<const CachedResult> shared;
  if (mined.ok()) {
    shared = std::make_shared<const CachedResult>(*std::move(mined));
    cache_.Insert(key, shared);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.mine_runs;
    stats_.store_hits += shared->store_hits;
    stats_.store_misses += shared->store_misses;
  }
  {
    std::lock_guard<std::mutex> lock(inflight->mutex);
    inflight->done = true;
    inflight->status = mined.ok() ? Status::OK() : mined.status();
    inflight->result = shared;
  }
  inflight->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  if (!mined.ok()) return mined.status();
  *outcome = CacheOutcome::kMiss;
  return shared;
}

StatusOr<CachedResult> QueryBroker::RunMine(const QueryRequest& request) {
  if (options_.source_factory == nullptr) {
    return Status::FailedPrecondition("broker has no source factory");
  }
  // IND-GD's estimator probes full subset-domain histograms — counts no
  // store materializes — so it mines through the pipeline; every other
  // mechanism rides the count store.
  if (request.spec.kind == dist::MechanismSpec::Kind::kIndGd) {
    return RunPipeline(request);
  }
  return RunStoreBacked(request);
}

StatusOr<CachedResult> QueryBroker::RunStoreBacked(
    const QueryRequest& request) {
  store::IncrementalOptions inc;
  inc.mining.min_support = request.min_support;
  inc.perturb_seed = request.perturb_seed;
  inc.num_threads = options_.num_threads;
  inc.superset_margin = options_.superset_margin;
  inc.source_id = options_.source_id;

  // One slot per counting problem; its mutex serializes runs (CountStore
  // mutation is single-threaded by contract). Distinct problems — other
  // specs, seeds, sources — mine concurrently.
  std::shared_ptr<StoreSlot> slot;
  {
    std::lock_guard<std::mutex> lock(stores_mutex_);
    std::shared_ptr<StoreSlot>& entry =
        stores_[StoreKeyOf(request, options_.source_id)];
    if (entry == nullptr) entry = std::make_shared<StoreSlot>();
    slot = entry;
  }
  std::lock_guard<std::mutex> lock(slot->mutex);
  if (!slot->store.has_value()) {
    // First mine of this problem fixes the retention threshold from ITS
    // supmin; later runs inherit it (AppendAndMine contract).
    slot->store.emplace(
        store::MakeStoreIdentity(request.spec, options_.schema, inc));
  }
  FRAPP_ASSIGN_OR_RETURN(
      store::IncrementalResult result,
      store::AppendAndMine(*slot->store, request.spec, options_.source_factory,
                           inc));
  CachedResult cached;
  cached.mined = std::move(result.mined);
  cached.store_hits = result.stats.store_hits;
  cached.store_misses = result.stats.store_misses;
  cached.delta_chunks = result.stats.delta_chunks;
  cached.tail_rows = result.stats.tail_rows;
  return cached;
}

StatusOr<CachedResult> QueryBroker::RunPipeline(const QueryRequest& request) {
  FRAPP_ASSIGN_OR_RETURN(std::unique_ptr<pipeline::TableSource> source,
                         options_.source_factory());
  FRAPP_ASSIGN_OR_RETURN(std::unique_ptr<core::Mechanism> mechanism,
                         dist::MakeMechanism(request.spec, options_.schema));
  pipeline::PipelineOptions pipeline_options;
  pipeline_options.num_shards = 1;
  pipeline_options.num_threads = options_.num_threads;
  pipeline_options.perturb_seed = request.perturb_seed;
  pipeline_options.mining.min_support = request.min_support;
  FRAPP_ASSIGN_OR_RETURN(
      pipeline::PipelineResult result,
      pipeline::PrivacyPipeline(pipeline_options).Run(*mechanism, *source));
  CachedResult cached;
  cached.mined = std::move(result.mined);
  // The pipeline perturbs everything, every run: report the full extent so
  // "zero re-perturbation" assertions can never pass vacuously against it.
  cached.delta_chunks = result.stats.total_rows / data::kShardAlignmentRows;
  cached.tail_rows = result.stats.total_rows % data::kShardAlignmentRows;
  return cached;
}

BrokerStats QueryBroker::stats() const {
  BrokerStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = stats_;
  }
  const ResultCache::Stats cache = cache_.stats();
  out.cache_entries = cache.entries;
  out.cache_evictions = cache.evictions;
  return out;
}

ServerStatsWire QueryBroker::Snapshot() const {
  const BrokerStats s = stats();
  ServerStatsWire wire;
  wire.queries = s.queries;
  wire.mine_runs = s.mine_runs;
  wire.cache_hits = s.cache_hits;
  wire.coalesced = s.coalesced;
  wire.store_hits = s.store_hits;
  wire.store_misses = s.store_misses;
  wire.cache_entries = s.cache_entries;
  wire.cache_evictions = s.cache_evictions;
  wire.rejected = s.rejected;
  return wire;
}

}  // namespace serve
}  // namespace frapp
