// The long-lived `frapp serve` session host: accepts connections on the
// dist wire protocol and answers serve query frames from one shared
// QueryBroker.
//
// One thread per session (sessions are long-lived and block in Receive;
// the expensive work — actual mines — is already de-duplicated by the
// broker, so session threads mostly sleep). A session answers:
//
//   kQueryRequest -> kQueryResponse (or kError with the broker's Status)
//   kPing         -> kPong (liveness, same contract as dist workers)
//   kShutdown     -> session ends (client-initiated goodbye)
//
// Graceful shutdown with in-flight queries: Shutdown() stops admitting new
// sessions/queries, then for each session waits for its current query to
// finish AND its response to be fully sent before closing the transport —
// an answered client never sees its connection die mid-response. Queries
// arriving after Shutdown began are answered with kUnavailable.

#ifndef FRAPP_SERVE_SERVER_H_
#define FRAPP_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/dist/transport.h"
#include "frapp/serve/broker.h"

namespace frapp {
namespace serve {

class QueryServer {
 public:
  /// `broker` must outlive the server.
  explicit QueryServer(QueryBroker* broker) : broker_(broker) {}

  /// Joins every session (after a graceful Shutdown if none happened yet).
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Adopts one connection and serves it on a new session thread. After
  /// Shutdown the transport is closed immediately.
  void AttachSession(std::unique_ptr<dist::Transport> transport);

  /// Accept loop: serves every inbound connection of `listener` until the
  /// listener is closed (typically by a signal handler calling
  /// `listener.Close()` — Accept's failure is the loop's exit signal, so a
  /// close-induced exit returns OK). Drains sessions before returning.
  Status ServeLoop(dist::TcpListener& listener);

  /// Graceful shutdown: new queries are refused, in-flight queries run to
  /// completion and their responses are delivered, then every session
  /// transport closes and its thread is joined. Idempotent; safe to call
  /// concurrently with running sessions.
  void Shutdown();

  /// Sessions ever attached.
  uint64_t sessions() const { return sessions_.load(); }

 private:
  struct Session {
    std::unique_ptr<dist::Transport> transport;
    std::thread thread;
    /// Held while one query is processed AND its response sent; Shutdown
    /// acquires it to wait out the in-flight query before closing.
    std::mutex busy;
  };

  void RunSession(Session* session);

  QueryBroker* const broker_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> sessions_{0};
  std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> session_list_;
};

}  // namespace serve
}  // namespace frapp

#endif  // FRAPP_SERVE_SERVER_H_
