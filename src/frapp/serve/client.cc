#include "frapp/serve/client.h"

namespace frapp {
namespace serve {

StatusOr<QueryResponse> QueryClient::Query(const QueryRequest& request) {
  if (closed_) return Status::FailedPrecondition("query client is closed");
  FRAPP_RETURN_IF_ERROR(transport_->Send(EncodeQueryRequest(request)));
  FRAPP_ASSIGN_OR_RETURN(dist::Message message, transport_->Receive());
  return DecodeQueryResponse(message);  // Error frames surface as Status
}

Status QueryClient::Ping() {
  if (closed_) return Status::FailedPrecondition("query client is closed");
  FRAPP_RETURN_IF_ERROR(transport_->Send(dist::EncodePing()));
  FRAPP_ASSIGN_OR_RETURN(dist::Message message, transport_->Receive());
  if (message.type == dist::MessageType::kError) {
    return dist::DecodeError(message);
  }
  if (message.type != dist::MessageType::kPong) {
    return Status::InvalidArgument(
        "Ping: unexpected message type " +
        std::to_string(static_cast<int>(message.type)));
  }
  return Status::OK();
}

void QueryClient::Close() {
  if (closed_) return;
  closed_ = true;
  (void)transport_->Send(dist::EncodeShutdown());
  transport_->Close();
}

}  // namespace serve
}  // namespace frapp
