// LRU cache of mined results, keyed on the exact identity of a perturbed
// counting problem — the serve layer's read-path store.
//
// The key covers everything that could change a single bit of the mined
// output: the table source's identity, the schema fingerprint, the
// mechanism's canonical spec key (exact float bit patterns), the
// perturbation seed, and supmin's exact double bits. Two queries with equal
// keys are THE SAME mine; the broker serves the second from here (or
// coalesces it onto the first's in-flight run) instead of re-executing.
// Values are shared_ptr-to-const so a hit handed to one session stays valid
// while another query evicts the entry.
//
// Entry-count bounded (results are small: itemsets + doubles, not count
// substrates — the heavyweight per-identity state lives in the count
// store), mutex-guarded, eviction strictly least-recently-used.

#ifndef FRAPP_SERVE_RESULT_CACHE_H_
#define FRAPP_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "frapp/mining/apriori.h"

namespace frapp {
namespace serve {

/// Identity of one mined result. Build with Canonical() for the cache's
/// string key; equal keys iff the mines are bit-identical.
struct ResultKey {
  std::string source_id;
  uint64_t schema_fingerprint = 0;
  std::string spec_key;  ///< dist::CanonicalSpecKey(spec)
  uint64_t perturb_seed = 0;
  uint64_t supmin_bits = 0;  ///< exact IEEE-754 bits of min_support

  /// Canonical flat form (length-prefixed strings, so no separator of the
  /// source id can collide with another field).
  std::string Canonical() const;
};

/// One cached mine: the result plus the execution stats of the run that
/// produced it (replayed to cache-hit clients so they can still see how the
/// result was originally computed).
struct CachedResult {
  mining::AprioriResult mined;
  uint64_t store_hits = 0;
  uint64_t store_misses = 0;
  uint64_t delta_chunks = 0;
  uint64_t tail_rows = 0;
};

class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
  };

  /// `max_entries` 0 = unbounded.
  explicit ResultCache(size_t max_entries) : max_entries_(max_entries) {}

  /// The cached result for `key`, refreshing its recency; nullptr on miss.
  std::shared_ptr<const CachedResult> Find(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting least-recently-used entries
  /// over the bound. First write wins on a racing duplicate: the values are
  /// bit-identical by key construction, so keeping the incumbent is free.
  void Insert(const std::string& key, std::shared_ptr<const CachedResult> value);

  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const CachedResult> value;
    std::list<std::string>::iterator lru_it;
  };

  const size_t max_entries_;
  mutable std::mutex mutex_;
  std::list<std::string> lru_;  // front = most recent
  std::unordered_map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace serve
}  // namespace frapp

#endif  // FRAPP_SERVE_RESULT_CACHE_H_
