// Query admission, de-duplication, and execution: the single brain behind
// every `frapp serve` session.
//
// The broker owns three layers of reuse, cheapest first:
//
//   1. Result cache (serve/result_cache.h). A query whose exact key
//      (source, schema fingerprint, canonical spec, seed, supmin) was mined
//      before is answered without executing anything: CacheOutcome::kHit.
//   2. In-flight coalescing. Concurrent identical queries collapse into ONE
//      mine: the first requester executes, the rest block on the in-flight
//      entry and fan out its shared result — CacheOutcome::kCoalesced. N
//      identical concurrent mine queries cost exactly one pipeline run, and
//      every waiter receives the bit-identical result object.
//   3. Count store (store/incremental_mine.h). Each distinct perturbed
//      counting problem (source, schema, spec, seed — supmin excluded)
//      keeps one in-memory CountStore: the first mine materializes count
//      vectors and the perturbed substrate, and every later mine against
//      the same problem — a drifted supmin, a sub-supmin drill-down —
//      reuses them. With no data growth such a run perturbs NOTHING
//      (delta_chunks == 0, tail_rows == 0 when the table is chunk-aligned):
//      candidates below the retained superset are recounted from the stored
//      substrate planes. IND-GD probes full subset-domain histograms that
//      no store materializes, so it runs through pipeline::PrivacyPipeline
//      instead.
//
// Every path yields results bit-identical to a fresh
// pipeline::PrivacyPipeline::Run over the same spec — cache hits because
// they replay the stored result object, store-backed runs by the
// AppendAndMine contract. Top-k and rule queries derive from the same
// cached mined result (the supmin in their key is the mine they derive
// from), so they ride the identical reuse ladder.
//
// Thread contract: Execute is fully thread-safe and is called concurrently
// by every live session thread. Per-store mutexes serialize mines against
// the same counting problem (CountStore mutation is single-threaded by
// design); distinct problems mine in parallel.

#ifndef FRAPP_SERVE_BROKER_H_
#define FRAPP_SERVE_BROKER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "frapp/common/statusor.h"
#include "frapp/data/schema.h"
#include "frapp/serve/query_wire.h"
#include "frapp/serve/result_cache.h"
#include "frapp/store/incremental_mine.h"

namespace frapp {
namespace serve {

struct BrokerOptions {
  explicit BrokerOptions(data::CategoricalSchema schema_in)
      : schema(std::move(schema_in)) {}

  data::CategoricalSchema schema;

  /// Opens a fresh view of the served table; called once per actual mine
  /// run (never for cache hits or coalesced queries).
  store::SourceFactory source_factory;

  /// Stable identity of the served table (file path or generator
  /// descriptor) — part of every cache key and store identity.
  std::string source_id;

  /// Worker threads per mine run (0 = hardware concurrency). Never affects
  /// results.
  size_t num_threads = 1;

  /// Retained-superset slack of the backing count stores
  /// (store/incremental_mine.h); decides how far supmin can drop before
  /// sub-supmin queries cost substrate recounts (still zero
  /// re-perturbation).
  double superset_margin = 0.25;

  /// Result-cache bound (entries; 0 = unbounded).
  size_t cache_entries = 64;
};

/// Server-wide counters. Gauges (`cache_entries`) are point-in-time; the
/// rest are monotonic.
struct BrokerStats {
  uint64_t queries = 0;
  uint64_t mine_runs = 0;
  uint64_t cache_hits = 0;
  uint64_t coalesced = 0;
  uint64_t store_hits = 0;
  uint64_t store_misses = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_evictions = 0;
  uint64_t rejected = 0;
};

class QueryBroker {
 public:
  explicit QueryBroker(BrokerOptions options);

  /// Admits and answers one query. Version/fingerprint/argument rejections
  /// return a Status (shipped to the client as an Error frame) and count in
  /// stats().rejected. kStats never mines.
  StatusOr<QueryResponse> Execute(const QueryRequest& request);

  BrokerStats stats() const;

  /// The served schema's fingerprint (what requests must present).
  uint64_t schema_fingerprint() const { return schema_fingerprint_; }

  const data::CategoricalSchema& schema() const { return options_.schema; }

 private:
  /// One mine being executed; waiters block on `cv` and share `result`.
  struct Inflight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const CachedResult> result;
  };

  /// One counting problem's store plus the mutex serializing its runs.
  struct StoreSlot {
    std::mutex mutex;
    std::optional<store::CountStore> store;
  };

  StatusOr<QueryResponse> Admit(const QueryRequest& request);
  StatusOr<std::shared_ptr<const CachedResult>> MineOrAttach(
      const QueryRequest& request, CacheOutcome* outcome);
  StatusOr<CachedResult> RunMine(const QueryRequest& request);
  StatusOr<CachedResult> RunStoreBacked(const QueryRequest& request);
  StatusOr<CachedResult> RunPipeline(const QueryRequest& request);
  ServerStatsWire Snapshot() const;

  const BrokerOptions options_;
  const uint64_t schema_fingerprint_;
  ResultCache cache_;

  mutable std::mutex stats_mutex_;
  BrokerStats stats_;

  std::mutex inflight_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;

  std::mutex stores_mutex_;
  std::unordered_map<std::string, std::shared_ptr<StoreSlot>> stores_;
};

}  // namespace serve
}  // namespace frapp

#endif  // FRAPP_SERVE_BROKER_H_
