// Small string helpers shared across modules (CSV parsing, report printing).

#ifndef FRAPP_COMMON_STRING_UTIL_H_
#define FRAPP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace frapp {

/// Splits `input` on `delimiter`; keeps empty fields. "a,,b" -> {"a","","b"}.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts, std::string_view separator);

/// Parses a double; returns false on malformed or trailing garbage.
bool ParseDouble(std::string_view input, double* out);

/// Parses a non-negative integer; returns false on malformed input.
bool ParseUint64(std::string_view input, unsigned long long* out);

/// Formats `value` with `digits` significant digits (for report tables).
std::string FormatSignificant(double value, int digits);

}  // namespace frapp

#endif  // FRAPP_COMMON_STRING_UTIL_H_
