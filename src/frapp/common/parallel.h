// Minimal deterministic fork-join parallelism.
//
// FRAPP's bulk operations (perturbation, bitmap construction) are data
// parallel over row ranges. To keep results reproducible for a fixed seed
// REGARDLESS of the worker count, work is split into fixed-size chunks whose
// boundaries depend only on the input size — never on the thread count — and
// any per-chunk randomness is seeded from (master seed, chunk index). Threads
// then merely decide which worker executes which chunk.

#ifndef FRAPP_COMMON_PARALLEL_H_
#define FRAPP_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace frapp {
namespace common {

/// Resolves a requested thread count: 0 means "all hardware threads",
/// anything else is taken literally (floored at 1).
inline size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Runs fn(chunk_index) for every chunk_index in [0, num_chunks) using up to
/// `num_threads` workers (0 = hardware concurrency). Chunks are claimed from
/// a shared atomic counter, so scheduling is dynamic but the WORK per chunk
/// must be a pure function of the chunk index for deterministic results.
/// With one worker (or one chunk) everything runs on the calling thread.
template <typename Fn>
void ParallelForChunks(size_t num_chunks, size_t num_threads, Fn&& fn) {
  const size_t workers =
      std::min(ResolveThreadCount(num_threads), num_chunks == 0 ? 1 : num_chunks);
  if (workers <= 1) {
    for (size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  std::atomic<size_t> next{0};
  auto drain = [&]() {
    for (size_t c = next.fetch_add(1, std::memory_order_relaxed); c < num_chunks;
         c = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(c);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(drain);
  drain();
  for (std::thread& t : pool) t.join();
}

/// Number of fixed-size chunks covering n items.
inline size_t NumChunks(size_t n, size_t chunk_size) {
  return n == 0 ? 0 : (n + chunk_size - 1) / chunk_size;
}

}  // namespace common
}  // namespace frapp

#endif  // FRAPP_COMMON_PARALLEL_H_
