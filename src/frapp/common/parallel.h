// Minimal deterministic fork-join parallelism.
//
// FRAPP's bulk operations (perturbation, bitmap construction) are data
// parallel over row ranges. To keep results reproducible for a fixed seed
// REGARDLESS of the worker count, work is split into fixed-size chunks whose
// boundaries depend only on the input size — never on the thread count — and
// any per-chunk randomness is seeded from (master seed, chunk index). Threads
// then merely decide which worker executes which chunk.

#ifndef FRAPP_COMMON_PARALLEL_H_
#define FRAPP_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "frapp/common/cpuinfo.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace frapp {
namespace common {

/// Resolves a requested thread count: 0 means "all hardware threads",
/// anything else is taken literally (floored at 1).
inline size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Process-wide persistent worker pool behind ParallelForChunks.
///
/// FRAPP's parallel sections are short (a candidate-counting pass is a few
/// hundred microseconds), so spawning OS threads per section would cost more
/// than the section itself. The pool grows once to the widest requested
/// dispatch and parks its workers on a condition variable; each dispatch
/// only publishes a job and wakes them. One job runs at a time (concurrent
/// top-level dispatches are serialized by the dispatch mutex); nested
/// dispatches from inside a dispatch run inline. None of this affects
/// results: the pool only schedules chunks, and every chunk's work is a
/// pure function of its index.
class ThreadPool {
 public:
  /// The lazily-started shared pool.
  static ThreadPool& Shared() {
    static ThreadPool pool;
    return pool;
  }

  /// Pins pool workers to distinct PHYSICAL cores, round-robin over the
  /// detected per-core representatives (GetCpuInfo().physical_core_cpus) —
  /// the counting folds are load-port/bandwidth bound, so two workers on SMT
  /// siblings of one core mostly stall each other. Off by default; applies
  /// immediately to parked workers and at creation to future ones.
  /// Disabling restores an unrestricted mask. Scheduling only — results are
  /// bit-identical either way. No-op off Linux.
  void SetPinPhysicalCores(bool pin) {
    std::lock_guard<std::mutex> lock(mu_);
    if (pin_ == pin) return;
    pin_ = pin;
    for (size_t i = 0; i < workers_.size(); ++i) ApplyAffinityLocked(i);
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  /// Runs fn(chunk) for every chunk in [0, num_chunks), the calling thread
  /// plus at most `max_workers - 1` pool workers claiming chunks from a
  /// shared counter. Returns after every chunk has finished. noexcept: a
  /// throwing chunk terminates the process (as the pre-pool per-call thread
  /// implementation did) rather than unwinding past live workers whose
  /// captured references would dangle — FRAPP reports errors via Status,
  /// never exceptions.
  void ParallelFor(size_t num_chunks, size_t max_workers,
                   const std::function<void(size_t)>& fn) noexcept {
    if (num_chunks == 0) return;
    // Inline when parallelism cannot help or when nested inside another
    // dispatch (pool worker or dispatching caller): the single job slot is
    // taken by the outer dispatch, and re-entering would deadlock.
    if (max_workers <= 1 || num_chunks == 1 || busy_) {
      for (size_t c = 0; c < num_chunks; ++c) fn(c);
      return;
    }

    // One job at a time: a caller losing the dispatch race drains inline
    // instead of idling on the mutex behind the active dispatch.
    std::unique_lock<std::mutex> dispatch_lock(dispatch_mu_, std::try_to_lock);
    if (!dispatch_lock.owns_lock()) {
      for (size_t c = 0; c < num_chunks; ++c) fn(c);
      return;
    }
    busy_ = true;

    // The job owns a COPY of the callable and its own chunk counters, and
    // every participant holds it through a shared_ptr: a worker that claimed
    // a helper slot but got preempted past the end of the job can wake into
    // a later dispatch and still only touch ITS job's (exhausted) state —
    // never a dead callable or another job's counters.
    auto job = std::make_shared<Job>(fn, num_chunks);
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Helpers beyond num_chunks - 1 could never claim a chunk.
      EnsureWorkersLocked(std::min(max_workers - 1, num_chunks - 1));
      job_ = job;
      job_open_slots_ = std::min(max_workers - 1, num_chunks - 1);
      ++generation_;
    }
    wake_cv_.notify_all();

    Drain(*job);

    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->num_chunks;
    });
    // Close the job: late-waking workers see no open slots and no job.
    job_.reset();
    job_open_slots_ = 0;
    busy_ = false;
  }

 private:
  /// Hard cap on pool threads, guarding runaway explicit requests.
  static constexpr size_t kMaxPoolWorkers = 64;

  /// One dispatch: an owned copy of the callable plus this job's private
  /// chunk counters.
  struct Job {
    Job(std::function<void(size_t)> f, size_t n)
        : fn(std::move(f)), num_chunks(n) {}

    const std::function<void(size_t)> fn;
    const size_t num_chunks;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  ThreadPool() = default;

  /// Grows the pool to `want` parked workers (capped). Growing on demand —
  /// rather than pinning to hardware_concurrency at startup — keeps
  /// explicitly requested widths (num_threads > 1) truly concurrent even
  /// when the hardware reports fewer cores, so thread-count-invariance is
  /// exercised for real everywhere. Requires mu_ held.
  void EnsureWorkersLocked(size_t want) {
    want = std::min(want, kMaxPoolWorkers);
    while (workers_.size() < want) {
      workers_.emplace_back([this] { WorkerLoop(); });
      if (pin_) ApplyAffinityLocked(workers_.size() - 1);
    }
  }

  /// (Re)applies the current pin policy to workers_[index]. Requires mu_
  /// held. The unrestricted mask sets every representable CPU — the kernel
  /// intersects it with the online set, so it means "no restriction" even
  /// with offline holes in the CPU numbering.
  void ApplyAffinityLocked(size_t index) {
#ifdef __linux__
    cpu_set_t set;
    CPU_ZERO(&set);
    if (pin_) {
      const std::vector<int>& cpus = GetCpuInfo().physical_core_cpus;
      if (cpus.empty()) return;
      CPU_SET(static_cast<unsigned>(cpus[index % cpus.size()]), &set);
    } else {
      for (unsigned c = 0; c < CPU_SETSIZE; ++c) CPU_SET(c, &set);
    }
    pthread_setaffinity_np(workers_[index].native_handle(), sizeof(set), &set);
#else
    (void)index;
#endif
  }

  static void Drain(Job& job) noexcept {
    for (size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
         c < job.num_chunks;
         c = job.next.fetch_add(1, std::memory_order_relaxed)) {
      job.fn(c);
      job.done.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  void WorkerLoop() {
    busy_ = true;
    uint64_t seen_generation = 0;
    while (true) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_cv_.wait(lock, [&] {
          return stop_ || (generation_ != seen_generation && job_open_slots_ > 0);
        });
        if (stop_) return;
        seen_generation = generation_;
        if (job_ == nullptr) continue;  // job already closed by the caller
        --job_open_slots_;
        job = job_;
      }
      Drain(*job);
      if (job->done.load(std::memory_order_acquire) == job->num_chunks) {
        // Notify under the lock so the dispatcher cannot miss the wakeup
        // between its predicate check and its wait.
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_one();
      }
    }
  }

  /// True on pool workers (always) and on a caller inside a dispatch.
  static thread_local bool busy_;

  std::mutex dispatch_mu_;  // serializes top-level dispatches
  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;   // current job; null between dispatches
  size_t job_open_slots_ = 0;  // helper slots still unclaimed
  uint64_t generation_ = 0;
  bool stop_ = false;
  bool pin_ = false;  // current affinity policy for (new) workers
};

inline thread_local bool ThreadPool::busy_ = false;

/// Runs fn(chunk_index) for every chunk_index in [0, num_chunks) using up to
/// `num_threads` workers (0 = hardware concurrency) from the shared
/// persistent pool. Chunks are claimed from a shared atomic counter, so
/// scheduling is dynamic but the WORK per chunk must be a pure function of
/// the chunk index for deterministic results. With one worker (or one
/// chunk) everything runs on the calling thread.
template <typename Fn>
void ParallelForChunks(size_t num_chunks, size_t num_threads, Fn&& fn) {
  const size_t workers =
      std::min(ResolveThreadCount(num_threads), num_chunks == 0 ? 1 : num_chunks);
  if (workers <= 1) {
    for (size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  ThreadPool::Shared().ParallelFor(num_chunks, workers, fn);
}

/// Number of fixed-size chunks covering n items.
inline size_t NumChunks(size_t n, size_t chunk_size) {
  return n == 0 ? 0 : (n + chunk_size - 1) / chunk_size;
}

}  // namespace common
}  // namespace frapp

#endif  // FRAPP_COMMON_PARALLEL_H_
