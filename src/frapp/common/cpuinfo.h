// Processor feature, cache-topology and core-topology detection.
//
// The counting kernels (frapp/mining/kernels.h) pick their widest usable
// SIMD implementation from the ISA feature bits; the sharded counting grids
// size their candidate/pattern tiles so a task's bitmap working set fits the
// detected L2; and the thread pool's optional affinity pinning targets one
// worker per PHYSICAL core, because the counting loops are memory-bandwidth
// bound and gain nothing from SMT siblings contending for the same load
// ports. Detection is best-effort and layered the way mxnet's cpuinfo module
// does it — sysfs first (exact on Linux), then cpuid (exact on x86), then
// conservative defaults — so every field is always usable; `*_detected`
// flags say whether a value was measured or assumed.
//
// Detection runs once, on first use, and is immutable afterwards: every
// consumer (kernel dispatch, tiling, pinning, the `frapp cpuinfo`
// subcommand, bench context) sees the same snapshot.

#ifndef FRAPP_COMMON_CPUINFO_H_
#define FRAPP_COMMON_CPUINFO_H_

#include <cstddef>
#include <string>
#include <vector>

namespace frapp {
namespace common {

/// ISA feature bits relevant to the counting kernels. All false on non-x86.
struct CpuFeatures {
  bool sse42 = false;
  bool avx2 = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vl = false;
  bool avx512vpopcntdq = false;
};

/// Data-cache geometry. Values fall back to conservative x86 defaults
/// (32 KiB L1d, 1 MiB L2, 64 B lines) when neither sysfs nor cpuid could
/// measure them; `detected` distinguishes measured from assumed.
struct CacheGeometry {
  size_t l1d_bytes = 32 * 1024;
  size_t l2_bytes = 1024 * 1024;
  size_t l3_bytes = 0;  // 0 = unknown/absent
  size_t line_bytes = 64;
  bool detected = false;
};

/// One immutable snapshot of the host processor.
struct CpuInfo {
  CpuFeatures features;
  CacheGeometry cache;

  /// Logical CPUs visible to this process (never 0).
  size_t logical_cpus = 1;

  /// Distinct physical cores (SMT siblings collapsed; never 0). Falls back
  /// to logical_cpus when the sysfs topology is unreadable.
  size_t physical_cores = 1;
  bool topology_detected = false;

  /// One representative logical-CPU id per physical core (the lowest-
  /// numbered SMT sibling), ascending — the pin targets of
  /// ThreadPool::SetPinPhysicalCores. Size == physical_cores.
  std::vector<int> physical_core_cpus;
};

/// The process-wide snapshot, detected on first call (thread-safe).
const CpuInfo& GetCpuInfo();

/// Human-readable multi-line dump (the `frapp cpuinfo` body).
std::string CpuInfoSummary(const CpuInfo& info);

namespace internal {
/// Runs detection from scratch (no caching) — exposed so tests can check
/// detection is deterministic without touching the shared snapshot.
CpuInfo DetectCpuInfo();
}  // namespace internal

}  // namespace common
}  // namespace frapp

#endif  // FRAPP_COMMON_CPUINFO_H_
