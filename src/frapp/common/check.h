// CHECK-style invariant assertions. A failed check indicates a bug in the
// library or its caller, not a recoverable condition, so it aborts.

#ifndef FRAPP_COMMON_CHECK_H_
#define FRAPP_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace frapp {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
/// Produced only on the (cold) failure path of FRAPP_CHECK.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "FRAPP_CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace frapp

/// Aborts with a diagnostic if `cond` is false. Additional context can be
/// streamed in: FRAPP_CHECK(i < n) << "i=" << i;
#define FRAPP_CHECK(cond)     \
  if (cond) {                 \
  } else                      \
    ::frapp::internal::CheckFailureStream(#cond, __FILE__, __LINE__)

#define FRAPP_CHECK_EQ(a, b) FRAPP_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define FRAPP_CHECK_NE(a, b) FRAPP_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define FRAPP_CHECK_LT(a, b) FRAPP_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define FRAPP_CHECK_LE(a, b) FRAPP_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define FRAPP_CHECK_GT(a, b) FRAPP_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define FRAPP_CHECK_GE(a, b) FRAPP_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // FRAPP_COMMON_CHECK_H_
