// Small combinatorics helpers used by the baseline mechanisms' transition
// probabilities (binomial pastes, hypergeometric cuts).

#ifndef FRAPP_COMMON_COMBINATORICS_H_
#define FRAPP_COMMON_COMBINATORICS_H_

#include <cstddef>

namespace frapp {

/// C(n, k) as a double (exact for the small n used here; 0 when k > n).
double BinomialCoefficient(size_t n, size_t k);

/// Binomial pmf: C(n, k) p^k (1-p)^(n-k); 0 when k > n.
double BinomialPmf(size_t k, size_t n, double p);

/// Hypergeometric pmf: draw `draws` without replacement from a population of
/// `population` containing `successes` marked items; probability of exactly
/// `k` marked draws.
double HypergeometricPmf(size_t k, size_t population, size_t successes,
                         size_t draws);

}  // namespace frapp

#endif  // FRAPP_COMMON_COMBINATORICS_H_
