// Minimal leveled logging to stderr. Intended for diagnostics in examples and
// benches; the core library logs nothing on hot paths.

#ifndef FRAPP_COMMON_LOGGING_H_
#define FRAPP_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace frapp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// One log statement; flushes a single formatted line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace frapp

#define FRAPP_LOG(level)                                          \
  ::frapp::internal::LogMessage(::frapp::LogLevel::k##level,      \
                                __FILE__, __LINE__)

#endif  // FRAPP_COMMON_LOGGING_H_
