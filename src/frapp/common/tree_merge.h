// Deterministic pairwise tree merge of per-partition count vectors: the ONE
// reduce both the in-process sharded indexes and the frapp/dist coordinator
// use, so the schedule the bit-identity invariant rests on cannot drift
// between them.

#ifndef FRAPP_COMMON_TREE_MERGE_H_
#define FRAPP_COMMON_TREE_MERGE_H_

#include <cstddef>
#include <vector>

namespace frapp {
namespace common {

/// Element-wise sums `vectors[1..]` into `vectors[0]` by a fixed pairwise
/// tree over the partition order. Integer sums are order-independent
/// anyway; the fixed tree keeps the merge schedule a pure function of the
/// partition count and its depth O(log n) — the shape a distributed reduce
/// uses. All vectors must have equal length.
template <typename T>
void TreeMergeVectors(std::vector<std::vector<T>>& vectors) {
  for (size_t stride = 1; stride < vectors.size(); stride *= 2) {
    for (size_t i = 0; i + stride < vectors.size(); i += 2 * stride) {
      std::vector<T>& into = vectors[i];
      const std::vector<T>& from = vectors[i + stride];
      for (size_t c = 0; c < into.size(); ++c) into[c] += from[c];
    }
  }
}

}  // namespace common
}  // namespace frapp

#endif  // FRAPP_COMMON_TREE_MERGE_H_
