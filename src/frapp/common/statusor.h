// StatusOr<T>: a value or an error Status, in the style of Abseil.

#ifndef FRAPP_COMMON_STATUSOR_H_
#define FRAPP_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "frapp/common/check.h"
#include "frapp/common/status.h"

namespace frapp {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent.
///
/// Usage:
///   StatusOr<Matrix> inv = Inverse(a);
///   if (!inv.ok()) return inv.status();
///   Use(*inv);
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. CHECK-fails if `status` is OK, because
  /// an OK StatusOr must carry a value.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    FRAPP_CHECK(!status_.ok()) << "StatusOr constructed from OK status without value";
  }

  /// Constructs from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors. CHECK-fail when no value is present.
  const T& value() const& {
    FRAPP_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    FRAPP_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    FRAPP_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace frapp

/// Assigns the value of a StatusOr expression to `lhs`, or propagates the
/// error to the caller.
#define FRAPP_ASSIGN_OR_RETURN(lhs, expr)                \
  FRAPP_ASSIGN_OR_RETURN_IMPL_(                          \
      FRAPP_STATUS_CONCAT_(_frapp_statusor_, __LINE__), lhs, expr)

#define FRAPP_STATUS_CONCAT_INNER_(a, b) a##b
#define FRAPP_STATUS_CONCAT_(a, b) FRAPP_STATUS_CONCAT_INNER_(a, b)
#define FRAPP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // FRAPP_COMMON_STATUSOR_H_
