#include "frapp/common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace frapp {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool ParseDouble(std::string_view input, double* out) {
  std::string buf(StripWhitespace(input));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseUint64(std::string_view input, unsigned long long* out) {
  std::string buf(StripWhitespace(input));
  if (buf.empty() || buf[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

std::string FormatSignificant(double value, int digits) {
  std::ostringstream os;
  os.precision(digits);
  os << value;
  return os.str();
}

}  // namespace frapp
