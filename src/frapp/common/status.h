// FRAPP: A Framework for High-Accuracy Privacy-Preserving Mining.
//
// Status: lightweight, exception-free error propagation in the style of
// RocksDB / Abseil. Library code never throws; every fallible operation
// returns a Status (or a StatusOr<T>, see statusor.h).

#ifndef FRAPP_COMMON_STATUS_H_
#define FRAPP_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace frapp {

/// Error categories used throughout the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a malformed or out-of-domain value.
  kFailedPrecondition = 2,///< Object state does not permit the operation.
  kNotFound = 3,          ///< Lookup target does not exist.
  kOutOfRange = 4,        ///< Index or parameter outside the valid range.
  kNumericalError = 5,    ///< Singular matrix, non-convergence, overflow, ...
  kIOError = 6,           ///< Filesystem / parsing failure.
  kUnimplemented = 7,     ///< Declared but intentionally not supported.
  kInternal = 8,          ///< Invariant violation that is not the caller's fault.
  kDeadlineExceeded = 9,  ///< Operation ran past its deadline; MAY have retried
                          ///< and MAY be retried (frapp/dist uses it for
                          ///< send/receive timeouts on slow or hung peers).
  kUnavailable = 10,      ///< Peer or resource is (possibly transiently) gone:
                          ///< refused/reset connections, dead workers. Safe to
                          ///< retry against a replacement.
};

/// Returns a stable, human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic error holder. An OK status carries no allocation; error
/// statuses carry a code and a message.
///
/// Usage:
///   Status s = table.AppendRow(row);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A `kOk` code with a
  /// message is normalized to a plain OK status.
  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // shared_ptr keeps Status cheap to copy; error paths are cold.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace frapp

/// Propagates a non-OK status to the caller.
#define FRAPP_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::frapp::Status _frapp_status_ = (expr);         \
    if (!_frapp_status_.ok()) return _frapp_status_; \
  } while (0)

#endif  // FRAPP_COMMON_STATUS_H_
