// Monotonic wall-clock sampling for pipeline observability counters.
//
// One definition so the paired ingest stats (PipelineStats::source_wait_nanos
// vs producer_parse_nanos) are always measured against the same clock and
// cannot drift onto different time bases.

#ifndef FRAPP_COMMON_CLOCK_H_
#define FRAPP_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace frapp {
namespace common {

/// Nanoseconds on the steady (monotonic) clock. Only differences are
/// meaningful; the epoch is unspecified.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace common
}  // namespace frapp

#endif  // FRAPP_COMMON_CLOCK_H_
