// Monotonic wall-clock sampling for pipeline observability counters.
//
// One definition so the paired ingest stats (PipelineStats::source_wait_nanos
// vs producer_parse_nanos) are always measured against the same clock and
// cannot drift onto different time bases.

#ifndef FRAPP_COMMON_CLOCK_H_
#define FRAPP_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace frapp {
namespace common {

/// Nanoseconds on the steady (monotonic) clock. Only differences are
/// meaningful; the epoch is unspecified.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A point on the steady clock by which an operation must finish. The value
/// type the frapp/dist retry machinery passes around: transports honor a
/// per-call timeout, while callers reason in absolute deadlines so a retry
/// loop's waits share one budget instead of resetting it per attempt.
class Deadline {
 public:
  /// The never-expiring deadline (timeouts disabled).
  Deadline() = default;

  /// Expires `ms` milliseconds from now. 0 means "already expired" — use
  /// Infinite() for no deadline.
  static Deadline AfterMillis(uint64_t ms) {
    return Deadline(NowNanos() + ms * 1000000ull);
  }

  static Deadline Infinite() { return Deadline(); }

  bool is_infinite() const { return nanos_ == kInfinite; }
  bool expired() const { return !is_infinite() && NowNanos() >= nanos_; }

  /// Milliseconds left (0 if expired; meaningless for infinite deadlines).
  uint64_t remaining_millis() const {
    if (is_infinite()) return ~0ull;
    const uint64_t now = NowNanos();
    return now >= nanos_ ? 0 : (nanos_ - now) / 1000000ull;
  }

 private:
  static constexpr uint64_t kInfinite = ~0ull;
  explicit Deadline(uint64_t nanos) : nanos_(nanos) {}

  uint64_t nanos_ = kInfinite;
};

}  // namespace common
}  // namespace frapp

#endif  // FRAPP_COMMON_CLOCK_H_
