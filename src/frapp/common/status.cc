#include "frapp/common/status.h"

namespace frapp {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace frapp
