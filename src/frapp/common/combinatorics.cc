#include "frapp/common/combinatorics.h"

#include <cmath>

namespace frapp {

double BinomialCoefficient(size_t n, size_t k) {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (size_t i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i);
    result /= static_cast<double>(i + 1);
  }
  return result;
}

double BinomialPmf(size_t k, size_t n, double p) {
  if (k > n) return 0.0;
  return BinomialCoefficient(n, k) * std::pow(p, static_cast<double>(k)) *
         std::pow(1.0 - p, static_cast<double>(n - k));
}

double HypergeometricPmf(size_t k, size_t population, size_t successes,
                         size_t draws) {
  if (k > draws || k > successes) return 0.0;
  if (draws - k > population - successes) return 0.0;
  return BinomialCoefficient(successes, k) *
         BinomialCoefficient(population - successes, draws - k) /
         BinomialCoefficient(population, draws);
}

}  // namespace frapp
