#include "frapp/common/cpuinfo.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define FRAPP_CPUINFO_X86 1
#endif

namespace frapp {
namespace common {

namespace {

/// Reads a whole small sysfs file; empty string when unreadable.
std::string ReadSysfsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  while (!content.empty() &&
         (content.back() == '\n' || content.back() == '\r')) {
    content.pop_back();
  }
  return content;
}

/// Parses a sysfs cache size like "32K" / "1024K" / "1M"; 0 on failure.
size_t ParseSysfsCacheSize(const std::string& text) {
  if (text.empty()) return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return 0;
  size_t multiplier = 1;
  if (*end == 'K') multiplier = 1024;
  if (*end == 'M') multiplier = 1024 * 1024;
  if (*end == 'G') multiplier = 1024ull * 1024 * 1024;
  return static_cast<size_t>(value) * multiplier;
}

/// Parses a cpulist like "0-3,8,10-11" into cpu ids; empty on failure.
std::vector<int> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  std::istringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    const size_t dash = token.find('-');
    char* end = nullptr;
    const long first = std::strtol(token.c_str(), &end, 10);
    if (end == token.c_str() || first < 0) return {};
    long last = first;
    if (dash != std::string::npos) {
      const char* hi = token.c_str() + dash + 1;
      last = std::strtol(hi, &end, 10);
      if (end == hi || last < first) return {};
    }
    for (long cpu = first; cpu <= last; ++cpu) cpus.push_back(static_cast<int>(cpu));
  }
  return cpus;
}

/// Parses a sysfs hex cpumask like "3" or "000000ff,00000003" (32-bit
/// groups, most significant first) into cpu ids; empty on failure.
std::vector<int> ParseCpuMask(const std::string& text) {
  std::vector<std::string> groups;
  std::istringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) groups.push_back(token);
  std::vector<int> cpus;
  int base = 0;
  for (auto it = groups.rbegin(); it != groups.rend(); ++it, base += 32) {
    if (it->empty()) return {};
    char* end = nullptr;
    const unsigned long bits = std::strtoul(it->c_str(), &end, 16);
    if (end != it->c_str() + it->size()) return {};
    for (int bit = 0; bit < 32; ++bit) {
      if ((bits >> bit) & 1ul) cpus.push_back(base + bit);
    }
  }
  return cpus;
}

/// Sysfs pass: data-cache geometry from cpu0's cache index directories.
/// Returns true when at least L1d or L2 was read.
bool DetectCachesSysfs(CacheGeometry* cache) {
  bool any = false;
  for (int index = 0; index < 10; ++index) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    const std::string level_text = ReadSysfsFile(base + "/level");
    if (level_text.empty()) break;
    const std::string type = ReadSysfsFile(base + "/type");
    if (type == "Instruction") continue;
    const size_t size = ParseSysfsCacheSize(ReadSysfsFile(base + "/size"));
    if (size == 0) continue;
    const int level = std::atoi(level_text.c_str());
    if (level == 1) cache->l1d_bytes = size;
    if (level == 2) cache->l2_bytes = size;
    if (level == 3) cache->l3_bytes = size;
    const std::string line = ReadSysfsFile(base + "/coherency_line_size");
    if (!line.empty()) {
      const size_t line_bytes = static_cast<size_t>(std::atoi(line.c_str()));
      if (line_bytes != 0) cache->line_bytes = line_bytes;
    }
    if (level == 1 || level == 2) any = true;
  }
  return any;
}

#ifdef FRAPP_CPUINFO_X86
/// cpuid pass: Intel deterministic cache parameters (leaf 4) with the AMD
/// equivalent (leaf 0x8000001d) as fallback — containers often hide sysfs
/// cache directories but cpuid always answers.
bool DetectCachesCpuid(CacheGeometry* cache) {
  const auto harvest = [cache](unsigned leaf) -> bool {
    bool any = false;
    for (unsigned sub = 0; sub < 10; ++sub) {
      unsigned a = 0, b = 0, c = 0, d = 0;
      if (!__get_cpuid_count(leaf, sub, &a, &b, &c, &d)) break;
      const unsigned type = a & 0x1f;  // 0 = no more caches
      if (type == 0) break;
      if (type == 2) continue;  // instruction cache
      const unsigned level = (a >> 5) & 0x7;
      const size_t line = (b & 0xfff) + 1;
      const size_t partitions = ((b >> 12) & 0x3ff) + 1;
      const size_t ways = ((b >> 22) & 0x3ff) + 1;
      const size_t sets = static_cast<size_t>(c) + 1;
      const size_t size = line * partitions * ways * sets;
      if (size == 0) continue;
      if (level == 1) cache->l1d_bytes = size;
      if (level == 2) cache->l2_bytes = size;
      if (level == 3) cache->l3_bytes = size;
      cache->line_bytes = line;
      if (level == 1 || level == 2) any = true;
    }
    return any;
  };
  if (harvest(4)) return true;
  return harvest(0x8000001d);
}
#endif  // FRAPP_CPUINFO_X86

/// Physical-core topology from the sysfs thread-sibling masks: each
/// distinct mask is one physical core; its representative is the lowest
/// cpu id in the mask. The cpulist files (`core_cpus_list`/
/// `thread_siblings_list`) are preferred; containers often expose only the
/// hex-mask variants (`core_cpus`/`thread_siblings`), so those are the
/// fallback.
bool DetectTopologySysfs(size_t logical, std::vector<int>* core_cpus) {
  std::vector<int> online =
      ParseCpuList(ReadSysfsFile("/sys/devices/system/cpu/online"));
  if (online.empty()) {
    for (size_t cpu = 0; cpu < logical; ++cpu) online.push_back(static_cast<int>(cpu));
  }
  std::vector<int> representatives;
  for (int cpu : online) {
    const std::string base =
        "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    std::vector<int> mask;
    std::string siblings = ReadSysfsFile(base + "core_cpus_list");
    if (siblings.empty()) siblings = ReadSysfsFile(base + "thread_siblings_list");
    if (!siblings.empty()) {
      mask = ParseCpuList(siblings);
    } else {
      siblings = ReadSysfsFile(base + "core_cpus");
      if (siblings.empty()) siblings = ReadSysfsFile(base + "thread_siblings");
      if (siblings.empty()) return false;
      mask = ParseCpuMask(siblings);
    }
    if (mask.empty()) return false;
    const int representative = *std::min_element(mask.begin(), mask.end());
    if (std::find(representatives.begin(), representatives.end(),
                  representative) == representatives.end()) {
      representatives.push_back(representative);
    }
  }
  if (representatives.empty()) return false;
  std::sort(representatives.begin(), representatives.end());
  *core_cpus = std::move(representatives);
  return true;
}

}  // namespace

namespace internal {

CpuInfo DetectCpuInfo() {
  CpuInfo info;

#ifdef FRAPP_CPUINFO_X86
  info.features.sse42 = __builtin_cpu_supports("sse4.2") != 0;
  info.features.avx2 = __builtin_cpu_supports("avx2") != 0;
  info.features.avx512f = __builtin_cpu_supports("avx512f") != 0;
  info.features.avx512bw = __builtin_cpu_supports("avx512bw") != 0;
  info.features.avx512vl = __builtin_cpu_supports("avx512vl") != 0;
  info.features.avx512vpopcntdq =
      __builtin_cpu_supports("avx512vpopcntdq") != 0;
#endif

  const unsigned hw = std::thread::hardware_concurrency();
  info.logical_cpus = hw == 0 ? 1 : static_cast<size_t>(hw);

  info.cache.detected = DetectCachesSysfs(&info.cache);
#ifdef FRAPP_CPUINFO_X86
  if (!info.cache.detected) info.cache.detected = DetectCachesCpuid(&info.cache);
#endif

  info.topology_detected =
      DetectTopologySysfs(info.logical_cpus, &info.physical_core_cpus);
  if (info.topology_detected) {
    info.physical_cores = info.physical_core_cpus.size();
  } else {
    // Assume no SMT rather than guessing a divisor: pinning then degrades
    // to one worker per logical cpu, which is always safe.
    info.physical_cores = info.logical_cpus;
    info.physical_core_cpus.clear();
    for (size_t cpu = 0; cpu < info.logical_cpus; ++cpu) {
      info.physical_core_cpus.push_back(static_cast<int>(cpu));
    }
  }
  return info;
}

}  // namespace internal

const CpuInfo& GetCpuInfo() {
  static const CpuInfo info = internal::DetectCpuInfo();
  return info;
}

std::string CpuInfoSummary(const CpuInfo& info) {
  std::ostringstream out;
  const auto flag = [](bool b) { return b ? "yes" : "no"; };
  out << "isa features:\n"
      << "  sse4.2            : " << flag(info.features.sse42) << "\n"
      << "  avx2              : " << flag(info.features.avx2) << "\n"
      << "  avx512f           : " << flag(info.features.avx512f) << "\n"
      << "  avx512bw          : " << flag(info.features.avx512bw) << "\n"
      << "  avx512vl          : " << flag(info.features.avx512vl) << "\n"
      << "  avx512vpopcntdq   : " << flag(info.features.avx512vpopcntdq) << "\n"
      << "cache geometry (" << (info.cache.detected ? "detected" : "assumed")
      << "):\n"
      << "  l1d               : " << info.cache.l1d_bytes / 1024 << " KiB\n"
      << "  l2                : " << info.cache.l2_bytes / 1024 << " KiB\n"
      << "  l3                : "
      << (info.cache.l3_bytes == 0
              ? std::string("unknown")
              : std::to_string(info.cache.l3_bytes / 1024) + " KiB")
      << "\n"
      << "  line              : " << info.cache.line_bytes << " B\n"
      << "topology (" << (info.topology_detected ? "detected" : "assumed")
      << "):\n"
      << "  logical cpus      : " << info.logical_cpus << "\n"
      << "  physical cores    : " << info.physical_cores << "\n"
      << "  core cpu ids      :";
  for (int cpu : info.physical_core_cpus) out << " " << cpu;
  out << "\n";
  return out.str();
}

}  // namespace common
}  // namespace frapp
