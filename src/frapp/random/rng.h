// Deterministic pseudo-random substrate.
//
// Every randomized component in the library (perturbers, synthetic data
// generators, randomized matrices) takes an explicit Rng so that experiments
// are reproducible from a single seed. The generator is PCG64 (PCG-XSL-RR
// 128/64), which is fast, statistically strong and tiny.

#ifndef FRAPP_RANDOM_RNG_H_
#define FRAPP_RANDOM_RNG_H_

#include <cstdint>

namespace frapp {
namespace random {

/// PCG-XSL-RR 128/64 generator. Satisfies the C++ UniformRandomBitGenerator
/// requirements so it also composes with <random> if ever needed.
class Pcg64 {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; distinct (seed, stream) pairs give independent
  /// sequences.
  explicit Pcg64(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next 64 random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, bound), bias-free (Lemire rejection).
  uint64_t NextBounded(uint64_t bound);

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p);

  /// Derives an independent child generator (for per-worker streams).
  Pcg64 Split();

 private:
  unsigned __int128 state_;
  unsigned __int128 increment_;
};

}  // namespace random
}  // namespace frapp

#endif  // FRAPP_RANDOM_RNG_H_
