#include "frapp/random/rng.h"

#include "frapp/common/check.h"

namespace frapp {
namespace random {

namespace {
constexpr unsigned __int128 kMultiplier =
    (static_cast<unsigned __int128>(2549297995355413924ULL) << 64) |
    4865540595714422341ULL;

uint64_t RotateRight(uint64_t value, unsigned rot) {
  return (value >> rot) | (value << ((-rot) & 63));
}
}  // namespace

Pcg64::Pcg64(uint64_t seed, uint64_t stream) {
  increment_ = ((static_cast<unsigned __int128>(stream) << 1) | 1u);
  state_ = 0;
  Next();
  state_ += (static_cast<unsigned __int128>(seed) << 64) | (seed * 0x9e3779b97f4a7c15ULL);
  Next();
}

uint64_t Pcg64::Next() {
  state_ = state_ * kMultiplier + increment_;
  // PCG-XSL-RR output function.
  const uint64_t xored = static_cast<uint64_t>(state_ >> 64) ^
                         static_cast<uint64_t>(state_);
  const unsigned rot = static_cast<unsigned>(state_ >> 122);
  return RotateRight(xored, rot);
}

double Pcg64::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Pcg64::NextDouble(double lo, double hi) {
  FRAPP_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Pcg64::NextBounded(uint64_t bound) {
  FRAPP_CHECK_GT(bound, 0u);
  // Lemire's multiply-shift with rejection for exact uniformity.
  unsigned __int128 product = static_cast<unsigned __int128>(Next()) * bound;
  uint64_t low = static_cast<uint64_t>(product);
  if (low < bound) {
    const uint64_t threshold = (-bound) % bound;
    while (low < threshold) {
      product = static_cast<unsigned __int128>(Next()) * bound;
      low = static_cast<uint64_t>(product);
    }
  }
  return static_cast<uint64_t>(product >> 64);
}

bool Pcg64::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Pcg64 Pcg64::Split() {
  // A fresh generator seeded from two outputs of this one; distinct stream
  // constants guarantee different sequences even under seed collision.
  const uint64_t seed = Next();
  const uint64_t stream = Next() | 1u;
  return Pcg64(seed, stream);
}

}  // namespace random
}  // namespace frapp
