// Distribution helpers on top of Pcg64: CDF-scan discrete sampling (the
// paper's naive Section-5 algorithm), uniform subset selection, binomial,
// and the randomization-parameter distributions used by RAN-GD (Section 4).

#ifndef FRAPP_RANDOM_DISTRIBUTIONS_H_
#define FRAPP_RANDOM_DISTRIBUTIONS_H_

#include <cstddef>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace random {

/// Samples from {0..n-1} with the given (not necessarily normalized) weights
/// by a linear CDF scan — the straightforward algorithm of paper Section 5,
/// O(n) per draw. Kept as a test oracle and for one-shot draws.
size_t SampleDiscreteLinear(const std::vector<double>& weights, Pcg64& rng);

/// Draws a uniformly random k-subset of {0..n-1} (Floyd's algorithm, O(k)
/// expected). Result is in ascending order.
std::vector<size_t> SampleSubset(size_t n, size_t k, Pcg64& rng);

/// Binomial(n, p) by inversion for small n, else by direct trials.
size_t SampleBinomial(size_t n, double p, Pcg64& rng);

/// Distribution family for the randomized perturbation parameter `r` of the
/// randomized gamma-diagonal matrix (paper Section 4 uses Uniform[-alpha,
/// alpha]; the framework allows any zero-mean distribution).
enum class RandomizationKind {
  kUniform,            ///< U[-alpha, alpha] (the paper's choice)
  kTwoPoint,           ///< +alpha or -alpha with probability 1/2 each
  kTruncatedGaussian,  ///< N(0, (alpha/2)^2) truncated to [-alpha, alpha]
};

/// Draws r with E[r] = 0 and support [-alpha, alpha] from the chosen family.
double SampleRandomizationParameter(RandomizationKind kind, double alpha, Pcg64& rng);

/// Name for reports ("uniform", "two-point", "trunc-gaussian").
const char* RandomizationKindName(RandomizationKind kind);

}  // namespace random
}  // namespace frapp

#endif  // FRAPP_RANDOM_DISTRIBUTIONS_H_
