// Walker/Vose alias method: O(1) sampling from a fixed discrete distribution
// after O(n) setup. Used by the naive CDF perturber's fast path and by the
// synthetic data generators, where the same distribution is sampled N times.

#ifndef FRAPP_RANDOM_ALIAS_SAMPLER_H_
#define FRAPP_RANDOM_ALIAS_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace random {

/// Immutable sampler over {0, ..., n-1} with probabilities proportional to
/// the weights supplied at construction.
class AliasSampler {
 public:
  /// Builds the alias table. Weights must be non-negative, finite, with a
  /// positive sum.
  static StatusOr<AliasSampler> Create(const std::vector<double>& weights);

  /// Draws one index.
  size_t Sample(Pcg64& rng) const;

  size_t size() const { return probability_.size(); }

  /// Normalized probability of outcome i (for tests).
  double Probability(size_t i) const { return normalized_[i]; }

 private:
  AliasSampler(std::vector<double> probability, std::vector<size_t> alias,
               std::vector<double> normalized)
      : probability_(std::move(probability)),
        alias_(std::move(alias)),
        normalized_(std::move(normalized)) {}

  std::vector<double> probability_;  // acceptance probability per bucket
  std::vector<size_t> alias_;        // fallback outcome per bucket
  std::vector<double> normalized_;   // original distribution, normalized
};

}  // namespace random
}  // namespace frapp

#endif  // FRAPP_RANDOM_ALIAS_SAMPLER_H_
