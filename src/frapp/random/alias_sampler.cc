#include "frapp/random/alias_sampler.h"

#include <cmath>

namespace frapp {
namespace random {

StatusOr<AliasSampler> AliasSampler::Create(const std::vector<double>& weights) {
  const size_t n = weights.size();
  if (n == 0) return Status::InvalidArgument("alias sampler needs >= 1 outcome");
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument("alias sampler weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("alias sampler weights must have positive sum");
  }

  std::vector<double> normalized(n);
  for (size_t i = 0; i < n; ++i) normalized[i] = weights[i] / total;

  // Vose's stable construction: split outcomes into under- and over-full
  // buckets of average height 1/n and pair them.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = normalized[i] * static_cast<double>(n);

  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  std::vector<double> probability(n, 1.0);
  std::vector<size_t> alias(n, 0);
  for (size_t i = 0; i < n; ++i) alias[i] = i;

  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    probability[s] = scaled[s];
    alias[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly full (modulo rounding): accept with probability 1.
  for (size_t s : small) probability[s] = 1.0;
  for (size_t l : large) probability[l] = 1.0;

  return AliasSampler(std::move(probability), std::move(alias), std::move(normalized));
}

size_t AliasSampler::Sample(Pcg64& rng) const {
  const size_t bucket = static_cast<size_t>(rng.NextBounded(probability_.size()));
  return rng.NextDouble() < probability_[bucket] ? bucket : alias_[bucket];
}

}  // namespace random
}  // namespace frapp
