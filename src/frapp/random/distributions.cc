#include "frapp/random/distributions.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "frapp/common/check.h"

namespace frapp {
namespace random {

size_t SampleDiscreteLinear(const std::vector<double>& weights, Pcg64& rng) {
  FRAPP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  FRAPP_CHECK_GT(total, 0.0);
  double r = rng.NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  // Floating-point slack: the scan can fall off the end by a few ulps.
  return weights.size() - 1;
}

std::vector<size_t> SampleSubset(size_t n, size_t k, Pcg64& rng) {
  FRAPP_CHECK_LE(k, n);
  // Floyd's algorithm: for j = n-k..n-1 pick t in [0..j]; insert t unless
  // already present, else insert j.
  std::unordered_set<size_t> chosen;
  chosen.reserve(k * 2);
  for (size_t j = n - k; j < n; ++j) {
    const size_t t = static_cast<size_t>(rng.NextBounded(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

size_t SampleBinomial(size_t n, double p, Pcg64& rng) {
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return n;
  // The library's binomials are small (domain cardinalities); direct trials
  // are exact and fast enough.
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += rng.NextBernoulli(p) ? 1 : 0;
  return count;
}

double SampleRandomizationParameter(RandomizationKind kind, double alpha, Pcg64& rng) {
  FRAPP_CHECK_GE(alpha, 0.0);
  if (alpha == 0.0) return 0.0;
  switch (kind) {
    case RandomizationKind::kUniform:
      return rng.NextDouble(-alpha, alpha);
    case RandomizationKind::kTwoPoint:
      return rng.NextBernoulli(0.5) ? alpha : -alpha;
    case RandomizationKind::kTruncatedGaussian: {
      // Box-Muller with rejection outside [-alpha, alpha].
      const double sigma = alpha / 2.0;
      for (int attempt = 0; attempt < 64; ++attempt) {
        const double u1 = std::max(rng.NextDouble(), 1e-300);
        const double u2 = rng.NextDouble();
        const double z = std::sqrt(-2.0 * std::log(u1)) *
                         std::cos(2.0 * M_PI * u2) * sigma;
        if (z >= -alpha && z <= alpha) return z;
      }
      return 0.0;  // Astronomically unlikely; keep the zero-mean property.
    }
  }
  return 0.0;
}

const char* RandomizationKindName(RandomizationKind kind) {
  switch (kind) {
    case RandomizationKind::kUniform:
      return "uniform";
    case RandomizationKind::kTwoPoint:
      return "two-point";
    case RandomizationKind::kTruncatedGaussian:
      return "trunc-gaussian";
  }
  return "?";
}

}  // namespace random
}  // namespace frapp
