#include "frapp/core/subset_reconstruction.h"

namespace frapp {
namespace core {

StatusOr<GammaSubsetReconstructor> GammaSubsetReconstructor::Create(
    double gamma, uint64_t full_domain_size) {
  if (!(gamma > 1.0)) return Status::InvalidArgument("gamma must exceed 1");
  if (full_domain_size < 2) {
    return Status::InvalidArgument("full domain size must be >= 2");
  }
  return GammaSubsetReconstructor(gamma, full_domain_size);
}

StatusOr<linalg::UniformMixtureMatrix> GammaSubsetReconstructor::SubsetMatrix(
    uint64_t subset_domain_size) const {
  if (subset_domain_size < 1 || subset_domain_size > n_c_) {
    return Status::InvalidArgument("subset domain size out of range");
  }
  const double ratio =
      static_cast<double>(n_c_) / static_cast<double>(subset_domain_size);
  const double off = ratio * x_;
  const double diag = gamma_ * x_ + (ratio - 1.0) * x_;
  return linalg::UniformMixtureMatrix::FromDiagonalOffDiagonal(
      static_cast<size_t>(subset_domain_size), diag, off);
}

StatusOr<double> GammaSubsetReconstructor::ReconstructSupport(
    double perturbed_support_fraction, uint64_t subset_domain_size) const {
  if (subset_domain_size < 1 || subset_domain_size > n_c_) {
    return Status::InvalidArgument("subset domain size out of range");
  }
  const double ratio =
      static_cast<double>(n_c_) / static_cast<double>(subset_domain_size);
  // Supports over the subset domain sum to one, so the J-term of the
  // Sherman-Morrison inverse collapses to the constant (n_C/n_Cs) x.
  return (perturbed_support_fraction - ratio * x_) / ((gamma_ - 1.0) * x_);
}

double GammaSubsetReconstructor::ConditionNumber() const {
  return (gamma_ + static_cast<double>(n_c_) - 1.0) / (gamma_ - 1.0);
}

}  // namespace core
}  // namespace frapp
