// The two-step FRAPP design workflow proposed in the paper's introduction:
//
//   "First, given a user-desired level of privacy, identifying the
//    deterministic values of the FRAPP parameters that both guarantee this
//    privacy and also maximize the accuracy; and then, (optionally)
//    randomizing these parameters to obtain even better privacy guarantees
//    at a minimal cost in accuracy."
//
// Step 1 derives gamma from (rho1, rho2) and instantiates the
// condition-number-optimal gamma-diagonal mechanism. Step 2 optionally
// randomizes the matrix with half-width alpha = fraction * gamma * x.

#ifndef FRAPP_CORE_DESIGNER_H_
#define FRAPP_CORE_DESIGNER_H_

#include <memory>
#include <string>

#include "frapp/common/statusor.h"
#include "frapp/core/mechanism.h"
#include "frapp/core/privacy.h"

namespace frapp {
namespace core {

/// Knobs for DesignMechanism.
struct DesignOptions {
  /// Strict privacy requirement; the paper's running example is (5%, 50%).
  PrivacyRequirement requirement{0.05, 0.50};

  /// Randomization half-width as a fraction of gamma*x in [0, 1];
  /// 0 selects the deterministic DET-GD mechanism.
  double randomization_fraction = 0.0;

  /// Distribution family for the randomization parameter.
  random::RandomizationKind randomization_kind =
      random::RandomizationKind::kUniform;
};

/// A fully configured design and its privacy/accuracy characteristics.
struct FrappDesign {
  double gamma = 0.0;          ///< amplification bound from the requirement
  double x = 0.0;              ///< gamma-diagonal off-diagonal entry
  double alpha = 0.0;          ///< randomization half-width (0 = DET-GD)
  double condition_number = 0; ///< constant reconstruction condition number

  /// Posterior window for a property at the rho1 prior: for DET-GD the three
  /// fields coincide at rho2; for RAN-GD they bracket it.
  PosteriorRange posterior;

  /// The ready-to-Prepare mechanism (DetGdMechanism or RanGdMechanism).
  std::unique_ptr<Mechanism> mechanism;

  /// Multi-line human-readable description of the design.
  std::string Summary() const;
};

/// Runs the two-step workflow for `schema`. Fails when the requirement is
/// malformed or the randomization fraction is outside [0, 1] (or would make
/// matrix entries negative on very small domains).
StatusOr<FrappDesign> DesignMechanism(const data::CategoricalSchema& schema,
                                      const DesignOptions& options);

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_DESIGNER_H_
