#include "frapp/core/gamma_diagonal.h"

#include <algorithm>

#include "frapp/common/parallel.h"
#include "frapp/core/seeded_chunking.h"

namespace frapp {
namespace core {

StatusOr<GammaDiagonalMatrix> GammaDiagonalMatrix::Create(double gamma, uint64_t n) {
  if (!(gamma > 1.0)) {
    return Status::InvalidArgument("gamma-diagonal matrix requires gamma > 1");
  }
  if (n < 2) {
    return Status::InvalidArgument("gamma-diagonal matrix requires domain size >= 2");
  }
  return GammaDiagonalMatrix(gamma, n);
}

StatusOr<double> GammaDiagonalMatrix::ConditionNumber() const {
  return MinimumConditionNumberBound(gamma_, n_);
}

double MinimumConditionNumberBound(double gamma, uint64_t n) {
  return (gamma + static_cast<double>(n) - 1.0) / (gamma - 1.0);
}

void PerturbRecordDiagonalForm(const std::vector<uint8_t>& record,
                               const std::vector<size_t>& cardinalities,
                               uint64_t domain_size, double d, double o,
                               random::Pcg64& rng, std::vector<uint8_t>* out) {
  const size_t num_attributes = cardinalities.size();
  out->resize(num_attributes);

  // q_prev = probability mass of records matching the original on all
  // columns processed so far; q_0 = d + (n - 1) o = 1 for a stochastic
  // matrix, but we track it exactly to stay correct for any (d, o).
  double q_prev = d + (static_cast<double>(domain_size) - 1.0) * o;
  uint64_t suffix_domain = domain_size;  // n / n_j: records per matched prefix
  bool matched = true;

  for (size_t j = 0; j < num_attributes; ++j) {
    const size_t card = cardinalities[j];
    if (!matched) {
      // Off-diagonal mass is uniform across records, so once the prefix has
      // diverged every remaining column is uniform on its domain.
      (*out)[j] = static_cast<uint8_t>(rng.NextBounded(card));
      continue;
    }
    suffix_domain /= card;
    // Mass of records matching the original through column j.
    const double q_j = d + (static_cast<double>(suffix_domain) - 1.0) * o;
    const double p_match = q_j / q_prev;
    if (rng.NextBernoulli(p_match)) {
      (*out)[j] = record[j];
      q_prev = q_j;
    } else {
      // All card-1 mismatching values are equally likely.
      size_t value = static_cast<size_t>(rng.NextBounded(card - 1));
      if (value >= record[j]) ++value;
      (*out)[j] = static_cast<uint8_t>(value);
      matched = false;
    }
  }
}

StatusOr<GammaPerturbPlan> GammaPerturbPlan::Create(
    std::vector<size_t> cardinalities, uint64_t domain_size) {
  uint64_t product = 1;
  for (size_t card : cardinalities) {
    if (card < 1) return Status::InvalidArgument("empty attribute domain");
    product *= static_cast<uint64_t>(card);
  }
  if (product != domain_size) {
    return Status::InvalidArgument("domain size disagrees with cardinalities");
  }
  // suffix_minus_one_[j] = n / n_j - 1: records per matched prefix through
  // column j, minus the original itself.
  std::vector<double> suffix_minus_one(cardinalities.size());
  uint64_t suffix = domain_size;
  for (size_t j = 0; j < cardinalities.size(); ++j) {
    suffix /= cardinalities[j];
    suffix_minus_one[j] = static_cast<double>(suffix) - 1.0;
  }
  return GammaPerturbPlan(std::move(cardinalities), std::move(suffix_minus_one));
}

std::vector<double> GammaPerturbPlan::DivergenceWeights(double d, double o) const {
  const size_t m = cardinalities_.size();
  std::vector<double> weights(m + 1);
  double q_prev = 1.0;  // q_{-1} = d + (n - 1) o for a stochastic matrix
  for (size_t j = 0; j < m; ++j) {
    const double q_j = d + suffix_minus_one_[j] * o;
    weights[j] = q_prev - q_j;  // P(first divergence at column j)
    q_prev = q_j;
  }
  weights[m] = q_prev;  // q_{M-1} = d: full match
  return weights;
}

size_t GammaPerturbPlan::SampleDivergenceColumn(double d, double o,
                                                random::Pcg64& rng) const {
  // The q_j decrease in j, so the divergence column is the first j whose
  // threshold q_j falls at or below one uniform draw. Realistic matrices
  // put most mass on column 0 (q_0 << 1), so the scan is short.
  const double u = rng.NextDouble();
  const size_t m = cardinalities_.size();
  for (size_t j = 0; j < m; ++j) {
    if (u >= d + suffix_minus_one_[j] * o) return j;
  }
  return m;
}

StatusOr<GammaDiagonalPerturber> GammaDiagonalPerturber::Create(
    const data::CategoricalSchema& schema, double gamma) {
  FRAPP_ASSIGN_OR_RETURN(GammaDiagonalMatrix matrix,
                         GammaDiagonalMatrix::Create(gamma, schema.DomainSize()));
  std::vector<size_t> cardinalities(schema.num_attributes());
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    cardinalities[j] = schema.Cardinality(j);
  }
  FRAPP_ASSIGN_OR_RETURN(
      GammaPerturbPlan plan,
      GammaPerturbPlan::Create(std::move(cardinalities), schema.DomainSize()));
  FRAPP_ASSIGN_OR_RETURN(
      random::AliasSampler divergence,
      random::AliasSampler::Create(plan.DivergenceWeights(
          matrix.DiagonalValue(), matrix.OffDiagonalValue())));
  return GammaDiagonalPerturber(std::move(matrix), std::move(plan),
                                std::move(divergence));
}

using internal::ChunkRng;
using internal::ColumnPointers;
using internal::kPerturbChunkRows;

StatusOr<data::CategoricalTable> GammaDiagonalPerturber::Perturb(
    const data::CategoricalTable& table, random::Pcg64& rng) const {
  if (table.num_attributes() != plan_.num_attributes()) {
    return Status::InvalidArgument("table schema does not match perturber");
  }
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable out,
                         data::CategoricalTable::Create(table.schema()));
  out.AppendZeroRows(table.num_rows());
  ColumnPointers cols(table, &out);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    plan_.FillRow(divergence_.Sample(rng), cols.in.data(), cols.out.data(), i, rng);
  }
  return out;
}

StatusOr<data::CategoricalTable> GammaDiagonalPerturber::PerturbSeeded(
    const data::CategoricalTable& table, uint64_t seed,
    size_t num_threads) const {
  return PerturbShardSeeded(table, data::RowRange{0, table.num_rows()}, seed,
                            num_threads);
}

StatusOr<data::CategoricalTable> GammaDiagonalPerturber::PerturbShardSeeded(
    const data::CategoricalTable& table, const data::RowRange& range,
    uint64_t seed, size_t num_threads) const {
  FRAPP_RETURN_IF_ERROR(internal::ValidateShardRange(range, table.num_rows()));
  return PerturbShardSeeded(data::ShardView{&table, range, range.begin}, seed,
                            num_threads);
}

StatusOr<data::CategoricalTable> GammaDiagonalPerturber::PerturbShardSeeded(
    const data::ShardView& shard, uint64_t seed, size_t num_threads) const {
  FRAPP_RETURN_IF_ERROR(internal::ValidateShardView(shard));
  const data::CategoricalTable& table = *shard.rows;
  if (table.num_attributes() != plan_.num_attributes()) {
    return Status::InvalidArgument("table schema does not match perturber");
  }
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable out,
                         data::CategoricalTable::Create(table.schema()));
  out.AppendZeroRows(shard.size());
  ColumnPointers cols(table, &out, shard.local.begin);
  internal::ForEachSeededChunk(
      shard.size(), shard.global_begin, seed, num_threads,
      [&](size_t begin, size_t end, random::Pcg64& rng) {
        for (size_t i = begin; i < end; ++i) {
          plan_.FillRow(divergence_.Sample(rng), cols.in.data(), cols.out.data(),
                        i, rng);
        }
      });
  return out;
}

}  // namespace core
}  // namespace frapp
