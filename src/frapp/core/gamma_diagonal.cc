#include "frapp/core/gamma_diagonal.h"

namespace frapp {
namespace core {

StatusOr<GammaDiagonalMatrix> GammaDiagonalMatrix::Create(double gamma, uint64_t n) {
  if (!(gamma > 1.0)) {
    return Status::InvalidArgument("gamma-diagonal matrix requires gamma > 1");
  }
  if (n < 2) {
    return Status::InvalidArgument("gamma-diagonal matrix requires domain size >= 2");
  }
  return GammaDiagonalMatrix(gamma, n);
}

StatusOr<double> GammaDiagonalMatrix::ConditionNumber() const {
  return MinimumConditionNumberBound(gamma_, n_);
}

double MinimumConditionNumberBound(double gamma, uint64_t n) {
  return (gamma + static_cast<double>(n) - 1.0) / (gamma - 1.0);
}

void PerturbRecordDiagonalForm(const std::vector<uint8_t>& record,
                               const std::vector<size_t>& cardinalities,
                               uint64_t domain_size, double d, double o,
                               random::Pcg64& rng, std::vector<uint8_t>* out) {
  const size_t num_attributes = cardinalities.size();
  out->resize(num_attributes);

  // q_prev = probability mass of records matching the original on all
  // columns processed so far; q_0 = d + (n - 1) o = 1 for a stochastic
  // matrix, but we track it exactly to stay correct for any (d, o).
  double q_prev = d + (static_cast<double>(domain_size) - 1.0) * o;
  uint64_t suffix_domain = domain_size;  // n / n_j: records per matched prefix
  bool matched = true;

  for (size_t j = 0; j < num_attributes; ++j) {
    const size_t card = cardinalities[j];
    if (!matched) {
      // Off-diagonal mass is uniform across records, so once the prefix has
      // diverged every remaining column is uniform on its domain.
      (*out)[j] = static_cast<uint8_t>(rng.NextBounded(card));
      continue;
    }
    suffix_domain /= card;
    // Mass of records matching the original through column j.
    const double q_j = d + (static_cast<double>(suffix_domain) - 1.0) * o;
    const double p_match = q_j / q_prev;
    if (rng.NextBernoulli(p_match)) {
      (*out)[j] = record[j];
      q_prev = q_j;
    } else {
      // All card-1 mismatching values are equally likely.
      size_t value = static_cast<size_t>(rng.NextBounded(card - 1));
      if (value >= record[j]) ++value;
      (*out)[j] = static_cast<uint8_t>(value);
      matched = false;
    }
  }
}

StatusOr<GammaDiagonalPerturber> GammaDiagonalPerturber::Create(
    const data::CategoricalSchema& schema, double gamma) {
  FRAPP_ASSIGN_OR_RETURN(GammaDiagonalMatrix matrix,
                         GammaDiagonalMatrix::Create(gamma, schema.DomainSize()));
  std::vector<size_t> cardinalities(schema.num_attributes());
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    cardinalities[j] = schema.Cardinality(j);
    if (cardinalities[j] < 1) {
      return Status::InvalidArgument("empty attribute domain");
    }
  }
  return GammaDiagonalPerturber(std::move(matrix), std::move(cardinalities));
}

StatusOr<data::CategoricalTable> GammaDiagonalPerturber::Perturb(
    const data::CategoricalTable& table, random::Pcg64& rng) const {
  if (table.num_attributes() != cardinalities_.size()) {
    return Status::InvalidArgument("table schema does not match perturber");
  }
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable out,
                         data::CategoricalTable::Create(table.schema()));
  out.Reserve(table.num_rows());
  const double d = matrix_.DiagonalValue();
  const double o = matrix_.OffDiagonalValue();
  const uint64_t n = matrix_.domain_size();

  std::vector<uint8_t> record(cardinalities_.size());
  std::vector<uint8_t> perturbed(cardinalities_.size());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (size_t j = 0; j < cardinalities_.size(); ++j) {
      record[j] = table.Value(i, j);
    }
    PerturbRecordDiagonalForm(record, cardinalities_, n, d, o, rng, &perturbed);
    FRAPP_RETURN_IF_ERROR(out.AppendRow(perturbed));
  }
  return out;
}

}  // namespace core
}  // namespace frapp
