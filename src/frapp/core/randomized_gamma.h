// The randomized gamma-diagonal mechanism RAN-GD (paper Section 4).
//
// Instead of one fixed matrix, every client perturbs with a private draw of
// the matrix family
//     diagonal  = gamma * x + r,
//     off-diag  = x - r / (n - 1),      r ~ zero-mean on [-alpha, alpha],
// which keeps columns stochastic for every realization. The miner knows only
// the DISTRIBUTION of the matrix, so worst-case posterior computations that
// were exact for DET-GD become ranges (privacy gain); reconstruction uses
// the expected matrix E[A~] = the deterministic gamma-diagonal matrix, and
// the paper's variance analysis (Section 4.2) shows the accuracy loss is
// marginal — randomizing the success probabilities actually shrinks the
// Poisson-binomial variance term while adding a (A-bar - A) X term.

#ifndef FRAPP_CORE_RANDOMIZED_GAMMA_H_
#define FRAPP_CORE_RANDOMIZED_GAMMA_H_

#include "frapp/common/statusor.h"
#include "frapp/core/gamma_diagonal.h"
#include "frapp/core/privacy.h"
#include "frapp/data/sharded_table.h"
#include "frapp/data/table.h"
#include "frapp/random/distributions.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {

/// Table-level perturber drawing a fresh matrix realization per record
/// (= per client: each record belongs to a distinct client in the paper's
/// B2C model).
class RandomizedGammaPerturber {
 public:
  /// `alpha` is the randomization half-width, constrained to
  /// [0, gamma * x] as in the paper's Figure 3 sweep; `kind` selects the
  /// randomization distribution (the paper evaluates uniform).
  static StatusOr<RandomizedGammaPerturber> Create(
      const data::CategoricalSchema& schema, double gamma, double alpha,
      random::RandomizationKind kind = random::RandomizationKind::kUniform);

  /// Perturbs every record with an independent matrix realization, consuming
  /// randomness from `rng` sequentially. Per record, the first-divergence
  /// column is inverted from a single uniform against the precomputed
  /// per-column thresholds (see GammaPerturbPlan) — no per-column Bernoulli
  /// chain, no per-row temporaries.
  StatusOr<data::CategoricalTable> Perturb(const data::CategoricalTable& table,
                                           random::Pcg64& rng) const;

  /// Deterministic, optionally multi-threaded variant: output depends only
  /// on (table, seed), never on the thread count (0 = hardware concurrency).
  StatusOr<data::CategoricalTable> PerturbSeeded(const data::CategoricalTable& table,
                                                 uint64_t seed,
                                                 size_t num_threads = 1) const;

  /// Perturbs only rows [range.begin, range.end) of `table` with the GLOBAL
  /// chunk streams of the seeded contract; concatenating the outputs of any
  /// chunk-aligned partition reproduces PerturbSeeded(table, seed) bit for
  /// bit. `range` must satisfy the seeded-chunk alignment.
  StatusOr<data::CategoricalTable> PerturbShardSeeded(
      const data::CategoricalTable& table, const data::RowRange& range,
      uint64_t seed, size_t num_threads = 1) const;

  /// Streaming form over a ShardView (buffer + global position); see
  /// GammaDiagonalPerturber::PerturbShardSeeded.
  StatusOr<data::CategoricalTable> PerturbShardSeeded(
      const data::ShardView& shard, uint64_t seed, size_t num_threads = 1) const;

  /// The expected matrix (what the miner reconstructs with).
  const GammaDiagonalMatrix& expected_matrix() const { return matrix_; }

  double alpha() const { return alpha_; }
  random::RandomizationKind kind() const { return kind_; }

  /// Posterior probability window for a property with prior `prior`
  /// (paper Section 4.1 / Figure 3a).
  StatusOr<PosteriorRange> PosteriorWindow(double prior) const {
    return RandomizedPosteriorRange(prior, matrix_.gamma(), matrix_.domain_size(),
                                    alpha_);
  }

 private:
  RandomizedGammaPerturber(GammaDiagonalMatrix matrix, GammaPerturbPlan plan,
                           double alpha, random::RandomizationKind kind)
      : matrix_(std::move(matrix)),
        plan_(std::move(plan)),
        alpha_(alpha),
        kind_(kind) {}

  /// One record: draw this client's matrix realization, then divergence
  /// column + fill.
  void PerturbRow(const uint8_t* const* in_cols, uint8_t* const* out_cols,
                  size_t i, random::Pcg64& rng) const;

  GammaDiagonalMatrix matrix_;
  GammaPerturbPlan plan_;
  double alpha_;
  random::RandomizationKind kind_;
};

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_RANDOMIZED_GAMMA_H_
