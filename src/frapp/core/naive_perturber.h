// The "straightforward algorithm" of paper Section 5: perturb a record by
// scanning the CDF of its transition-matrix column over the whole perturbed
// domain. O(|S_V|) per record — exponential in the number of attributes —
// which is exactly why the paper develops the O(sum_j |S_j|) dependent-column
// algorithm. Retained as (a) a test oracle for the fast perturbers and (b) a
// generic perturber for arbitrary dense FRAPP matrices on small domains.

#ifndef FRAPP_CORE_NAIVE_PERTURBER_H_
#define FRAPP_CORE_NAIVE_PERTURBER_H_

#include <memory>

#include "frapp/common/statusor.h"
#include "frapp/core/perturbation_matrix.h"
#include "frapp/data/table.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {

/// Perturbs tables by per-record CDF scan over an arbitrary perturbation
/// matrix. The matrix domain must match the schema's joint domain.
class NaivePerturber {
 public:
  /// `matrix` must outlive the perturber. Fails when the joint domain is
  /// larger than `max_domain` (default 1<<20) — the scan would be absurd.
  static StatusOr<NaivePerturber> Create(const data::CategoricalSchema& schema,
                                         const PerturbationMatrix& matrix,
                                         uint64_t max_domain = (1ull << 20));

  /// Perturbs every record: decode index u, draw v ~ column u of A, encode.
  StatusOr<data::CategoricalTable> Perturb(const data::CategoricalTable& table,
                                           random::Pcg64& rng) const;

 private:
  NaivePerturber(const PerturbationMatrix& matrix, data::DomainIndexer indexer)
      : matrix_(matrix), indexer_(std::move(indexer)) {}

  const PerturbationMatrix& matrix_;
  data::DomainIndexer indexer_;
};

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_NAIVE_PERTURBER_H_
