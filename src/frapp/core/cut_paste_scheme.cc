#include "frapp/core/cut_paste_scheme.h"

#include <algorithm>
#include <cmath>

#include "frapp/common/combinatorics.h"
#include "frapp/common/parallel.h"
#include "frapp/core/seeded_chunking.h"
#include "frapp/linalg/condition.h"
#include "frapp/random/distributions.h"

namespace frapp {
namespace core {

namespace {

/// One record through the cut-and-paste operator (shared by the sequential
/// and the seeded-chunk bulk paths; both must consume `rng` identically).
uint64_t CutPasteRow(uint64_t row, size_t cutoff_k, double rho,
                     size_t universe_bits, std::vector<size_t>& ones,
                     random::Pcg64& rng) {
  ones.clear();
  for (uint64_t bits = row; bits != 0; bits &= bits - 1) {
    ones.push_back(static_cast<size_t>(__builtin_ctzll(bits)));
  }
  const size_t m = ones.size();

  // Step 1: cut size.
  size_t z = static_cast<size_t>(rng.NextBounded(cutoff_k + 1));
  if (z > m) z = m;

  // Step 2: copy a uniform z-subset of the record's items.
  uint64_t cut_mask = 0;
  for (size_t pick : random::SampleSubset(m, z, rng)) {
    cut_mask |= (1ull << ones[pick]);
  }

  // Step 3: paste every other universe item with probability rho.
  uint64_t new_bits = cut_mask;
  for (size_t b = 0; b < universe_bits; ++b) {
    const uint64_t bit = 1ull << b;
    if ((cut_mask & bit) != 0) continue;
    if (rng.NextBernoulli(rho)) new_bits |= bit;
  }
  return new_bits;
}

}  // namespace

StatusOr<CutPasteScheme> CutPasteScheme::Create(size_t cutoff_k, double rho,
                                                size_t record_items,
                                                size_t universe_bits) {
  if (!(rho > 0.0) || !(rho < 1.0)) {
    return Status::InvalidArgument("C&P requires rho in (0, 1)");
  }
  if (record_items == 0 || record_items > universe_bits) {
    return Status::InvalidArgument("record_items must be in [1, universe_bits]");
  }
  if (universe_bits > 64) {
    return Status::InvalidArgument("C&P boolean view limited to 64 bits");
  }
  return CutPasteScheme(cutoff_k, rho, record_items, universe_bits);
}

double CutPasteScheme::CutSizeProbability(size_t z) const {
  const size_t m = record_items_;
  const double denom = static_cast<double>(cutoff_k_ + 1);
  if (cutoff_k_ <= m) {
    // j <= K <= m, so z = j uniformly.
    return z <= cutoff_k_ ? 1.0 / denom : 0.0;
  }
  // K > m: draws j in [m, K] all clamp to z = m.
  if (z < m) return 1.0 / denom;
  if (z == m) return static_cast<double>(cutoff_k_ - m + 1) / denom;
  return 0.0;
}

StatusOr<data::BooleanTable> CutPasteScheme::Perturb(const data::BooleanTable& table,
                                                     random::Pcg64& rng) const {
  if (table.num_bits() != universe_bits_) {
    return Status::InvalidArgument("table universe does not match scheme");
  }
  FRAPP_ASSIGN_OR_RETURN(data::BooleanTable out,
                         data::BooleanTable::CreateEmpty(table.num_bits()));

  std::vector<size_t> ones;
  ones.reserve(record_items_);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    out.AppendRow(CutPasteRow(table.RowBits(i), cutoff_k_, rho_, universe_bits_,
                              ones, rng));
  }
  return out;
}

StatusOr<data::BooleanTable> CutPasteScheme::PerturbSeeded(
    const data::BooleanTable& table, uint64_t seed, size_t num_threads) const {
  return PerturbShardSeeded(table, /*global_begin=*/0, seed, num_threads);
}

StatusOr<data::BooleanTable> CutPasteScheme::PerturbShardSeeded(
    const data::BooleanTable& onehot, size_t global_begin, uint64_t seed,
    size_t num_threads) const {
  if (onehot.num_bits() != universe_bits_) {
    return Status::InvalidArgument("table universe does not match scheme");
  }
  if (global_begin % internal::kPerturbChunkRows != 0) {
    return Status::InvalidArgument(
        "shard does not start on a seeded chunk boundary");
  }
  FRAPP_ASSIGN_OR_RETURN(data::BooleanTable out,
                         data::BooleanTable::CreateEmpty(onehot.num_bits()));
  const size_t len = onehot.num_rows();
  for (size_t i = 0; i < len; ++i) out.AppendRow(0);
  internal::ForEachSeededChunk(
      len, global_begin, seed, num_threads,
      [&](size_t begin, size_t end, random::Pcg64& rng) {
        std::vector<size_t> ones;
        ones.reserve(record_items_);
        for (size_t i = begin; i < end; ++i) {
          out.SetRowBits(i, CutPasteRow(onehot.RowBits(i), cutoff_k_, rho_,
                                        universe_bits_, ones, rng));
        }
      });
  return out;
}

StatusOr<linalg::Matrix> CutPasteScheme::PartialSupportMatrix(
    size_t itemset_length) const {
  const size_t k = itemset_length;
  if (k == 0) return Status::InvalidArgument("itemset length must be >= 1");
  if (k > record_items_) {
    return Status::InvalidArgument(
        "itemset longer than the records' item count");
  }
  const size_t m = record_items_;
  linalg::Matrix q_matrix(k + 1, k + 1);

  // Q[q'][q]: original record holds q of the k itemset items (and m - q
  // other items). Cut z items; s of them hit the itemset (hypergeometric).
  // Kept itemset items: s surely, plus Binomial(q - s, rho) re-pastes of the
  // uncut ones, plus Binomial(k - q, rho) pastes of itemset items the record
  // never had.
  for (size_t q = 0; q <= k; ++q) {
    for (size_t z = 0; z <= std::min(cutoff_k_, m); ++z) {
      const double pz = CutSizeProbability(z);
      if (pz == 0.0) continue;
      for (size_t s = 0; s <= std::min(z, q); ++s) {
        const double hyper = HypergeometricPmf(s, m, q, z);
        if (hyper == 0.0) continue;
        for (size_t a = 0; a + s <= k && a <= q - s; ++a) {
          const double paste_old = BinomialPmf(a, q - s, rho_);
          if (paste_old == 0.0) continue;
          for (size_t c = 0; s + a + c <= k && c <= k - q; ++c) {
            const double paste_new = BinomialPmf(c, k - q, rho_);
            const size_t q_prime = s + a + c;
            q_matrix(q_prime, q) += pz * hyper * paste_old * paste_new;
          }
        }
      }
    }
  }
  return q_matrix;
}

StatusOr<double> CutPasteScheme::ConditionNumberForLength(
    size_t itemset_length) const {
  FRAPP_ASSIGN_OR_RETURN(linalg::Matrix q, PartialSupportMatrix(itemset_length));
  return linalg::SpectralConditionNumber(q);
}

StatusOr<double> CutPasteScheme::EstimateItemsetSupport(
    const data::BooleanTable& perturbed, uint64_t item_mask,
    size_t itemset_length) const {
  const size_t k = itemset_length;
  if (static_cast<size_t>(__builtin_popcountll(item_mask)) != k) {
    return Status::InvalidArgument("item mask popcount disagrees with length");
  }
  linalg::Vector y(k + 1);
  for (size_t i = 0; i < perturbed.num_rows(); ++i) {
    const size_t hits = static_cast<size_t>(
        __builtin_popcountll(perturbed.RowBits(i) & item_mask));
    y[std::min(hits, k)] += 1.0;
  }
  return ReconstructFromHitHistogram(y, perturbed.num_rows(), k);
}

StatusOr<double> CutPasteScheme::ReconstructFromHitHistogram(
    const linalg::Vector& y, size_t num_rows, size_t itemset_length) const {
  const size_t k = itemset_length;
  if (y.size() != k + 1) {
    return Status::InvalidArgument("histogram must have k+1 entries");
  }
  FRAPP_ASSIGN_OR_RETURN(linalg::Matrix q, PartialSupportMatrix(k));

  StatusOr<linalg::Vector> x = linalg::SolveLinearSystem(q, y);
  if (!x.ok()) {
    // Structural limitation of the operator: only the cut overlap (at most K
    // items) carries itemset information through the channel, so Q has rank
    // min(K, k) + 1 and is SINGULAR for k > K. The support of such itemsets
    // is unreconstructible — this is the paper's observation that C&P "does
    // not work after K-length itemsets". Report 0 so mining treats them as
    // not frequent.
    return 0.0;
  }
  const double n = static_cast<double>(num_rows);
  if (n == 0.0) return 0.0;
  return (*x)[k] / n;
}

double CutPasteScheme::RecordAmplification() const {
  const size_t m = record_items_;
  const size_t extra = universe_bits_ - m;  // items outside any record

  // g(q) = P(v's overlap-with-u items are all present | overlap q)
  //      = (1-rho)^(m-q) * sum_z P_z C(q, z) / C(m, z) * rho^(q - z):
  // the cut must land inside the overlap, uncut overlap items re-pasted,
  // u-items outside v dropped.
  const auto g = [&](size_t q) {
    double sum = 0.0;
    for (size_t z = 0; z <= std::min(cutoff_k_, q); ++z) {
      const double pz = CutSizeProbability(z);
      if (pz == 0.0) continue;
      sum += pz * BinomialCoefficient(q, z) / BinomialCoefficient(m, z) *
             std::pow(rho_, static_cast<double>(q - z));
    }
    return sum * std::pow(1.0 - rho_, static_cast<double>(m - q));
  };

  double worst = 1.0;
  for (size_t lv = 0; lv <= universe_bits_; ++lv) {
    // q = |u ^ v| ranges over the combinatorially feasible overlaps.
    const size_t q_min = (lv > extra) ? lv - extra : 0;
    const size_t q_max = std::min(m, lv);
    if (q_min > q_max) continue;
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    for (size_t q = q_min; q <= q_max; ++q) {
      // A(v,u) proportional to g(q) rho^(lv-q) (1-rho)^(extra-(lv-q)).
      const double value = g(q) * std::pow(rho_, static_cast<double>(lv - q)) *
                           std::pow(1.0 - rho_, static_cast<double>(extra - (lv - q)));
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
    if (lo <= 0.0) return std::numeric_limits<double>::infinity();
    worst = std::max(worst, hi / lo);
  }
  return worst;
}

StatusOr<double> CutPasteScheme::CalibrateRho(size_t cutoff_k, size_t record_items,
                                              size_t universe_bits, double gamma) {
  // Amplification decreases in rho (larger rho means noisier pastes), so the
  // accuracy-optimal feasible choice is the SMALLEST rho satisfying the
  // constraint. Grid-scan for the feasibility boundary, then bisect.
  const int kGrid = 199;
  double smallest_feasible = -1.0;
  for (int i = kGrid; i >= 1; --i) {
    const double rho = static_cast<double>(i) / (kGrid + 1);
    StatusOr<CutPasteScheme> scheme =
        Create(cutoff_k, rho, record_items, universe_bits);
    if (!scheme.ok()) continue;
    if (scheme->RecordAmplification() <= gamma) {
      smallest_feasible = rho;
    } else {
      break;  // everything below is infeasible too
    }
  }
  if (smallest_feasible < 0.0) {
    return Status::NotFound("no rho in (0,1) satisfies the gamma constraint");
  }
  double hi = smallest_feasible;                                   // feasible
  double lo = std::max(hi - 1.0 / (kGrid + 1), 1e-9);              // infeasible
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    StatusOr<CutPasteScheme> scheme =
        Create(cutoff_k, mid, record_items, universe_bits);
    if (scheme.ok() && scheme->RecordAmplification() <= gamma) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

StatusOr<double> CutPasteSupportEstimator::EstimateSupport(
    const mining::Itemset& itemset) {
  const size_t k = itemset.size();
  if (k == 0) return Status::InvalidArgument("empty itemset");
  // For k > K the channel is structurally singular (rank min(K, k) + 1):
  // the support is unreconstructible and the solve below would return 0
  // after an exponential 2^k counting pass — the operator's documented
  // "does not work after K-length itemsets" behaviour. Answer 0 up front.
  if (k > scheme_.cutoff_k()) return 0.0;
  if (k > data::BooleanVerticalIndex::kMaxPatternLength) {
    // Only the pathological cutoff_k >= k > 2^k-cap configuration errors.
    return Status::InvalidArgument("itemset too long for 2^k counting");
  }
  // A layout wider than the indexed table can reference bits no row has;
  // such positions contribute zero hits, so the histogram over the in-range
  // positions IS the full histogram (upper buckets stay empty).
  std::vector<size_t> positions;
  positions.reserve(k);
  for (const mining::Item& item : itemset.items()) {
    const size_t pos = layout_.BitPosition(item.attribute, item.category);
    if (pos < source_->num_bits()) positions.push_back(pos);
  }
  FRAPP_ASSIGN_OR_RETURN(const std::vector<int64_t> histogram,
                         source_->HitHistogram(positions));
  linalg::Vector y(k + 1);
  for (size_t j = 0; j < histogram.size(); ++j) {
    y[j] = static_cast<double>(histogram[j]);
  }
  return scheme_.ReconstructFromHitHistogram(y, source_->num_rows(), k);
}

StatusOr<std::vector<double>> CutPasteSupportEstimator::EstimateSupports(
    const std::vector<mining::Itemset>& itemsets) {
  std::vector<double> supports(itemsets.size(), 0.0);
  std::vector<std::vector<size_t>> candidates;
  std::vector<size_t> slots;  // candidates[j] reconstructs itemsets[slots[j]]
  candidates.reserve(itemsets.size());
  slots.reserve(itemsets.size());
  for (size_t i = 0; i < itemsets.size(); ++i) {
    const size_t k = itemsets[i].size();
    if (k == 0) return Status::InvalidArgument("empty itemset");
    if (k > scheme_.cutoff_k()) continue;  // structurally singular: stays 0
    if (k > data::BooleanVerticalIndex::kMaxPatternLength) {
      return Status::InvalidArgument("itemset too long for 2^k counting");
    }
    std::vector<size_t> positions;
    positions.reserve(k);
    for (const mining::Item& item : itemsets[i].items()) {
      const size_t pos = layout_.BitPosition(item.attribute, item.category);
      if (pos < source_->num_bits()) positions.push_back(pos);
    }
    candidates.push_back(std::move(positions));
    slots.push_back(i);
  }
  if (candidates.empty()) return supports;
  FRAPP_ASSIGN_OR_RETURN(const std::vector<std::vector<int64_t>> pattern_counts,
                         source_->PatternCountsBatch(candidates));
  for (size_t c = 0; c < pattern_counts.size(); ++c) {
    const size_t k = itemsets[slots[c]].size();
    const std::vector<int64_t> histogram =
        data::BooleanVerticalIndex::HistogramFromPatternCounts(
            pattern_counts[c], candidates[c].size());
    linalg::Vector y(k + 1);
    for (size_t j = 0; j < histogram.size(); ++j) {
      y[j] = static_cast<double>(histogram[j]);
    }
    FRAPP_ASSIGN_OR_RETURN(supports[slots[c]],
                           scheme_.ReconstructFromHitHistogram(
                               y, source_->num_rows(), k));
  }
  return supports;
}

}  // namespace core
}  // namespace frapp
