// Unified mechanism layer: one object per perturbation technique bundling
// (a) client-side perturbation of a categorical database and (b) the
// miner-side reconstructing support estimator that plugs into Apriori.
// This is the layer the paper's Section 7 experiments exercise with
// DET-GD, RAN-GD, MASK and C&P.

#ifndef FRAPP_CORE_MECHANISM_H_
#define FRAPP_CORE_MECHANISM_H_

#include <memory>
#include <optional>
#include <string>

#include "frapp/common/statusor.h"
#include "frapp/core/cut_paste_scheme.h"
#include "frapp/core/gamma_diagonal.h"
#include "frapp/core/independent_column_scheme.h"
#include "frapp/core/mask_scheme.h"
#include "frapp/core/randomized_gamma.h"
#include "frapp/core/subset_reconstruction.h"
#include "frapp/data/boolean_view.h"
#include "frapp/data/pattern_count_source.h"
#include "frapp/data/sharded_boolean_vertical_index.h"
#include "frapp/data/sharded_table.h"
#include "frapp/data/table.h"
#include "frapp/mining/apriori.h"
#include "frapp/mining/count_source.h"
#include "frapp/mining/sharded_vertical_index.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {

/// A complete privacy-preserving mining mechanism.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Display name ("DET-GD", "RAN-GD", "MASK", "C&P", ...).
  virtual std::string name() const = 0;

  /// Perturbs `original` (client side) and prepares the reconstructing
  /// estimator (miner side). Must be called before estimator().
  virtual Status Prepare(const data::CategoricalTable& original,
                         random::Pcg64& rng) = 0;

  /// The reconstructing support oracle; valid after a successful Prepare.
  virtual mining::SupportEstimator& estimator() = 0;

  /// Condition number of the reconstruction matrix used for itemsets of
  /// length k (Figure 4's quantity). Mechanisms whose per-subset matrices
  /// differ report a representative (geometric mean over subsets).
  virtual StatusOr<double> ConditionNumberForLength(size_t length) const = 0;

  /// Record-level amplification actually delivered (<= the configured gamma).
  virtual double Amplification() const = 0;

  // --- Shard streaming (the frapp/pipeline contract) ----------------------
  //
  // FRAPP's perturbation is per-record and every reconstruction input is a
  // row-partitionable count, so ALL mechanisms stream chunk-aligned row
  // shards through perturb -> index -> count with bit-identical results to
  // the monolithic seeded pass. A mechanism declares which perturbed
  // representation it streams: categorical rows indexed by
  // mining::VerticalIndex (DET-GD, RAN-GD, IND-GD) or one-hot boolean rows
  // indexed by data::BooleanVerticalIndex (MASK, C&P). The pipeline calls
  // the matching PerturbShard*/MakeSharded*Estimator pair; there is no
  // monolithic fallback.

  /// Representation of a perturbed shard in the streaming pipeline.
  enum class ShardKind { kCategorical, kBoolean };

  /// True when the matching PerturbShard*/MakeSharded*Estimator pair is
  /// implemented. Every mechanism in this library streams; the default
  /// remains false so out-of-tree mechanisms fail loudly in the pipeline
  /// rather than silently mis-streaming.
  virtual bool SupportsShardStreaming() const { return false; }

  /// Which representation the pipeline should stream for this mechanism.
  virtual ShardKind shard_kind() const { return ShardKind::kCategorical; }

  /// Client side of one categorical shard: perturbs the rows of `shard`
  /// under the seeded-chunk determinism contract (global chunk indexing via
  /// shard.global_begin, so any chunk-aligned partition concatenates to the
  /// monolithic seeded output). Only for shard_kind() == kCategorical.
  virtual StatusOr<data::CategoricalTable> PerturbShard(
      const data::ShardView& shard, uint64_t seed, size_t num_threads);

  /// Client side of one boolean shard: one-hot encodes the shard's rows and
  /// perturbs the bits under the same contract. Only for shard_kind() ==
  /// kBoolean.
  virtual StatusOr<data::BooleanTable> PerturbBooleanShard(
      const data::ShardView& shard, uint64_t seed, size_t num_threads);

  /// Miner side over the merged per-shard indexes of the perturbed
  /// categorical shards; `num_threads` parallelizes each candidate-counting
  /// pass. The default wraps the index in a LocalSupportCountSource and
  /// delegates to MakeCountSourceEstimator — counting locality is not the
  /// mechanism's concern.
  virtual StatusOr<std::unique_ptr<mining::SupportEstimator>>
  MakeShardedEstimator(mining::ShardedVerticalIndex index, size_t num_threads);

  /// Miner side over the merged per-shard boolean indexes of the perturbed
  /// boolean shards. Default delegates to MakeBooleanCountSourceEstimator
  /// over a LocalPatternCountSource.
  virtual StatusOr<std::unique_ptr<mining::SupportEstimator>>
  MakeShardedBooleanEstimator(data::ShardedBooleanVerticalIndex index,
                              size_t num_threads);

  /// Miner side over an ABSTRACT count source: the mechanism's
  /// reconstruction fed by total integer count vectors, wherever they come
  /// from — a local sharded index or a frapp/dist coordinator merging
  /// per-worker vectors. Because reconstruction consumes only the totals,
  /// the result is bit-identical across those placements. Only for
  /// shard_kind() == kCategorical.
  virtual StatusOr<std::unique_ptr<mining::SupportEstimator>>
  MakeCountSourceEstimator(std::shared_ptr<mining::SupportCountSource> source);

  /// Boolean counterpart (pattern-count vectors). Only for shard_kind() ==
  /// kBoolean.
  virtual StatusOr<std::unique_ptr<mining::SupportEstimator>>
  MakeBooleanCountSourceEstimator(
      std::shared_ptr<data::PatternCountSource> source);
};

/// DET-GD: deterministic gamma-diagonal matrix (paper Sections 3, 5, 6).
class DetGdMechanism : public Mechanism {
 public:
  static StatusOr<std::unique_ptr<DetGdMechanism>> Create(
      const data::CategoricalSchema& schema, double gamma);

  std::string name() const override { return "DET-GD"; }
  Status Prepare(const data::CategoricalTable& original,
                 random::Pcg64& rng) override;
  mining::SupportEstimator& estimator() override;
  StatusOr<double> ConditionNumberForLength(size_t length) const override;
  double Amplification() const override { return gamma_; }

  bool SupportsShardStreaming() const override { return true; }
  StatusOr<data::CategoricalTable> PerturbShard(
      const data::ShardView& shard, uint64_t seed, size_t num_threads) override;
  StatusOr<std::unique_ptr<mining::SupportEstimator>> MakeCountSourceEstimator(
      std::shared_ptr<mining::SupportCountSource> source) override;

  /// The perturbed database (valid after Prepare; exposed for examples).
  const data::CategoricalTable& perturbed() const { return *perturbed_; }

 private:
  DetGdMechanism(data::CategoricalSchema schema, double gamma,
                 GammaDiagonalPerturber perturber, GammaSubsetReconstructor rec)
      : schema_(std::move(schema)),
        gamma_(gamma),
        perturber_(std::move(perturber)),
        reconstructor_(std::move(rec)) {}

  data::CategoricalSchema schema_;
  double gamma_;
  GammaDiagonalPerturber perturber_;
  GammaSubsetReconstructor reconstructor_;
  std::optional<data::CategoricalTable> perturbed_;
  std::unique_ptr<mining::SupportEstimator> estimator_;
};

/// RAN-GD: randomized gamma-diagonal matrix (paper Section 4). Identical
/// miner side to DET-GD (reconstruction uses the expected matrix).
class RanGdMechanism : public Mechanism {
 public:
  static StatusOr<std::unique_ptr<RanGdMechanism>> Create(
      const data::CategoricalSchema& schema, double gamma, double alpha,
      random::RandomizationKind kind = random::RandomizationKind::kUniform);

  std::string name() const override { return "RAN-GD"; }
  Status Prepare(const data::CategoricalTable& original,
                 random::Pcg64& rng) override;
  mining::SupportEstimator& estimator() override;
  StatusOr<double> ConditionNumberForLength(size_t length) const override;
  double Amplification() const override;

  bool SupportsShardStreaming() const override { return true; }
  StatusOr<data::CategoricalTable> PerturbShard(
      const data::ShardView& shard, uint64_t seed, size_t num_threads) override;
  StatusOr<std::unique_ptr<mining::SupportEstimator>> MakeCountSourceEstimator(
      std::shared_ptr<mining::SupportCountSource> source) override;

  const RandomizedGammaPerturber& perturber() const { return perturber_; }

 private:
  RanGdMechanism(data::CategoricalSchema schema, double gamma,
                 RandomizedGammaPerturber perturber, GammaSubsetReconstructor rec)
      : schema_(std::move(schema)),
        gamma_(gamma),
        perturber_(std::move(perturber)),
        reconstructor_(std::move(rec)) {}

  data::CategoricalSchema schema_;
  double gamma_;
  RandomizedGammaPerturber perturber_;
  GammaSubsetReconstructor reconstructor_;
  std::optional<data::CategoricalTable> perturbed_;
  std::unique_ptr<mining::SupportEstimator> estimator_;
};

/// MASK baseline (paper Section 7): boolean bit-flips + tensor inversion.
class MaskMechanism : public Mechanism {
 public:
  /// Calibrates p to the gamma constraint for the schema's attribute count.
  static StatusOr<std::unique_ptr<MaskMechanism>> Create(
      const data::CategoricalSchema& schema, double gamma);

  std::string name() const override { return "MASK"; }
  Status Prepare(const data::CategoricalTable& original,
                 random::Pcg64& rng) override;
  mining::SupportEstimator& estimator() override;
  StatusOr<double> ConditionNumberForLength(size_t length) const override;
  double Amplification() const override;

  bool SupportsShardStreaming() const override { return true; }
  ShardKind shard_kind() const override { return ShardKind::kBoolean; }
  StatusOr<data::BooleanTable> PerturbBooleanShard(
      const data::ShardView& shard, uint64_t seed, size_t num_threads) override;
  StatusOr<std::unique_ptr<mining::SupportEstimator>>
  MakeBooleanCountSourceEstimator(
      std::shared_ptr<data::PatternCountSource> source) override;

  const MaskScheme& scheme() const { return scheme_; }

 private:
  MaskMechanism(data::CategoricalSchema schema, MaskScheme scheme)
      : schema_(std::move(schema)),
        scheme_(scheme),
        layout_(schema_) {}

  data::CategoricalSchema schema_;
  MaskScheme scheme_;
  data::BooleanLayout layout_;
  std::unique_ptr<mining::SupportEstimator> estimator_;
};

/// Cut-and-Paste baseline (paper Section 7: K = 3, rho = 0.494).
class CutPasteMechanism : public Mechanism {
 public:
  static StatusOr<std::unique_ptr<CutPasteMechanism>> Create(
      const data::CategoricalSchema& schema, size_t cutoff_k, double rho);

  std::string name() const override { return "C&P"; }
  Status Prepare(const data::CategoricalTable& original,
                 random::Pcg64& rng) override;
  mining::SupportEstimator& estimator() override;
  StatusOr<double> ConditionNumberForLength(size_t length) const override;
  double Amplification() const override;

  bool SupportsShardStreaming() const override { return true; }
  ShardKind shard_kind() const override { return ShardKind::kBoolean; }
  StatusOr<data::BooleanTable> PerturbBooleanShard(
      const data::ShardView& shard, uint64_t seed, size_t num_threads) override;
  StatusOr<std::unique_ptr<mining::SupportEstimator>>
  MakeBooleanCountSourceEstimator(
      std::shared_ptr<data::PatternCountSource> source) override;

  const CutPasteScheme& scheme() const { return scheme_; }

 private:
  CutPasteMechanism(data::CategoricalSchema schema, CutPasteScheme scheme)
      : schema_(std::move(schema)),
        scheme_(std::move(scheme)),
        layout_(schema_) {}

  data::CategoricalSchema schema_;
  CutPasteScheme scheme_;
  data::BooleanLayout layout_;
  std::unique_ptr<mining::SupportEstimator> estimator_;
};

/// Independent-column gamma ablation (see independent_column_scheme.h).
class IndependentColumnMechanism : public Mechanism {
 public:
  static StatusOr<std::unique_ptr<IndependentColumnMechanism>> Create(
      const data::CategoricalSchema& schema, double gamma);

  std::string name() const override { return "IND-GD"; }
  Status Prepare(const data::CategoricalTable& original,
                 random::Pcg64& rng) override;
  mining::SupportEstimator& estimator() override;
  StatusOr<double> ConditionNumberForLength(size_t length) const override;
  double Amplification() const override;

  bool SupportsShardStreaming() const override { return true; }
  StatusOr<data::CategoricalTable> PerturbShard(
      const data::ShardView& shard, uint64_t seed, size_t num_threads) override;
  StatusOr<std::unique_ptr<mining::SupportEstimator>> MakeCountSourceEstimator(
      std::shared_ptr<mining::SupportCountSource> source) override;

 private:
  IndependentColumnMechanism(data::CategoricalSchema schema,
                             IndependentColumnScheme scheme)
      : schema_(std::move(schema)), scheme_(std::move(scheme)) {}

  data::CategoricalSchema schema_;
  IndependentColumnScheme scheme_;
  std::unique_ptr<mining::SupportEstimator> estimator_;
};

/// Support oracle shared by DET-GD and RAN-GD: counts the candidate's
/// support in the perturbed categorical database and applies the Eq. 28
/// closed-form inverse. Counting runs over an abstract SupportCountSource
/// (local sharded bitmap index, or a frapp/dist coordinator's merged remote
/// vectors); the inverse needs only the TOTAL perturbed count, so the
/// reconstructed supports are bit-identical for every shard, thread and
/// worker count. `use_vertical_index = false` keeps the scalar row scan, as
/// a benchmark baseline.
class GammaSupportEstimator : public mining::SupportEstimator {
 public:
  /// Monolithic construction: builds a one-shard index over `perturbed`
  /// (which must outlive the estimator).
  GammaSupportEstimator(const data::CategoricalSchema& schema,
                        GammaSubsetReconstructor reconstructor,
                        const data::CategoricalTable& perturbed,
                        bool use_vertical_index = true)
      : schema_(schema),
        reconstructor_(std::move(reconstructor)),
        perturbed_(&perturbed) {
    if (use_vertical_index) {
      source_ = std::make_shared<mining::LocalSupportCountSource>(
          mining::ShardedVerticalIndex::Build(perturbed, /*num_shards=*/1));
    }
  }

  /// Pipeline construction: owns pre-built per-shard indexes of the
  /// perturbed shards; no perturbed rows are retained. `num_threads`
  /// parallelizes each candidate-counting pass (0 = hardware concurrency).
  GammaSupportEstimator(const data::CategoricalSchema& schema,
                        GammaSubsetReconstructor reconstructor,
                        mining::ShardedVerticalIndex index, size_t num_threads)
      : schema_(schema),
        reconstructor_(std::move(reconstructor)),
        source_(std::make_shared<mining::LocalSupportCountSource>(
            std::move(index), num_threads)) {}

  /// Count-source construction: reconstruction over whatever produces the
  /// total counts (the frapp/dist coordinator path).
  GammaSupportEstimator(const data::CategoricalSchema& schema,
                        GammaSubsetReconstructor reconstructor,
                        std::shared_ptr<mining::SupportCountSource> source)
      : schema_(schema),
        reconstructor_(std::move(reconstructor)),
        source_(std::move(source)) {}

  StatusOr<double> EstimateSupport(const mining::Itemset& itemset) override;
  StatusOr<std::vector<double>> EstimateSupports(
      const std::vector<mining::Itemset>& itemsets) override;

 private:
  const data::CategoricalSchema& schema_;
  GammaSubsetReconstructor reconstructor_;
  const data::CategoricalTable* perturbed_ = nullptr;  // scalar fallback only
  std::shared_ptr<mining::SupportCountSource> source_;
};

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_MECHANISM_H_
