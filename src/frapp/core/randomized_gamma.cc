#include "frapp/core/randomized_gamma.h"

#include <algorithm>

#include "frapp/common/parallel.h"
#include "frapp/core/seeded_chunking.h"

namespace frapp {
namespace core {

using internal::ChunkRng;
using internal::ColumnPointers;
using internal::kPerturbChunkRows;

StatusOr<RandomizedGammaPerturber> RandomizedGammaPerturber::Create(
    const data::CategoricalSchema& schema, double gamma, double alpha,
    random::RandomizationKind kind) {
  FRAPP_ASSIGN_OR_RETURN(GammaDiagonalMatrix matrix,
                         GammaDiagonalMatrix::Create(gamma, schema.DomainSize()));
  if (alpha < 0.0 || alpha > matrix.DiagonalValue() + 1e-15) {
    return Status::InvalidArgument(
        "alpha must lie in [0, gamma*x]; gamma*x = " +
        std::to_string(matrix.DiagonalValue()));
  }
  // Realizations must keep entries non-negative: off-diagonal
  // x - r/(n-1) >= 0 requires alpha <= (n-1) x, which holds automatically
  // whenever gamma <= n - 1; guard the unusual tiny-domain case.
  const double n = static_cast<double>(matrix.domain_size());
  if (alpha > (n - 1.0) * matrix.x() + 1e-15) {
    return Status::InvalidArgument(
        "alpha would make off-diagonal entries negative for this domain");
  }
  std::vector<size_t> cardinalities(schema.num_attributes());
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    cardinalities[j] = schema.Cardinality(j);
  }
  FRAPP_ASSIGN_OR_RETURN(
      GammaPerturbPlan plan,
      GammaPerturbPlan::Create(std::move(cardinalities), schema.DomainSize()));
  return RandomizedGammaPerturber(std::move(matrix), std::move(plan), alpha,
                                  kind);
}

void RandomizedGammaPerturber::PerturbRow(const uint8_t* const* in_cols,
                                          uint8_t* const* out_cols, size_t i,
                                          random::Pcg64& rng) const {
  // This client's private matrix realization: E[diagonal] = gamma x.
  const double r = random::SampleRandomizationParameter(kind_, alpha_, rng);
  const double d = matrix_.DiagonalValue() + r;
  const double o =
      matrix_.OffDiagonalValue() -
      r / (static_cast<double>(matrix_.domain_size()) - 1.0);
  plan_.FillRow(plan_.SampleDivergenceColumn(d, o, rng), in_cols, out_cols, i,
                rng);
}

StatusOr<data::CategoricalTable> RandomizedGammaPerturber::Perturb(
    const data::CategoricalTable& table, random::Pcg64& rng) const {
  if (table.num_attributes() != plan_.num_attributes()) {
    return Status::InvalidArgument("table schema does not match perturber");
  }
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable out,
                         data::CategoricalTable::Create(table.schema()));
  out.AppendZeroRows(table.num_rows());
  ColumnPointers cols(table, &out);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    PerturbRow(cols.in.data(), cols.out.data(), i, rng);
  }
  return out;
}

StatusOr<data::CategoricalTable> RandomizedGammaPerturber::PerturbSeeded(
    const data::CategoricalTable& table, uint64_t seed,
    size_t num_threads) const {
  return PerturbShardSeeded(table, data::RowRange{0, table.num_rows()}, seed,
                            num_threads);
}

StatusOr<data::CategoricalTable> RandomizedGammaPerturber::PerturbShardSeeded(
    const data::CategoricalTable& table, const data::RowRange& range,
    uint64_t seed, size_t num_threads) const {
  FRAPP_RETURN_IF_ERROR(internal::ValidateShardRange(range, table.num_rows()));
  return PerturbShardSeeded(data::ShardView{&table, range, range.begin}, seed,
                            num_threads);
}

StatusOr<data::CategoricalTable> RandomizedGammaPerturber::PerturbShardSeeded(
    const data::ShardView& shard, uint64_t seed, size_t num_threads) const {
  FRAPP_RETURN_IF_ERROR(internal::ValidateShardView(shard));
  const data::CategoricalTable& table = *shard.rows;
  if (table.num_attributes() != plan_.num_attributes()) {
    return Status::InvalidArgument("table schema does not match perturber");
  }
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable out,
                         data::CategoricalTable::Create(table.schema()));
  out.AppendZeroRows(shard.size());
  ColumnPointers cols(table, &out, shard.local.begin);
  internal::ForEachSeededChunk(
      shard.size(), shard.global_begin, seed, num_threads,
      [&](size_t begin, size_t end, random::Pcg64& rng) {
        for (size_t i = begin; i < end; ++i) {
          PerturbRow(cols.in.data(), cols.out.data(), i, rng);
        }
      });
  return out;
}

}  // namespace core
}  // namespace frapp
