#include "frapp/core/randomized_gamma.h"

namespace frapp {
namespace core {

StatusOr<RandomizedGammaPerturber> RandomizedGammaPerturber::Create(
    const data::CategoricalSchema& schema, double gamma, double alpha,
    random::RandomizationKind kind) {
  FRAPP_ASSIGN_OR_RETURN(GammaDiagonalMatrix matrix,
                         GammaDiagonalMatrix::Create(gamma, schema.DomainSize()));
  if (alpha < 0.0 || alpha > matrix.DiagonalValue() + 1e-15) {
    return Status::InvalidArgument(
        "alpha must lie in [0, gamma*x]; gamma*x = " +
        std::to_string(matrix.DiagonalValue()));
  }
  // Realizations must keep entries non-negative: off-diagonal
  // x - r/(n-1) >= 0 requires alpha <= (n-1) x, which holds automatically
  // whenever gamma <= n - 1; guard the unusual tiny-domain case.
  const double n = static_cast<double>(matrix.domain_size());
  if (alpha > (n - 1.0) * matrix.x() + 1e-15) {
    return Status::InvalidArgument(
        "alpha would make off-diagonal entries negative for this domain");
  }
  std::vector<size_t> cardinalities(schema.num_attributes());
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    cardinalities[j] = schema.Cardinality(j);
  }
  return RandomizedGammaPerturber(std::move(matrix), std::move(cardinalities), alpha,
                                  kind);
}

StatusOr<data::CategoricalTable> RandomizedGammaPerturber::Perturb(
    const data::CategoricalTable& table, random::Pcg64& rng) const {
  if (table.num_attributes() != cardinalities_.size()) {
    return Status::InvalidArgument("table schema does not match perturber");
  }
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable out,
                         data::CategoricalTable::Create(table.schema()));
  out.Reserve(table.num_rows());
  const uint64_t n = matrix_.domain_size();
  const double n_minus_1 = static_cast<double>(n) - 1.0;

  std::vector<uint8_t> record(cardinalities_.size());
  std::vector<uint8_t> perturbed(cardinalities_.size());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    // This client's private matrix realization: E[diagonal] = gamma x.
    const double r = random::SampleRandomizationParameter(kind_, alpha_, rng);
    const double d = matrix_.DiagonalValue() + r;
    const double o = matrix_.OffDiagonalValue() - r / n_minus_1;

    for (size_t j = 0; j < cardinalities_.size(); ++j) {
      record[j] = table.Value(i, j);
    }
    PerturbRecordDiagonalForm(record, cardinalities_, n, d, o, rng, &perturbed);
    FRAPP_RETURN_IF_ERROR(out.AppendRow(perturbed));
  }
  return out;
}

}  // namespace core
}  // namespace frapp
