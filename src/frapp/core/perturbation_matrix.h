// The FRAPP perturbation-matrix abstraction (paper Section 2).
//
// A perturbation method is a Markov transition matrix A with
// A[v][u] = p(u -> v) over the record domain I_U: columns sum to one and
// entries are non-negative (Eq. 1). Prior techniques (MASK, Cut-and-Paste)
// are particular parameterized choices of A; FRAPP designs A directly.

#ifndef FRAPP_CORE_PERTURBATION_MATRIX_H_
#define FRAPP_CORE_PERTURBATION_MATRIX_H_

#include <cstdint>
#include <memory>
#include <string>

#include "frapp/common/statusor.h"
#include "frapp/linalg/matrix.h"

namespace frapp {
namespace core {

/// Abstract record-domain transition matrix. Implementations may be dense
/// (explicit entries) or structured (closed-form entries).
class PerturbationMatrix {
 public:
  virtual ~PerturbationMatrix() = default;

  /// Domain size |S_U| (= |S_V|; FRAPP's schemes perturb within the domain).
  virtual uint64_t domain_size() const = 0;

  /// A_vu = p(u -> v).
  virtual double Entry(uint64_t v, uint64_t u) const = 0;

  /// Condition number of the matrix (drives the reconstruction error bound,
  /// paper Theorem 1). The default materializes the dense matrix; structured
  /// implementations override with closed forms.
  virtual StatusOr<double> ConditionNumber() const;

  /// Amplification max_v max_{u1,u2} A_vu1 / A_vu2 (the quantity the privacy
  /// constraint Eq. 2 bounds by gamma). Default: dense scan.
  virtual double Amplification() const;

  /// Materializes the dense matrix. Only valid for modest domains; callers
  /// must check domain_size() first.
  linalg::Matrix ToDense() const;

  /// Human-readable mechanism name for reports.
  virtual std::string Name() const = 0;
};

/// Dense perturbation matrix with explicit entries; validates the Markov
/// property on construction.
class DensePerturbationMatrix : public PerturbationMatrix {
 public:
  /// Fails unless `a` is square, column-stochastic and non-negative.
  static StatusOr<DensePerturbationMatrix> Create(linalg::Matrix a,
                                                  std::string name = "dense");

  uint64_t domain_size() const override { return matrix_.rows(); }
  double Entry(uint64_t v, uint64_t u) const override {
    return matrix_(static_cast<size_t>(v), static_cast<size_t>(u));
  }
  StatusOr<double> ConditionNumber() const override;
  double Amplification() const override;
  std::string Name() const override { return name_; }

  const linalg::Matrix& matrix() const { return matrix_; }

 private:
  DensePerturbationMatrix(linalg::Matrix a, std::string name)
      : matrix_(std::move(a)), name_(std::move(name)) {}

  linalg::Matrix matrix_;
  std::string name_;
};

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_PERTURBATION_MATRIX_H_
