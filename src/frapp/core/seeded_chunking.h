// Shared machinery for deterministic seeded bulk perturbation.
//
// Both gamma perturbers split rows into fixed-size chunks whose RNG stream
// is a pure function of (master seed, chunk index). The chunk size and the
// stream derivation ARE the determinism contract — one definition here so
// the perturbers can never drift apart.

#ifndef FRAPP_CORE_SEEDED_CHUNKING_H_
#define FRAPP_CORE_SEEDED_CHUNKING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "frapp/common/parallel.h"
#include "frapp/common/status.h"
#include "frapp/data/sharded_table.h"
#include "frapp/data/table.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {
namespace internal {

/// Fixed chunk size for seeded perturbation: chunk boundaries (and the RNG
/// stream of each chunk) depend only on the row count and master seed, never
/// on the thread count, which makes the output thread-count-invariant.
/// Aliases the shard alignment quantum so that chunk-aligned shards (see
/// data/sharded_table.h) perturb bit-identically to the monolithic pass.
inline constexpr size_t kPerturbChunkRows = data::kShardAlignmentRows;

/// Validates that `range` can be perturbed as a standalone shard under the
/// seeded-chunk contract: it must start on a chunk boundary and end on one
/// (or at the end of the table), so that its local chunk grid coincides with
/// the monolithic chunk grid.
inline Status ValidateShardRange(const data::RowRange& range, size_t num_rows) {
  if (range.begin > range.end || range.end > num_rows) {
    return Status::OutOfRange("shard range exceeds table");
  }
  if (range.begin % kPerturbChunkRows != 0 ||
      (range.end % kPerturbChunkRows != 0 && range.end != num_rows)) {
    return Status::InvalidArgument(
        "shard range is not aligned to the seeded chunk quantum");
  }
  return Status::OK();
}

/// Validates a streaming shard view against the seeded-chunk contract: the
/// local range must lie within its buffer table and the GLOBAL position must
/// start on a chunk boundary. The view's size need not be a chunk multiple —
/// a stream's final shard may end mid-chunk — but every non-final shard must
/// be one for its successor to land back on the chunk grid (only the
/// producing TableSource can know which shard is last, so that half of the
/// contract is the producer's to uphold).
inline Status ValidateShardView(const data::ShardView& view) {
  if (view.rows == nullptr) return Status::InvalidArgument("null shard view");
  if (view.local.begin > view.local.end ||
      view.local.end > view.rows->num_rows()) {
    return Status::OutOfRange("shard view exceeds its buffer table");
  }
  if (view.global_begin % kPerturbChunkRows != 0) {
    return Status::InvalidArgument(
        "shard view does not start on a seeded chunk boundary");
  }
  return Status::OK();
}

/// Independent per-chunk generator: distinct PCG streams, seed mixed with
/// the chunk index so neighbouring chunks share nothing.
inline random::Pcg64 ChunkRng(uint64_t seed, size_t chunk) {
  return random::Pcg64(seed ^ (0x9e3779b97f4a7c15ULL * (chunk + 1)),
                       /*stream=*/2 * chunk + 1);
}

/// The one seeded-chunk dispatch loop every bulk perturber runs: splits
/// `num_rows` local rows into the global chunk grid anchored at
/// `global_begin` (a chunk-boundary multiple) and calls
/// fn(local_begin, local_end, rng) per chunk with that chunk's OWN stream —
/// ChunkRng(seed, global chunk index) — on up to `num_threads` workers.
/// This loop IS the determinism contract (chunk boundaries and streams are
/// pure functions of the global grid, never of the thread count); keeping
/// it here, defined once, is what guarantees the perturbers can never
/// disagree on it.
template <typename Fn>
void ForEachSeededChunk(size_t num_rows, size_t global_begin, uint64_t seed,
                        size_t num_threads, Fn&& fn) {
  const size_t first_chunk = global_begin / kPerturbChunkRows;
  common::ParallelForChunks(
      common::NumChunks(num_rows, kPerturbChunkRows), num_threads,
      [&](size_t c) {
        random::Pcg64 rng = ChunkRng(seed, first_chunk + c);
        const size_t begin = c * kPerturbChunkRows;
        const size_t end = std::min(num_rows, begin + kPerturbChunkRows);
        fn(begin, end, rng);
      });
}

/// Gathers the raw column pointers of both tables once per bulk call.
/// `in_row_offset` shifts the input pointers so that a shard output table
/// (local row i) reads from input row `in_row_offset + i`.
struct ColumnPointers {
  std::vector<const uint8_t*> in;
  std::vector<uint8_t*> out;

  ColumnPointers(const data::CategoricalTable& input,
                 data::CategoricalTable* output, size_t in_row_offset = 0) {
    const size_t m = input.num_attributes();
    in.resize(m);
    out.resize(m);
    for (size_t j = 0; j < m; ++j) {
      in[j] = input.Column(j).data() + in_row_offset;
      out[j] = output->MutableColumnData(j);
    }
  }
};

}  // namespace internal
}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_SEEDED_CHUNKING_H_
