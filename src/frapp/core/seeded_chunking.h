// Shared machinery for deterministic seeded bulk perturbation.
//
// Both gamma perturbers split rows into fixed-size chunks whose RNG stream
// is a pure function of (master seed, chunk index). The chunk size and the
// stream derivation ARE the determinism contract — one definition here so
// the perturbers can never drift apart.

#ifndef FRAPP_CORE_SEEDED_CHUNKING_H_
#define FRAPP_CORE_SEEDED_CHUNKING_H_

#include <cstdint>
#include <vector>

#include "frapp/common/status.h"
#include "frapp/data/sharded_table.h"
#include "frapp/data/table.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {
namespace internal {

/// Fixed chunk size for seeded perturbation: chunk boundaries (and the RNG
/// stream of each chunk) depend only on the row count and master seed, never
/// on the thread count, which makes the output thread-count-invariant.
/// Aliases the shard alignment quantum so that chunk-aligned shards (see
/// data/sharded_table.h) perturb bit-identically to the monolithic pass.
inline constexpr size_t kPerturbChunkRows = data::kShardAlignmentRows;

/// Validates that `range` can be perturbed as a standalone shard under the
/// seeded-chunk contract: it must start on a chunk boundary and end on one
/// (or at the end of the table), so that its local chunk grid coincides with
/// the monolithic chunk grid.
inline Status ValidateShardRange(const data::RowRange& range, size_t num_rows) {
  if (range.begin > range.end || range.end > num_rows) {
    return Status::OutOfRange("shard range exceeds table");
  }
  if (range.begin % kPerturbChunkRows != 0 ||
      (range.end % kPerturbChunkRows != 0 && range.end != num_rows)) {
    return Status::InvalidArgument(
        "shard range is not aligned to the seeded chunk quantum");
  }
  return Status::OK();
}

/// Independent per-chunk generator: distinct PCG streams, seed mixed with
/// the chunk index so neighbouring chunks share nothing.
inline random::Pcg64 ChunkRng(uint64_t seed, size_t chunk) {
  return random::Pcg64(seed ^ (0x9e3779b97f4a7c15ULL * (chunk + 1)),
                       /*stream=*/2 * chunk + 1);
}

/// Gathers the raw column pointers of both tables once per bulk call.
/// `in_row_offset` shifts the input pointers so that a shard output table
/// (local row i) reads from input row `in_row_offset + i`.
struct ColumnPointers {
  std::vector<const uint8_t*> in;
  std::vector<uint8_t*> out;

  ColumnPointers(const data::CategoricalTable& input,
                 data::CategoricalTable* output, size_t in_row_offset = 0) {
    const size_t m = input.num_attributes();
    in.resize(m);
    out.resize(m);
    for (size_t j = 0; j < m; ++j) {
      in[j] = input.Column(j).data() + in_row_offset;
      out[j] = output->MutableColumnData(j);
    }
  }
};

}  // namespace internal
}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_SEEDED_CHUNKING_H_
