// Shared machinery for deterministic seeded bulk perturbation.
//
// Both gamma perturbers split rows into fixed-size chunks whose RNG stream
// is a pure function of (master seed, chunk index). The chunk size and the
// stream derivation ARE the determinism contract — one definition here so
// the perturbers can never drift apart.

#ifndef FRAPP_CORE_SEEDED_CHUNKING_H_
#define FRAPP_CORE_SEEDED_CHUNKING_H_

#include <cstdint>
#include <vector>

#include "frapp/data/table.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {
namespace internal {

/// Fixed chunk size for seeded perturbation: chunk boundaries (and the RNG
/// stream of each chunk) depend only on the row count and master seed, never
/// on the thread count, which makes the output thread-count-invariant.
inline constexpr size_t kPerturbChunkRows = 8192;

/// Independent per-chunk generator: distinct PCG streams, seed mixed with
/// the chunk index so neighbouring chunks share nothing.
inline random::Pcg64 ChunkRng(uint64_t seed, size_t chunk) {
  return random::Pcg64(seed ^ (0x9e3779b97f4a7c15ULL * (chunk + 1)),
                       /*stream=*/2 * chunk + 1);
}

/// Gathers the raw column pointers of both tables once per bulk call.
struct ColumnPointers {
  std::vector<const uint8_t*> in;
  std::vector<uint8_t*> out;

  ColumnPointers(const data::CategoricalTable& input,
                 data::CategoricalTable* output) {
    const size_t m = input.num_attributes();
    in.resize(m);
    out.resize(m);
    for (size_t j = 0; j < m; ++j) {
      in[j] = input.Column(j).data();
      out[j] = output->MutableColumnData(j);
    }
  }
};

}  // namespace internal
}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_SEEDED_CHUNKING_H_
