#include "frapp/core/error_analysis.h"

#include <cmath>

namespace frapp {
namespace core {

double PoissonBinomialVariance(const std::vector<double>& probabilities) {
  double var = 0.0;
  for (double p : probabilities) var += p * (1.0 - p);
  return var;
}

double GammaPerturbedCountVariance(const GammaDiagonalMatrix& matrix, double x_v,
                                   double num_records) {
  const double d = matrix.DiagonalValue();
  const double o = matrix.OffDiagonalValue();
  return x_v * d * (1.0 - d) + (num_records - x_v) * o * (1.0 - o);
}

StatusOr<double> ReconstructedSupportStddev(const GammaSubsetReconstructor& rec,
                                            double true_support,
                                            uint64_t subset_domain_size,
                                            size_t num_records) {
  if (!(true_support >= 0.0) || true_support > 1.0) {
    return Status::InvalidArgument("true support must be in [0, 1]");
  }
  if (num_records == 0) {
    return Status::InvalidArgument("need at least one record");
  }
  FRAPP_ASSIGN_OR_RETURN(linalg::UniformMixtureMatrix subset,
                         rec.SubsetMatrix(subset_domain_size));
  const double d = subset.DiagonalValue();
  const double o = subset.OffDiagonalValue();
  const double per_record_var =
      true_support * d * (1.0 - d) + (1.0 - true_support) * o * (1.0 - o);
  const double denom = (rec.gamma() - 1.0) * rec.x();
  return std::sqrt(per_record_var / static_cast<double>(num_records)) / denom;
}

StatusOr<double> PredictedRelativeReconstructionError(
    const GammaDiagonalMatrix& matrix, const linalg::Vector& original_histogram) {
  if (original_histogram.size() != matrix.domain_size()) {
    return Status::InvalidArgument("histogram dimension mismatch");
  }
  const double n = original_histogram.Sum();
  if (!(n > 0.0)) return Status::InvalidArgument("empty histogram");

  // E(Y) = A X in closed form; sum_v Var(Y_v) from Eq. 10.
  const double d = matrix.DiagonalValue();
  const double o = matrix.OffDiagonalValue();
  double expected_norm_sq = 0.0;
  double total_variance = 0.0;
  for (size_t v = 0; v < original_histogram.size(); ++v) {
    const double x_v = original_histogram[v];
    const double mean_v = (d - o) * x_v + o * n;
    expected_norm_sq += mean_v * mean_v;
    total_variance += GammaPerturbedCountVariance(matrix, x_v, n);
  }
  FRAPP_ASSIGN_OR_RETURN(double cond, matrix.ConditionNumber());
  return cond * std::sqrt(total_variance) / std::sqrt(expected_norm_sq);
}

StatusOr<double> RequiredRecordsForSeparation(const GammaSubsetReconstructor& rec,
                                              double true_support,
                                              double min_support,
                                              uint64_t subset_domain_size,
                                              double z_score) {
  if (true_support == min_support) {
    return Status::InvalidArgument(
        "support equals the threshold; no sample size separates them");
  }
  if (!(z_score > 0.0)) {
    return Status::InvalidArgument("z_score must be positive");
  }
  // sigma(N) = sigma(1) / sqrt(N); require |s - threshold| >= z * sigma(N).
  FRAPP_ASSIGN_OR_RETURN(
      double sigma_one,
      ReconstructedSupportStddev(rec, true_support, subset_domain_size, 1));
  const double gap = std::fabs(true_support - min_support);
  const double required = (z_score * sigma_one / gap) * (z_score * sigma_one / gap);
  return required;
}

}  // namespace core
}  // namespace frapp
