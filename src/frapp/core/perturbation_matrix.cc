#include "frapp/core/perturbation_matrix.h"

#include "frapp/core/privacy.h"
#include "frapp/linalg/condition.h"

namespace frapp {
namespace core {

StatusOr<double> PerturbationMatrix::ConditionNumber() const {
  return linalg::ConditionNumber(ToDense());
}

double PerturbationMatrix::Amplification() const {
  return MatrixAmplification(ToDense());
}

linalg::Matrix PerturbationMatrix::ToDense() const {
  const uint64_t n = domain_size();
  FRAPP_CHECK_LE(n, 1u << 14) << "refusing to materialize a huge matrix";
  linalg::Matrix out(static_cast<size_t>(n), static_cast<size_t>(n));
  for (uint64_t v = 0; v < n; ++v) {
    for (uint64_t u = 0; u < n; ++u) {
      out(static_cast<size_t>(v), static_cast<size_t>(u)) = Entry(v, u);
    }
  }
  return out;
}

StatusOr<DensePerturbationMatrix> DensePerturbationMatrix::Create(linalg::Matrix a,
                                                                  std::string name) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("perturbation matrix must be square");
  }
  if (!a.IsColumnStochastic(1e-9)) {
    return Status::InvalidArgument(
        "perturbation matrix must be column-stochastic with entries >= 0 "
        "(paper Eq. 1)");
  }
  return DensePerturbationMatrix(std::move(a), std::move(name));
}

StatusOr<double> DensePerturbationMatrix::ConditionNumber() const {
  return linalg::ConditionNumber(matrix_);
}

double DensePerturbationMatrix::Amplification() const {
  return MatrixAmplification(matrix_);
}

}  // namespace core
}  // namespace frapp
