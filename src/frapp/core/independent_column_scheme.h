// Independent-column gamma perturbation (ablation).
//
// Paper Section 2 distinguishes independent column perturbation (each
// attribute perturbed on its own, as in prior techniques) from the dependent
// column perturbation FRAPP's gamma-diagonal implementation uses. This
// module implements the natural independent-column member of the FRAPP
// family: every attribute j gets its own gamma-diagonal matrix with
// per-attribute amplification gamma_j = gamma^(1/M), so the record-level
// matrix (the Kronecker product of the per-attribute matrices) still has
// amplification prod_j gamma_j = gamma.
//
// The record-level condition number is then prod_j (gamma_j + |S_j| - 1) /
// (gamma_j - 1), which grows EXPONENTIALLY with itemset length — this
// quantifies why FRAPP perturbs the record jointly. Used by the ablation
// bench.

#ifndef FRAPP_CORE_INDEPENDENT_COLUMN_SCHEME_H_
#define FRAPP_CORE_INDEPENDENT_COLUMN_SCHEME_H_

#include <map>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/table.h"
#include "frapp/linalg/matrix.h"
#include "frapp/mining/apriori.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {

/// Per-attribute gamma-diagonal perturbation with amplification budget split
/// evenly (geometrically) across attributes.
class IndependentColumnScheme {
 public:
  /// Requires gamma > 1. Per-attribute gamma_j = gamma^(1/M) must also
  /// exceed 1, which it does for gamma > 1.
  static StatusOr<IndependentColumnScheme> Create(
      const data::CategoricalSchema& schema, double gamma);

  double gamma() const { return gamma_; }
  double per_attribute_gamma() const { return per_attribute_gamma_; }

  /// Perturbs each column independently with its gamma-diagonal matrix.
  StatusOr<data::CategoricalTable> Perturb(const data::CategoricalTable& table,
                                           random::Pcg64& rng) const;

  /// Dense per-attribute transition matrix (|S_j| x |S_j|).
  linalg::Matrix AttributeMatrix(size_t attribute) const;

  /// Condition number of the reconstruction matrix for an itemset over the
  /// given attributes: prod_j (gamma_j + |S_j| - 1) / (gamma_j - 1).
  double ConditionNumberForAttributes(const std::vector<size_t>& attributes) const;

  const data::CategoricalSchema& schema() const { return schema_; }

 private:
  IndependentColumnScheme(data::CategoricalSchema schema, double gamma,
                          double per_attribute_gamma)
      : schema_(std::move(schema)),
        gamma_(gamma),
        per_attribute_gamma_(per_attribute_gamma) {}

  data::CategoricalSchema schema_;
  double gamma_;
  double per_attribute_gamma_;
};

/// Support oracle for the independent-column scheme: reconstructs the joint
/// histogram over each candidate's attribute subset through the Kronecker
/// inverse of the per-attribute matrices, caching per attribute subset.
class IndependentColumnSupportEstimator : public mining::SupportEstimator {
 public:
  /// `perturbed` must outlive the estimator.
  IndependentColumnSupportEstimator(const IndependentColumnScheme& scheme,
                                    const data::CategoricalTable& perturbed)
      : scheme_(scheme), perturbed_(perturbed) {}

  StatusOr<double> EstimateSupport(const mining::Itemset& itemset) override;

 private:
  const IndependentColumnScheme& scheme_;
  const data::CategoricalTable& perturbed_;
  // attribute-mask -> reconstructed support fractions over the subset domain
  std::map<uint32_t, linalg::Vector> cache_;
};

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_INDEPENDENT_COLUMN_SCHEME_H_
