// Independent-column gamma perturbation (ablation).
//
// Paper Section 2 distinguishes independent column perturbation (each
// attribute perturbed on its own, as in prior techniques) from the dependent
// column perturbation FRAPP's gamma-diagonal implementation uses. This
// module implements the natural independent-column member of the FRAPP
// family: every attribute j gets its own gamma-diagonal matrix with
// per-attribute amplification gamma_j = gamma^(1/M), so the record-level
// matrix (the Kronecker product of the per-attribute matrices) still has
// amplification prod_j gamma_j = gamma.
//
// The record-level condition number is then prod_j (gamma_j + |S_j| - 1) /
// (gamma_j - 1), which grows EXPONENTIALLY with itemset length — this
// quantifies why FRAPP perturbs the record jointly. Used by the ablation
// bench.

#ifndef FRAPP_CORE_INDEPENDENT_COLUMN_SCHEME_H_
#define FRAPP_CORE_INDEPENDENT_COLUMN_SCHEME_H_

#include <map>
#include <memory>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/sharded_table.h"
#include "frapp/data/table.h"
#include "frapp/linalg/matrix.h"
#include "frapp/mining/apriori.h"
#include "frapp/mining/count_source.h"
#include "frapp/mining/sharded_vertical_index.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {

/// Per-attribute gamma-diagonal perturbation with amplification budget split
/// evenly (geometrically) across attributes.
class IndependentColumnScheme {
 public:
  /// Requires gamma > 1. Per-attribute gamma_j = gamma^(1/M) must also
  /// exceed 1, which it does for gamma > 1.
  static StatusOr<IndependentColumnScheme> Create(
      const data::CategoricalSchema& schema, double gamma);

  double gamma() const { return gamma_; }
  double per_attribute_gamma() const { return per_attribute_gamma_; }

  /// Perturbs each column independently with its gamma-diagonal matrix.
  StatusOr<data::CategoricalTable> Perturb(const data::CategoricalTable& table,
                                           random::Pcg64& rng) const;

  /// Deterministic seeded form on the global seeded-chunk grid: depends only
  /// on (table, seed); chunk-aligned shard partitions concatenate
  /// bit-for-bit (see core/seeded_chunking.h).
  StatusOr<data::CategoricalTable> PerturbSeeded(const data::CategoricalTable& table,
                                                 uint64_t seed,
                                                 size_t num_threads = 1) const;

  /// Shard form over a ShardView (buffer + global position), the streaming
  /// pipeline's perturbation primitive.
  StatusOr<data::CategoricalTable> PerturbShardSeeded(
      const data::ShardView& shard, uint64_t seed, size_t num_threads = 1) const;

  /// Dense per-attribute transition matrix (|S_j| x |S_j|).
  linalg::Matrix AttributeMatrix(size_t attribute) const;

  /// Condition number of the reconstruction matrix for an itemset over the
  /// given attributes: prod_j (gamma_j + |S_j| - 1) / (gamma_j - 1).
  double ConditionNumberForAttributes(const std::vector<size_t>& attributes) const;

  const data::CategoricalSchema& schema() const { return schema_; }

 private:
  IndependentColumnScheme(data::CategoricalSchema schema, double gamma,
                          double per_attribute_gamma)
      : schema_(std::move(schema)),
        gamma_(gamma),
        per_attribute_gamma_(per_attribute_gamma) {}

  data::CategoricalSchema schema_;
  double gamma_;
  double per_attribute_gamma_;
};

/// Support oracle for the independent-column scheme: reconstructs the joint
/// histogram over each candidate's attribute subset through the Kronecker
/// inverse of the per-attribute matrices, caching per attribute subset. The
/// joint histogram is assembled by batch-counting every category combination
/// of the subset domain against an abstract SupportCountSource (a sharded
/// vertical index of the perturbed table, or a frapp/dist coordinator's
/// merged remote vectors) — integer sums over any row partition, so no
/// perturbed rows are retained and results are shard-, thread- and
/// worker-count invariant.
class IndependentColumnSupportEstimator : public mining::SupportEstimator {
 public:
  /// Reconstruction over whatever produces the total counts; `scheme` must
  /// outlive the estimator.
  IndependentColumnSupportEstimator(
      const IndependentColumnScheme& scheme,
      std::shared_ptr<mining::SupportCountSource> source)
      : scheme_(scheme), source_(std::move(source)) {}

  /// Owns the (possibly multi-shard) index; `num_threads` parallelizes each
  /// counting pass.
  IndependentColumnSupportEstimator(const IndependentColumnScheme& scheme,
                                    mining::ShardedVerticalIndex index,
                                    size_t num_threads = 1)
      : IndependentColumnSupportEstimator(
            scheme, std::make_shared<mining::LocalSupportCountSource>(
                        std::move(index), num_threads)) {}

  /// Convenience for the monolithic Prepare() path: one shard over
  /// `perturbed` (the rows are not retained).
  IndependentColumnSupportEstimator(const IndependentColumnScheme& scheme,
                                    const data::CategoricalTable& perturbed)
      : IndependentColumnSupportEstimator(
            scheme, mining::ShardedVerticalIndex::Build(perturbed,
                                                        /*num_shards=*/1)) {}

  StatusOr<double> EstimateSupport(const mining::Itemset& itemset) override;

 private:
  const IndependentColumnScheme& scheme_;
  std::shared_ptr<mining::SupportCountSource> source_;
  // attribute-mask -> reconstructed support fractions over the subset domain
  std::map<uint32_t, linalg::Vector> cache_;
};

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_INDEPENDENT_COLUMN_SCHEME_H_
