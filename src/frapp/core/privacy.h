// Privacy machinery (paper Sections 2.1 and 4.1).
//
// FRAPP adopts the amplification-based "(rho1, rho2) privacy breach" measure
// of Evfimievski, Gehrke & Srikant (PODS'03): a mechanism offers
// (rho1, rho2) privacy when no property with prior probability < rho1 can
// acquire posterior probability > rho2, regardless of the data distribution.
// For a perturbation matrix A this holds whenever, for every perturbed value
// v, the ratio of any two entries of row v is at most
//     gamma <= rho2 (1 - rho1) / (rho1 (1 - rho2))          (paper Eq. 2).

#ifndef FRAPP_CORE_PRIVACY_H_
#define FRAPP_CORE_PRIVACY_H_

#include "frapp/common/statusor.h"
#include "frapp/linalg/matrix.h"

namespace frapp {
namespace core {

/// A strict privacy requirement: priors below rho1 must stay below rho2
/// a-posteriori. The paper's running example is (5%, 50%).
struct PrivacyRequirement {
  double rho1;
  double rho2;
};

/// The largest admissible amplification gamma for the requirement:
/// gamma = rho2 (1 - rho1) / (rho1 (1 - rho2)). (5%, 50%) gives gamma = 19.
StatusOr<double> GammaFromRequirement(const PrivacyRequirement& requirement);

/// Amplification of a column-stochastic matrix with A[v][u] = p(u -> v):
/// max over rows v of (max_u A_vu / min_u A_vu). Returns +infinity when a
/// row mixes zero and non-zero entries (an unbounded breach).
double MatrixAmplification(const linalg::Matrix& a);

/// True when MatrixAmplification(a) <= gamma * (1 + tol).
bool SatisfiesAmplification(const linalg::Matrix& a, double gamma, double tol = 1e-9);

/// Worst-case posterior probability of a property with prior `prior` when
/// the adversary's likelihood ratio is `ratio` (paper Section 4.1):
///   posterior = prior * ratio / (prior * ratio + (1 - prior)).
double PosteriorFromRatio(double prior, double ratio);

/// Posterior probability window of the randomized gamma-diagonal mechanism
/// (paper Section 4.1): with diagonal gamma*x + r and off-diagonal
/// x - r/(n-1), r in [-alpha, alpha], the (determinable) posterior ranges
/// over [rho2(-alpha), rho2(+alpha)] with center rho2(0).
struct PosteriorRange {
  double lower;   ///< rho2(-alpha): best case for the client
  double center;  ///< rho2(0): the deterministic mechanism's breach
  double upper;   ///< rho2(+alpha): worst case
};

/// Computes the randomized-mechanism posterior range for a property with
/// prior probability `prior`, gamma-diagonal parameter `gamma`, domain size
/// `n` and randomization half-width `alpha` (0 <= alpha <= gamma * x).
StatusOr<PosteriorRange> RandomizedPosteriorRange(double prior, double gamma,
                                                  uint64_t n, double alpha);

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_PRIVACY_H_
