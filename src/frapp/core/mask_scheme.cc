#include "frapp/core/mask_scheme.h"

#include <algorithm>
#include <cmath>

#include "frapp/common/parallel.h"
#include "frapp/core/seeded_chunking.h"

namespace frapp {
namespace core {

StatusOr<MaskScheme> MaskScheme::Create(double p) {
  if (!(p > 0.5) || !(p < 1.0)) {
    return Status::InvalidArgument("MASK requires keep probability p in (0.5, 1)");
  }
  return MaskScheme(p);
}

StatusOr<MaskScheme> MaskScheme::CalibrateForGamma(double gamma,
                                                   size_t num_attributes) {
  if (!(gamma > 1.0)) return Status::InvalidArgument("gamma must exceed 1");
  if (num_attributes == 0) {
    return Status::InvalidArgument("need at least one attribute");
  }
  const double t =
      std::pow(gamma, 1.0 / (2.0 * static_cast<double>(num_attributes)));
  return Create(t / (1.0 + t));
}

double MaskScheme::RecordAmplification(size_t num_attributes) const {
  return std::pow(p_ / (1.0 - p_), 2.0 * static_cast<double>(num_attributes));
}

double MaskScheme::ConditionNumberForLength(size_t itemset_length) const {
  return std::pow(1.0 / (2.0 * p_ - 1.0), static_cast<double>(itemset_length));
}

StatusOr<data::BooleanTable> MaskScheme::Perturb(const data::BooleanTable& table,
                                                 random::Pcg64& rng) const {
  FRAPP_ASSIGN_OR_RETURN(data::BooleanTable out,
                         data::BooleanTable::CreateEmpty(table.num_bits()));
  const double flip = 1.0 - p_;
  const size_t bits = table.num_bits();
  for (size_t i = 0; i < table.num_rows(); ++i) {
    uint64_t flip_mask = 0;
    for (size_t b = 0; b < bits; ++b) {
      if (rng.NextBernoulli(flip)) flip_mask |= (1ull << b);
    }
    out.AppendRow(table.RowBits(i) ^ flip_mask);
  }
  return out;
}

StatusOr<data::BooleanTable> MaskScheme::PerturbSeeded(
    const data::BooleanTable& table, uint64_t seed, size_t num_threads) const {
  return PerturbShardSeeded(table, /*global_begin=*/0, seed, num_threads);
}

StatusOr<data::BooleanTable> MaskScheme::PerturbShardSeeded(
    const data::BooleanTable& onehot, size_t global_begin, uint64_t seed,
    size_t num_threads) const {
  if (global_begin % internal::kPerturbChunkRows != 0) {
    return Status::InvalidArgument(
        "shard does not start on a seeded chunk boundary");
  }
  FRAPP_ASSIGN_OR_RETURN(data::BooleanTable out,
                         data::BooleanTable::CreateEmpty(onehot.num_bits()));
  const size_t len = onehot.num_rows();
  for (size_t i = 0; i < len; ++i) out.AppendRow(0);
  const double flip = 1.0 - p_;
  const size_t bits = onehot.num_bits();
  internal::ForEachSeededChunk(
      len, global_begin, seed, num_threads,
      [&](size_t begin, size_t end, random::Pcg64& rng) {
        for (size_t i = begin; i < end; ++i) {
          uint64_t flip_mask = 0;
          for (size_t b = 0; b < bits; ++b) {
            if (rng.NextBernoulli(flip)) flip_mask |= (1ull << b);
          }
          out.SetRowBits(i, onehot.RowBits(i) ^ flip_mask);
        }
      });
  return out;
}

StatusOr<double> MaskScheme::EstimateItemsetSupport(
    const data::BooleanTable& perturbed,
    const std::vector<size_t>& bit_positions) const {
  const size_t k = bit_positions.size();
  if (k == 0) return Status::InvalidArgument("empty itemset");
  if (k > 20) return Status::InvalidArgument("itemset too long for 2^k counting");
  for (size_t pos : bit_positions) {
    if (pos >= perturbed.num_bits()) {
      return Status::OutOfRange("bit position out of range");
    }
  }

  // Count all 2^k observed patterns on the itemset's bit positions.
  const size_t patterns = 1ull << k;
  std::vector<double> counts(patterns, 0.0);
  for (size_t i = 0; i < perturbed.num_rows(); ++i) {
    const uint64_t row = perturbed.RowBits(i);
    size_t idx = 0;
    for (size_t b = 0; b < k; ++b) {
      idx |= static_cast<size_t>((row >> bit_positions[b]) & 1u) << b;
    }
    counts[idx] += 1.0;
  }
  return ReconstructFromPatternCounts(std::move(counts), perturbed.num_rows());
}

StatusOr<double> MaskScheme::ReconstructFromPatternCounts(
    std::vector<double> counts, size_t num_rows) const {
  const size_t patterns = counts.size();
  size_t k = 0;
  while ((1ull << k) < patterns) ++k;
  if ((1ull << k) != patterns || patterns == 0) {
    return Status::InvalidArgument("pattern counts must have 2^k entries");
  }

  // Invert the flip channel one bit-axis at a time. The per-bit matrix is
  // [[p, 1-p], [1-p, p]] with inverse 1/(2p-1) [[p, -(1-p)], [-(1-p), p]].
  const double q = 1.0 - p_;
  const double inv_det = 1.0 / (2.0 * p_ - 1.0);
  for (size_t axis = 0; axis < k; ++axis) {
    const size_t stride = 1ull << axis;
    for (size_t base = 0; base < patterns; base += stride * 2) {
      for (size_t offset = 0; offset < stride; ++offset) {
        const size_t i0 = base + offset;
        const size_t i1 = i0 + stride;
        const double a = counts[i0];
        const double b = counts[i1];
        counts[i0] = inv_det * (p_ * a - q * b);
        counts[i1] = inv_det * (-q * a + p_ * b);
      }
    }
  }

  const double n = static_cast<double>(num_rows);
  if (n == 0.0) return 0.0;
  return counts[patterns - 1] / n;
}

StatusOr<double> MaskSupportEstimator::EstimateSupport(
    const mining::Itemset& itemset) {
  if (itemset.empty()) return Status::InvalidArgument("empty itemset");
  if (itemset.size() > data::BooleanVerticalIndex::kMaxPatternLength) {
    return Status::InvalidArgument("itemset too long for 2^k counting");
  }
  // An empty stream has no bits to resolve against; every support is 0.
  if (source_->num_rows() == 0) return 0.0;
  std::vector<size_t> positions;
  positions.reserve(itemset.size());
  for (const mining::Item& item : itemset.items()) {
    const size_t pos = layout_.BitPosition(item.attribute, item.category);
    if (pos >= source_->num_bits()) {
      return Status::OutOfRange("bit position out of range");
    }
    positions.push_back(pos);
  }
  FRAPP_ASSIGN_OR_RETURN(const std::vector<int64_t> pattern_counts,
                         source_->PatternCounts(positions));
  std::vector<double> counts(pattern_counts.begin(), pattern_counts.end());
  return scheme_.ReconstructFromPatternCounts(std::move(counts),
                                              source_->num_rows());
}

StatusOr<std::vector<double>> MaskSupportEstimator::EstimateSupports(
    const std::vector<mining::Itemset>& itemsets) {
  std::vector<double> supports(itemsets.size(), 0.0);
  std::vector<std::vector<size_t>> candidates;
  candidates.reserve(itemsets.size());
  for (const mining::Itemset& itemset : itemsets) {
    if (itemset.empty()) return Status::InvalidArgument("empty itemset");
    if (itemset.size() > data::BooleanVerticalIndex::kMaxPatternLength) {
      return Status::InvalidArgument("itemset too long for 2^k counting");
    }
    if (source_->num_rows() == 0) continue;  // every support stays 0
    std::vector<size_t> positions;
    positions.reserve(itemset.size());
    for (const mining::Item& item : itemset.items()) {
      const size_t pos = layout_.BitPosition(item.attribute, item.category);
      if (pos >= source_->num_bits()) {
        return Status::OutOfRange("bit position out of range");
      }
      positions.push_back(pos);
    }
    candidates.push_back(std::move(positions));
  }
  if (candidates.empty()) return supports;
  FRAPP_ASSIGN_OR_RETURN(const std::vector<std::vector<int64_t>> pattern_counts,
                         source_->PatternCountsBatch(candidates));
  for (size_t c = 0; c < pattern_counts.size(); ++c) {
    std::vector<double> counts(pattern_counts[c].begin(),
                               pattern_counts[c].end());
    FRAPP_ASSIGN_OR_RETURN(
        supports[c], scheme_.ReconstructFromPatternCounts(
                         std::move(counts), source_->num_rows()));
  }
  return supports;
}

}  // namespace core
}  // namespace frapp
