#include "frapp/core/designer.h"

#include <sstream>

namespace frapp {
namespace core {

std::string FrappDesign::Summary() const {
  std::ostringstream os;
  os << "FRAPP design\n"
     << "  gamma                : " << gamma << "\n"
     << "  x = 1/(gamma+n-1)    : " << x << "\n"
     << "  mechanism            : " << (mechanism ? mechanism->name() : "?") << "\n"
     << "  alpha                : " << alpha << "\n"
     << "  condition number     : " << condition_number << "\n"
     << "  posterior @ rho1     : ";
  if (alpha == 0.0) {
    os << posterior.center;
  } else {
    os << "[" << posterior.lower << ", " << posterior.upper << "] (center "
       << posterior.center << ")";
  }
  os << "\n";
  return os.str();
}

StatusOr<FrappDesign> DesignMechanism(const data::CategoricalSchema& schema,
                                      const DesignOptions& options) {
  if (options.randomization_fraction < 0.0 || options.randomization_fraction > 1.0) {
    return Status::InvalidArgument("randomization fraction must be in [0, 1]");
  }

  FrappDesign design;
  // Step 1: privacy requirement -> gamma -> optimal deterministic matrix.
  FRAPP_ASSIGN_OR_RETURN(design.gamma, GammaFromRequirement(options.requirement));
  const uint64_t n = schema.DomainSize();
  if (n < 2) return Status::InvalidArgument("domain must have >= 2 records");
  design.x = 1.0 / (design.gamma + static_cast<double>(n) - 1.0);
  design.condition_number = MinimumConditionNumberBound(design.gamma, n);
  design.alpha = options.randomization_fraction * design.gamma * design.x;

  // Step 2 (optional): randomize the matrix.
  if (design.alpha == 0.0) {
    FRAPP_ASSIGN_OR_RETURN(std::unique_ptr<DetGdMechanism> mechanism,
                           DetGdMechanism::Create(schema, design.gamma));
    design.mechanism = std::move(mechanism);
  } else {
    FRAPP_ASSIGN_OR_RETURN(
        std::unique_ptr<RanGdMechanism> mechanism,
        RanGdMechanism::Create(schema, design.gamma, design.alpha,
                               options.randomization_kind));
    design.mechanism = std::move(mechanism);
  }

  FRAPP_ASSIGN_OR_RETURN(
      design.posterior,
      RandomizedPosteriorRange(options.requirement.rho1, design.gamma, n,
                               design.alpha));
  return design;
}

}  // namespace core
}  // namespace frapp
