#include "frapp/core/reconstructor.h"

#include "frapp/linalg/lu.h"

namespace frapp {
namespace core {

StatusOr<linalg::Vector> ReconstructDistribution(const linalg::Matrix& a,
                                                 const linalg::Vector& y) {
  return linalg::SolveLinearSystem(a, y);
}

StatusOr<linalg::Vector> ReconstructDistributionGamma(const GammaDiagonalMatrix& a,
                                                      const linalg::Vector& y) {
  if (y.size() != a.domain_size()) {
    return Status::InvalidArgument("histogram dimension mismatch");
  }
  return a.ToUniformMixture().Solve(y);
}

StatusOr<linalg::Vector> ReconstructFullDistribution(
    const data::CategoricalTable& perturbed, const GammaDiagonalMatrix& a) {
  const data::DomainIndexer indexer =
      data::DomainIndexer::OverAllAttributes(perturbed.schema());
  if (indexer.domain_size() != a.domain_size()) {
    return Status::InvalidArgument("schema domain does not match matrix domain");
  }
  const linalg::Vector y = perturbed.JointHistogram(indexer);
  return ReconstructDistributionGamma(a, y);
}

}  // namespace core
}  // namespace frapp
