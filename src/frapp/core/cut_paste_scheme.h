// The Cut-and-Paste (C&P) randomization operator (Evfimievski, Srikant,
// Agrawal & Gehrke, KDD 2002), the paper's second baseline (Section 3,
// Eq. 12; Section 7 uses K = 3, rho = 0.494 for gamma = 19).
//
// Operator, per boolean record t with m ones over an M_b-item universe:
//   1. draw j uniform on {0..K}; cut size z = min(j, m);
//   2. copy a uniformly random z-subset of t's items into the output;
//   3. paste every OTHER item of the universe — uncut items of t included —
//      independently with probability rho.
// (Step 3 covering uncut original items keeps the record-level transition
// matrix strictly positive, which the amplification constraint needs; see
// DESIGN.md on the reading of the paper's OCR-damaged Eq. 12.)
//
// Mining estimates a k-itemset's support from its PARTIAL supports: the
// (k+1)-vector of counts of records containing exactly q of the k items is
// pushed through the inverse of the (k+1)x(k+1) transition matrix Q, whose
// condition number grows exponentially with k — the second baseline
// pathology the gamma-diagonal matrix avoids.

#ifndef FRAPP_CORE_CUT_PASTE_SCHEME_H_
#define FRAPP_CORE_CUT_PASTE_SCHEME_H_

#include <map>
#include <memory>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/boolean_vertical_index.h"
#include "frapp/data/boolean_view.h"
#include "frapp/data/pattern_count_source.h"
#include "frapp/data/sharded_boolean_vertical_index.h"
#include "frapp/linalg/lu.h"
#include "frapp/linalg/matrix.h"
#include "frapp/mining/apriori.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {

/// The C&P mechanism over records with exactly `record_items` ones out of
/// `universe_bits` boolean items (FRAPP's one-hot encoding guarantees this).
class CutPasteScheme {
 public:
  /// K >= 0 is the cut cutoff, rho in (0, 1) the paste probability.
  static StatusOr<CutPasteScheme> Create(size_t cutoff_k, double rho,
                                         size_t record_items, size_t universe_bits);

  size_t cutoff_k() const { return cutoff_k_; }
  double rho() const { return rho_; }
  size_t record_items() const { return record_items_; }
  size_t universe_bits() const { return universe_bits_; }

  /// P(cut size = z) under the min(uniform{0..K}, m) rule with m =
  /// record_items.
  double CutSizeProbability(size_t z) const;

  /// Applies the operator to every record.
  StatusOr<data::BooleanTable> Perturb(const data::BooleanTable& table,
                                       random::Pcg64& rng) const;

  /// Deterministic seeded form on the global seeded-chunk grid (see
  /// core/seeded_chunking.h): depends only on (table, seed), and any
  /// chunk-aligned shard partition concatenates bit-for-bit.
  StatusOr<data::BooleanTable> PerturbSeeded(const data::BooleanTable& table,
                                             uint64_t seed,
                                             size_t num_threads = 1) const;

  /// Shard form of PerturbSeeded: perturbs all rows of `onehot` (one shard's
  /// one-hot encoding) with the chunk streams of its global position;
  /// `global_begin` must be chunk-aligned.
  StatusOr<data::BooleanTable> PerturbShardSeeded(const data::BooleanTable& onehot,
                                                  size_t global_begin,
                                                  uint64_t seed,
                                                  size_t num_threads = 1) const;

  /// The (k+1)x(k+1) partial-support transition matrix Q for k-itemsets:
  /// Q[q'][q] = P(perturbed record has q' of the k items | original has q).
  StatusOr<linalg::Matrix> PartialSupportMatrix(size_t itemset_length) const;

  /// Spectral condition number of PartialSupportMatrix(k).
  StatusOr<double> ConditionNumberForLength(size_t itemset_length) const;

  /// Estimates a k-itemset's support fraction from the perturbed table:
  /// counts partial supports with popcount(row & mask) and solves Q x = y.
  /// `item_mask` must have exactly k bits set. For k > K the system is
  /// structurally singular (only the <= K cut items carry itemset
  /// information through the channel) and the estimate is 0 — the paper's
  /// "C&P does not work after 3-length itemsets" behaviour.
  StatusOr<double> EstimateItemsetSupport(const data::BooleanTable& perturbed,
                                          uint64_t item_mask, size_t itemset_length) const;

  /// Solve half of EstimateItemsetSupport, on a precomputed partial-support
  /// histogram: y[j] = #perturbed rows containing exactly j of the k items,
  /// num_rows = table size. Lets callers supply the histogram from a
  /// vertical index instead of a row scan.
  StatusOr<double> ReconstructFromHitHistogram(const linalg::Vector& y,
                                               size_t num_rows,
                                               size_t itemset_length) const;

  /// Record-level amplification max_v max_{u1,u2} A_vu1 / A_vu2, computed
  /// from the closed-form transition probability (depends on records only
  /// through overlap q = |u ^ v| and weight l_v = |v|).
  double RecordAmplification() const;

  /// Smallest rho in (0, 1) whose amplification stays within gamma
  /// (amplification is decreasing in rho, and smaller rho pastes less
  /// noise), found by grid scan plus bisection; NotFound when no rho
  /// qualifies.
  static StatusOr<double> CalibrateRho(size_t cutoff_k, size_t record_items,
                                       size_t universe_bits, double gamma);

 private:
  CutPasteScheme(size_t cutoff_k, double rho, size_t record_items,
                 size_t universe_bits)
      : cutoff_k_(cutoff_k),
        rho_(rho),
        record_items_(record_items),
        universe_bits_(universe_bits) {}

  size_t cutoff_k_;
  double rho_;
  size_t record_items_;
  size_t universe_bits_;
};

/// Support oracle plugging C&P into Apriori. Every candidate's
/// partial-support histogram comes from an abstract PatternCountSource — a
/// sharded vertical bitmap index of the perturbed boolean database (no
/// perturbed rows retained, so the pipeline can drop each shard's rows the
/// moment they are indexed), or a frapp/dist coordinator merging remote
/// workers' vectors.
class CutPasteSupportEstimator : public mining::SupportEstimator {
 public:
  /// Reconstruction over whatever produces the total pattern counts.
  CutPasteSupportEstimator(const CutPasteScheme& scheme, data::BooleanLayout layout,
                           std::shared_ptr<data::PatternCountSource> source)
      : scheme_(scheme), layout_(std::move(layout)), source_(std::move(source)) {}

  /// Owns the (possibly multi-shard) index; `num_threads` parallelizes each
  /// histogram pass (never affects results).
  CutPasteSupportEstimator(const CutPasteScheme& scheme, data::BooleanLayout layout,
                           data::ShardedBooleanVerticalIndex index,
                           size_t num_threads = 1)
      : CutPasteSupportEstimator(scheme, std::move(layout),
                                 std::make_shared<data::LocalPatternCountSource>(
                                     std::move(index), num_threads)) {}

  /// Convenience for the monolithic Prepare() path: one shard over
  /// `perturbed` (the rows are not retained).
  CutPasteSupportEstimator(const CutPasteScheme& scheme, data::BooleanLayout layout,
                           const data::BooleanTable& perturbed)
      : CutPasteSupportEstimator(scheme, std::move(layout),
                                 data::ShardedBooleanVerticalIndex::Build(
                                     perturbed, /*num_shards=*/1)) {}

  StatusOr<double> EstimateSupport(const mining::Itemset& itemset) override;

  /// Whole-pass batch over PatternCountsBatch (few round trips on a remote
  /// source), histograms derived per candidate by the shared popcount fold
  /// — identical arithmetic to the one-at-a-time path.
  StatusOr<std::vector<double>> EstimateSupports(
      const std::vector<mining::Itemset>& itemsets) override;

 private:
  CutPasteScheme scheme_;
  data::BooleanLayout layout_;
  std::shared_ptr<data::PatternCountSource> source_;
};

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_CUT_PASTE_SCHEME_H_
