#include "frapp/core/mechanism.h"

#include <cmath>
#include <limits>

#include "frapp/mining/support_counter.h"

namespace frapp {
namespace core {

namespace {

// Domain size of an itemset's attribute subset.
uint64_t SubsetDomainSize(const data::CategoricalSchema& schema,
                          const mining::Itemset& itemset) {
  uint64_t size = 1;
  for (const mining::Item& item : itemset.items()) {
    size *= static_cast<uint64_t>(schema.Cardinality(item.attribute));
  }
  return size;
}

}  // namespace

StatusOr<data::CategoricalTable> Mechanism::PerturbShard(const data::ShardView&,
                                                         uint64_t, size_t) {
  return Status::Unimplemented(name() + " does not stream categorical shards");
}

StatusOr<data::BooleanTable> Mechanism::PerturbBooleanShard(
    const data::ShardView&, uint64_t, size_t) {
  return Status::Unimplemented(name() + " does not stream boolean shards");
}

StatusOr<std::unique_ptr<mining::SupportEstimator>>
Mechanism::MakeShardedEstimator(mining::ShardedVerticalIndex index,
                                size_t num_threads) {
  return MakeCountSourceEstimator(
      std::make_shared<mining::LocalSupportCountSource>(std::move(index),
                                                        num_threads));
}

StatusOr<std::unique_ptr<mining::SupportEstimator>>
Mechanism::MakeShardedBooleanEstimator(data::ShardedBooleanVerticalIndex index,
                                       size_t num_threads) {
  return MakeBooleanCountSourceEstimator(
      std::make_shared<data::LocalPatternCountSource>(std::move(index),
                                                      num_threads));
}

StatusOr<std::unique_ptr<mining::SupportEstimator>>
Mechanism::MakeCountSourceEstimator(
    std::shared_ptr<mining::SupportCountSource>) {
  return Status::Unimplemented(
      name() + " does not reconstruct from categorical count vectors");
}

StatusOr<std::unique_ptr<mining::SupportEstimator>>
Mechanism::MakeBooleanCountSourceEstimator(
    std::shared_ptr<data::PatternCountSource>) {
  return Status::Unimplemented(
      name() + " does not reconstruct from boolean pattern-count vectors");
}

StatusOr<double> GammaSupportEstimator::EstimateSupport(
    const mining::Itemset& itemset) {
  if (source_ == nullptr) {
    return reconstructor_.ReconstructSupport(
        mining::SupportFraction(*perturbed_, itemset),
        SubsetDomainSize(schema_, itemset));
  }
  FRAPP_ASSIGN_OR_RETURN(
      const std::vector<uint64_t> counts,
      source_->CountSupports(std::vector<mining::Itemset>{itemset}));
  const double n = static_cast<double>(source_->num_rows());
  const double fraction = n == 0.0 ? 0.0 : static_cast<double>(counts[0]) / n;
  return reconstructor_.ReconstructSupport(fraction,
                                           SubsetDomainSize(schema_, itemset));
}

StatusOr<std::vector<double>> GammaSupportEstimator::EstimateSupports(
    const std::vector<mining::Itemset>& itemsets) {
  if (source_ == nullptr) {
    return mining::SupportEstimator::EstimateSupports(itemsets);
  }
  // Whole-pass counting over the source (shard-parallel locally, fanned out
  // and merged remotely), then the per-candidate closed-form inverse (cheap
  // scalar math) on the TOTAL fraction — one division and one inverse per
  // candidate regardless of where the counts came from, so results match
  // the monolithic path bit for bit.
  FRAPP_ASSIGN_OR_RETURN(const std::vector<uint64_t> counts,
                         source_->CountSupports(itemsets));
  const double n = static_cast<double>(source_->num_rows());
  std::vector<double> supports(itemsets.size());
  for (size_t c = 0; c < itemsets.size(); ++c) {
    const double fraction = n == 0.0 ? 0.0 : static_cast<double>(counts[c]) / n;
    FRAPP_ASSIGN_OR_RETURN(
        supports[c], reconstructor_.ReconstructSupport(
                         fraction, SubsetDomainSize(schema_, itemsets[c])));
  }
  return supports;
}

// ---------------------------------------------------------------- DET-GD --

StatusOr<std::unique_ptr<DetGdMechanism>> DetGdMechanism::Create(
    const data::CategoricalSchema& schema, double gamma) {
  FRAPP_ASSIGN_OR_RETURN(GammaDiagonalPerturber perturber,
                         GammaDiagonalPerturber::Create(schema, gamma));
  FRAPP_ASSIGN_OR_RETURN(GammaSubsetReconstructor reconstructor,
                         GammaSubsetReconstructor::Create(gamma, schema.DomainSize()));
  return std::unique_ptr<DetGdMechanism>(new DetGdMechanism(
      schema, gamma, std::move(perturber), std::move(reconstructor)));
}

Status DetGdMechanism::Prepare(const data::CategoricalTable& original,
                               random::Pcg64& rng) {
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable perturbed,
                         perturber_.Perturb(original, rng));
  perturbed_ = std::move(perturbed);
  estimator_ = std::make_unique<GammaSupportEstimator>(schema_, reconstructor_,
                                                       *perturbed_);
  return Status::OK();
}

mining::SupportEstimator& DetGdMechanism::estimator() {
  FRAPP_CHECK(estimator_ != nullptr) << "Prepare() must run first";
  return *estimator_;
}

StatusOr<double> DetGdMechanism::ConditionNumberForLength(size_t) const {
  // Length-independent: (gamma + n_C - 1) / (gamma - 1) for every subset.
  return reconstructor_.ConditionNumber();
}

StatusOr<data::CategoricalTable> DetGdMechanism::PerturbShard(
    const data::ShardView& shard, uint64_t seed, size_t num_threads) {
  return perturber_.PerturbShardSeeded(shard, seed, num_threads);
}

StatusOr<std::unique_ptr<mining::SupportEstimator>>
DetGdMechanism::MakeCountSourceEstimator(
    std::shared_ptr<mining::SupportCountSource> source) {
  return std::unique_ptr<mining::SupportEstimator>(
      std::make_unique<GammaSupportEstimator>(schema_, reconstructor_,
                                              std::move(source)));
}

// ---------------------------------------------------------------- RAN-GD --

StatusOr<std::unique_ptr<RanGdMechanism>> RanGdMechanism::Create(
    const data::CategoricalSchema& schema, double gamma, double alpha,
    random::RandomizationKind kind) {
  FRAPP_ASSIGN_OR_RETURN(RandomizedGammaPerturber perturber,
                         RandomizedGammaPerturber::Create(schema, gamma, alpha, kind));
  FRAPP_ASSIGN_OR_RETURN(GammaSubsetReconstructor reconstructor,
                         GammaSubsetReconstructor::Create(gamma, schema.DomainSize()));
  return std::unique_ptr<RanGdMechanism>(new RanGdMechanism(
      schema, gamma, std::move(perturber), std::move(reconstructor)));
}

Status RanGdMechanism::Prepare(const data::CategoricalTable& original,
                               random::Pcg64& rng) {
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable perturbed,
                         perturber_.Perturb(original, rng));
  perturbed_ = std::move(perturbed);
  estimator_ = std::make_unique<GammaSupportEstimator>(schema_, reconstructor_,
                                                       *perturbed_);
  return Status::OK();
}

mining::SupportEstimator& RanGdMechanism::estimator() {
  FRAPP_CHECK(estimator_ != nullptr) << "Prepare() must run first";
  return *estimator_;
}

StatusOr<double> RanGdMechanism::ConditionNumberForLength(size_t) const {
  // Reconstruction uses E[A~] = the deterministic gamma-diagonal matrix, so
  // the condition number equals DET-GD's (paper Section 7 / Figure 4).
  return reconstructor_.ConditionNumber();
}

StatusOr<data::CategoricalTable> RanGdMechanism::PerturbShard(
    const data::ShardView& shard, uint64_t seed, size_t num_threads) {
  return perturber_.PerturbShardSeeded(shard, seed, num_threads);
}

StatusOr<std::unique_ptr<mining::SupportEstimator>>
RanGdMechanism::MakeCountSourceEstimator(
    std::shared_ptr<mining::SupportCountSource> source) {
  return std::unique_ptr<mining::SupportEstimator>(
      std::make_unique<GammaSupportEstimator>(schema_, reconstructor_,
                                              std::move(source)));
}

double RanGdMechanism::Amplification() const {
  // Worst realization: diagonal gamma x + alpha against off-diagonal
  // x - alpha/(n-1).
  const double x = perturber_.expected_matrix().x();
  const double n =
      static_cast<double>(perturber_.expected_matrix().domain_size());
  const double off = x - perturber_.alpha() / (n - 1.0);
  if (off <= 0.0) return std::numeric_limits<double>::infinity();
  return (gamma_ * x + perturber_.alpha()) / off;
}

// ------------------------------------------------------------------ MASK --

StatusOr<std::unique_ptr<MaskMechanism>> MaskMechanism::Create(
    const data::CategoricalSchema& schema, double gamma) {
  FRAPP_ASSIGN_OR_RETURN(MaskScheme scheme,
                         MaskScheme::CalibrateForGamma(gamma, schema.num_attributes()));
  return std::unique_ptr<MaskMechanism>(new MaskMechanism(schema, scheme));
}

Status MaskMechanism::Prepare(const data::CategoricalTable& original,
                              random::Pcg64& rng) {
  FRAPP_ASSIGN_OR_RETURN(data::BooleanTable onehot,
                         data::BooleanTable::FromCategorical(original));
  FRAPP_ASSIGN_OR_RETURN(data::BooleanTable perturbed, scheme_.Perturb(onehot, rng));
  // The estimator's index is self-contained; the perturbed rows are not
  // retained.
  estimator_ =
      std::make_unique<MaskSupportEstimator>(scheme_, layout_, perturbed);
  return Status::OK();
}

StatusOr<data::BooleanTable> MaskMechanism::PerturbBooleanShard(
    const data::ShardView& shard, uint64_t seed, size_t num_threads) {
  FRAPP_ASSIGN_OR_RETURN(
      data::BooleanTable onehot,
      data::BooleanTable::FromCategoricalRange(*shard.rows, shard.local));
  return scheme_.PerturbShardSeeded(onehot, shard.global_begin, seed,
                                    num_threads);
}

StatusOr<std::unique_ptr<mining::SupportEstimator>>
MaskMechanism::MakeBooleanCountSourceEstimator(
    std::shared_ptr<data::PatternCountSource> source) {
  return std::unique_ptr<mining::SupportEstimator>(
      std::make_unique<MaskSupportEstimator>(scheme_, layout_,
                                             std::move(source)));
}

mining::SupportEstimator& MaskMechanism::estimator() {
  FRAPP_CHECK(estimator_ != nullptr) << "Prepare() must run first";
  return *estimator_;
}

StatusOr<double> MaskMechanism::ConditionNumberForLength(size_t length) const {
  if (length == 0) return Status::InvalidArgument("length must be >= 1");
  return scheme_.ConditionNumberForLength(length);
}

double MaskMechanism::Amplification() const {
  return scheme_.RecordAmplification(schema_.num_attributes());
}

// ------------------------------------------------------------------- C&P --

StatusOr<std::unique_ptr<CutPasteMechanism>> CutPasteMechanism::Create(
    const data::CategoricalSchema& schema, size_t cutoff_k, double rho) {
  data::BooleanLayout layout(schema);
  FRAPP_ASSIGN_OR_RETURN(
      CutPasteScheme scheme,
      CutPasteScheme::Create(cutoff_k, rho, schema.num_attributes(),
                             layout.num_bits()));
  return std::unique_ptr<CutPasteMechanism>(
      new CutPasteMechanism(schema, std::move(scheme)));
}

Status CutPasteMechanism::Prepare(const data::CategoricalTable& original,
                                  random::Pcg64& rng) {
  FRAPP_ASSIGN_OR_RETURN(data::BooleanTable onehot,
                         data::BooleanTable::FromCategorical(original));
  FRAPP_ASSIGN_OR_RETURN(data::BooleanTable perturbed, scheme_.Perturb(onehot, rng));
  estimator_ =
      std::make_unique<CutPasteSupportEstimator>(scheme_, layout_, perturbed);
  return Status::OK();
}

StatusOr<data::BooleanTable> CutPasteMechanism::PerturbBooleanShard(
    const data::ShardView& shard, uint64_t seed, size_t num_threads) {
  FRAPP_ASSIGN_OR_RETURN(
      data::BooleanTable onehot,
      data::BooleanTable::FromCategoricalRange(*shard.rows, shard.local));
  return scheme_.PerturbShardSeeded(onehot, shard.global_begin, seed,
                                    num_threads);
}

StatusOr<std::unique_ptr<mining::SupportEstimator>>
CutPasteMechanism::MakeBooleanCountSourceEstimator(
    std::shared_ptr<data::PatternCountSource> source) {
  return std::unique_ptr<mining::SupportEstimator>(
      std::make_unique<CutPasteSupportEstimator>(scheme_, layout_,
                                                 std::move(source)));
}

mining::SupportEstimator& CutPasteMechanism::estimator() {
  FRAPP_CHECK(estimator_ != nullptr) << "Prepare() must run first";
  return *estimator_;
}

StatusOr<double> CutPasteMechanism::ConditionNumberForLength(size_t length) const {
  return scheme_.ConditionNumberForLength(length);
}

double CutPasteMechanism::Amplification() const {
  return scheme_.RecordAmplification();
}

// ---------------------------------------------------------------- IND-GD --

StatusOr<std::unique_ptr<IndependentColumnMechanism>>
IndependentColumnMechanism::Create(const data::CategoricalSchema& schema,
                                   double gamma) {
  FRAPP_ASSIGN_OR_RETURN(IndependentColumnScheme scheme,
                         IndependentColumnScheme::Create(schema, gamma));
  return std::unique_ptr<IndependentColumnMechanism>(
      new IndependentColumnMechanism(schema, std::move(scheme)));
}

Status IndependentColumnMechanism::Prepare(const data::CategoricalTable& original,
                                           random::Pcg64& rng) {
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable perturbed,
                         scheme_.Perturb(original, rng));
  estimator_ =
      std::make_unique<IndependentColumnSupportEstimator>(scheme_, perturbed);
  return Status::OK();
}

StatusOr<data::CategoricalTable> IndependentColumnMechanism::PerturbShard(
    const data::ShardView& shard, uint64_t seed, size_t num_threads) {
  return scheme_.PerturbShardSeeded(shard, seed, num_threads);
}

StatusOr<std::unique_ptr<mining::SupportEstimator>>
IndependentColumnMechanism::MakeCountSourceEstimator(
    std::shared_ptr<mining::SupportCountSource> source) {
  return std::unique_ptr<mining::SupportEstimator>(
      std::make_unique<IndependentColumnSupportEstimator>(scheme_,
                                                          std::move(source)));
}

mining::SupportEstimator& IndependentColumnMechanism::estimator() {
  FRAPP_CHECK(estimator_ != nullptr) << "Prepare() must run first";
  return *estimator_;
}

StatusOr<double> IndependentColumnMechanism::ConditionNumberForLength(
    size_t length) const {
  const size_t m = schema_.num_attributes();
  if (length == 0 || length > m) {
    return Status::InvalidArgument("length out of range");
  }
  // Geometric mean over all attribute subsets of this size.
  double log_sum = 0.0;
  size_t count = 0;
  std::vector<size_t> subset(length);
  for (size_t i = 0; i < length; ++i) subset[i] = i;
  while (true) {
    log_sum += std::log(scheme_.ConditionNumberForAttributes(subset));
    ++count;
    // Next lexicographic combination of {0..m-1} choose `length`.
    bool advanced = false;
    for (size_t i = length; i-- > 0;) {
      if (subset[i] < i + m - length) {
        ++subset[i];
        for (size_t j = i + 1; j < length; ++j) subset[j] = subset[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return std::exp(log_sum / static_cast<double>(count));
}

double IndependentColumnMechanism::Amplification() const {
  return scheme_.gamma();
}

}  // namespace core
}  // namespace frapp
