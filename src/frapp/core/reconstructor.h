// Distribution reconstruction (paper Section 2.2).
//
// The miner observes the perturbed histogram Y and estimates the original
// histogram X by solving  Y = A X_hat  (Eq. 7/8). For gamma-diagonal
// matrices the solve is O(n) closed form; for arbitrary dense matrices we
// LU-factorize.

#ifndef FRAPP_CORE_RECONSTRUCTOR_H_
#define FRAPP_CORE_RECONSTRUCTOR_H_

#include "frapp/common/statusor.h"
#include "frapp/core/gamma_diagonal.h"
#include "frapp/core/perturbation_matrix.h"
#include "frapp/data/table.h"
#include "frapp/linalg/vector.h"

namespace frapp {
namespace core {

/// Solves Y = A X_hat for a dense perturbation matrix. `y` is the perturbed
/// histogram over I_V; the result estimates the original histogram over I_U.
/// Estimates can be negative — they are least-squares-style point estimates,
/// not probabilities.
StatusOr<linalg::Vector> ReconstructDistribution(const linalg::Matrix& a,
                                                 const linalg::Vector& y);

/// Closed-form O(n) reconstruction under a gamma-diagonal matrix
/// (Sherman-Morrison on a I + b J; see linalg::UniformMixtureMatrix).
StatusOr<linalg::Vector> ReconstructDistributionGamma(const GammaDiagonalMatrix& a,
                                                      const linalg::Vector& y);

/// End-to-end helper: histograms the perturbed table over the full joint
/// domain and reconstructs the original histogram with the gamma-diagonal
/// closed form. Intended for modest joint domains (|S_U| up to ~1e7).
StatusOr<linalg::Vector> ReconstructFullDistribution(
    const data::CategoricalTable& perturbed, const GammaDiagonalMatrix& a);

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_RECONSTRUCTOR_H_
