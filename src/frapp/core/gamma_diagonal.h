// The gamma-diagonal perturbation matrix (paper Section 3) and its efficient
// perturbation algorithm (paper Section 5).
//
// For privacy level gamma, the matrix
//     A = x * [gamma on the diagonal, 1 elsewhere],  x = 1 / (gamma + n - 1)
// saturates the amplification constraint (every row ratio is exactly gamma)
// and PROVABLY minimizes the condition number among symmetric
// column-stochastic matrices satisfying the constraint:
//     cond(A) = (gamma + n - 1) / (gamma - 1).
//
// Perturbation does not enumerate the joint domain: the record is perturbed
// column by column (paper Eq. 26). While every previous column has matched
// the original record, column j re-matches with probability q_j / q_{j-1}
// where q_j = d + (n / n_j - 1) o is the probability mass of records
// agreeing with the original on the first j columns (d/o = diagonal and
// off-diagonal entries, n_j = prefix domain size). After the first mismatch
// all remaining columns are uniform. Cost: O(M) per record, versus O(n) for
// the naive CDF scan — this is the Section 5 complexity claim.

#ifndef FRAPP_CORE_GAMMA_DIAGONAL_H_
#define FRAPP_CORE_GAMMA_DIAGONAL_H_

#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/core/perturbation_matrix.h"
#include "frapp/data/table.h"
#include "frapp/linalg/uniform_mixture.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {

/// The gamma-diagonal matrix over a domain of size n.
class GammaDiagonalMatrix : public PerturbationMatrix {
 public:
  /// Requires gamma > 1 (gamma = 1 is the uninformative uniform matrix with
  /// infinite condition number) and n >= 2.
  static StatusOr<GammaDiagonalMatrix> Create(double gamma, uint64_t n);

  double gamma() const { return gamma_; }

  /// x = 1 / (gamma + n - 1).
  double x() const { return x_; }

  /// Diagonal entry gamma * x.
  double DiagonalValue() const { return gamma_ * x_; }

  /// Off-diagonal entry x.
  double OffDiagonalValue() const { return x_; }

  // PerturbationMatrix interface.
  uint64_t domain_size() const override { return n_; }
  double Entry(uint64_t v, uint64_t u) const override {
    return v == u ? DiagonalValue() : OffDiagonalValue();
  }
  /// Closed form (gamma + n - 1) / (gamma - 1); never materializes.
  StatusOr<double> ConditionNumber() const override;
  /// Exactly gamma: the matrix saturates the privacy constraint.
  double Amplification() const override { return gamma_; }
  std::string Name() const override { return "gamma-diagonal"; }

  /// Structured linalg view (a I + b J) for solves.
  linalg::UniformMixtureMatrix ToUniformMixture() const {
    return linalg::UniformMixtureMatrix::FromDiagonalOffDiagonal(
        static_cast<size_t>(n_), DiagonalValue(), OffDiagonalValue());
  }

 private:
  GammaDiagonalMatrix(double gamma, uint64_t n)
      : gamma_(gamma), n_(n), x_(1.0 / (gamma + static_cast<double>(n) - 1.0)) {}

  double gamma_;
  uint64_t n_;
  double x_;
};

/// Lower bound (gamma + n - 1) / (gamma - 1) on the condition number of ANY
/// symmetric column-stochastic matrix with amplification <= gamma (paper
/// Section 3's optimality theorem). The gamma-diagonal matrix attains it.
double MinimumConditionNumberBound(double gamma, uint64_t n);

/// Perturbs one record under a gamma-diagonal-FORM matrix with diagonal `d`
/// and off-diagonal `o` over the product domain given by `cardinalities`
/// (d + (n-1) o must equal 1). Exposed so that the randomized mechanism can
/// reuse it with per-record (d, o). Appends the perturbed values to `out`.
void PerturbRecordDiagonalForm(const std::vector<uint8_t>& record,
                               const std::vector<size_t>& cardinalities,
                               uint64_t domain_size, double d, double o,
                               random::Pcg64& rng, std::vector<uint8_t>* out);

/// Table-level perturber using the deterministic gamma-diagonal matrix and
/// the O(M)-per-record dependent-column algorithm.
class GammaDiagonalPerturber {
 public:
  /// Builds for `schema` at privacy level `gamma`.
  static StatusOr<GammaDiagonalPerturber> Create(const data::CategoricalSchema& schema,
                                                 double gamma);

  /// Perturbs every record of `table` (whose schema must match).
  StatusOr<data::CategoricalTable> Perturb(const data::CategoricalTable& table,
                                           random::Pcg64& rng) const;

  const GammaDiagonalMatrix& matrix() const { return matrix_; }

 private:
  GammaDiagonalPerturber(GammaDiagonalMatrix matrix, std::vector<size_t> cardinalities)
      : matrix_(std::move(matrix)), cardinalities_(std::move(cardinalities)) {}

  GammaDiagonalMatrix matrix_;
  std::vector<size_t> cardinalities_;
};

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_GAMMA_DIAGONAL_H_
