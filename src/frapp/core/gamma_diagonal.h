// The gamma-diagonal perturbation matrix (paper Section 3) and its efficient
// perturbation algorithm (paper Section 5).
//
// For privacy level gamma, the matrix
//     A = x * [gamma on the diagonal, 1 elsewhere],  x = 1 / (gamma + n - 1)
// saturates the amplification constraint (every row ratio is exactly gamma)
// and PROVABLY minimizes the condition number among symmetric
// column-stochastic matrices satisfying the constraint:
//     cond(A) = (gamma + n - 1) / (gamma - 1).
//
// Perturbation does not enumerate the joint domain: the record is perturbed
// column by column (paper Eq. 26). While every previous column has matched
// the original record, column j re-matches with probability q_j / q_{j-1}
// where q_j = d + (n / n_j - 1) o is the probability mass of records
// agreeing with the original on the first j columns (d/o = diagonal and
// off-diagonal entries, n_j = prefix domain size). After the first mismatch
// all remaining columns are uniform. Cost: O(M) per record, versus O(n) for
// the naive CDF scan — this is the Section 5 complexity claim.

#ifndef FRAPP_CORE_GAMMA_DIAGONAL_H_
#define FRAPP_CORE_GAMMA_DIAGONAL_H_

#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/core/perturbation_matrix.h"
#include "frapp/data/sharded_table.h"
#include "frapp/data/table.h"
#include "frapp/linalg/uniform_mixture.h"
#include "frapp/random/alias_sampler.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {

/// The gamma-diagonal matrix over a domain of size n.
class GammaDiagonalMatrix : public PerturbationMatrix {
 public:
  /// Requires gamma > 1 (gamma = 1 is the uninformative uniform matrix with
  /// infinite condition number) and n >= 2.
  static StatusOr<GammaDiagonalMatrix> Create(double gamma, uint64_t n);

  double gamma() const { return gamma_; }

  /// x = 1 / (gamma + n - 1).
  double x() const { return x_; }

  /// Diagonal entry gamma * x.
  double DiagonalValue() const { return gamma_ * x_; }

  /// Off-diagonal entry x.
  double OffDiagonalValue() const { return x_; }

  // PerturbationMatrix interface.
  uint64_t domain_size() const override { return n_; }
  double Entry(uint64_t v, uint64_t u) const override {
    return v == u ? DiagonalValue() : OffDiagonalValue();
  }
  /// Closed form (gamma + n - 1) / (gamma - 1); never materializes.
  StatusOr<double> ConditionNumber() const override;
  /// Exactly gamma: the matrix saturates the privacy constraint.
  double Amplification() const override { return gamma_; }
  std::string Name() const override { return "gamma-diagonal"; }

  /// Structured linalg view (a I + b J) for solves.
  linalg::UniformMixtureMatrix ToUniformMixture() const {
    return linalg::UniformMixtureMatrix::FromDiagonalOffDiagonal(
        static_cast<size_t>(n_), DiagonalValue(), OffDiagonalValue());
  }

 private:
  GammaDiagonalMatrix(double gamma, uint64_t n)
      : gamma_(gamma), n_(n), x_(1.0 / (gamma + static_cast<double>(n) - 1.0)) {}

  double gamma_;
  uint64_t n_;
  double x_;
};

/// Lower bound (gamma + n - 1) / (gamma - 1) on the condition number of ANY
/// symmetric column-stochastic matrix with amplification <= gamma (paper
/// Section 3's optimality theorem). The gamma-diagonal matrix attains it.
double MinimumConditionNumberBound(double gamma, uint64_t n);

/// Perturbs one record under a gamma-diagonal-FORM matrix with diagonal `d`
/// and off-diagonal `o` over the product domain given by `cardinalities`
/// (d + (n-1) o must equal 1). Exposed so that the randomized mechanism can
/// reuse it with per-record (d, o). Appends the perturbed values to `out`.
/// This per-column Bernoulli chain is the reference implementation (and test
/// oracle) for the batched divergence-column kernel below.
void PerturbRecordDiagonalForm(const std::vector<uint8_t>& record,
                               const std::vector<size_t>& cardinalities,
                               uint64_t domain_size, double d, double o,
                               random::Pcg64& rng, std::vector<uint8_t>* out);

/// Precomputed, schema-only machinery for gamma-diagonal-form perturbation.
///
/// The sequential Eq. 26 algorithm draws one Bernoulli per column; but the
/// chain has a closed form. With q_j = d + (n / n_j - 1) o the probability
/// that the perturbed record FIRST diverges from the original at column j
/// telescopes to q_{j-1} - q_j (q_{-1} = d + (n-1) o = 1), and the record
/// matches on every column with probability q_{M-1} = d. So a perturbation
/// is: sample the divergence column j* once, copy columns 0..j*-1 from the
/// input, draw one of the card_j - 1 mismatching values at j*, and fill the
/// suffix uniformly. The q_j depend only on the schema and (d, o), never on
/// the record — for a fixed matrix the divergence distribution is tabulated
/// into an AliasSampler and sampled in O(1); for per-record (d, o) (RAN-GD)
/// it is inverted from a single uniform with a short threshold scan.
class GammaPerturbPlan {
 public:
  /// Requires every cardinality >= 1 and domain_size = prod(cardinalities).
  static StatusOr<GammaPerturbPlan> Create(std::vector<size_t> cardinalities,
                                           uint64_t domain_size);

  size_t num_attributes() const { return cardinalities_.size(); }
  const std::vector<size_t>& cardinalities() const { return cardinalities_; }

  /// Divergence-column weights for a fixed (d, o): index j < M is "first
  /// divergence at column j", index M is "full match". Feed to AliasSampler.
  std::vector<double> DivergenceWeights(double d, double o) const;

  /// Divergence column for per-record (d, o): one uniform draw inverted
  /// against the q_j thresholds (O(expected scan) ~ 1 for realistic gamma).
  /// Returns num_attributes() for a full match.
  size_t SampleDivergenceColumn(double d, double o, random::Pcg64& rng) const;

  /// Writes the perturbation of row `i` into the output columns, given the
  /// sampled divergence column: matched prefix copy, one mismatching draw at
  /// the divergence column, uniform suffix.
  void FillRow(size_t divergence_column, const uint8_t* const* in_cols,
               uint8_t* const* out_cols, size_t i, random::Pcg64& rng) const {
    const size_t m = cardinalities_.size();
    for (size_t j = 0; j < divergence_column; ++j) out_cols[j][i] = in_cols[j][i];
    if (divergence_column >= m) return;
    // All card-1 mismatching values are equally likely (never sampled for
    // cardinality-1 columns: their divergence probability is exactly 0).
    const size_t card = cardinalities_[divergence_column];
    size_t value = static_cast<size_t>(rng.NextBounded(card - 1));
    if (value >= in_cols[divergence_column][i]) ++value;
    out_cols[divergence_column][i] = static_cast<uint8_t>(value);
    for (size_t j = divergence_column + 1; j < m; ++j) {
      out_cols[j][i] = static_cast<uint8_t>(rng.NextBounded(cardinalities_[j]));
    }
  }

 private:
  explicit GammaPerturbPlan(std::vector<size_t> cardinalities,
                            std::vector<double> suffix_minus_one)
      : cardinalities_(std::move(cardinalities)),
        suffix_minus_one_(std::move(suffix_minus_one)) {}

  std::vector<size_t> cardinalities_;
  std::vector<double> suffix_minus_one_;  // n / n_j - 1 per column j
};

/// Table-level perturber using the deterministic gamma-diagonal matrix and
/// the O(1)-divergence-sampling kernel (alias method over the precomputed
/// per-column match probabilities).
class GammaDiagonalPerturber {
 public:
  /// Builds for `schema` at privacy level `gamma`.
  static StatusOr<GammaDiagonalPerturber> Create(const data::CategoricalSchema& schema,
                                                 double gamma);

  /// Perturbs every record of `table` (whose schema must match), consuming
  /// randomness from `rng` sequentially.
  StatusOr<data::CategoricalTable> Perturb(const data::CategoricalTable& table,
                                           random::Pcg64& rng) const;

  /// Deterministic, optionally multi-threaded perturbation: rows are split
  /// into fixed-size chunks, chunk c draws from its own Pcg64 stream derived
  /// from (seed, c), and threads only schedule chunks — so the output is
  /// bit-identical for a fixed seed at EVERY thread count (0 = hardware
  /// concurrency).
  StatusOr<data::CategoricalTable> PerturbSeeded(const data::CategoricalTable& table,
                                                 uint64_t seed,
                                                 size_t num_threads = 1) const;

  /// Perturbs only rows [range.begin, range.end) of `table` into a fresh
  /// table of range-size rows, drawing randomness from the GLOBAL chunk
  /// streams of the seeded contract — so concatenating the outputs of any
  /// chunk-aligned partition reproduces PerturbSeeded(table, seed) bit for
  /// bit. `range` must satisfy the seeded-chunk alignment (begin on a chunk
  /// boundary, end on one or at the table end).
  StatusOr<data::CategoricalTable> PerturbShardSeeded(
      const data::CategoricalTable& table, const data::RowRange& range,
      uint64_t seed, size_t num_threads = 1) const;

  /// Streaming form: perturbs the rows of `shard` (a window whose buffer
  /// need not be the whole table) with the chunk streams of its GLOBAL
  /// position — the primitive behind both the in-memory overload above and
  /// the pipeline's CSV/generator ingest, which never materialize a full
  /// table.
  StatusOr<data::CategoricalTable> PerturbShardSeeded(
      const data::ShardView& shard, uint64_t seed, size_t num_threads = 1) const;

  const GammaDiagonalMatrix& matrix() const { return matrix_; }
  const GammaPerturbPlan& plan() const { return plan_; }

 private:
  GammaDiagonalPerturber(GammaDiagonalMatrix matrix, GammaPerturbPlan plan,
                         random::AliasSampler divergence)
      : matrix_(std::move(matrix)),
        plan_(std::move(plan)),
        divergence_(std::move(divergence)) {}

  GammaDiagonalMatrix matrix_;
  GammaPerturbPlan plan_;
  random::AliasSampler divergence_;  // over {column 0..M-1, full match}
};

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_GAMMA_DIAGONAL_H_
