// The MASK perturbation scheme (Rizvi & Haritsa, VLDB 2002), the paper's
// first baseline (Section 3, Eq. 11; Section 7 "Perturbation Mechanisms").
//
// Categorical records are one-hot mapped to M_b = sum_j |S_U^j| boolean
// attributes; each bit is then flipped independently with probability 1 - p.
// Because every original record has exactly M ones, the record-level
// amplification is (p / (1-p))^(2M), so the strict privacy constraint
// gamma fixes p via  (p/(1-p))^(2M) <= gamma  (p = 0.5610 for CENSUS and
// 0.5524 for HEALTH at gamma = 19, matching the paper).
//
// Support reconstruction for a k-itemset inverts the k-fold tensor power of
// the 2x2 flip matrix [[p, 1-p], [1-p, p]] on the 2^k pattern counts. The
// tensor structure makes the solve O(k 2^k), but its condition number is
// (1/(2p-1))^k — EXPONENTIAL in itemset length, which is precisely the
// accuracy pathology FRAPP's gamma-diagonal matrix removes.

#ifndef FRAPP_CORE_MASK_SCHEME_H_
#define FRAPP_CORE_MASK_SCHEME_H_

#include <memory>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/boolean_vertical_index.h"
#include "frapp/data/boolean_view.h"
#include "frapp/data/pattern_count_source.h"
#include "frapp/data/sharded_boolean_vertical_index.h"
#include "frapp/mining/apriori.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace core {

/// The MASK mechanism: bit-flip perturbation plus tensor reconstruction.
class MaskScheme {
 public:
  /// `p` is the KEEP probability; requires p in (0.5, 1) so that the
  /// reconstruction matrix is invertible and well-oriented.
  static StatusOr<MaskScheme> Create(double p);

  /// Largest p satisfying the paper's privacy condition
  /// (p/(1-p))^(2M) <= gamma for M categorical attributes:
  /// p = t / (1 + t) with t = gamma^(1/(2M)).
  static StatusOr<MaskScheme> CalibrateForGamma(double gamma, size_t num_attributes);

  double keep_probability() const { return p_; }
  double flip_probability() const { return 1.0 - p_; }

  /// Record-level amplification (p/(1-p))^(2M) for M categorical attributes.
  double RecordAmplification(size_t num_attributes) const;

  /// Condition number of the k-itemset reconstruction matrix:
  /// (1 / (2p - 1))^k.
  double ConditionNumberForLength(size_t itemset_length) const;

  /// Flips every bit of every row independently with probability 1 - p.
  StatusOr<data::BooleanTable> Perturb(const data::BooleanTable& table,
                                       random::Pcg64& rng) const;

  /// Deterministic seeded form: rows are split into the global seeded-chunk
  /// grid (core/seeded_chunking.h) and each chunk draws its own RNG stream,
  /// so the output depends only on (table, seed) — never on the thread
  /// count — and any chunk-aligned shard partition concatenates bit-for-bit
  /// to the monolithic pass.
  StatusOr<data::BooleanTable> PerturbSeeded(const data::BooleanTable& table,
                                             uint64_t seed,
                                             size_t num_threads = 1) const;

  /// Shard form of PerturbSeeded: perturbs all rows of `onehot` (the one-hot
  /// encoding of one shard) with the chunk streams of its global position.
  /// `global_begin` is the global row index of the shard's first row and
  /// must be chunk-aligned.
  StatusOr<data::BooleanTable> PerturbShardSeeded(const data::BooleanTable& onehot,
                                                  size_t global_begin,
                                                  uint64_t seed,
                                                  size_t num_threads = 1) const;

  /// Reconstructs the original count of the all-ones pattern on the given
  /// bit positions from the perturbed table: counts all 2^k patterns, then
  /// applies the inverse flip transform along each bit axis. Returns the
  /// estimated support FRACTION (may be negative under noise).
  StatusOr<double> EstimateItemsetSupport(const data::BooleanTable& perturbed,
                                          const std::vector<size_t>& bit_positions) const;

  /// Inversion half of EstimateItemsetSupport, on precomputed pattern
  /// counts: counts[idx] = #perturbed rows whose k bits equal pattern idx
  /// (bit b of idx = b-th itemset position), num_rows = table size. Lets
  /// callers supply counts from a vertical index instead of a row scan.
  StatusOr<double> ReconstructFromPatternCounts(std::vector<double> counts,
                                               size_t num_rows) const;

 private:
  explicit MaskScheme(double p) : p_(p) {}

  double p_;
};

/// Support oracle plugging MASK into Apriori: one-hot layout resolution plus
/// per-candidate tensor reconstruction. Every pattern count comes from an
/// abstract PatternCountSource — a sharded vertical bitmap index of the
/// perturbed boolean database (no perturbed rows retained, which is what
/// lets the pipeline drop each shard's rows the moment they are indexed), or
/// a frapp/dist coordinator merging remote workers' vectors.
class MaskSupportEstimator : public mining::SupportEstimator {
 public:
  /// Reconstruction over whatever produces the total pattern counts.
  MaskSupportEstimator(const MaskScheme& scheme, data::BooleanLayout layout,
                       std::shared_ptr<data::PatternCountSource> source)
      : scheme_(scheme), layout_(std::move(layout)), source_(std::move(source)) {}

  /// Owns the (possibly multi-shard) index; `num_threads` parallelizes each
  /// pattern-counting pass (never affects results).
  MaskSupportEstimator(const MaskScheme& scheme, data::BooleanLayout layout,
                       data::ShardedBooleanVerticalIndex index,
                       size_t num_threads = 1)
      : MaskSupportEstimator(scheme, std::move(layout),
                             std::make_shared<data::LocalPatternCountSource>(
                                 std::move(index), num_threads)) {}

  /// Convenience for the monolithic Prepare() path: one shard over
  /// `perturbed` (the rows are not retained).
  MaskSupportEstimator(const MaskScheme& scheme, data::BooleanLayout layout,
                       const data::BooleanTable& perturbed)
      : MaskSupportEstimator(scheme, std::move(layout),
                             data::ShardedBooleanVerticalIndex::Build(
                                 perturbed, /*num_shards=*/1)) {}

  StatusOr<double> EstimateSupport(const mining::Itemset& itemset) override;

  /// Whole-pass batch: resolves every candidate's bit positions, fetches
  /// all pattern counts through one PatternCountsBatch (a remote source
  /// turns that into a few candidate-block round trips instead of one per
  /// candidate), then reconstructs per candidate — identical arithmetic to
  /// the one-at-a-time path.
  StatusOr<std::vector<double>> EstimateSupports(
      const std::vector<mining::Itemset>& itemsets) override;

 private:
  MaskScheme scheme_;
  data::BooleanLayout layout_;
  std::shared_ptr<data::PatternCountSource> source_;
};

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_MASK_SCHEME_H_
