// Itemset-level support reconstruction under the gamma-diagonal matrix
// (paper Section 6, Eq. 28).
//
// For an itemset over an attribute subset Cs, the transition matrix between
// subset-domain supports is again gamma-diagonal-form:
//     A_HL = gamma x + (n_C / n_Cs - 1) x   when H = L
//          = (n_C / n_Cs) x                 otherwise,
// where n_C = |S_U| and n_Cs = prod_{j in Cs} |S_U^j|. Because subset
// supports over the full subset domain sum to 1, each itemset's support
// can be reconstructed independently in O(1):
//     sup_hat_U = (sup_V - (n_C / n_Cs) x) / ((gamma - 1) x).
// This is what lets FRAPP plug into bottom-up Apriori with a constant,
// LENGTH-INDEPENDENT condition number (gamma + n_C - 1) / (gamma - 1).

#ifndef FRAPP_CORE_SUBSET_RECONSTRUCTION_H_
#define FRAPP_CORE_SUBSET_RECONSTRUCTION_H_

#include <cstdint>

#include "frapp/common/statusor.h"
#include "frapp/linalg/uniform_mixture.h"

namespace frapp {
namespace core {

/// Per-itemset support reconstruction for the (deterministic or randomized)
/// gamma-diagonal mechanism.
class GammaSubsetReconstructor {
 public:
  /// `gamma` > 1 and `full_domain_size` = n_C >= 2.
  static StatusOr<GammaSubsetReconstructor> Create(double gamma,
                                                   uint64_t full_domain_size);

  /// The Eq. 28 matrix over a subset domain of size n_Cs (diagnostics /
  /// condition-number reporting).
  StatusOr<linalg::UniformMixtureMatrix> SubsetMatrix(uint64_t subset_domain_size) const;

  /// Reconstructs one itemset's original-support estimate from its support
  /// fraction in the perturbed database. n_Cs is the domain size of the
  /// itemset's attribute subset.
  StatusOr<double> ReconstructSupport(double perturbed_support_fraction,
                                      uint64_t subset_domain_size) const;

  /// Condition number of every subset matrix: (gamma + n_C - 1)/(gamma - 1),
  /// independent of the subset (paper Section 7 / Figure 4).
  double ConditionNumber() const;

  double gamma() const { return gamma_; }
  double x() const { return x_; }
  uint64_t full_domain_size() const { return n_c_; }

 private:
  GammaSubsetReconstructor(double gamma, uint64_t n_c)
      : gamma_(gamma), n_c_(n_c), x_(1.0 / (gamma + static_cast<double>(n_c) - 1.0)) {}

  double gamma_;
  uint64_t n_c_;
  double x_;
};

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_SUBSET_RECONSTRUCTION_H_
