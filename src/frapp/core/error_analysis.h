// Estimation-error analysis (paper Sections 2.3 and 4.2).
//
// The perturbed count Y_v is a Poisson-binomial random variable: a sum of N
// independent, non-identical Bernoulli trials with success probabilities
// p_i = A[v][U_i] (Eq. 3-5). Its variance (Eq. 10) combined with the
// condition-number bound of Theorem 1 predicts the reconstruction error —
// these closed forms let users budget accuracy BEFORE running a mining
// campaign, and they are what the Figure-4 condition numbers translate into.

#ifndef FRAPP_CORE_ERROR_ANALYSIS_H_
#define FRAPP_CORE_ERROR_ANALYSIS_H_

#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/core/gamma_diagonal.h"
#include "frapp/core/subset_reconstruction.h"
#include "frapp/linalg/vector.h"

namespace frapp {
namespace core {

/// Variance of a Poisson-binomial variable: sum_i p_i (1 - p_i). The paper's
/// Eq. 25 form Np_bar - sum p_i^2 is algebraically identical.
double PoissonBinomialVariance(const std::vector<double>& probabilities);

/// Variance of the perturbed count Y_v under the gamma-diagonal matrix when
/// the original database holds `x_v` records with value v out of
/// `num_records` total (specialization of Eq. 10: the N trial probabilities
/// collapse to d for the x_v matching records and o for the rest).
double GammaPerturbedCountVariance(const GammaDiagonalMatrix& matrix, double x_v,
                                   double num_records);

/// Standard deviation of the reconstructed support estimate of one itemset
/// under the gamma-diagonal mechanism (Eq. 28 inverse applied to a
/// Poisson-binomial perturbed support):
///   Var(sup_hat) = [s d'(1-d') + (1-s) o'(1-o')] / (N ((gamma-1) x)^2),
/// where (d', o') are the subset matrix entries and s the true support.
/// This is the per-itemset accuracy budget: itemsets whose distance to the
/// mining threshold is below ~2 sigma are inherent coin flips.
StatusOr<double> ReconstructedSupportStddev(const GammaSubsetReconstructor& rec,
                                            double true_support,
                                            uint64_t subset_domain_size,
                                            size_t num_records);

/// Predicted RELATIVE error of full-domain reconstruction per Theorem 1,
/// with the numerator ||Y - E(Y)|| estimated by its root-mean-square
/// E||Y - EY||^2 = sum_v Var(Y_v):
///   bound ~= cond(A) * sqrt(sum_v Var(Y_v)) / ||E(Y)||.
/// `original_histogram` is the X vector of true counts.
StatusOr<double> PredictedRelativeReconstructionError(
    const GammaDiagonalMatrix& matrix, const linalg::Vector& original_histogram);

/// Number of records needed so that an itemset with true support
/// `true_support` is separated from threshold `min_support` by
/// `z_score` standard deviations of the reconstruction noise (inverts
/// ReconstructedSupportStddev; useful for experiment sizing).
StatusOr<double> RequiredRecordsForSeparation(const GammaSubsetReconstructor& rec,
                                              double true_support,
                                              double min_support,
                                              uint64_t subset_domain_size,
                                              double z_score);

}  // namespace core
}  // namespace frapp

#endif  // FRAPP_CORE_ERROR_ANALYSIS_H_
