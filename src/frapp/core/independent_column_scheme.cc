#include "frapp/core/independent_column_scheme.h"

#include <algorithm>
#include <cmath>

#include "frapp/common/parallel.h"
#include "frapp/core/seeded_chunking.h"
#include "frapp/data/domain_index.h"
#include "frapp/linalg/kronecker.h"

namespace frapp {
namespace core {

namespace {

/// Per-attribute diagonal probabilities d_j = gamma_j * x_j.
std::vector<double> StayProbabilities(const data::CategoricalSchema& schema,
                                      double per_attribute_gamma) {
  std::vector<double> stay(schema.num_attributes());
  for (size_t j = 0; j < stay.size(); ++j) {
    const double nj = static_cast<double>(schema.Cardinality(j));
    stay[j] = per_attribute_gamma / (per_attribute_gamma + nj - 1.0);
  }
  return stay;
}

/// One attribute value through its gamma-diagonal matrix.
uint8_t PerturbValue(uint8_t original, size_t card, double stay,
                     random::Pcg64& rng) {
  if (card == 1 || rng.NextBernoulli(stay)) return original;
  size_t value = static_cast<size_t>(rng.NextBounded(card - 1));
  if (value >= original) ++value;
  return static_cast<uint8_t>(value);
}

}  // namespace

StatusOr<IndependentColumnScheme> IndependentColumnScheme::Create(
    const data::CategoricalSchema& schema, double gamma) {
  if (!(gamma > 1.0)) return Status::InvalidArgument("gamma must exceed 1");
  const double per_attr =
      std::pow(gamma, 1.0 / static_cast<double>(schema.num_attributes()));
  return IndependentColumnScheme(schema, gamma, per_attr);
}

StatusOr<data::CategoricalTable> IndependentColumnScheme::Perturb(
    const data::CategoricalTable& table, random::Pcg64& rng) const {
  if (table.num_attributes() != schema_.num_attributes()) {
    return Status::InvalidArgument("table schema does not match scheme");
  }
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable out,
                         data::CategoricalTable::Create(table.schema()));
  out.Reserve(table.num_rows());

  const size_t m = schema_.num_attributes();
  const std::vector<double> stay = StayProbabilities(schema_, per_attribute_gamma_);
  std::vector<uint8_t> row(m);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (size_t j = 0; j < m; ++j) {
      row[j] = PerturbValue(table.Value(i, j), schema_.Cardinality(j), stay[j], rng);
    }
    FRAPP_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

StatusOr<data::CategoricalTable> IndependentColumnScheme::PerturbSeeded(
    const data::CategoricalTable& table, uint64_t seed,
    size_t num_threads) const {
  return PerturbShardSeeded(
      data::ShardView{&table, data::RowRange{0, table.num_rows()}, 0}, seed,
      num_threads);
}

StatusOr<data::CategoricalTable> IndependentColumnScheme::PerturbShardSeeded(
    const data::ShardView& shard, uint64_t seed, size_t num_threads) const {
  using internal::kPerturbChunkRows;
  FRAPP_RETURN_IF_ERROR(internal::ValidateShardView(shard));
  const data::CategoricalTable& table = *shard.rows;
  if (table.num_attributes() != schema_.num_attributes()) {
    return Status::InvalidArgument("table schema does not match scheme");
  }
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable out,
                         data::CategoricalTable::Create(table.schema()));
  out.AppendZeroRows(shard.size());
  internal::ColumnPointers cols(table, &out, shard.local.begin);
  const size_t m = schema_.num_attributes();
  const std::vector<double> stay = StayProbabilities(schema_, per_attribute_gamma_);
  internal::ForEachSeededChunk(
      shard.size(), shard.global_begin, seed, num_threads,
      [&](size_t begin, size_t end, random::Pcg64& rng) {
        for (size_t i = begin; i < end; ++i) {
          for (size_t j = 0; j < m; ++j) {
            cols.out[j][i] = PerturbValue(cols.in[j][i], schema_.Cardinality(j),
                                          stay[j], rng);
          }
        }
      });
  return out;
}

linalg::Matrix IndependentColumnScheme::AttributeMatrix(size_t attribute) const {
  const size_t card = schema_.Cardinality(attribute);
  const double x = 1.0 / (per_attribute_gamma_ + static_cast<double>(card) - 1.0);
  linalg::Matrix a(card, card, x);
  for (size_t i = 0; i < card; ++i) a(i, i) = per_attribute_gamma_ * x;
  return a;
}

double IndependentColumnScheme::ConditionNumberForAttributes(
    const std::vector<size_t>& attributes) const {
  double cond = 1.0;
  for (size_t j : attributes) {
    const double nj = static_cast<double>(schema_.Cardinality(j));
    cond *= (per_attribute_gamma_ + nj - 1.0) / (per_attribute_gamma_ - 1.0);
  }
  return cond;
}

StatusOr<double> IndependentColumnSupportEstimator::EstimateSupport(
    const mining::Itemset& itemset) {
  if (itemset.empty()) return Status::InvalidArgument("empty itemset");
  const uint32_t mask = itemset.AttributeMask();
  auto it = cache_.find(mask);
  if (it == cache_.end()) {
    const std::vector<size_t> attrs = itemset.AttributeIndices();
    FRAPP_ASSIGN_OR_RETURN(
        data::DomainIndexer indexer,
        data::DomainIndexer::OverSubset(scheme_.schema(), attrs));
    // Joint histogram over the subset domain as one batched counting pass:
    // cell u of the histogram is the support count of the itemset fixing
    // every subset attribute to u's categories. Integer counts summed over
    // shards — identical to a row scan of the perturbed table.
    const size_t domain = static_cast<size_t>(indexer.domain_size());
    std::vector<mining::Itemset> cells;
    cells.reserve(domain);
    for (size_t u = 0; u < domain; ++u) {
      const std::vector<size_t> values = indexer.Decode(static_cast<uint64_t>(u));
      std::vector<mining::Item> items;
      items.reserve(attrs.size());
      for (size_t a = 0; a < attrs.size(); ++a) {
        items.push_back(mining::Item{static_cast<uint16_t>(attrs[a]),
                                     static_cast<uint16_t>(values[a])});
      }
      cells.push_back(mining::Itemset::FromSortedUnchecked(std::move(items)));
    }
    FRAPP_ASSIGN_OR_RETURN(const std::vector<uint64_t> counts,
                           source_->CountSupports(cells));
    linalg::Vector y(domain);
    for (size_t u = 0; u < domain; ++u) y[u] = static_cast<double>(counts[u]);
    const double n = static_cast<double>(source_->num_rows());
    if (n > 0.0) y.Scale(1.0 / n);

    std::vector<linalg::Matrix> factors;
    factors.reserve(attrs.size());
    for (size_t j : attrs) factors.push_back(scheme_.AttributeMatrix(j));
    FRAPP_ASSIGN_OR_RETURN(linalg::Vector x, linalg::KroneckerSolve(factors, y));
    it = cache_.emplace(mask, std::move(x)).first;
  }

  // Index of the candidate's category combination within the subset domain.
  FRAPP_ASSIGN_OR_RETURN(
      data::DomainIndexer indexer,
      data::DomainIndexer::OverSubset(scheme_.schema(), itemset.AttributeIndices()));
  std::vector<size_t> values;
  values.reserve(itemset.size());
  for (const mining::Item& item : itemset.items()) values.push_back(item.category);
  return it->second[static_cast<size_t>(indexer.Encode(values))];
}

}  // namespace core
}  // namespace frapp
