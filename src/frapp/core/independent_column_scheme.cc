#include "frapp/core/independent_column_scheme.h"

#include <cmath>

#include "frapp/linalg/kronecker.h"

namespace frapp {
namespace core {

StatusOr<IndependentColumnScheme> IndependentColumnScheme::Create(
    const data::CategoricalSchema& schema, double gamma) {
  if (!(gamma > 1.0)) return Status::InvalidArgument("gamma must exceed 1");
  const double per_attr =
      std::pow(gamma, 1.0 / static_cast<double>(schema.num_attributes()));
  return IndependentColumnScheme(schema, gamma, per_attr);
}

StatusOr<data::CategoricalTable> IndependentColumnScheme::Perturb(
    const data::CategoricalTable& table, random::Pcg64& rng) const {
  if (table.num_attributes() != schema_.num_attributes()) {
    return Status::InvalidArgument("table schema does not match scheme");
  }
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable out,
                         data::CategoricalTable::Create(table.schema()));
  out.Reserve(table.num_rows());

  // Per-attribute diagonal probability d_j = gamma_j * x_j.
  const size_t m = schema_.num_attributes();
  std::vector<double> stay(m);
  for (size_t j = 0; j < m; ++j) {
    const double nj = static_cast<double>(schema_.Cardinality(j));
    stay[j] = per_attribute_gamma_ / (per_attribute_gamma_ + nj - 1.0);
  }

  std::vector<uint8_t> row(m);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (size_t j = 0; j < m; ++j) {
      const uint8_t original = table.Value(i, j);
      const size_t card = schema_.Cardinality(j);
      if (card == 1 || rng.NextBernoulli(stay[j])) {
        row[j] = original;
      } else {
        size_t value = static_cast<size_t>(rng.NextBounded(card - 1));
        if (value >= original) ++value;
        row[j] = static_cast<uint8_t>(value);
      }
    }
    FRAPP_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

linalg::Matrix IndependentColumnScheme::AttributeMatrix(size_t attribute) const {
  const size_t card = schema_.Cardinality(attribute);
  const double x = 1.0 / (per_attribute_gamma_ + static_cast<double>(card) - 1.0);
  linalg::Matrix a(card, card, x);
  for (size_t i = 0; i < card; ++i) a(i, i) = per_attribute_gamma_ * x;
  return a;
}

double IndependentColumnScheme::ConditionNumberForAttributes(
    const std::vector<size_t>& attributes) const {
  double cond = 1.0;
  for (size_t j : attributes) {
    const double nj = static_cast<double>(schema_.Cardinality(j));
    cond *= (per_attribute_gamma_ + nj - 1.0) / (per_attribute_gamma_ - 1.0);
  }
  return cond;
}

StatusOr<double> IndependentColumnSupportEstimator::EstimateSupport(
    const mining::Itemset& itemset) {
  if (itemset.empty()) return Status::InvalidArgument("empty itemset");
  const uint32_t mask = itemset.AttributeMask();
  auto it = cache_.find(mask);
  if (it == cache_.end()) {
    const std::vector<size_t> attrs = itemset.AttributeIndices();
    FRAPP_ASSIGN_OR_RETURN(
        data::DomainIndexer indexer,
        data::DomainIndexer::OverSubset(scheme_.schema(), attrs));
    linalg::Vector y = perturbed_.JointHistogram(indexer);
    const double n = static_cast<double>(perturbed_.num_rows());
    if (n > 0.0) y.Scale(1.0 / n);

    std::vector<linalg::Matrix> factors;
    factors.reserve(attrs.size());
    for (size_t j : attrs) factors.push_back(scheme_.AttributeMatrix(j));
    FRAPP_ASSIGN_OR_RETURN(linalg::Vector x, linalg::KroneckerSolve(factors, y));
    it = cache_.emplace(mask, std::move(x)).first;
  }

  // Index of the candidate's category combination within the subset domain.
  FRAPP_ASSIGN_OR_RETURN(
      data::DomainIndexer indexer,
      data::DomainIndexer::OverSubset(scheme_.schema(), itemset.AttributeIndices()));
  std::vector<size_t> values;
  values.reserve(itemset.size());
  for (const mining::Item& item : itemset.items()) values.push_back(item.category);
  return it->second[static_cast<size_t>(indexer.Encode(values))];
}

}  // namespace core
}  // namespace frapp
