#include "frapp/core/privacy.h"

#include <cmath>
#include <limits>

namespace frapp {
namespace core {

StatusOr<double> GammaFromRequirement(const PrivacyRequirement& requirement) {
  const double rho1 = requirement.rho1;
  const double rho2 = requirement.rho2;
  if (!(rho1 > 0.0) || !(rho1 < 1.0) || !(rho2 > 0.0) || !(rho2 < 1.0)) {
    return Status::InvalidArgument("rho1 and rho2 must lie in (0, 1)");
  }
  if (!(rho2 > rho1)) {
    return Status::InvalidArgument("privacy requires rho2 > rho1");
  }
  return rho2 * (1.0 - rho1) / (rho1 * (1.0 - rho2));
}

double MatrixAmplification(const linalg::Matrix& a) {
  double worst = 1.0;
  for (size_t v = 0; v < a.rows(); ++v) {
    double row_max = 0.0;
    double row_min = std::numeric_limits<double>::infinity();
    for (size_t u = 0; u < a.cols(); ++u) {
      const double entry = a(v, u);
      row_max = std::max(row_max, entry);
      row_min = std::min(row_min, entry);
    }
    if (row_max == 0.0) continue;  // all-zero row constrains nothing
    if (row_min <= 0.0) return std::numeric_limits<double>::infinity();
    worst = std::max(worst, row_max / row_min);
  }
  return worst;
}

bool SatisfiesAmplification(const linalg::Matrix& a, double gamma, double tol) {
  return MatrixAmplification(a) <= gamma * (1.0 + tol);
}

double PosteriorFromRatio(double prior, double ratio) {
  const double numerator = prior * ratio;
  return numerator / (numerator + (1.0 - prior));
}

StatusOr<PosteriorRange> RandomizedPosteriorRange(double prior, double gamma,
                                                  uint64_t n, double alpha) {
  if (!(prior > 0.0) || !(prior < 1.0)) {
    return Status::InvalidArgument("prior must lie in (0, 1)");
  }
  if (!(gamma > 1.0)) return Status::InvalidArgument("gamma must exceed 1");
  if (n < 2) return Status::InvalidArgument("domain size must be >= 2");
  const double x = 1.0 / (gamma + static_cast<double>(n) - 1.0);
  if (alpha < 0.0 || alpha > gamma * x + 1e-15) {
    return Status::InvalidArgument("alpha must lie in [0, gamma * x]");
  }

  // Likelihood ratio as a function of the realized randomization r:
  // (gamma x + r) / (x - r / (n - 1)). Monotone increasing in r over the
  // admissible range, so the extremes are attained at +-alpha.
  const auto ratio = [&](double r) {
    const double diag = gamma * x + r;
    const double off = x - r / (static_cast<double>(n) - 1.0);
    if (off <= 0.0) return std::numeric_limits<double>::infinity();
    return diag / off;
  };

  PosteriorRange range;
  range.lower = PosteriorFromRatio(prior, ratio(-alpha));
  range.center = PosteriorFromRatio(prior, ratio(0.0));
  range.upper = PosteriorFromRatio(prior, ratio(alpha));
  return range;
}

}  // namespace core
}  // namespace frapp
