#include "frapp/core/naive_perturber.h"

namespace frapp {
namespace core {

StatusOr<NaivePerturber> NaivePerturber::Create(const data::CategoricalSchema& schema,
                                                const PerturbationMatrix& matrix,
                                                uint64_t max_domain) {
  const data::DomainIndexer indexer = data::DomainIndexer::OverAllAttributes(schema);
  if (indexer.domain_size() != matrix.domain_size()) {
    return Status::InvalidArgument("matrix domain does not match schema domain");
  }
  if (indexer.domain_size() > max_domain) {
    return Status::InvalidArgument(
        "joint domain too large for the naive CDF-scan perturber");
  }
  return NaivePerturber(matrix, indexer);
}

StatusOr<data::CategoricalTable> NaivePerturber::Perturb(
    const data::CategoricalTable& table, random::Pcg64& rng) const {
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable out,
                         data::CategoricalTable::Create(table.schema()));
  out.Reserve(table.num_rows());
  const uint64_t n = matrix_.domain_size();

  std::vector<uint8_t> row(table.num_attributes());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (size_t j = 0; j < row.size(); ++j) row[j] = table.Value(i, j);
    const uint64_t u = indexer_.EncodeFromFullRecord(row);

    // Paper Section 5, algorithm 1: r ~ U(0,1); return first v with
    // F(v-1) < r <= F(v).
    const double r = rng.NextDouble();
    double cdf = 0.0;
    uint64_t v = n - 1;  // fp slack: default to the last value
    for (uint64_t candidate = 0; candidate < n; ++candidate) {
      cdf += matrix_.Entry(candidate, u);
      if (r <= cdf) {
        v = candidate;
        break;
      }
    }

    const std::vector<size_t> values = indexer_.Decode(v);
    for (size_t j = 0; j < row.size(); ++j) row[j] = static_cast<uint8_t>(values[j]);
    FRAPP_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace core
}  // namespace frapp
