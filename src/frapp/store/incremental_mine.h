// Incremental append-only mining: data growth as a pure delta.
//
// A from-scratch privacy-preserving mine costs perturb + index + count over
// EVERY row, every time. But under the seeded-chunk contract the perturbed
// database is a pure function of (chunk index, global seed), and both
// counting substrates are linear over row partitions — so when a table has
// only GROWN since the last mine, all previously counted rows contribute
// exactly the count vectors they contributed before. AppendAndMine exploits
// that: it keeps per-candidate count vectors for rows [window_begin,
// high_water) materialized in a CountStore, perturbs and counts only the
// newly appended chunks (and the partial tail chunk, which is never
// stored), vector-adds, and re-runs only the cheap Apriori lattice walk.
// The mined result is BIT-IDENTICAL to PrivacyPipeline::Run over the full
// window — the counts reaching the reconstruction estimators are the same
// integers, so every double downstream is the same double.
//
// WHAT is materialized: two complementary layers.
//
//  1. COUNTS of a candidate SUPERSET — every candidate whose estimated
//     support clears a retention threshold fixed at store creation
//     (min_support times (1 - superset_margin)). The superset walk mirrors
//     Apriori's candidate generation at the lower threshold, so a later run
//     whose supmin drifts anywhere above retention finds every candidate it
//     evaluates already materialized.
//  2. The perturbed SUBSTRATE itself — the per-chunk bitmap-index planes of
//     the perturbed rows [window_begin, high_water). Under the seeded-chunk
//     contract these bits are immutable once written, so append pushes new
//     chunk planes and expiry pops old ones.
//
// The substrate is what keeps store MISSES cheap. Estimated supports jitter
// as rows are appended (gamma-diagonal inversion over the joint domain
// amplifies count noise), so candidates flicker in and out of the retained
// superset between runs no matter where the thresholds sit. A candidate the
// store has no counts for is recounted by SIMD scans over the STORED
// planes — no re-perturbation, no second pass over the source — and the
// event is recorded in IncrementalStats::superset_fallbacks: degraded only
// by a bitmap scan, never a wrong or failed mine, and the source is read
// exactly once per run regardless.
//
// Windowed / decayed streams are the same algebra with a subtraction:
// raising window_begin_row expires whole chunks, whose count vectors are
// counted from the stored substrate and SUBTRACTED from the stored
// vectors — bit-identical to a from-scratch mine of the surviving window,
// because integer vector subtraction recovers exactly the counts the
// expired rows contributed. The source never needs to cover expired rows
// again.
//
// The driver opens its TableSource through a factory rather than holding
// one open stream: incremental ingest wants to seek (binary sources skip
// straight to the delta), and a CLI can hand over a path instead of a live
// handle.

#ifndef FRAPP_STORE_INCREMENTAL_MINE_H_
#define FRAPP_STORE_INCREMENTAL_MINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "frapp/common/statusor.h"
#include "frapp/data/schema.h"
#include "frapp/dist/mechanism_spec.h"
#include "frapp/mining/apriori.h"
#include "frapp/pipeline/table_source.h"
#include "frapp/store/count_store.h"

namespace frapp {
namespace store {

/// Opens a fresh view of the table source. Called exactly once per
/// AppendAndMine run: the stored range (expiry, fallbacks) is served from
/// the store's materialized substrate, never from the source.
using SourceFactory =
    std::function<StatusOr<std::unique_ptr<pipeline::TableSource>>()>;

struct IncrementalOptions {
  /// Mining parameters (supmin, max length). min_support may drift between
  /// runs against the same store; only drifting below the store's retention
  /// threshold costs fallback recounts.
  mining::AprioriOptions mining;

  /// Global perturbation seed (identity component; must match the store).
  uint64_t perturb_seed = 7;

  /// Worker threads for perturbation and counting (0 = hardware
  /// concurrency). Never affects results.
  size_t num_threads = 1;

  /// Epsilon slack of the retained candidate superset: retention threshold
  /// = min_support * (1 - superset_margin), fixed into the store identity
  /// at creation. A larger margin lets supmin drop further between runs
  /// without any store misses, at the cost of more materialized entries.
  /// Misses are cheap either way (recounted from the stored substrate, not
  /// the source), so the default only needs to absorb moderate drift. Must
  /// be in [0, 1).
  double superset_margin = 0.25;

  /// First row of the surviving window (chunk-aligned). Raising it between
  /// runs expires the chunks below it by subtraction; it can never move
  /// backwards past data the store no longer covers.
  uint64_t window_begin_row = 0;

  /// Identifies the table source (file path, dataset spec); stored in the
  /// identity so a store can never be replayed against different data.
  std::string source_id;
};

struct IncrementalStats {
  /// Rows and whole chunks in the mined window [window_begin, total).
  size_t total_rows = 0;
  size_t total_chunks = 0;

  /// Newly appended whole chunks actually perturbed + counted this run.
  size_t delta_chunks = 0;

  /// Chunks expired out of the window and counted once for subtraction.
  size_t expired_chunks = 0;

  /// Rows of the partial tail chunk (counted fresh every run, never
  /// stored).
  size_t tail_rows = 0;

  /// Candidates served by merging a stored vector (the incremental win).
  size_t store_hits = 0;

  /// Candidates counted without a stored vector.
  size_t store_misses = 0;

  /// Store misses recounted from the materialized substrate (candidate
  /// fell outside the retained superset). Always equals store_misses when
  /// stored chunks exist; the recount never touches the source.
  size_t superset_fallbacks = 0;

  /// Entries materialized after commit.
  size_t stored_entries = 0;

  /// True when the store started this run empty (first mine).
  bool store_created = false;
};

struct IncrementalResult {
  mining::AprioriResult mined;
  IncrementalStats stats;
};

/// The store identity describing (spec, schema, options) at CREATION time.
/// Later runs inherit the store's own retention threshold instead of
/// recomputing it from their (possibly drifted) min_support.
StoreIdentity MakeStoreIdentity(const dist::MechanismSpec& spec,
                                const data::CategoricalSchema& schema,
                                const IncrementalOptions& options);

/// Loads the store at `path` if the file exists (any identity mismatch with
/// `identity` — except the retention threshold, which the file owns — is an
/// error), otherwise returns a fresh empty store with `identity`. Sets
/// `*created` accordingly when non-null.
StatusOr<CountStore> LoadOrCreateStore(const std::string& path,
                                       const StoreIdentity& identity,
                                       bool* created = nullptr);

/// Mines the window [options.window_begin_row, total rows) of the source,
/// reusing every stored count vector and perturbing only the appended
/// chunks and the partial tail (expired chunks and fallback recounts are
/// served from the stored substrate). On success the store holds the new
/// window's superset counts and substrate (call SaveToFile to persist); on
/// error the store is untouched. Bit-identical to PrivacyPipeline::Run over
/// the same window for every mechanism, source kind, and thread count.
StatusOr<IncrementalResult> AppendAndMine(CountStore& store,
                                          const dist::MechanismSpec& spec,
                                          const SourceFactory& open_source,
                                          const IncrementalOptions& options);

}  // namespace store
}  // namespace frapp

#endif  // FRAPP_STORE_INCREMENTAL_MINE_H_
