#include "frapp/store/incremental_mine.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "frapp/data/boolean_view.h"
#include "frapp/data/boolean_vertical_index.h"
#include "frapp/data/pattern_count_source.h"
#include "frapp/data/shard_io.h"
#include "frapp/data/sharded_boolean_vertical_index.h"
#include "frapp/data/sharded_table.h"
#include "frapp/mining/count_source.h"
#include "frapp/mining/sharded_vertical_index.h"
#include "frapp/mining/vertical_index.h"

namespace frapp {
namespace store {

namespace {

constexpr size_t kChunk = data::kShardAlignmentRows;

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Accumulated per-slice indexes of one perturbed row segment (expired,
/// delta, tail, or the fallback's stored range). Exactly one of the two
/// vectors is used, by mechanism shard kind.
struct Segment {
  std::vector<mining::VerticalIndex> cat;
  std::vector<data::BooleanVerticalIndex> boolean;
  size_t rows = 0;
};

/// Sub-view of rows [gbegin, gend) of a pulled shard, in global row terms.
/// Slicing at chunk boundaries before perturbing is bit-exact: seeded
/// perturbation derives its RNG streams from GLOBAL chunk indexes, so a
/// chunk perturbs identically whether its shard held one chunk or ten.
data::ShardView Slice(const data::ShardView& view, size_t gbegin,
                      size_t gend) {
  data::ShardView out;
  out.rows = view.rows;
  out.local = {view.local.begin + (gbegin - view.global_begin),
               view.local.begin + (gend - view.global_begin)};
  out.global_begin = gbegin;
  return out;
}

Status PerturbInto(core::Mechanism& mech, bool boolean_shards,
                   const data::ShardView& view, uint64_t seed,
                   size_t num_threads, Segment& segment) {
  if (view.size() == 0) return Status::OK();
  if (boolean_shards) {
    FRAPP_ASSIGN_OR_RETURN(const data::BooleanTable perturbed,
                           mech.PerturbBooleanShard(view, seed, num_threads));
    segment.boolean.push_back(data::BooleanVerticalIndex(perturbed));
  } else {
    FRAPP_ASSIGN_OR_RETURN(const data::CategoricalTable perturbed,
                           mech.PerturbShard(view, seed, num_threads));
    segment.cat.push_back(mining::VerticalIndex::Build(perturbed, num_threads));
  }
  segment.rows += view.size();
  return Status::OK();
}

struct IngestOutput {
  Segment delta;
  Segment tail;
  /// Global end row of the last shard seen (0 when nothing was pulled).
  size_t observed_end = 0;
};

/// One forward pass over the source from growth_begin, splitting
/// [growth_begin, end-of-stream) at the last whole-chunk boundary into
/// delta and tail. The DELTA is perturbed and indexed ONE CHUNK PER SLICE:
/// each resulting index covers exactly kChunk rows, so its raw bitmap
/// planes are the substrate chunks the store materializes. The split point
/// is only known once the stream ends, so shards are processed with
/// one-shard lookahead: a shard is perturbed when its successor arrives
/// (then it is provably not final and ends chunk-aligned, per the
/// TableSource contract), and the final shard is split at
/// W = floor(total / chunk) * chunk.
StatusOr<IngestOutput> IngestGrowth(pipeline::TableSource& source,
                                    core::Mechanism& mech,
                                    bool boolean_shards, uint64_t seed,
                                    size_t num_threads, size_t growth_begin) {
  IngestOutput out;
  FRAPP_RETURN_IF_ERROR(source.SkipToRow(growth_begin));

  const auto delta_chunks = [&](const data::ShardView& view, size_t glo,
                                size_t gend) -> Status {
    for (size_t c = glo; c < gend; c += kChunk) {
      FRAPP_RETURN_IF_ERROR(PerturbInto(mech, boolean_shards,
                                        Slice(view, c, c + kChunk), seed,
                                        num_threads, out.delta));
    }
    return Status::OK();
  };

  const auto process = [&](const pipeline::PulledShard& shard,
                           bool is_final) -> Status {
    const size_t b = shard.view.global_begin;
    const size_t e = b + shard.view.size();
    const size_t glo = std::max(b, growth_begin);
    if (glo >= e) return Status::OK();
    if (!is_final) {
      // Non-final shards end chunk-aligned.
      return delta_chunks(shard.view, glo, e);
    }
    const size_t whole = e / kChunk * kChunk;  // >= glo: both aligned
    if (glo < whole) {
      FRAPP_RETURN_IF_ERROR(delta_chunks(shard.view, glo, whole));
    }
    if (whole < e) {
      FRAPP_RETURN_IF_ERROR(PerturbInto(mech, boolean_shards,
                                        Slice(shard.view, std::max(glo, whole), e),
                                        seed, num_threads, out.tail));
    }
    return Status::OK();
  };

  std::optional<pipeline::PulledShard> prev;
  while (true) {
    pipeline::PulledShard cur;
    FRAPP_ASSIGN_OR_RETURN(const bool more, source.NextShard(&cur));
    if (!more) break;
    if (cur.view.size() == 0) continue;
    if (prev.has_value()) FRAPP_RETURN_IF_ERROR(process(*prev, false));
    prev = std::move(cur);
  }
  if (prev.has_value()) {
    FRAPP_RETURN_IF_ERROR(process(*prev, true));
    out.observed_end = prev->view.global_begin + prev->view.size();
  }
  return out;
}

/// Reassembles the indexes of substrate chunks [chunk_begin, chunk_end)
/// into a countable segment — the zero-perturbation path that serves both
/// window expiry and superset-fallback recounts from the store itself.
Segment SegmentFromSubstrate(const CountStore& store, size_t chunk_begin,
                             size_t chunk_end, bool boolean_shards,
                             const std::vector<size_t>& offsets,
                             size_t num_bits) {
  Segment segment;
  for (size_t c = chunk_begin; c < chunk_end; ++c) {
    const SubstrateChunk& chunk = store.substrate()[c];
    if (boolean_shards) {
      segment.boolean.push_back(
          data::BooleanVerticalIndex::FromRaw(kChunk, num_bits, chunk.words));
    } else {
      segment.cat.push_back(
          mining::VerticalIndex::FromRaw(kChunk, offsets, chunk.words));
    }
    segment.rows += kChunk;
  }
  return segment;
}

/// Count oracle over one built segment. Empty segments answer all-zero
/// vectors without ever building an index.
class SegmentCounter {
 public:
  SegmentCounter() = default;
  // Parallel counting only pays for itself on multi-chunk segments; a tail
  // or single-chunk delta counts faster on the calling thread than behind a
  // pool dispatch. Thread count never affects results, so the clamp is pure
  // scheduling.
  SegmentCounter(Segment segment, bool boolean_shards, size_t num_threads)
      : rows_(segment.rows),
        num_threads_(segment.rows < 2 * kChunk ? 1 : num_threads) {
    if (rows_ == 0) return;
    if (boolean_shards) {
      bool_.emplace(data::ShardedBooleanVerticalIndex::FromShards(
          std::move(segment.boolean)));
    } else {
      cat_.emplace(
          mining::ShardedVerticalIndex::FromShards(std::move(segment.cat)));
    }
  }

  size_t rows() const { return rows_; }

  /// Support-kind counting: one flat count per candidate, no per-candidate
  /// vectors — the hot path of the incremental walk.
  StatusOr<std::vector<int64_t>> CountFlat(
      const std::vector<mining::Itemset>& itemsets) const {
    if (!cat_.has_value()) {
      if (rows_ != 0) return Status::Internal("support count on boolean segment");
      return std::vector<int64_t>(itemsets.size(), 0);
    }
    const std::vector<size_t> counts =
        cat_->CountSupports(itemsets, num_threads_);
    std::vector<int64_t> out(counts.size());
    for (size_t i = 0; i < counts.size(); ++i) {
      out[i] = static_cast<int64_t>(counts[i]);
    }
    return out;
  }

  /// Boolean-kind counting: counts[i] is the 2^k PRE-Mobius superset vector
  /// of positions[i] (parallel to `itemsets`).
  StatusOr<std::vector<std::vector<int64_t>>> Count(
      const std::vector<mining::Itemset>& itemsets,
      const std::vector<std::vector<size_t>>& positions) const {
    std::vector<std::vector<int64_t>> out(itemsets.size());
    for (size_t i = 0; i < itemsets.size(); ++i) {
      const size_t k = positions[i].size();
      if (k > data::BooleanVerticalIndex::kMaxPatternLength) {
        return Status::InvalidArgument("pattern length above the 2^k cap");
      }
      out[i] = bool_.has_value()
                   ? bool_->SupersetCounts(positions[i], num_threads_)
                   : std::vector<int64_t>(size_t{1} << k, 0);
    }
    return out;
  }

 private:
  std::optional<mining::ShardedVerticalIndex> cat_;
  std::optional<data::ShardedBooleanVerticalIndex> bool_;
  size_t rows_ = 0;
  size_t num_threads_ = 1;
};

/// SupportCountSource answering the walker's ONE batched query per pass.
/// The gamma estimators (DET-GD, RAN-GD) pass the candidate vector through
/// to CountSupports by reference, so the source recognizes the pass batch
/// by pointer identity and serves the precomputed merged totals with zero
/// per-candidate key hashing. An estimator that probes anything else (e.g.
/// IND-GD's full subset-domain histograms) is asking for counts no store
/// materializes — a loud error, never a silent zero.
class BatchSupportCountSource : public mining::SupportCountSource {
 public:
  explicit BatchSupportCountSource(size_t num_rows) : num_rows_(num_rows) {}

  void SetBatch(const std::vector<mining::Itemset>* batch,
                std::vector<uint64_t> totals) {
    batch_ = batch;
    totals_ = std::move(totals);
  }

  size_t num_rows() const override { return num_rows_; }

  StatusOr<std::vector<uint64_t>> CountSupports(
      const std::vector<mining::Itemset>& itemsets) override {
    if (&itemsets != batch_) {
      return Status::Internal(
          "estimator queried outside the incremental pass batch");
    }
    return totals_;
  }

 private:
  size_t num_rows_;
  const std::vector<mining::Itemset>* batch_ = nullptr;
  std::vector<uint64_t> totals_;
};

/// PatternCountSource answering from per-pass merged PRE-Mobius superset
/// totals, applying the Mobius transform per query — exactly how the local
/// index and the dist coordinator derive exact-pattern counts, so the
/// integers reaching the boolean estimators are identical.
class MapPatternCountSource : public data::PatternCountSource {
 public:
  MapPatternCountSource(size_t num_rows, size_t num_bits)
      : num_rows_(num_rows), num_bits_(num_bits) {}

  void Clear() { superset_counts_.clear(); }
  void Set(const StoreKey& key, std::vector<int64_t> counts) {
    superset_counts_[key] = std::move(counts);
  }

  size_t num_rows() const override { return num_rows_; }
  size_t num_bits() const override { return num_bits_; }

  StatusOr<std::vector<int64_t>> PatternCounts(
      const std::vector<size_t>& positions) override {
    const auto it = superset_counts_.find(KeyOfPositions(positions));
    if (it == superset_counts_.end()) {
      return Status::Internal(
          "incremental walker queried an unmaterialized candidate");
    }
    std::vector<int64_t> counts = it->second;
    data::BooleanVerticalIndex::MobiusExactCounts(counts);
    return counts;
  }

 private:
  size_t num_rows_;
  size_t num_bits_;
  std::unordered_map<StoreKey, std::vector<int64_t>, StoreKeyHash>
      superset_counts_;
};

void AddInto(std::vector<int64_t>& acc, const std::vector<int64_t>& v) {
  for (size_t i = 0; i < acc.size(); ++i) acc[i] += v[i];
}

void SubFrom(std::vector<int64_t>& acc, const std::vector<int64_t>& v) {
  for (size_t i = 0; i < acc.size(); ++i) acc[i] -= v[i];
}

}  // namespace

StoreIdentity MakeStoreIdentity(const dist::MechanismSpec& spec,
                                const data::CategoricalSchema& schema,
                                const IncrementalOptions& options) {
  const bool boolean = spec.kind == dist::MechanismSpec::Kind::kMask ||
                       spec.kind == dist::MechanismSpec::Kind::kCutPaste;
  StoreIdentity identity;
  identity.source_id = options.source_id;
  identity.schema_fingerprint = data::SchemaFingerprint(schema);
  identity.spec_key = dist::CanonicalSpecKey(spec);
  identity.perturb_seed = options.perturb_seed;
  identity.retention_bits = DoubleBits(options.mining.min_support *
                                       (1.0 - options.superset_margin));
  identity.kind = boolean ? CountKind::kBooleanSuperset : CountKind::kSupport;
  identity.num_bits = boolean ? data::BooleanLayout(schema).num_bits() : 0;
  return identity;
}

StatusOr<CountStore> LoadOrCreateStore(const std::string& path,
                                       const StoreIdentity& identity,
                                       bool* created) {
  if (created != nullptr) *created = false;
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) {
      if (created != nullptr) *created = true;
      return CountStore(identity);
    }
  }
  FRAPP_ASSIGN_OR_RETURN(CountStore store, CountStore::LoadFromFile(path));
  StoreIdentity want = identity;
  want.retention_bits = store.identity().retention_bits;
  if (!(store.identity() == want)) {
    return Status::FailedPrecondition(
        "count store '" + path +
        "' was materialized for a different source, schema, mechanism, or "
        "seed; refusing to merge mismatched counts");
  }
  return store;
}

StatusOr<IncrementalResult> AppendAndMine(CountStore& store,
                                          const dist::MechanismSpec& spec,
                                          const SourceFactory& open_source,
                                          const IncrementalOptions& options) {
  const double supmin = options.mining.min_support;
  if (!(supmin > 0.0) || supmin > 1.0) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  if (!(options.superset_margin >= 0.0) || options.superset_margin >= 1.0) {
    return Status::InvalidArgument("superset_margin must be in [0, 1)");
  }
  if (options.window_begin_row % kChunk != 0) {
    return Status::InvalidArgument(
        "window_begin_row must be a multiple of the chunk quantum (" +
        std::to_string(kChunk) + ")");
  }

  FRAPP_ASSIGN_OR_RETURN(std::unique_ptr<pipeline::TableSource> source,
                         open_source());
  if (source == nullptr) {
    return Status::InvalidArgument("source factory returned no source");
  }
  // By value, NOT by reference: the source is released right after ingest
  // (line ~450) to drop its table before the walk, and a source that owns
  // its schema (generated in-memory tables, binary readers) takes the
  // referent with it — the walk would then size its candidate loops from
  // freed memory.
  const data::CategoricalSchema schema = source->schema();

  StoreIdentity want = MakeStoreIdentity(spec, schema, options);
  want.retention_bits = store.identity().retention_bits;
  if (!(store.identity() == want)) {
    return Status::FailedPrecondition(
        "count store identity does not match this source/mechanism/seed; "
        "refusing to merge mismatched counts");
  }
  const double retention = DoubleFromBits(store.identity().retention_bits);

  FRAPP_ASSIGN_OR_RETURN(std::unique_ptr<core::Mechanism> mech,
                         dist::MakeMechanism(spec, schema));
  if (!mech->SupportsShardStreaming()) {
    return Status::Unimplemented(
        mech->name() + " does not implement the shard-streaming contract");
  }
  const bool boolean =
      mech->shard_kind() == core::Mechanism::ShardKind::kBoolean;

  const size_t new_win = options.window_begin_row;
  if (new_win < store.window_begin()) {
    return Status::FailedPrecondition(
        "window cannot move backwards: rows before " +
        std::to_string(store.window_begin()) + " have already expired");
  }
  // A window that swallows the whole stored range leaves nothing reusable:
  // ignore the store's entries and count the surviving window from scratch.
  const bool store_usable = store.high_water() > new_win;
  const size_t growth_begin =
      store_usable ? static_cast<size_t>(store.high_water()) : new_win;

  // Substrate plane arity of this schema/kind; the item offsets rebuild
  // categorical chunk indexes from raw planes.
  std::vector<size_t> item_offsets(schema.num_attributes());
  size_t num_items = 0;
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    item_offsets[j] = num_items;
    num_items += schema.Cardinality(j);
  }
  const uint64_t planes = boolean ? want.num_bits : num_items;

  // Everything a usable store serves without the source — expired chunks,
  // superset-fallback recounts — comes from its materialized substrate, so
  // a usable store without one (or with the wrong shape) is unusable.
  if (store_usable) {
    if (store.substrate_planes() != planes ||
        store.substrate().size() * kChunk !=
            store.high_water() - store.window_begin()) {
      return Status::FailedPrecondition(
          "count store lacks a substrate matching its window; it cannot "
          "serve expiry or fallback recounts");
    }
  }
  const size_t expired_chunk_count =
      store_usable ? (new_win - store.window_begin()) / kChunk : 0;

  IncrementalResult result;
  result.stats.store_created =
      store.high_water() == 0 && store.num_entries() == 0;

  FRAPP_ASSIGN_OR_RETURN(
      IngestOutput ingest,
      IngestGrowth(*source, *mech, boolean, options.perturb_seed,
                   options.num_threads, growth_begin));
  const size_t total = source->TotalRows().value_or(
      std::max(ingest.observed_end, growth_begin));
  source.reset();
  if (total < growth_begin) {
    return Status::FailedPrecondition(
        "source has " + std::to_string(total) +
        " rows, fewer than the store's high water " +
        std::to_string(growth_begin) + "; stores only support growth");
  }
  if (total < new_win) {
    return Status::FailedPrecondition("window begins past the source's end");
  }
  const size_t whole = total / kChunk * kChunk;  // >= new_win: both aligned
  const size_t new_hw = whole;

  result.stats.total_rows = total - new_win;
  result.stats.total_chunks = (total - new_win + kChunk - 1) / kChunk;
  result.stats.delta_chunks = (whole - growth_begin) / kChunk;
  result.stats.expired_chunks = expired_chunk_count;
  result.stats.tail_rows = total - whole;

  // The delta indexes ARE the new substrate chunks: capture their raw
  // planes before the counters consume them.
  std::vector<SubstrateChunk> delta_substrate;
  delta_substrate.reserve(ingest.delta.cat.size() +
                          ingest.delta.boolean.size());
  for (const mining::VerticalIndex& index : ingest.delta.cat) {
    delta_substrate.push_back(SubstrateChunk{index.raw_bits()});
  }
  for (const data::BooleanVerticalIndex& index : ingest.delta.boolean) {
    delta_substrate.push_back(SubstrateChunk{index.raw_bits()});
  }

  const SegmentCounter expired_counter(
      SegmentFromSubstrate(store, 0, expired_chunk_count, boolean,
                           item_offsets, planes),
      boolean, options.num_threads);
  const SegmentCounter delta_counter(std::move(ingest.delta), boolean,
                                     options.num_threads);
  const SegmentCounter tail_counter(std::move(ingest.tail), boolean,
                                    options.num_threads);
  // The stored-range recount for superset fallbacks, reassembled from the
  // live substrate chunks only if a candidate actually misses the store.
  // No perturbation, no source pass: the store already holds the perturbed
  // bits.
  std::optional<SegmentCounter> fallback_counter;
  const auto ensure_fallback = [&]() -> Status {
    if (fallback_counter.has_value()) return Status::OK();
    fallback_counter.emplace(
        SegmentFromSubstrate(store, expired_chunk_count,
                             store.substrate().size(), boolean, item_offsets,
                             planes),
        boolean, options.num_threads);
    return Status::OK();
  };

  // The estimator consumes merged totals through a per-pass source: the
  // support kind hands the batch straight through (pointer identity, no
  // keying), the boolean kind keys pre-Mobius superset vectors by pattern.
  const size_t window_rows = total - new_win;
  std::optional<data::BooleanLayout> layout;
  std::shared_ptr<BatchSupportCountSource> support_source;
  std::shared_ptr<MapPatternCountSource> pattern_map;
  std::unique_ptr<mining::SupportEstimator> estimator;
  if (boolean) {
    layout.emplace(schema);
    pattern_map =
        std::make_shared<MapPatternCountSource>(window_rows, layout->num_bits());
    FRAPP_ASSIGN_OR_RETURN(estimator,
                           mech->MakeBooleanCountSourceEstimator(pattern_map));
  } else {
    support_source = std::make_shared<BatchSupportCountSource>(window_rows);
    FRAPP_ASSIGN_OR_RETURN(estimator,
                           mech->MakeCountSourceEstimator(support_source));
  }

  // ------------------------------------------------------------ the walk --
  //
  // Two interleaved Apriori walks over shared counts. The STRICT walk
  // mirrors mining::MineFrequentItemsets at supmin step for step (same
  // candidate generation code, same filter, same sort, same exit rules) and
  // produces the result. The RETAINED walk runs at the store's retention
  // threshold and decides what stays materialized for the next run. Each
  // pass evaluates the union of both candidate lists, so the strict walk is
  // never starved even when supmin has drifted below retention.
  const size_t max_length =
      options.mining.max_length == 0
          ? schema.num_attributes()
          : std::min(options.mining.max_length, schema.num_attributes());

  std::vector<mining::Itemset> strict_candidates;
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    for (size_t c = 0; c < schema.Cardinality(j); ++c) {
      strict_candidates.push_back(mining::Itemset::FromSortedUnchecked(
          {mining::Item{static_cast<uint16_t>(j), static_cast<uint16_t>(c)}}));
    }
  }
  std::vector<mining::Itemset> retained_candidates = strict_candidates;
  bool strict_open = true;

  // Merged vectors destined for the store, applied only after the whole
  // walk succeeds so a failed run leaves the store untouched. The support
  // kind stores one scalar per candidate; keeping it flat avoids a heap
  // vector per candidate per pass on the hot path.
  std::vector<std::pair<StoreKey, std::vector<int64_t>>> pending;
  std::vector<std::pair<StoreKey, int64_t>> pending_support;

  for (size_t k = 1; k <= max_length; ++k) {
    std::vector<mining::Itemset> unioned;
    // Dedup map doubling as the strict walk's index into `unioned` (and
    // into the pass's support vector).
    std::unordered_map<mining::Itemset, size_t, mining::Itemset::Hash> slot;
    slot.reserve((retained_candidates.size() + strict_candidates.size()) * 2);
    for (const mining::Itemset& s : retained_candidates) {
      if (slot.emplace(s, unioned.size()).second) unioned.push_back(s);
    }
    if (strict_open) {
      for (const mining::Itemset& c : strict_candidates) {
        if (slot.emplace(c, unioned.size()).second) unioned.push_back(c);
      }
    }
    if (unioned.empty()) break;
    const size_t n = unioned.size();

    std::vector<StoreKey> keys(n);
    std::vector<const std::vector<int64_t>*> stored(n, nullptr);
    std::vector<size_t> hits;
    std::vector<size_t> misses;

    if (!boolean) {
      // ---- support kind: flat counts end to end, no per-candidate heap
      // vectors.
      for (size_t i = 0; i < n; ++i) keys[i] = KeyOfItemset(unioned[i]);
      FRAPP_ASSIGN_OR_RETURN(const std::vector<int64_t> delta_flat,
                             delta_counter.CountFlat(unioned));
      FRAPP_ASSIGN_OR_RETURN(const std::vector<int64_t> tail_flat,
                             tail_counter.CountFlat(unioned));
      for (size_t i = 0; i < n; ++i) {
        stored[i] = store_usable ? store.Find(keys[i]) : nullptr;
        if (stored[i] != nullptr && stored[i]->size() != 1) {
          return Status::Internal("stored count vector has the wrong arity");
        }
        (stored[i] != nullptr ? hits : misses).push_back(i);
      }
      std::vector<int64_t> expired_flat;
      if (!hits.empty() && expired_counter.rows() > 0) {
        std::vector<mining::Itemset> sub_items;
        sub_items.reserve(hits.size());
        for (size_t i : hits) sub_items.push_back(unioned[i]);
        FRAPP_ASSIGN_OR_RETURN(expired_flat,
                               expired_counter.CountFlat(sub_items));
      }
      std::vector<int64_t> fallback_flat;
      if (!misses.empty() && store_usable && growth_begin > new_win) {
        FRAPP_RETURN_IF_ERROR(ensure_fallback());
        std::vector<mining::Itemset> sub_items;
        sub_items.reserve(misses.size());
        for (size_t i : misses) sub_items.push_back(unioned[i]);
        FRAPP_ASSIGN_OR_RETURN(fallback_flat,
                               fallback_counter->CountFlat(sub_items));
        result.stats.superset_fallbacks += misses.size();
      }
      std::vector<uint64_t> totals(n);
      size_t hi = 0;
      size_t mi = 0;
      for (size_t i = 0; i < n; ++i) {
        int64_t base;
        if (stored[i] != nullptr) {
          base = (*stored[i])[0];
          if (!expired_flat.empty()) base -= expired_flat[hi];
          ++hi;
        } else {
          base = fallback_flat.empty() ? 0 : fallback_flat[mi];
          ++mi;
        }
        base += delta_flat[i];
        pending_support.emplace_back(keys[i], base);
        totals[i] = static_cast<uint64_t>(base + tail_flat[i]);
      }
      support_source->SetBatch(&unioned, std::move(totals));
    } else {
      // ---- boolean kind: 2^k pre-Mobius superset vectors per candidate.
      std::vector<std::vector<size_t>> positions(n);
      for (size_t i = 0; i < n; ++i) {
        const std::vector<mining::Item>& items = unioned[i].items();
        positions[i].reserve(items.size());
        for (const mining::Item& item : items) {
          positions[i].push_back(
              layout->BitPosition(item.attribute, item.category));
        }
        keys[i] = KeyOfPositions(positions[i]);
      }

      FRAPP_ASSIGN_OR_RETURN(std::vector<std::vector<int64_t>> delta_counts,
                             delta_counter.Count(unioned, positions));
      FRAPP_ASSIGN_OR_RETURN(std::vector<std::vector<int64_t>> tail_counts,
                             tail_counter.Count(unioned, positions));

      for (size_t i = 0; i < n; ++i) {
        stored[i] = store_usable ? store.Find(keys[i]) : nullptr;
        if (stored[i] != nullptr &&
            stored[i]->size() != delta_counts[i].size()) {
          return Status::Internal("stored count vector has the wrong arity");
        }
        (stored[i] != nullptr ? hits : misses).push_back(i);
      }

      std::vector<std::vector<int64_t>> expired_counts;
      if (!hits.empty() && expired_counter.rows() > 0) {
        std::vector<mining::Itemset> sub_items;
        std::vector<std::vector<size_t>> sub_positions;
        for (size_t i : hits) {
          sub_items.push_back(unioned[i]);
          sub_positions.push_back(positions[i]);
        }
        FRAPP_ASSIGN_OR_RETURN(expired_counts,
                               expired_counter.Count(sub_items, sub_positions));
      }
      std::vector<std::vector<int64_t>> fallback_counts;
      if (!misses.empty() && store_usable && growth_begin > new_win) {
        FRAPP_RETURN_IF_ERROR(ensure_fallback());
        std::vector<mining::Itemset> sub_items;
        std::vector<std::vector<size_t>> sub_positions;
        for (size_t i : misses) {
          sub_items.push_back(unioned[i]);
          sub_positions.push_back(positions[i]);
        }
        FRAPP_ASSIGN_OR_RETURN(fallback_counts, fallback_counter->Count(
                                                    sub_items, sub_positions));
        result.stats.superset_fallbacks += misses.size();
      }

      pattern_map->Clear();
      size_t hi = 0;
      size_t mi = 0;
      for (size_t i = 0; i < n; ++i) {
        std::vector<int64_t> merged;
        if (stored[i] != nullptr) {
          merged = *stored[i];
          if (!expired_counts.empty()) SubFrom(merged, expired_counts[hi]);
          ++hi;
        } else {
          merged = fallback_counts.empty()
                       ? std::vector<int64_t>(delta_counts[i].size(), 0)
                       : fallback_counts[mi];
          ++mi;
        }
        AddInto(merged, delta_counts[i]);
        std::vector<int64_t> query = merged;
        AddInto(query, tail_counts[i]);
        pending.emplace_back(keys[i], std::move(merged));
        pattern_map->Set(keys[i], std::move(query));
      }
    }
    result.stats.store_hits += hits.size();
    result.stats.store_misses += misses.size();

    FRAPP_ASSIGN_OR_RETURN(const std::vector<double> supports,
                           estimator->EstimateSupports(unioned));

    // Strict walk: the exact MineFrequentItemsets pass, on the same support
    // doubles the from-scratch estimator would produce.
    if (strict_open && !strict_candidates.empty()) {
      result.mined.candidates_per_pass.push_back(strict_candidates.size());
      std::vector<mining::FrequentItemset> frequent;
      for (const mining::Itemset& c : strict_candidates) {
        const double s = supports[slot.at(c)];
        if (s >= supmin) frequent.push_back(mining::FrequentItemset{c, s});
      }
      std::sort(frequent.begin(), frequent.end(),
                [](const mining::FrequentItemset& a,
                   const mining::FrequentItemset& b) {
                  return a.itemset < b.itemset;
                });
      result.mined.by_length.push_back(frequent);
      if (frequent.empty() || k == max_length) {
        strict_open = false;
        strict_candidates.clear();
      } else {
        std::unordered_set<mining::Itemset, mining::Itemset::Hash> lookup;
        lookup.reserve(frequent.size() * 2);
        for (const mining::FrequentItemset& f : frequent) {
          lookup.insert(f.itemset);
        }
        strict_candidates = mining::GenerateCandidates(frequent, lookup);
      }
    } else {
      strict_open = false;
      strict_candidates.clear();
    }

    // Retained walk: same machinery at the retention threshold, deciding
    // the next pass's materialized superset. Estimated supports jitter as
    // rows are appended, so borderline candidates flicker across the bar
    // between runs and miss the store on reappearance — that is fine: a
    // miss is a cheap substrate recount, while every extra retained entry
    // is walk work on EVERY future run. A single threshold keeps the
    // superset (and the per-pass union) as small as the margin allows.
    std::vector<mining::FrequentItemset> retained;
    for (size_t i = 0; i < n; ++i) {
      if (supports[i] >= retention) {
        retained.push_back(mining::FrequentItemset{unioned[i], supports[i]});
      }
    }
    std::sort(retained.begin(), retained.end(),
              [](const mining::FrequentItemset& a,
                 const mining::FrequentItemset& b) {
                return a.itemset < b.itemset;
              });
    if (retained.empty() || k == max_length) {
      retained_candidates.clear();
    } else {
      std::unordered_set<mining::Itemset, mining::Itemset::Hash> lookup;
      lookup.reserve(retained.size() * 2);
      for (const mining::FrequentItemset& f : retained) lookup.insert(f.itemset);
      retained_candidates = mining::GenerateCandidates(retained, lookup);
    }
  }

  store.BeginRun();
  for (auto& [key, counts] : pending) store.Put(key, std::move(counts));
  for (const auto& [key, count] : pending_support) store.Put(key, {count});
  // Substrate bookkeeping mirrors the count algebra: expired chunks pop off
  // the front, delta chunks push on the back. A swallowed (unusable) store
  // drops every stale chunk it held.
  const size_t drop_leading =
      store_usable ? expired_chunk_count : store.substrate().size();
  store.UpdateSubstrate(planes, drop_leading, std::move(delta_substrate));
  store.Commit(new_win, new_hw);
  result.stats.stored_entries = store.num_entries();
  return result;
}

}  // namespace store
}  // namespace frapp
